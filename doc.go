// Package socbuf reproduces "Buffer Insertion for Bridges and Optimal
// Buffer Sizing for Communication Sub-System of Systems-on-Chip"
// (Kallakuri, Doboli, Feinberg — DATE 2005) as a Go library.
//
// The repository is organised bottom-up:
//
//   - internal/linalg, internal/lp        — dense and CSR-sparse linear
//     algebra (LU, Gauss–Seidel/power-iteration stationary solvers) and a
//     two-phase simplex solver;
//   - internal/markov, internal/queueing  — CTMC machinery and M/M/1/K
//     oracles;
//   - internal/arch, internal/graph       — the SoC communication model
//     (buses, processors, bridges, flows) and the bridge-buffer splitting
//     of the paper's §2;
//   - internal/trace, internal/sim        — traffic sources and the
//     continuous-time discrete-event simulator;
//   - internal/ctmdp                      — the CTMDP occupation-measure
//     LPs, K-switching policies, and the measure→capacity translation;
//   - internal/nonlinear                  — the un-split coupled quadratic
//     system and the solvers that fail on it;
//   - internal/solvecache                 — the content-addressed solve
//     cache and warm-start engine the sweep fleet shares (DESIGN.md §4
//     records the fingerprint contract);
//   - internal/parallel                   — the deterministic worker pool
//     behind every sweep fan-out;
//   - internal/core, internal/policy      — the methodology loop (exposed
//     one iteration at a time as core.Stepper) and the sizing policies the
//     paper compares;
//   - internal/solver                     — the pluggable solver backends
//     every entry point dispatches through: "exact" (the CTMDP/LP path),
//     "analytic" (closed-form M/M/1/K blocking + marginal-allocation
//     greedy, no LP, ~150× faster) and "hybrid" (analytic screening with
//     gated exact refinement, same sizing as exact) — DESIGN.md §6
//     records the backend contract;
//   - internal/placement                  — buffer insertion as a decision
//     variable: a Van Ginneken-style dynamic program over the bus graph
//     decides, per bridge, whether to insert a decoupling buffer pair (and
//     of which catalogue type) or to bypass the bridge, contracting its
//     buses into one arbitration domain; frontier survivors are screened
//     analytically and refined with the chosen backend — DESIGN.md §7
//     records the placement contract;
//   - internal/scenario                   — the scenario engine: seeded
//     chain/star/tree/mesh topology generators, pluggable traffic models
//     (Poisson / rate-preserving ON-OFF), and the registry of named
//     scenarios the sweep engines fan out over;
//   - internal/experiments                — regeneration of Figure 3,
//     Table 1, the §2 demo and the §3 headline ratios, plus the parallel
//     budget- and scenario-sweep engines and the sweep planner that
//     fingerprints points up front and prewarms the cache;
//   - internal/engine, internal/cliutil   — the unified solve service
//     behind every entry point (typed solve/sweep/simulate/placement
//     requests, coalescing, bounded admission, per-request cancellation,
//     graceful drain — DESIGN.md §5) and the flag wiring the CLI clients
//     share; cmd/socbufd serves the same API over HTTP with NDJSON sweep
//     and placement-evaluation streaming.
//
// Stationary distributions of policy-induced chains are solved through
// three interchangeable paths: an exact dense LU solve for small state
// spaces, a CSR sparse Gauss–Seidel solve (power-iteration fallback) for
// mid-sized ones, and a two-level aggregation/disaggregation solve beyond
// ctmdp.DefaultAggregationThreshold states. All agree to better than 1e-8 on
// every fixture; see ctmdp.StationaryOptions. The methodology invokes this
// refinement when core.Config.RefineStationary is set (socbuf -refine).
//
// See README.md for a tour (including "Choosing a solver method" and
// "Buffer placement"), DESIGN.md for the system inventory and modelling
// decisions (§4: the solve-cache fingerprint contract; §6: the solver
// backend contract; §7: the placement contract), EXPERIMENTS.md for
// paper-vs-measured results, and PERFORMANCE.md for the benchmark
// methodology and the measured solve-cache, backend and placement-DP
// numbers. The benchmarks in bench_test.go regenerate every table and
// figure.
package socbuf

// Version identifies the reproduction release.
const Version = "1.6.0"
