// Burstiness stresses the sized system with ON/OFF (Markov-modulated)
// traffic instead of the Poisson flows the CTMDP models assume, showing how
// far the allocation's advantage survives model mismatch — a robustness
// check the paper leaves as future work ("better profiling").
//
//	go run ./examples/burstiness
package main

import (
	"fmt"
	"log"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/sim"
	"socbuf/internal/trace"
)

func main() {
	a := arch.TwoBusAMBA()
	res, err := core.Run(core.Config{Arch: a, Budget: 24, Iterations: 4, Horizon: 1500})
	if err != nil {
		log.Fatal(err)
	}
	buffered := res.Arch

	// Replace every flow's Poisson source with an ON/OFF source of the same
	// average rate but ~4x peak rate.
	mkSources := func() map[sim.FlowKey]trace.Source {
		out := map[sim.FlowKey]trace.Source{}
		for _, f := range buffered.Flows {
			// ON one third of the time: λon = 3λ preserves the average.
			src, err := trace.NewOnOff(3*f.Rate, 1, 2)
			if err != nil {
				log.Fatal(err)
			}
			out[sim.FlowKey{From: f.From, To: f.To}] = src
		}
		return out
	}

	run := func(alloc arch.Allocation) int64 {
		var total int64
		for seed := int64(1); seed <= 3; seed++ {
			s, err := sim.New(sim.Config{
				Arch: buffered, Alloc: alloc, Horizon: 1500, WarmUp: 100,
				Seed: seed, Sources: mkSources(),
			})
			if err != nil {
				log.Fatal(err)
			}
			r, err := s.Run()
			if err != nil {
				log.Fatal(err)
			}
			total += r.TotalLost()
		}
		return total
	}

	uniformLoss := run(res.BaselineAlloc)
	sizedLoss := run(res.Best.Alloc)
	fmt.Println("bursty ON/OFF traffic (same average rates, ~4x peaks), budget 24:")
	fmt.Printf("  uniform sizing loss: %d\n", uniformLoss)
	fmt.Printf("  CTMDP sizing loss:   %d\n", sizedLoss)
	if sizedLoss < uniformLoss {
		fmt.Printf("  the Poisson-derived allocation still wins by %.0f%% under burstiness\n",
			(1-float64(sizedLoss)/float64(uniformLoss))*100)
	} else {
		fmt.Println("  burstiness erased the allocation's advantage — profile-aware sizing would be needed")
	}
}
