// Quickstart: size the buffers of a two-bus AMBA-style SoC with the CTMDP
// methodology and compare the loss against uniform sizing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"socbuf/internal/arch"
	"socbuf/internal/core"
)

func main() {
	// A small AMBA-style system: two AHB segments joined by a bridge, four
	// masters, five flows. Budget: 24 buffer units for 6 buffers.
	a := arch.TwoBusAMBA()

	res, err := core.Run(core.Config{
		Arch:       a,
		Budget:     24,
		Iterations: 4,
		Horizon:    1500,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("socbuf quickstart — two-bus AMBA system, budget 24 units")
	fmt.Printf("subsystems after bridge-buffer insertion: %d\n", len(res.Subsystems))
	fmt.Printf("uniform sizing loss: %d packets\n", res.BaselineLoss)
	fmt.Printf("CTMDP sizing loss:   %d packets (%.0f%% lower)\n",
		res.Best.SimLoss, res.Improvement()*100)
	fmt.Println("\nchosen allocation (buffer = units):")
	fmt.Println("  " + res.Best.Alloc.String())
}
