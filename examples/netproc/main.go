// Netproc reproduces the paper's experimental setting: the 17-processor
// network-processor architecture, sized at a scarce 160-unit budget, with
// per-processor losses before sizing, after sizing, and under the timeout
// policy — the three bars of Figure 3.
//
//	go run ./examples/netproc
package main

import (
	"fmt"
	"log"
	"os"

	"socbuf/internal/experiments"
	"socbuf/internal/report"
)

func main() {
	fig, err := experiments.Figure3(160, experiments.Options{
		Iterations: 5,
		Seeds:      []int64{1, 2, 3},
		Horizon:    1500,
	})
	if err != nil {
		log.Fatal(err)
	}

	groups := make([]report.BarGroup, 0, len(fig.Procs))
	for _, p := range fig.Procs {
		groups = append(groups, report.BarGroup{
			Label:  p,
			Values: []float64{float64(fig.Pre[p]), float64(fig.Post[p]), float64(fig.Timeout[p])},
		})
	}
	err = report.BarChart(os.Stdout,
		"network processor, budget 160 — loss per processor",
		[]string{"pre", "post", "timeout"}, groups, 48)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntotals: pre=%d post=%d timeout=%d\n", fig.PreTotal, fig.PostTotal, fig.TimeoutTotal)
	fmt.Printf("CTMDP sizing removes %.0f%% of the constant-sizing loss and %.0f%% of the timeout-policy loss\n",
		(1-float64(fig.PostTotal)/float64(fig.PreTotal))*100,
		(1-float64(fig.PostTotal)/float64(fig.TimeoutTotal))*100)
	fmt.Printf("processors whose loss increased after resizing (expected for some): %v\n", fig.Worsened)
}
