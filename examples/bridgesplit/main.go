// Bridgesplit walks through the paper's §2 on the Figure 1 architecture:
// the un-buffered bridge coupling produces a quadratic system a Newton/KKT
// solver cannot crack, and inserting bridge buffers splits it into four
// linear subsystems solved by one LP.
//
//	go run ./examples/bridgesplit
package main

import (
	"fmt"
	"log"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/ctmdp"
	"socbuf/internal/graph"
	"socbuf/internal/nonlinear"
)

func main() {
	a := arch.Figure1()

	// Before insertion: buses b, f, g are coupled through bridges br1, br2.
	groups, err := graph.CoupledGroups(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coupled groups before insertion: %d (buses %v)\n", len(groups), groups[0].Buses)

	// The coupled occupation-measure system is quadratic; Newton on its KKT
	// conditions is the generic attack — and it fails, as in the paper.
	cs, err := nonlinear.FromArchitecture(a, groups[0].Buses, 2)
	if err != nil {
		log.Fatal(err)
	}
	kkt, err := cs.KKTNewton(nonlinear.NewtonOptions{MaxIters: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KKT-Newton on the quadratic system (%d unknowns): valid=%v — %s\n",
		cs.NumUnknowns(), kkt.Valid, kkt.Diag.Reason)

	// Insert buffers at the bridges and split.
	a.InsertBridgeBuffers()
	subs, err := graph.Split(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter buffer insertion: %d subsystems\n", len(subs))
	for i, s := range subs {
		fmt.Printf("  subsystem %d: bus %v, clients %v, boundary bridges %v (linear: %v)\n",
			i+1, s.Buses, s.Clients[s.Buses[0]], s.BoundaryBridges, s.Linear())
	}

	// Each subsystem is a linear CTMDP; all solve in one joint LP.
	alloc, err := arch.UniformAllocation(a, 40)
	if err != nil {
		log.Fatal(err)
	}
	models, err := core.BuildSubsystemModels(a, alloc, core.Config{Arch: a, Budget: 40})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := ctmdp.SolveJoint(models, ctmdp.JointConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoint LP over the split system: optimum loss rate %.4f in %d pivots\n",
		sol.TotalLossRate, sol.Iters)
	for _, ms := range sol.PerModel {
		sw := ms.Policy.KSwitching()
		fmt.Printf("  bus %s: loss rate %.4f, %s\n", ms.Model.Bus, ms.LossRate, sw)
	}
}
