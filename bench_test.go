package socbuf_test

// One benchmark per table and figure of the paper, plus the ablations
// DESIGN.md calls out. Each benchmark regenerates the artefact through
// internal/experiments (the same code cmd/experiments prints with) and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation.

import (
	"testing"
	"time"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/ctmdp"
	"socbuf/internal/experiments"
	"socbuf/internal/scenario"
	"socbuf/internal/solvecache"
	"socbuf/internal/uncertain"
)

// benchOpt keeps one benchmark iteration around a second.
var benchOpt = experiments.Options{Iterations: 3, Seeds: []int64{1, 2}, Horizon: 1200, WarmUp: 100}

// BenchmarkFigure3 regenerates Figure 3: per-processor loss under constant
// sizing, CTMDP sizing and the timeout policy at the scarce 160-unit budget.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure3(160, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if fig.PostTotal >= fig.PreTotal {
			b.Fatalf("shape broken: post %d !< pre %d", fig.PostTotal, fig.PreTotal)
		}
		b.ReportMetric(float64(fig.PostTotal)/float64(fig.PreTotal), "post/pre")
		b.ReportMetric(float64(fig.PostTotal)/float64(fig.TimeoutTotal), "post/timeout")
	}
}

// BenchmarkTable1 regenerates Table 1: the pre/post loss sweep over total
// buffer budgets 160/320/640.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table1([]int{160, 320, 640}, nil, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tbl.PostTotal[160]), "post160")
		b.ReportMetric(float64(tbl.PostTotal[640]), "post640")
	}
}

// BenchmarkSplitVsNonlinear regenerates the §2 demonstration: the coupled
// quadratic system of Figure 1 defeats KKT-Newton while the split system
// solves as one LP.
func BenchmarkSplitVsNonlinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := experiments.SplitDemo()
		if err != nil {
			b.Fatal(err)
		}
		if d.KKTValid {
			b.Fatal("coupled system unexpectedly solvable")
		}
		if d.SplitSubsystems != 4 {
			b.Fatalf("split gave %d subsystems, want 4", d.SplitSubsystems)
		}
		b.ReportMetric(float64(d.SplitIters), "lp-pivots")
	}
}

// BenchmarkHeadline regenerates the §3 headline ratios (≈0.8 vs constant,
// ≈0.5 vs timeout in the paper).
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := experiments.Headline(160, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.CTMDPOverConstant, "vs-constant")
		b.ReportMetric(h.CTMDPOverTimeout, "vs-timeout")
	}
}

// coreCfg is the shared ablation configuration (two-bus system keeps single
// iterations fast).
func coreCfg() core.Config {
	return core.Config{
		Arch:       arch.TwoBusAMBA(),
		Budget:     24,
		Iterations: 3,
		Seeds:      []int64{1, 2},
		Horizon:    1200,
		WarmUp:     100,
	}
}

// BenchmarkAblationJointVsSequential compares solving all subsystem LPs in
// one program (the paper's "in one go") against sequential per-subsystem
// solves.
func BenchmarkAblationJointVsSequential(b *testing.B) {
	for _, mode := range []struct {
		name       string
		sequential bool
	}{{"joint", false}, {"sequential", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := coreCfg()
				cfg.Sequential = mode.sequential
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Best.SimLoss), "loss")
			}
		})
	}
}

// BenchmarkAblationTranslator compares the three measure→capacity
// translations (DESIGN.md ablation b).
func BenchmarkAblationTranslator(b *testing.B) {
	for _, tr := range []struct {
		name string
		t    ctmdp.Translator
	}{
		{"greedy-tail", ctmdp.TranslateGreedyTail},
		{"quantile", ctmdp.TranslateQuantile},
		{"mean-occupancy", ctmdp.TranslateMeanOccupancy},
	} {
		b.Run(tr.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := coreCfg()
				cfg.Translator = tr.t
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Best.SimLoss), "loss")
			}
		})
	}
}

// BenchmarkAblationArbiter compares simulations driven by the optimal CTMDP
// arbitration against plain longest-queue with the same allocation
// (DESIGN.md ablation c).
func BenchmarkAblationArbiter(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"ctmdp-policy", false}, {"longest-queue", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := coreCfg()
				cfg.DisableCTMDPArbiter = mode.disable
				res, err := core.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Best.SimLoss), "loss")
			}
		})
	}
}

// BenchmarkSweep32 runs a 32-point Table 1 budget sweep serially and through
// the parallel sweep runner. On an 8-core machine the parallel variant is
// expected ≥ 3× faster; with GOMAXPROCS=1 the two are equivalent by
// construction (the determinism tests assert identical results).
func BenchmarkSweep32(b *testing.B) {
	budgets := make([]int, 32)
	for i := range budgets {
		budgets[i] = 100 + 10*i
	}
	sweepOpt := experiments.Options{Iterations: 1, Seeds: []int64{1}, Horizon: 300, WarmUp: 50}
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} { // 0 = GOMAXPROCS
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := sweepOpt
				opt.Workers = mode.workers
				res, err := experiments.BudgetSweep(arch.NetworkProcessor, budgets, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Budgets) != 32 {
					b.Fatalf("sweep lost points: %d/32", len(res.Budgets))
				}
			}
		})
	}
}

// BenchmarkSweepColdVsCached is the solve-cache acceptance benchmark
// (PERFORMANCE.md records its measured numbers): a budget sweep of the full
// methodology over a generated scenario family (the chain6 topology), run
// cold and then with the planned, prewarmed, fleet-shared cache. Budget
// points share their entire boundary-lambda trajectory — capacities never
// enter the cap-free programs — so the cached variant cold-solves each
// sub-model stage once and answers the rest from the cache; the acceptance
// bar is ≥ 2× over cold. Both variants run serially (Workers: 1) so the
// ratio measures solve reuse, not scheduling.
func BenchmarkSweepColdVsCached(b *testing.B) {
	sc, ok := scenario.Get("chain6")
	if !ok {
		b.Fatal("scenario chain6 not registered")
	}
	newArch := func() *arch.Architecture {
		a, err := sc.Build()
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	budgets := make([]int, 8)
	for i := range budgets {
		budgets[i] = sc.Budget + 8*i
	}
	opt := experiments.Options{Iterations: 3, Seeds: []int64{1}, Horizon: 300, WarmUp: 50, Workers: 1}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.BudgetSweep(newArch, budgets, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Budgets) != len(budgets) {
				b.Fatalf("sweep lost points: %d/%d", len(res.Budgets), len(budgets))
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh cache per iteration: the measurement includes planning,
			// prewarming and every cold solve the cache still has to do.
			opt := opt
			opt.Cache = solvecache.New()
			res, _, err := experiments.CachedBudgetSweep(newArch, budgets, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Budgets) != len(budgets) {
				b.Fatalf("sweep lost points: %d/%d", len(res.Budgets), len(budgets))
			}
			s := opt.Cache.Stats()
			b.ReportMetric(float64(s.Hits+s.WarmStarts), "reused")
			b.ReportMetric(float64(s.Misses), "cold-solves")
		}
	})
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opt := opt
			opt.Cache = solvecache.New()
			opt.Delta = true
			res, _, err := experiments.CachedBudgetSweep(newArch, budgets, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Budgets) != len(budgets) {
				b.Fatalf("sweep lost points: %d/%d", len(res.Budgets), len(budgets))
			}
			s := opt.Cache.Stats()
			b.ReportMetric(float64(s.DeltaResolves), "delta-resolves")
			b.ReportMetric(float64(s.DeltaFallbacks), "delta-fallbacks")
		}
	})
}

// TestDeltaSweepMatchesWarmOnly is the machine check of the delta re-solve
// acceptance bar (the `delta` variant of BenchmarkSweepColdVsCached is the
// measurement; this test is the gate `go test` enforces): an 8-point chain6
// exact budget sweep with the delta tier enabled must (a) produce exactly
// the losses the warm-start-only cached sweep produces — the tier's 1e-8 LP
// agreement means the chosen allocations, and therefore the integer
// simulated losses, are identical — (b) actually chain re-solves through
// ctmdp.CappedResolver, and (c) be decisively faster. The measured ratio is
// ~1.5× on the reference container; gating at 1.15× leaves headroom for CI
// noise and -race overhead while still catching a tier that stopped
// chaining (which would pin the ratio at ~1.0).
func TestDeltaSweepMatchesWarmOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc, ok := scenario.Get("chain6")
	if !ok {
		t.Fatal("scenario chain6 not registered")
	}
	newArch := func() *arch.Architecture {
		a, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	budgets := make([]int, 8)
	for i := range budgets {
		budgets[i] = sc.Budget + 8*i
	}
	opt := experiments.Options{Iterations: 3, Seeds: []int64{1}, Horizon: 300, WarmUp: 50, Workers: 1}

	opt.Cache = solvecache.New()
	start := time.Now()
	warm, _, err := experiments.CachedBudgetSweep(newArch, budgets, opt)
	if err != nil {
		t.Fatal(err)
	}
	warmTime := time.Since(start)

	opt.Cache = solvecache.New()
	opt.Delta = true
	start = time.Now()
	delta, _, err := experiments.CachedBudgetSweep(newArch, budgets, opt)
	if err != nil {
		t.Fatal(err)
	}
	deltaTime := time.Since(start)

	if len(warm.Failed) > 0 || len(delta.Failed) > 0 {
		t.Fatalf("sweep points failed: warm %v, delta %v", warm.Failed, delta.Failed)
	}
	if len(delta.Budgets) != len(budgets) {
		t.Fatalf("delta sweep lost points: %d/%d", len(delta.Budgets), len(budgets))
	}
	for _, b := range warm.Budgets {
		if warm.Pre[b] != delta.Pre[b] || warm.Post[b] != delta.Post[b] {
			t.Errorf("budget %d: delta sweep diverged (pre %d vs %d, post %d vs %d)",
				b, warm.Pre[b], delta.Pre[b], warm.Post[b], delta.Post[b])
		}
	}
	s := opt.Cache.Stats()
	if s.DeltaResolves == 0 {
		t.Fatalf("delta tier chained nothing: %+v", s)
	}
	if ratio := float64(warmTime) / float64(deltaTime); ratio < 1.15 {
		t.Errorf("delta sweep only %.2fx faster than warm-only (warm %v, delta %v, resolves %d, fallbacks %d); acceptance bar is 1.5x, gate 1.15x",
			ratio, warmTime, deltaTime, s.DeltaResolves, s.DeltaFallbacks)
	}
}

// TestCachedSweepBeatsCold is the machine check of the solve-cache
// acceptance bar (BenchmarkSweepColdVsCached is the measurement; this test
// is the gate `go test` actually enforces): a cached generated-family sweep
// must be decisively faster than cold. The measured ratio is ~2.9× on a
// 1-core container, so gating at 1.3× leaves wide headroom for CI noise and
// -race overhead while still catching a cache that stopped reusing.
func TestCachedSweepBeatsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc, ok := scenario.Get("chain6")
	if !ok {
		t.Fatal("scenario chain6 not registered")
	}
	newArch := func() *arch.Architecture {
		a, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	budgets := []int{sc.Budget, sc.Budget + 8, sc.Budget + 16, sc.Budget + 24}
	opt := experiments.Options{Iterations: 2, Seeds: []int64{1}, Horizon: 200, WarmUp: 50, Workers: 1}

	start := time.Now()
	if _, err := experiments.BudgetSweep(newArch, budgets, opt); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	opt.Cache = solvecache.New()
	start = time.Now()
	if _, _, err := experiments.CachedBudgetSweep(newArch, budgets, opt); err != nil {
		t.Fatal(err)
	}
	cached := time.Since(start)

	s := opt.Cache.Stats()
	if reused := s.Hits + s.WarmStarts; reused == 0 {
		t.Fatalf("cache reused nothing: %+v", s)
	}
	if ratio := float64(cold) / float64(cached); ratio < 1.3 {
		t.Errorf("cached sweep only %.2fx faster than cold (cold %v, cached %v, stats %+v); acceptance bar is 2x, gate 1.3x",
			ratio, cold, cached, s)
	}
}

// BenchmarkJointLPSolve measures the raw joint occupation-measure LP on the
// network-processor subsystems — the methodology's inner kernel.
func BenchmarkJointLPSolve(b *testing.B) {
	a := arch.NetworkProcessor()
	a.InsertBridgeBuffers()
	alloc, err := arch.UniformAllocation(a, 160)
	if err != nil {
		b.Fatal(err)
	}
	models, err := core.BuildSubsystemModels(a, alloc, core.Config{Arch: a, Budget: 160})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := ctmdp.SolveJoint(models, ctmdp.JointConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sol.Iters), "pivots")
	}
}

// BenchmarkRobustSweep is the robust backend's acceptance benchmark
// (PERFORMANCE.md "Robust backend throughput" records its measured numbers;
// the nightly benchdiff gate covers it at the kernel tier's 25%): the same
// 8-point chain6 budget sweep as BenchmarkSweepColdVsCached, run under
// -method robust with 64 common-random-number perturbation samples per
// point. The headline metric is Monte-Carlo throughput in samples/sec —
// points × samples ÷ elapsed, counting each sample once even though the
// screen evaluates it against every candidate sizing — so a sampler or
// screening regression moves the number directly. The cached variant runs
// the sweep twice over one shared cache and reports the robust tier's
// traffic: the first pass misses all 8 structural keys, the second answers
// every point from the cache. Serial workers, as everywhere in this file,
// so the ratio measures the backend, not scheduling.
func BenchmarkRobustSweep(b *testing.B) {
	sc, ok := scenario.Get("chain6")
	if !ok {
		b.Fatal("scenario chain6 not registered")
	}
	newArch := func() *arch.Architecture {
		a, err := sc.Build()
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	budgets := make([]int, 8)
	for i := range budgets {
		budgets[i] = sc.Budget + 8*i
	}
	spec := &uncertain.Spec{RateSigma: 0.2, Samples: 64, Confidence: 0.95, Seed: 1}
	opt := experiments.Options{
		Iterations: 3, Seeds: []int64{1}, Horizon: 300, WarmUp: 50,
		Workers: 1, Method: "robust", Uncertainty: spec,
	}
	samplesPerSweep := float64(len(budgets) * spec.Samples)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := experiments.BudgetSweep(newArch, budgets, opt)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Robust) != len(budgets) {
				b.Fatalf("robust reports lost: %d/%d", len(res.Robust), len(budgets))
			}
		}
		b.ReportMetric(samplesPerSweep*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh cache per iteration, two identical passes over it: the
			// second pass must answer every point from the robust tier.
			opt := opt
			opt.Cache = solvecache.New()
			for pass := 0; pass < 2; pass++ {
				res, err := experiments.BudgetSweep(newArch, budgets, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Robust) != len(budgets) {
					b.Fatalf("robust reports lost: %d/%d", len(res.Robust), len(budgets))
				}
			}
			s := opt.Cache.Stats()
			b.ReportMetric(float64(s.RobustHits), "robust-hits")
			b.ReportMetric(float64(s.RobustMisses), "robust-misses")
		}
		b.ReportMetric(2*samplesPerSweep*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	})
}
