// Command socsim runs the continuous-time discrete-event simulator alone,
// under a chosen sizing policy and optional timeout drops.
//
//	socsim -arch netproc -budget 160 -policy proportional -timeout 0 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"socbuf/internal/arch"
	"socbuf/internal/policy"
	"socbuf/internal/report"
	"socbuf/internal/sim"
)

func main() {
	var (
		name    = flag.String("arch", "netproc", "preset: figure1 | twobus | netproc")
		budget  = flag.Int("budget", 160, "total buffer budget in units")
		pol     = flag.String("policy", "constant", "sizing policy: constant | proportional")
		horizon = flag.Float64("horizon", 2000, "sim horizon")
		warm    = flag.Float64("warmup", 100, "warm-up time")
		seed    = flag.Int64("seed", 1, "RNG seed")
		timeout = flag.Float64("timeout", 0, "timeout threshold (0 disables; -1 derives the mean-residence threshold)")
	)
	flag.Parse()

	var a *arch.Architecture
	switch *name {
	case "figure1":
		a = arch.Figure1()
	case "twobus":
		a = arch.TwoBusAMBA()
	case "netproc":
		a = arch.NetworkProcessor()
	default:
		fmt.Fprintf(os.Stderr, "socsim: unknown architecture %q\n", *name)
		os.Exit(2)
	}
	a.InsertBridgeBuffers()

	var sizer policy.Sizer
	switch *pol {
	case "constant":
		sizer = policy.Uniform{}
	case "proportional":
		sizer = policy.Proportional{}
	default:
		fmt.Fprintf(os.Stderr, "socsim: unknown policy %q\n", *pol)
		os.Exit(2)
	}
	alloc, err := sizer.Allocate(a, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "socsim:", err)
		os.Exit(1)
	}

	thr := *timeout
	if thr < 0 {
		calib, err := sim.New(sim.Config{Arch: a, Alloc: alloc, Horizon: *horizon, WarmUp: *warm, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "socsim:", err)
			os.Exit(1)
		}
		cr, err := calib.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "socsim:", err)
			os.Exit(1)
		}
		thr, err = policy.TimeoutThreshold(cr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "socsim:", err)
			os.Exit(1)
		}
		fmt.Printf("derived timeout threshold: %.4f\n", thr)
	}

	s, err := sim.New(sim.Config{
		Arch: a, Alloc: alloc, Horizon: *horizon, WarmUp: *warm, Seed: *seed, Timeout: thr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "socsim:", err)
		os.Exit(1)
	}
	r, err := s.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "socsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s under %s sizing, budget %d, horizon %.0f, seed %d\n",
		a.Name, sizer.Name(), *budget, *horizon, *seed)
	fmt.Printf("generated %d, delivered %d, lost %d (%.2f%%), timeout drops %s\n",
		r.TotalGenerated(), r.TotalDelivered(), r.TotalLost(), r.LossFraction()*100, timeoutSummary(r))

	headers := []string{"processor", "generated", "delivered", "lost", "timeout"}
	var rows [][]string
	for _, p := range report.SortedKeys(r.Generated) {
		rows = append(rows, []string{
			p, fmt.Sprint(r.Generated[p]), fmt.Sprint(r.Delivered[p]),
			fmt.Sprint(r.Lost[p]), fmt.Sprint(r.LostTimeout[p]),
		})
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		fmt.Fprintln(os.Stderr, "socsim:", err)
		os.Exit(1)
	}
}

func timeoutSummary(r *sim.Results) string {
	var t int64
	for _, v := range r.LostTimeout {
		t += v
	}
	return fmt.Sprint(t)
}
