// Command socsim runs the continuous-time discrete-event simulator alone,
// under a chosen sizing policy and optional timeout drops — a thin client of
// internal/engine's simulate endpoint.
//
//	socsim -arch netproc -budget 160 -policy proportional -timeout 0 -seed 1
//	socsim -arch netproc -budget 160 -policy sized -method analytic
//
// The "sized" policy first runs the full buffer-sizing methodology under
// the -method solver backend (exact | analytic | hybrid | robust) and simulates its
// chosen allocation; the other policies ignore -method (it is still
// validated, so an unknown backend fails with the repo-wide uniform
// message and exit code 2).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"socbuf/internal/cliutil"
	"socbuf/internal/engine"
	"socbuf/internal/report"
)

func main() {
	var (
		name    = flag.String("arch", "netproc", "preset: "+cliutil.PresetNames)
		budget  = flag.Int("budget", 160, "total buffer budget in units")
		pol     = flag.String("policy", "constant", "sizing policy: constant | proportional | sized (sized solves via -method first)")
		horizon = flag.Float64("horizon", 2000, "sim horizon")
		warm    = flag.Float64("warmup", 100, "warm-up time")
		seed    = flag.Int64("seed", 1, "RNG seed")
		timeout = flag.Float64("timeout", 0, "timeout threshold (0 disables; -1 derives the mean-residence threshold)")
		asJSON  = flag.Bool("json", false, "emit the result as JSON instead of a table")
	)
	method := cliutil.AddMethodFlag(nil)
	flag.Parse()

	eng := engine.New(engine.Config{})
	defer eng.Close()
	res, err := eng.Simulate(context.Background(), engine.SimulateRequest{
		Arch:    *name,
		Budget:  *budget,
		Policy:  *pol,
		Method:  *method,
		Horizon: *horizon,
		WarmUp:  *warm,
		Seed:    *seed,
		Timeout: *timeout,
	})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		cliutil.PrintJSON("socsim", res)
		return
	}

	if *timeout < 0 {
		fmt.Printf("derived timeout threshold: %.4f\n", res.DerivedTimeout)
	}
	fmt.Printf("%s under %s sizing, budget %d, horizon %.0f, seed %d\n",
		res.Arch, res.Policy, *budget, *horizon, *seed)
	fmt.Printf("generated %d, delivered %d, lost %d (%.2f%%), timeout drops %d\n",
		res.Generated, res.Delivered, res.Lost, res.LossFraction*100, res.TimeoutDrops)

	headers := []string{"processor", "generated", "delivered", "lost", "timeout"}
	var rows [][]string
	for _, p := range res.PerProc {
		rows = append(rows, []string{
			p.Proc, fmt.Sprint(p.Generated), fmt.Sprint(p.Delivered),
			fmt.Sprint(p.Lost), fmt.Sprint(p.Timeout),
		})
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		fatal(err)
	}
}

func fatal(err error) { cliutil.Fatal("socsim", err) }
