// Command socbufrouter fronts a fleet of socbufd backends (DESIGN.md §10):
// it shards the solve endpoints across the fleet by normalised request
// fingerprint on a consistent-hash ring, so the engine-level request
// coalescing and cache locality that make a single socbufd fast survive
// scale-out, and it hosts the fleet's shared solve-cache tier.
//
//	socbufrouter -addr :8360 -backends http://127.0.0.1:8344,http://127.0.0.1:8345
//
// Each backend should attach to the shared tier with
// `-remote-cache http://<router>/v1/cache`, letting shards adopt each
// other's sub-model solutions for the overlap fingerprint affinity cannot
// capture (fail-open: a dead router costs the shards recomputes, never
// availability).
//
// Endpoints (the README's "Running a fleet"):
//
//	POST /v1/solve           sharded by fingerprint; identical requests
//	                         land on one shard and coalesce there
//	POST /v1/sweep/budget    sharded likewise; NDJSON streamed through
//	POST /v1/sweep/scenario  sharded likewise
//	POST /v1/placement       sharded likewise
//	GET  /v1/stats           per-shard stats + fleet-wide sums
//	GET  /v1/healthz         router liveness + ring membership
//	GET  /v1/readyz          200 while ≥1 backend is ready
//	*    /v1/cache/{key}     the shared solve-cache tier
//
// Ring membership is health-checked against each backend's drain-aware
// /v1/readyz, so a draining shard leaves the ring before its first 503; a
// shard that cannot be reached at all fails over to the next ring member
// mid-request. Backend 503 backpressure (with its Retry-After) passes
// through untouched.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"socbuf/internal/cliutil"
	"socbuf/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8360", "listen address")
		backends = flag.String("backends", "", "comma-separated socbufd base URLs (required), e.g. http://127.0.0.1:8344,http://127.0.0.1:8345")
		replicas = flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = the default 64)")
		health   = flag.Duration("health-interval", 2*time.Second, "period of the /v1/readyz ring health poll")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline")
	)
	flag.Parse()
	if *backends == "" {
		cliutil.Fatal("socbufrouter", errors.New("-backends is required (comma-separated socbufd base URLs)"))
	}
	if *health <= 0 {
		cliutil.Fatal("socbufrouter", fmt.Errorf("-health-interval %v must be positive", *health))
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	rt, err := router.New(router.Options{
		Backends:       urls,
		Replicas:       *replicas,
		HealthInterval: *health,
	})
	if err != nil {
		cliutil.Fatal("socbufrouter", err)
	}
	defer rt.Close()
	// Seed the ring's health bits before accepting traffic so a backend that
	// is already down never sees the first requests.
	hctx, hcancel := context.WithTimeout(context.Background(), *health)
	rt.RefreshHealth(hctx)
	hcancel()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("socbufrouter: listening on %s, %d backends", *addr, len(urls))

	select {
	case err := <-errc:
		cliutil.Fatal("socbufrouter", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("socbufrouter: shutting down (drain timeout %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		cliutil.Fatal("socbufrouter", fmt.Errorf("unclean shutdown: %w", err))
	}
	log.Printf("socbufrouter: shutdown complete")
}
