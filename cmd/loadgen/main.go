// Command loadgen drives a socbufd or socbufrouter endpoint with a
// closed-loop workload and reports throughput and latency percentiles — the
// measurement tool behind PERFORMANCE.md's fleet table (`make fleet-bench`).
//
//	loadgen -url http://127.0.0.1:8360 -duration 10s -concurrency 16 \
//	        -mix solve=8,robust=2,sweep=1,placement=1
//
// Closed loop means each of -concurrency workers issues its next request
// only after the previous one completes; -rate additionally caps the fleet-
// wide issue rate (0 = as fast as the loop allows). Requests cycle through
// -distinct seed variants per kind, so a router actually spreads them across
// shards while each variant stays cache-warm.
//
// Backpressure (HTTP 503) is honored, not counted as failure: the worker
// sleeps the response's Retry-After and re-issues the same request, exactly
// like a well-behaved client. EXPERIMENTS.md defines every output column;
// -json emits the same numbers machine-readably.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"socbuf/internal/cliutil"
)

// kind is one request archetype in the mix.
type kind struct {
	name   string
	weight int
	path   string
	body   func(i int) string
}

// result is one completed request's accounting.
type result struct {
	kind    string
	ok      bool
	retries int
	latency time.Duration
}

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8344", "socbufd or socbufrouter base URL")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		rate        = flag.Float64("rate", 0, "target fleet-wide requests/sec (0 = closed-loop maximum)")
		mix         = flag.String("mix", "solve=1", "request mix as kind=weight, comma-separated (kinds: solve, robust, sweep, placement)")
		scenarioF   = flag.String("scenario", "twobus", "registry scenario for solve requests")
		archF       = flag.String("arch", "twobus", "architecture preset for sweep and placement requests")
		budgetsF    = flag.String("budgets", "16,24,32", "sweep budget points / placement budget cycle")
		distinct    = flag.Int("distinct", 8, "distinct seed variants per kind (spreads load across a router's shards)")
		iterations  = flag.Int("iterations", 1, "methodology iterations per request")
		horizon     = flag.Float64("horizon", 400, "simulation horizon")
		warmup      = flag.Float64("warmup", 50, "simulation warm-up")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()
	if *concurrency < 1 {
		cliutil.Fatal("loadgen", fmt.Errorf("-concurrency %d must be positive", *concurrency))
	}
	if *duration <= 0 {
		cliutil.Fatal("loadgen", fmt.Errorf("-duration %v must be positive", *duration))
	}
	if *rate < 0 {
		cliutil.Fatal("loadgen", fmt.Errorf("-rate %g must not be negative", *rate))
	}
	if *distinct < 1 {
		cliutil.Fatal("loadgen", fmt.Errorf("-distinct %d must be positive", *distinct))
	}
	budgets, err := parseBudgets(*budgetsF)
	if err != nil {
		cliutil.Fatal("loadgen", err)
	}
	kinds, err := buildMix(*mix, mixParams{
		scenario: *scenarioF, arch: *archF, budgets: budgets,
		iterations: *iterations, horizon: *horizon, warmup: *warmup,
	})
	if err != nil {
		cliutil.Fatal("loadgen", err)
	}

	rep := run(*url, *duration, *concurrency, *rate, *distinct, kinds)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			cliutil.Fatal("loadgen", err)
		}
		return
	}
	rep.print(os.Stdout)
}

type mixParams struct {
	scenario, arch  string
	budgets         []int
	iterations      int
	horizon, warmup float64
}

func parseBudgets(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := strconv.Atoi(f)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("-budgets entry %q must be a positive integer", f)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-budgets %q has no entries", s)
	}
	return out, nil
}

// buildMix parses "solve=8,sweep=1" into weighted request archetypes. The
// seed index i differentiates request content (and therefore fingerprints)
// within each kind.
func buildMix(spec string, p mixParams) ([]kind, error) {
	budgetList := make([]string, len(p.budgets))
	for i, b := range p.budgets {
		budgetList[i] = strconv.Itoa(b)
	}
	archetypes := map[string]kind{
		"solve": {name: "solve", path: "/v1/solve", body: func(i int) string {
			return fmt.Sprintf(`{"scenario":%q,"iterations":%d,"seeds":[%d],"horizon":%g,"warmUp":%g}`,
				p.scenario, p.iterations, i+1, p.horizon, p.warmup)
		}},
		// Robust requests exercise the chance-constrained backend: same
		// /v1/solve endpoint, method pinned to "robust" with a modest Monte-
		// Carlo sample count, the spec seed varied per variant so each
		// fingerprints (and caches) distinctly.
		"robust": {name: "robust", path: "/v1/solve", body: func(i int) string {
			return fmt.Sprintf(`{"scenario":%q,"method":"robust","uncertainty":{"samples":32,"seed":%d},"iterations":%d,"seeds":[%d],"horizon":%g,"warmUp":%g}`,
				p.scenario, i+1, p.iterations, i+1, p.horizon, p.warmup)
		}},
		"sweep": {name: "sweep", path: "/v1/sweep/budget", body: func(i int) string {
			return fmt.Sprintf(`{"arch":%q,"budgets":[%s],"iterations":%d,"seeds":[%d],"horizon":%g,"warmUp":%g,"useCache":true}`,
				p.arch, strings.Join(budgetList, ","), p.iterations, i+1, p.horizon, p.warmup)
		}},
		"placement": {name: "placement", path: "/v1/placement", body: func(i int) string {
			return fmt.Sprintf(`{"arch":%q,"budget":%d,"method":"analytic","iterations":%d,"seeds":[%d],"horizon":%g,"warmUp":%g,"useCache":true}`,
				p.arch, p.budgets[i%len(p.budgets)], p.iterations, i+1, p.horizon, p.warmup)
		}},
	}
	var kinds []kind
	for _, f := range strings.Split(spec, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return nil, fmt.Errorf("-mix entry %q must be kind=weight", f)
		}
		k, exists := archetypes[name]
		if !exists {
			return nil, fmt.Errorf("-mix kind %q unknown (have solve, robust, sweep, placement)", name)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix weight %q must be a non-negative integer", weight)
		}
		if w > 0 {
			k.weight = w
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-mix %q selects no requests", spec)
	}
	return kinds, nil
}

// pickKind cycles deterministically through the mix in weight proportion.
func pickKind(kinds []kind, n int) kind {
	total := 0
	for _, k := range kinds {
		total += k.weight
	}
	slot := n % total
	for _, k := range kinds {
		if slot < k.weight {
			return k
		}
		slot -= k.weight
	}
	return kinds[len(kinds)-1] // unreachable
}

// run drives the closed loop and aggregates the report.
func run(url string, duration time.Duration, concurrency int, rate float64, distinct int, kinds []kind) *report {
	var (
		seq      atomic.Int64
		mu       sync.Mutex
		results  []result
		deadline = time.Now().Add(duration)
		client   = &http.Client{}
	)
	// The rate limiter is a shared ticker channel: with -rate 120 and 16
	// workers, each blocked worker takes the next tick, spacing issues
	// fleet-wide rather than per worker.
	var ticks <-chan time.Time
	if rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer t.Stop()
		ticks = t.C
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if ticks != nil {
					<-ticks
					if !time.Now().Before(deadline) {
						return
					}
				}
				n := int(seq.Add(1) - 1)
				k := pickKind(kinds, n)
				res := issue(client, url, k, n%distinct, deadline)
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return summarise(url, concurrency, rate, time.Since(start), results)
}

// issue sends one request, honoring 503 backpressure: sleep the server's
// Retry-After and re-issue until the deadline. Latency is the full wall time
// including backoff — what a real client experienced.
func issue(client *http.Client, url string, k kind, seed int, deadline time.Time) result {
	body := k.body(seed)
	start := time.Now()
	res := result{kind: k.name}
	for {
		resp, err := client.Post(url+k.path, "application/json", strings.NewReader(body))
		if err != nil {
			res.latency = time.Since(start)
			return res
		}
		// Sweeps stream NDJSON: the request is done when the body ends.
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			wait := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra >= 0 {
				wait = time.Duration(ra) * time.Second
			}
			if time.Now().Add(wait).After(deadline) {
				res.latency = time.Since(start)
				return res
			}
			res.retries++
			time.Sleep(wait)
			continue
		}
		res.ok = resp.StatusCode == http.StatusOK && cerr == nil
		res.latency = time.Since(start)
		return res
	}
}

// report is the loadgen output (the -json shape; EXPERIMENTS.md defines the
// columns).
type report struct {
	URL         string  `json:"url"`
	Concurrency int     `json:"concurrency"`
	TargetRate  float64 `json:"targetRate,omitempty"`
	DurationS   float64 `json:"durationS"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Errors      int     `json:"errors"`
	Retries503  int     `json:"retries503"`
	Throughput  float64 `json:"reqPerSec"`
	LatencyMS   struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latencyMs"`
	Mix map[string]int `json:"mix"`
}

func summarise(url string, concurrency int, rate float64, elapsed time.Duration, results []result) *report {
	rep := &report{
		URL: url, Concurrency: concurrency, TargetRate: rate,
		DurationS: elapsed.Seconds(), Sent: len(results), Mix: map[string]int{},
	}
	var lat []float64
	for _, r := range results {
		rep.Mix[r.kind]++
		rep.Retries503 += r.retries
		if r.ok {
			rep.OK++
			lat = append(lat, float64(r.latency)/float64(time.Millisecond))
		} else {
			rep.Errors++
		}
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	}
	sort.Float64s(lat)
	rep.LatencyMS.P50 = percentile(lat, 0.50)
	rep.LatencyMS.P90 = percentile(lat, 0.90)
	rep.LatencyMS.P99 = percentile(lat, 0.99)
	if n := len(lat); n > 0 {
		rep.LatencyMS.Max = lat[n-1]
	}
	return rep
}

// percentile is the nearest-rank percentile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func (r *report) print(w io.Writer) {
	fmt.Fprintf(w, "target      %s (concurrency %d", r.URL, r.Concurrency)
	if r.TargetRate > 0 {
		fmt.Fprintf(w, ", rate %g/s", r.TargetRate)
	}
	fmt.Fprintf(w, ")\n")
	fmt.Fprintf(w, "duration    %.1fs\n", r.DurationS)
	fmt.Fprintf(w, "requests    %d sent, %d ok, %d errors, %d 503-retries\n", r.Sent, r.OK, r.Errors, r.Retries503)
	fmt.Fprintf(w, "throughput  %.1f req/s\n", r.Throughput)
	fmt.Fprintf(w, "latency ms  p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		r.LatencyMS.P50, r.LatencyMS.P90, r.LatencyMS.P99, r.LatencyMS.Max)
	names := make([]string, 0, len(r.Mix))
	for k := range r.Mix {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "mix         %-9s %d\n", k, r.Mix[k])
	}
}
