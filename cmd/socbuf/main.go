// Command socbuf runs the buffer-insertion and sizing methodology on a named
// preset architecture, a JSON architecture, or a registered scenario, and
// prints the resulting allocation and loss comparison.
//
//	socbuf -arch netproc -budget 160 -iters 10
//	socbuf -arch netproc -sweep 160,320,640 -parallel 8
//	socbuf -arch netproc -sweep 160,320,640 -cache-stats
//	socbuf -scenario chain6-bursty
//	socbuf -list-scenarios
//
// -sweep runs the methodology at each listed budget through the parallel
// sweep engine instead of a single run; -parallel bounds its worker pool
// (0 = GOMAXPROCS). Results are identical for every worker count.
//
// -cache routes every solve through a shared solve cache
// (internal/solvecache): sweeps additionally fingerprint all points up
// front and prewarm one solve per structural class. -cache-stats implies
// -cache and prints the hit/miss/warm-start counters afterwards (see
// PERFORMANCE.md for how to read them).
//
// -scenario runs one registry scenario (its generated topology, traffic
// model and budget); explicitly-set -budget/-iters/-horizon flags override
// the scenario's own values. -list-scenarios prints the registry.
package main

import (
	"flag"
	"fmt"
	"os"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/experiments"
	"socbuf/internal/report"
	"socbuf/internal/scenario"
	"socbuf/internal/solvecache"
)

func main() {
	var (
		name       = flag.String("arch", "netproc", "preset: figure1 | twobus | netproc")
		file       = flag.String("file", "", "load a JSON architecture instead of a preset")
		scen       = flag.String("scenario", "", "run a registered scenario instead of a preset (see -list-scenarios)")
		list       = flag.Bool("list-scenarios", false, "print the scenario registry and exit")
		budget     = flag.Int("budget", 160, "total buffer budget in units")
		iters      = flag.Int("iters", 10, "methodology iterations")
		horiz      = flag.Float64("horizon", 2000, "evaluation sim horizon")
		sweep      = flag.String("sweep", "", "comma-separated budgets: sweep instead of a single run")
		parallel   = flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		refine     = flag.Bool("refine", false, "refine stationary distributions from the policy-induced chains (dense/sparse auto-selected)")
		useCache   = flag.Bool("cache", false, "share a solve cache across all solves (sweeps prewarm it)")
		cacheStats = flag.Bool("cache-stats", false, "print solve-cache hit/miss/warm-start counters (implies -cache)")
	)
	flag.Parse()
	*useCache = *useCache || *cacheStats
	var cache *solvecache.Cache
	if *useCache {
		cache = solvecache.New()
	}

	if *list {
		if err := experiments.WriteScenarioList(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	// Registered after the solve-free early exits so -cache-stats only ever
	// reports a cache that actually fielded solves.
	defer func() {
		if *cacheStats {
			fmt.Println()
			if err := experiments.WriteCacheStats(os.Stdout, cache.Stats()); err != nil {
				fatal(err)
			}
		}
	}()
	if *scen != "" {
		if *sweep != "" || *file != "" {
			fatal(fmt.Errorf("-scenario cannot be combined with -sweep or -file"))
		}
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if err := runScenario(*scen, set, *budget, *iters, *horiz, *refine, *parallel, cache); err != nil {
			fatal(err)
		}
		return
	}

	var a *arch.Architecture
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		a, err = arch.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		switch *name {
		case "figure1":
			a = arch.Figure1()
		case "twobus":
			a = arch.TwoBusAMBA()
		case "netproc":
			a = arch.NetworkProcessor()
		default:
			fmt.Fprintf(os.Stderr, "socbuf: unknown architecture %q\n", *name)
			os.Exit(2)
		}
	}

	if *sweep != "" {
		if err := runSweep(a, *sweep, *iters, *horiz, *parallel, cache); err != nil {
			fatal(err)
		}
		return
	}

	res, err := core.Run(core.Config{
		Arch: a, Budget: *budget, Iterations: *iters, Horizon: *horiz,
		Workers: *parallel, RefineStationary: *refine, Cache: cache,
	})
	if err != nil {
		fatal(err)
	}
	printResult(a.Name, *budget, res)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "socbuf:", err)
	os.Exit(1)
}

// runScenario executes one registry scenario's methodology run. set marks
// the flags the user passed explicitly: those override the scenario's own
// budget/iterations/horizon.
func runScenario(name string, set map[string]bool, budget, iters int, horizon float64, refine bool, workers int, cache *solvecache.Cache) error {
	sc, ok := scenario.Get(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (have %v)", name, scenario.Names())
	}
	cfg, err := sc.CoreConfig()
	if err != nil {
		return err
	}
	if set["budget"] {
		cfg.Budget = budget
	}
	if set["iters"] {
		cfg.Iterations = iters
	}
	if set["horizon"] {
		cfg.Horizon = horizon
	}
	cfg.Workers = workers
	cfg.RefineStationary = refine
	cfg.Cache = cache

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %s — %s, traffic %s\n", sc.Name, sc.Topology, sc.Traffic)
	printResult(res.Arch.Name, cfg.Budget, res)
	return nil
}

// printResult renders the single-run summary and allocation table.
func printResult(archName string, budget int, res *core.Result) {
	fmt.Printf("architecture %s, budget %d, %d iterations\n", archName, budget, len(res.Iterations))
	fmt.Printf("subsystems after buffer insertion: %d (all linear)\n", len(res.Subsystems))
	fmt.Printf("baseline (uniform) loss: %d\n", res.BaselineLoss)
	fmt.Printf("best sized loss:         %d  (%.1f%% reduction, iteration %d)\n",
		res.Best.SimLoss, res.Improvement()*100, res.Best.Index)
	fmt.Printf("occupancy cap binding: %v, randomised states: %d\n\n",
		res.Best.CapBinding, res.Best.RandomisedStates)

	headers := []string{"buffer", "uniform", "sized"}
	var rows [][]string
	for _, id := range report.SortedKeys(res.Best.Alloc) {
		rows = append(rows, []string{id, fmt.Sprint(res.BaselineAlloc[id]), fmt.Sprint(res.Best.Alloc[id])})
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		fatal(err)
	}
}

// runSweep fans the methodology across the listed budgets with the parallel
// sweep engine and prints one row per budget. With a cache, the sweep is
// planned first: all points fingerprinted, one solve per structural class
// prewarmed, then every point shares the cache.
func runSweep(a *arch.Architecture, list string, iters int, horizon float64, workers int, cache *solvecache.Cache) error {
	budgets, err := experiments.ParseBudgets(list)
	if err != nil {
		return err
	}
	opt := experiments.Options{Iterations: iters, Horizon: horizon, Workers: workers, Cache: cache}
	res, err := experiments.SweepWithPlan(os.Stdout, func() *arch.Architecture { return a }, budgets, opt)
	if res == nil {
		return err
	}
	fmt.Printf("architecture %s — budget sweep, %d points, %d iterations each\n", a.Name, len(budgets), iters)
	if werr := res.WriteTable(os.Stdout); werr != nil {
		return werr
	}
	return err
}
