// Command socbuf runs the buffer-insertion and sizing methodology on a named
// preset architecture, a JSON architecture, or a registered scenario, and
// prints the resulting allocation and loss comparison.
//
//	socbuf -arch netproc -budget 160 -iters 10
//	socbuf -arch netproc -budget 160 -method analytic
//	socbuf -arch netproc -sweep 160,320,640 -parallel 8
//	socbuf -arch netproc -sweep 160,320,640 -cache-stats
//	socbuf -sweep 160,320,640 -method analytic -methods ,,exact
//	socbuf -scenario chain6-bursty
//	socbuf -scenario chain6 -place -method hybrid
//	socbuf -place -buffer-types lite:1:0.5,fast:4:0.05 -cost-budget 8
//	socbuf -list-scenarios
//
// -method selects the solver backend (exact | analytic | hybrid | robust; see
// README "Choosing a solver method"). -methods overrides it per sweep
// point — the example above screens the first two budgets analytically and
// solves only the last exactly.
//
// -sweep runs the methodology at each listed budget through the parallel
// sweep engine instead of a single run; -parallel bounds its worker pool
// (0 = GOMAXPROCS). Results are identical for every worker count.
//
// -cache routes every solve through a shared solve cache
// (internal/solvecache): sweeps additionally fingerprint all points up
// front and prewarm one solve per structural class. -cache-stats implies
// -cache and prints the hit/miss/warm-start counters afterwards (see
// PERFORMANCE.md for how to read them).
//
// -scenario runs one registry scenario (its generated topology, traffic
// model and budget); explicitly-set -budget/-iters/-horizon flags override
// the scenario's own values. -list-scenarios prints the registry.
//
// -place makes buffer insertion itself the decision variable: instead of
// buffering every bridge, a Van Ginneken-style dynamic program decides per
// bridge whether to insert a decoupling buffer pair (and of which
// -buffer-types catalogue entry) or to bypass it, merging its buses. The
// frontier survivors are screened analytically and the best -refine-top of
// them refined with -method. -cost-budget caps the summed insertion cost;
// DESIGN.md §7 documents the placement contract.
//
// -json emits results as JSON instead of tables.
//
// socbuf is a thin client of internal/engine — the same request/response
// API served over HTTP by cmd/socbufd.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"socbuf/internal/cliutil"
	"socbuf/internal/engine"
	"socbuf/internal/experiments"
	"socbuf/internal/placement"
	"socbuf/internal/report"
)

func main() {
	var (
		name    = flag.String("arch", "netproc", "preset: "+cliutil.PresetNames)
		file    = flag.String("file", "", "load a JSON architecture instead of a preset")
		scen    = flag.String("scenario", "", "run a registered scenario instead of a preset (see -list-scenarios)")
		list    = flag.Bool("list-scenarios", false, "print the scenario registry and exit")
		budget  = flag.Int("budget", 160, "total buffer budget in units")
		iters   = flag.Int("iters", 10, "methodology iterations")
		horiz   = flag.Float64("horizon", 2000, "evaluation sim horizon")
		sweep   = flag.String("sweep", "", "comma-separated budgets: sweep instead of a single run")
		methods = flag.String("methods", "", "per-point solver backends for -sweep, comma-aligned with the budgets (empty entries inherit -method)")
		refine  = flag.Bool("refine", false, "refine stationary distributions from the policy-induced chains (dense/sparse auto-selected)")

		place     = flag.Bool("place", false, "run the buffer-placement DP instead of sizing a fixed insertion (see README \"Buffer placement\")")
		bufTypes  = flag.String("buffer-types", "", "insertion catalogue for -place as name:cost:delay,... (empty = lite/std/fast defaults)")
		costBud   = flag.Float64("cost-budget", 0, "cap on summed insertion cost for -place (0 = unbounded)")
		latWeight = flag.Float64("latency-weight", 0, "screened latency weight in the -place DP objective (0 = 0.1 default)")
		refineTop = flag.Int("refine-top", 0, "how many screened placements -place refines with -method (0 = 3 default)")
	)
	method := cliutil.AddMethodFlag(nil)
	robust := cliutil.AddRobustFlags(nil)
	common := cliutil.AddCommonFlags(nil)
	flag.Parse()
	if err := common.Validate(); err != nil {
		fatal(err)
	}

	if *list {
		if err := engine.WriteScenarioList(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	eng := engine.New(engine.Config{Workers: common.Parallel})
	defer eng.Close()
	// Registered after the solve-free early exits so -cache-stats only ever
	// reports a cache that actually fielded solves. Under -json the counters
	// go to stderr so stdout stays one parseable document.
	defer func() {
		if common.CacheStats {
			out := common.StatsWriter()
			fmt.Fprintln(out)
			if err := eng.WriteCacheStats(out); err != nil {
				fatal(err)
			}
		}
	}()
	ctx := context.Background()

	var archJSON json.RawMessage
	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		archJSON = raw
	}

	// -methods names per-sweep-point backends; outside a sweep there are no
	// points, and silently running the default backend instead would defeat
	// the user's explicit selection.
	if *methods != "" && *sweep == "" {
		fatal(fmt.Errorf("%w: -methods only applies to -sweep (use -method for a single run)", engine.ErrInvalidRequest))
	}

	if *place {
		if *sweep != "" {
			fatal(fmt.Errorf("%w: -place cannot be combined with -sweep", engine.ErrInvalidRequest))
		}
		types, err := placement.ParseCatalogue(*bufTypes)
		if err != nil {
			fatal(fmt.Errorf("%w: %v", engine.ErrInvalidRequest, err))
		}
		req := engine.PlacementRequest{
			Method:        *method,
			Types:         types,
			CostBudget:    *costBud,
			LatencyWeight: *latWeight,
			RefineTop:     *refineTop,
			UseCache:      common.UseCache(),
		}
		if *scen != "" {
			if *file != "" {
				fatal(fmt.Errorf("-scenario cannot be combined with -file"))
			}
			req.Scenario = *scen
			// Explicitly-set flags override the scenario's own values.
			set := cliutil.SetFlags(nil)
			if set["budget"] {
				req.Budget = *budget
			}
			if set["iters"] {
				req.Iterations = *iters
			}
			if set["horizon"] {
				req.Horizon = *horiz
			}
		} else {
			req.Arch = archFor(*file, *name)
			req.ArchJSON = archJSON
			req.Budget = *budget
			req.Iterations = *iters
			req.Horizon = *horiz
		}
		res, err := eng.Placement(ctx, req)
		if err != nil {
			fatal(err)
		}
		if common.JSON {
			cliutil.PrintJSON("socbuf", res)
			return
		}
		printPlacement(res)
		return
	}

	if *scen != "" {
		if *sweep != "" || *file != "" {
			fatal(fmt.Errorf("-scenario cannot be combined with -sweep or -file"))
		}
		req := engine.SolveRequest{
			Scenario: *scen,
			Method:   *method,
			Refine:   *refine,
			UseCache: common.UseCache(),
		}
		// Explicitly-set flags override the scenario's own values.
		set := cliutil.SetFlags(nil)
		req.Uncertainty = robust.Spec(set)
		if set["budget"] {
			req.Budget = *budget
		}
		if set["iters"] {
			req.Iterations = *iters
		}
		if set["horizon"] {
			req.Horizon = *horiz
		}
		res, err := eng.Solve(ctx, req)
		if err != nil {
			fatal(err)
		}
		if common.JSON {
			cliutil.PrintJSON("socbuf", res)
			return
		}
		fmt.Printf("scenario %s — %s, traffic %s\n", res.Scenario, res.Topology, res.Traffic)
		printResult(res)
		return
	}

	if *sweep != "" {
		budgets, err := experiments.ParseBudgets(*sweep)
		if err != nil {
			fatal(err)
		}
		res, err := eng.BudgetSweep(ctx, engine.BudgetSweepRequest{
			Arch:        archFor(*file, *name),
			ArchJSON:    archJSON,
			Budgets:     budgets,
			Iterations:  *iters,
			Horizon:     *horiz,
			Method:      *method,
			Methods:     experiments.ParseMethods(*methods),
			Uncertainty: robust.Spec(cliutil.SetFlags(nil)),
			UseCache:    common.UseCache(),
		})
		if res == nil {
			fatal(err)
		}
		if common.JSON {
			if werr := res.Sweep.WriteJSON(os.Stdout); werr != nil {
				fatal(werr)
			}
		} else {
			if res.Plan != nil {
				fmt.Println("sweep plan:")
				if werr := res.Plan.WriteSummary(os.Stdout); werr != nil {
					fatal(werr)
				}
				fmt.Println()
			}
			fmt.Printf("architecture %s — budget sweep, %d points, %d iterations each\n",
				res.ArchName, len(budgets), *iters)
			if werr := res.Sweep.WriteTable(os.Stdout); werr != nil {
				fatal(werr)
			}
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	res, err := eng.Solve(ctx, engine.SolveRequest{
		Arch:        archFor(*file, *name),
		ArchJSON:    archJSON,
		Budget:      *budget,
		Iterations:  *iters,
		Horizon:     *horiz,
		Method:      *method,
		Uncertainty: robust.Spec(cliutil.SetFlags(nil)),
		Refine:      *refine,
		UseCache:    common.UseCache(),
	})
	if err != nil {
		fatal(err)
	}
	if common.JSON {
		cliutil.PrintJSON("socbuf", res)
		return
	}
	printResult(res)
}

// archFor resolves the mutually exclusive -file/-arch pair into request
// fields: a loaded file suppresses the preset name.
func archFor(file, name string) string {
	if file != "" {
		return ""
	}
	return name
}

func fatal(err error) { cliutil.Fatal("socbuf", err) }

// printPlacement renders the placement summary, the evaluated frontier and
// the chosen placement.
func printPlacement(res *engine.PlacementResult) {
	if res.Scenario != "" {
		fmt.Printf("scenario %s — %s, traffic %s\n", res.Scenario, res.Topology, res.Traffic)
	}
	fmt.Printf("architecture %s — buffer placement, budget %d, method %s\n",
		res.Arch, res.Budget, res.Method)
	if res.Cached {
		fmt.Println("served from the placement cache tier (no new evaluations)")
	}
	fmt.Printf("candidates: %d bridges (%d bypassable), placement space %d\n",
		res.Candidates, res.Bypassable, res.Enumerated)
	fmt.Printf("DP partials: %d (%d pruned as dominated), %d capacity-infeasible, %d over cost budget\n\n",
		res.Partials, res.Pruned, res.Infeasible, res.CostFiltered)

	headers := []string{"COST", "buffers", "bypassed", "screenJ", "loss", "method", "placement"}
	var rows [][]string
	for _, pt := range res.Frontier {
		m := pt.Method
		if !pt.Refined {
			m += " (screen)"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", pt.Cost),
			fmt.Sprint(pt.Buffers),
			fmt.Sprint(pt.Bypassed),
			fmt.Sprintf("%.4f", pt.ScreenJ),
			fmt.Sprint(pt.Loss),
			m,
			placement.DecisionString(pt.Decisions),
		})
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		fatal(err)
	}
	fmt.Printf("\nchosen: cost %g, loss %d (%.1f%% sizing reduction) — %s\n",
		res.Chosen.Cost, res.Chosen.Loss, res.Chosen.Improvement*100, placement.DecisionString(res.Chosen.Decisions))
}

// printResult renders the single-run summary and allocation table. The
// solver method appears only when it is not the exact default, keeping the
// default invocation's output byte-identical to the pre-backend CLI.
func printResult(res *engine.SolveResult) {
	fmt.Printf("architecture %s, budget %d, %d iterations\n", res.Arch, res.Budget, res.Iterations)
	if res.Method != "" && res.Method != "exact" {
		fmt.Printf("solver method: %s\n", res.Method)
	}
	fmt.Printf("subsystems after buffer insertion: %d (all linear)\n", res.Subsystems)
	fmt.Printf("baseline (uniform) loss: %d\n", res.UniformLoss)
	fmt.Printf("best sized loss:         %d  (%.1f%% reduction, iteration %d)\n",
		res.SizedLoss, res.Improvement*100, res.BestIteration)
	fmt.Printf("occupancy cap binding: %v, randomised states: %d\n",
		res.CapBinding, res.RandomisedStates)
	if r := res.Robust; r != nil {
		fmt.Printf("chance constraint: yield %.3f (Wilson low %.3f) at confidence %.2f over %d samples — met: %v, budget used %d\n",
			r.Yield, r.YieldLow, r.Confidence, r.Samples, r.Met, r.BudgetUsed)
	}
	fmt.Println()

	headers := []string{"buffer", "uniform", "sized"}
	var rows [][]string
	for _, a := range res.Alloc {
		rows = append(rows, []string{a.Buffer, fmt.Sprint(a.Uniform), fmt.Sprint(a.Sized)})
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		fatal(err)
	}
}
