// Command experiments regenerates every table and figure of the paper's
// evaluation, and sweeps the scenario registry:
//
//	experiments -fig3            Figure 3 (per-processor loss, three policies)
//	experiments -table1          Table 1 (budget sweep 160/320/640)
//	experiments -split           §2 demo (coupled quadratic vs split linear)
//	experiments -headline        §3 headline ratios
//	experiments -sweep           parallel budget sweep (see -budgets)
//	experiments -all             everything (the EXPERIMENTS.md run)
//	experiments -list-scenarios  print the scenario registry
//
//	experiments scenario-sweep [-scenarios a,b] [-budget N] [-iters N]
//	                           [-seeds 1,2] [-horizon T] [-parallel N] [-quick]
//	experiments robust-sweep   [-scenarios a,b] [-samples N] [-confidence p]
//	                           [-rate-sigma s] [-quick]
//	experiments placement-sweep [-scenarios a,b] [-method m] [-buffer-types t]
//	                            [-cost-budget C] [-refine-top K] [-quick]
//
// scenario-sweep runs the full methodology on every named registry scenario
// (all of them when -scenarios is empty) in parallel and prints one report
// row per scenario; -budget overrides every scenario's budget (the CI smoke
// run uses it to stay tiny).
//
// placement-sweep runs the buffer-placement DP (internal/placement; DESIGN.md
// §7) on every named registry scenario and prints one row per scenario:
// candidate and frontier sizes, DP pruning counters, and the chosen insertion
// points. EXPERIMENTS.md documents the columns.
//
// -quick reduces iterations/seeds/horizon for a fast smoke pass. -parallel N
// bounds the sweep engine's worker pool (default GOMAXPROCS); results are
// identical for every worker count.
//
// robust-sweep is scenario-sweep pinned to the robust backend: every
// scenario is sized by the Monte-Carlo chance-constrained method
// (internal/uncertain; DESIGN.md §9) and the report grows yield columns —
// the empirical fraction of traffic perturbations the chosen sizing
// survives, its Wilson lower bound, and whether the requested confidence
// was met. -samples/-confidence/-rate-sigma/-uncertainty-seed tune the
// spec (defaults 64 / 0.95 / 0.2 / 1); they are also accepted by
// scenario-sweep and the budget -sweep for points that run -method robust.
//
// -method selects the solver backend for every methodology run (exact |
// analytic | hybrid | robust; README "Choosing a solver method" has the
// speed/accuracy table); -sweep additionally accepts -methods, a
// comma-separated per-point list aligned with -budgets, so one sweep can
// screen most points analytically and refine only the interesting budgets
// exactly. Both flags also exist on scenario-sweep (-method only).
//
// -cache shares one solve cache (internal/solvecache) across everything the
// invocation runs, deduplicating identical per-bus sub-model solves
// fleet-wide; -sweep additionally plans the points up front and prewarms one
// solve per structural class. -cache-stats implies -cache and prints the
// hit/miss/warm-start counters at the end. Both flags also exist on
// scenario-sweep. -delta (requires -cache) additionally chains capped joint
// solves point-to-point through retained simplex tableaus — see
// solvecache.Cache.EnableDelta for the determinism trade-off. See
// PERFORMANCE.md for measured effect.
//
// -json emits sweep results as JSON. All sweeps route through
// internal/engine — the same request/response API served over HTTP by
// cmd/socbufd; the figure/table regenerators call internal/experiments
// directly (they are report renderers, not sweep queries).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"socbuf/internal/cliutil"
	"socbuf/internal/engine"
	"socbuf/internal/experiments"
	"socbuf/internal/placement"
	"socbuf/internal/report"
	"socbuf/internal/scenario"
	"socbuf/internal/solvecache"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenario-sweep" {
		if err := scenarioSweepCmd(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "robust-sweep" {
		if err := scenarioSweepRun("robust-sweep", os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "placement-sweep" {
		if err := placementSweepCmd(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	var (
		fig3     = flag.Bool("fig3", false, "regenerate Figure 3")
		table1   = flag.Bool("table1", false, "regenerate Table 1")
		split    = flag.Bool("split", false, "run the §2 split-vs-nonlinear demo")
		headline = flag.Bool("headline", false, "compute the §3 headline ratios")
		sweep    = flag.Bool("sweep", false, "run a parallel budget sweep over -budgets")
		all      = flag.Bool("all", false, "run everything")
		quick    = flag.Bool("quick", false, "smaller iterations/seeds/horizon")
		budget   = flag.Int("budget", 160, "buffer budget for Figure 3 / headline")
		budgets  = flag.String("budgets", "160,320,640", "comma-separated budgets for -sweep")
		methods  = flag.String("methods", "", "per-point solver backends for -sweep, comma-aligned with -budgets (empty entries inherit -method)")
		list     = flag.Bool("list-scenarios", false, "print the scenario registry and exit")
		delta    = flag.Bool("delta", false, "with -cache: chain capped solves point-to-point through the cache's delta re-solve tier (serial runs stay deterministic; see solvecache.Cache.EnableDelta)")
	)
	method := cliutil.AddMethodFlag(nil)
	robust := cliutil.AddRobustFlags(nil)
	common := cliutil.AddCommonFlags(nil)
	flag.Parse()
	if err := common.Validate(); err != nil {
		fatal(err)
	}
	if *list {
		if err := engine.WriteScenarioList(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	// -methods names per-sweep-point backends; without -sweep there are no
	// points and silently ignoring it would defeat the explicit selection.
	if *methods != "" && !*sweep {
		fatal(fmt.Errorf("%w: -methods only applies to -sweep (use -method for everything else)", engine.ErrInvalidRequest))
	}
	if !*fig3 && !*table1 && !*split && !*headline && !*sweep && !*all {
		*all = true
	}
	// One cache for everything the invocation runs: the engine adopts it for
	// the sweep queries, and the figure/table regenerators share it through
	// opt, so identical sub-model solves dedupe fleet-wide.
	var cache *solvecache.Cache
	if common.UseCache() {
		cache = solvecache.New()
	}
	if *delta {
		if cache == nil {
			fatal(fmt.Errorf("%w: -delta needs -cache (the delta tier lives in the solve cache)", engine.ErrInvalidRequest))
		}
		cache.EnableDelta()
	}
	eng := engine.New(engine.Config{Workers: common.Parallel, Cache: cache})
	defer eng.Close()

	opt := experiments.Options{}
	if *quick {
		opt = experiments.Options{Iterations: 3, Seeds: []int64{1, 2}, Horizon: 1200}
	}
	opt.Workers = common.Parallel
	opt.Cache = cache
	opt.Delta = *delta
	// -method applies to every methodology run the invocation performs:
	// the figure/table regenerators and the sweep queries alike.
	opt.Method = *method
	opt.Uncertainty = robust.Spec(cliutil.SetFlags(nil))
	// Under -json the counters go to stderr so stdout stays one parseable
	// document.
	defer func() {
		if common.CacheStats {
			if err := eng.WriteCacheStats(common.StatsWriter()); err != nil {
				fatal(err)
			}
		}
	}()

	if *all || *split {
		if err := runSplit(); err != nil {
			fatal(err)
		}
	}
	if *all || *fig3 {
		if err := runFig3(*budget, opt); err != nil {
			fatal(err)
		}
	}
	if *all || *table1 {
		if err := runTable1(opt); err != nil {
			fatal(err)
		}
	}
	if *all || *headline {
		if err := runHeadline(*budget, opt); err != nil {
			fatal(err)
		}
	}
	if *sweep {
		list, err := experiments.ParseBudgets(*budgets)
		if err != nil {
			fatal(err)
		}
		if err := runSweep(eng, list, opt, experiments.ParseMethods(*methods), common); err != nil {
			fatal(err)
		}
	}
}

// runSweep routes the budget sweep through the engine and renders the
// outcome (plan summary first when the cache planned it).
func runSweep(eng *engine.Engine, budgets []int, opt experiments.Options, methods []string, common *cliutil.CommonFlags) error {
	res, err := eng.BudgetSweep(context.Background(), engine.BudgetSweepRequest{
		Budgets:     budgets,
		Iterations:  opt.Iterations,
		Seeds:       opt.Seeds,
		Horizon:     opt.Horizon,
		Method:      opt.Method,
		Methods:     methods,
		Uncertainty: opt.Uncertainty,
		UseCache:    common.UseCache(),
	})
	if res == nil {
		return err
	}
	if common.JSON {
		if werr := res.Sweep.WriteJSON(os.Stdout); werr != nil {
			return werr
		}
		return err
	}
	if res.Plan != nil {
		fmt.Println("sweep plan:")
		if werr := res.Plan.WriteSummary(os.Stdout); werr != nil {
			return werr
		}
		fmt.Println()
	}
	fmt.Printf("Budget sweep — %d points\n", len(budgets))
	if werr := res.Sweep.WriteTable(os.Stdout); werr != nil {
		return werr
	}
	fmt.Println()
	return err
}

func fatal(err error) { cliutil.Fatal("experiments", err) }

// scenarioSweepCmd is the scenario-sweep subcommand: fan the methodology
// over registry scenarios through the engine and print a per-scenario
// report table.
func scenarioSweepCmd(args []string) error {
	return scenarioSweepRun("scenario-sweep", args)
}

// scenarioSweepRun backs both scenario-sweep and robust-sweep. robust-sweep
// is scenario-sweep pinned to the robust backend: every point runs the
// Monte-Carlo chance-constrained sizing and the report grows the yield
// columns (-method is therefore not accepted; the robust tuning flags are).
func scenarioSweepRun(name string, args []string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	var (
		names   = fs.String("scenarios", "", "comma-separated scenario names (empty = whole registry)")
		budget  = fs.Int("budget", 0, "override every scenario's budget (0 = scenario's own)")
		iters   = fs.Int("iters", 0, "override methodology iterations (0 = scenario/default)")
		seeds   = fs.String("seeds", "", "comma-separated evaluation seeds (empty = scenario/default)")
		horizon = fs.Float64("horizon", 0, "override sim horizon (0 = scenario/default)")
		quick   = fs.Bool("quick", false, "smaller iterations/seeds/horizon")
	)
	var method *string
	if name == "robust-sweep" {
		pinned := "robust"
		method = &pinned
	} else {
		method = cliutil.AddMethodFlag(fs)
	}
	robust := cliutil.AddRobustFlags(fs)
	common := cliutil.AddCommonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := common.Validate(); err != nil {
		return err
	}
	var sd []int64
	if *seeds != "" {
		var err error
		if sd, err = experiments.ParseSeeds(*seeds); err != nil {
			return err
		}
	}

	eng := engine.New(engine.Config{Workers: common.Parallel})
	defer eng.Close()
	scNames := experiments.ParseNames(*names)
	res, err := eng.ScenarioSweep(context.Background(), engine.ScenarioSweepRequest{
		Scenarios:   scNames,
		Budget:      *budget,
		Iterations:  *iters,
		Seeds:       sd,
		Horizon:     *horizon,
		Method:      *method,
		Uncertainty: robust.Spec(cliutil.SetFlags(fs)),
		Quick:       *quick,
		UseCache:    common.UseCache(),
	})
	if res == nil {
		return err
	}
	if common.JSON {
		if werr := res.Sweep.WriteJSON(os.Stdout); werr != nil {
			return werr
		}
	} else {
		title := "Scenario sweep"
		if name == "robust-sweep" {
			title = "Robust sweep"
		}
		fmt.Printf("%s — %d scenarios\n", title, len(res.Sweep.Points)+len(res.Sweep.Failed))
		if werr := res.Sweep.WriteTable(os.Stdout); werr != nil {
			return werr
		}
		fmt.Println()
	}
	if common.CacheStats {
		if werr := eng.WriteCacheStats(common.StatsWriter()); werr != nil {
			return werr
		}
	}
	return err
}

// placementSweepCmd is the placement-sweep subcommand: run the buffer-
// placement DP on every named registry scenario (all of them when
// -scenarios is empty) and print one report row per scenario — frontier
// size, DP pruning counters and the chosen insertion points. Scenarios run
// sequentially; each placement's evaluations fan out across -parallel
// workers internally. Partial failures follow the sweep contract: every
// successful row prints, the error joins the per-scenario failures.
func placementSweepCmd(args []string) error {
	fs := flag.NewFlagSet("placement-sweep", flag.ExitOnError)
	var (
		names     = fs.String("scenarios", "", "comma-separated scenario names (empty = whole registry)")
		budget    = fs.Int("budget", 0, "override every scenario's budget (0 = scenario's own)")
		iters     = fs.Int("iters", 0, "override methodology iterations per evaluation (0 = scenario/default)")
		horizon   = fs.Float64("horizon", 0, "override sim horizon (0 = scenario/default)")
		quick     = fs.Bool("quick", false, "smaller iterations/seeds/horizon per evaluation")
		bufTypes  = fs.String("buffer-types", "", "insertion catalogue as name:cost:delay,... (empty = lite/std/fast defaults)")
		costBud   = fs.Float64("cost-budget", 0, "cap on summed insertion cost (0 = unbounded)")
		latWeight = fs.Float64("latency-weight", 0, "screened latency weight in the DP objective (0 = 0.1 default)")
		refineTop = fs.Int("refine-top", 0, "screened placements refined with -method per scenario (0 = 3 default)")
	)
	method := cliutil.AddMethodFlag(fs)
	common := cliutil.AddCommonFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := common.Validate(); err != nil {
		return err
	}
	types, err := placement.ParseCatalogue(*bufTypes)
	if err != nil {
		return fmt.Errorf("%w: %v", engine.ErrInvalidRequest, err)
	}
	scs, err := scenario.Resolve(experiments.ParseNames(*names))
	if err != nil {
		return fmt.Errorf("%w: %v", engine.ErrInvalidRequest, err)
	}

	eng := engine.New(engine.Config{Workers: common.Parallel})
	defer eng.Close()
	ctx := context.Background()

	var results []*engine.PlacementResult
	var failures []error
	var rows [][]string
	for _, sc := range scs {
		req := engine.PlacementRequest{
			Scenario:      sc.Name,
			Budget:        *budget,
			Iterations:    *iters,
			Horizon:       *horizon,
			Method:        *method,
			Types:         types,
			CostBudget:    *costBud,
			LatencyWeight: *latWeight,
			RefineTop:     *refineTop,
			UseCache:      common.UseCache(),
		}
		if *quick {
			if req.Iterations == 0 {
				req.Iterations = 2
			}
			req.Seeds = []int64{1}
			if req.Horizon == 0 {
				req.Horizon = 400
			}
			req.WarmUp = 50
		}
		res, err := eng.Placement(ctx, req)
		if err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", sc.Name, err))
			rows = append(rows, []string{sc.Name, "FAILED", "-", "-", "-", "-", "-", "-", err.Error()})
			continue
		}
		results = append(results, res)
		rows = append(rows, []string{
			sc.Name,
			res.Method,
			fmt.Sprint(res.Candidates),
			fmt.Sprint(len(res.Frontier)),
			fmt.Sprint(res.Pruned),
			fmt.Sprintf("%g", res.Chosen.Cost),
			fmt.Sprint(res.Chosen.Bypassed),
			fmt.Sprint(res.Chosen.Loss),
			placement.DecisionString(res.Chosen.Decisions),
		})
	}

	if common.JSON {
		cliutil.PrintJSON("experiments", results)
	} else {
		fmt.Printf("Placement sweep — %d scenarios\n", len(scs))
		headers := []string{"SCENARIO", "method", "cand", "frontier", "pruned", "cost", "bypassed", "loss", "placement"}
		if err := report.Table(os.Stdout, headers, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if common.CacheStats {
		if err := eng.WriteCacheStats(common.StatsWriter()); err != nil {
			return err
		}
	}
	return errors.Join(failures...)
}

func runFig3(budget int, opt experiments.Options) error {
	fig, err := experiments.Figure3(budget, opt)
	if err != nil {
		return err
	}
	groups := make([]report.BarGroup, 0, len(fig.Procs))
	for _, p := range fig.Procs {
		groups = append(groups, report.BarGroup{
			Label:  p,
			Values: []float64{float64(fig.Pre[p]), float64(fig.Post[p]), float64(fig.Timeout[p])},
		})
	}
	title := fmt.Sprintf("Figure 3 — loss per processor, budget %d (timeout threshold %.3f)", budget, fig.TimeoutThreshold)
	if err := report.BarChart(os.Stdout, title, []string{"pre", "post", "timeout"}, groups, 50); err != nil {
		return err
	}
	fmt.Printf("totals: pre=%d post=%d timeout=%d; worsened after sizing: %v\n\n",
		fig.PreTotal, fig.PostTotal, fig.TimeoutTotal, fig.Worsened)
	return nil
}

func runTable1(opt experiments.Options) error {
	tbl, err := experiments.Table1(nil, nil, opt)
	if err != nil {
		return err
	}
	headers := []string{"PROCESSOR"}
	for _, b := range tbl.Budgets {
		headers = append(headers, fmt.Sprintf("Buf %d pre", b), fmt.Sprintf("Buf %d post", b))
	}
	var rows [][]string
	for _, p := range tbl.Procs {
		row := []string{p}
		for _, b := range tbl.Budgets {
			row = append(row, fmt.Sprint(tbl.Pre[b][p]), fmt.Sprint(tbl.Post[b][p]))
		}
		rows = append(rows, row)
	}
	total := []string{"TOTAL (all 17)"}
	for _, b := range tbl.Budgets {
		total = append(total, fmt.Sprint(tbl.PreTotal[b]), fmt.Sprint(tbl.PostTotal[b]))
	}
	rows = append(rows, total)
	fmt.Println("Table 1 — loss under varying total buffer size")
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runSplit() error {
	d, err := experiments.SplitDemo()
	if err != nil {
		return err
	}
	fmt.Println("§2 demo — Figure 1 architecture")
	fmt.Printf("  coupled quadratic system: %d unknowns; KKT-Newton valid solution: %v (%s)\n",
		d.CoupledUnknowns, d.KKTValid, d.KKTReason)
	fmt.Printf("  after buffer insertion:   %d linear subsystems; joint LP optimum %.4f "+
		"(one finite solve, %d pivots)\n\n", d.SplitSubsystems, d.SplitLossRate, d.SplitIters)
	return nil
}

func runHeadline(budget int, opt experiments.Options) error {
	h, err := experiments.Headline(budget, opt)
	if err != nil {
		return err
	}
	fmt.Println("§3 headline ratios")
	fmt.Printf("  CTMDP / constant sizing loss: %.2f  (paper ≈ 0.80, a ~20%% reduction)\n", h.CTMDPOverConstant)
	fmt.Printf("  CTMDP / timeout policy loss:  %.2f  (paper ≈ 0.50)\n\n", h.CTMDPOverTimeout)
	return nil
}
