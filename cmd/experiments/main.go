// Command experiments regenerates every table and figure of the paper's
// evaluation, and sweeps the scenario registry:
//
//	experiments -fig3            Figure 3 (per-processor loss, three policies)
//	experiments -table1          Table 1 (budget sweep 160/320/640)
//	experiments -split           §2 demo (coupled quadratic vs split linear)
//	experiments -headline        §3 headline ratios
//	experiments -sweep           parallel budget sweep (see -budgets)
//	experiments -all             everything (the EXPERIMENTS.md run)
//	experiments -list-scenarios  print the scenario registry
//
//	experiments scenario-sweep [-scenarios a,b] [-budget N] [-iters N]
//	                           [-seeds 1,2] [-horizon T] [-parallel N] [-quick]
//
// scenario-sweep runs the full methodology on every named registry scenario
// (all of them when -scenarios is empty) in parallel and prints one report
// row per scenario; -budget overrides every scenario's budget (the CI smoke
// run uses it to stay tiny).
//
// -quick reduces iterations/seeds/horizon for a fast smoke pass. -parallel N
// bounds the sweep engine's worker pool (default GOMAXPROCS); results are
// identical for every worker count.
//
// -cache shares one solve cache (internal/solvecache) across everything the
// invocation runs, deduplicating identical per-bus sub-model solves
// fleet-wide; -sweep additionally plans the points up front and prewarms one
// solve per structural class. -cache-stats implies -cache and prints the
// hit/miss/warm-start counters at the end. Both flags also exist on
// scenario-sweep. See PERFORMANCE.md for measured effect.
package main

import (
	"flag"
	"fmt"
	"os"

	"socbuf/internal/arch"
	"socbuf/internal/experiments"
	"socbuf/internal/report"
	"socbuf/internal/scenario"
	"socbuf/internal/solvecache"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "scenario-sweep" {
		if err := scenarioSweepCmd(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	var (
		fig3       = flag.Bool("fig3", false, "regenerate Figure 3")
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		split      = flag.Bool("split", false, "run the §2 split-vs-nonlinear demo")
		headline   = flag.Bool("headline", false, "compute the §3 headline ratios")
		sweep      = flag.Bool("sweep", false, "run a parallel budget sweep over -budgets")
		all        = flag.Bool("all", false, "run everything")
		quick      = flag.Bool("quick", false, "smaller iterations/seeds/horizon")
		budget     = flag.Int("budget", 160, "buffer budget for Figure 3 / headline")
		budgets    = flag.String("budgets", "160,320,640", "comma-separated budgets for -sweep")
		parallel   = flag.Int("parallel", 0, "worker goroutines for sweeps (0 = GOMAXPROCS, 1 = serial)")
		list       = flag.Bool("list-scenarios", false, "print the scenario registry and exit")
		useCache   = flag.Bool("cache", false, "share a solve cache across all runs (sweeps prewarm it)")
		cacheStats = flag.Bool("cache-stats", false, "print solve-cache counters at the end (implies -cache)")
	)
	flag.Parse()
	if *list {
		if err := experiments.WriteScenarioList(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if !*fig3 && !*table1 && !*split && !*headline && !*sweep && !*all {
		*all = true
	}
	opt := experiments.Options{}
	if *quick {
		opt = experiments.Options{Iterations: 3, Seeds: []int64{1, 2}, Horizon: 1200}
	}
	opt.Workers = *parallel
	if *useCache || *cacheStats {
		opt.Cache = solvecache.New()
	}
	defer func() {
		if *cacheStats {
			if err := experiments.WriteCacheStats(os.Stdout, opt.Cache.Stats()); err != nil {
				fatal(err)
			}
		}
	}()

	if *all || *split {
		if err := runSplit(); err != nil {
			fatal(err)
		}
	}
	if *all || *fig3 {
		if err := runFig3(*budget, opt); err != nil {
			fatal(err)
		}
	}
	if *all || *table1 {
		if err := runTable1(opt); err != nil {
			fatal(err)
		}
	}
	if *all || *headline {
		if err := runHeadline(*budget, opt); err != nil {
			fatal(err)
		}
	}
	if *sweep {
		list, err := experiments.ParseBudgets(*budgets)
		if err != nil {
			fatal(err)
		}
		if err := runSweep(list, opt); err != nil {
			fatal(err)
		}
	}
}

func runSweep(budgets []int, opt experiments.Options) error {
	res, err := experiments.SweepWithPlan(os.Stdout, arch.NetworkProcessor, budgets, opt)
	if res == nil {
		return err
	}
	fmt.Printf("Budget sweep — %d points\n", len(budgets))
	if werr := res.WriteTable(os.Stdout); werr != nil {
		return werr
	}
	fmt.Println()
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// scenarioSweepCmd is the scenario-sweep subcommand: fan the methodology
// over registry scenarios and print a per-scenario report table.
func scenarioSweepCmd(args []string) error {
	fs := flag.NewFlagSet("scenario-sweep", flag.ExitOnError)
	var (
		names      = fs.String("scenarios", "", "comma-separated scenario names (empty = whole registry)")
		budget     = fs.Int("budget", 0, "override every scenario's budget (0 = scenario's own)")
		iters      = fs.Int("iters", 0, "override methodology iterations (0 = scenario/default)")
		seeds      = fs.String("seeds", "", "comma-separated evaluation seeds (empty = scenario/default)")
		horizon    = fs.Float64("horizon", 0, "override sim horizon (0 = scenario/default)")
		parallel   = fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		quick      = fs.Bool("quick", false, "smaller iterations/seeds/horizon")
		useCache   = fs.Bool("cache", false, "share a solve cache across all scenarios")
		cacheStats = fs.Bool("cache-stats", false, "print solve-cache counters at the end (implies -cache)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scs, err := scenario.Resolve(experiments.ParseNames(*names))
	if err != nil {
		return err
	}

	opt := experiments.Options{Workers: *parallel}
	if *useCache || *cacheStats {
		opt.Cache = solvecache.New()
	}
	if *quick {
		opt.Iterations, opt.Seeds, opt.Horizon = 3, []int64{1, 2}, 1200
	}
	var sd []int64
	if *seeds != "" {
		if sd, err = experiments.ParseSeeds(*seeds); err != nil {
			return err
		}
	}
	// Explicit overrides beat both -quick and the scenarios' own values.
	for i := range scs {
		if *budget > 0 {
			scs[i].Budget = *budget
		}
		if *iters > 0 {
			scs[i].Iterations = *iters
		}
		if *horizon > 0 {
			scs[i].Horizon = *horizon
		}
		if sd != nil {
			scs[i].Seeds = sd
		}
		if *quick {
			if *iters == 0 {
				scs[i].Iterations = 0 // let opt.Iterations apply
			}
			if *seeds == "" {
				scs[i].Seeds = nil
			}
			if *horizon == 0 {
				scs[i].Horizon = 0
			}
		}
	}

	res, err := experiments.ScenarioSweep(scs, opt)
	if res == nil {
		return err
	}
	fmt.Printf("Scenario sweep — %d scenarios\n", len(scs))
	if werr := res.WriteTable(os.Stdout); werr != nil {
		return werr
	}
	fmt.Println()
	if *cacheStats {
		if werr := experiments.WriteCacheStats(os.Stdout, opt.Cache.Stats()); werr != nil {
			return werr
		}
	}
	return err
}

func runFig3(budget int, opt experiments.Options) error {
	fig, err := experiments.Figure3(budget, opt)
	if err != nil {
		return err
	}
	groups := make([]report.BarGroup, 0, len(fig.Procs))
	for _, p := range fig.Procs {
		groups = append(groups, report.BarGroup{
			Label:  p,
			Values: []float64{float64(fig.Pre[p]), float64(fig.Post[p]), float64(fig.Timeout[p])},
		})
	}
	title := fmt.Sprintf("Figure 3 — loss per processor, budget %d (timeout threshold %.3f)", budget, fig.TimeoutThreshold)
	if err := report.BarChart(os.Stdout, title, []string{"pre", "post", "timeout"}, groups, 50); err != nil {
		return err
	}
	fmt.Printf("totals: pre=%d post=%d timeout=%d; worsened after sizing: %v\n\n",
		fig.PreTotal, fig.PostTotal, fig.TimeoutTotal, fig.Worsened)
	return nil
}

func runTable1(opt experiments.Options) error {
	tbl, err := experiments.Table1(nil, nil, opt)
	if err != nil {
		return err
	}
	headers := []string{"PROCESSOR"}
	for _, b := range tbl.Budgets {
		headers = append(headers, fmt.Sprintf("Buf %d pre", b), fmt.Sprintf("Buf %d post", b))
	}
	var rows [][]string
	for _, p := range tbl.Procs {
		row := []string{p}
		for _, b := range tbl.Budgets {
			row = append(row, fmt.Sprint(tbl.Pre[b][p]), fmt.Sprint(tbl.Post[b][p]))
		}
		rows = append(rows, row)
	}
	total := []string{"TOTAL (all 17)"}
	for _, b := range tbl.Budgets {
		total = append(total, fmt.Sprint(tbl.PreTotal[b]), fmt.Sprint(tbl.PostTotal[b]))
	}
	rows = append(rows, total)
	fmt.Println("Table 1 — loss under varying total buffer size")
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runSplit() error {
	d, err := experiments.SplitDemo()
	if err != nil {
		return err
	}
	fmt.Println("§2 demo — Figure 1 architecture")
	fmt.Printf("  coupled quadratic system: %d unknowns; KKT-Newton valid solution: %v (%s)\n",
		d.CoupledUnknowns, d.KKTValid, d.KKTReason)
	fmt.Printf("  after buffer insertion:   %d linear subsystems; joint LP optimum %.4f "+
		"(one finite solve, %d pivots)\n\n", d.SplitSubsystems, d.SplitLossRate, d.SplitIters)
	return nil
}

func runHeadline(budget int, opt experiments.Options) error {
	h, err := experiments.Headline(budget, opt)
	if err != nil {
		return err
	}
	fmt.Println("§3 headline ratios")
	fmt.Printf("  CTMDP / constant sizing loss: %.2f  (paper ≈ 0.80, a ~20%% reduction)\n", h.CTMDPOverConstant)
	fmt.Printf("  CTMDP / timeout policy loss:  %.2f  (paper ≈ 0.50)\n\n", h.CTMDPOverTimeout)
	return nil
}
