// Command experiments regenerates every table and figure of the paper's
// evaluation:
//
//	experiments -fig3            Figure 3 (per-processor loss, three policies)
//	experiments -table1          Table 1 (budget sweep 160/320/640)
//	experiments -split           §2 demo (coupled quadratic vs split linear)
//	experiments -headline        §3 headline ratios
//	experiments -sweep           parallel budget sweep (see -budgets)
//	experiments -all             everything (the EXPERIMENTS.md run)
//
// -quick reduces iterations/seeds/horizon for a fast smoke pass. -parallel N
// bounds the sweep engine's worker pool (default GOMAXPROCS); results are
// identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"socbuf/internal/arch"
	"socbuf/internal/experiments"
	"socbuf/internal/report"
)

func main() {
	var (
		fig3     = flag.Bool("fig3", false, "regenerate Figure 3")
		table1   = flag.Bool("table1", false, "regenerate Table 1")
		split    = flag.Bool("split", false, "run the §2 split-vs-nonlinear demo")
		headline = flag.Bool("headline", false, "compute the §3 headline ratios")
		sweep    = flag.Bool("sweep", false, "run a parallel budget sweep over -budgets")
		all      = flag.Bool("all", false, "run everything")
		quick    = flag.Bool("quick", false, "smaller iterations/seeds/horizon")
		budget   = flag.Int("budget", 160, "buffer budget for Figure 3 / headline")
		budgets  = flag.String("budgets", "160,320,640", "comma-separated budgets for -sweep")
		parallel = flag.Int("parallel", 0, "worker goroutines for sweeps (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	if !*fig3 && !*table1 && !*split && !*headline && !*sweep && !*all {
		*all = true
	}
	opt := experiments.Options{}
	if *quick {
		opt = experiments.Options{Iterations: 3, Seeds: []int64{1, 2}, Horizon: 1200}
	}
	opt.Workers = *parallel

	if *all || *split {
		if err := runSplit(); err != nil {
			fatal(err)
		}
	}
	if *all || *fig3 {
		if err := runFig3(*budget, opt); err != nil {
			fatal(err)
		}
	}
	if *all || *table1 {
		if err := runTable1(opt); err != nil {
			fatal(err)
		}
	}
	if *all || *headline {
		if err := runHeadline(*budget, opt); err != nil {
			fatal(err)
		}
	}
	if *sweep {
		list, err := experiments.ParseBudgets(*budgets)
		if err != nil {
			fatal(err)
		}
		if err := runSweep(list, opt); err != nil {
			fatal(err)
		}
	}
}

func runSweep(budgets []int, opt experiments.Options) error {
	res, err := experiments.BudgetSweep(arch.NetworkProcessor, budgets, opt)
	if res == nil {
		return err
	}
	fmt.Printf("Budget sweep — %d points\n", len(budgets))
	if werr := res.WriteTable(os.Stdout); werr != nil {
		return werr
	}
	fmt.Println()
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func runFig3(budget int, opt experiments.Options) error {
	fig, err := experiments.Figure3(budget, opt)
	if err != nil {
		return err
	}
	groups := make([]report.BarGroup, 0, len(fig.Procs))
	for _, p := range fig.Procs {
		groups = append(groups, report.BarGroup{
			Label:  p,
			Values: []float64{float64(fig.Pre[p]), float64(fig.Post[p]), float64(fig.Timeout[p])},
		})
	}
	title := fmt.Sprintf("Figure 3 — loss per processor, budget %d (timeout threshold %.3f)", budget, fig.TimeoutThreshold)
	if err := report.BarChart(os.Stdout, title, []string{"pre", "post", "timeout"}, groups, 50); err != nil {
		return err
	}
	fmt.Printf("totals: pre=%d post=%d timeout=%d; worsened after sizing: %v\n\n",
		fig.PreTotal, fig.PostTotal, fig.TimeoutTotal, fig.Worsened)
	return nil
}

func runTable1(opt experiments.Options) error {
	tbl, err := experiments.Table1(nil, nil, opt)
	if err != nil {
		return err
	}
	headers := []string{"PROCESSOR"}
	for _, b := range tbl.Budgets {
		headers = append(headers, fmt.Sprintf("Buf %d pre", b), fmt.Sprintf("Buf %d post", b))
	}
	var rows [][]string
	for _, p := range tbl.Procs {
		row := []string{p}
		for _, b := range tbl.Budgets {
			row = append(row, fmt.Sprint(tbl.Pre[b][p]), fmt.Sprint(tbl.Post[b][p]))
		}
		rows = append(rows, row)
	}
	total := []string{"TOTAL (all 17)"}
	for _, b := range tbl.Budgets {
		total = append(total, fmt.Sprint(tbl.PreTotal[b]), fmt.Sprint(tbl.PostTotal[b]))
	}
	rows = append(rows, total)
	fmt.Println("Table 1 — loss under varying total buffer size")
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runSplit() error {
	d, err := experiments.SplitDemo()
	if err != nil {
		return err
	}
	fmt.Println("§2 demo — Figure 1 architecture")
	fmt.Printf("  coupled quadratic system: %d unknowns; KKT-Newton valid solution: %v (%s)\n",
		d.CoupledUnknowns, d.KKTValid, d.KKTReason)
	fmt.Printf("  after buffer insertion:   %d linear subsystems; joint LP optimum %.4f "+
		"(one finite solve, %d pivots)\n\n", d.SplitSubsystems, d.SplitLossRate, d.SplitIters)
	return nil
}

func runHeadline(budget int, opt experiments.Options) error {
	h, err := experiments.Headline(budget, opt)
	if err != nil {
		return err
	}
	fmt.Println("§3 headline ratios")
	fmt.Printf("  CTMDP / constant sizing loss: %.2f  (paper ≈ 0.80, a ~20%% reduction)\n", h.CTMDPOverConstant)
	fmt.Printf("  CTMDP / timeout policy loss:  %.2f  (paper ≈ 0.50)\n\n", h.CTMDPOverTimeout)
	return nil
}
