// Command benchdiff compares two `go test -bench` outputs and optionally
// fails on regressions — the regression gate of the nightly bench workflow
// (PERFORMANCE.md describes the workflow end to end).
//
//	benchdiff old.txt new.txt
//	benchdiff -gate 'BenchmarkSweep32' -max-regress 10 old.txt new.txt
//	benchdiff -emit bench-results.txt > BENCH_2026-07-27.json
//	benchdiff BENCH_2026-08-07.json bench-results.txt
//
// Either input may be raw bench text or an emitted BENCH_<date>.json
// trajectory, so the committed baselines (PERFORMANCE.md "The committed
// trajectory baseline") diff directly against fresh runs.
//
// Each benchmark present in both files is reported with its old/new ns/op
// and the delta. With -gate, benchmarks whose name matches the regexp and
// whose ns/op regressed by more than -max-regress percent fail the run
// (exit 1). Benchmarks missing from either file are reported but never
// gated, so renaming or adding benchmarks cannot break the nightly job.
//
// -emit takes a single bench output file and writes it to stdout as one
// sorted JSON object mapping benchmark name → ns/op — the machine-readable
// BENCH_<date>.json trajectory artifact the nightly workflow uploads so
// the performance history PERFORMANCE.md narrates is consumable by tools,
// not just by people reading tables.
//
// benchdiff deliberately sticks to the stdlib (no benchstat dependency); the
// workflow runs benchstat separately for the human-readable statistics and
// benchdiff for the machine gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"socbuf/internal/report"
)

// nsPerOp maps benchmark name to its (last seen) ns/op in one output file.
type nsPerOp map[string]float64

// procSuffix strips the trailing -<GOMAXPROCS> go test appends to benchmark
// names, so runs from machines with different core counts still align.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark results from one input file: either raw
// `go test -bench` output or a BENCH_<date>.json trajectory previously
// written by -emit, so committed baselines diff against fresh runs without
// keeping the raw text around.
func parse(path string) (nsPerOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		out := nsPerOp{}
		if err := json.Unmarshal([]byte(trimmed), &out); err != nil {
			return nil, fmt.Errorf("%s: not a BENCH_<date>.json trajectory: %w", path, err)
		}
		return out, nil
	}
	out := nsPerOp{}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: Name iterations value unit [value unit ...]; ns/op is the
		// first value/unit pair by convention.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			out[procSuffix.ReplaceAllString(fields[0], "")] = v
			break
		}
	}
	return out, sc.Err()
}

func main() {
	var (
		gate       = flag.String("gate", "", "regexp of benchmark names that fail the run on regression")
		maxRegress = flag.Float64("max-regress", 10, "maximum allowed ns/op regression percent for gated benchmarks")
		emit       = flag.Bool("emit", false, "emit a single bench output as sorted JSON (benchmark name → ns/op) on stdout")
	)
	flag.Parse()
	if *emit {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -emit results.txt > BENCH_<date>.json")
			os.Exit(2)
		}
		results, err := parse(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		// json.Marshal sorts map keys, so the artifact diffs cleanly
		// run-to-run.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate RE] [-max-regress PCT] old.txt new.txt")
		os.Exit(2)
	}
	var gateRE *regexp.Regexp
	if *gate != "" {
		var err error
		if gateRE, err = regexp.Compile(*gate); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	old, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows [][]string
	failed := false
	for _, name := range names {
		prev, ok := old[name]
		if !ok {
			rows = append(rows, []string{name, "-", fmt.Sprintf("%.0f", cur[name]), "new", ""})
			continue
		}
		delta := (cur[name] - prev) / prev * 100
		verdict := ""
		if gateRE != nil && gateRE.MatchString(name) {
			verdict = "ok"
			if delta > *maxRegress {
				verdict = "FAIL"
				failed = true
			}
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f", prev),
			fmt.Sprintf("%.0f", cur[name]),
			fmt.Sprintf("%+.1f%%", delta),
			verdict,
		})
	}
	gone := make([]string, 0)
	for name := range old {
		if _, ok := cur[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		rows = append(rows, []string{name, fmt.Sprintf("%.0f", old[name]), "-", "gone", ""})
	}
	if err := report.Table(os.Stdout, []string{"BENCHMARK", "old ns/op", "new ns/op", "delta", "gate"}, rows); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: gated benchmarks regressed more than %.1f%%\n", *maxRegress)
		os.Exit(1)
	}
}
