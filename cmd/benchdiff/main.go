// Command benchdiff compares two `go test -bench` outputs and optionally
// fails on regressions — the regression gate of the nightly bench workflow
// (PERFORMANCE.md describes the workflow end to end).
//
//	benchdiff old.txt new.txt
//	benchdiff -gate 'BenchmarkSweep32' -max-regress 10 old.txt new.txt
//	benchdiff -gate 'BenchmarkSweep32' -gate 'BenchmarkSparseMatVec/=25' old.txt new.txt
//	benchdiff -emit bench-results.txt > BENCH_2026-07-27.json
//	benchdiff BENCH_2026-08-07.json bench-results.txt
//
// Either input may be raw bench text or an emitted BENCH_<date>.json
// trajectory, so the committed baselines (PERFORMANCE.md "The committed
// trajectory baseline") diff directly against fresh runs.
//
// Each benchmark present in both files is reported with its old/new ns/op
// and the delta. -gate may be repeated to build a gate list: benchmarks
// whose name matches a gate's regexp and whose ns/op regressed by more than
// that gate's threshold fail the run (exit 1). A gate is either a bare
// regexp (threshold -max-regress) or RE=PCT, which overrides the threshold
// for that gate alone — kernel micro-benchmarks are noisier than end-to-end
// sweeps and get a looser gate without loosening the headline one. The
// first matching gate wins, so order specific gates before broad ones.
// Benchmarks missing from either file are reported but never gated, so
// renaming or adding benchmarks cannot break the nightly job.
//
// -emit takes a single bench output file and writes it to stdout as one
// sorted JSON object mapping benchmark name → ns/op — the machine-readable
// BENCH_<date>.json trajectory artifact the nightly workflow uploads so
// the performance history PERFORMANCE.md narrates is consumable by tools,
// not just by people reading tables.
//
// benchdiff deliberately sticks to the stdlib (no benchstat dependency); the
// workflow runs benchstat separately for the human-readable statistics and
// benchdiff for the machine gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"socbuf/internal/report"
)

// gateSpec is one entry of the gate list: which benchmarks it covers and the
// regression threshold that applies to them. max is NaN when the gate did not
// name its own threshold and should inherit -max-regress.
type gateSpec struct {
	re  *regexp.Regexp
	max float64
}

// gateList implements flag.Value so -gate can be repeated. Each value is a
// regexp, optionally suffixed =PCT to carry a per-gate threshold. The split
// is on the LAST '=' and only when the suffix parses as a number, so regexps
// containing '=' still work as long as they don't end in one.
type gateList []gateSpec

func (g *gateList) String() string {
	parts := make([]string, len(*g))
	for i, s := range *g {
		parts[i] = s.re.String()
		if !math.IsNaN(s.max) {
			parts[i] += fmt.Sprintf("=%g", s.max)
		}
	}
	return strings.Join(parts, ",")
}

func (g *gateList) Set(v string) error {
	expr, max := v, math.NaN()
	if i := strings.LastIndex(v, "="); i >= 0 {
		if pct, err := strconv.ParseFloat(v[i+1:], 64); err == nil {
			expr, max = v[:i], pct
		}
	}
	re, err := regexp.Compile(expr)
	if err != nil {
		return err
	}
	*g = append(*g, gateSpec{re: re, max: max})
	return nil
}

// threshold returns the regression limit for name, or NaN when no gate
// covers it. The first matching gate wins.
func (g gateList) threshold(name string, def float64) float64 {
	for _, s := range g {
		if s.re.MatchString(name) {
			if math.IsNaN(s.max) {
				return def
			}
			return s.max
		}
	}
	return math.NaN()
}

// nsPerOp maps benchmark name to its (last seen) ns/op in one output file.
type nsPerOp map[string]float64

// procSuffix strips the trailing -<GOMAXPROCS> go test appends to benchmark
// names, so runs from machines with different core counts still align.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark results from one input file: either raw
// `go test -bench` output or a BENCH_<date>.json trajectory previously
// written by -emit, so committed baselines diff against fresh runs without
// keeping the raw text around.
func parse(path string) (nsPerOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		out := nsPerOp{}
		if err := json.Unmarshal([]byte(trimmed), &out); err != nil {
			return nil, fmt.Errorf("%s: not a BENCH_<date>.json trajectory: %w", path, err)
		}
		return out, nil
	}
	out := nsPerOp{}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Layout: Name iterations value unit [value unit ...]; ns/op is the
		// first value/unit pair by convention.
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			out[procSuffix.ReplaceAllString(fields[0], "")] = v
			break
		}
	}
	return out, sc.Err()
}

func main() {
	var gates gateList
	flag.Var(&gates, "gate", "regexp of benchmark names that fail the run on regression; repeatable; RE=PCT sets a per-gate threshold")
	var (
		maxRegress = flag.Float64("max-regress", 10, "default allowed ns/op regression percent for gated benchmarks")
		emit       = flag.Bool("emit", false, "emit a single bench output as sorted JSON (benchmark name → ns/op) on stdout")
	)
	flag.Parse()
	if *emit {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchdiff -emit results.txt > BENCH_<date>.json")
			os.Exit(2)
		}
		results, err := parse(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		// json.Marshal sorts map keys, so the artifact diffs cleanly
		// run-to-run.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate RE[=PCT]]... [-max-regress PCT] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows [][]string
	failed := false
	for _, name := range names {
		prev, ok := old[name]
		if !ok {
			rows = append(rows, []string{name, "-", fmt.Sprintf("%.0f", cur[name]), "new", ""})
			continue
		}
		delta := (cur[name] - prev) / prev * 100
		verdict := ""
		if limit := gates.threshold(name, *maxRegress); !math.IsNaN(limit) {
			verdict = "ok"
			if delta > limit {
				verdict = fmt.Sprintf("FAIL >%g%%", limit)
				failed = true
			}
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f", prev),
			fmt.Sprintf("%.0f", cur[name]),
			fmt.Sprintf("%+.1f%%", delta),
			verdict,
		})
	}
	gone := make([]string, 0)
	for name := range old {
		if _, ok := cur[name]; !ok {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		rows = append(rows, []string{name, fmt.Sprintf("%.0f", old[name]), "-", "gone", ""})
	}
	if err := report.Table(os.Stdout, []string{"BENCHMARK", "old ns/op", "new ns/op", "delta", "gate"}, rows); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: gated benchmarks regressed past their thresholds")
		os.Exit(1)
	}
}
