package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

const benchText = `goos: linux
BenchmarkPlacementDP/chain6-4         	    5274	    212522 ns/op	  189160 B/op	    1937 allocs/op
BenchmarkSweep32/serial               	       1	9361093025 ns/op
not a bench line
`

const benchJSON = `{
  "BenchmarkPlacementDP/chain6": 212522,
  "BenchmarkSweep32/serial": 9361093025
}
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseTextAndJSONAgree: the committed BENCH_<date>.json baselines must
// parse to the same results as the raw bench text they were emitted from
// (with the -<GOMAXPROCS> suffix normalised away).
func TestParseTextAndJSONAgree(t *testing.T) {
	text, err := parse(writeTemp(t, "bench.txt", benchText))
	if err != nil {
		t.Fatal(err)
	}
	js, err := parse(writeTemp(t, "BENCH_2026-08-07.json", benchJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(text) != 2 || len(js) != 2 {
		t.Fatalf("parsed %d text / %d json entries, want 2 each", len(text), len(js))
	}
	for name, v := range js {
		if text[name] != v {
			t.Errorf("%s: text %v vs json %v", name, text[name], v)
		}
	}
}

func TestParseRejectsBrokenJSON(t *testing.T) {
	if _, err := parse(writeTemp(t, "broken.json", `{"BenchmarkX": `)); err == nil {
		t.Fatal("truncated JSON parsed without error")
	}
}

// TestGateListSet covers the -gate flag grammar: bare regexp, RE=PCT with a
// per-gate threshold, and rejection of invalid regexps.
func TestGateListSet(t *testing.T) {
	var g gateList
	if err := g.Set("BenchmarkSweep32"); err != nil {
		t.Fatal(err)
	}
	if err := g.Set("BenchmarkSparseMatVec/=25"); err != nil {
		t.Fatal(err)
	}
	if err := g.Set("Benchmark(Simplex|SolveJointCapped)=25"); err != nil {
		t.Fatal(err)
	}
	if err := g.Set("Benchmark[Unclosed"); err == nil {
		t.Fatal("invalid regexp accepted")
	}
	if len(g) != 3 {
		t.Fatalf("gate list has %d entries, want 3", len(g))
	}
	cases := []struct {
		name string
		want float64 // NaN means ungated
	}{
		{"BenchmarkSweep32/serial", 10},             // bare gate inherits the default
		{"BenchmarkSparseMatVec/n=4096", 25},        // per-gate threshold
		{"BenchmarkSimplexMedium", 25},              // alternation matches
		{"BenchmarkSolveJointCapped", 25},           // alternation matches
		{"BenchmarkPlacementDP/chain6", math.NaN()}, // no gate covers it
	}
	for _, c := range cases {
		got := g.threshold(c.name, 10)
		switch {
		case math.IsNaN(c.want):
			if !math.IsNaN(got) {
				t.Errorf("%s: gated at %g%%, want ungated", c.name, got)
			}
		case got != c.want:
			t.Errorf("%s: threshold %g%%, want %g%%", c.name, got, c.want)
		}
	}
}

// TestGateListFirstMatchWins: a specific loose gate listed before a broad
// strict one must take precedence for the benchmarks it names.
func TestGateListFirstMatchWins(t *testing.T) {
	var g gateList
	for _, v := range []string{"BenchmarkSimplexEqualityHeavy=40", "BenchmarkSimplex=15"} {
		if err := g.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.threshold("BenchmarkSimplexEqualityHeavy", 10); got != 40 {
		t.Fatalf("specific gate lost to broad one: threshold %g%%, want 40%%", got)
	}
	if got := g.threshold("BenchmarkSimplexSmall", 10); got != 15 {
		t.Fatalf("broad gate threshold %g%%, want 15%%", got)
	}
}
