package main

import (
	"os"
	"path/filepath"
	"testing"
)

const benchText = `goos: linux
BenchmarkPlacementDP/chain6-4         	    5274	    212522 ns/op	  189160 B/op	    1937 allocs/op
BenchmarkSweep32/serial               	       1	9361093025 ns/op
not a bench line
`

const benchJSON = `{
  "BenchmarkPlacementDP/chain6": 212522,
  "BenchmarkSweep32/serial": 9361093025
}
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseTextAndJSONAgree: the committed BENCH_<date>.json baselines must
// parse to the same results as the raw bench text they were emitted from
// (with the -<GOMAXPROCS> suffix normalised away).
func TestParseTextAndJSONAgree(t *testing.T) {
	text, err := parse(writeTemp(t, "bench.txt", benchText))
	if err != nil {
		t.Fatal(err)
	}
	js, err := parse(writeTemp(t, "BENCH_2026-08-07.json", benchJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(text) != 2 || len(js) != 2 {
		t.Fatalf("parsed %d text / %d json entries, want 2 each", len(text), len(js))
	}
	for name, v := range js {
		if text[name] != v {
			t.Errorf("%s: text %v vs json %v", name, text[name], v)
		}
	}
}

func TestParseRejectsBrokenJSON(t *testing.T) {
	if _, err := parse(writeTemp(t, "broken.json", `{"BenchmarkX": `)); err == nil {
		t.Fatal("truncated JSON parsed without error")
	}
}
