// Command socbufd serves the buffer-sizing engine over HTTP: a long-running
// service wrapping internal/engine — the same request/response API the CLIs
// use — with request coalescing, a bounded in-flight limit, cache-backed
// concurrency and graceful shutdown. internal/httpapi holds the handlers;
// this binary only wires flags, the listener and the signal path.
//
//	socbufd -addr :8344 -max-inflight 16
//
// Endpoints (see DESIGN.md §5 and the README's "Running as a service"):
//
//	POST /v1/solve           run the methodology once; concurrent identical
//	                         requests coalesce into one underlying solve
//	POST /v1/sweep/budget    budget sweep; streams NDJSON rows as points
//	                         complete, then a summary line
//	POST /v1/sweep/scenario  scenario sweep; same streaming shape
//	POST /v1/placement       buffer-placement run; streams evals + summary
//	GET  /v1/stats           engine counters + solve-cache counters
//	GET  /v1/healthz         liveness
//	GET  /v1/readyz          drain-aware readiness (503 once draining)
//
// Responses: 400 for malformed/invalid requests, 503 (with Retry-After) when
// the in-flight bound is hit or the server is draining, 500 for solver
// failures.
//
// Fleet mode (DESIGN.md §10): -remote-cache attaches a shared solve-cache
// sidecar (socbufrouter's /v1/cache endpoint) behind the local cache —
// fail-open, so a dead sidecar costs recomputes, never availability.
// -batch-window enables cross-request micro-batching of analytic solves.
//
// Shutdown: SIGINT/SIGTERM flips readiness (so ring health checks route
// around the backend), stops admission, cancels in-flight requests (the
// cancellation threads down through the sweep workers, which finish their
// current point and exit), drains, then closes the listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"socbuf/internal/cliutil"
	"socbuf/internal/engine"
	"socbuf/internal/httpapi"
	"socbuf/internal/solvecache"
)

func main() {
	var (
		addr        = flag.String("addr", ":8344", "listen address")
		parallel    = flag.Int("parallel", 0, "default worker goroutines per request (0 = GOMAXPROCS)")
		inflight    = flag.Int("max-inflight", 16, "max concurrently executing requests (0 = unbounded); excess requests get 503")
		cache       = flag.Bool("cache", true, "route every request through the shared solve cache")
		cacheBound  = flag.Int("cache-max-entries", 4096, "rotate the solve cache past this many stored solutions (0 = unbounded); bounds memory in a long-lived server fed client-chosen architectures")
		remote      = flag.String("remote-cache", "", "base URL of a shared solve-cache sidecar (e.g. http://127.0.0.1:8360/v1/cache); empty = local cache only")
		remoteTmo   = flag.Duration("remote-cache-timeout", 250*time.Millisecond, "per-lookup deadline against the remote cache; slower answers fall back to a local solve")
		batchWindow = flag.Duration("batch-window", 0, "micro-batch concurrent analytic solves for up to this long (0 = disabled)")
		batchMax    = flag.Int("batch-max", 16, "max analytic solves per micro-batch; a full batch dispatches early")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline")
	)
	flag.Parse()
	if *parallel < 0 {
		cliutil.Fatal("socbufd", fmt.Errorf("-parallel %d is negative; use 0 for GOMAXPROCS or a count >= 1", *parallel))
	}
	if *inflight < 0 {
		cliutil.Fatal("socbufd", fmt.Errorf("-max-inflight %d is negative; use 0 for unbounded", *inflight))
	}
	if *cacheBound < 0 {
		cliutil.Fatal("socbufd", fmt.Errorf("-cache-max-entries %d is negative; use 0 for unbounded", *cacheBound))
	}
	if *batchWindow < 0 {
		cliutil.Fatal("socbufd", fmt.Errorf("-batch-window %v is negative; use 0 to disable batching", *batchWindow))
	}

	cfg := engine.Config{
		Workers:         *parallel,
		MaxInFlight:     *inflight,
		MaxCacheEntries: *cacheBound,
		BatchWindow:     *batchWindow,
		BatchMax:        *batchMax,
	}
	var remoteStore *solvecache.RemoteStore
	if *remote != "" {
		remoteStore = solvecache.NewRemoteStore(*remote, solvecache.RemoteOptions{Timeout: *remoteTmo})
		defer remoteStore.Close()
		cfg.RemoteCache = remoteStore
	}
	eng := engine.New(cfg)
	api := httpapi.NewServer(eng, *cache)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("socbufd: listening on %s (max-inflight %d, cache %v, remote-cache %q)", *addr, *inflight, *cache, *remote)

	select {
	case err := <-errc:
		cliutil.Fatal("socbufd", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("socbufd: shutting down (drain timeout %v)", *drain)
	// Readiness first, while the listener still answers: the router's health
	// checks see the drain and stop routing here before requests start
	// bouncing off the closed engine.
	api.SetReady(false)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Engine next: admission stops, in-flight requests are cancelled and
	// drained, so the handlers unwind; then the listener closes and waits
	// for the connections to finish writing.
	engErr := eng.Shutdown(dctx)
	srvErr := srv.Shutdown(dctx)
	if err := errors.Join(engErr, srvErr); err != nil {
		cliutil.Fatal("socbufd", fmt.Errorf("unclean shutdown: %w", err))
	}
	log.Printf("socbufd: shutdown complete")
}
