// Command socbufd serves the buffer-sizing engine over HTTP: a long-running
// service wrapping internal/engine — the same request/response API the CLIs
// use — with request coalescing, a bounded in-flight limit, cache-backed
// concurrency and graceful shutdown.
//
//	socbufd -addr :8344 -max-inflight 16
//
// Endpoints (see DESIGN.md §5 and the README's "Running as a service"):
//
//	POST /v1/solve           run the methodology once; concurrent identical
//	                         requests coalesce into one underlying solve
//	POST /v1/sweep/budget    budget sweep; streams NDJSON rows as points
//	                         complete, then a summary line
//	POST /v1/sweep/scenario  scenario sweep; same streaming shape
//	GET  /v1/stats           engine counters + solve-cache counters
//
// Responses: 400 for malformed/invalid requests, 503 (with Retry-After) when
// the in-flight bound is hit or the server is draining, 500 for solver
// failures.
//
// Shutdown: SIGINT/SIGTERM stops admission, cancels in-flight requests (the
// cancellation threads down through the sweep workers, which finish their
// current point and exit), drains, then closes the listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"socbuf/internal/cliutil"
	"socbuf/internal/engine"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		parallel   = flag.Int("parallel", 0, "default worker goroutines per request (0 = GOMAXPROCS)")
		inflight   = flag.Int("max-inflight", 16, "max concurrently executing requests (0 = unbounded); excess requests get 503")
		cache      = flag.Bool("cache", true, "route every request through the shared solve cache")
		cacheBound = flag.Int("cache-max-entries", 4096, "rotate the solve cache past this many stored solutions (0 = unbounded); bounds memory in a long-lived server fed client-chosen architectures")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain deadline")
	)
	flag.Parse()
	if *parallel < 0 {
		cliutil.Fatal("socbufd", fmt.Errorf("-parallel %d is negative; use 0 for GOMAXPROCS or a count >= 1", *parallel))
	}
	if *inflight < 0 {
		cliutil.Fatal("socbufd", fmt.Errorf("-max-inflight %d is negative; use 0 for unbounded", *inflight))
	}
	if *cacheBound < 0 {
		cliutil.Fatal("socbufd", fmt.Errorf("-cache-max-entries %d is negative; use 0 for unbounded", *cacheBound))
	}

	eng := engine.New(engine.Config{Workers: *parallel, MaxInFlight: *inflight, MaxCacheEntries: *cacheBound})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(eng, *cache),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("socbufd: listening on %s (max-inflight %d, cache %v)", *addr, *inflight, *cache)

	select {
	case err := <-errc:
		cliutil.Fatal("socbufd", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("socbufd: shutting down (drain timeout %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Engine first: admission stops, in-flight requests are cancelled and
	// drained, so the handlers unwind; then the listener closes and waits
	// for the connections to finish writing.
	engErr := eng.Shutdown(dctx)
	srvErr := srv.Shutdown(dctx)
	if err := errors.Join(engErr, srvErr); err != nil {
		cliutil.Fatal("socbufd", fmt.Errorf("unclean shutdown: %w", err))
	}
	log.Printf("socbufd: shutdown complete")
}
