#!/bin/sh
# fleet-smoke: end-to-end pass through the fleet path (DESIGN.md §10) —
# build socbufd + socbufrouter, start a router fronting two shards that share
# the router's remote cache tier, and assert:
#   1. solves routed through the router succeed,
#   2. the shards adopt each other's sub-model solutions via the shared
#      store (a cross-shard remote-cache hit shows up in the fleet stats),
#   3. a SIGTERMed shard drains: readiness flips, the ring routes around it,
#      and requests keep succeeding on the survivor,
#   4. every process exits 0 on SIGTERM.
# CI runs this on every push next to serve-smoke; `make fleet-smoke` runs it
# locally.
set -eu

GO=${GO:-go}
ROUTER_ADDR=${FLEET_ROUTER_ADDR:-127.0.0.1:18360}
SHARD1_ADDR=${FLEET_SHARD1_ADDR:-127.0.0.1:18361}
SHARD2_ADDR=${FLEET_SHARD2_ADDR:-127.0.0.1:18362}
DIR=$(mktemp -d)

"$GO" build -o "$DIR/socbufd" ./cmd/socbufd
"$GO" build -o "$DIR/socbufrouter" ./cmd/socbufrouter

"$DIR/socbufrouter" -addr "$ROUTER_ADDR" \
  -backends "http://$SHARD1_ADDR,http://$SHARD2_ADDR" \
  -health-interval 300ms >"$DIR/router.log" 2>&1 &
ROUTER_PID=$!
"$DIR/socbufd" -addr "$SHARD1_ADDR" \
  -remote-cache "http://$ROUTER_ADDR/v1/cache" >"$DIR/shard1.log" 2>&1 &
SHARD1_PID=$!
"$DIR/socbufd" -addr "$SHARD2_ADDR" \
  -remote-cache "http://$ROUTER_ADDR/v1/cache" >"$DIR/shard2.log" 2>&1 &
SHARD2_PID=$!
trap 'kill "$ROUTER_PID" "$SHARD1_PID" "$SHARD2_PID" 2>/dev/null || true' EXIT

wait_ready() { # url what
  i=0
  until curl -sf "$1" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
      echo "fleet-smoke: $2 did not come up" >&2
      cat "$DIR"/*.log >&2
      exit 1
    fi
    sleep 0.2
  done
}
wait_ready "http://$SHARD1_ADDR/v1/readyz" "shard 1"
wait_ready "http://$SHARD2_ADDR/v1/readyz" "shard 2"
wait_ready "http://$ROUTER_ADDR/v1/readyz" "router"

echo "fleet-smoke: routed solves across seed variants"
# Twelve seed variants spread across the two shards (the ring maps each
# fingerprint deterministically; with 12 keys both shards get traffic), so
# the later seeds exercise remote adoption of the earlier seeds' sub-model
# payloads — different seeds share every exact-tier fingerprint.
for SEED in 1 2 3 4 5 6 7 8 9 10 11 12; do
  curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"scenario":"twobus","iterations":1,"seeds":['"$SEED"'],"horizon":400,"warmUp":50}' \
    "http://$ROUTER_ADDR/v1/solve" | grep -q '"improvement"' || {
    echo "fleet-smoke: routed solve (seed $SEED) failed" >&2
    cat "$DIR"/*.log >&2
    exit 1
  }
done

echo "fleet-smoke: fleet stats show both shards and a cross-shard remote-cache hit"
STATS=$(curl -sf "http://$ROUTER_ADDR/v1/stats")
echo "$STATS" | grep -q '"backends": 2' || {
  echo "fleet-smoke: fleet stats missing the two shards" >&2
  echo "$STATS" >&2
  exit 1
}
# The write-behind put queue is asynchronous; give a slow box a few tries.
i=0
until echo "$STATS" | grep -q '"RemoteHits": [1-9]'; do
  i=$((i + 1))
  if [ "$i" -gt 20 ]; then
    echo "fleet-smoke: no cross-shard remote-cache hit in fleet stats" >&2
    echo "$STATS" >&2
    exit 1
  fi
  sleep 0.2
  curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"scenario":"twobus","iterations":1,"seeds":['"$((100 + i))"'],"horizon":400,"warmUp":50}' \
    "http://$ROUTER_ADDR/v1/solve" >/dev/null
  STATS=$(curl -sf "http://$ROUTER_ADDR/v1/stats")
done

echo "fleet-smoke: SIGTERM shard 1 → drain-aware failover"
kill -TERM "$SHARD1_PID"
# The drain flips readiness before the listener closes; the router's 300ms
# health poll then takes the shard out of the ring.
sleep 1
for SEED in 21 22 23 24; do
  curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"scenario":"twobus","iterations":1,"seeds":['"$SEED"'],"horizon":400,"warmUp":50}' \
    "http://$ROUTER_ADDR/v1/solve" >/dev/null || {
    echo "fleet-smoke: solve failed after shard 1 drained" >&2
    cat "$DIR"/*.log >&2
    exit 1
  }
done
curl -sf "http://$ROUTER_ADDR/v1/readyz" >/dev/null || {
  echo "fleet-smoke: fleet unready with one live shard" >&2
  exit 1
}
STATUS=0
wait "$SHARD1_PID" || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "fleet-smoke: shard 1 exited $STATUS (want clean drain)" >&2
  cat "$DIR/shard1.log" >&2
  exit 1
fi

echo "fleet-smoke: SIGTERM survivors → clean shutdown"
kill -TERM "$SHARD2_PID" "$ROUTER_PID"
for P in "$SHARD2_PID" "$ROUTER_PID"; do
  STATUS=0
  wait "$P" || STATUS=$?
  if [ "$STATUS" -ne 0 ]; then
    echo "fleet-smoke: pid $P exited $STATUS (want clean shutdown)" >&2
    cat "$DIR"/*.log >&2
    exit 1
  fi
done
trap - EXIT
grep -q 'shutdown complete' "$DIR/shard2.log" && grep -q 'shutdown complete' "$DIR/router.log" || {
  echo "fleet-smoke: missing shutdown-complete markers" >&2
  cat "$DIR"/*.log >&2
  exit 1
}
echo "fleet-smoke: OK"
