#!/bin/sh
# serve-smoke: end-to-end pass through cmd/socbufd — build, start, hit
# /v1/solve and /v1/stats, then SIGTERM and assert a clean (exit 0) graceful
# shutdown. CI runs this on every push next to scenario-smoke; `make
# serve-smoke` runs it locally.
set -eu

GO=${GO:-go}
ADDR=${SOCBUFD_ADDR:-127.0.0.1:18344}
BIN=$(mktemp -d)/socbufd
LOG=$(mktemp)

"$GO" build -o "$BIN" ./cmd/socbufd

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (the stats endpoint answers as soon as serving).
i=0
until curl -sf "http://$ADDR/v1/stats" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "serve-smoke: socbufd did not come up" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.2
done

echo "serve-smoke: POST /v1/solve"
curl -sf -X POST -H 'Content-Type: application/json' \
  -d '{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}' \
  "http://$ADDR/v1/solve" | tee /dev/stderr | grep -q '"sizedLoss"'

echo "serve-smoke: GET /v1/stats"
curl -sf "http://$ADDR/v1/stats" | tee /dev/stderr | grep -q '"solveRuns": 1'

echo "serve-smoke: SIGTERM → graceful shutdown"
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
  echo "serve-smoke: socbufd exited $STATUS (want clean shutdown)" >&2
  cat "$LOG" >&2
  exit 1
fi
grep -q 'shutdown complete' "$LOG" || {
  echo "serve-smoke: no shutdown-complete marker in the log" >&2
  cat "$LOG" >&2
  exit 1
}
echo "serve-smoke: OK"
