#!/bin/sh
# serve-smoke: end-to-end pass through cmd/socbufd — build, start, hit
# /v1/solve and /v1/stats, then SIGTERM and assert a clean (exit 0) graceful
# shutdown. CI runs this on every push next to scenario-smoke; `make
# serve-smoke` runs it locally.
set -eu

GO=${GO:-go}
ADDR=${SOCBUFD_ADDR:-127.0.0.1:18344}
BIN=$(mktemp -d)/socbufd
LOG=$(mktemp)

"$GO" build -o "$BIN" ./cmd/socbufd

"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (the stats endpoint answers as soon as serving).
i=0
until curl -sf "http://$ADDR/v1/stats" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "serve-smoke: socbufd did not come up" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.2
done

# One solve per solver backend: the method field must reach the backend
# (echoed in the response) and the per-backend stats must count each run.
METHODS=${SOCBUFD_METHODS:-exact analytic hybrid robust}
RUNS=0
for METHOD in $METHODS; do
  RUNS=$((RUNS + 1))
  echo "serve-smoke: POST /v1/solve (method $METHOD)"
  curl -sf -X POST -H 'Content-Type: application/json' \
    -d '{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50,"method":"'"$METHOD"'"}' \
    "http://$ADDR/v1/solve" | tee /dev/stderr | grep -q '"method": "'"$METHOD"'"'
done

echo "serve-smoke: POST /v1/solve (robust report fields)"
RUNS=$((RUNS + 1))
curl -sf -X POST -H 'Content-Type: application/json' \
  -d '{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50,"method":"robust","uncertainty":{"samples":16,"seed":3}}' \
  "http://$ADDR/v1/solve" | tee /dev/stderr | grep -q '"yield":'

echo "serve-smoke: unknown method → 400 with the uniform message"
CODE=$(curl -s -o "$LOG.err" -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d '{"scenario":"twobus","method":"bogus"}' "http://$ADDR/v1/solve")
[ "$CODE" = "400" ] || { echo "serve-smoke: unknown method gave HTTP $CODE, want 400" >&2; exit 1; }
# The quotes arrive JSON-escaped (\"bogus\"), so match the two halves of
# the uniform message separately.
grep -q 'unknown method' "$LOG.err" && grep -q 'valid methods: analytic | exact | hybrid | robust' "$LOG.err" || {
  echo "serve-smoke: unknown-method message not uniform:" >&2
  cat "$LOG.err" >&2
  exit 1
}

echo "serve-smoke: GET /v1/stats"
STATS=$(curl -sf "http://$ADDR/v1/stats")
echo "$STATS" >&2
echo "$STATS" | grep -q '"solveRuns": '"$RUNS"
for METHOD in $METHODS; do
  echo "$STATS" | grep -q '"'"$METHOD"'"' || {
    echo "serve-smoke: /v1/stats missing backend counters for $METHOD" >&2
    exit 1
  }
done

echo "serve-smoke: SIGTERM → graceful shutdown"
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
  echo "serve-smoke: socbufd exited $STATUS (want clean shutdown)" >&2
  cat "$LOG" >&2
  exit 1
fi
grep -q 'shutdown complete' "$LOG" || {
  echo "serve-smoke: no shutdown-complete marker in the log" >&2
  cat "$LOG" >&2
  exit 1
}
echo "serve-smoke: OK"
