#!/bin/sh
# fleet-bench: measure routed fleet throughput with cmd/loadgen — the
# numbers behind PERFORMANCE.md's fleet table. For each fleet size it starts
# N socbufd shards sharing the router's remote cache tier, drives a mixed
# closed-loop workload through the router, and prints the loadgen report.
# A direct single-process baseline (no router) runs first, so the router's
# own overhead is visible.
#
#   make fleet-bench                      # 10s per point
#   FLEET_BENCH_DURATION=30s make fleet-bench
#
# Read the numbers with PERFORMANCE.md's caveat in mind: on a single-core
# host every shard shares that core, so fleet scaling measures routing
# overhead and cache sharing, not parallel speedup.
set -eu

GO=${GO:-go}
DURATION=${FLEET_BENCH_DURATION:-10s}
CONCURRENCY=${FLEET_BENCH_CONCURRENCY:-16}
MIX=${FLEET_BENCH_MIX:-solve=8,robust=2,sweep=1,placement=1}
BASE_PORT=${FLEET_BENCH_BASE_PORT:-18370}
DIR=$(mktemp -d)

"$GO" build -o "$DIR/socbufd" ./cmd/socbufd
"$GO" build -o "$DIR/socbufrouter" ./cmd/socbufrouter
"$GO" build -o "$DIR/loadgen" ./cmd/loadgen

wait_ready() { # url
  i=0
  until curl -sf "$1" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { echo "fleet-bench: $1 did not come up" >&2; cat "$DIR"/*.log >&2; exit 1; }
    sleep 0.2
  done
}

echo "== fleet-bench: baseline (1 socbufd, no router) =="
"$DIR/socbufd" -addr "127.0.0.1:$BASE_PORT" >"$DIR/base.log" 2>&1 &
PID=$!
wait_ready "http://127.0.0.1:$BASE_PORT/v1/readyz"
"$DIR/loadgen" -url "http://127.0.0.1:$BASE_PORT" -duration "$DURATION" \
  -concurrency "$CONCURRENCY" -mix "$MIX"
kill -TERM "$PID" && wait "$PID" || true

for SHARDS in 1 2 4; do
  echo "== fleet-bench: router + $SHARDS shard(s) =="
  ROUTER_PORT=$((BASE_PORT + 1))
  BACKENDS=""
  PIDS=""
  N=0
  while [ "$N" -lt "$SHARDS" ]; do
    PORT=$((BASE_PORT + 2 + N))
    BACKENDS="$BACKENDS,http://127.0.0.1:$PORT"
    N=$((N + 1))
  done
  BACKENDS=${BACKENDS#,}
  "$DIR/socbufrouter" -addr "127.0.0.1:$ROUTER_PORT" -backends "$BACKENDS" \
    -health-interval 500ms >"$DIR/router-$SHARDS.log" 2>&1 &
  PIDS="$!"
  N=0
  while [ "$N" -lt "$SHARDS" ]; do
    PORT=$((BASE_PORT + 2 + N))
    "$DIR/socbufd" -addr "127.0.0.1:$PORT" \
      -remote-cache "http://127.0.0.1:$ROUTER_PORT/v1/cache" \
      >"$DIR/shard-$SHARDS-$N.log" 2>&1 &
    PIDS="$PIDS $!"
    N=$((N + 1))
  done
  # shellcheck disable=SC2064
  trap "kill $PIDS 2>/dev/null || true" EXIT
  N=0
  while [ "$N" -lt "$SHARDS" ]; do
    wait_ready "http://127.0.0.1:$((BASE_PORT + 2 + N))/v1/readyz"
    N=$((N + 1))
  done
  wait_ready "http://127.0.0.1:$ROUTER_PORT/v1/readyz"

  "$DIR/loadgen" -url "http://127.0.0.1:$ROUTER_PORT" -duration "$DURATION" \
    -concurrency "$CONCURRENCY" -mix "$MIX"

  kill -TERM $PIDS 2>/dev/null || true
  for P in $PIDS; do
    wait "$P" 2>/dev/null || true
  done
  trap - EXIT
done
echo "fleet-bench: done"
