package socbuf_test

// Robust-backend contracts that need the scenario registry (which imports
// internal/solver, so these live at the root like the benchmarks):
//
//   - the sampler determinism gate: same seed ⇒ bit-identical yield and
//     chosen sizing for -parallel 1/4/16, table-driven over registry
//     scenarios — the robust extension of the repo-wide "identical results
//     for any worker count" contract;
//   - the chance-constraint correctness gate: on a registry scenario with
//     injected rate perturbations, the robust sizing's empirical yield on a
//     fresh out-of-sample batch meets the requested 95% while the nominal
//     exact sizing's measurably does not (one-sided, seeded).

import (
	"context"
	"reflect"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/scenario"
	"socbuf/internal/solver"
	"socbuf/internal/uncertain"
)

// quickRobustConfig assembles a fast, fully seeded robust run of one
// registry scenario.
func quickRobustConfig(t *testing.T, name string, spec *uncertain.Spec) core.Config {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not in registry", name)
	}
	cfg, err := sc.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 2
	cfg.Seeds = []int64{1}
	cfg.Horizon = 400
	cfg.WarmUp = 50
	cfg.Method = solver.MethodRobust
	cfg.Uncertainty = spec
	return cfg
}

// TestRobustDeterminismAcrossWorkers pins the sampler determinism gate:
// the chance-constraint report (yield included) and the chosen sizing are
// bit-identical for any worker count, because sample i is a pure function
// of (seed, i) and every fan-out merges in index order.
func TestRobustDeterminismAcrossWorkers(t *testing.T) {
	spec := &uncertain.Spec{RateSigma: 0.2, Samples: 32, Confidence: 0.95, Seed: 11}
	for _, name := range []string{"twobus", "chain6", "star6"} {
		t.Run(name, func(t *testing.T) {
			var wantReport *uncertain.Report
			var wantAlloc arch.Allocation
			for _, workers := range []int{1, 4, 16} {
				cfg := quickRobustConfig(t, name, spec)
				cfg.Workers = workers
				res, err := solver.Run(context.Background(), cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Robust == nil {
					t.Fatalf("workers=%d: no robust report", workers)
				}
				if wantReport == nil {
					wantReport, wantAlloc = res.Robust, res.Best.Alloc
					continue
				}
				if *res.Robust != *wantReport {
					t.Fatalf("workers=%d report drifted:\n got %+v\nwant %+v", workers, *res.Robust, *wantReport)
				}
				if !reflect.DeepEqual(res.Best.Alloc, wantAlloc) {
					t.Fatalf("workers=%d sizing drifted:\n got %v\nwant %v", workers, res.Best.Alloc, wantAlloc)
				}
			}
		})
	}
}

// outOfSampleYield scores a sizing on a fresh perturbation batch: the
// fraction of samples whose analytic loss meets the target.
func outOfSampleYield(t *testing.T, a *arch.Architecture, cfg core.Config, alloc map[string]int, target float64, spec uncertain.Spec) float64 {
	t.Helper()
	sampler := uncertain.NewSampler(spec, len(a.Flows))
	ok := 0
	for i := 0; i < sampler.N(); i++ {
		ai, err := uncertain.Perturb(a, sampler.At(i))
		if err != nil {
			t.Fatal(err)
		}
		loss, err := solver.AnalyticLoss(ai, cfg, alloc)
		if err != nil {
			t.Fatal(err)
		}
		if loss <= target {
			ok++
		}
	}
	return float64(ok) / float64(sampler.N())
}

// TestRobustChanceConstraintOutOfSample is the correctness gate: on chain6
// with ±15% lognormal rate perturbations, the robust sizing's empirical
// yield on a fresh 200-sample batch (different sampler seed) meets the
// requested 95%, while the nominal exact sizing's — scored on the same
// batch against the same loss target — measurably does not. Every random
// stream is seeded, so the margin is reproducible, not statistical luck.
func TestRobustChanceConstraintOutOfSample(t *testing.T) {
	if testing.Short() {
		t.Skip("exact methodology run in the loop")
	}
	spec := &uncertain.Spec{RateSigma: 0.15, Samples: 64, Confidence: 0.95, Seed: 7}
	sc, _ := scenario.Get("chain6")
	cfg, err := sc.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 4
	cfg.Seeds = []int64{1, 2}
	cfg.Horizon = 800
	cfg.WarmUp = 100

	cfg.Method = solver.MethodRobust
	cfg.Uncertainty = spec
	robust, err := solver.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if robust.Robust == nil {
		t.Fatal("robust run carried no report")
	}
	target := robust.Robust.LossTarget

	cfg.Method = solver.MethodExact
	cfg.Uncertainty = nil
	exact, err := solver.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	oos := uncertain.Spec{RateSigma: spec.RateSigma, Samples: 200, Confidence: spec.Confidence, Seed: 99}
	cfg.Uncertainty = spec
	yieldRobust := outOfSampleYield(t, robust.Arch, cfg, robust.Best.Alloc, target, oos)
	yieldExact := outOfSampleYield(t, exact.Arch, cfg, exact.Best.Alloc, target, oos)

	if yieldRobust < spec.Confidence {
		t.Errorf("robust sizing out-of-sample yield %.3f below the %.2f chance constraint", yieldRobust, spec.Confidence)
	}
	if yieldExact >= spec.Confidence {
		t.Errorf("nominal exact sizing out-of-sample yield %.3f unexpectedly meets the %.2f constraint — the gate has lost its contrast", yieldExact, spec.Confidence)
	}
	if yieldRobust <= yieldExact {
		t.Errorf("robust yield %.3f not above nominal yield %.3f on the common batch", yieldRobust, yieldExact)
	}
}
