module socbuf

go 1.24.0
