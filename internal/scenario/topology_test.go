package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/graph"
)

// generatedGrid enumerates a spread of generator specs: every kind at a few
// sizes, fan-outs, utilisations, skews and seeds.
func generatedGrid() []Topology {
	var specs []Topology
	for _, kind := range []string{KindChain, KindStar, KindTree, KindMesh} {
		for _, buses := range []int{2, 3, 6, 9} {
			for _, seed := range []int64{1, 42} {
				specs = append(specs, Topology{
					Kind: kind, Buses: buses, FanOut: 1 + int(seed)%3,
					Utilisation: 0.7 + 0.05*float64(buses%3),
					Skew:        1 + float64(seed%4),
					Seed:        seed,
				})
			}
		}
	}
	return specs
}

func TestGeneratedTopologiesValidateAndSplitLinear(t *testing.T) {
	for _, spec := range generatedGrid() {
		a, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: invalid architecture: %v", spec, err)
		}
		// Build must leave bridges un-buffered (the methodology inserts them).
		for _, br := range a.Bridges {
			if br.Buffered {
				t.Fatalf("%s: bridge %q pre-buffered", spec, br.ID)
			}
		}
		b := a.Clone()
		b.InsertBridgeBuffers()
		subs, err := graph.Split(b)
		if err != nil {
			t.Fatalf("%s: split: %v", spec, err)
		}
		if err := graph.VerifyPartition(b, subs); err != nil {
			t.Fatalf("%s: partition: %v", spec, err)
		}
		if len(subs) != spec.Buses {
			t.Fatalf("%s: %d subsystems, want one per bus (%d)", spec, len(subs), spec.Buses)
		}
		for _, s := range subs {
			if !s.Linear() {
				t.Fatalf("%s: nonlinear subsystem %v after insertion", spec, s.Buses)
			}
		}
	}
}

func TestGeneratedTopologiesAreDeterministic(t *testing.T) {
	for _, spec := range generatedGrid()[:8] {
		a1, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		a2, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("%s: two builds differ", spec)
		}
	}
}

func TestGeneratedTopologyJSONRoundTrip(t *testing.T) {
	for _, spec := range generatedGrid() {
		a, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := a.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: encode: %v", spec, err)
		}
		back, err := arch.ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", spec, err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("%s: JSON round trip changed the architecture", spec)
		}
	}
}

func TestGeneratedTopologyAllocationsValidate(t *testing.T) {
	for _, spec := range generatedGrid()[:12] {
		a, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		b := a.Clone()
		b.InsertBridgeBuffers()
		budget := 2 * len(b.BufferIDs())
		uni, err := arch.UniformAllocation(b, budget)
		if err != nil {
			t.Fatalf("%s: uniform: %v", spec, err)
		}
		if err := uni.Validate(b, budget); err != nil {
			t.Fatalf("%s: uniform allocation invalid: %v", spec, err)
		}
		prop, err := arch.ProportionalAllocation(b, budget)
		if err != nil {
			t.Fatalf("%s: proportional: %v", spec, err)
		}
		if err := prop.Validate(b, budget); err != nil {
			t.Fatalf("%s: proportional allocation invalid: %v", spec, err)
		}
		if uni.Total() != budget {
			t.Fatalf("%s: uniform total %d, want %d", spec, uni.Total(), budget)
		}
	}
}

func TestGeneratedTopologyUtilisationTarget(t *testing.T) {
	spec := Topology{Kind: KindChain, Buses: 4, FanOut: 2, Utilisation: 0.85, Skew: 2, Seed: 3}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	routes, err := a.Routes()
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{}
	for _, r := range routes {
		for _, h := range r.Hops {
			load[h.Bus] += r.Flow.Rate
		}
	}
	for _, b := range a.Buses {
		if load[b.ID] == 0 {
			continue
		}
		rho := load[b.ID] / b.ServiceRate
		if rho < 0.84 || rho > 0.86 {
			t.Fatalf("bus %q utilisation %.3f, want ≈ 0.85", b.ID, rho)
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	bad := []Topology{
		{Kind: "ring", Buses: 4, FanOut: 1},
		{Kind: KindPreset, Preset: "nope"},
		{Kind: KindChain, Buses: 1, FanOut: 1},
		{Kind: KindChain, Buses: MaxGeneratedBuses + 1, FanOut: 1},
		{Kind: KindChain, Buses: 4, FanOut: 0},
		{Kind: KindChain, Buses: 4, FanOut: -1},
		{Kind: KindChain, Buses: 4, FanOut: 1, Utilisation: 1.2},
		{Kind: KindChain, Buses: 4, FanOut: 1, Skew: 0.5},
	}
	for _, spec := range bad {
		if _, err := spec.Build(); err == nil {
			t.Fatalf("%+v: expected error", spec)
		}
	}
	for _, preset := range []string{"figure1", "twobus", "netproc"} {
		if _, err := (Topology{Kind: KindPreset, Preset: preset}).Build(); err != nil {
			t.Fatalf("preset %s: %v", preset, err)
		}
	}
}
