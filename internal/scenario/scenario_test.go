package scenario

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry holds %d scenarios, want ≥ 6: %v", len(names), names)
	}
	presets, generated := 0, 0
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Fatalf("built-in %q invalid: %v", s.Name, err)
		}
		if s.Topology.Kind == KindPreset {
			presets++
		} else {
			generated++
		}
	}
	if presets < 3 {
		t.Fatalf("registry holds %d presets, want the paper's 3", presets)
	}
	if generated < 3 {
		t.Fatalf("registry holds %d generated families, want ≥ 3", generated)
	}
	for _, want := range []string{"figure1", "twobus", "netproc"} {
		if _, ok := Get(want); !ok {
			t.Fatalf("preset scenario %q missing from registry", want)
		}
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	dup, _ := Get("twobus")
	if err := Register(dup); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(Scenario{Name: "", Budget: 10}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(Scenario{
		Name:     "starved",
		Topology: Topology{Kind: KindPreset, Preset: "twobus"},
		Budget:   3, // twobus has 6 buffers after insertion
	}); err == nil || !strings.Contains(err.Error(), "below one unit per buffer") {
		t.Fatalf("starved budget accepted (err=%v)", err)
	}
	base := Scenario{
		Name:     "warmup-check",
		Topology: Topology{Kind: KindPreset, Preset: "twobus"},
		Budget:   24,
	}
	inverted := base
	inverted.Horizon, inverted.WarmUp = 100, 200
	if err := inverted.Validate(); err == nil {
		t.Fatal("warm-up past horizon accepted")
	}
	floating := base
	floating.WarmUp = 3000 // no horizon: would only fail inside core.Run
	if err := floating.Validate(); err == nil {
		t.Fatal("warm-up without horizon accepted")
	}
}

func TestResolve(t *testing.T) {
	all, err := Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Fatalf("Resolve(nil) returned %d scenarios, registry has %d", len(all), len(Names()))
	}
	two, err := Resolve([]string{"twobus", "chain6"})
	if err != nil {
		t.Fatal(err)
	}
	if two[0].Name != "twobus" || two[1].Name != "chain6" {
		t.Fatalf("Resolve order not preserved: %v, %v", two[0].Name, two[1].Name)
	}
	if _, err := Resolve([]string{"no-such"}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, s := range All() {
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: encode: %v", s.Name, err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: JSON round trip changed the scenario:\n  in:  %+v\n  out: %+v", s.Name, s, back)
		}
	}
}

func TestReadJSONRejectsUnknownFieldsAndInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"name":"x","topology":{"kind":"preset","preset":"twobus"},"budget":0}`)); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestCoreConfigCarriesTrafficAndArch(t *testing.T) {
	s, ok := Get("chain6-bursty")
	if !ok {
		t.Fatal("chain6-bursty not registered")
	}
	cfg, err := s.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arch == nil || cfg.Budget != s.Budget {
		t.Fatalf("config incomplete: arch=%v budget=%d", cfg.Arch, cfg.Budget)
	}
	if cfg.Traffic == nil {
		t.Fatal("onoff scenario produced a nil source factory")
	}
	srcs1, err := cfg.Traffic(cfg.Arch)
	if err != nil {
		t.Fatal(err)
	}
	srcs2, err := cfg.Traffic(cfg.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs1) != len(cfg.Arch.Flows) {
		t.Fatalf("factory built %d sources for %d flows", len(srcs1), len(cfg.Arch.Flows))
	}
	for k, s1 := range srcs1 {
		if s1 == srcs2[k] {
			t.Fatalf("flow %v: factory reuses a stateful source instance across calls", k)
		}
	}

	poisson, ok := Get("chain6")
	if !ok {
		t.Fatal("chain6 not registered")
	}
	pcfg, err := poisson.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if pcfg.Traffic != nil {
		t.Fatal("poisson scenario should keep the simulator's default sources")
	}
}

func TestOnOffTrafficPreservesFlowRates(t *testing.T) {
	tr := Traffic{Model: ModelOnOff, Burst: 5, MeanOn: 2}
	src, err := tr.flowSource(1.7)
	if err != nil {
		t.Fatal(err)
	}
	if got := src.Rate(); got < 1.699 || got > 1.701 {
		t.Fatalf("long-run rate %v, want 1.7", got)
	}
	// Empirical check: the mean inter-arrival gap over many draws inverts to
	// the flow rate.
	rng := rand.New(rand.NewSource(5))
	var total float64
	const n = 200000
	for i := 0; i < n; i++ {
		gap, err := src.Next(rng)
		if err != nil {
			t.Fatal(err)
		}
		total += gap
	}
	rate := n / total
	if rate < 1.6 || rate > 1.8 {
		t.Fatalf("empirical rate %v, want ≈ 1.7", rate)
	}
}

func TestTrafficValidation(t *testing.T) {
	bad := []Traffic{
		{Model: "mmpp"},
		{Model: ModelOnOff, Burst: 1},
		{Model: ModelOnOff, Burst: 0.5},
		{Model: ModelOnOff, Burst: 4, MeanOn: -1},
		{Model: ModelPoisson, Burst: 2},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Fatalf("%+v: expected error", tr)
		}
	}
	good := []Traffic{{}, {Model: ModelPoisson}, {Model: ModelOnOff, Burst: 2}}
	for _, tr := range good {
		if err := tr.Validate(); err != nil {
			t.Fatalf("%+v: %v", tr, err)
		}
	}
}
