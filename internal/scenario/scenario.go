// Package scenario turns the reproduction into a workload-diverse
// evaluation harness: a Scenario bundles an architecture (a preset or a
// seeded parametric topology generator), a per-flow traffic model, and the
// budget/solver configuration of one methodology run. Scenarios are
// first-class values — they validate, round-trip through JSON, and live in
// a process-wide registry the CLIs and the experiments sweep engine fan
// out over.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/solver"
	"socbuf/internal/uncertain"
)

// Scenario is one named evaluation configuration.
type Scenario struct {
	// Name identifies the scenario in the registry and in report rows.
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description,omitempty"`
	// Topology builds the architecture.
	Topology Topology `json:"topology"`
	// Traffic selects the per-flow arrival process of the evaluation
	// simulations. Zero value = Poisson.
	Traffic Traffic `json:"traffic,omitempty"`
	// Budget is the total buffer space in units. Must cover at least one
	// unit per buffer of the buffered architecture.
	Budget int `json:"budget"`
	// Solver / evaluation knobs. Zero values inherit the core defaults (or
	// the sweep's Options, which take precedence over core defaults).
	Iterations int     `json:"iterations,omitempty"`
	Seeds      []int64 `json:"seeds,omitempty"`
	Horizon    float64 `json:"horizon,omitempty"`
	WarmUp     float64 `json:"warmUp,omitempty"`
	CapFactor  float64 `json:"capFactor,omitempty"`
	Sequential bool    `json:"sequential,omitempty"`
	// Method pins the scenario to a solver backend ("exact" | "analytic" |
	// "hybrid" | "robust"); empty inherits the sweep's (or the exact)
	// default. Name validation happens at dispatch (internal/solver), where
	// the unknown-method message is uniform across every entry point.
	Method string `json:"method,omitempty"`
	// Uncertainty attaches a traffic-uncertainty spec for the robust
	// backend (nil = that backend's defaults; other backends carry it
	// untouched). It round-trips with the scenario.
	Uncertainty *uncertain.Spec `json:"uncertainty,omitempty"`
}

// Validate checks the scenario end to end: fields, traffic parameters, and
// that the topology builds an architecture that splits into linear
// subsystems with enough budget for one unit per buffer.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if s.Budget <= 0 {
		return fmt.Errorf("scenario %q: budget %d must be positive", s.Name, s.Budget)
	}
	if err := s.Traffic.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	a, err := s.Build()
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	buffered := a.Clone()
	buffered.InsertBridgeBuffers()
	if n := len(buffered.BufferIDs()); s.Budget < n {
		return fmt.Errorf("scenario %q: budget %d below one unit per buffer (%d buffers)",
			s.Name, s.Budget, n)
	}
	if s.Iterations < 0 {
		return fmt.Errorf("scenario %q: negative iterations %d", s.Name, s.Iterations)
	}
	if s.Horizon < 0 || s.WarmUp < 0 {
		return fmt.Errorf("scenario %q: negative horizon/warm-up", s.Name)
	}
	if s.WarmUp > 0 && s.Horizon == 0 {
		return fmt.Errorf("scenario %q: warm-up %v set without a horizon", s.Name, s.WarmUp)
	}
	if s.Horizon > 0 && s.WarmUp >= s.Horizon {
		return fmt.Errorf("scenario %q: warm-up %v outside [0, horizon %v)", s.Name, s.WarmUp, s.Horizon)
	}
	if s.CapFactor < 0 || s.CapFactor > 1 {
		return fmt.Errorf("scenario %q: cap factor %v outside [0,1]", s.Name, s.CapFactor)
	}
	if s.Method != "" {
		if _, err := solver.Resolve(s.Method); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	if s.Uncertainty != nil {
		if err := s.Uncertainty.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// Build constructs the scenario's architecture (bridges un-buffered; the
// methodology inserts buffers on its own clone).
func (s Scenario) Build() (*arch.Architecture, error) {
	return s.Topology.Build()
}

// CoreConfig assembles the methodology configuration: built architecture,
// budget, traffic source factory, and the scenario's solver knobs. Zero
// knobs stay zero so core.Run's defaults (or a sweep's Options) apply.
func (s Scenario) CoreConfig() (core.Config, error) {
	a, err := s.Build()
	if err != nil {
		return core.Config{}, err
	}
	factory, err := s.Traffic.SourceFactory()
	if err != nil {
		return core.Config{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	return core.Config{
		Arch:        a,
		Budget:      s.Budget,
		Iterations:  s.Iterations,
		Seeds:       s.Seeds,
		Horizon:     s.Horizon,
		WarmUp:      s.WarmUp,
		CapFactor:   s.CapFactor,
		Sequential:  s.Sequential,
		Traffic:     factory,
		Method:      s.Method,
		Uncertainty: s.Uncertainty,
	}, nil
}

// ReadJSON decodes and validates one scenario.
func ReadJSON(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// WriteJSON encodes the scenario (indented, stable field order).
func (s Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
