package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"socbuf/internal/arch"
	"socbuf/internal/graph"
)

// Topology kinds.
const (
	KindPreset = "preset"
	KindChain  = "chain"
	KindStar   = "star"
	KindTree   = "tree"
	KindMesh   = "mesh"
)

// MaxGeneratedBuses bounds parametric topologies; beyond this the CTMDP
// pipeline cost dwarfs any evaluation value.
const MaxGeneratedBuses = 256

// Topology names either one of the hand-written preset architectures or a
// seeded parametric generator. Generated topologies are bridge hierarchies
// over a configurable number of buses:
//
//   - chain: buses in a line, one bridge between neighbours (the network
//     processor's pipeline shape);
//   - star:  a hub bus bridged to every leaf bus;
//   - tree:  a binary tree of buses;
//   - mesh:  a near-square grid with bridges between horizontal and
//     vertical neighbours (cycles exercise the shortest-path router).
//
// Every generated architecture splits into one linear subsystem per bus
// after buffer insertion — Build verifies this, so a Topology that builds
// is by construction solvable by the paper's methodology.
type Topology struct {
	// Kind selects the generator: "preset", "chain", "star", "tree", "mesh".
	Kind string `json:"kind"`
	// Preset names the built-in architecture when Kind == "preset":
	// "figure1", "twobus" or "netproc".
	Preset string `json:"preset,omitempty"`
	// Buses is the bus count of a generated topology (≥ 2).
	Buses int `json:"buses,omitempty"`
	// FanOut is the number of processors attached to each bus (≥ 1).
	FanOut int `json:"fanOut,omitempty"`
	// Utilisation is the per-bus utilisation target in (0,1): after flows
	// are generated, each bus's service rate is set to (offered load on the
	// bus)/Utilisation, so losses come from finite buffers rather than raw
	// overload. Default 0.8.
	Utilisation float64 `json:"utilisation,omitempty"`
	// Skew spreads flow rates: each flow draws its rate from [1, Skew) with
	// a seeded log-uniform draw. 1 (the default) gives equal rates; larger
	// values reproduce the skewed profiles of the paper's §3 testbed.
	Skew float64 `json:"skew,omitempty"`
	// Seed drives the generator's randomness (destination choice, rate
	// skew). Equal specs build identical architectures.
	Seed int64 `json:"seed,omitempty"`
}

// Build constructs the architecture (bridges un-buffered, exactly like the
// presets: callers run the methodology's InsertBridgeBuffers themselves) and
// verifies that buffer insertion would split it into linear subsystems.
func (t Topology) Build() (*arch.Architecture, error) {
	var a *arch.Architecture
	switch t.Kind {
	case KindPreset:
		switch t.Preset {
		case "figure1":
			a = arch.Figure1()
		case "twobus":
			a = arch.TwoBusAMBA()
		case "netproc":
			a = arch.NetworkProcessor()
		default:
			return nil, fmt.Errorf("scenario: unknown preset %q", t.Preset)
		}
	case KindChain, KindStar, KindTree, KindMesh:
		if err := t.validateGenerated(); err != nil {
			return nil, err
		}
		var err error
		a, err = t.generate()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: topology %s builds an invalid architecture: %w", t, err)
	}
	if err := VerifyLinearSplit(a); err != nil {
		return nil, err
	}
	return a, nil
}

// String renders a compact description for error messages and report rows.
func (t Topology) String() string {
	if t.Kind == KindPreset {
		return KindPreset + ":" + t.Preset
	}
	return fmt.Sprintf("%s(buses=%d fanOut=%d util=%.2g skew=%.2g seed=%d)",
		t.Kind, t.Buses, t.FanOut, t.Utilisation, t.Skew, t.Seed)
}

// VerifyLinearSplit checks that the architecture, once its bridges are
// buffered, splits into linear subsystems covering every bus — the paper's
// precondition for the per-bus CTMDPs. The check runs on a clone so the
// caller's bridge-buffering state is untouched.
func VerifyLinearSplit(a *arch.Architecture) error {
	c := a.Clone()
	c.InsertBridgeBuffers()
	subs, err := graph.Split(c)
	if err != nil {
		return fmt.Errorf("scenario: architecture %q does not split: %w", a.Name, err)
	}
	if err := graph.VerifyPartition(c, subs); err != nil {
		return fmt.Errorf("scenario: architecture %q: %w", a.Name, err)
	}
	for _, s := range subs {
		if !s.Linear() {
			return fmt.Errorf("scenario: architecture %q keeps nonlinear subsystem %v after buffer insertion",
				a.Name, s.Buses)
		}
	}
	return nil
}

// withGeneratedDefaults fills the optional generator knobs.
func (t Topology) withGeneratedDefaults() Topology {
	if t.Utilisation == 0 {
		t.Utilisation = 0.8
	}
	if t.Skew == 0 {
		t.Skew = 1
	}
	return t
}

func (t Topology) validateGenerated() error {
	d := t.withGeneratedDefaults()
	if d.Buses < 2 {
		return fmt.Errorf("scenario: %s topology needs at least 2 buses, got %d", t.Kind, t.Buses)
	}
	if d.Buses > MaxGeneratedBuses {
		return fmt.Errorf("scenario: %d buses exceeds the %d-bus generator cap", t.Buses, MaxGeneratedBuses)
	}
	if d.FanOut < 1 {
		return fmt.Errorf("scenario: fan-out %d < 1", t.FanOut)
	}
	if d.Utilisation <= 0 || d.Utilisation >= 1 {
		return fmt.Errorf("scenario: utilisation %v outside (0,1)", t.Utilisation)
	}
	if d.Skew < 1 {
		return fmt.Errorf("scenario: skew %v < 1", t.Skew)
	}
	return nil
}

// generate builds the parametric architecture. Deterministic: everything
// random flows from rand.NewSource(t.Seed).
func (t Topology) generate() (*arch.Architecture, error) {
	t = t.withGeneratedDefaults()
	rng := rand.New(rand.NewSource(t.Seed))
	a := &arch.Architecture{
		Name: fmt.Sprintf("%s-%dx%d-s%d", t.Kind, t.Buses, t.FanOut, t.Seed),
	}
	busID := func(i int) string { return fmt.Sprintf("bus%02d", i) }
	for i := 0; i < t.Buses; i++ {
		a.Buses = append(a.Buses, arch.Bus{ID: busID(i), ServiceRate: 1})
	}
	link := func(i, j int) {
		a.Bridges = append(a.Bridges, arch.Bridge{
			ID:   fmt.Sprintf("br%02d-%02d", i, j),
			BusA: busID(i),
			BusB: busID(j),
		})
	}
	switch t.Kind {
	case KindChain:
		for i := 0; i+1 < t.Buses; i++ {
			link(i, i+1)
		}
	case KindStar:
		for i := 1; i < t.Buses; i++ {
			link(0, i)
		}
	case KindTree:
		for i := 1; i < t.Buses; i++ {
			link((i-1)/2, i)
		}
	case KindMesh:
		rows := int(math.Sqrt(float64(t.Buses)))
		cols := (t.Buses + rows - 1) / rows
		at := func(r, c int) int { return r*cols + c }
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				i := at(r, c)
				if i >= t.Buses {
					continue
				}
				if c+1 < cols && at(r, c+1) < t.Buses {
					link(i, at(r, c+1))
				}
				if r+1 < rows && at(r+1, c) < t.Buses {
					link(i, at(r+1, c))
				}
			}
		}
	}

	for i := 0; i < t.Buses; i++ {
		for p := 0; p < t.FanOut; p++ {
			a.Processors = append(a.Processors, arch.Processor{
				ID:    fmt.Sprintf("p%02d_%d", i, p),
				Buses: []string{busID(i)},
			})
		}
	}

	// Flows: every processor sends to one random other processor (flows are
	// unique per From→To pair — the simulator's FlowKey relies on that), with
	// a log-uniform rate in [1, Skew).
	n := len(a.Processors)
	used := map[[2]string]bool{}
	for i, p := range a.Processors {
		start := rng.Intn(n)
		for off := 0; off < n; off++ {
			j := (start + off) % n
			if j == i {
				continue
			}
			key := [2]string{p.ID, a.Processors[j].ID}
			if used[key] {
				continue
			}
			used[key] = true
			rate := math.Pow(t.Skew, rng.Float64())
			a.Flows = append(a.Flows, arch.Flow{From: p.ID, To: a.Processors[j].ID, Rate: rate})
			break
		}
	}

	// Utilisation target: size each bus's service rate to its offered load.
	// A hop's packets occupy its bus for one service, so the offered load on
	// a bus is the summed rate of every route leg crossing it.
	routes, err := a.Routes()
	if err != nil {
		return nil, fmt.Errorf("scenario: routing generated %s topology: %w", t.Kind, err)
	}
	load := map[string]float64{}
	for _, r := range routes {
		for _, h := range r.Hops {
			load[h.Bus] += r.Flow.Rate
		}
	}
	for i := range a.Buses {
		if l := load[a.Buses[i].ID]; l > 0 {
			a.Buses[i].ServiceRate = l / t.Utilisation
		}
	}
	return a, nil
}
