package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to their definitions. Built-ins register
// at init (builtin.go); callers may add their own with Register.
var registry = struct {
	sync.Mutex
	m map[string]Scenario
}{m: map[string]Scenario{}}

// Register validates the scenario and adds it to the registry. Duplicate
// names are rejected.
func Register(s Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry.m[s.Name] = s
	return nil
}

// MustRegister is Register for init-time built-ins.
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the named scenario.
func Get(name string) (Scenario, bool) {
	registry.Lock()
	defer registry.Unlock()
	s, ok := registry.m[name]
	return s, ok
}

// Names returns every registered name, sorted.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered scenario, sorted by name.
func All() []Scenario {
	names := Names()
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		s, _ := Get(n)
		out = append(out, s)
	}
	return out
}

// Resolve maps names to scenarios; nil or empty means the whole registry.
func Resolve(names []string) ([]Scenario, error) {
	if len(names) == 0 {
		return All(), nil
	}
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		s, ok := Get(n)
		if !ok {
			return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", n, Names())
		}
		out = append(out, s)
	}
	return out, nil
}
