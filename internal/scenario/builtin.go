package scenario

// Built-in scenarios: the paper's three architectures as registry entries,
// plus generated topology families that extend the evaluation beyond the
// two systems the paper measures. Budgets sit in the scarce regime of each
// system (roughly 2–3 units per buffer) so sizing has losses to remove.
func init() {
	for _, s := range []Scenario{
		{
			Name:        "figure1",
			Description: "paper Figure 1: four buses, two bridges, dual-homed master",
			Topology:    Topology{Kind: KindPreset, Preset: "figure1"},
			Budget:      40,
		},
		{
			Name:        "twobus",
			Description: "minimal AMBA-style two-bus system joined by one bridge",
			Topology:    Topology{Kind: KindPreset, Preset: "twobus"},
			Budget:      24,
		},
		{
			Name:        "netproc",
			Description: "paper §3 testbed: 17-processor network-processor pipeline",
			Topology:    Topology{Kind: KindPreset, Preset: "netproc"},
			Budget:      160,
		},
		{
			Name:        "chain6",
			Description: "generated 6-bus pipeline chain, skewed Poisson flows",
			Topology:    Topology{Kind: KindChain, Buses: 6, FanOut: 2, Utilisation: 0.85, Skew: 2.5, Seed: 7},
			Budget:      56,
		},
		{
			Name:        "chain6-bursty",
			Description: "chain6 topology under OnOff bursty traffic (same offered load)",
			Topology:    Topology{Kind: KindChain, Buses: 6, FanOut: 2, Utilisation: 0.85, Skew: 2.5, Seed: 7},
			Traffic:     Traffic{Model: ModelOnOff, Burst: 4, MeanOn: 2},
			Budget:      56,
		},
		{
			Name:        "star6",
			Description: "generated hub-and-spoke: one backbone bus bridged to 5 leaves",
			Topology:    Topology{Kind: KindStar, Buses: 6, FanOut: 2, Utilisation: 0.8, Skew: 2, Seed: 11},
			Budget:      56,
		},
		{
			Name:        "tree7",
			Description: "generated binary tree of 7 buses (hierarchical interconnect)",
			Topology:    Topology{Kind: KindTree, Buses: 7, FanOut: 2, Utilisation: 0.8, Skew: 1.8, Seed: 13},
			Budget:      64,
		},
		{
			Name:        "mesh9",
			Description: "generated 3×3 bus grid with cyclic bridge paths",
			Topology:    Topology{Kind: KindMesh, Buses: 9, FanOut: 2, Utilisation: 0.75, Skew: 1.5, Seed: 17},
			Budget:      104,
		},
	} {
		MustRegister(s)
	}
}
