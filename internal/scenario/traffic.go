package scenario

import (
	"fmt"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/sim"
	"socbuf/internal/trace"
)

// Traffic models.
const (
	ModelPoisson = "poisson"
	ModelOnOff   = "onoff"
)

// Traffic selects the per-flow arrival process of a scenario's evaluation
// simulations. The zero value keeps the paper's Poisson flows. The OnOff
// model preserves every flow's long-run rate — while ON the flow emits at
// Burst × its average rate and the stationary ON probability is 1/Burst —
// so Poisson and OnOff scenarios offer the same load and differ only in
// burstiness.
type Traffic struct {
	// Model is "poisson" (the default when empty) or "onoff".
	Model string `json:"model,omitempty"`
	// Burst is the ON-state rate multiplier of the OnOff model (> 1).
	Burst float64 `json:"burst,omitempty"`
	// MeanOn is the mean ON-sojourn duration of the OnOff model, in sim
	// time units. Default 1.
	MeanOn float64 `json:"meanOn,omitempty"`
}

// String renders a compact description for report rows.
func (t Traffic) String() string {
	switch t.Model {
	case "", ModelPoisson:
		return ModelPoisson
	case ModelOnOff:
		return fmt.Sprintf("onoff(burst=%.3g)", t.Burst)
	}
	return t.Model
}

// Validate checks model-specific parameters.
func (t Traffic) Validate() error {
	switch t.Model {
	case "", ModelPoisson:
		if t.Burst != 0 || t.MeanOn != 0 {
			return fmt.Errorf("scenario: poisson traffic takes no burst parameters")
		}
		return nil
	case ModelOnOff:
		if t.Burst <= 1 {
			return fmt.Errorf("scenario: onoff burst %v must exceed 1", t.Burst)
		}
		if t.MeanOn < 0 {
			return fmt.Errorf("scenario: negative mean ON time %v", t.MeanOn)
		}
		return nil
	}
	return fmt.Errorf("scenario: unknown traffic model %q", t.Model)
}

// SourceFactory converts the spec into the methodology's per-seed source
// factory. Poisson returns nil — the simulator's built-in default — so the
// common case adds no per-seed allocation. The OnOff factory returns fresh
// Source instances on every call (trace.OnOff is stateful; seeds run
// concurrently).
func (t Traffic) SourceFactory() (core.SourceFactory, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Model == "" || t.Model == ModelPoisson {
		return nil, nil
	}
	spec := t
	return func(a *arch.Architecture) (map[sim.FlowKey]trace.Source, error) {
		out := make(map[sim.FlowKey]trace.Source, len(a.Flows))
		for _, f := range a.Flows {
			src, err := spec.flowSource(f.Rate)
			if err != nil {
				return nil, err
			}
			out[sim.FlowKey{From: f.From, To: f.To}] = src
		}
		return out, nil
	}, nil
}

// flowSource builds one OnOff source with long-run rate `rate`: ON emission
// rate Burst×rate, OFF→ON rate offRate/(Burst−1) so π(ON) = 1/Burst.
func (t Traffic) flowSource(rate float64) (trace.Source, error) {
	meanOn := t.MeanOn
	if meanOn == 0 {
		meanOn = 1
	}
	offRate := 1 / meanOn
	onRate := offRate / (t.Burst - 1)
	return trace.NewOnOff(t.Burst*rate, onRate, offRate)
}
