// Package parallel provides the deterministic worker pool behind the sweep
// engine. Every fan-out in the pipeline — budget sweeps, per-seed
// evaluations, experiment batches — funnels through Map, which guarantees:
//
//   - order-stable results: output slot i holds fn(i)'s result no matter
//     which worker ran it or when it finished, so aggregation downstream is
//     deterministic and independent of the worker count;
//   - per-point error collection: one failing point does not abort the
//     others; the joined error reports every failing index.
//
// The functions themselves must be safe to call concurrently; everything the
// pipeline fans out over (core.Run, sim.New+Run) only reads its shared
// inputs. The one shared MUTABLE structure that may cross the pool is the
// solve cache (internal/solvecache), which is safe by construction: its
// payloads are pure functions of their fingerprints, so the pool's
// scheduling can change which worker populates an entry but never what any
// worker reads back — worker-count invariance holds with or without it.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// PointError records the failure of one point of a parallel sweep.
type PointError struct {
	Index int
	Err   error
}

func (e *PointError) Error() string { return fmt.Sprintf("point %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *PointError) Unwrap() error { return e.Err }

// Workers normalises a worker-count setting: n > 0 is used as given, n <= 0
// means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on up to workers goroutines (GOMAXPROCS when workers
// <= 0) and returns the results in index order. Failed points leave the zero
// value in their slot; the returned error is nil when every point succeeded,
// otherwise it joins one *PointError per failure, in index order. Results of
// successful points are always returned, so callers can salvage partial
// sweeps.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, fn)
}

// MapCtx is Map with cooperative cancellation. When ctx is cancelled
// mid-sweep, points that have not been dispatched yet are skipped and fail
// with ctx.Err() (as *PointError entries, like any other point failure);
// points already running finish normally and keep their results. MapCtx
// never abandons goroutines: it returns only after every worker has exited,
// so a cancelled sweep leaks nothing.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// A point dispatched just before cancellation still gets
				// skipped here; only points whose fn actually started run on.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Indices are dispatched in order, so i..n-1 never started.
			for j := i; j < n; j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, &PointError{Index: i, Err: err})
		}
	}
	return results, errors.Join(joined...)
}

// Points extracts every per-point failure from an error returned by Map (or
// ForEach), in index order. It returns nil for a nil error and wraps a plain
// error in a single index-(-1) entry, so callers can treat any failure
// uniformly.
func Points(err error) []*PointError {
	if err == nil {
		return nil
	}
	if pe, ok := err.(*PointError); ok {
		return []*PointError{pe}
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var out []*PointError
		for _, sub := range joined.Unwrap() {
			out = append(out, Points(sub)...)
		}
		return out
	}
	return []*PointError{{Index: -1, Err: err}}
}

// ForEach is Map for side-effecting points with no result value.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is MapCtx for side-effecting points with no result value.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := MapCtx(ctx, n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
