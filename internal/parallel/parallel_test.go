package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderStable(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	var want []int
	for i := 0; i < 100; i++ {
		want = append(want, i*i)
	}
	for _, workers := range []int{1, 4, 8, 100} {
		got, err := Map(100, workers, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapZeroPoints(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { t.Fatal("fn called"); return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	fn := func(i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("at %d: %w", i, boom)
		}
		return i, nil
	}
	got, err := Map(10, 4, fn)
	if err == nil {
		t.Fatal("failures not reported")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("joined error does not wrap the cause: %v", err)
	}
	// Successful points survive alongside the failures.
	for i, v := range got {
		if i%3 == 0 {
			if v != 0 {
				t.Fatalf("failed slot %d holds %d, want zero value", i, v)
			}
		} else if v != i {
			t.Fatalf("successful slot %d lost its result: %d", i, v)
		}
	}
	pts := Points(err)
	if len(pts) != 4 { // 0, 3, 6, 9
		t.Fatalf("Points found %d failures, want 4: %v", len(pts), err)
	}
	for k, pe := range pts {
		if pe.Index != 3*k {
			t.Fatalf("failure %d at index %d, want %d (index order)", k, pe.Index, 3*k)
		}
		if !errors.Is(pe, boom) {
			t.Fatalf("point error does not unwrap to the cause: %v", pe)
		}
	}
}

func TestPointsOnForeignError(t *testing.T) {
	if Points(nil) != nil {
		t.Fatal("Points(nil) != nil")
	}
	pts := Points(errors.New("plain"))
	if len(pts) != 1 || pts[0].Index != -1 {
		t.Fatalf("plain error not wrapped: %v", pts)
	}
}

// TestMapStress hammers the pool with many tiny points under the race
// detector: every point must run exactly once and land in its own slot.
func TestMapStress(t *testing.T) {
	const n = 5000
	var calls atomic.Int64
	got, err := Map(n, 16, func(i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := calls.Load(); c != n {
		t.Fatalf("fn ran %d times, want %d", c, n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(10, 3, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err := ForEach(3, 2, func(i int) error { return fmt.Errorf("p%d", i) }); err == nil {
		t.Fatal("ForEach swallowed errors")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit worker count overridden")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted worker count not positive")
	}
}
