package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderStable(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	var want []int
	for i := 0; i < 100; i++ {
		want = append(want, i*i)
	}
	for _, workers := range []int{1, 4, 8, 100} {
		got, err := Map(100, workers, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapZeroPoints(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { t.Fatal("fn called"); return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	fn := func(i int) (int, error) {
		if i%3 == 0 {
			return 0, fmt.Errorf("at %d: %w", i, boom)
		}
		return i, nil
	}
	got, err := Map(10, 4, fn)
	if err == nil {
		t.Fatal("failures not reported")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("joined error does not wrap the cause: %v", err)
	}
	// Successful points survive alongside the failures.
	for i, v := range got {
		if i%3 == 0 {
			if v != 0 {
				t.Fatalf("failed slot %d holds %d, want zero value", i, v)
			}
		} else if v != i {
			t.Fatalf("successful slot %d lost its result: %d", i, v)
		}
	}
	pts := Points(err)
	if len(pts) != 4 { // 0, 3, 6, 9
		t.Fatalf("Points found %d failures, want 4: %v", len(pts), err)
	}
	for k, pe := range pts {
		if pe.Index != 3*k {
			t.Fatalf("failure %d at index %d, want %d (index order)", k, pe.Index, 3*k)
		}
		if !errors.Is(pe, boom) {
			t.Fatalf("point error does not unwrap to the cause: %v", pe)
		}
	}
}

func TestPointsOnForeignError(t *testing.T) {
	if Points(nil) != nil {
		t.Fatal("Points(nil) != nil")
	}
	pts := Points(errors.New("plain"))
	if len(pts) != 1 || pts[0].Index != -1 {
		t.Fatalf("plain error not wrapped: %v", pts)
	}
}

// TestMapStress hammers the pool with many tiny points under the race
// detector: every point must run exactly once and land in its own slot.
func TestMapStress(t *testing.T) {
	const n = 5000
	var calls atomic.Int64
	got, err := Map(n, 16, func(i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := calls.Load(); c != n {
		t.Fatalf("fn ran %d times, want %d", c, n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(10, 3, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if err := ForEach(3, 2, func(i int) error { return fmt.Errorf("p%d", i) }); err == nil {
		t.Fatal("ForEach swallowed errors")
	}
}

// TestMapCtxCancelSkipsRemaining cancels the sweep from inside an early
// point: points already running finish and keep their results, undispatched
// points fail with the context error, and MapCtx returns with every worker
// exited.
func TestMapCtxCancelSkipsRemaining(t *testing.T) {
	const n = 200
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran atomic.Int64
	got, err := MapCtx(ctx, n, 2, func(i int) (int, error) {
		if i == 0 {
			cancel()
			close(started)
		}
		<-started // every running point sees the cancellation race
		ran.Add(1)
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error does not wrap context.Canceled: %v", err)
	}
	if c := ran.Load(); c == 0 || c >= n {
		t.Fatalf("ran %d points, want some but not all of %d", c, n)
	}
	// Point 0 definitely ran to completion and must keep its result.
	if got[0] != 1 {
		t.Fatalf("completed point lost its result: %d", got[0])
	}
	skipped := 0
	for _, pe := range Points(err) {
		if !errors.Is(pe, context.Canceled) {
			t.Fatalf("point %d failed with %v, want context.Canceled", pe.Index, pe.Err)
		}
		skipped++
	}
	if int64(skipped)+ran.Load() != n {
		t.Fatalf("ran %d + skipped %d != %d points", ran.Load(), skipped, n)
	}
}

// TestMapCtxPreCancelled: a dead context runs nothing and fails every point.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, 10, 4, func(i int) (int, error) {
		t.Error("fn called under a cancelled context")
		return 0, nil
	})
	if pts := Points(err); len(pts) != 10 {
		t.Fatalf("%d point failures, want 10: %v", len(pts), err)
	}
}

func TestMapCtxNilContext(t *testing.T) {
	got, err := MapCtx(nil, 3, 2, func(i int) (int, error) { return i, nil }) //nolint:staticcheck
	if err != nil || got[2] != 2 {
		t.Fatalf("nil ctx: %v %v", got, err)
	}
}

func TestForEachCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEachCtx(ctx, 5, 2, func(i int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx under cancelled ctx: %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit worker count overridden")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("defaulted worker count not positive")
	}
}
