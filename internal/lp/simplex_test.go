package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestBasicLE(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6 -> min -(x+y); optimum at (1.6, 1.2) = 2.8.
	p := NewProblem(2)
	p.Objective = []float64{-1, -1}
	mustAdd(t, p, []float64{1, 2}, LE, 4)
	mustAdd(t, p, []float64{3, 1}, LE, 6)
	s := solveOK(t, p)
	if !close2(s.Objective, -2.8, 1e-8) {
		t.Fatalf("objective = %v, want -2.8", s.Objective)
	}
	if !close2(s.X[0], 1.6, 1e-8) || !close2(s.X[1], 1.2, 1e-8) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y = 5, x <= 3 -> any point on the segment, objective 5.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	mustAdd(t, p, []float64{1, 1}, EQ, 5)
	mustAdd(t, p, []float64{1, 0}, LE, 3)
	s := solveOK(t, p)
	if !close2(s.Objective, 5, 1e-8) {
		t.Fatalf("objective = %v, want 5", s.Objective)
	}
	if s.X[0] > 3+1e-9 {
		t.Fatalf("x violates x<=3: %v", s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x+3y s.t. x+y >= 4, x,y >= 0. Optimal at (4,0) = 8.
	p := NewProblem(2)
	p.Objective = []float64{2, 3}
	mustAdd(t, p, []float64{1, 1}, GE, 4)
	s := solveOK(t, p)
	if !close2(s.Objective, 8, 1e-8) {
		t.Fatalf("objective = %v, want 8", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	mustAdd(t, p, []float64{1}, LE, 1)
	mustAdd(t, p, []float64{1}, GE, 2)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x >= 1: objective unbounded below.
	p := NewProblem(1)
	p.Objective = []float64{-1}
	mustAdd(t, p, []float64{1}, GE, 1)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// -x <= -2  is  x >= 2; min x should give 2.
	p := NewProblem(1)
	p.Objective = []float64{1}
	mustAdd(t, p, []float64{-1}, LE, -2)
	s := solveOK(t, p)
	if !close2(s.X[0], 2, 1e-8) {
		t.Fatalf("x = %v, want 2", s.X)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// Beale's classic cycling example (cycles under Dantzig's rule without
	// anti-cycling; Bland's rule must terminate).
	p := NewProblem(4)
	p.Objective = []float64{-0.75, 150, -0.02, 6}
	mustAdd(t, p, []float64{0.25, -60, -0.04, 9}, LE, 0)
	mustAdd(t, p, []float64{0.5, -90, -0.02, 3}, LE, 0)
	mustAdd(t, p, []float64{0, 0, 1, 0}, LE, 1)
	s := solveOK(t, p)
	if !close2(s.Objective, -0.05, 1e-8) {
		t.Fatalf("objective = %v, want -0.05", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// CTMDP balance systems always carry one redundant equality; make sure
	// phase 1 handles a dependent row without declaring infeasibility.
	p := NewProblem(2)
	p.Objective = []float64{1, 2}
	mustAdd(t, p, []float64{1, 1}, EQ, 3)
	mustAdd(t, p, []float64{2, 2}, EQ, 6) // same hyperplane
	s := solveOK(t, p)
	if !close2(s.X[0]+s.X[1], 3, 1e-8) {
		t.Fatalf("x = %v", s.X)
	}
	if !close2(s.Objective, 3, 1e-8) { // all mass on x0
		t.Fatalf("objective = %v, want 3", s.Objective)
	}
}

func TestDistributionLikeLP(t *testing.T) {
	// Mimics an occupation-measure LP: probabilities sum to 1, pick the
	// cheapest state subject to a coverage constraint.
	p := NewProblem(3)
	p.Objective = []float64{5, 1, 3}
	mustAdd(t, p, []float64{1, 1, 1}, EQ, 1)
	mustAdd(t, p, []float64{1, 0, 1}, GE, 0.4) // at least 0.4 mass off state 1
	s := solveOK(t, p)
	if !close2(s.Objective, 0.6*1+0.4*3, 1e-8) {
		t.Fatalf("objective = %v, want 1.8", s.Objective)
	}
}

func TestNoVariables(t *testing.T) {
	if _, err := Solve(NewProblem(0)); err == nil {
		t.Fatal("expected error for empty problem")
	}
}

func TestAddConstraintLengthMismatch(t *testing.T) {
	p := NewProblem(2)
	if err := p.AddConstraint([]float64{1}, LE, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestConstraintCoeffsCopied(t *testing.T) {
	p := NewProblem(1)
	coeffs := []float64{1}
	mustAdd(t, p, coeffs, LE, 5)
	coeffs[0] = -99 // must not corrupt the stored constraint
	p.Objective = []float64{-1}
	s := solveOK(t, p)
	if !close2(s.X[0], 5, 1e-8) {
		t.Fatalf("x = %v, want 5 (constraint mutated after add?)", s.X)
	}
}

func TestStatusAndRelationStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Fatal("Relation strings wrong")
	}
	if Status(42).String() == "" || Relation(42).String() == "" {
		t.Fatal("unknown enum strings must be non-empty")
	}
}

// Property test: on random bounded LPs over the box [0,1]^n (explicit upper
// bounds), the simplex optimum is no worse than any of a batch of random
// feasible points, and satisfies all constraints.
func TestSimplexDominatesRandomFeasiblePoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Objective[j] = rng.NormFloat64()
		}
		rowsA := make([][]float64, m)
		rowsB := make([]float64, m)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = math.Abs(rng.NormFloat64()) // nonneg coeffs keep 0 feasible
			}
			rowsA[i] = row
			rowsB[i] = 0.5 + rng.Float64()*2
			if err := p.AddConstraint(row, LE, rowsB[i]); err != nil {
				return false
			}
		}
		// Box bounds x_j <= 1 keep the LP bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			if err := p.AddConstraint(row, LE, 1); err != nil {
				return false
			}
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Check feasibility of the reported optimum.
		for j := 0; j < n; j++ {
			if s.X[j] < -1e-7 || s.X[j] > 1+1e-7 {
				return false
			}
		}
		for i := 0; i < m; i++ {
			var lhs float64
			for j := 0; j < n; j++ {
				lhs += rowsA[i][j] * s.X[j]
			}
			if lhs > rowsB[i]+1e-6 {
				return false
			}
		}
		// Compare against random feasible points (rejection sampling).
		for trial := 0; trial < 40; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64()
			}
			feasible := true
			for i := 0; i < m; i++ {
				var lhs float64
				for j := 0; j < n; j++ {
					lhs += rowsA[i][j] * x[j]
				}
				if lhs > rowsB[i] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			var obj float64
			for j := 0; j < n; j++ {
				obj += p.Objective[j] * x[j]
			}
			if obj < s.Objective-1e-6 {
				return false // a random point beat the "optimum"
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property test: scaling the objective scales the optimum and keeps the
// argmin (for a fixed random bounded LP).
func TestObjectiveScalingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := NewProblem(n)
		for j := range p.Objective {
			p.Objective[j] = rng.NormFloat64()
		}
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			if err := p.AddConstraint(row, LE, 2); err != nil {
				return false
			}
		}
		s1, err := Solve(p)
		if err != nil || s1.Status != Optimal {
			return false
		}
		q := NewProblem(n)
		for j := range q.Objective {
			q.Objective[j] = 3 * p.Objective[j]
		}
		q.Constraints = p.Constraints
		s2, err := Solve(q)
		if err != nil || s2.Status != Optimal {
			return false
		}
		return math.Abs(s2.Objective-3*s1.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func mustAdd(t *testing.T, p *Problem, coeffs []float64, rel Relation, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(coeffs, rel, rhs); err != nil {
		t.Fatal(err)
	}
}

func close2(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
