package lp

import (
	"math/rand"
	"testing"
)

// benchProblem builds a bounded random LP with n variables and m inequality
// rows plus box bounds.
func benchProblem(n, m int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(n)
	for j := range p.Objective {
		p.Objective[j] = rng.NormFloat64()
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			if rng.Float64() < 0.5 {
				row[j] = rng.Float64()
			}
		}
		if err := p.AddConstraint(row, LE, 1+rng.Float64()*3); err != nil {
			panic(err)
		}
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		if err := p.AddConstraint(row, LE, 1); err != nil {
			panic(err)
		}
	}
	return p
}

func BenchmarkSimplexSmall(b *testing.B) {
	p := benchProblem(20, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	p := benchProblem(120, 60, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexEqualityHeavy(b *testing.B) {
	// CTMDP-like: mostly equality rows.
	rng := rand.New(rand.NewSource(3))
	n, m := 80, 40
	p := NewProblem(n)
	for j := range p.Objective {
		p.Objective[j] = rng.Float64()
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			if rng.Float64() < 0.2 {
				row[j] = rng.NormFloat64()
			}
		}
		row[i%n] += 2 // keep rows independent-ish
		if err := p.AddConstraint(row, EQ, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
