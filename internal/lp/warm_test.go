package lp

import (
	"math"
	"testing"
)

// relaxedAndCapped builds a small transportation-style LP and a variant with
// one extra inequality appended — the shape of the CTMDP free/capped pair.
func relaxedAndCapped() (*Problem, *Problem) {
	// min x0 + 2x1 + 3x2  s.t.  x0+x1+x2 = 10, x1 - x2 = 2, x0 <= 6
	base := func() *Problem {
		p := NewProblem(3)
		p.Objective = []float64{1, 2, 3}
		_ = p.AddConstraint([]float64{1, 1, 1}, EQ, 10)
		_ = p.AddConstraint([]float64{0, 1, -1}, EQ, 2)
		_ = p.AddConstraint([]float64{1, 0, 0}, LE, 6)
		return p
	}
	relaxed := base()
	capped := base()
	// The appended inequality cuts off the relaxed optimum.
	_ = capped.AddConstraint([]float64{0, 1, 0}, LE, 4)
	return relaxed, capped
}

// TestWarmBasisAgreesWithCold: seeding the capped program with the relaxed
// optimum's basis must reach the same optimum the cold solve finds, via the
// warm path.
func TestWarmBasisAgreesWithCold(t *testing.T) {
	relaxed, capped := relaxedAndCapped()
	rsol, err := Solve(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if rsol.Status != Optimal || len(rsol.Basis) != 3 {
		t.Fatalf("relaxed solve: %+v", rsol)
	}

	cold, err := Solve(capped)
	if err != nil {
		t.Fatal(err)
	}

	capped.Warm = rsol.X
	capped.WarmBasis = rsol.Basis
	warm, err := Solve(capped)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warmed {
		t.Fatal("warm path did not engage")
	}
	if d := math.Abs(warm.Objective - cold.Objective); d > 1e-8 {
		t.Fatalf("warm and cold objectives differ by %g", d)
	}
	for j := range cold.X {
		if d := math.Abs(warm.X[j] - cold.X[j]); d > 1e-8 {
			t.Fatalf("warm and cold X differ by %g at %d", d, j)
		}
	}
	if warm.Iters >= cold.Iters+len(rsol.Basis) {
		t.Errorf("warm start did not save pivots: warm %d vs cold %d", warm.Iters, cold.Iters)
	}
}

// TestWarmBasisInfeasibleCap: an appended constraint that cannot be met must
// surface as Infeasible through the warm path, matching the cold verdict.
func TestWarmBasisInfeasibleCap(t *testing.T) {
	relaxed, _ := relaxedAndCapped()
	rsol, err := Solve(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	capped := NewProblem(3)
	capped.Objective = []float64{1, 2, 3}
	_ = capped.AddConstraint([]float64{1, 1, 1}, EQ, 10)
	_ = capped.AddConstraint([]float64{0, 1, -1}, EQ, 2)
	_ = capped.AddConstraint([]float64{1, 0, 0}, LE, 6)
	_ = capped.AddConstraint([]float64{1, 1, 1}, LE, 5) // contradicts the = 10 row
	capped.WarmBasis = rsol.Basis
	sol, err := Solve(capped)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// TestWarmGarbageFallsBack: junk seeds must never break a solve — the cold
// path answers.
func TestWarmGarbageFallsBack(t *testing.T) {
	_, capped := relaxedAndCapped()
	cold, err := Solve(capped)
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Problem){
		"negative-warm":   func(p *Problem) { p.Warm = []float64{-1, 5, 3} },
		"nan-warm":        func(p *Problem) { p.Warm = []float64{math.NaN(), 0, 0} },
		"oversized-basis": func(p *Problem) { p.WarmBasis = make([]BasicRef, 99) },
		"bad-var-ref":     func(p *Problem) { p.WarmBasis = []BasicRef{{Var: 7}, {Var: 1}, {Var: 2}} },
		"bad-aux-ref":     func(p *Problem) { p.WarmBasis = []BasicRef{{Var: -1, Row: 0}, {Var: 1}, {Var: 2}} },
		"duplicate-ref":   func(p *Problem) { p.WarmBasis = []BasicRef{{Var: 1}, {Var: 1}, {Var: 2}} },
	} {
		_, p := relaxedAndCapped()
		mutate(p)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Status != Optimal || math.Abs(sol.Objective-cold.Objective) > 1e-8 {
			t.Fatalf("%s: got %+v, want cold optimum %g", name, sol, cold.Objective)
		}
	}
}

// TestBasisRoundTrip: encode → decode must reproduce the basis columns on an
// identical problem layout.
func TestBasisRoundTrip(t *testing.T) {
	_, capped := relaxedAndCapped()
	sol, err := Solve(capped)
	if err != nil {
		t.Fatal(err)
	}
	tab, _, lay := build(capped)
	cols, ok := decodeBasis(sol.Basis, capped.NumVars(), lay)
	if !ok {
		t.Fatal("self-decode failed")
	}
	if len(cols) != tab.m {
		t.Fatalf("decoded %d columns for %d rows", len(cols), tab.m)
	}
	// Re-solving with its own basis must engage warm and agree.
	capped.WarmBasis = sol.Basis
	again, err := Solve(capped)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Warmed || math.Abs(again.Objective-sol.Objective) > 1e-12 {
		t.Fatalf("self warm restart: %+v", again)
	}
}
