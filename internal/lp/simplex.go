package lp

import (
	"fmt"
	"math"
	"sort"
)

const (
	pivotEps  = 1e-9 // entries smaller than this are treated as zero pivots
	feasEps   = 1e-7 // phase-1 objective above this means infeasible
	reduceEps = 1e-9 // reduced-cost tolerance for optimality
	crashEps  = 1e-7 // minimum pivot magnitude accepted while crashing a warm basis
)

// tableau is the dense simplex working state. Layout:
//
//	rows 0..m-1:  constraint rows, columns 0..n-1 variables, column n = RHS
//	row m:        objective row (reduced costs), column n = -objective value
type tableau struct {
	m, n  int
	a     [][]float64 // (m+1) x (n+1)
	basis []int       // basis[i] = variable index basic in row i
	// width is how many leading columns pivots maintain (the RHS column is
	// always maintained). build() sets it to n; the Resolver narrows it to
	// artStart once phase 1 can never run again, so repair pivots stop
	// streaming the dead artificial block. Columns in [width, n) then go
	// stale — EXCEPT basic ones, which stay exact identity columns without
	// any update (their pivot-row entry is zero, so every update is a no-op).
	width int
}

// layout records which auxiliary column each constraint row owns, for the
// layout-independent basis encoding (BasicRef).
type layout struct {
	rowSlack []int // slack/surplus column of each row, -1 when none
	rowArt   []int // artificial column of each row, -1 when none
}

// encodeBasis converts the tableau's basis into BasicRef form.
func (t *tableau) encodeBasis(nVars int, lay layout) []BasicRef {
	owner := map[int]BasicRef{}
	for i, c := range lay.rowSlack {
		if c >= 0 {
			owner[c] = BasicRef{Var: -1, Row: i}
		}
	}
	for i, c := range lay.rowArt {
		if c >= 0 {
			owner[c] = BasicRef{Var: -1, Row: i, Art: true}
		}
	}
	refs := make([]BasicRef, t.m)
	for i, b := range t.basis {
		if b < nVars {
			refs[i] = BasicRef{Var: b}
		} else {
			refs[i] = owner[b]
		}
	}
	return refs
}

// decodeBasis resolves BasicRefs against this problem's layout, returning
// the target basis columns or ok=false when any ref does not exist here.
func decodeBasis(refs []BasicRef, nVars int, lay layout) ([]int, bool) {
	cols := make([]int, len(refs))
	for i, r := range refs {
		switch {
		case r.Var >= nVars:
			return nil, false
		case r.Var >= 0:
			cols[i] = r.Var
		case r.Row < 0 || r.Row >= len(lay.rowSlack):
			return nil, false
		case r.Art:
			if lay.rowArt[r.Row] < 0 {
				return nil, false
			}
			cols[i] = lay.rowArt[r.Row]
		default:
			if lay.rowSlack[r.Row] < 0 {
				return nil, false
			}
			cols[i] = lay.rowSlack[r.Row]
		}
	}
	return cols, true
}

// build assembles the raw tableau: normalised rows, slack/surplus columns,
// artificials basic in GE/EQ rows. nVars is the count of structural
// variables; artStart the first artificial column.
func build(p *Problem) (t *tableau, artStart int, lay layout) {
	n := p.NumVars()
	m := len(p.Constraints)
	lay = layout{rowSlack: make([]int, m), rowArt: make([]int, m)}
	for i := range lay.rowSlack {
		lay.rowSlack[i], lay.rowArt[i] = -1, -1
	}

	type rowSpec struct {
		coeffs []float64
		rhs    float64
		rel    Relation
	}
	rows := make([]rowSpec, m)
	for i, c := range p.Constraints {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 { // normalise to b >= 0
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{coeffs, rhs, rel}
	}

	nSlack := 0
	for _, r := range rows {
		if r.rel == LE || r.rel == GE {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.rel == GE || r.rel == EQ {
			nArt++
		}
	}

	total := n + nSlack + nArt
	t = &tableau{m: m, n: total, width: total}
	// One contiguous arena backs every row: simplex pivots stream the whole
	// tableau, and row-contiguous storage keeps that streaming prefetchable
	// (and cuts the m+2 row allocations to one).
	t.a = make([][]float64, m+1)
	arena := make([]float64, (m+1)*(total+1))
	for i := range t.a {
		t.a[i], arena = arena[:total+1:total+1], arena[total+1:]
	}
	t.basis = make([]int, m)

	slackCol := n
	artCol := n + nSlack
	artStart = artCol
	for i, r := range rows {
		copy(t.a[i][:n], r.coeffs)
		t.a[i][total] = r.rhs
		switch r.rel {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			lay.rowSlack[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			lay.rowSlack[i] = slackCol
			slackCol++
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			lay.rowArt[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			lay.rowArt[i] = artCol
			artCol++
		}
	}
	return t, artStart, lay
}

// clearArtificials drives every still-basic artificial (at zero level) out
// of the basis, zeroing rows that prove redundant. Returns pivots performed.
// Callers must only invoke this when those rows' RHS are (numerically) zero.
func (t *tableau) clearArtificials(artStart int) int {
	pivots := 0
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artStart {
			continue
		}
		pivoted := false
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[i][j]) > pivotEps {
				t.pivot(i, j)
				pivots++
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain phase 2.
			for j := 0; j <= t.n; j++ {
				t.a[i][j] = 0
			}
		}
	}
	return pivots
}

// phase2Objective installs the true objective, priced out over the current
// basis. A deterministic, negligible perturbation breaks total objective
// ties: problems whose actions all cost the same (dual-degenerate CTMDP
// instances) otherwise orbit forever even under Bland's rule with
// floating-point pivoting. The reported objective is recomputed from the
// unperturbed costs at extraction.
func (t *tableau) phase2Objective(p *Problem) {
	n := p.NumVars()
	objScale := 0.0
	for j := 0; j < n; j++ {
		if a := math.Abs(p.Objective[j]); a > objScale {
			objScale = a
		}
	}
	if objScale == 0 {
		objScale = 1
	}
	perturb := objScale * 1e-9 / float64(n)
	obj := t.a[t.m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = p.Objective[j] + perturb*float64(j+1)
	}
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if b < n && math.Abs(obj[b]) > 0 {
			c := obj[b]
			for j := 0; j <= t.n; j++ {
				obj[j] -= c * t.a[i][j]
			}
		}
	}
}

// extract reads the optimal point off the tableau.
func (t *tableau) extract(p *Problem, iters int) *Solution {
	n := p.NumVars()
	x := make([]float64, n)
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b < n {
			x[b] = t.a[i][t.n]
		}
	}
	// Clamp tiny negatives introduced by roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-9 {
			x[j] = 0
		}
	}
	var objVal float64
	for j := 0; j < n; j++ {
		objVal += p.Objective[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: objVal, Iters: iters}
}

// Solve runs simplex on the problem: the warm-start path when a usable
// p.WarmBasis or p.Warm seed is present (falling back silently if it is not
// usable), else two-phase primal. The limit on pivots is proportional to the
// problem size; exceeding it returns ErrIterationLimit.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars() == 0 {
		return nil, ErrNoVariables
	}
	if len(p.WarmBasis) > 0 || len(p.Warm) == p.NumVars() {
		if sol, ok := solveWarm(p); ok {
			return sol, nil
		}
	}
	return solveCold(p)
}

// solveCold is the ordinary two-phase primal simplex.
func solveCold(p *Problem) (*Solution, error) {
	sol, _, err := solveColdKeep(p)
	return sol, err
}

// solveColdKeep is solveCold retaining the final tableau state for callers —
// the Resolver — that will keep re-solving nearby programs against it.
func solveColdKeep(p *Problem) (*Solution, *tabState, error) {
	t, artStart, lay := build(p)
	total := t.n
	nArt := total - artStart
	maxIters := 200 * (t.m + total + 10)
	iters := 0

	// Phase 1: minimise the sum of artificials.
	if nArt > 0 {
		obj := t.a[t.m]
		for j := range obj {
			obj[j] = 0
		}
		for j := artStart; j < total; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis (reduced costs must be expressed in
		// terms of the current basis).
		for i := 0; i < t.m; i++ {
			if t.basis[i] >= artStart {
				for j := 0; j <= total; j++ {
					obj[j] -= t.a[i][j]
				}
			}
		}
		it, err := t.iterate(maxIters, artStart)
		iters += it
		if err != nil {
			return nil, nil, fmt.Errorf("lp: phase 1: %w", err)
		}
		if -t.a[t.m][total] > feasEps {
			return &Solution{Status: Infeasible, Iters: iters}, nil, nil
		}
		iters += t.clearArtificials(artStart)
	}

	// Phase 2.
	t.phase2Objective(p)
	it, err := t.iterate(maxIters, artStart)
	iters += it
	if err != nil {
		if err == errUnbounded {
			return &Solution{Status: Unbounded, Iters: iters}, nil, nil
		}
		return nil, nil, err
	}
	sol := t.extract(p, iters)
	sol.Basis = t.encodeBasis(p.NumVars(), lay)
	return sol, &tabState{t: t, artStart: artStart, lay: lay}, nil
}

// tabState bundles a tableau with the layout facts needed to keep working on
// it after a solve: the first artificial column (pivot bans) and the
// auxiliary-column ownership map (basis encoding).
type tabState struct {
	t        *tableau
	artStart int
	lay      layout
}

// solveWarm establishes a starting basis from the donor solve and solves
// from there, skipping phase 1. The strong seed is p.WarmBasis — rebuilding
// the donor's basis SET reproduces its reduced costs exactly (reduced costs
// depend only on which columns are basic), so an optimal donor hands over a
// dual-feasible start and any rows it violates (inequalities appended since,
// e.g. a new occupancy cap) are repaired by a few dual simplex steps. The
// weak seed is p.Warm alone: its support is crashed into the basis, which
// skips phase 1 but carries no dual-feasibility promise — on degenerate
// programs the support underdetermines the basis. Returns ok=false to send
// the caller down the cold path whenever the start cannot be established;
// the warm path therefore never changes the reported optimum, only the
// pivot count (degenerate programs may surface a different optimal vertex
// of equal objective).
func solveWarm(p *Problem) (*Solution, bool) {
	sol, _, ok := solveWarmKeep(p)
	return sol, ok
}

// solveWarmKeep is solveWarm retaining the final tableau state (see
// solveColdKeep).
func solveWarmKeep(p *Problem) (*Solution, *tabState, bool) {
	n := p.NumVars()
	for _, v := range p.Warm {
		if v < -1e-9 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, false
		}
	}
	t, artStart, lay := build(p)
	maxIters := 200 * (t.m + t.n + 10)
	iters := 0

	if len(p.WarmBasis) > 0 {
		// Strong seed: reconstruct the donor basis set.
		if len(p.WarmBasis) > t.m {
			return nil, nil, false
		}
		target, ok := decodeBasis(p.WarmBasis, n, lay)
		if !ok {
			return nil, nil, false
		}
		// The donor's basis matrix is nonsingular over the donor's own rows,
		// so reconstruction is confined to them; appended rows keep their own
		// auxiliary basic (the slack of a new inequality).
		it, ok := t.crashBasis(target, len(p.WarmBasis))
		iters += it
		if !ok {
			return nil, nil, false
		}
		// No artificial may survive in the basis outside the donor's own
		// (degenerate, zero-level) entries — an appended equality row would
		// do that, and phase 1 could not be skipped for it.
		inTarget := make(map[int]bool, len(target))
		for _, c := range target {
			inTarget[c] = true
		}
		for _, b := range t.basis {
			if b >= artStart && !inTarget[b] {
				return nil, nil, false
			}
		}
	} else {
		// Weak seed: crash the candidate's support, largest values first
		// (larger basics are better-conditioned pivots), then drive leftover
		// artificials out so their columns can be banned outright.
		type sup struct {
			j int
			v float64
		}
		var support []sup
		for j := 0; j < n; j++ {
			if p.Warm[j] > 1e-12 {
				support = append(support, sup{j, p.Warm[j]})
			}
		}
		sort.Slice(support, func(i, j int) bool {
			if support[i].v != support[j].v {
				return support[i].v > support[j].v
			}
			return support[i].j < support[j].j
		})
		if len(support) > t.m {
			return nil, nil, false // not a vertex of this system
		}
		for _, s := range support {
			best, bestAbs := -1, crashEps
			for i := 0; i < t.m; i++ {
				if t.basis[i] < n {
					continue // row already claimed by a structural column
				}
				if a := math.Abs(t.a[i][s.j]); a > bestAbs {
					best, bestAbs = i, a
				}
			}
			if best == -1 {
				return nil, nil, false // support is dependent; let phase 1 sort it out
			}
			t.pivot(best, s.j)
			iters++
		}
		// Pivoting an artificial out keeps its row as an exact constraint
		// (any basic-value wobble is repaired below); a row with no usable
		// pivot is droppable only if it is the all-zero row — otherwise the
		// support cannot express this system: cold path.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			best, bestAbs := -1, pivotEps
			for j := 0; j < artStart; j++ {
				if a := math.Abs(t.a[i][j]); a > bestAbs {
					best, bestAbs = j, a
				}
			}
			if best >= 0 {
				t.pivot(i, best)
				iters++
				continue
			}
			if math.Abs(t.a[i][t.n]) > 1e-9 {
				return nil, nil, false // inconsistent dependent row
			}
			for j := 0; j <= t.n; j++ {
				t.a[i][j] = 0 // redundant row: can never constrain phase 2
			}
		}
	}

	t.phase2Objective(p)

	// Repair negative basics by dual simplex, which needs the reduced costs
	// (near-)non-negative. A donor basis that was optimal certifies up to
	// roundoff; anything else goes cold here, and the primal cleanup below
	// mops up negativity inside the loosened tolerance.
	if t.minRHS() < -1e-9 {
		for j := 0; j < artStart; j++ {
			if t.a[t.m][j] < -1e-7 {
				return nil, nil, false // not dual feasible: cold path
			}
		}
		it, err := t.dualIterate(maxIters, artStart)
		iters += it
		switch err {
		case nil:
		case errInfeasible:
			return &Solution{Status: Infeasible, Iters: iters, Warmed: true}, nil, true
		default:
			return nil, nil, false
		}
	}

	// Primal cleanup from a feasible, near-optimal basis.
	it, err := t.iterate(maxIters, artStart)
	iters += it
	if err == errUnbounded {
		return &Solution{Status: Unbounded, Iters: iters, Warmed: true}, nil, true
	}
	if err != nil {
		return nil, nil, false
	}
	sol := t.extract(p, iters)
	sol.Warmed = true
	sol.Basis = t.encodeBasis(n, lay)
	return sol, &tabState{t: t, artStart: artStart, lay: lay}, true
}

// crashBasis pivots the target basis SET into place by multi-pass Gaussian
// elimination over the first rowLimit rows: each pass claims target columns
// into eligible rows still holding a non-target basic, pivoting on the
// largest available entry. For a nonsingular target basis this terminates
// with every target column basic; anything else reports ok=false.
func (t *tableau) crashBasis(target []int, rowLimit int) (int, bool) {
	inTarget := make([]bool, t.n)
	for _, c := range target {
		if c < 0 || c >= t.n || inTarget[c] {
			return 0, false // malformed or duplicated target
		}
		inTarget[c] = true
	}
	var pending []int
	done := make([]bool, t.n)
	for _, b := range t.basis {
		if inTarget[b] {
			done[b] = true // already basic (e.g. a slack the donor kept basic)
		}
	}
	for _, c := range target {
		if !done[c] {
			pending = append(pending, c)
		}
	}
	pivots := 0
	for len(pending) > 0 {
		var stuck []int
		progressed := false
		for _, c := range pending {
			best, bestAbs := -1, crashEps
			for i := 0; i < rowLimit && i < t.m; i++ {
				if inTarget[t.basis[i]] {
					continue // row already holds a target basic
				}
				if a := math.Abs(t.a[i][c]); a > bestAbs {
					best, bestAbs = i, a
				}
			}
			if best == -1 {
				stuck = append(stuck, c)
				continue
			}
			t.pivot(best, c)
			pivots++
			progressed = true
		}
		if !progressed {
			return pivots, false // dependent target set (or numerics): cold path
		}
		pending = stuck
	}
	return pivots, true
}

// minRHS returns the most negative basic value.
func (t *tableau) minRHS() float64 {
	mn := 0.0
	for i := 0; i < t.m; i++ {
		if v := t.a[i][t.n]; v < mn {
			mn = v
		}
	}
	return mn
}

// dualIterate runs dual simplex pivots until primal feasibility (RHS ≥ 0) is
// restored. Precondition: reduced costs are (near-)non-negative (dual
// feasible); the ratio test preserves that. A negative row with no negative
// entry certifies primal infeasibility (errInfeasible) when the violation is
// decisive; a merely roundoff-sized violation returns errStall so the caller
// can fall back to the cold path rather than mislabel a feasible program.
func (t *tableau) dualIterate(maxIters, banFrom int) (int, error) {
	obj := t.a[t.m]
	iters := 0
	for {
		if iters >= maxIters {
			return iters, ErrIterationLimit
		}
		// Leaving row: most negative basic value.
		leave := -1
		worst := -1e-9
		for i := 0; i < t.m; i++ {
			if v := t.a[i][t.n]; v < worst {
				worst = v
				leave = i
			}
		}
		if leave == -1 {
			return iters, nil // primal feasible
		}
		// Entering column: dual ratio test over negative entries. Ties —
		// ubiquitous on degenerate CTMDP duals — break towards the largest
		// pivot magnitude: bigger pivots both bound tableau growth and take
		// longer steps out of the degenerate vertex than Bland's lowest
		// index, which crawls. Termination is still safeguarded by maxIters
		// (and every caller treats that as "go re-solve cold").
		enter := -1
		bestRatio := math.Inf(1)
		bestPivot := 0.0
		for j := 0; j < t.n && j < banFrom; j++ {
			aij := t.a[leave][j]
			if aij >= -pivotEps {
				continue
			}
			ratio := math.Max(obj[j], 0) / -aij
			switch {
			case ratio < bestRatio-1e-12:
				bestRatio = ratio
				bestPivot = -aij
				enter = j
			case ratio <= bestRatio+1e-12 && -aij > bestPivot:
				if ratio < bestRatio {
					bestRatio = ratio
				}
				bestPivot = -aij
				enter = j
			}
		}
		if enter == -1 {
			if worst > -1e-6 {
				return iters, errStall
			}
			return iters, errInfeasible
		}
		t.pivot(leave, enter)
		iters++
	}
}

type simplexErr string

func (e simplexErr) Error() string { return string(e) }

const (
	errUnbounded  = simplexErr("lp: unbounded")
	errInfeasible = simplexErr("lp: infeasible row")
	errStall      = simplexErr("lp: warm start stalled")
)

// iterate runs simplex pivots until optimal, unbounded or the iteration cap.
// Columns at index >= banFrom are never entered (used to keep artificials out
// during phase 2). Pivoting uses Dantzig's rule (most negative reduced cost)
// for speed; a run of pivots with no objective progress flips it to Bland's
// rule permanently, which guarantees termination (switching back on
// roundoff-scale "improvements" can livelock between the two rules).
func (t *tableau) iterate(maxIters, banFrom int) (int, error) {
	obj := t.a[t.m]
	iters := 0
	bland := false
	stall := 0
	stallLimit := 30 + t.m/4
	lastObj := -obj[t.n]
	for {
		if iters >= maxIters {
			return iters, ErrIterationLimit
		}
		enter := -1
		if bland {
			// Bland: lowest index with negative reduced cost.
			for j := 0; j < t.n && j < banFrom; j++ {
				if obj[j] < -reduceEps {
					enter = j
					break
				}
			}
		} else {
			// Dantzig: most negative reduced cost.
			best := -reduceEps
			for j := 0; j < t.n && j < banFrom; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return iters, nil // optimal
		}
		// Ratio test with a numerical-stability tie-break. CTMDP balance
		// systems are maximally degenerate (almost every RHS is 0): many
		// rows tie at ratio 0, and repeatedly pivoting on tiny entries
		// blows the tableau up until "reduced costs" are pure noise. Among
		// (near-)minimal-ratio rows we therefore pivot on the LARGEST
		// entry in the entering column, which keeps growth bounded.
		leave := -1
		bestRatio := math.Inf(1)
		bestPivot := 0.0
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= pivotEps {
				continue
			}
			// Roundoff can leave a basic value microscopically negative;
			// clamp so ratios stay non-negative.
			rhs := t.a[i][t.n]
			if rhs < 0 {
				rhs = 0
			}
			ratio := rhs / aij
			switch {
			case ratio < bestRatio-1e-9:
				bestRatio = ratio
				bestPivot = aij
				leave = i
			case ratio <= bestRatio+1e-9 && aij > bestPivot:
				if ratio < bestRatio {
					bestRatio = ratio
				}
				bestPivot = aij
				leave = i
			}
		}
		if leave == -1 {
			return iters, errUnbounded
		}
		t.pivot(leave, enter)
		iters++
		cur := -obj[t.n]
		if cur < lastObj-1e-12 {
			lastObj = cur
			stall = 0
		} else {
			stall++
			if stall > stallLimit {
				bland = true
			}
			// Prolonged stagnation in Bland mode means roundoff is keeping
			// a reduced cost pinned fractionally below the tolerance at an
			// effectively-optimal vertex. Accept the vertex if every
			// reduced cost clears a loosened tolerance.
			if bland && stall > 20*stallLimit {
				worst := 0.0
				for j := 0; j < t.n && j < banFrom; j++ {
					if obj[j] < worst {
						worst = obj[j]
					}
				}
				if worst > -1e-6 {
					return iters, nil
				}
			}
		}
	}
}

// pivot makes column `col` basic in row `row`. Only the leading t.width
// columns plus the RHS are maintained (see the width field); the eliminate
// loop is unrolled 4-wide over slices re-sliced to the width so the bounds
// checks hoist — this saxpy is the single hottest loop in the module.
func (t *tableau) pivot(row, col int) {
	w := t.width
	prow := t.a[row]
	inv := 1 / prow[col]
	for j := 0; j < w; j++ {
		prow[j] *= inv
	}
	prow[t.n] *= inv
	prow[col] = 1 // exact
	ps := prow[:w]
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		ri := t.a[i]
		f := ri[col]
		if f == 0 {
			continue
		}
		rs := ri[:w]
		j := 0
		for ; j+3 < w; j += 4 {
			rs[j] -= f * ps[j]
			rs[j+1] -= f * ps[j+1]
			rs[j+2] -= f * ps[j+2]
			rs[j+3] -= f * ps[j+3]
		}
		for ; j < w; j++ {
			rs[j] -= f * ps[j]
		}
		ri[t.n] -= f * prow[t.n]
		ri[col] = 0 // exact
	}
	t.basis[row] = col
}
