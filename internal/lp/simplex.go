package lp

import (
	"fmt"
	"math"
)

const (
	pivotEps  = 1e-9 // entries smaller than this are treated as zero pivots
	feasEps   = 1e-7 // phase-1 objective above this means infeasible
	reduceEps = 1e-9 // reduced-cost tolerance for optimality
)

// tableau is the dense simplex working state. Layout:
//
//	rows 0..m-1:  constraint rows, columns 0..n-1 variables, column n = RHS
//	row m:        objective row (reduced costs), column n = -objective value
type tableau struct {
	m, n  int
	a     [][]float64 // (m+1) x (n+1)
	basis []int       // basis[i] = variable index basic in row i
}

// Solve runs two-phase simplex on the problem. The limit on pivots is
// proportional to the problem size; exceeding it returns ErrIterationLimit.
func Solve(p *Problem) (*Solution, error) {
	n := p.NumVars()
	if n == 0 {
		return nil, ErrNoVariables
	}
	m := len(p.Constraints)

	// Count auxiliary columns: one slack per LE, one surplus per GE, one
	// artificial per GE and EQ row (and per LE row with negative RHS after
	// normalisation — normalising first keeps this simple).
	type rowSpec struct {
		coeffs []float64
		rhs    float64
		rel    Relation
	}
	rows := make([]rowSpec, m)
	for i, c := range p.Constraints {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 { // normalise to b >= 0
			for j := range coeffs {
				coeffs[j] = -coeffs[j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{coeffs, rhs, rel}
	}

	nSlack := 0
	for _, r := range rows {
		if r.rel == LE || r.rel == GE {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.rel == GE || r.rel == EQ {
			nArt++
		}
	}

	total := n + nSlack + nArt
	t := &tableau{m: m, n: total}
	t.a = make([][]float64, m+1)
	for i := range t.a {
		t.a[i] = make([]float64, total+1)
	}
	t.basis = make([]int, m)

	slackCol := n
	artCol := n + nSlack
	artStart := artCol
	for i, r := range rows {
		copy(t.a[i][:n], r.coeffs)
		t.a[i][total] = r.rhs
		switch r.rel {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}

	maxIters := 200 * (m + total + 10)
	iters := 0

	// Phase 1: minimise the sum of artificials.
	if nArt > 0 {
		obj := t.a[m]
		for j := range obj {
			obj[j] = 0
		}
		for j := artStart; j < total; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis (reduced costs must be expressed in
		// terms of the current basis).
		for i := 0; i < m; i++ {
			if t.basis[i] >= artStart {
				for j := 0; j <= total; j++ {
					obj[j] -= t.a[i][j]
				}
			}
		}
		it, err := t.iterate(maxIters, artStart)
		iters += it
		if err != nil {
			return nil, fmt.Errorf("lp: phase 1: %w", err)
		}
		if -t.a[m][total] > feasEps {
			return &Solution{Status: Infeasible, Iters: iters}, nil
		}
		// Drive any artificial still basic (at zero level) out of the basis.
		for i := 0; i < m; i++ {
			if t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > pivotEps {
					t.pivot(i, j)
					iters++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it can never constrain phase 2.
				for j := 0; j <= total; j++ {
					t.a[i][j] = 0
				}
			}
		}
	}

	// Phase 2: restore the true objective, priced out over the basis, and
	// forbid artificial columns. A deterministic, negligible perturbation
	// breaks total objective ties: problems whose actions all cost the same
	// (dual-degenerate CTMDP instances) otherwise orbit forever even under
	// Bland's rule with floating-point pivoting. The reported objective is
	// recomputed from the unperturbed costs below.
	objScale := 0.0
	for j := 0; j < n; j++ {
		if a := math.Abs(p.Objective[j]); a > objScale {
			objScale = a
		}
	}
	if objScale == 0 {
		objScale = 1
	}
	perturb := objScale * 1e-9 / float64(n)
	obj := t.a[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = p.Objective[j] + perturb*float64(j+1)
	}
	for i := 0; i < m; i++ {
		b := t.basis[i]
		if b < n && math.Abs(obj[b]) > 0 {
			c := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= c * t.a[i][j]
			}
		}
	}
	it, err := t.iterate(maxIters, artStart)
	iters += it
	if err != nil {
		if err == errUnbounded {
			return &Solution{Status: Unbounded, Iters: iters}, nil
		}
		return nil, err
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if b := t.basis[i]; b < n {
			x[b] = t.a[i][total]
		}
	}
	// Clamp tiny negatives introduced by roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-9 {
			x[j] = 0
		}
	}
	var objVal float64
	for j := 0; j < n; j++ {
		objVal += p.Objective[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: objVal, Iters: iters}, nil
}

type simplexErr string

func (e simplexErr) Error() string { return string(e) }

const errUnbounded = simplexErr("lp: unbounded")

// iterate runs simplex pivots until optimal, unbounded or the iteration cap.
// Columns at index >= banFrom are never entered (used to keep artificials out
// during phase 2). Pivoting uses Dantzig's rule (most negative reduced cost)
// for speed; a run of pivots with no objective progress flips it to Bland's
// rule permanently, which guarantees termination (switching back on
// roundoff-scale "improvements" can livelock between the two rules).
func (t *tableau) iterate(maxIters, banFrom int) (int, error) {
	obj := t.a[t.m]
	iters := 0
	bland := false
	stall := 0
	stallLimit := 30 + t.m/4
	lastObj := -obj[t.n]
	for {
		if iters >= maxIters {
			return iters, ErrIterationLimit
		}
		enter := -1
		if bland {
			// Bland: lowest index with negative reduced cost.
			for j := 0; j < t.n && j < banFrom; j++ {
				if obj[j] < -reduceEps {
					enter = j
					break
				}
			}
		} else {
			// Dantzig: most negative reduced cost.
			best := -reduceEps
			for j := 0; j < t.n && j < banFrom; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return iters, nil // optimal
		}
		// Ratio test with a numerical-stability tie-break. CTMDP balance
		// systems are maximally degenerate (almost every RHS is 0): many
		// rows tie at ratio 0, and repeatedly pivoting on tiny entries
		// blows the tableau up until "reduced costs" are pure noise. Among
		// (near-)minimal-ratio rows we therefore pivot on the LARGEST
		// entry in the entering column, which keeps growth bounded.
		leave := -1
		bestRatio := math.Inf(1)
		bestPivot := 0.0
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= pivotEps {
				continue
			}
			// Roundoff can leave a basic value microscopically negative;
			// clamp so ratios stay non-negative.
			rhs := t.a[i][t.n]
			if rhs < 0 {
				rhs = 0
			}
			ratio := rhs / aij
			switch {
			case ratio < bestRatio-1e-9:
				bestRatio = ratio
				bestPivot = aij
				leave = i
			case ratio <= bestRatio+1e-9 && aij > bestPivot:
				if ratio < bestRatio {
					bestRatio = ratio
				}
				bestPivot = aij
				leave = i
			}
		}
		if leave == -1 {
			return iters, errUnbounded
		}
		t.pivot(leave, enter)
		iters++
		cur := -obj[t.n]
		if cur < lastObj-1e-12 {
			lastObj = cur
			stall = 0
		} else {
			stall++
			if stall > stallLimit {
				bland = true
			}
			// Prolonged stagnation in Bland mode means roundoff is keeping
			// a reduced cost pinned fractionally below the tolerance at an
			// effectively-optimal vertex. Accept the vertex if every
			// reduced cost clears a loosened tolerance.
			if bland && stall > 20*stallLimit {
				worst := 0.0
				for j := 0; j < t.n && j < banFrom; j++ {
					if obj[j] < worst {
						worst = obj[j]
					}
				}
				if worst > -1e-6 {
					return iters, nil
				}
			}
		}
	}
}

// pivot makes column `col` basic in row `row`.
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	prow := t.a[row]
	for j := 0; j <= t.n; j++ {
		prow[j] *= inv
	}
	prow[col] = 1 // exact
	for i := 0; i <= t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j <= t.n; j++ {
			ri[j] -= f * prow[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
}
