package lp

import (
	"fmt"
	"math"
)

// Resolver retains the final simplex tableau of a solved Problem so that
// closely related programs — identical except for ONE constraint row whose
// coefficients and/or RHS changed — can be re-solved by a rank-one tableau
// update plus a handful of repair pivots, instead of a fresh two-phase (or
// even warm-started) solve.
//
// This is the LP half of the delta re-solve tier (DESIGN.md §8): in the
// buffer-sizing sweeps, adjacent budget points share the entire balance
// system bit for bit and differ only in the linking occupancy row
// (capacity quanta and cap). Re-solving from the previous point's tableau
// costs O(m·n) for the algebraic update and typically one or two pivots,
// against the hundreds a warm-started solve spends reconstructing the basis.
//
// Correctness contract: the fast path is attempted only from an optimal (or
// dual-feasible infeasible) retained tableau, requires the stored and new RHS
// to be non-negative (build() would re-orient a negative-RHS row, which the
// in-place update cannot express) and the same constraint Relation, rebuilds
// the objective row from scratch, verifies dual feasibility before repairing,
// and — after extraction — checks the primal residual of the claimed optimum
// against every constraint. ANY doubt falls back to a full re-solve of the
// updated problem, so Resolve can change only the pivot count, never the
// reported optimum (up to the roundoff the residual gate bounds, see
// deltaResidualTol).
type Resolver struct {
	p     *Problem
	state *tabState
	sol   *Solution

	// Resolves counts Resolve calls answered by the rank-one fast path;
	// Fallbacks counts the ones that went through a full re-solve instead.
	// The split is the delta tier's effectiveness metric (cache stats).
	Resolves  int
	Fallbacks int

	// scratch buffers reused across Resolve calls (hot loop: zero-alloc
	// besides the extracted Solution itself).
	u, v []float64
}

// deltaResidualTol bounds the relative primal residual a delta-resolved
// optimum may carry before the Resolver distrusts its own tableau and falls
// back to a full re-solve.
const deltaResidualTol = 1e-6

// NewResolver solves p (warm-started when seeds are present, exactly like
// Solve) and retains the final tableau for subsequent Resolve calls. The
// initial solution is available via Solution. Non-optimal outcomes
// (infeasible, unbounded) are returned as solutions just like Solve's; the
// resolver then has no reusable tableau and the first Resolve re-solves cold.
func NewResolver(p *Problem) (*Resolver, error) {
	r := &Resolver{p: p}
	if err := r.refactor(); err != nil {
		return nil, err
	}
	return r, nil
}

// Solution returns the most recent solve's result.
func (r *Resolver) Solution() *Solution { return r.sol }

// refactor fully re-solves the current problem and retains the tableau.
func (r *Resolver) refactor() error {
	if r.p.NumVars() == 0 {
		return ErrNoVariables
	}
	r.state = nil
	if len(r.p.WarmBasis) > 0 || len(r.p.Warm) == r.p.NumVars() {
		if sol, st, ok := solveWarmKeep(r.p); ok {
			r.sol, r.state = sol, st
			return nil
		}
	}
	sol, st, err := solveColdKeep(r.p)
	if err != nil {
		return err
	}
	r.sol, r.state = sol, st
	return nil
}

// setRow installs the new coefficients and RHS into the problem (coefficients
// are copied, matching AddConstraint's ownership contract).
func (r *Resolver) setRow(row int, coeffs []float64, rhs float64) {
	c := &r.p.Constraints[row]
	if len(c.Coeffs) == len(coeffs) {
		copy(c.Coeffs, coeffs)
	} else {
		c.Coeffs = append([]float64(nil), coeffs...)
	}
	c.RHS = rhs
}

// Resolve replaces constraint `row`'s coefficients and RHS (its Relation is
// kept) and re-solves, preferring the rank-one fast path over the retained
// tableau. The returned Solution is exactly what Solve would report for the
// updated problem, up to roundoff bounded by the residual gate.
func (r *Resolver) Resolve(row int, coeffs []float64, rhs float64) (*Solution, error) {
	n := r.p.NumVars()
	if row < 0 || row >= len(r.p.Constraints) {
		return nil, fmt.Errorf("lp: resolver: row %d out of range", row)
	}
	if len(coeffs) != n {
		return nil, fmt.Errorf("lp: resolver: row has %d coefficients, problem has %d variables", len(coeffs), n)
	}
	if sol, ok := r.tryDelta(row, coeffs, rhs); ok {
		r.Resolves++
		r.sol = sol
		return sol, nil
	}
	r.Fallbacks++
	r.setRow(row, coeffs, rhs)
	if err := r.refactor(); err != nil {
		return nil, err
	}
	return r.sol, nil
}

// tryDelta attempts the rank-one update. It must be called BEFORE the new row
// is installed into r.p (it needs the old coefficients for the delta); on
// success it installs the row itself. ok=false means the caller must fall
// back to a full re-solve — the tableau may then be inconsistent and is
// discarded by refactor.
func (r *Resolver) tryDelta(row int, coeffs []float64, rhs float64) (*Solution, bool) {
	st := r.state
	if st == nil || r.sol == nil {
		return nil, false
	}
	// A dual-feasible primal-infeasible tableau (a previous Resolve hit an
	// over-tight cap) is still a valid starting point: dual simplex picks up
	// exactly where it certified.
	if r.sol.Status != Optimal && r.sol.Status != Infeasible {
		return nil, false
	}
	old := r.p.Constraints[row]
	if old.RHS < 0 || rhs < 0 {
		return nil, false // build() re-orients negative-RHS rows
	}
	t, artStart, lay := st.t, st.artStart, st.lay
	nVars := r.p.NumVars()

	// The row's auxiliary column started as exactly e_row (artificial +1, or
	// the slack +1 of a non-negated LE row), so its current tableau column IS
	// B⁻¹e_row — the u vector of the Sherman–Morrison update.
	aux := lay.rowArt[row]
	if aux < 0 {
		if old.Rel != LE {
			return nil, false // GE/EQ rows always own an artificial; anything else is malformed
		}
		aux = lay.rowSlack[row]
	}
	if aux < 0 {
		return nil, false
	}
	if aux >= t.width {
		// A previous Resolve narrowed the maintained width past this
		// (artificial) column, so it may have gone stale and no longer hold
		// B⁻¹e_row. LE rows — the delta tier's cap rows — use their slack,
		// which lives below artStart and never goes stale.
		return nil, false
	}
	if cap(r.u) < t.m {
		r.u = make([]float64, t.m)
	}
	u := r.u[:t.m]
	singular := true
	for i := 0; i < t.m; i++ {
		u[i] = t.a[i][aux]
		if math.Abs(u[i]) > pivotEps {
			singular = false
		}
	}
	if singular {
		return nil, false
	}

	// Δ: the change to the row over structural columns plus the RHS.
	dr := rhs - old.RHS
	// δᵀu over the basic columns, for the denominator s = 1 + δᵀu. The basis
	// matrix gains e_row·δᵀ restricted to basic columns; Sherman–Morrison
	// needs s safely away from zero (a vanishing s means the new basis matrix
	// is singular at this vertex).
	s := 1.0
	for i := 0; i < t.m; i++ {
		if b := t.basis[i]; b < nVars {
			if d := coeffs[b] - old.Coeffs[b]; d != 0 {
				s += d * u[i]
			}
		}
	}
	if math.Abs(s) < 1e-9 {
		return nil, false
	}

	// T_mid = T + u·Δᵀ  (columns: structural deltas and the RHS delta).
	for i := 0; i < t.m; i++ {
		ui := u[i]
		if ui == 0 {
			continue
		}
		ri := t.a[i]
		for j := 0; j < nVars; j++ {
			if d := coeffs[j] - old.Coeffs[j]; d != 0 {
				ri[j] += ui * d
			}
		}
		ri[t.n] += ui * dr
	}
	// From here on the tableau only ever serves delta re-solves: phase 1 and
	// basis crashes — the only consumers of the artificial block — rebuild
	// from scratch in refactor(), so stop maintaining those columns. Repair
	// pivots below (and in every later Resolve) then stream width·m instead
	// of n·m, which on CTMDP programs drops ~a quarter of every pivot's work.
	t.width = artStart
	w := t.width
	// v = δᵀ·T_mid, then T_new = T_mid − u·v/s (maintained columns + RHS).
	if cap(r.v) < t.n+1 {
		r.v = make([]float64, t.n+1)
	}
	v := r.v[:t.n+1]
	for j := range v {
		v[j] = 0
	}
	anyDelta := false
	for i := 0; i < t.m; i++ {
		b := t.basis[i]
		if b >= nVars {
			continue
		}
		d := coeffs[b] - old.Coeffs[b]
		if d == 0 {
			continue
		}
		anyDelta = true
		ri := t.a[i]
		for j := 0; j < w; j++ {
			v[j] += d * ri[j]
		}
		v[t.n] += d * ri[t.n]
	}
	if anyDelta {
		inv := 1 / s
		for i := 0; i < t.m; i++ {
			f := u[i] * inv
			if f == 0 {
				continue
			}
			ri := t.a[i]
			for j := 0; j < w; j++ {
				ri[j] -= f * v[j]
			}
			ri[t.n] -= f * v[t.n]
		}
	}
	r.setRow(row, coeffs, rhs)

	// The constraint rows now represent the updated system under the same
	// basis. Rebuild the reduced costs, confirm the basis is still dual
	// feasible, repair primal feasibility by dual simplex, then clean up.
	t.phase2Objective(r.p)
	obj := t.a[t.m]
	dualFeasible := true
	for j := 0; j < artStart; j++ {
		if obj[j] < -1e-7 {
			dualFeasible = false
			break
		}
	}
	primalFeasible := t.minRHS() >= -1e-9
	maxIters := 200 * (t.m + t.n + 10)
	iters := 0
	switch {
	case !primalFeasible && !dualFeasible:
		// A coefficient patch broke dual feasibility while the new RHS broke
		// primal feasibility — the sweep's usual shape when both the unit
		// scalings and the cap move between points. Run dual simplex anyway:
		// its ratio test clamps negative reduced costs to zero, which is dual
		// phase 1 by implicit cost shifting, except the true costs keep
		// steering every other column, so the vertex it reaches is far closer
		// to the new optimum than an explicitly shifted objective would land.
		// Feasibility repair — or the infeasibility certificate — is about
		// the constraint rows only, so the dual infeasibility cannot
		// invalidate either outcome; leftover negative reduced costs are the
		// primal cleanup's job below. Phase 1 is skipped entirely either way.
		fallthrough
	case !primalFeasible:
		// The usual case: the patched row cut the old optimum off. Dual
		// simplex repairs it in a handful of pivots.
		it, err := t.dualIterate(maxIters, artStart)
		iters += it
		switch err {
		case nil:
		case errInfeasible:
			return &Solution{Status: Infeasible, Iters: iters, Warmed: true}, true
		default:
			return nil, false
		}
		// A dual-infeasible but primal-feasible basis falls through: the
		// primal cleanup below is then a full phase-2 re-optimisation, which
		// still skips phase 1 — the expensive half.
	}
	it, err := t.iterate(maxIters, artStart)
	iters += it
	if err != nil {
		// Unbounded cannot be trusted off a patched tableau — certify cold.
		return nil, false
	}
	sol := t.extract(r.p, iters)
	if mv := maxViolation(r.p, sol.X); mv > deltaResidualTol {
		return nil, false // accumulated roundoff: refactorise
	}
	sol.Warmed = true
	sol.Basis = t.encodeBasis(nVars, lay)
	return sol, true
}

// maxViolation returns the largest relative constraint violation of x — the
// Resolver's post-extraction self check.
func maxViolation(p *Problem, x []float64) float64 {
	worst := 0.0
	for _, c := range p.Constraints {
		var ax float64
		for j, a := range c.Coeffs {
			ax += a * x[j]
		}
		var viol float64
		switch c.Rel {
		case EQ:
			viol = math.Abs(ax - c.RHS)
		case LE:
			viol = ax - c.RHS
		case GE:
			viol = c.RHS - ax
		}
		if rel := viol / (1 + math.Abs(c.RHS)); rel > worst {
			worst = rel
		}
	}
	return worst
}
