package lp

import "testing"

// TestPivotZeroAlloc pins the simplex pivot — the single hottest loop in the
// module, run hundreds of times per solve — at zero allocations (ISSUE 7's
// AllocsPerRun gate). The tableau arena is allocated once in build(); a
// pivot that allocates would multiply that cost by the iteration count.
func TestPivotZeroAlloc(t *testing.T) {
	const m, n = 32, 64
	tab := &tableau{m: m, n: n, width: n}
	tab.a = make([][]float64, m+1)
	v := 1.0
	for i := range tab.a {
		tab.a[i] = make([]float64, n+1)
		for j := range tab.a[i] {
			// Deterministic, well-conditioned nonzero fill so any (row, col)
			// stays a legal pivot across repeated pivoting.
			v = v*1.32471795724474602596 + 0.5
			if v > 4 {
				v -= 3.75
			}
			tab.a[i][j] = v
		}
	}
	tab.basis = make([]int, m)
	for i := range tab.basis {
		tab.basis[i] = n - m + i
	}
	col := 0
	if allocs := testing.AllocsPerRun(100, func() {
		tab.pivot(0, col)
		col = (col + 1) % 8
	}); allocs != 0 {
		t.Fatalf("pivot allocates %.0f objects per call, want 0", allocs)
	}
}

// TestResolveScratchZeroSteadyStateAlloc checks the Resolver's per-Resolve
// overhead: beyond the extracted Solution itself (one X vector, one basis
// encoding), the rank-one update must reuse its u/v scratch across calls.
func TestResolveScratchZeroSteadyStateAlloc(t *testing.T) {
	rng := lcg(3)
	const blocks, per = 3, 4
	n := blocks * per
	costs := make([]float64, n)
	for j := range costs {
		costs[j] = rng.next()
	}
	w := make([]float64, n)
	for j := range w {
		w[j] = 1 + 2*rng.next()
	}
	p := blockProblem(blocks, per, costs, w, 7)
	r, err := NewResolver(p)
	if err != nil {
		t.Fatal(err)
	}
	capRow := blocks
	caps := []float64{6.5, 6.0, 6.8, 6.2}
	for _, c := range caps { // warm the scratch
		if _, err := r.Resolve(capRow, w, c); err != nil {
			t.Fatal(err)
		}
	}
	if r.Resolves == 0 {
		t.Fatalf("fixture never took the fast path (fallbacks %d)", r.Fallbacks)
	}
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := r.Resolve(capRow, w, caps[i%len(caps)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The Solution payload (X slice, basis refs, the struct) is the only
	// allowed allocation; 8 objects is its observed footprint with headroom.
	if allocs > 8 {
		t.Fatalf("Resolve allocates %.0f objects per call beyond reuse, want <= 8", allocs)
	}
}
