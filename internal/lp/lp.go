// Package lp implements a dense two-phase primal simplex solver for linear
// programs of the form
//
//	minimise    cᵀx
//	subject to  aᵢᵀx (≤ | = | ≥) bᵢ   for every constraint i
//	            x ≥ 0
//
// It is the workhorse behind the CTMDP occupation-measure programs used by
// the buffer-sizing methodology (Feinberg 2002): those LPs have balance
// equalities, a normalisation equality and budget inequalities, all with
// non-negative variables, which is exactly this standard form.
//
// The solver uses Bland's anti-cycling rule, so it terminates on degenerate
// problems (CTMDP balance systems are always degenerate: one balance row is
// redundant). It is a dense tableau implementation; CTMDP instances in this
// repository stay below a few thousand variables, where dense simplex is
// simple and fast enough.
package lp

import (
	"errors"
	"fmt"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // aᵀx ≤ b
	EQ                 // aᵀx = b
	GE                 // aᵀx ≥ b
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is one row aᵀx (rel) b.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program in the package's standard form.
type Problem struct {
	// Objective holds the cost vector c of the minimisation objective.
	Objective []float64
	// Constraints holds the rows. Every row's Coeffs must have the same
	// length as Objective.
	Constraints []Constraint
	// Warm optionally seeds the solve with a candidate vertex — typically
	// the optimum of a closely related program, e.g. the same system before
	// one more inequality was added. Solve crashes a starting basis from the
	// candidate (see WarmBasis for the preferred, basis-exact form): phase 1
	// is skipped outright, and rows the candidate violates (newly added
	// inequalities) are repaired by dual simplex steps. The warm path is
	// best-effort — any inconsistency falls back to the ordinary two-phase
	// solve — so Warm can only change how fast the optimum is found, never
	// which optimum value is reported (degenerate programs may return a
	// different optimal vertex of equal objective).
	Warm []float64
	// WarmBasis carries a related solve's final basis (Solution.Basis) and
	// is the strong form of warm start: reconstructing the basis SET — not
	// just the candidate's support — reproduces that solve's reduced costs,
	// which for an optimal basis are non-negative, making the dual-simplex
	// repair of added constraints certify. Rows of this problem beyond
	// len(WarmBasis) (constraints appended since the donor solve; they must
	// be appended LAST) start on their own auxiliary basis. The donor
	// problem's rows must match this problem's leading rows one for one.
	WarmBasis []BasicRef
}

// BasicRef names the variable basic in one constraint row in a
// layout-independent way, so a basis can be carried from one problem to a
// related one whose auxiliary columns land at different indices: structural
// variables by their index, auxiliary (slack/surplus/artificial) columns by
// the constraint row that owns them.
type BasicRef struct {
	// Var is the structural variable index, or -1 for an auxiliary column.
	Var int
	// Row is the owning constraint row of the auxiliary column (Var == -1).
	Row int
	// Art selects the row's artificial rather than its slack/surplus.
	Art bool
}

// NewProblem returns an empty problem over n variables.
func NewProblem(n int) *Problem {
	return &Problem{Objective: make([]float64, n)}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// AddConstraint appends a constraint row. The coefficient slice is copied.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.NumVars() {
		return fmt.Errorf("lp: constraint has %d coefficients, problem has %d variables", len(coeffs), p.NumVars())
	}
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.Constraints = append(p.Constraints, Constraint{Coeffs: c, Rel: rel, RHS: rhs})
	return nil
}

// Status reports the outcome of a solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // optimal point (valid only when Status == Optimal)
	Objective float64   // cᵀx at the optimum
	Iters     int       // simplex pivots performed across both phases
	// Warmed reports that the warm-start path produced this solution (the
	// crash basis held and phase 1 was skipped).
	Warmed bool
	// Basis is the final simplex basis in layout-independent form, one entry
	// per constraint row — feed it to a related Problem's WarmBasis to
	// warm-start the next solve. Populated only for Optimal solutions.
	Basis []BasicRef
}

// ErrNoVariables is returned for a problem with an empty objective.
var ErrNoVariables = errors.New("lp: problem has no variables")

// ErrIterationLimit is returned if the pivot limit is exceeded. With Bland's
// rule this indicates a bug or a pathologically large instance, never cycling.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")
