package lp

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the resolver tests cover many
// instances without flaking.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

// blockProblem builds the shape the delta tier actually resolves: per-block
// "normalisation" equalities (each block of variables sums to 1) plus one
// trailing LE linking row with weights w and bound cap — a toy of the
// occupation-measure LP with its occupancy cap.
func blockProblem(blocks, per int, costs, w []float64, capacity float64) *Problem {
	n := blocks * per
	p := NewProblem(n)
	copy(p.Objective, costs)
	for b := 0; b < blocks; b++ {
		row := make([]float64, n)
		for j := 0; j < per; j++ {
			row[b*per+j] = 1
		}
		if err := p.AddConstraint(row, EQ, 1); err != nil {
			panic(err)
		}
	}
	if err := p.AddConstraint(w, LE, capacity); err != nil {
		panic(err)
	}
	return p
}

// TestResolverMatchesFreshSolve chains many (weights, cap) updates through
// one Resolver and checks every answer — status and objective — against a
// fresh two-phase solve of the same program, to 1e-8. This is the delta
// path's agreement gate at the LP layer.
func TestResolverMatchesFreshSolve(t *testing.T) {
	rng := lcg(1)
	const blocks, per = 4, 5
	n := blocks * per
	costs := make([]float64, n)
	for j := range costs {
		costs[j] = rng.next()
	}
	w := make([]float64, n)
	for j := range w {
		w[j] = 1 + 4*rng.next()
	}
	p := blockProblem(blocks, per, costs, w, float64(blocks)*3)
	r, err := NewResolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Solution().Status != Optimal {
		t.Fatalf("initial solve: %v", r.Solution().Status)
	}
	capRow := blocks // the LE row index

	for step := 0; step < 60; step++ {
		// Perturb the linking row's weights (a new capacity quantum) and move
		// the cap across the feasible/binding/infeasible range.
		for j := range w {
			w[j] = 1 + 4*rng.next()
		}
		minUnits, maxUnits := 0.0, 0.0
		for b := 0; b < blocks; b++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := 0; j < per; j++ {
				lo = math.Min(lo, w[b*per+j])
				hi = math.Max(hi, w[b*per+j])
			}
			minUnits += lo
			maxUnits += hi
		}
		capacity := minUnits + (rng.next()*1.4-0.2)*(maxUnits-minUnits)

		got, err := r.Resolve(capRow, w, capacity)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := Solve(blockProblem(blocks, per, costs, w, capacity))
		if err != nil {
			t.Fatalf("step %d: fresh solve: %v", step, err)
		}
		if got.Status != want.Status {
			t.Fatalf("step %d (cap %.4f in [%.4f, %.4f]): status %v, fresh solve %v",
				step, capacity, minUnits, maxUnits, got.Status, want.Status)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-8*(1+math.Abs(want.Objective)) {
			t.Fatalf("step %d: objective %.12f, fresh solve %.12f", step, got.Objective, want.Objective)
		}
		if v := maxViolation(r.p, got.X); v > 1e-8 {
			t.Fatalf("step %d: residual %.3e", step, v)
		}
	}
	if r.Resolves == 0 {
		t.Fatalf("rank-one fast path never engaged (%d fallbacks)", r.Fallbacks)
	}
	t.Logf("resolves=%d fallbacks=%d", r.Resolves, r.Fallbacks)
}

// TestResolverRHSOnlyIsFast pins the retry-ladder case: same coefficients,
// only the cap moves. Every such resolve must take the fast path and cost at
// most a few pivots.
func TestResolverRHSOnlyIsFast(t *testing.T) {
	rng := lcg(7)
	const blocks, per = 3, 4
	n := blocks * per
	costs := make([]float64, n)
	for j := range costs {
		costs[j] = rng.next()
	}
	w := make([]float64, n)
	for j := range w {
		w[j] = 1 + 2*rng.next()
	}
	p := blockProblem(blocks, per, costs, w, 7)
	r, err := NewResolver(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, capacity := range []float64{6.5, 6.0, 5.5, 6.2, 7.5} {
		sol, err := r.Resolve(blocks, w, capacity)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(blockProblem(blocks, per, costs, w, capacity))
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != want.Status {
			t.Fatalf("cap %.1f: status %v, want %v", capacity, sol.Status, want.Status)
		}
		if sol.Status == Optimal && math.Abs(sol.Objective-want.Objective) > 1e-8 {
			t.Fatalf("cap %.1f: objective %.12f, want %.12f", capacity, sol.Objective, want.Objective)
		}
		if r.Fallbacks != 0 {
			t.Fatalf("RHS-only resolve %d fell back to a full solve", i)
		}
		if sol.Iters > 10 {
			t.Fatalf("cap %.1f: %d pivots — the fast path should need only repair pivots", capacity, sol.Iters)
		}
	}
}

// TestResolverInfeasibleThenRecover drives the cap below the feasible floor
// and back, mirroring the methodology's cap retry ladder.
func TestResolverInfeasibleThenRecover(t *testing.T) {
	const blocks, per = 2, 3
	costs := []float64{3, 2, 1, 1, 2, 3}
	w := []float64{2, 3, 4, 4, 3, 2}
	p := blockProblem(blocks, per, costs, w, 8)
	r, err := NewResolver(p)
	if err != nil {
		t.Fatal(err)
	}
	// Feasible floor is 2+2=4.
	sol, err := r.Resolve(blocks, w, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("cap 3.5: %v, want infeasible", sol.Status)
	}
	sol, err = r.Resolve(blocks, w, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("cap 4.5 after infeasible: %v, want optimal", sol.Status)
	}
	want, err := Solve(blockProblem(blocks, per, costs, w, 4.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-want.Objective) > 1e-8 {
		t.Fatalf("objective %.12f, want %.12f", sol.Objective, want.Objective)
	}
	for j, v := range sol.X {
		if v < -1e-9 {
			t.Fatalf("x[%d] = %g < 0", j, v)
		}
	}
}

// TestResolverRejectsBadInput covers the argument validation.
func TestResolverRejectsBadInput(t *testing.T) {
	p := blockProblem(1, 2, []float64{1, 2}, []float64{1, 1}, 5)
	r, err := NewResolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(9, []float64{1, 1}, 5); err == nil {
		t.Fatal("row out of range accepted")
	}
	if _, err := r.Resolve(1, []float64{1}, 5); err == nil {
		t.Fatal("short coefficient row accepted")
	}
}
