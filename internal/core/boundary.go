package core

import (
	"fmt"
	"sort"

	"socbuf/internal/arch"
	"socbuf/internal/ctmdp"
)

// boundary holds the bridge-coupling scalars each subsystem model sees about
// the rest of the system: per-buffer arrival rates (for bridge buffers these
// are estimates of upstream throughput) and per-buffer full probabilities
// (for the downstream-loss cost of feeding a full bridge buffer).
type boundary struct {
	arrival  map[string]float64 // offered rate into every buffer
	fullProb map[string]float64 // P(buffer full)
}

// initialBoundary seeds the fixed point with loss-free arrival rates and
// zero full probabilities.
func initialBoundary(a *arch.Architecture) (*boundary, error) {
	rates, err := a.BufferArrivalRates()
	if err != nil {
		return nil, err
	}
	b := &boundary{arrival: rates, fullProb: map[string]float64{}}
	for id := range rates {
		b.fullProb[id] = 0
	}
	return b, nil
}

// update recomputes the boundary from a joint solution, with damping:
// new = damp·estimate + (1−damp)·old. Arrival rates into bridge buffers are
// re-derived by walking every route and attenuating the carried rate by each
// upstream buffer's acceptance and achieved service share.
func (b *boundary) update(a *arch.Architecture, sols []*ctmdp.ModelSolution, damp float64) error {
	// Per-buffer model statistics (aggregates spread to members).
	type stat struct {
		full    float64
		share   float64 // throughput / offered, capped at 1
		offered float64
	}
	stats := map[string]stat{}
	for _, ms := range sols {
		for c, cl := range ms.Model.Clients {
			full := ms.FullProbability(c)
			th := ms.Throughput(c)
			share := 1.0
			if cl.Lambda > 1e-12 {
				share = th / cl.Lambda
				if share > 1 {
					share = 1
				}
			}
			members := cl.Members
			if len(members) == 0 {
				members = []string{cl.BufferID}
			}
			for _, id := range members {
				stats[id] = stat{full: full, share: share, offered: cl.Lambda}
			}
		}
	}

	routes, err := a.Routes()
	if err != nil {
		return err
	}
	newArrival := map[string]float64{}
	for id := range b.arrival {
		newArrival[id] = 0
	}
	for _, r := range routes {
		carried := r.Flow.Rate
		for _, h := range r.Hops {
			newArrival[h.Buffer] += carried
			st, ok := stats[h.Buffer]
			if !ok {
				return fmt.Errorf("core: buffer %q missing from solution statistics", h.Buffer)
			}
			// What survives this buffer: accepted and eventually served.
			carried *= (1 - st.full) * st.share
		}
	}
	for id := range b.arrival {
		b.arrival[id] = damp*newArrival[id] + (1-damp)*b.arrival[id]
		if st, ok := stats[id]; ok {
			b.fullProb[id] = damp*st.full + (1-damp)*b.fullProb[id]
		}
	}
	return nil
}

// BuildSubsystemModels exposes model construction to external analyses (the
// experiments' split demonstration and ablations): one CTMDP per bus, built
// from loss-free boundary estimates. cfg needs only Arch and Budget set;
// other knobs default as in Run.
func BuildSubsystemModels(a *arch.Architecture, alloc arch.Allocation, cfg Config) ([]*ctmdp.Model, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	bnd, err := initialBoundary(a)
	if err != nil {
		return nil, err
	}
	return buildModels(a, alloc, bnd, cfg)
}

// buildModels constructs one CTMDP per bus subsystem from the architecture,
// the current allocation (which fixes UnitsPerLevel) and the current
// boundary scalars.
func buildModels(a *arch.Architecture, alloc arch.Allocation, bnd *boundary, cfg Config) ([]*ctmdp.Model, error) {
	clients, err := a.BusClients()
	if err != nil {
		return nil, err
	}
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}
	// Downstream full probability per buffer: rate-weighted average of the
	// next-hop buffers of the traffic leaving it ("" = delivery, p=0).
	downNum := map[string]float64{}
	downDen := map[string]float64{}
	// Loss weight per buffer: rate-weighted over source processors.
	wNum := map[string]float64{}
	for _, r := range routes {
		w := 1.0
		if lw, ok := cfg.LossWeights[r.Flow.From]; ok {
			w = lw
		}
		for _, h := range r.Hops {
			downDen[h.Buffer] += r.Flow.Rate
			wNum[h.Buffer] += r.Flow.Rate * w
			if h.NextBuffer != "" {
				downNum[h.Buffer] += r.Flow.Rate * bnd.fullProb[h.NextBuffer]
			}
		}
	}

	busIDs := make([]string, 0, len(a.Buses))
	for _, b := range a.Buses {
		busIDs = append(busIDs, b.ID)
	}
	sort.Strings(busIDs)

	var models []*ctmdp.Model
	for _, busID := range busIDs {
		bufIDs := clients[busID]
		if len(bufIDs) == 0 {
			continue // bus carries no traffic: nothing to model
		}
		bus, _ := a.BusByID(busID)
		cs := make([]ctmdp.Client, 0, len(bufIDs))
		for _, id := range bufIDs {
			levels := cfg.Levels
			unit := float64(alloc[id]) / float64(levels)
			if unit <= 0 {
				return nil, fmt.Errorf("core: buffer %q has no allocated units", id)
			}
			var down, weight float64
			if den := downDen[id]; den > 0 {
				down = downNum[id] / den
				weight = wNum[id] / den
			} else {
				weight = 1
			}
			if weight <= 0 {
				weight = 1
			}
			cs = append(cs, ctmdp.Client{
				BufferID:           id,
				Lambda:             bnd.arrival[id],
				Levels:             levels,
				UnitsPerLevel:      unit,
				LossWeight:         weight,
				DownstreamFullProb: down,
			})
		}
		cs, err := ctmdp.AggregateClients(cs, cfg.MaxClients)
		if err != nil {
			// AggregateClients sees only a client list; attach the bus so
			// sweep-level error collection stays attributable.
			return nil, fmt.Errorf("core: bus %q: %w", busID, err)
		}
		m, err := ctmdp.NewModel(busID, bus.ServiceRate, cs)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("core: no subsystem carries traffic")
	}
	return models, nil
}
