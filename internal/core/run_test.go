package core

import (
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/ctmdp"
)

// fastCfg keeps unit-test runs quick.
func fastCfg(a *arch.Architecture, budget int) Config {
	return Config{
		Arch:       a,
		Budget:     budget,
		Iterations: 2,
		Seeds:      []int64{1},
		Horizon:    800,
		WarmUp:     50,
	}
}

func TestRunTwoBus(t *testing.T) {
	res, err := Run(fastCfg(arch.TwoBusAMBA(), 24))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	if res.Best == nil {
		t.Fatal("no best iteration")
	}
	if err := res.Best.Alloc.Validate(res.Arch, 24); err != nil {
		t.Fatalf("best allocation invalid: %v", err)
	}
	if res.Best.Alloc.Total() != 24 {
		t.Fatalf("budget not exhausted: %d", res.Best.Alloc.Total())
	}
	// The split must be one linear subsystem per bus.
	if len(res.Subsystems) != 2 {
		t.Fatalf("subsystems = %d", len(res.Subsystems))
	}
	for _, s := range res.Subsystems {
		if !s.Linear() {
			t.Fatalf("nonlinear subsystem after insertion: %v", s.Buses)
		}
	}
	if res.FinalSolution == nil {
		t.Fatal("no final solution")
	}
}

func TestRunImprovesLoadedSystem(t *testing.T) {
	// Tight budget on the two-bus system: CTMDP sizing + arbitration must
	// beat uniform sizing. Generous horizon keeps noise down.
	cfg := Config{
		Arch:       arch.TwoBusAMBA(),
		Budget:     24,
		Iterations: 4,
		Seeds:      []int64{1, 2, 3},
		Horizon:    1500,
		WarmUp:     100,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineLoss == 0 {
		t.Skip("baseline lost nothing; system not loaded enough to compare")
	}
	if res.Best.SimLoss >= res.BaselineLoss {
		t.Fatalf("no improvement: baseline %d, best %d", res.BaselineLoss, res.Best.SimLoss)
	}
	if res.Improvement() <= 0 {
		t.Fatalf("improvement = %v", res.Improvement())
	}
}

func TestRunFigure1HandlesDualHomedInertBuffer(t *testing.T) {
	// p2@a carries no traffic; the methodology must still produce a full
	// allocation with its one-unit floor.
	res, err := Run(fastCfg(arch.Figure1(), 40))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Best.Alloc["p2@a"]; got != 1 {
		t.Fatalf("inert buffer p2@a allocated %d, want the 1-unit floor", got)
	}
	if res.Best.Alloc.Total() != 40 {
		t.Fatalf("budget not exhausted: %d", res.Best.Alloc.Total())
	}
	// Bridge buffers must exist in the allocation (buffer insertion ran).
	for _, id := range []string{"br1:b>", "br1:f>", "br2:f>", "br2:g>"} {
		if res.Best.Alloc[id] < 1 {
			t.Fatalf("bridge buffer %s missing from allocation %v", id, res.Best.Alloc)
		}
	}
}

func TestRunDoesNotMutateCallerArch(t *testing.T) {
	a := arch.Figure1()
	if _, err := Run(fastCfg(a, 40)); err != nil {
		t.Fatal(err)
	}
	for _, br := range a.Bridges {
		if br.Buffered {
			t.Fatal("Run mutated the caller's architecture")
		}
	}
}

func TestRunSequentialAblation(t *testing.T) {
	cfg := fastCfg(arch.TwoBusAMBA(), 24)
	cfg.Sequential = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CapBinding {
		t.Fatal("sequential solve cannot have a binding joint cap")
	}
}

func TestRunTranslatorAblations(t *testing.T) {
	for _, tr := range []ctmdp.Translator{ctmdp.TranslateGreedyTail, ctmdp.TranslateQuantile, ctmdp.TranslateMeanOccupancy} {
		cfg := fastCfg(arch.TwoBusAMBA(), 24)
		cfg.Translator = tr
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("translator %d: %v", tr, err)
		}
		if res.Best.Alloc.Total() != 24 {
			t.Fatalf("translator %d: total %d", tr, res.Best.Alloc.Total())
		}
	}
}

func TestRunLossWeights(t *testing.T) {
	// Weighting one processor's losses heavily must not break the pipeline
	// (§3's "weighing of the loss at processors").
	cfg := fastCfg(arch.TwoBusAMBA(), 24)
	cfg.LossWeights = map[string]float64{"cpu": 10}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunDisabledArbiter(t *testing.T) {
	cfg := fastCfg(arch.TwoBusAMBA(), 24)
	cfg.DisableCTMDPArbiter = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunConfigValidation(t *testing.T) {
	base := fastCfg(arch.TwoBusAMBA(), 24)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil arch", func(c *Config) { c.Arch = nil }},
		{"zero budget", func(c *Config) { c.Budget = 0 }},
		{"negative iterations", func(c *Config) { c.Iterations = -1 }},
		{"negative horizon", func(c *Config) { c.Horizon = -5 }},
		{"warmup past horizon", func(c *Config) { c.WarmUp = 1e9 }},
		{"negative levels", func(c *Config) { c.Levels = -1 }},
		{"negative max clients", func(c *Config) { c.MaxClients = -1 }},
		{"bad eps", func(c *Config) { c.Eps = 2 }},
		{"bad cap factor", func(c *Config) { c.CapFactor = 3 }},
		{"bad boundary iters", func(c *Config) { c.BoundaryIters = -1 }},
		{"budget below floor", func(c *Config) { c.Budget = 2 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestIterationBookkeeping(t *testing.T) {
	res, err := Run(fastCfg(arch.TwoBusAMBA(), 24))
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range res.Iterations {
		if it.Index != i {
			t.Fatalf("iteration %d has index %d", i, it.Index)
		}
		if it.ModelLoss < 0 {
			t.Fatalf("negative model loss %v", it.ModelLoss)
		}
		if it.LossByProc == nil {
			t.Fatal("nil per-processor losses")
		}
		var sum int64
		for _, v := range it.LossByProc {
			sum += v
		}
		if sum != it.SimLoss {
			t.Fatalf("per-processor losses sum to %d, total is %d", sum, it.SimLoss)
		}
	}
	// Best is genuinely the minimum.
	for _, it := range res.Iterations {
		if it.SimLoss < res.Best.SimLoss {
			t.Fatalf("best (%d) is not minimal (%d)", res.Best.SimLoss, it.SimLoss)
		}
	}
}
