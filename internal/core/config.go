// Package core implements the paper's buffer-insertion and buffer-sizing
// methodology end to end:
//
//  1. insert buffers at every bridge (arch.InsertBridgeBuffers), which
//     splits the architecture into linear single-bus subsystems
//     (graph.Split);
//  2. model every subsystem as a CTMDP over quantised buffer levels
//     (ctmdp.NewModel), with bridge buffers appearing as clients of the
//     draining bus and as downstream-loss terms of the feeding bus;
//  3. solve all subsystem LPs in one joint program (ctmdp.SolveJoint),
//     linked by a total expected-occupancy cap; refresh the bridge boundary
//     scalars (arrival rates and full probabilities) by a damped fixed
//     point, keeping every inner solve linear — the paper's §2 device;
//  4. translate the optimal occupation measure into physical buffer lengths
//     (ctmdp.Translate, the K-switching step);
//  5. resimulate with the new lengths (internal/sim) and compare losses;
//     repeat for a fixed number of iterations (the paper uses 10) and keep
//     the best allocation.
package core

import (
	"fmt"

	"socbuf/internal/arch"
	"socbuf/internal/ctmdp"
	"socbuf/internal/sim"
	"socbuf/internal/solvecache"
	"socbuf/internal/trace"
	"socbuf/internal/uncertain"
)

// SourceFactory builds the per-flow arrival processes of one evaluation
// simulation. The methodology invokes it once per seed with the buffered
// clone it works on, and passes the result to sim.Config.Sources; flows
// without an entry keep the paper's Poisson model. Implementations must
// return fresh Source instances on every call: sources may carry mutable
// state (trace.OnOff does), and seeds simulate concurrently.
type SourceFactory func(a *arch.Architecture) (map[sim.FlowKey]trace.Source, error)

// Config parameterises a methodology run. Zero values select the defaults
// noted per field.
type Config struct {
	// Arch is the architecture to size. It is cloned; bridges are buffered
	// in the clone.
	Arch *arch.Architecture
	// Method selects the solver backend ("exact" | "analytic" | "hybrid";
	// empty means exact). Dispatch lives in internal/solver — Run/RunCtx
	// implement only the exact CTMDP/LP path and reject any other value, so
	// a request for the analytic backend can never silently run the LP.
	Method string
	// Budget is the total buffer space in units (the paper sweeps 160, 320,
	// 640 on the network-processor testbed).
	Budget int
	// Iterations of the size→solve→resimulate loop. Default 10.
	Iterations int
	// Seeds for the evaluation simulations; results are summed across
	// seeds. Default {1, 2, 3}.
	Seeds []int64
	// Horizon and WarmUp of each evaluation simulation. Defaults 2000, 100.
	Horizon float64
	WarmUp  float64
	// Levels is the quantisation depth of each client queue in the CTMDP
	// state space. Default 2 (levels 0..2).
	Levels int
	// MaxClients caps the number of clients per bus model; colder clients
	// are aggregated (ctmdp.AggregateClients). Default 4.
	MaxClients int
	// Eps is the occupancy-quantile tail mass for the translation. Default
	// 0.05.
	Eps float64
	// Translator selects the measure→capacity translation. Default
	// TranslateGreedyTail.
	Translator ctmdp.Translator
	// CapFactor scales the joint occupancy cap: cap = CapFactor × (free
	// solve's occupancy). Values in (0,1) make the budget link bind; 0
	// disables the cap. Infeasible caps are retried upward. Default 0.92.
	CapFactor float64
	// Sequential solves subsystem LPs separately instead of jointly — the
	// ablation of the paper's "solve all the equations in one go".
	Sequential bool
	// BoundaryIters is the number of bridge-boundary fixed-point updates
	// per methodology iteration. Default 3.
	BoundaryIters int
	// UseCTMDPArbiter drives the evaluation simulations with the optimal
	// CTMDP arbitration policy instead of longest-queue. Default true
	// (disable with DisableCTMDPArbiter).
	DisableCTMDPArbiter bool
	// Traffic optionally overrides the evaluation simulations' arrival
	// processes (bursty/OnOff robustness runs). The CTMDP models keep their
	// Poisson arrival assumption — the simulator is the ground truth that
	// measures how the sized system behaves under the alternative traffic.
	// Nil keeps Poisson flows everywhere.
	Traffic SourceFactory
	// LossWeights optionally weighs processors' losses in the objective
	// ("allowing some losses to be more important than the others", §3).
	// Keyed by processor ID; missing entries weigh 1.
	LossWeights map[string]float64
	// Workers bounds the goroutines used for the per-seed evaluation
	// simulations. 0 (or negative) means GOMAXPROCS; 1 forces serial
	// execution. Results are independent of the worker count.
	Workers int
	// Cache optionally reuses sub-model solutions across solves: every
	// SolveJoint call inside the methodology loop goes through it, so
	// identical per-bus sub-models (across methodology iterations, budget
	// points and scenarios — wherever the same cache is shared) are solved
	// once. Nil disables caching. The cache is safe to share across the
	// worker pool; results stay deterministic for any worker count, but may
	// differ from the uncached path at roundoff level (see the solvecache
	// package comment).
	Cache *solvecache.Cache
	// Uncertainty attaches a traffic-uncertainty spec for the robust
	// backend's chance-constrained sizing (internal/solver's "robust"
	// method). The exact path carries it untouched — only the robust
	// backend consumes it; nil means "spec defaults" there. Validated here
	// so a bad spec fails every entry point uniformly.
	Uncertainty *uncertain.Spec
	// RefineStationary recomputes each subsystem's stationary distribution
	// from its policy-induced chain after every LP solve (dense LU,
	// Gauss–Seidel or aggregation, auto-picked by reachable-state count),
	// tightening the LP's roundoff-level state probabilities before
	// translation. Off by default; the two paths agree to 1e-8.
	RefineStationary bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Method != "" && c.Method != "exact" {
		return c, fmt.Errorf("core: method %q is dispatched by internal/solver; core runs only the exact CTMDP/LP path", c.Method)
	}
	if c.Arch == nil {
		return c, fmt.Errorf("core: nil architecture")
	}
	if c.Budget <= 0 {
		return c, fmt.Errorf("core: budget %d must be positive", c.Budget)
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.Iterations < 0 {
		return c, fmt.Errorf("core: negative iterations %d", c.Iterations)
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Horizon == 0 {
		c.Horizon = 2000
	}
	if c.Horizon < 0 {
		return c, fmt.Errorf("core: negative horizon %v", c.Horizon)
	}
	if c.WarmUp == 0 {
		c.WarmUp = 100
	}
	if c.WarmUp < 0 || c.WarmUp >= c.Horizon {
		return c, fmt.Errorf("core: warm-up %v outside [0, horizon)", c.WarmUp)
	}
	if c.Levels == 0 {
		c.Levels = 2
	}
	if c.Levels < 1 {
		return c, fmt.Errorf("core: levels %d < 1", c.Levels)
	}
	if c.MaxClients == 0 {
		c.MaxClients = 4
	}
	if c.MaxClients < 1 {
		return c, fmt.Errorf("core: max clients %d < 1", c.MaxClients)
	}
	if c.Eps == 0 {
		c.Eps = 0.05
	}
	if c.Eps <= 0 || c.Eps >= 1 {
		return c, fmt.Errorf("core: eps %v outside (0,1)", c.Eps)
	}
	if c.CapFactor == 0 {
		c.CapFactor = 0.92
	}
	if c.CapFactor < 0 || c.CapFactor > 1 {
		return c, fmt.Errorf("core: cap factor %v outside [0,1]", c.CapFactor)
	}
	if c.BoundaryIters == 0 {
		c.BoundaryIters = 3
	}
	if c.BoundaryIters < 1 {
		return c, fmt.Errorf("core: boundary iterations %d < 1", c.BoundaryIters)
	}
	if c.Uncertainty != nil {
		if err := c.Uncertainty.Validate(); err != nil {
			return c, fmt.Errorf("core: %w", err)
		}
	}
	return c, nil
}
