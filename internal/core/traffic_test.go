package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/sim"
	"socbuf/internal/trace"
)

// onOffFactory builds fresh OnOff sources for every flow: ON rate is
// burst × the flow's average rate, with ON probability 1/burst so the
// long-run rate is unchanged.
func onOffFactory(burst float64) SourceFactory {
	return func(a *arch.Architecture) (map[sim.FlowKey]trace.Source, error) {
		out := make(map[sim.FlowKey]trace.Source, len(a.Flows))
		for _, f := range a.Flows {
			src, err := trace.NewOnOff(burst*f.Rate, 1/(burst-1), 1)
			if err != nil {
				return nil, err
			}
			out[sim.FlowKey{From: f.From, To: f.To}] = src
		}
		return out, nil
	}
}

func TestRunTrafficFactoryInvokedPerSeed(t *testing.T) {
	var calls atomic.Int64
	var mu sync.Mutex
	seen := map[trace.Source]bool{}

	cfg := fastCfg(arch.TwoBusAMBA(), 24)
	cfg.Iterations = 1
	cfg.Seeds = []int64{1, 2, 3}
	inner := onOffFactory(4)
	cfg.Traffic = func(a *arch.Architecture) (map[sim.FlowKey]trace.Source, error) {
		calls.Add(1)
		srcs, err := inner(a)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		for _, s := range srcs {
			if seen[s] {
				t.Error("source instance shared across factory calls")
			}
			seen[s] = true
		}
		return srcs, nil
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// One evaluate per seed for the baseline plus one per seed for the single
	// iteration: 2 evaluations × 3 seeds.
	if got := calls.Load(); got != 6 {
		t.Fatalf("factory invoked %d times, want 6 (2 evaluations × 3 seeds)", got)
	}
}

func TestRunOnOffTrafficDiffersFromPoissonAndIsDeterministic(t *testing.T) {
	base := fastCfg(arch.TwoBusAMBA(), 12)
	base.Iterations = 1

	poisson, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	bursty := base
	bursty.Traffic = onOffFactory(6)
	onoff1, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}
	onoff2, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}

	// Same architecture, same seeds: the bursty run must actually reach the
	// simulations (different loss) and stay seed-deterministic.
	if onoff1.BaselineLoss == poisson.BaselineLoss {
		t.Fatalf("OnOff baseline loss %d equals Poisson baseline loss — Sources not wired through",
			onoff1.BaselineLoss)
	}
	if onoff1.BaselineLoss != onoff2.BaselineLoss || onoff1.Best.SimLoss != onoff2.Best.SimLoss {
		t.Fatalf("OnOff runs not deterministic: baseline %d vs %d, best %d vs %d",
			onoff1.BaselineLoss, onoff2.BaselineLoss, onoff1.Best.SimLoss, onoff2.Best.SimLoss)
	}
}
