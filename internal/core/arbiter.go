package core

import (
	"fmt"
	"math/rand"

	"socbuf/internal/ctmdp"
	"socbuf/internal/sim"
)

// policyArbiter adapts a solved CTMDP policy to the simulator's Arbiter
// interface. It quantises the physical queue lengths to model levels, draws
// a grant from the policy's (possibly randomised) action distribution, and
// resolves aggregate clients to their longest non-empty member.
type policyArbiter struct {
	policy *ctmdp.Policy
	// viewsOf[c] lists the view indices belonging to model client c (one
	// entry for plain clients, several for aggregates).
	viewsOf [][]int
	levels  []int // scratch, len = #model clients
}

// newPolicyArbiter wires a model solution to the physical client list of a
// bus (the sorted buffer IDs the simulator will present views for).
func newPolicyArbiter(ms *ctmdp.ModelSolution, busClients []string) (*policyArbiter, error) {
	viewIdx := map[string]int{}
	for i, id := range busClients {
		viewIdx[id] = i
	}
	pa := &policyArbiter{
		policy:  ms.Policy,
		viewsOf: make([][]int, len(ms.Model.Clients)),
		levels:  make([]int, len(ms.Model.Clients)),
	}
	covered := 0
	for c, cl := range ms.Model.Clients {
		members := cl.Members
		if len(members) == 0 {
			members = []string{cl.BufferID}
		}
		for _, id := range members {
			vi, ok := viewIdx[id]
			if !ok {
				return nil, fmt.Errorf("core: model client %q not among bus clients %v", id, busClients)
			}
			pa.viewsOf[c] = append(pa.viewsOf[c], vi)
			covered++
		}
	}
	if covered != len(busClients) {
		return nil, fmt.Errorf("core: model covers %d of %d bus clients", covered, len(busClients))
	}
	return pa, nil
}

// Pick implements sim.Arbiter.
func (pa *policyArbiter) Pick(clients []sim.ClientView, rng *rand.Rand) int {
	model := pa.policy.Model
	anyWork := false
	for c := range pa.viewsOf {
		lenSum, capSum := 0, 0
		for _, vi := range pa.viewsOf[c] {
			lenSum += clients[vi].Len
			capSum += clients[vi].Cap
		}
		if lenSum > 0 {
			anyWork = true
		}
		L := model.Clients[c].Levels
		lvl := 0
		if capSum > 0 {
			lvl = lenSum * (L + 1) / capSum
			if lvl > L {
				lvl = L
			}
		}
		pa.levels[c] = lvl
	}
	if !anyWork {
		return -1
	}
	dist, err := pa.policy.Action(pa.levels)
	if err != nil {
		return pa.longest(clients) // defensive; cannot happen for wired sizes
	}
	// Sample the (possibly randomised) grant.
	u := rng.Float64()
	choice := -1
	var cum float64
	for c, p := range dist {
		cum += p
		if u < cum {
			choice = c
			break
		}
	}
	if choice == -1 {
		return pa.longest(clients)
	}
	// Resolve to the longest non-empty member of the chosen client.
	best, bestLen := -1, 0
	for _, vi := range pa.viewsOf[choice] {
		if clients[vi].Len > bestLen {
			best, bestLen = vi, clients[vi].Len
		}
	}
	if best == -1 {
		// Quantisation said "non-empty" but the members are empty, or the
		// policy picked a level-0 client after clamping; serve someone.
		return pa.longest(clients)
	}
	return best
}

// longest is the defensive fallback: grant the longest non-empty view.
func (pa *policyArbiter) longest(clients []sim.ClientView) int {
	best, bestLen := -1, 0
	for i, c := range clients {
		if c.Len > bestLen {
			best, bestLen = i, c.Len
		}
	}
	return best
}
