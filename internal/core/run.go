package core

import (
	"context"
	"errors"
	"fmt"

	"socbuf/internal/arch"
	"socbuf/internal/ctmdp"
	"socbuf/internal/graph"
	"socbuf/internal/parallel"
	"socbuf/internal/sim"
	"socbuf/internal/trace"
	"socbuf/internal/uncertain"
)

// Iteration records one pass of the size→solve→resimulate loop.
type Iteration struct {
	Index int
	// Alloc is the allocation produced by this iteration's translation.
	Alloc arch.Allocation
	// SimLoss is the total simulated loss (summed over seeds) under Alloc.
	SimLoss int64
	// LossByProc is the per-processor simulated loss (summed over seeds).
	LossByProc map[string]int64
	// ModelLoss is the LP objective (weighted model loss rate) — or, for
	// iterations produced by a non-exact solver backend, that backend's
	// closed-form loss-rate estimate.
	ModelLoss float64
	// Solution is the joint solution whose translation produced Alloc.
	// Callers can rebuild this iteration's arbitration with Arbiters. Nil for
	// iterations produced by the analytic backend (no CTMDP solve ran).
	Solution *ctmdp.JointSolution
	// CapBinding reports whether the joint occupancy cap bound.
	CapBinding bool
	// RandomisedStates counts states with randomised grants across all
	// subsystem policies (the K of K-switching).
	RandomisedStates int
}

// Result is the outcome of Run.
type Result struct {
	// Arch is the buffered clone the methodology worked on.
	Arch *arch.Architecture
	// Subsystems is the post-insertion split (all linear).
	Subsystems []graph.Subsystem
	// BaselineAlloc is the uniform pre-sizing allocation ("before" bars).
	BaselineAlloc arch.Allocation
	// BaselineLoss is the total simulated loss under BaselineAlloc, and
	// BaselineLossByProc its per-processor split.
	BaselineLoss       int64
	BaselineLossByProc map[string]int64
	// Iterations holds every loop pass, in order.
	Iterations []Iteration
	// Best points at the iteration whose allocation minimised simulated
	// loss (the paper keeps the resized system that won the comparison).
	Best *Iteration
	// FinalSolution is the joint solution of the last iteration (policies,
	// occupancy distributions, switching structure). Nil when the run was
	// produced by a backend that never solved a CTMDP (analytic).
	FinalSolution *ctmdp.JointSolution
	// Robust is the chance-constraint report of a robust-backend run (the
	// empirical yield, Wilson bound and budget the selection used). Nil for
	// every other backend.
	Robust *uncertain.Report
}

// Improvement returns 1 − best/baseline, the fractional loss reduction of
// the chosen allocation over uniform sizing.
func (r *Result) Improvement() float64 {
	if r.BaselineLoss == 0 {
		return 0
	}
	return 1 - float64(r.Best.SimLoss)/float64(r.BaselineLoss)
}

// Run executes the methodology.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// between methodology iterations and boundary solves, and threaded into the
// per-seed evaluation fan-out, so a cancelled run returns promptly (wrapping
// ctx.Err()) instead of finishing its remaining iterations. Work already in
// flight on worker goroutines completes before RunCtx returns — nothing is
// abandoned.
//
// RunCtx is the exact CTMDP/LP backend: it drives a Stepper for the
// configured number of iterations. Alternative backends (internal/solver's
// analytic and hybrid) drive the same Stepper with their own schedules.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	s, err := NewStepper(ctx, cfg)
	if err != nil {
		return nil, err
	}
	for it := 0; it < s.cfg.Iterations; it++ {
		if _, err := s.Step(ctx); err != nil {
			return nil, err
		}
	}
	return s.Result()
}

// Stepper drives the methodology one iteration at a time: the construction
// runs the shared prologue (buffer insertion, split, linearity check,
// uniform baseline evaluation), and each Step executes one exact
// solve→translate→resimulate pass. RunCtx is NewStepper plus
// Config.Iterations Steps; solver backends that schedule iterations
// differently (early-terminating hybrid refinement, the analytic backend's
// single closed-form pass via Record) reuse the identical machinery, which
// is what keeps the exact path's output byte-identical across entry points.
type Stepper struct {
	cfg   Config
	a     *arch.Architecture
	bnd   *boundary
	alloc arch.Allocation
	res   *Result
}

// NewStepper validates cfg and runs the methodology prologue: clone, bridge
// buffer insertion, split + linearity verification, and the uniform-baseline
// evaluation every backend's Improvement is measured against.
func NewStepper(ctx context.Context, cfg Config) (*Stepper, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := cfg.Arch.Clone()
	a.InsertBridgeBuffers() // the paper's buffer insertion for bridges
	if err := a.Validate(); err != nil {
		return nil, err
	}
	subs, err := graph.Split(a)
	if err != nil {
		return nil, err
	}
	if err := graph.VerifyPartition(a, subs); err != nil {
		return nil, err
	}
	for _, s := range subs {
		if !s.Linear() {
			return nil, fmt.Errorf("core: subsystem %v still nonlinear after buffer insertion", s.Buses)
		}
	}

	res := &Result{Arch: a, Subsystems: subs}

	// Baseline: uniform allocation, longest-queue arbitration.
	res.BaselineAlloc, err = arch.UniformAllocation(a, cfg.Budget)
	if err != nil {
		return nil, err
	}
	res.BaselineLoss, res.BaselineLossByProc, err = evaluate(ctx, a, res.BaselineAlloc, nil, cfg)
	if err != nil {
		return nil, err
	}

	bnd, err := initialBoundary(a)
	if err != nil {
		return nil, err
	}
	return &Stepper{
		cfg:   cfg,
		a:     a,
		bnd:   bnd,
		alloc: res.BaselineAlloc.Clone(),
		res:   res,
	}, nil
}

// Config returns the normalised configuration (defaults filled in).
func (s *Stepper) Config() Config { return s.cfg }

// Arch returns the buffered clone the methodology works on.
func (s *Stepper) Arch() *arch.Architecture { return s.a }

// Alloc returns the current allocation: the uniform baseline before the
// first Step, thereafter the latest iteration's sizing.
func (s *Stepper) Alloc() arch.Allocation { return s.alloc }

// Step runs one exact methodology iteration — bridge-boundary fixed point,
// joint CTMDP/LP solve, measure→capacity translation, and the simulated
// re-evaluation — and appends it to the result.
func (s *Stepper) Step(ctx context.Context) (*Iteration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	it := len(s.res.Iterations)
	cfg, a := s.cfg, s.a
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: iteration %d: %w", it, err)
	}
	sol, models, err := solveWithBoundary(ctx, a, s.alloc, s.bnd, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: iteration %d: %w", it, err)
	}
	_ = models

	demands, err := ctmdp.Demands(sol.PerModel, cfg.Eps)
	if err != nil {
		return nil, fmt.Errorf("core: iteration %d: %w", it, err)
	}
	// Buffers that carry no traffic (e.g. an attachment no flow uses)
	// never appear in any model; they keep the one-unit floor and the
	// rest of the budget goes to the demanded buffers.
	covered := map[string]bool{}
	for _, d := range demands {
		covered[d.BufferID] = true
	}
	var inert []string
	for _, id := range a.BufferIDs() {
		if !covered[id] {
			inert = append(inert, id)
		}
	}
	next, err := ctmdp.Translate(demands, cfg.Budget-len(inert), cfg.Translator)
	if err != nil {
		return nil, fmt.Errorf("core: iteration %d: %w", it, err)
	}
	for _, id := range inert {
		next[id] = 1
	}
	newAlloc := arch.Allocation(next)
	if err := newAlloc.Validate(a, cfg.Budget); err != nil {
		return nil, fmt.Errorf("core: iteration %d produced bad allocation: %w", it, err)
	}

	var makeArbiters func() (map[string]sim.Arbiter, error)
	if !cfg.DisableCTMDPArbiter {
		makeArbiters = func() (map[string]sim.Arbiter, error) {
			return buildArbiters(a, sol, newAlloc)
		}
		// Fail fast on wiring errors before fanning out the seeds.
		if _, err := makeArbiters(); err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it, err)
		}
	}
	loss, byProc, err := evaluate(ctx, a, newAlloc, makeArbiters, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: iteration %d: %w", it, err)
	}

	randomised := 0
	for _, ms := range sol.PerModel {
		randomised += len(ms.Policy.KSwitching().Randomised)
	}
	s.res.Iterations = append(s.res.Iterations, Iteration{
		Index:            it,
		Alloc:            newAlloc,
		SimLoss:          loss,
		LossByProc:       byProc,
		ModelLoss:        sol.TotalLossRate,
		Solution:         sol,
		CapBinding:       sol.CapBinding,
		RandomisedStates: randomised,
	})
	s.res.FinalSolution = sol
	s.alloc = newAlloc
	return &s.res.Iterations[len(s.res.Iterations)-1], nil
}

// Evaluate simulates alloc on the stepper's buffered architecture under the
// default longest-queue arbitration, summing losses across the configured
// seeds — the evaluation used for the baseline and by backends that size
// without a CTMDP policy (analytic).
func (s *Stepper) Evaluate(ctx context.Context, alloc arch.Allocation) (int64, map[string]int64, error) {
	return evaluate(ctx, s.a, alloc, nil, s.cfg)
}

// Record appends an externally produced iteration (a non-exact backend's
// sizing pass) to the result, stamping its index and advancing the current
// allocation. A non-nil Solution becomes the result's FinalSolution, exactly
// as an exact Step's would.
func (s *Stepper) Record(it Iteration) {
	it.Index = len(s.res.Iterations)
	s.res.Iterations = append(s.res.Iterations, it)
	if it.Solution != nil {
		s.res.FinalSolution = it.Solution
	}
	s.alloc = it.Alloc
}

// Result finalises the run: the iteration with the lowest simulated loss
// wins (ties keep the earliest, matching the paper's "keep the resized
// system that won the comparison"). At least one iteration must have run.
func (s *Stepper) Result() (*Result, error) {
	res := s.res
	if len(res.Iterations) == 0 {
		return nil, errors.New("core: zero iterations requested")
	}
	best := &res.Iterations[0]
	for i := range res.Iterations {
		if res.Iterations[i].SimLoss < best.SimLoss {
			best = &res.Iterations[i]
		}
	}
	res.Best = best
	return res, nil
}

// solveWithBoundary runs the bridge-boundary fixed point: free joint solves
// refresh the boundary scalars, then a final (optionally capped) solve
// produces the measure used for translation. The context is checked between
// boundary iterations — each individual LP solve runs to completion.
func solveWithBoundary(ctx context.Context, a *arch.Architecture, alloc arch.Allocation, bnd *boundary, cfg Config) (*ctmdp.JointSolution, []*ctmdp.Model, error) {
	var sol *ctmdp.JointSolution
	var models []*ctmdp.Model
	var err error
	for bi := 0; bi < cfg.BoundaryIters; bi++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		models, err = buildModels(a, alloc, bnd, cfg)
		if err != nil {
			return nil, nil, err
		}
		// cfg.Cache may be nil: SolveJoint on a nil cache is the cold solver.
		sol, err = cfg.Cache.SolveJoint(models, ctmdp.JointConfig{
			Sequential:       cfg.Sequential,
			RefineStationary: cfg.RefineStationary,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := bnd.update(a, sol.PerModel, 0.7); err != nil {
			return nil, nil, err
		}
	}
	if cfg.CapFactor > 0 && cfg.CapFactor < 1 && !cfg.Sequential {
		// Capped final solve with a retry ladder toward the free occupancy.
		free := sol.OccupancyUsed
		for _, f := range []float64{cfg.CapFactor, (cfg.CapFactor + 1) / 2, 0.97} {
			capped, err := cfg.Cache.SolveJoint(models, ctmdp.JointConfig{
				OccupancyCap:     free * f,
				RefineStationary: cfg.RefineStationary,
			})
			if err == nil {
				return capped, models, nil
			}
			if !errors.Is(err, ctmdp.ErrInfeasible) {
				return nil, nil, err
			}
		}
		// All caps infeasible: the free solution stands.
	}
	return sol, models, nil
}

// Arbiters builds fresh per-bus CTMDP arbiters for one simulation of alloc
// under the given joint solution (an Iteration's Solution). Arbiter
// instances carry per-run scratch state, so callers must build a new set
// for every concurrent simulation — exactly what the methodology's own
// evaluations do.
func Arbiters(a *arch.Architecture, sol *ctmdp.JointSolution, alloc arch.Allocation) (map[string]sim.Arbiter, error) {
	return buildArbiters(a, sol, alloc)
}

// buildArbiters wires each bus's solved policy to the simulator.
func buildArbiters(a *arch.Architecture, sol *ctmdp.JointSolution, alloc arch.Allocation) (map[string]sim.Arbiter, error) {
	clients, err := a.BusClients()
	if err != nil {
		return nil, err
	}
	out := map[string]sim.Arbiter{}
	for _, ms := range sol.PerModel {
		pa, err := newPolicyArbiter(ms, clients[ms.Model.Bus])
		if err != nil {
			return nil, err
		}
		out[ms.Model.Bus] = pa
	}
	return out, nil
}

// evaluate sums simulated losses across the configured seeds. Seeds run
// concurrently on cfg.Workers goroutines; each seed's simulation is fully
// determined by its seed, and the merge below walks the per-seed results in
// seed order, so the totals are identical for any worker count.
//
// makeArbiters (nil for the longest-queue default) is invoked once per seed:
// arbiter implementations carry per-run scratch state (policyArbiter's level
// buffer, RoundRobin's cursor), so concurrent simulations must not share
// instances. cfg.Traffic, when set, is likewise invoked once per seed so
// every simulation gets fresh Source instances (trace.OnOff is stateful).
func evaluate(ctx context.Context, a *arch.Architecture, alloc arch.Allocation, makeArbiters func() (map[string]sim.Arbiter, error), cfg Config) (int64, map[string]int64, error) {
	perSeed, err := parallel.MapCtx(ctx, len(cfg.Seeds), cfg.Workers, func(i int) (*sim.Results, error) {
		var arbiters map[string]sim.Arbiter
		if makeArbiters != nil {
			var err error
			arbiters, err = makeArbiters()
			if err != nil {
				return nil, err
			}
		}
		var sources map[sim.FlowKey]trace.Source
		if cfg.Traffic != nil {
			var err error
			sources, err = cfg.Traffic(a)
			if err != nil {
				return nil, err
			}
		}
		s, err := sim.New(sim.Config{
			Arch:     a,
			Alloc:    alloc,
			Horizon:  cfg.Horizon,
			WarmUp:   cfg.WarmUp,
			Seed:     cfg.Seeds[i],
			Arbiters: arbiters,
			Sources:  sources,
		})
		if err != nil {
			return nil, err
		}
		return s.Run()
	})
	if err != nil {
		return 0, nil, err
	}
	byProc := map[string]int64{}
	var total int64
	for _, r := range perSeed {
		for p, v := range r.Lost {
			byProc[p] += v
		}
		total += r.TotalLost()
	}
	return total, byProc, nil
}
