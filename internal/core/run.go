package core

import (
	"context"
	"errors"
	"fmt"

	"socbuf/internal/arch"
	"socbuf/internal/ctmdp"
	"socbuf/internal/graph"
	"socbuf/internal/parallel"
	"socbuf/internal/sim"
	"socbuf/internal/trace"
)

// Iteration records one pass of the size→solve→resimulate loop.
type Iteration struct {
	Index int
	// Alloc is the allocation produced by this iteration's translation.
	Alloc arch.Allocation
	// SimLoss is the total simulated loss (summed over seeds) under Alloc.
	SimLoss int64
	// LossByProc is the per-processor simulated loss (summed over seeds).
	LossByProc map[string]int64
	// ModelLoss is the LP objective (weighted model loss rate).
	ModelLoss float64
	// Solution is the joint solution whose translation produced Alloc.
	// Callers can rebuild this iteration's arbitration with Arbiters.
	Solution *ctmdp.JointSolution
	// CapBinding reports whether the joint occupancy cap bound.
	CapBinding bool
	// RandomisedStates counts states with randomised grants across all
	// subsystem policies (the K of K-switching).
	RandomisedStates int
}

// Result is the outcome of Run.
type Result struct {
	// Arch is the buffered clone the methodology worked on.
	Arch *arch.Architecture
	// Subsystems is the post-insertion split (all linear).
	Subsystems []graph.Subsystem
	// BaselineAlloc is the uniform pre-sizing allocation ("before" bars).
	BaselineAlloc arch.Allocation
	// BaselineLoss is the total simulated loss under BaselineAlloc, and
	// BaselineLossByProc its per-processor split.
	BaselineLoss       int64
	BaselineLossByProc map[string]int64
	// Iterations holds every loop pass, in order.
	Iterations []Iteration
	// Best points at the iteration whose allocation minimised simulated
	// loss (the paper keeps the resized system that won the comparison).
	Best *Iteration
	// FinalSolution is the joint solution of the last iteration (policies,
	// occupancy distributions, switching structure).
	FinalSolution *ctmdp.JointSolution
}

// Improvement returns 1 − best/baseline, the fractional loss reduction of
// the chosen allocation over uniform sizing.
func (r *Result) Improvement() float64 {
	if r.BaselineLoss == 0 {
		return 0
	}
	return 1 - float64(r.Best.SimLoss)/float64(r.BaselineLoss)
}

// Run executes the methodology.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// between methodology iterations and boundary solves, and threaded into the
// per-seed evaluation fan-out, so a cancelled run returns promptly (wrapping
// ctx.Err()) instead of finishing its remaining iterations. Work already in
// flight on worker goroutines completes before RunCtx returns — nothing is
// abandoned.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	a := cfg.Arch.Clone()
	a.InsertBridgeBuffers() // the paper's buffer insertion for bridges
	if err := a.Validate(); err != nil {
		return nil, err
	}
	subs, err := graph.Split(a)
	if err != nil {
		return nil, err
	}
	if err := graph.VerifyPartition(a, subs); err != nil {
		return nil, err
	}
	for _, s := range subs {
		if !s.Linear() {
			return nil, fmt.Errorf("core: subsystem %v still nonlinear after buffer insertion", s.Buses)
		}
	}

	res := &Result{Arch: a, Subsystems: subs}

	// Baseline: uniform allocation, longest-queue arbitration.
	res.BaselineAlloc, err = arch.UniformAllocation(a, cfg.Budget)
	if err != nil {
		return nil, err
	}
	res.BaselineLoss, res.BaselineLossByProc, err = evaluate(ctx, a, res.BaselineAlloc, nil, cfg)
	if err != nil {
		return nil, err
	}

	alloc := res.BaselineAlloc.Clone()
	bnd, err := initialBoundary(a)
	if err != nil {
		return nil, err
	}

	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it, err)
		}
		sol, models, err := solveWithBoundary(ctx, a, alloc, bnd, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it, err)
		}
		_ = models

		demands, err := ctmdp.Demands(sol.PerModel, cfg.Eps)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it, err)
		}
		// Buffers that carry no traffic (e.g. an attachment no flow uses)
		// never appear in any model; they keep the one-unit floor and the
		// rest of the budget goes to the demanded buffers.
		covered := map[string]bool{}
		for _, d := range demands {
			covered[d.BufferID] = true
		}
		var inert []string
		for _, id := range a.BufferIDs() {
			if !covered[id] {
				inert = append(inert, id)
			}
		}
		next, err := ctmdp.Translate(demands, cfg.Budget-len(inert), cfg.Translator)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it, err)
		}
		for _, id := range inert {
			next[id] = 1
		}
		newAlloc := arch.Allocation(next)
		if err := newAlloc.Validate(a, cfg.Budget); err != nil {
			return nil, fmt.Errorf("core: iteration %d produced bad allocation: %w", it, err)
		}

		var makeArbiters func() (map[string]sim.Arbiter, error)
		if !cfg.DisableCTMDPArbiter {
			makeArbiters = func() (map[string]sim.Arbiter, error) {
				return buildArbiters(a, sol, newAlloc)
			}
			// Fail fast on wiring errors before fanning out the seeds.
			if _, err := makeArbiters(); err != nil {
				return nil, fmt.Errorf("core: iteration %d: %w", it, err)
			}
		}
		loss, byProc, err := evaluate(ctx, a, newAlloc, makeArbiters, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it, err)
		}

		randomised := 0
		for _, ms := range sol.PerModel {
			randomised += len(ms.Policy.KSwitching().Randomised)
		}
		res.Iterations = append(res.Iterations, Iteration{
			Index:            it,
			Alloc:            newAlloc,
			SimLoss:          loss,
			LossByProc:       byProc,
			ModelLoss:        sol.TotalLossRate,
			Solution:         sol,
			CapBinding:       sol.CapBinding,
			RandomisedStates: randomised,
		})
		res.FinalSolution = sol
		alloc = newAlloc
	}

	if len(res.Iterations) == 0 {
		return nil, errors.New("core: zero iterations requested")
	}
	best := &res.Iterations[0]
	for i := range res.Iterations {
		if res.Iterations[i].SimLoss < best.SimLoss {
			best = &res.Iterations[i]
		}
	}
	res.Best = best
	return res, nil
}

// solveWithBoundary runs the bridge-boundary fixed point: free joint solves
// refresh the boundary scalars, then a final (optionally capped) solve
// produces the measure used for translation. The context is checked between
// boundary iterations — each individual LP solve runs to completion.
func solveWithBoundary(ctx context.Context, a *arch.Architecture, alloc arch.Allocation, bnd *boundary, cfg Config) (*ctmdp.JointSolution, []*ctmdp.Model, error) {
	var sol *ctmdp.JointSolution
	var models []*ctmdp.Model
	var err error
	for bi := 0; bi < cfg.BoundaryIters; bi++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		models, err = buildModels(a, alloc, bnd, cfg)
		if err != nil {
			return nil, nil, err
		}
		// cfg.Cache may be nil: SolveJoint on a nil cache is the cold solver.
		sol, err = cfg.Cache.SolveJoint(models, ctmdp.JointConfig{
			Sequential:       cfg.Sequential,
			RefineStationary: cfg.RefineStationary,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := bnd.update(a, sol.PerModel, 0.7); err != nil {
			return nil, nil, err
		}
	}
	if cfg.CapFactor > 0 && cfg.CapFactor < 1 && !cfg.Sequential {
		// Capped final solve with a retry ladder toward the free occupancy.
		free := sol.OccupancyUsed
		for _, f := range []float64{cfg.CapFactor, (cfg.CapFactor + 1) / 2, 0.97} {
			capped, err := cfg.Cache.SolveJoint(models, ctmdp.JointConfig{
				OccupancyCap:     free * f,
				RefineStationary: cfg.RefineStationary,
			})
			if err == nil {
				return capped, models, nil
			}
			if !errors.Is(err, ctmdp.ErrInfeasible) {
				return nil, nil, err
			}
		}
		// All caps infeasible: the free solution stands.
	}
	return sol, models, nil
}

// Arbiters builds fresh per-bus CTMDP arbiters for one simulation of alloc
// under the given joint solution (an Iteration's Solution). Arbiter
// instances carry per-run scratch state, so callers must build a new set
// for every concurrent simulation — exactly what the methodology's own
// evaluations do.
func Arbiters(a *arch.Architecture, sol *ctmdp.JointSolution, alloc arch.Allocation) (map[string]sim.Arbiter, error) {
	return buildArbiters(a, sol, alloc)
}

// buildArbiters wires each bus's solved policy to the simulator.
func buildArbiters(a *arch.Architecture, sol *ctmdp.JointSolution, alloc arch.Allocation) (map[string]sim.Arbiter, error) {
	clients, err := a.BusClients()
	if err != nil {
		return nil, err
	}
	out := map[string]sim.Arbiter{}
	for _, ms := range sol.PerModel {
		pa, err := newPolicyArbiter(ms, clients[ms.Model.Bus])
		if err != nil {
			return nil, err
		}
		out[ms.Model.Bus] = pa
	}
	return out, nil
}

// evaluate sums simulated losses across the configured seeds. Seeds run
// concurrently on cfg.Workers goroutines; each seed's simulation is fully
// determined by its seed, and the merge below walks the per-seed results in
// seed order, so the totals are identical for any worker count.
//
// makeArbiters (nil for the longest-queue default) is invoked once per seed:
// arbiter implementations carry per-run scratch state (policyArbiter's level
// buffer, RoundRobin's cursor), so concurrent simulations must not share
// instances. cfg.Traffic, when set, is likewise invoked once per seed so
// every simulation gets fresh Source instances (trace.OnOff is stateful).
func evaluate(ctx context.Context, a *arch.Architecture, alloc arch.Allocation, makeArbiters func() (map[string]sim.Arbiter, error), cfg Config) (int64, map[string]int64, error) {
	perSeed, err := parallel.MapCtx(ctx, len(cfg.Seeds), cfg.Workers, func(i int) (*sim.Results, error) {
		var arbiters map[string]sim.Arbiter
		if makeArbiters != nil {
			var err error
			arbiters, err = makeArbiters()
			if err != nil {
				return nil, err
			}
		}
		var sources map[sim.FlowKey]trace.Source
		if cfg.Traffic != nil {
			var err error
			sources, err = cfg.Traffic(a)
			if err != nil {
				return nil, err
			}
		}
		s, err := sim.New(sim.Config{
			Arch:     a,
			Alloc:    alloc,
			Horizon:  cfg.Horizon,
			WarmUp:   cfg.WarmUp,
			Seed:     cfg.Seeds[i],
			Arbiters: arbiters,
			Sources:  sources,
		})
		if err != nil {
			return nil, err
		}
		return s.Run()
	})
	if err != nil {
		return 0, nil, err
	}
	byProc := map[string]int64{}
	var total int64
	for _, r := range perSeed {
		for p, v := range r.Lost {
			byProc[p] += v
		}
		total += r.TotalLost()
	}
	return total, byProc, nil
}
