// Package cliutil holds the flag wiring shared by the CLIs (cmd/socbuf,
// cmd/experiments, cmd/socsim, cmd/socbufd). Before this package existed,
// the -parallel/-cache/-cache-stats group was copied per CLI and had
// drifted — only one binary validated the worker count. The CLIs stay thin:
// they parse flags with these helpers and hand typed requests to
// internal/engine.
package cliutil

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"socbuf/internal/engine"
	"socbuf/internal/solver"
	"socbuf/internal/uncertain"
)

// CommonFlags is the flag group every solve-capable CLI shares.
type CommonFlags struct {
	// Parallel bounds the worker pool (0 = GOMAXPROCS, 1 = serial).
	Parallel int
	// Cache shares one solve cache across everything the invocation runs.
	Cache bool
	// CacheStats prints the cache counters at the end (implies Cache).
	CacheStats bool
	// JSON selects machine-readable output for sweep results.
	JSON bool
}

// AddCommonFlags registers the shared -parallel/-cache/-cache-stats/-json
// group on fs (the default CommandLine set when fs is nil).
func AddCommonFlags(fs *flag.FlagSet) *CommonFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &CommonFlags{}
	fs.IntVar(&c.Parallel, "parallel", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&c.Cache, "cache", false, "share a solve cache across all solves (sweeps prewarm it)")
	fs.BoolVar(&c.CacheStats, "cache-stats", false, "print solve-cache hit/miss/warm-start counters (implies -cache)")
	fs.BoolVar(&c.JSON, "json", false, "emit sweep results as JSON instead of a table")
	return c
}

// Validate normalises the group after parsing: a negative worker count is
// rejected uniformly (previously only one CLI checked it), and -cache-stats
// implies -cache.
func (c *CommonFlags) Validate() error {
	if c.Parallel < 0 {
		return fmt.Errorf("cliutil: -parallel %d is negative; use 0 for GOMAXPROCS or a count >= 1", c.Parallel)
	}
	if c.CacheStats {
		c.Cache = true
	}
	return nil
}

// UseCache reports whether the invocation asked for the solve cache.
func (c *CommonFlags) UseCache() bool { return c.Cache || c.CacheStats }

// SetFlags returns the names of the flags the user passed explicitly on fs
// (nil = the default CommandLine set) — the CLIs' "explicit flags override
// scenario values" device.
func SetFlags(fs *flag.FlagSet) map[string]bool {
	if fs == nil {
		fs = flag.CommandLine
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// Fatal prints err prefixed with the program name and exits — the shared
// CLI error epilogue. Usage-class failures (engine.ErrInvalidRequest:
// unknown preset/scenario/policy, conflicting fields…) exit 2, matching the
// flag package's usage-error convention and the pre-engine CLIs' unknown
// -arch/-policy paths; runtime failures exit 1.
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	if errors.Is(err, engine.ErrInvalidRequest) {
		os.Exit(2)
	}
	os.Exit(1)
}

// StatsWriter keeps stdout machine-readable under -json: side tables (cache
// stats) move to stderr; table mode keeps them on stdout.
func (c *CommonFlags) StatsWriter() io.Writer {
	if c.JSON {
		return os.Stderr
	}
	return os.Stdout
}

// PrintJSON writes v to stdout as one indented JSON document, exiting
// through Fatal on failure — the CLIs' shared -json printer.
func PrintJSON(prog string, v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		Fatal(prog, err)
	}
}

// PresetNames documents the architecture presets the engine resolves, for
// flag help strings.
const PresetNames = "figure1 | twobus | netproc"

// AddMethodFlag registers the shared -method flag (solver backend
// selection) on fs (nil = the default CommandLine set). All three CLIs use
// it, so the help text — and, through the engine's validation, the
// unknown-method error — is identical everywhere. The empty default defers
// to scenario-pinned methods and the engine's exact fallback.
func AddMethodFlag(fs *flag.FlagSet) *string {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.String("method", "", "solver backend: "+solver.MethodList()+" (default exact; see README \"Choosing a solver method\")")
}

// RobustFlags is the -samples/-confidence/-rate-sigma/-uncertainty-seed
// group tuning the robust backend's Monte-Carlo chance constraint.
type RobustFlags struct {
	Samples    int
	Confidence float64
	RateSigma  float64
	Seed       int64
}

// AddRobustFlags registers the robust-backend tuning group on fs (nil = the
// default CommandLine set). Zero/unset values inherit the spec defaults
// (internal/uncertain), so the group is inert unless -method robust runs.
func AddRobustFlags(fs *flag.FlagSet) *RobustFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	r := &RobustFlags{}
	fs.IntVar(&r.Samples, "samples", 0, "robust backend: Monte-Carlo perturbation samples (0 = default 64)")
	fs.Float64Var(&r.Confidence, "confidence", 0, "robust backend: chance-constraint confidence in [0,1) (0 = default 0.95)")
	fs.Float64Var(&r.RateSigma, "rate-sigma", 0, "robust backend: lognormal rate perturbation sigma (0 = default 0.2)")
	fs.Int64Var(&r.Seed, "uncertainty-seed", 0, "robust backend: sampler seed (0 = default 1)")
	return r
}

// Spec assembles the uncertainty spec the flag group describes — nil when
// no flag in the group was set, so scenario-attached specs are not
// clobbered by defaults.
func (r *RobustFlags) Spec(set map[string]bool) *uncertain.Spec {
	if !set["samples"] && !set["confidence"] && !set["rate-sigma"] && !set["uncertainty-seed"] {
		return nil
	}
	return &uncertain.Spec{
		Samples:    r.Samples,
		Confidence: r.Confidence,
		RateSigma:  r.RateSigma,
		Seed:       r.Seed,
	}
}
