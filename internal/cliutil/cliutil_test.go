package cliutil

import (
	"flag"
	"strings"
	"testing"
)

func TestCommonFlagsValidate(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := AddCommonFlags(fs)
	if err := fs.Parse([]string{"-parallel", "-3"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Fatal("negative worker count accepted")
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	c = AddCommonFlags(fs)
	if err := fs.Parse([]string{"-cache-stats"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Cache || !c.UseCache() {
		t.Fatal("-cache-stats did not imply -cache")
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	c = AddCommonFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if c.UseCache() || c.JSON {
		t.Fatal("defaults enabled opt-in features")
	}
}

func TestSetFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Int("budget", 160, "")
	fs.Int("iters", 10, "")
	if err := fs.Parse([]string{"-budget", "200"}); err != nil {
		t.Fatal(err)
	}
	set := SetFlags(fs)
	if !set["budget"] || set["iters"] {
		t.Fatalf("set flags = %v", set)
	}
}

func TestAddMethodFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	m := AddMethodFlag(fs)
	if err := fs.Parse([]string{"-method", "analytic"}); err != nil {
		t.Fatal(err)
	}
	if *m != "analytic" {
		t.Fatalf("method = %q, want analytic", *m)
	}
	// The help text must enumerate the registry, so all three CLIs (and
	// their docs) stay in sync with internal/solver automatically.
	f := fs.Lookup("method")
	if f == nil || !strings.Contains(f.Usage, "analytic | exact | hybrid | robust") {
		t.Fatalf("method flag usage out of sync with the solver registry: %+v", f)
	}
	if f.DefValue != "" {
		t.Fatalf("method default %q, want empty (exact fallback happens at dispatch)", f.DefValue)
	}
}

// TestRobustFlagsSpec pins the nil-when-unset contract: the group must not
// clobber scenario-attached uncertainty specs with zero defaults, but any
// single set flag materialises the whole spec (zeros inherit the uncertain
// package defaults downstream).
func TestRobustFlagsSpec(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	r := AddRobustFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if spec := r.Spec(SetFlags(fs)); spec != nil {
		t.Fatalf("unset robust group produced a spec: %+v", spec)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	r = AddRobustFlags(fs)
	if err := fs.Parse([]string{"-samples", "32"}); err != nil {
		t.Fatal(err)
	}
	spec := r.Spec(SetFlags(fs))
	if spec == nil || spec.Samples != 32 {
		t.Fatalf("spec = %+v, want samples 32", spec)
	}
	if spec.Confidence != 0 || spec.RateSigma != 0 || spec.Seed != 0 {
		t.Fatalf("untouched fields must stay zero (defaults applied downstream): %+v", spec)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	r = AddRobustFlags(fs)
	args := []string{"-samples", "16", "-confidence", "0.9", "-rate-sigma", "0.3", "-uncertainty-seed", "7"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	spec = r.Spec(SetFlags(fs))
	if spec == nil || spec.Samples != 16 || spec.Confidence != 0.9 || spec.RateSigma != 0.3 || spec.Seed != 7 {
		t.Fatalf("full group spec = %+v", spec)
	}
}

// TestRobustFlagsDefaults pins that every flag in the group defaults to the
// inert zero — the group must be a no-op unless -method robust runs.
func TestRobustFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	AddRobustFlags(fs)
	for _, name := range []string{"samples", "confidence", "rate-sigma", "uncertainty-seed"} {
		f := fs.Lookup(name)
		if f == nil {
			t.Fatalf("flag -%s not registered", name)
		}
		if f.DefValue != "0" {
			t.Errorf("-%s default %q, want 0 (inherit the spec default)", name, f.DefValue)
		}
	}
}

// TestCommonFlagsNilFlagSet pins the nil-fs convenience path onto the
// default CommandLine set without parsing it (parsing the real CommandLine
// inside a test would race with the test framework's own flags).
func TestCommonFlagsNilFlagSet(t *testing.T) {
	defer func(old *flag.FlagSet) { flag.CommandLine = old }(flag.CommandLine)
	flag.CommandLine = flag.NewFlagSet("cmdline", flag.ContinueOnError)
	c := AddCommonFlags(nil)
	m := AddMethodFlag(nil)
	r := AddRobustFlags(nil)
	if c == nil || m == nil || r == nil {
		t.Fatal("nil flag set must register on flag.CommandLine")
	}
	if flag.CommandLine.Lookup("parallel") == nil || flag.CommandLine.Lookup("method") == nil || flag.CommandLine.Lookup("samples") == nil {
		t.Fatal("groups not registered on the default set")
	}
	if set := SetFlags(nil); len(set) != 0 {
		t.Fatalf("nothing parsed, but SetFlags = %v", set)
	}
}
