package cliutil

import (
	"flag"
	"strings"
	"testing"
)

func TestCommonFlagsValidate(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := AddCommonFlags(fs)
	if err := fs.Parse([]string{"-parallel", "-3"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Fatal("negative worker count accepted")
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	c = AddCommonFlags(fs)
	if err := fs.Parse([]string{"-cache-stats"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Cache || !c.UseCache() {
		t.Fatal("-cache-stats did not imply -cache")
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	c = AddCommonFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if c.UseCache() || c.JSON {
		t.Fatal("defaults enabled opt-in features")
	}
}

func TestSetFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Int("budget", 160, "")
	fs.Int("iters", 10, "")
	if err := fs.Parse([]string{"-budget", "200"}); err != nil {
		t.Fatal(err)
	}
	set := SetFlags(fs)
	if !set["budget"] || set["iters"] {
		t.Fatalf("set flags = %v", set)
	}
}

func TestAddMethodFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	m := AddMethodFlag(fs)
	if err := fs.Parse([]string{"-method", "analytic"}); err != nil {
		t.Fatal(err)
	}
	if *m != "analytic" {
		t.Fatalf("method = %q, want analytic", *m)
	}
	// The help text must enumerate the registry, so all three CLIs (and
	// their docs) stay in sync with internal/solver automatically.
	f := fs.Lookup("method")
	if f == nil || !strings.Contains(f.Usage, "analytic | exact | hybrid | robust") {
		t.Fatalf("method flag usage out of sync with the solver registry: %+v", f)
	}
	if f.DefValue != "" {
		t.Fatalf("method default %q, want empty (exact fallback happens at dispatch)", f.DefValue)
	}
}
