// Package policy collects the buffer-sizing policies the paper compares:
// the constant (uniform) baseline, the traffic-proportional division the
// introduction dismisses, the CTMDP methodology (internal/core), and the
// timeout drop policy of Figure 3's third bar.
package policy

import (
	"errors"
	"fmt"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/sim"
)

// Sizer produces a buffer allocation for an architecture and budget.
type Sizer interface {
	Name() string
	Allocate(a *arch.Architecture, budget int) (arch.Allocation, error)
}

// Uniform is the paper's "constant buffer sizing policy": equal division.
type Uniform struct{}

// Name implements Sizer.
func (Uniform) Name() string { return "constant" }

// Allocate implements Sizer.
func (Uniform) Allocate(a *arch.Architecture, budget int) (arch.Allocation, error) {
	return arch.UniformAllocation(a, budget)
}

// Proportional divides the budget by traffic ratios — the "simple division
// of the space depending on traffic ratios" that §1 contrasts with the
// CTMDP optimum.
type Proportional struct{}

// Name implements Sizer.
func (Proportional) Name() string { return "proportional" }

// Allocate implements Sizer.
func (Proportional) Allocate(a *arch.Architecture, budget int) (arch.Allocation, error) {
	return arch.ProportionalAllocation(a, budget)
}

// CTMDP runs the full methodology and returns its best allocation. Fields
// mirror the core.Config knobs that matter for sizing quality.
type CTMDP struct {
	Iterations int
	Seeds      []int64
	Horizon    float64
	WarmUp     float64
	// LastResult holds the full methodology result of the most recent
	// Allocate call, for callers that need the policies too.
	LastResult *core.Result
}

// Name implements Sizer.
func (*CTMDP) Name() string { return "ctmdp" }

// Allocate implements Sizer.
func (c *CTMDP) Allocate(a *arch.Architecture, budget int) (arch.Allocation, error) {
	res, err := core.Run(core.Config{
		Arch:       a,
		Budget:     budget,
		Iterations: c.Iterations,
		Seeds:      c.Seeds,
		Horizon:    c.Horizon,
		WarmUp:     c.WarmUp,
	})
	if err != nil {
		return nil, err
	}
	c.LastResult = res
	return res.Best.Alloc, nil
}

// TimeoutThreshold derives the paper's timeout-policy threshold — "the
// average time spent by a request in a buffer" — from a calibration
// simulation via Little's law: total mean occupancy over all buffers divided
// by the delivered throughput.
func TimeoutThreshold(r *sim.Results) (float64, error) {
	if r == nil {
		return 0, errors.New("policy: nil results")
	}
	var occ float64
	for _, m := range r.MeanOccupancy {
		occ += m
	}
	window := r.Horizon
	delivered := r.TotalDelivered()
	if delivered == 0 || window <= 0 {
		return 0, fmt.Errorf("policy: cannot derive timeout (delivered=%d, horizon=%v)", delivered, window)
	}
	throughput := float64(delivered) / window
	w := occ / throughput
	if w <= 0 {
		return 0, fmt.Errorf("policy: non-positive residence estimate %v", w)
	}
	return w, nil
}
