package policy

import (
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/sim"
)

func TestSizersProduceValidAllocations(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	sizers := []Sizer{
		Uniform{},
		Proportional{},
		&CTMDP{Iterations: 2, Seeds: []int64{1}, Horizon: 600, WarmUp: 50},
	}
	for _, s := range sizers {
		al, err := s.Allocate(a, 24)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if al.Total() != 24 {
			t.Fatalf("%s: total %d", s.Name(), al.Total())
		}
		if err := al.Validate(a, 24); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestSizerNames(t *testing.T) {
	if (Uniform{}).Name() != "constant" || (Proportional{}).Name() != "proportional" || (&CTMDP{}).Name() != "ctmdp" {
		t.Fatal("sizer names changed; experiment labels depend on them")
	}
}

func TestCTMDPKeepsLastResult(t *testing.T) {
	c := &CTMDP{Iterations: 2, Seeds: []int64{1}, Horizon: 600, WarmUp: 50}
	a := arch.TwoBusAMBA()
	if _, err := c.Allocate(a, 24); err != nil {
		t.Fatal(err)
	}
	if c.LastResult == nil || c.LastResult.Best == nil {
		t.Fatal("LastResult not retained")
	}
}

func TestCTMDPWorksOnUnbufferedInput(t *testing.T) {
	// core.Run buffers a clone itself; the sizer must accept raw presets.
	c := &CTMDP{Iterations: 1, Seeds: []int64{1}, Horizon: 400, WarmUp: 50}
	if _, err := c.Allocate(arch.Figure1(), 40); err != nil {
		t.Fatal(err)
	}
}

func TestTimeoutThreshold(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	al, err := arch.UniformAllocation(a, 24)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Config{Arch: a, Alloc: al, Horizon: 2000, WarmUp: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	w, err := TimeoutThreshold(r)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w > 100 {
		t.Fatalf("implausible residence threshold %v", w)
	}
}

func TestTimeoutThresholdErrors(t *testing.T) {
	if _, err := TimeoutThreshold(nil); err == nil {
		t.Fatal("nil results accepted")
	}
	empty := &sim.Results{Horizon: 10, MeanOccupancy: map[string]float64{}, Delivered: map[string]int64{}}
	if _, err := TimeoutThreshold(empty); err == nil {
		t.Fatal("zero-delivery results accepted")
	}
}
