// Package solver is the pluggable backend seam of the buffer-sizing
// pipeline: every entry point (internal/engine, the experiments sweep
// runners, and through them the CLIs and the socbufd HTTP service) resolves
// a method name to a Solver and calls Run, instead of hard-wiring the exact
// CTMDP/LP path. Four backends register at init:
//
//   - "exact" — the paper's CTMDP/LP methodology (core.RunCtx), unchanged:
//     solver.Run with the exact method is byte-identical to calling core.Run
//     directly.
//   - "analytic" — closed-form M/M/1/K blocking (internal/queueing) plus a
//     marginal-allocation greedy over the budget; no LP is ever assembled.
//     Orders of magnitude cheaper per point, with loss estimates that rank
//     candidate sizings almost identically to the exact model.
//   - "hybrid" — analytic screening of the allocation space followed by
//     exact CTMDP refinement of the screened candidates, with a gated
//     agreement check that falls back to the full exact loop whenever the
//     screen and the LP disagree.
//   - "robust" — chance-constrained Monte-Carlo sizing under traffic
//     uncertainty (internal/uncertain): N correlated rate perturbations,
//     analytic yield scoring of candidate sizings on identical sample
//     paths, and a Wilson-guarded cheapest-first selection.
//
// All backends speak core.Config → *core.Result, so everything downstream
// (reports, sweeps, the service's JSON shapes) is backend-agnostic. The
// solve cache qualifies its fingerprints by backend
// (internal/solvecache) — an analytic solution can never rebind as an exact
// one. DESIGN.md §6 records the full backend contract.
package solver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"socbuf/internal/core"
)

// Canonical method names.
const (
	MethodExact    = "exact"
	MethodAnalytic = "analytic"
	MethodHybrid   = "hybrid"
	MethodRobust   = "robust"
)

// ErrUnknownMethod tags method-resolution failures. Every layer surfaces it
// uniformly: the CLIs exit 2 (usage error), socbufd answers 400 — both via
// engine.ErrInvalidRequest wrapping.
var ErrUnknownMethod = errors.New("unknown method")

// Solver is one sizing backend: a pure function from a methodology
// configuration to a result. Implementations must be safe for concurrent
// use (sweeps fan points across workers) and must honour ctx cancellation
// between major phases.
type Solver interface {
	// Name returns the registry method name.
	Name() string
	// Run executes the methodology with this backend. cfg.Method has been
	// consumed by dispatch and arrives empty.
	Run(ctx context.Context, cfg core.Config) (*core.Result, error)
}

var registry = struct {
	sync.Mutex
	m map[string]Solver
}{m: map[string]Solver{}}

// Register adds a backend to the registry. Duplicate names are rejected —
// a backend's identity is load-bearing (cache keys, stats attribution).
func Register(s Solver) error {
	if s == nil || s.Name() == "" {
		return errors.New("solver: nil or unnamed backend")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[s.Name()]; dup {
		return fmt.Errorf("solver: %q already registered", s.Name())
	}
	registry.m[s.Name()] = s
	return nil
}

func mustRegister(s Solver) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Methods returns every registered method name, sorted.
func Methods() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MethodList renders the registry for flag help strings and error messages
// ("analytic | exact | hybrid | robust").
func MethodList() string { return strings.Join(Methods(), " | ") }

// Canonical normalises a method name for reporting and stats attribution:
// the empty selection IS the exact backend.
func Canonical(name string) string {
	if name == "" {
		return MethodExact
	}
	return name
}

// Resolve maps a method name to its backend. The empty name is the exact
// default. Unknown names fail with the repo-wide uniform message (wrapping
// ErrUnknownMethod), which every CLI and the HTTP 400 path surface
// verbatim.
func Resolve(name string) (Solver, error) {
	if name == "" {
		name = MethodExact
	}
	registry.Lock()
	s := registry.m[name]
	registry.Unlock()
	if s == nil {
		return nil, fmt.Errorf("solver: %w %q (valid methods: %s)", ErrUnknownMethod, name, MethodList())
	}
	return s, nil
}

// Run dispatches cfg to the backend named by cfg.Method (empty = exact) —
// the single funnel every sweep point and service request goes through.
func Run(ctx context.Context, cfg core.Config) (*core.Result, error) {
	s, err := Resolve(cfg.Method)
	if err != nil {
		return nil, err
	}
	cfg.Method = "" // consumed by dispatch; core rejects foreign methods
	return s.Run(ctx, cfg)
}
