//go:build !race

package solver_test

// raceEnabled is false without the race detector: the acceptance gates run
// over the whole scenario registry (see race_on_test.go).
const raceEnabled = false
