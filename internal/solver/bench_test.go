package solver_test

import (
	"testing"
	"time"

	"socbuf/internal/arch"
	"socbuf/internal/experiments"
	"socbuf/internal/scenario"
	"socbuf/internal/solver"
)

// backendSweep runs the iters-iteration, 8-point chain6 budget sweep — the repo's standard
// sweep workload (BenchmarkSweepColdVsCached uses the same points) — with
// every point on one solver backend. Serial workers, no cache: the ratio
// between backends measures solver cost alone.
func backendSweep(tb testing.TB, method string, iters int) {
	sc, ok := scenario.Get("chain6")
	if !ok {
		tb.Fatal("scenario chain6 not registered")
	}
	newArch := func() *arch.Architecture {
		a, err := sc.Build()
		if err != nil {
			tb.Fatal(err)
		}
		return a
	}
	budgets := make([]int, 8)
	for i := range budgets {
		budgets[i] = sc.Budget + 8*i
	}
	opt := experiments.Options{
		Iterations: iters, Seeds: []int64{1}, Horizon: 300, WarmUp: 50,
		Workers: 1, Method: method,
	}
	res, err := experiments.BudgetSweep(newArch, budgets, opt)
	if err != nil {
		tb.Fatal(err)
	}
	if len(res.Budgets) != len(budgets) {
		tb.Fatalf("sweep lost points: %d/%d", len(res.Budgets), len(budgets))
	}
}

// BenchmarkBackendSweep is the backend speed/accuracy measurement
// PERFORMANCE.md records: the same 8-point chain6 budget sweep under each
// registered solver backend, at 8 methodology iterations (near the
// paper's 10 — deep enough that hybrid's cycle cut fires). The acceptance
// target is analytic ≥ 10× faster than exact; hybrid lands in between (it
// runs exact iterations, just fewer of them).
func BenchmarkBackendSweep(b *testing.B) {
	for _, method := range solver.Methods() {
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				backendSweep(b, method, 8)
			}
		})
	}
}

// TestAnalyticBackendSpeed is the machine-enforced floor under the
// benchmark's ≥10× acceptance target: the analytic sweep must beat the
// exact sweep by at least 4× (wide headroom for CI noise and -race
// overhead; the measured ratio is far higher — see PERFORMANCE.md).
func TestAnalyticBackendSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race detector skews the timing ratio and blows the package time budget; the gate runs in the plain tier")
	}
	start := time.Now()
	backendSweep(t, solver.MethodExact, 3)
	exact := time.Since(start)

	start = time.Now()
	backendSweep(t, solver.MethodAnalytic, 3)
	analytic := time.Since(start)

	ratio := float64(exact) / float64(analytic)
	t.Logf("exact %v, analytic %v (%.1fx)", exact, analytic, ratio)
	if ratio < 4 {
		t.Errorf("analytic sweep only %.2fx faster than exact (acceptance target 10x, gate 4x)", ratio)
	}
}
