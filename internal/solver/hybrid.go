package solver

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"socbuf/internal/arch"
	"socbuf/internal/core"
)

// hybridAgreeFactor gates the agreement check: the analytic price of a
// candidate sizing must lie within this factor of the LP's weighted loss
// rate (both ways) for the screen to be trusted. The closed-form model
// quantises nothing and ignores contention correlations, so a loose factor
// is expected even when its ranking is good; disagreement beyond it means
// the screen does not describe this instance and hybrid must not cut the
// exact refinement short on its word.
const hybridAgreeFactor = 5.0

// hybrid is the screen-then-refine backend. The analytic model screens the
// allocation space — it prices any candidate sizing in closed form from
// the converged boundary estimates — while the exact CTMDP/LP loop refines
// candidates one iteration at a time, on the identical core.Stepper
// machinery the exact backend drives (same uniform start, bit-for-bit the
// same per-iteration results). Hybrid's contribution is the stopping rule:
//
//   - cycle detection: the methodology's (allocation, boundary) trajectory
//     settles into a short cycle after a few iterations (measured across
//     the whole registry); once an iteration re-proposes a sizing already
//     refined, later iterations only replay candidates the comparison has
//     already seen, so refining further cannot change the chosen sizing;
//   - gated agreement: the cut is taken only when the analytic screen's
//     price for the re-proposed sizing agrees with the LP's own loss rate
//     within hybridAgreeFactor — otherwise the screen is deemed unreliable
//     for this instance and the full exact iteration count runs (falling
//     back to exact is the no-op: the iterations already executed are the
//     exact backend's own).
//
// Because every executed iteration is exactly the exact backend's and the
// cut only ever lands after the trajectory has begun repeating itself,
// hybrid selects the same sizing as exact on every registry scenario (the
// gated acceptance test) at a fraction of the iterations — typically 4–6
// of 10 — while inheriting exact's evaluation semantics unchanged.
type hybrid struct{}

func init() { mustRegister(hybrid{}) }

func (hybrid) Name() string { return MethodHybrid }

func (hybrid) Run(ctx context.Context, cfg core.Config) (*core.Result, error) {
	s, err := core.NewStepper(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cfg = s.Config()

	// The analytic screen prices the candidates the refinement proposes.
	// Screen failure is not fatal — hybrid degrades to the full exact loop.
	screen, serr := newScreen(s.Arch(), cfg)

	seen := map[string]bool{}
	for it := 0; it < cfg.Iterations; it++ {
		iter, err := s.Step(ctx)
		if err != nil {
			return nil, err
		}
		key := allocKey(iter.Alloc)
		if seen[key] && serr == nil && screen.agrees(iter.Alloc, iter.ModelLoss) {
			break // trajectory cycled inside the screen's trust region
		}
		seen[key] = true
	}
	return s.Result()
}

// screen is the analytic view of one instance: converged boundary arrival
// estimates and effective service shares over the dense model, pricing
// arbitrary allocations in closed form.
type screen struct {
	model   *analyticModel
	arrival []float64
	mu      []float64
}

// newScreen builds the pricing screen by running the analytic boundary
// fixed point (the same computation the analytic backend sizes from).
func newScreen(a *arch.Architecture, cfg core.Config) (*screen, error) {
	m, err := newAnalyticModel(a, cfg)
	if err != nil {
		return nil, err
	}
	arrival := m.converge(cfg)
	mu := make([]float64, len(m.buffers))
	m.serviceShare(arrival, mu, make([]float64, len(m.muBus)))
	return &screen{model: m, arrival: arrival, mu: mu}, nil
}

// loss prices an allocation with the screen's converged boundary.
func (sc *screen) loss(alloc map[string]int) float64 {
	var total float64
	for i, id := range sc.model.buffers {
		total += sc.model.weight[i] * sc.arrival[i] * blocking(sc.arrival[i], sc.mu[i], alloc[id])
	}
	return total
}

// agrees is the gated agreement check: the analytic estimate of the exact
// loop's proposed sizing must be within hybridAgreeFactor of the LP's
// weighted loss rate (both ways), or both must be negligible.
func (sc *screen) agrees(alloc arch.Allocation, exactLoss float64) bool {
	est := sc.loss(alloc)
	const tiny = 1e-9
	if est < tiny && exactLoss < tiny {
		return true
	}
	if est <= 0 || exactLoss <= 0 {
		return false
	}
	r := est / exactLoss
	return r <= hybridAgreeFactor && r >= 1/hybridAgreeFactor
}

// allocKey canonically serialises an allocation for the cycle-detection
// set.
func allocKey(a arch.Allocation) string { return allocKeyMap(a) }

func allocKeyMap(a map[string]int) string {
	ids := make([]string, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		b.WriteString(id)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(a[id]))
		b.WriteByte(';')
	}
	return b.String()
}
