package solver_test

// Gated kernel benchmarks (Makefile BENCH_GATES, bench.yml): the two hot
// paths the analytic-screen overhaul rebuilt. BenchmarkAnalyticSolve is the
// whole closed-form sizing — model build, boundary fixed point, greedy,
// pricing — on chain6; BenchmarkRobustMatrix is the (sample × candidate)
// scoring matrix alone, the robust backend's inner product of precomputed
// blocking tables against the candidate pool. PERFORMANCE.md "The analytic
// screen, measured" records the baselines.

import (
	"context"
	"testing"

	"socbuf/internal/core"
	"socbuf/internal/scenario"
	"socbuf/internal/solver"
)

// benchSetup resolves a buffered chain6 and its config outside the timer.
func benchSetup(b *testing.B) (*core.Stepper, core.Config) {
	b.Helper()
	sc, ok := scenario.Get("chain6")
	if !ok {
		b.Fatal("scenario chain6 not registered")
	}
	cfg, err := sc.CoreConfig()
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewStepper(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s, s.Config()
}

func BenchmarkAnalyticSolve(b *testing.B) {
	s, cfg := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.AnalyticSolveDirect(s.Arch(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustMatrix(b *testing.B) {
	s, cfg := benchSetup(b)
	screens, err := solver.PerturbedScreens(s.Arch(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	nominal, err := solver.NewScreen(s.Arch(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Candidate pool shaped like the backend's: one sizing per ladder rung.
	var cands [][]int
	for _, f := range solver.BudgetLadder() {
		budget := int(float64(cfg.Budget) * f)
		if budget < nominal.Floor() {
			budget = nominal.Floor()
		}
		cands = append(cands, nominal.SizeAt(budget))
	}
	pairs := len(screens) * len(cands)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, sc := range screens {
			for _, alloc := range cands {
				sink += sc.TableLoss(alloc)
			}
		}
	}
	b.ReportMetric(float64(b.N*pairs)/b.Elapsed().Seconds(), "pairs/s")
	if sink < 0 {
		b.Fatal("impossible negative loss")
	}
}
