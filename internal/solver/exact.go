package solver

import (
	"context"

	"socbuf/internal/core"
)

// exact is the paper's CTMDP/LP methodology — the pre-existing solve path
// behind the backend seam. It delegates to core.RunCtx without touching the
// configuration, so its output is byte-identical to what the pre-refactor
// direct call produced (TestExactBackendMatchesCoreRun pins this over the
// whole scenario registry).
type exact struct{}

func init() { mustRegister(exact{}) }

func (exact) Name() string { return MethodExact }

func (exact) Run(ctx context.Context, cfg core.Config) (*core.Result, error) {
	return core.RunCtx(ctx, cfg)
}
