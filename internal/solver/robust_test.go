package solver_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"socbuf/internal/solvecache"
	"socbuf/internal/solver"
	"socbuf/internal/uncertain"
)

// TestRobustBackendShape checks the chance-constrained backend's contract
// under the default (nil) uncertainty spec: a valid budget-bounded
// allocation, one simulation-evaluated iteration, no CTMDP solution, and a
// populated report whose fields are internally consistent.
func TestRobustBackendShape(t *testing.T) {
	cfg := quickCfg(t, "chain6")
	cfg.Method = solver.MethodRobust
	res, err := solver.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Fatalf("robust ran %d iterations, want 1", len(res.Iterations))
	}
	if res.Best.Solution != nil || res.FinalSolution != nil {
		t.Fatal("robust backend produced a CTMDP solution")
	}
	if err := res.Best.Alloc.Validate(res.Arch, cfg.Budget); err != nil {
		t.Fatal(err)
	}
	rep := res.Robust
	if rep == nil {
		t.Fatal("robust run carried no chance-constraint report")
	}
	if rep.Samples != uncertain.DefaultSamples || rep.Confidence != uncertain.DefaultConfidence {
		t.Fatalf("report did not inherit spec defaults: %+v", rep)
	}
	if rep.Yield < 0 || rep.Yield > 1 || rep.YieldLow < 0 || rep.YieldLow > rep.Yield {
		t.Fatalf("yield pair out of order: yield=%v low=%v", rep.Yield, rep.YieldLow)
	}
	if rep.LossTarget <= 0 {
		t.Fatalf("loss target %v, want positive on chain6", rep.LossTarget)
	}
	if rep.BudgetUsed <= 0 || rep.BudgetUsed > cfg.Budget {
		t.Fatalf("budget used %d outside (0, %d]", rep.BudgetUsed, cfg.Budget)
	}
	if rep.Candidates <= 0 {
		t.Fatal("no candidates were scored")
	}
	used := 0
	for _, n := range res.Best.Alloc {
		used += n
	}
	if used != rep.BudgetUsed {
		t.Fatalf("allocation spends %d slots but report claims %d", used, rep.BudgetUsed)
	}
}

// TestRobustCacheRoundTrip pins the robust cache tier: the second identical
// run is answered from the cache (one hit, one entry, zero extra misses)
// and returns a bit-identical sizing and report, while the analytic tier —
// whose key space the backend tag keeps disjoint — stays untouched.
func TestRobustCacheRoundTrip(t *testing.T) {
	cache := solvecache.New()
	run := func() (*uncertain.Report, map[string]int) {
		cfg := quickCfg(t, "twobus")
		cfg.Method = solver.MethodRobust
		cfg.Uncertainty = &uncertain.Spec{RateSigma: 0.2, Samples: 16, Confidence: 0.9, Seed: 3}
		cfg.Cache = cache
		res, err := solver.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Robust, res.Best.Alloc
	}
	rep1, alloc1 := run()
	rep2, alloc2 := run()
	if *rep1 != *rep2 || !reflect.DeepEqual(alloc1, alloc2) {
		t.Fatalf("cached run diverged:\nfirst:  %+v %v\nsecond: %+v %v", *rep1, alloc1, *rep2, alloc2)
	}
	st := cache.Stats()
	if st.RobustHits != 1 || st.RobustMisses != 1 || st.RobustEntries != 1 {
		t.Fatalf("robust tier stats hits=%d misses=%d entries=%d, want 1/1/1",
			st.RobustHits, st.RobustMisses, st.RobustEntries)
	}
	if st.AnalyticHits != 0 || st.AnalyticMisses != 0 || st.AnalyticEntries != 0 {
		t.Fatalf("robust run leaked into the analytic tier: %+v", st)
	}
}

// TestRobustSpecKeyedCache pins cache-key sensitivity: changing the
// uncertainty spec (here the sampler seed) must miss the tier, not serve
// the other spec's sizing.
func TestRobustSpecKeyedCache(t *testing.T) {
	cache := solvecache.New()
	for _, seed := range []int64{3, 4} {
		cfg := quickCfg(t, "twobus")
		cfg.Method = solver.MethodRobust
		cfg.Uncertainty = &uncertain.Spec{RateSigma: 0.2, Samples: 16, Confidence: 0.9, Seed: seed}
		cfg.Cache = cache
		if _, err := solver.Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.RobustHits != 0 || st.RobustMisses != 2 || st.RobustEntries != 2 {
		t.Fatalf("distinct specs shared a cache slot: hits=%d misses=%d entries=%d",
			st.RobustHits, st.RobustMisses, st.RobustEntries)
	}
}

// TestRobustRejectsBadSpec pins validation surfacing: an out-of-range
// uncertainty spec fails config normalisation before any work happens.
func TestRobustRejectsBadSpec(t *testing.T) {
	cfg := quickCfg(t, "twobus")
	cfg.Method = solver.MethodRobust
	cfg.Uncertainty = &uncertain.Spec{RateSigma: -1}
	_, err := solver.Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("negative rate sigma accepted")
	}
	if !strings.Contains(err.Error(), "rate sigma") {
		t.Fatalf("error %q does not name the bad field", err)
	}
}
