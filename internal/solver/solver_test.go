package solver_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"socbuf/internal/core"
	"socbuf/internal/scenario"
	"socbuf/internal/solver"
)

// quickCfg trims a scenario's methodology configuration to test-suite cost.
func quickCfg(t *testing.T, name string) core.Config {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	cfg, err := sc.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 4
	cfg.Seeds = []int64{1}
	cfg.Horizon = 400
	cfg.WarmUp = 50
	return cfg
}

// gateScenarios is the instance set of the registry-wide acceptance gates:
// the whole registry normally, the four fast scenarios under the race
// detector (see race_on_test.go for why).
func gateScenarios() []string {
	if raceEnabled {
		return []string{"twobus", "figure1", "star6", "chain6"}
	}
	return scenario.Names()
}

// TestExactBackendMatchesCoreRun is the refactor's byte-identical gate: the
// exact backend routed through the solver registry must reproduce the
// pre-refactor direct core.Run output exactly, on every registry scenario.
func TestExactBackendMatchesCoreRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range gateScenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := quickCfg(t, name)
			direct, err := core.RunCtx(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg = quickCfg(t, name)
			cfg.Method = solver.MethodExact
			viaSolver, err := solver.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(direct.Best.Alloc, viaSolver.Best.Alloc) ||
				direct.Best.SimLoss != viaSolver.Best.SimLoss ||
				direct.BaselineLoss != viaSolver.BaselineLoss ||
				len(direct.Iterations) != len(viaSolver.Iterations) {
				t.Fatalf("exact backend diverges from core.Run:\nsolver: %+v\ndirect: %+v",
					viaSolver.Best, direct.Best)
			}
			for i := range direct.Iterations {
				d, s := direct.Iterations[i], viaSolver.Iterations[i]
				if !reflect.DeepEqual(d.Alloc, s.Alloc) || d.SimLoss != s.SimLoss || d.ModelLoss != s.ModelLoss {
					t.Fatalf("iteration %d diverges: %+v vs %+v", i, s, d)
				}
			}
		})
	}
}

// TestHybridMatchesExactSizing is the acceptance gate for the
// screen-then-refine backend: on every registry scenario the hybrid
// backend's chosen sizing must equal the exact backend's — at an iteration
// count (6) deep enough that the trajectory cycles and the early cut
// actually fires, while keeping the suite inside the -race CI budget. The
// cut must also save iterations somewhere, or hybrid is exact with extra
// steps.
func TestHybridMatchesExactSizing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	saved := false
	var mu sync.Mutex
	for _, name := range gateScenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := quickCfg(t, name)
			cfg.Iterations = 6
			cfg.Method = solver.MethodExact
			exactRes, err := solver.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg = quickCfg(t, name)
			cfg.Iterations = 6
			cfg.Method = solver.MethodHybrid
			hybridRes, err := solver.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exactRes.Best.Alloc, hybridRes.Best.Alloc) {
				t.Fatalf("hybrid sizing diverges from exact (%d vs %d hybrid iterations):\nhybrid: %v\nexact:  %v",
					len(hybridRes.Iterations), len(exactRes.Iterations),
					hybridRes.Best.Alloc, exactRes.Best.Alloc)
			}
			if len(hybridRes.Iterations) < len(exactRes.Iterations) {
				mu.Lock()
				saved = true
				mu.Unlock()
			}
			t.Logf("hybrid matched exact in %d/%d iterations", len(hybridRes.Iterations), len(exactRes.Iterations))
		})
	}
	t.Cleanup(func() {
		if !saved {
			t.Error("hybrid never terminated early on any registry scenario — the screen gate is dead")
		}
	})
}

// TestAnalyticBackendShape checks the closed-form backend's contract: a
// valid budget-exact allocation, one iteration, no CTMDP solution, and a
// positive analytic loss estimate on a lossy scenario.
func TestAnalyticBackendShape(t *testing.T) {
	cfg := quickCfg(t, "chain6")
	cfg.Method = solver.MethodAnalytic
	res, err := solver.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Fatalf("analytic ran %d iterations, want 1", len(res.Iterations))
	}
	if res.Best.Solution != nil || res.FinalSolution != nil {
		t.Fatal("analytic backend produced a CTMDP solution")
	}
	if res.Best.ModelLoss <= 0 {
		t.Fatalf("analytic loss estimate %v, want positive on chain6", res.Best.ModelLoss)
	}
	if err := res.Best.Alloc.Validate(res.Arch, cfg.Budget); err != nil {
		t.Fatal(err)
	}
	if res.BaselineLoss <= 0 {
		t.Fatal("baseline evaluation missing")
	}
}

// TestAnalyticDeterministic pins the closed-form path: two runs of the same
// configuration produce identical allocations (the greedy's ties must break
// deterministically).
func TestAnalyticDeterministic(t *testing.T) {
	cfg := quickCfg(t, "star6")
	cfg.Method = solver.MethodAnalytic
	a, err := solver.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = quickCfg(t, "star6")
	cfg.Method = solver.MethodAnalytic
	b, err := solver.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Best.Alloc, b.Best.Alloc) {
		t.Fatalf("analytic sizing not deterministic:\n%v\n%v", a.Best.Alloc, b.Best.Alloc)
	}
}

// TestAnalyticLossNearExact is the accuracy gate behind the speed/accuracy
// trade: across chain6 budget points the analytic sizing must not give up
// more than 5 percentage points of simulated loss probability relative to
// the exact sizing. The gap is one-sided — the gate bounds what the cheap
// model costs in quality; an analytic sizing that simulates better than
// exact's (which happens: the exact path quantises occupancy into coarse
// levels, the analytic model does not) is not an error. Both sized losses
// are normalised by the shared uniform baseline, which cancels the
// simulated traffic volume and leaves a loss-probability difference.
func TestAnalyticLossNearExact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc, _ := scenario.Get("chain6")
	budgets := []int{sc.Budget, sc.Budget + 24, sc.Budget + 56}
	if raceEnabled {
		budgets = budgets[:1] // the full grid runs in the plain tier
	}
	for _, budget := range budgets {
		cfg := quickCfg(t, "chain6")
		cfg.Budget = budget
		cfg.Method = solver.MethodExact
		exactRes, err := solver.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg = quickCfg(t, "chain6")
		cfg.Budget = budget
		cfg.Method = solver.MethodAnalytic
		anaRes, err := solver.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if exactRes.BaselineLoss != anaRes.BaselineLoss {
			t.Fatalf("budget %d: baselines diverge (%d vs %d) — backends saw different systems",
				budget, exactRes.BaselineLoss, anaRes.BaselineLoss)
		}
		regret := float64(anaRes.Best.SimLoss-exactRes.Best.SimLoss) / float64(exactRes.BaselineLoss)
		t.Logf("budget %d: exact sized %d, analytic sized %d, baseline %d (regret %.3f)",
			budget, exactRes.Best.SimLoss, anaRes.Best.SimLoss, exactRes.BaselineLoss, regret)
		if regret > 0.05 {
			t.Errorf("budget %d: analytic gives up %.3f of loss probability vs exact (>5%%)", budget, regret)
		}
	}
}

// TestUnknownMethodUniformError pins the repo-wide unknown-method message:
// every layer (CLI exit 2, HTTP 400) surfaces this exact wording.
func TestUnknownMethodUniformError(t *testing.T) {
	cfg := quickCfg(t, "twobus")
	cfg.Method = "simulated-annealing"
	_, err := solver.Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("unknown method accepted")
	}
	if !errors.Is(err, solver.ErrUnknownMethod) {
		t.Fatalf("error %v does not wrap solver.ErrUnknownMethod", err)
	}
	want := `unknown method "simulated-annealing" (valid methods: analytic | exact | hybrid | robust)`
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not carry the uniform message %q", err, want)
	}
}

// TestRegistryComplete pins the built-in backend set.
func TestRegistryComplete(t *testing.T) {
	got := solver.Methods()
	want := []string{solver.MethodAnalytic, solver.MethodExact, solver.MethodHybrid, solver.MethodRobust}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("methods = %v, want %v", got, want)
	}
	for _, m := range want {
		s, err := solver.Resolve(m)
		if err != nil || s.Name() != m {
			t.Fatalf("resolve %q: %v (%v)", m, s, err)
		}
	}
	if s, err := solver.Resolve(""); err != nil || s.Name() != solver.MethodExact {
		t.Fatalf("empty method resolves to %v (%v), want exact", s, err)
	}
}
