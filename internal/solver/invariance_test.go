package solver_test

// Kernel gates for the analytic screen: the trajectory-prefix and
// table-scoring shortcuts the robust backend leans on are each pinned
// bit-for-bit against the straightforward evaluation they replaced, and
// the whole robust decision is pinned worker-count invariant. The
// internals they reach come through export_test.go.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/solver"
)

// invariantScenarios is the instance set of the kernel gates: small enough
// to keep the suite quick, shaped differently enough (two buses, a chain, a
// star) to exercise distinct routing and contention structure.
var invariantScenarios = []string{"twobus", "chain6", "star6"}

// screenFor builds the buffered architecture and converged nominal screen
// of a registry scenario, exactly as the robust backend would.
func screenFor(t *testing.T, name string) (*arch.Architecture, core.Config, *solver.Screen) {
	t.Helper()
	cfg := quickCfg(t, name)
	s, err := core.NewStepper(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = s.Config()
	sc, err := solver.NewScreen(s.Arch(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Arch(), cfg, sc
}

// TestRobustTrajectoryPrefixEquivalence pins the shared-trajectory claim in
// the greedy's contract: because the marginal gain sequence does not depend
// on the budget, the sizing at ANY budget b is the floor plus the first b−n
// picks of the full-budget trajectory. Every rung read as a prefix snapshot
// must therefore equal an independently re-run greedy at that budget — for
// every budget from the floor to the full budget, not just the ladder's.
func TestRobustTrajectoryPrefixEquivalence(t *testing.T) {
	for _, name := range invariantScenarios {
		t.Run(name, func(t *testing.T) {
			_, cfg, sc := screenFor(t, name)
			for b := sc.Floor(); b <= cfg.Budget; b++ {
				direct := sc.GreedyAt(b)
				prefix := sc.SizeAt(b)
				if !reflect.DeepEqual(direct, prefix) {
					t.Fatalf("budget %d: prefix sizing %v != per-rung greedy %v", b, prefix, direct)
				}
			}
		})
	}
}

// TestScreenTableMatchesDirectBlocking pins the precomputed-table claim:
// pricing an allocation against the screen's B[i][k] table must be
// bit-identical to walking the blocking recurrence per call, because each
// table row IS the recurrence trace from B(0)=1 and the summation order is
// the same dense buffer order. Checked on nominal and perturbed screens at
// every ladder-rung sizing plus the floor and full-budget extremes.
func TestScreenTableMatchesDirectBlocking(t *testing.T) {
	for _, name := range invariantScenarios {
		t.Run(name, func(t *testing.T) {
			a, cfg, nominal := screenFor(t, name)
			perturbed, err := solver.PerturbedScreens(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			screens := append([]*solver.Screen{nominal}, perturbed[:4]...)
			budgets := []int{nominal.Floor(), cfg.Budget}
			for _, f := range solver.BudgetLadder() {
				if b := int(float64(cfg.Budget) * f); b >= nominal.Floor() && b <= cfg.Budget {
					budgets = append(budgets, b)
				}
			}
			for si, sc := range screens {
				for _, b := range budgets {
					alloc := sc.SizeAt(b)
					table, direct := sc.TableLoss(alloc), sc.DirectLoss(alloc)
					if table != direct {
						t.Fatalf("screen %d, budget %d: table-scored loss %v != direct blocking loss %v (Δ=%g)",
							si, b, table, direct, table-direct)
					}
				}
			}
		})
	}
}

// TestRobustWorkerInvariance pins the robust decision worker-count
// invariant: the per-sample screens fan across the pool but aggregate by
// sample index, candidate scoring merges in candidate order, and every
// float summation has one canonical order — so the sizing, its nominal
// loss, and every report field (yields included) must be byte-identical at
// 1, 4 and 16 workers.
func TestRobustWorkerInvariance(t *testing.T) {
	for _, name := range invariantScenarios {
		t.Run(name, func(t *testing.T) {
			run := func(workers int) interface{} {
				a, cfg, _ := screenFor(t, name)
				cfg.Workers = workers
				sol, err := solver.RobustSolveDirect(context.Background(), a, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return sol
			}
			base := run(1)
			for _, w := range []int{4, 16} {
				if got := run(w); !reflect.DeepEqual(got, base) {
					t.Fatalf("robust decision differs between 1 and %d workers:\n 1: %+v\n%2d: %+v",
						w, base, w, got)
				}
			}
		})
	}
}

// TestScreenLossZeroAlloc pins the scoring hot path allocation-free: the
// (sample × candidate) matrix runs loss once per pair, so a single heap
// allocation there multiplies into thousands per decision.
func TestScreenLossZeroAlloc(t *testing.T) {
	_, cfg, sc := screenFor(t, "chain6")
	alloc := sc.SizeAt(cfg.Budget)
	var sink float64
	if n := testing.AllocsPerRun(100, func() {
		sink += sc.TableLoss(alloc)
	}); n != 0 {
		t.Fatalf("sampleScreen.loss allocates %v times per call, want 0", n)
	}
	if math.IsNaN(sink) {
		t.Fatal("loss went NaN")
	}
}
