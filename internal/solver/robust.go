package solver

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/parallel"
	"socbuf/internal/queueing"
	"socbuf/internal/solvecache"
	"socbuf/internal/uncertain"
)

// robust sizes buffers under traffic uncertainty with a chance constraint:
// instead of optimising against the nominal point-estimate rates, it draws
// N correlated traffic perturbations (internal/uncertain, common random
// numbers), scores candidate sizings by their empirical yield — the
// fraction of samples whose analytic weighted loss rate meets the target —
// and selects the CHEAPEST sizing whose Wilson-guarded yield clears the
// requested confidence. The per-sample evaluations reuse the analytic
// backend's closed-form machinery (same package): one converged boundary
// screen per sample, shared structurally across every candidate, so the
// (sample × candidate) matrix costs N boundary fixed points plus pure
// float evaluations — thousands of samples stay interactive.
//
// Candidates come from two sources at each rung of a descending budget
// ladder: the nominal-rate analytic sizing (so robust in-sample yield can
// never fall below the nominal design's) and the per-sample sizings of a
// deterministic prefix of the sample set (designs hedged toward the
// perturbations actually drawn). When no candidate clears the constraint,
// the best-yield full-ladder candidate stands, with Report.Met = false.
//
// The result carries exactly one iteration, like the analytic backend's:
// simulation-evaluated under longest-queue arbitration, Solution nil,
// ModelLoss the nominal-screen analytic estimate, and Result.Robust
// holding the chance-constraint report. Whole decisions are cached under
// solvecache's backend-tagged robust tier. DESIGN.md §9 records the
// contract.
type robust struct{}

func init() { mustRegister(robust{}) }

func (robust) Name() string { return MethodRobust }

// candidateSeedSizings bounds how many per-sample sizings seed the
// candidate pool at each budget rung (the first indices of the CRN sample
// set — a pure function of the spec seed, so worker-count invariant).
const candidateSeedSizings = 6

// budgetLadder is the descending fraction ladder the selection walks:
// chance-constrained selection prefers the cheapest rung that clears the
// confidence.
var budgetLadder = []float64{0.6, 0.7, 0.8, 0.9, 1.0}

func (robust) Run(ctx context.Context, cfg core.Config) (*core.Result, error) {
	s, err := core.NewStepper(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cfg = s.Config()

	sol, err := robustSize(ctx, s.Arch(), cfg)
	if err != nil {
		return nil, err
	}

	alloc := arch.Allocation(sol.Alloc)
	if err := alloc.Validate(s.Arch(), cfg.Budget); err != nil {
		return nil, fmt.Errorf("solver: robust sizing produced bad allocation: %w", err)
	}
	loss, byProc, err := s.Evaluate(ctx, alloc)
	if err != nil {
		return nil, err
	}
	s.Record(core.Iteration{
		Alloc:      alloc,
		SimLoss:    loss,
		LossByProc: byProc,
		ModelLoss:  sol.LossRate,
	})
	res, err := s.Result()
	if err != nil {
		return nil, err
	}
	rep := sol.Report
	res.Robust = &rep
	return res, nil
}

// robustSize computes the chance-constrained sizing, consulting cfg.Cache's
// robust tier when one is attached (backend-tagged keys — a robust decision
// can never rebind as an exact or analytic solution).
func robustSize(ctx context.Context, a *arch.Architecture, cfg core.Config) (*solvecache.RobustSolution, error) {
	spec := specOf(cfg)
	var key solvecache.Key
	if cfg.Cache != nil {
		var err error
		if key, err = robustKey(a, cfg, spec); err != nil {
			return nil, err
		}
		if sol, ok := cfg.Cache.LookupRobust(key); ok {
			return sol, nil
		}
	}
	sol, err := robustSolve(ctx, a, cfg, spec)
	if err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		cfg.Cache.PutRobust(key, sol)
	}
	return sol, nil
}

// specOf resolves the run's uncertainty spec: the config's, or all
// defaults — the robust backend must work spec-less (registry-driven tests
// and sweeps run every method).
func specOf(cfg core.Config) uncertain.Spec {
	spec := uncertain.Spec{}
	if cfg.Uncertainty != nil {
		spec = *cfg.Uncertainty
	}
	return spec.WithDefaults()
}

// robustKey fingerprints the robust decision: the buffered architecture's
// canonical JSON with the loss weights appended (exactly the analytic key's
// content bytes), plus the resolved spec's canonical JSON
// (solvecache.RobustFingerprint adds the backend tag, budget and
// fixed-point depth).
func robustKey(a *arch.Architecture, cfg core.Config, spec uncertain.Spec) (solvecache.Key, error) {
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		return solvecache.Key{}, err
	}
	procs := make([]string, 0, len(cfg.LossWeights))
	for p := range cfg.LossWeights {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, p := range procs {
		fmt.Fprintf(&buf, "w:%s=%x;", p, math.Float64bits(cfg.LossWeights[p]))
	}
	var specBuf bytes.Buffer
	if err := spec.WriteJSON(&specBuf); err != nil {
		return solvecache.Key{}, err
	}
	return solvecache.RobustFingerprint(buf.Bytes(), specBuf.Bytes(), cfg.Budget, cfg.BoundaryIters), nil
}

// sampleScreen is one converged analytic view of a (possibly perturbed)
// architecture: the closed-form structure every candidate is scored
// against. Building it costs the boundary fixed point once, plus a
// precomputed per-buffer blocking table B[i][k] for every capacity the
// budget allows and the full-budget greedy trajectory; after that, sizing
// any ladder rung is a prefix read of the trajectory and pricing any
// candidate is one multiply-add per buffer against the table — this is the
// structural reuse that makes the (sample × candidate) matrix cheap, and
// it is read-only, so candidate scoring fans across workers freely.
type sampleScreen struct {
	m       *analyticModel
	arrival []float64
	mu      []float64
	wl      []float64 // weight[i]·arrival[i], the loss-sum coefficients
	tab     []float64 // blocking tables: B(buffer i, capacity k) at tab[i*stride+k]
	stride  int       // table row width: max per-buffer capacity + 1
	traj    []int     // full-budget greedy pick sequence beyond the 1-unit floor
}

func newSampleScreen(a *arch.Architecture, cfg core.Config) (*sampleScreen, error) {
	m, err := newAnalyticModel(a, cfg)
	if err != nil {
		return nil, err
	}
	return screenOf(m, cfg), nil
}

// screenOf converges the model's boundary and precomputes the screen's
// scoring tables and sizing trajectory.
func screenOf(m *analyticModel, cfg core.Config) *sampleScreen {
	n := len(m.buffers)
	sc := &sampleScreen{m: m, arrival: m.converge(cfg)}
	sc.mu = make([]float64, n)
	m.serviceShare(sc.arrival, sc.mu, make([]float64, len(m.muBus)))
	sc.wl = make([]float64, n)
	for i := 0; i < n; i++ {
		sc.wl[i] = m.weight[i] * sc.arrival[i]
	}
	// Every buffer keeps the 1-unit floor, so no buffer can ever hold more
	// than budget − n + 1 units; one table row covers k = 0..stride−1.
	sc.stride = cfg.Budget - n + 2
	if sc.stride < 2 {
		sc.stride = 2
	}
	sc.tab = make([]float64, n*sc.stride)
	for i := 0; i < n; i++ {
		row := sc.tab[i*sc.stride : (i+1)*sc.stride]
		switch {
		case sc.arrival[i] <= 0:
			// zeros: a traffic-free buffer never blocks
		case sc.mu[i] <= 0:
			for k := range row {
				row[k] = 1
			}
		default:
			rho := sc.arrival[i] / sc.mu[i]
			row[0] = 1
			for k := 1; k < sc.stride; k++ {
				row[k] = queueing.BlockingStep(rho, row[k-1])
			}
		}
	}
	_, sc.traj = m.greedy(sc.arrival, sc.mu, cfg.Budget, make([]int, 0, cfg.Budget-n))
	return sc
}

// size returns the marginal-greedy sizing at the given budget as a prefix
// snapshot of the full-budget trajectory: the floor plus the first
// budget − n picks (exact, because the greedy's gain sequence does not
// depend on the budget).
func (sc *sampleScreen) size(budget int) []int {
	n := len(sc.m.buffers)
	alloc := make([]int, n)
	for i := range alloc {
		alloc[i] = 1
	}
	extra := budget - n
	if extra > len(sc.traj) {
		extra = len(sc.traj)
	}
	for _, i := range sc.traj[:max(0, extra)] {
		alloc[i]++
	}
	return alloc
}

// loss prices a dense allocation under this screen: the analytic weighted
// loss rate, one table lookup and multiply-add per buffer, summed in dense
// (sorted-buffer) order — the same deterministic float order as pricing
// each buffer directly, so yields stay worker-count invariant
// (TestScreenLossZeroAlloc pins that this path never allocates).
func (sc *sampleScreen) loss(alloc []int) float64 {
	var loss float64
	for i, k := range alloc {
		loss += sc.wl[i] * sc.tab[i*sc.stride+k]
	}
	return loss
}

// lossMap prices a map-form allocation (the package-boundary form) by
// direct blocking evaluation — capacities outside the table's budget range
// are legal here.
func (sc *sampleScreen) lossMap(alloc map[string]int) float64 {
	var loss float64
	for i, id := range sc.m.buffers {
		loss += sc.wl[i] * blocking(sc.arrival[i], sc.mu[i], alloc[id])
	}
	return loss
}

// AnalyticLoss prices an allocation on an architecture (bridge buffers
// already inserted) with the analytic screen: the converged boundary's
// weighted M/M/1/K loss rate — exactly the quantity the robust backend's
// yield counts compare against the loss target. Exported so out-of-sample
// yield audits (tests, tools) can score a sizing on fresh perturbations
// without re-running a backend. cfg needs Budget, and optionally
// BoundaryIters (0 = the core default) and LossWeights.
func AnalyticLoss(a *arch.Architecture, cfg core.Config, alloc map[string]int) (float64, error) {
	if cfg.BoundaryIters == 0 {
		cfg.BoundaryIters = 3
	}
	sc, err := newSampleScreen(a, cfg)
	if err != nil {
		return 0, err
	}
	return sc.lossMap(alloc), nil
}

// robustCandidate is one scored sizing (dense allocation form).
type robustCandidate struct {
	alloc []int
	total int
	key   string
	// successes counts samples whose loss met the target; yield and
	// yieldLow derive from it.
	successes int
	yield     float64
	yieldLow  float64
}

// robustSolve runs the full decision: nominal screen, N per-sample screens
// through the parallel pool (CRN: sample i is a pure function of the spec
// seed, so results are worker-count invariant), candidate generation over
// the budget ladder, yield scoring of every (sample × candidate) pair, and
// the Wilson-guarded cheapest-first selection.
func robustSolve(ctx context.Context, a *arch.Architecture, cfg core.Config, spec uncertain.Spec) (*solvecache.RobustSolution, error) {
	sampler := uncertain.NewSampler(spec, len(a.Flows))
	base, err := newAnalyticModel(a, cfg)
	if err != nil {
		return nil, err
	}
	nominal := screenOf(base, cfg)

	// Per-sample screens fan across the worker pool; aggregation is by
	// sample index, so the screen set is identical for any worker count.
	// Each sample shares the nominal model's static structure (topology,
	// routing, bus rates) — a perturbation only rescales the flow rates, so
	// no architecture clone or re-route happens per sample.
	screens, err := parallel.MapCtx(ctx, sampler.N(), cfg.Workers, func(i int) (*sampleScreen, error) {
		s := sampler.At(i)
		return screenOf(base.withSample(s.Rate, s.Burst), cfg), nil
	})
	if err != nil {
		return nil, err
	}

	// Loss target: explicit, or a multiple of the nominal full-budget
	// design's own analytic loss (floored away from zero so underloaded
	// scenarios keep a meaningful constraint).
	nominalAlloc := nominal.size(cfg.Budget)
	target := spec.LossTarget
	if target == 0 {
		target = spec.TargetFactor * nominal.loss(nominalAlloc)
		if target < 1e-9 {
			target = 1e-9
		}
	}

	// Candidate pool: walk the budget ladder from cheap to full; at each
	// rung take the nominal-rate sizing plus the sizings the first few
	// samples would choose, deduplicated on the canonical allocation key.
	// Generation is deterministic: ladder order, then nominal-first, then
	// sample index. Each rung sizing is a prefix snapshot of its screen's
	// full-budget trajectory, and candIdx (key → candidate index, built
	// alongside the dedup set) answers "which candidate is this rung's
	// nominal sizing" without scanning the pool.
	floor := len(base.buffers)
	budgets := make([]int, 0, len(budgetLadder))
	seenBudget := map[int]bool{}
	for _, f := range budgetLadder {
		b := int(float64(cfg.Budget) * f)
		if b < floor {
			b = floor
		}
		if b > cfg.Budget {
			b = cfg.Budget
		}
		if !seenBudget[b] {
			seenBudget[b] = true
			budgets = append(budgets, b)
		}
	}
	seeds := candidateSeedSizings
	if n := sampler.N(); seeds > n {
		seeds = n
	}
	var cands []*robustCandidate
	candIdx := map[string]int{}
	addCandidate := func(alloc []int) int {
		key := base.allocKeyDense(alloc)
		if i, ok := candIdx[key]; ok {
			return i
		}
		candIdx[key] = len(cands)
		total := 0
		for _, u := range alloc {
			total += u
		}
		cands = append(cands, &robustCandidate{alloc: alloc, total: total, key: key})
		return len(cands) - 1
	}
	nominalIdx := make(map[int]int, len(budgets)) // budget rung -> nominal candidate index
	for _, b := range budgets {
		nominalIdx[b] = addCandidate(nominal.size(b))
		for i := 0; i < seeds; i++ {
			addCandidate(screens[i].size(b))
		}
	}

	// Score every candidate over all N samples — the same samples for every
	// candidate (common random numbers), through the pool, merged in
	// candidate order.
	successes, err := parallel.MapCtx(ctx, len(cands), cfg.Workers, func(ci int) (int, error) {
		n := 0
		for _, sc := range screens {
			if sc.loss(cands[ci].alloc) <= target {
				n++
			}
		}
		return n, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cands {
		c.successes = successes[i]
		c.yield = float64(c.successes) / float64(sampler.N())
		c.yieldLow = uncertain.WilsonLower(c.successes, sampler.N(), spec.Confidence)
	}

	// Selection: cheapest sizing whose guarded yield clears the confidence;
	// ties (same total) break toward the higher guarded yield, then the
	// lexicographically smaller allocation key — fully deterministic.
	ordered := make([]*robustCandidate, len(cands))
	copy(ordered, cands)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.total != b.total {
			return a.total < b.total
		}
		if a.yieldLow != b.yieldLow {
			return a.yieldLow > b.yieldLow
		}
		return a.key < b.key
	})
	var chosen *robustCandidate
	met := false
	for _, c := range ordered {
		if c.yieldLow >= spec.Confidence {
			chosen, met = c, true
			break
		}
	}
	if chosen == nil {
		// No candidate clears the constraint: best guarded yield wins (then
		// raw yield, then cheapest, then key).
		chosen = ordered[0]
		for _, c := range ordered[1:] {
			switch {
			case c.yieldLow > chosen.yieldLow:
				chosen = c
			case c.yieldLow == chosen.yieldLow && c.yield > chosen.yield:
				chosen = c
			}
		}
	}

	nomFull := nominalIdx[budgets[len(budgets)-1]]
	report := uncertain.Report{
		Samples:      sampler.N(),
		Confidence:   spec.Confidence,
		LossTarget:   target,
		Yield:        chosen.yield,
		YieldLow:     chosen.yieldLow,
		NominalYield: cands[nomFull].yield,
		BudgetUsed:   chosen.total,
		Met:          met,
		Candidates:   len(cands),
	}
	return &solvecache.RobustSolution{
		Alloc:    base.allocMap(chosen.alloc),
		LossRate: nominal.loss(chosen.alloc),
		Report:   report,
	}, nil
}
