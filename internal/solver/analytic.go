package solver

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/queueing"
	"socbuf/internal/solvecache"
)

// analytic sizes buffers from closed-form M/M/1/K blocking probabilities
// (internal/queueing) instead of the CTMDP/LP: each buffer is approximated
// as an M/M/1/K queue at its boundary-estimated arrival rate and its share
// of the bus's service capacity, and the budget is spent by a
// marginal-allocation greedy — every unit goes to the buffer whose weighted
// loss rate w·λ·B(K) drops most. The M/M/1/K marginals are decreasing in K,
// so the greedy is exact for the separable analytic objective (the same
// argument as ctmdp.TranslateGreedyTail's, with the closed-form blocking in
// place of the measured tail ratio).
//
// Bridge coupling is handled the way the exact path handles it — a damped
// fixed point on the boundary scalars — but with the M/M/1/K blocking
// probability in place of the solved model's full probability, so no LP is
// ever assembled: the whole sizing is a few thousand floating-point
// operations. Accuracy is anchored by the single-bus property test
// (TestSingleBusCTMDPMatchesMM1K): for one uncontended buffer the CTMDP
// stationary distribution IS the M/M/1/K distribution, so the approximation
// error comes only from multi-client contention and bridge feedback.
//
// The model is dense and index-addressed: buffers are integer indices into
// flat []float64 arrays built once per screen, routes are flattened into a
// CSR-style hop list, and blocking runs on the allocation-free incremental
// recurrence (queueing.BlockingRecurrence — oracle-gated against the MM1K
// closed form). The map-keyed view exists only at the package boundary
// (allocations in and out); every inner loop indexes slices.
//
// The result carries exactly one iteration, evaluated by simulation under
// the default longest-queue arbitration (no CTMDP policy exists to drive
// the simulator); Solution is nil and ModelLoss is the analytic weighted
// loss-rate estimate.
type analytic struct{}

func init() { mustRegister(analytic{}) }

func (analytic) Name() string { return MethodAnalytic }

func (analytic) Run(ctx context.Context, cfg core.Config) (*core.Result, error) {
	s, err := core.NewStepper(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cfg = s.Config()

	sol, err := analyticSize(s.Arch(), cfg)
	if err != nil {
		return nil, err
	}

	alloc := arch.Allocation(sol.Alloc)
	if err := alloc.Validate(s.Arch(), cfg.Budget); err != nil {
		return nil, fmt.Errorf("solver: analytic sizing produced bad allocation: %w", err)
	}
	loss, byProc, err := s.Evaluate(ctx, alloc)
	if err != nil {
		return nil, err
	}
	s.Record(core.Iteration{
		Alloc:      alloc,
		SimLoss:    loss,
		LossByProc: byProc,
		ModelLoss:  sol.LossRate,
	})
	return s.Result()
}

// analyticSize computes the analytic allocation and its loss estimate for
// the buffered architecture, consulting cfg.Cache's analytic tier when one
// is attached (the key space is backend-tagged, so these entries can never
// alias an exact CTMDP solution).
func analyticSize(a *arch.Architecture, cfg core.Config) (*solvecache.AnalyticSolution, error) {
	var key solvecache.Key
	if cfg.Cache != nil {
		var err error
		if key, err = analyticKey(a, cfg); err != nil {
			return nil, err
		}
		if sol, ok := cfg.Cache.LookupAnalytic(key); ok {
			return sol, nil
		}
	}
	sol, err := analyticSolve(a, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		cfg.Cache.PutAnalytic(key, sol)
	}
	return sol, nil
}

// AnalyticContentKey fingerprints the analytic sizing content of a request-
// level configuration — cfg.Arch's canonical JSON, the loss weights, the
// budget and the fixed-point depth. It is the engine's micro-batching group
// key: two configurations with equal keys describe the same analytic sizing
// problem (their sizings cache-share under the analytic tier once the
// stepper's buffer insertion has run), though they may still differ in
// evaluation knobs (seeds, horizon) that batching deliberately ignores. The
// second return is false when cfg carries no architecture.
func AnalyticContentKey(cfg core.Config) (solvecache.Key, bool) {
	if cfg.Arch == nil {
		return solvecache.Key{}, false
	}
	k, err := analyticKey(cfg.Arch, cfg)
	if err != nil {
		return solvecache.Key{}, false
	}
	return k, true
}

// analyticKey fingerprints the analytic problem: the buffered
// architecture's canonical JSON, the loss weights, the budget and the
// fixed-point depth (solvecache.AnalyticFingerprint adds the backend tag).
func analyticKey(a *arch.Architecture, cfg core.Config) (solvecache.Key, error) {
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		return solvecache.Key{}, err
	}
	procs := make([]string, 0, len(cfg.LossWeights))
	for p := range cfg.LossWeights {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, p := range procs {
		fmt.Fprintf(&buf, "w:%s=%x;", p, math.Float64bits(cfg.LossWeights[p]))
	}
	return solvecache.AnalyticFingerprint(buf.Bytes(), cfg.Budget, cfg.BoundaryIters), nil
}

// analyticModel is the dense closed-form view of the buffered architecture:
// buffer i is m.buffers[i] everywhere, routes are flattened into the
// (hopStart, hopBuf) CSR pair, and every per-buffer quantity is a flat
// slice indexed by i. The static structure (topology, bus rates, routing)
// is shared across perturbed copies — withSample only re-derives the
// rate-dependent slices — which is what lets the robust backend build N
// per-sample screens without re-routing or re-cloning the architecture.
type analyticModel struct {
	buffers []string       // sorted buffer IDs; position = dense index
	index   map[string]int // buffer ID -> dense index
	busOf   []int          // dense buffer -> dense bus, -1 for traffic-free buffers
	muBus   []float64      // dense bus -> service rate

	// Per-route (1:1 with a.Flows, in order): nominal rate, current
	// (possibly perturbed) rate, and the source processor's loss weight.
	baseRate  []float64
	routeRate []float64
	routeW    []float64
	// Route r's hops are hopBuf[hopStart[r]:hopStart[r+1]], each entry the
	// dense buffer the hop waits in (-1 when the ID is outside BufferIDs —
	// kept so attenuation still walks the hop, matching the map model).
	hopStart []int
	hopBuf   []int

	weight      []float64 // rate-weighted loss weight per buffer
	initArrival []float64 // raw no-loss arrival rates (fixed-point seed)
}

func newAnalyticModel(a *arch.Architecture, cfg core.Config) (*analyticModel, error) {
	clients, err := a.BusClients()
	if err != nil {
		return nil, err
	}
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}
	m := &analyticModel{buffers: a.BufferIDs()}
	sort.Strings(m.buffers)
	m.index = make(map[string]int, len(m.buffers))
	for i, id := range m.buffers {
		m.index[id] = i
	}
	m.busOf = make([]int, len(m.buffers))
	for i := range m.busOf {
		m.busOf[i] = -1
	}
	// Dense bus order: sorted bus IDs, so every later accumulation has one
	// canonical float summation order.
	busIDs := make([]string, 0, len(clients))
	for bus := range clients {
		busIDs = append(busIDs, bus)
	}
	sort.Strings(busIDs)
	m.muBus = make([]float64, len(busIDs))
	for v, bus := range busIDs {
		b, ok := a.BusByID(bus)
		if !ok {
			return nil, fmt.Errorf("solver: unknown bus %q in client map", bus)
		}
		m.muBus[v] = b.ServiceRate
		for _, id := range clients[bus] {
			if i, ok := m.index[id]; ok {
				m.busOf[i] = v
			}
		}
	}
	// Flatten the routes.
	m.baseRate = make([]float64, len(routes))
	m.routeW = make([]float64, len(routes))
	m.hopStart = make([]int, len(routes)+1)
	for r, rt := range routes {
		m.baseRate[r] = rt.Flow.Rate
		m.routeW[r] = 1
		if lw, ok := cfg.LossWeights[rt.Flow.From]; ok {
			m.routeW[r] = lw
		}
		m.hopStart[r+1] = m.hopStart[r] + len(rt.Hops)
	}
	m.hopBuf = make([]int, m.hopStart[len(routes)])
	for r, rt := range routes {
		for h, hop := range rt.Hops {
			i, ok := m.index[hop.Buffer]
			if !ok {
				i = -1
			}
			m.hopBuf[m.hopStart[r]+h] = i
		}
	}
	m.routeRate = m.baseRate
	m.deriveRates()
	return m, nil
}

// withSample returns a copy of the model under one traffic perturbation:
// the static structure (topology, routing, bus rates) is shared, only the
// rate-dependent slices are re-derived. The factor product matches
// uncertain.Perturb's multiply bit for bit, so a screen built on the shared
// structure prices exactly what a screen on a Perturb'ed clone would.
func (m *analyticModel) withSample(rate []float64, burst float64) *analyticModel {
	out := *m
	out.routeRate = make([]float64, len(m.baseRate))
	for r := range out.routeRate {
		out.routeRate[r] = m.baseRate[r] * (rate[r] * burst)
	}
	out.deriveRates()
	return &out
}

// deriveRates recomputes the rate-dependent per-buffer slices from the
// current routeRate: the raw no-loss arrival seeds and the rate-weighted
// loss weights, both accumulated in route order (the same float order the
// map model used, so values are bit-identical).
func (m *analyticModel) deriveRates() {
	n := len(m.buffers)
	m.initArrival = make([]float64, n)
	wNum := make([]float64, n)
	wDen := make([]float64, n)
	for r := range m.routeRate {
		rate, w := m.routeRate[r], m.routeW[r]
		for h := m.hopStart[r]; h < m.hopStart[r+1]; h++ {
			if i := m.hopBuf[h]; i >= 0 {
				m.initArrival[i] += rate
				wNum[i] += rate * w
				wDen[i] += rate
			}
		}
	}
	m.weight = make([]float64, n)
	for i := range m.weight {
		m.weight[i] = 1
		if wDen[i] > 0 && wNum[i] > 0 {
			m.weight[i] = wNum[i] / wDen[i]
		}
	}
}

// serviceShare fills mu with each buffer's effective service rate given the
// current arrival estimates: the larger of the bus's residual capacity
// (μ − everyone else's load — right when the bus is underloaded and the
// arbiter serves this queue at nearly full rate) and the proportional share
// μ·λ/Λ (the saturated floor). This is the standard two-regime
// approximation for a single server shared by loss queues. busLoad is
// caller scratch of len(m.muBus); loads accumulate in dense (sorted) buffer
// order so the sums are reproducible.
func (m *analyticModel) serviceShare(arrival, mu, busLoad []float64) {
	for v := range busLoad {
		busLoad[v] = 0
	}
	for i, v := range m.busOf {
		if v >= 0 {
			busLoad[v] += arrival[i]
		}
	}
	for i, v := range m.busOf {
		if v < 0 {
			mu[i] = 0
			continue
		}
		lam, load, cap := arrival[i], busLoad[v], m.muBus[v]
		if lam <= 0 {
			mu[i] = cap
			continue
		}
		residual := cap - (load - lam)
		prop := cap * lam / load
		mu[i] = math.Max(residual, prop)
	}
}

// blocking returns the M/M/1/K loss probability of one buffer: 0 for
// traffic-free buffers, 1 for a degenerate (no service, no room) queue —
// the same conventions the map model's NewMM1K error path encoded — and
// the incremental recurrence everywhere else.
func blocking(lambda, mu float64, k int) float64 {
	if lambda <= 0 {
		return 0
	}
	if mu <= 0 || k < 1 {
		return 1
	}
	return queueing.BlockingRecurrence(lambda, mu, k)
}

// converge runs the closed-form boundary fixed point: greedy allocation at
// the current arrival estimates, M/M/1/K blocking at that allocation, route
// re-walk with blocking attenuation, damped update — cfg.BoundaryIters
// passes, mirroring the exact path's bridge-boundary iteration with
// formulas in place of LP solves. It returns the converged arrival
// estimates as a fresh dense slice.
func (m *analyticModel) converge(cfg core.Config) []float64 {
	n := len(m.buffers)
	arrival := append([]float64(nil), m.initArrival...)
	mu := make([]float64, n)
	busLoad := make([]float64, len(m.muBus))
	block := make([]float64, n)
	next := make([]float64, n)
	const damp = 0.7
	for fp := 0; fp < cfg.BoundaryIters; fp++ {
		m.serviceShare(arrival, mu, busLoad)
		alloc, _ := m.greedy(arrival, mu, cfg.Budget, nil)
		for i := 0; i < n; i++ {
			block[i] = blocking(arrival[i], mu[i], alloc[i])
		}
		// Re-derive arrivals along every route, attenuating the carried rate
		// by each upstream buffer's acceptance (an accepted M/M/1/K customer
		// is always eventually served, so acceptance is the whole story).
		for i := range next {
			next[i] = 0
		}
		for r := range m.routeRate {
			carried := m.routeRate[r]
			for h := m.hopStart[r]; h < m.hopStart[r+1]; h++ {
				if i := m.hopBuf[h]; i >= 0 {
					next[i] += carried
					carried *= 1 - block[i]
				}
			}
		}
		for i := range arrival {
			arrival[i] = damp*next[i] + (1-damp)*arrival[i]
		}
	}
	return arrival
}

// analyticSolve sizes the buffered architecture in closed form: converge
// the boundary, spend the budget by marginal greedy, and price the result.
func analyticSolve(a *arch.Architecture, cfg core.Config) (*solvecache.AnalyticSolution, error) {
	m, err := newAnalyticModel(a, cfg)
	if err != nil {
		return nil, err
	}
	arrival := m.converge(cfg)
	mu := make([]float64, len(m.buffers))
	m.serviceShare(arrival, mu, make([]float64, len(m.muBus)))
	alloc, _ := m.greedy(arrival, mu, cfg.Budget, nil)
	var loss float64
	for i := range m.buffers {
		loss += m.weight[i] * arrival[i] * blocking(arrival[i], mu[i], alloc[i])
	}
	return &solvecache.AnalyticSolution{Alloc: m.allocMap(alloc), LossRate: loss}, nil
}

// allocMap converts a dense allocation to the package-boundary map form.
func (m *analyticModel) allocMap(alloc []int) map[string]int {
	out := make(map[string]int, len(m.buffers))
	for i, id := range m.buffers {
		out[id] = alloc[i]
	}
	return out
}

// allocKeyDense renders a dense allocation in allocKeyMap's canonical
// "id=units;" format (m.buffers is sorted, so the two serialisations are
// byte-identical — candidate dedup keys and map keys interoperate).
func (m *analyticModel) allocKeyDense(alloc []int) string {
	var b strings.Builder
	for i, id := range m.buffers {
		b.WriteString(id)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(alloc[i]))
		b.WriteByte(';')
	}
	return b.String()
}

// greedy spends the budget unit by unit on the buffer with the largest
// weighted marginal loss reduction w·λ·(B(K) − B(K+1)), starting from the
// one-unit floor every buffer keeps. Ties break toward the smaller dense
// index (= lexicographically smaller buffer ID) so the allocation is
// deterministic.
//
// Each buffer carries incremental blocking state — B(k) and B(k+1) advance
// by one BlockingStep per unit granted, never re-derived from scratch — and
// when traj is non-nil the full pick sequence is appended to it. Because
// the gain sequence is independent of the budget, the allocation at any
// smaller budget b is exactly the floor plus the first b−n picks: the
// robust budget ladder reads its rungs as prefix snapshots of one full
// trajectory instead of re-running a greedy per rung
// (TestRobustTrajectoryPrefixEquivalence pins the equivalence).
func (m *analyticModel) greedy(arrival, mu []float64, budget int, traj []int) ([]int, []int) {
	n := len(m.buffers)
	alloc := make([]int, n)
	gain := make([]float64, n)
	rho := make([]float64, n)
	bk := make([]float64, n)  // B(alloc[i])
	bk1 := make([]float64, n) // B(alloc[i]+1)
	for i := 0; i < n; i++ {
		alloc[i] = 1
		if arrival[i] <= 0 || mu[i] <= 0 {
			continue // blocking is constant (0 or 1); the marginal is 0
		}
		rho[i] = arrival[i] / mu[i]
		bk[i] = queueing.BlockingRecurrence(arrival[i], mu[i], 1)
		bk1[i] = queueing.BlockingStep(rho[i], bk[i])
		gain[i] = m.weight[i] * arrival[i] * (bk[i] - bk1[i])
	}
	for left := budget - n; left > 0; left-- {
		best := 0
		for i := 1; i < n; i++ {
			if gain[i] > gain[best] {
				best = i
			}
		}
		alloc[best]++
		if traj != nil {
			traj = append(traj, best)
		}
		if rho[best] > 0 {
			bk[best] = bk1[best]
			bk1[best] = queueing.BlockingStep(rho[best], bk1[best])
			gain[best] = m.weight[best] * arrival[best] * (bk[best] - bk1[best])
		}
	}
	return alloc, traj
}
