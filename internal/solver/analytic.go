package solver

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/queueing"
	"socbuf/internal/solvecache"
)

// analytic sizes buffers from closed-form M/M/1/K blocking probabilities
// (internal/queueing) instead of the CTMDP/LP: each buffer is approximated
// as an M/M/1/K queue at its boundary-estimated arrival rate and its share
// of the bus's service capacity, and the budget is spent by a
// marginal-allocation greedy — every unit goes to the buffer whose weighted
// loss rate w·λ·B(K) drops most. The M/M/1/K marginals are decreasing in K,
// so the greedy is exact for the separable analytic objective (the same
// argument as ctmdp.TranslateGreedyTail's, with the closed-form blocking in
// place of the measured tail ratio).
//
// Bridge coupling is handled the way the exact path handles it — a damped
// fixed point on the boundary scalars — but with the M/M/1/K blocking
// probability in place of the solved model's full probability, so no LP is
// ever assembled: the whole sizing is a few thousand floating-point
// operations. Accuracy is anchored by the single-bus property test
// (TestSingleBusCTMDPMatchesMM1K): for one uncontended buffer the CTMDP
// stationary distribution IS the M/M/1/K distribution, so the approximation
// error comes only from multi-client contention and bridge feedback.
//
// The result carries exactly one iteration, evaluated by simulation under
// the default longest-queue arbitration (no CTMDP policy exists to drive
// the simulator); Solution is nil and ModelLoss is the analytic weighted
// loss-rate estimate.
type analytic struct{}

func init() { mustRegister(analytic{}) }

func (analytic) Name() string { return MethodAnalytic }

func (analytic) Run(ctx context.Context, cfg core.Config) (*core.Result, error) {
	s, err := core.NewStepper(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cfg = s.Config()

	sol, err := analyticSize(s.Arch(), cfg)
	if err != nil {
		return nil, err
	}

	alloc := arch.Allocation(sol.Alloc)
	if err := alloc.Validate(s.Arch(), cfg.Budget); err != nil {
		return nil, fmt.Errorf("solver: analytic sizing produced bad allocation: %w", err)
	}
	loss, byProc, err := s.Evaluate(ctx, alloc)
	if err != nil {
		return nil, err
	}
	s.Record(core.Iteration{
		Alloc:      alloc,
		SimLoss:    loss,
		LossByProc: byProc,
		ModelLoss:  sol.LossRate,
	})
	return s.Result()
}

// analyticSize computes the analytic allocation and its loss estimate for
// the buffered architecture, consulting cfg.Cache's analytic tier when one
// is attached (the key space is backend-tagged, so these entries can never
// alias an exact CTMDP solution).
func analyticSize(a *arch.Architecture, cfg core.Config) (*solvecache.AnalyticSolution, error) {
	var key solvecache.Key
	if cfg.Cache != nil {
		var err error
		if key, err = analyticKey(a, cfg); err != nil {
			return nil, err
		}
		if sol, ok := cfg.Cache.LookupAnalytic(key); ok {
			return sol, nil
		}
	}
	sol, err := analyticSolve(a, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Cache != nil {
		cfg.Cache.PutAnalytic(key, sol)
	}
	return sol, nil
}

// AnalyticContentKey fingerprints the analytic sizing content of a request-
// level configuration — cfg.Arch's canonical JSON, the loss weights, the
// budget and the fixed-point depth. It is the engine's micro-batching group
// key: two configurations with equal keys describe the same analytic sizing
// problem (their sizings cache-share under the analytic tier once the
// stepper's buffer insertion has run), though they may still differ in
// evaluation knobs (seeds, horizon) that batching deliberately ignores. The
// second return is false when cfg carries no architecture.
func AnalyticContentKey(cfg core.Config) (solvecache.Key, bool) {
	if cfg.Arch == nil {
		return solvecache.Key{}, false
	}
	k, err := analyticKey(cfg.Arch, cfg)
	if err != nil {
		return solvecache.Key{}, false
	}
	return k, true
}

// analyticKey fingerprints the analytic problem: the buffered
// architecture's canonical JSON, the loss weights, the budget and the
// fixed-point depth (solvecache.AnalyticFingerprint adds the backend tag).
func analyticKey(a *arch.Architecture, cfg core.Config) (solvecache.Key, error) {
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		return solvecache.Key{}, err
	}
	procs := make([]string, 0, len(cfg.LossWeights))
	for p := range cfg.LossWeights {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, p := range procs {
		fmt.Fprintf(&buf, "w:%s=%x;", p, math.Float64bits(cfg.LossWeights[p]))
	}
	return solvecache.AnalyticFingerprint(buf.Bytes(), cfg.Budget, cfg.BoundaryIters), nil
}

// analyticModel is the closed-form view of the buffered architecture: the
// static structure the fixed point iterates over.
type analyticModel struct {
	buffers []string           // sorted buffer IDs
	busOf   map[string]string  // buffer -> serving bus
	muBus   map[string]float64 // bus -> service rate
	clients map[string][]string
	weight  map[string]float64 // rate-weighted loss weight per buffer
	routes  []arch.Route
}

func newAnalyticModel(a *arch.Architecture, cfg core.Config) (*analyticModel, error) {
	clients, err := a.BusClients()
	if err != nil {
		return nil, err
	}
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}
	m := &analyticModel{
		buffers: a.BufferIDs(),
		busOf:   map[string]string{},
		muBus:   map[string]float64{},
		clients: clients,
		weight:  map[string]float64{},
		routes:  routes,
	}
	sort.Strings(m.buffers)
	for bus, ids := range clients {
		b, ok := a.BusByID(bus)
		if !ok {
			return nil, fmt.Errorf("solver: unknown bus %q in client map", bus)
		}
		m.muBus[bus] = b.ServiceRate
		for _, id := range ids {
			m.busOf[id] = bus
		}
	}
	// Loss weight per buffer: rate-weighted over source processors, exactly
	// as the exact path's model construction weighs them.
	wNum := map[string]float64{}
	wDen := map[string]float64{}
	for _, r := range routes {
		w := 1.0
		if lw, ok := cfg.LossWeights[r.Flow.From]; ok {
			w = lw
		}
		for _, h := range r.Hops {
			wNum[h.Buffer] += r.Flow.Rate * w
			wDen[h.Buffer] += r.Flow.Rate
		}
	}
	for _, id := range m.buffers {
		m.weight[id] = 1
		if wDen[id] > 0 && wNum[id] > 0 {
			m.weight[id] = wNum[id] / wDen[id]
		}
	}
	return m, nil
}

// serviceShare returns each buffer's effective service rate given the
// current arrival estimates: the larger of the bus's residual capacity
// (μ − everyone else's load — right when the bus is underloaded and the
// arbiter serves this queue at nearly full rate) and the proportional share
// μ·λ/Λ (the saturated floor). This is the standard two-regime
// approximation for a single server shared by loss queues.
func (m *analyticModel) serviceShare(arrival map[string]float64) map[string]float64 {
	// Sum in sorted buffer order: float addition order must not depend on
	// map iteration, or repeated runs drift in the last ULP (the robust
	// backend's yield counts compare these sums against a threshold).
	busLoad := map[string]float64{}
	for _, id := range m.buffers {
		busLoad[m.busOf[id]] += arrival[id]
	}
	mu := make(map[string]float64, len(m.busOf))
	for id, bus := range m.busOf {
		lam, load, cap := arrival[id], busLoad[bus], m.muBus[bus]
		if lam <= 0 {
			mu[id] = cap
			continue
		}
		residual := cap - (load - lam)
		prop := cap * lam / load
		mu[id] = math.Max(residual, prop)
	}
	return mu
}

// blocking returns the M/M/1/K loss probability of one buffer, 0 for
// traffic-free buffers.
func blocking(lambda, mu float64, k int) float64 {
	if lambda <= 0 {
		return 0
	}
	q, err := queueing.NewMM1K(lambda, mu, k)
	if err != nil {
		// mu and k are constructed positive; unreachable in practice.
		return 1
	}
	return q.Blocking()
}

// converge runs the closed-form boundary fixed point: greedy allocation at
// the current arrival estimates, M/M/1/K blocking at that allocation, route
// re-walk with blocking attenuation, damped update — cfg.BoundaryIters
// passes, mirroring the exact path's bridge-boundary iteration with
// formulas in place of LP solves. It returns the converged arrival
// estimates.
func (m *analyticModel) converge(a *arch.Architecture, cfg core.Config) (map[string]float64, error) {
	arrival, err := a.BufferArrivalRates()
	if err != nil {
		return nil, err
	}
	const damp = 0.7
	for fp := 0; fp < cfg.BoundaryIters; fp++ {
		mu := m.serviceShare(arrival)
		alloc := marginalGreedy(m, arrival, mu, cfg.Budget)
		block := map[string]float64{}
		for _, id := range m.buffers {
			block[id] = blocking(arrival[id], mu[id], alloc[id])
		}
		// Re-derive arrivals along every route, attenuating the carried rate
		// by each upstream buffer's acceptance (an accepted M/M/1/K customer
		// is always eventually served, so acceptance is the whole story).
		next := map[string]float64{}
		for id := range arrival {
			next[id] = 0
		}
		for _, r := range m.routes {
			carried := r.Flow.Rate
			for _, h := range r.Hops {
				next[h.Buffer] += carried
				carried *= 1 - block[h.Buffer]
			}
		}
		for id := range arrival {
			arrival[id] = damp*next[id] + (1-damp)*arrival[id]
		}
	}
	return arrival, nil
}

// analyticSolve sizes the buffered architecture in closed form: converge
// the boundary, spend the budget by marginal greedy, and price the result.
func analyticSolve(a *arch.Architecture, cfg core.Config) (*solvecache.AnalyticSolution, error) {
	m, err := newAnalyticModel(a, cfg)
	if err != nil {
		return nil, err
	}
	arrival, err := m.converge(a, cfg)
	if err != nil {
		return nil, err
	}
	mu := m.serviceShare(arrival)
	alloc := marginalGreedy(m, arrival, mu, cfg.Budget)
	var loss float64
	for _, id := range m.buffers {
		loss += m.weight[id] * arrival[id] * blocking(arrival[id], mu[id], alloc[id])
	}
	return &solvecache.AnalyticSolution{Alloc: alloc, LossRate: loss}, nil
}

// marginalGreedy spends the budget unit by unit on the buffer with the
// largest weighted marginal loss reduction w·λ·(B(K) − B(K+1)), starting
// from the one-unit floor every buffer keeps. Ties break toward the
// lexicographically smaller buffer ID so the allocation is deterministic.
func marginalGreedy(m *analyticModel, arrival, mu map[string]float64, budget int) map[string]int {
	alloc := make(map[string]int, len(m.buffers))
	gain := make([]float64, len(m.buffers))
	for i, id := range m.buffers {
		alloc[id] = 1
		gain[i] = m.weight[id] * arrival[id] * (blocking(arrival[id], mu[id], 1) - blocking(arrival[id], mu[id], 2))
	}
	for left := budget - len(m.buffers); left > 0; left-- {
		best := 0
		for i := 1; i < len(m.buffers); i++ {
			if gain[i] > gain[best] {
				best = i
			}
		}
		id := m.buffers[best]
		alloc[id]++
		k := alloc[id]
		gain[best] = m.weight[id] * arrival[id] * (blocking(arrival[id], mu[id], k) - blocking(arrival[id], mu[id], k+1))
	}
	return alloc
}
