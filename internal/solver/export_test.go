package solver

// Test-only exports. The kernel gates (invariance_test.go) pin internals —
// trajectory-prefix sizing, table-scored losses, worker-invariant robust
// decisions — but must live in the external solver_test package because
// building registry scenarios imports internal/scenario, which imports this
// package. These bridges expose exactly what those gates exercise.

import (
	"context"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/solvecache"
	"socbuf/internal/uncertain"
)

// Screen wraps a converged sampleScreen, opaque outside the package.
type Screen struct{ sc *sampleScreen }

// NewScreen builds the nominal screen of a buffered architecture.
func NewScreen(a *arch.Architecture, cfg core.Config) (*Screen, error) {
	sc, err := newSampleScreen(a, cfg)
	if err != nil {
		return nil, err
	}
	return &Screen{sc}, nil
}

// PerturbedScreens builds the robust backend's CRN per-sample screens
// serially (sample i is a pure function of the spec seed, so the serial
// build matches the pooled one).
func PerturbedScreens(a *arch.Architecture, cfg core.Config) ([]*Screen, error) {
	spec := specOf(cfg)
	sampler := uncertain.NewSampler(spec, len(a.Flows))
	base, err := newAnalyticModel(a, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*Screen, sampler.N())
	for i := range out {
		s := sampler.At(i)
		out[i] = &Screen{screenOf(base.withSample(s.Rate, s.Burst), cfg)}
	}
	return out, nil
}

// Floor is the scenario's buffer count — the 1-unit-per-buffer budget floor.
func (s *Screen) Floor() int { return len(s.sc.m.buffers) }

// SizeAt is the trajectory-prefix sizing the robust ladder reads.
func (s *Screen) SizeAt(budget int) []int { return s.sc.size(budget) }

// GreedyAt re-runs the marginal greedy independently at one budget — the
// per-rung evaluation SizeAt's prefix snapshot replaced.
func (s *Screen) GreedyAt(budget int) []int {
	alloc, _ := s.sc.m.greedy(s.sc.arrival, s.sc.mu, budget, nil)
	return alloc
}

// TableLoss prices an allocation against the precomputed blocking table.
func (s *Screen) TableLoss(alloc []int) float64 { return s.sc.loss(alloc) }

// DirectLoss prices the same allocation by walking the blocking recurrence
// per buffer — the per-call evaluation the table replaced, in the same
// dense summation order.
func (s *Screen) DirectLoss(alloc []int) float64 {
	var loss float64
	for i, k := range alloc {
		loss += s.sc.wl[i] * blocking(s.sc.arrival[i], s.sc.mu[i], k)
	}
	return loss
}

// BudgetLadder is the robust backend's rung fraction ladder.
func BudgetLadder() []float64 { return budgetLadder }

// RobustSolveDirect runs the full robust decision without the simulation
// evaluation or cache wrapping around it.
func RobustSolveDirect(ctx context.Context, a *arch.Architecture, cfg core.Config) (*solvecache.RobustSolution, error) {
	return robustSolve(ctx, a, cfg, specOf(cfg))
}

// AnalyticSolveDirect runs the analytic sizing without cache wrapping.
func AnalyticSolveDirect(a *arch.Architecture, cfg core.Config) (*solvecache.AnalyticSolution, error) {
	return analyticSolve(a, cfg)
}
