//go:build race

package solver_test

// raceEnabled selects the trimmed gate workloads when the race detector is
// on: the full registry-wide acceptance gates run in the plain `go test`
// tier (and locally via `make test`), while `make race` / the -race CI job
// still exercises every backend end to end on the fast scenarios — the
// detector needs code paths, not exhaustive instances, and the full gates
// under race blow the per-package time budget on small machines.
const raceEnabled = true
