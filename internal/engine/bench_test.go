package engine

import (
	"context"
	"sync"
	"testing"
	"time"
)

// BenchmarkAnalyticScreen32 measures the micro-batching acceptance workload
// (ISSUE 9): 32 concurrent analytic screen requests per iteration — distinct
// seeds (so nothing coalesces), one shared analytic content fingerprint per
// burst, a fresh budget each iteration so every burst arrives cold. ns/op is
// the wall time of one 32-request burst; per-solve wall time is ns/op / 32.
// The custom metrics carry the mechanism: `sizings/op` counts analytic-tier
// misses per burst (batched chains the group serially, so it pins this at 1;
// unbatched leaves it to scheduling), `batched/op` counts requests that went
// through the batcher. PERFORMANCE.md "The fleet, measured" narrates the
// numbers.
func BenchmarkAnalyticScreen32(b *testing.B) {
	const clients = 32
	run := func(b *testing.B, window time.Duration) {
		e := New(Config{BatchWindow: window, BatchMax: clients})
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh budget each burst keeps the analytic tier cold across
			// iterations (content fingerprints cover the budget), modulo a
			// cap so calibration runs cannot grow budgets without bound.
			budget := 16 + i%1024
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					req := analyticReq(int64(c + 1))
					req.Budget = budget
					if _, err := e.Solve(context.Background(), req); err != nil {
						b.Error(err)
					}
				}(c)
			}
			wg.Wait()
			if b.Failed() {
				b.FailNow()
			}
		}
		b.StopTimer()
		s := e.Stats()
		b.ReportMetric(float64(s.Cache.AnalyticMisses)/float64(b.N), "sizings/op")
		b.ReportMetric(float64(s.Batched)/float64(b.N), "batched/op")
	}
	b.Run("unbatched", func(b *testing.B) { run(b, 0) })
	b.Run("batched", func(b *testing.B) { run(b, 5*time.Millisecond) })
}
