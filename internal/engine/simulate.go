package engine

import (
	"context"
	"encoding/json"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/policy"
	"socbuf/internal/report"
	"socbuf/internal/sim"
	"socbuf/internal/solver"
)

// SimulateRequest asks for one standalone discrete-event simulation under a
// baseline sizing policy (the socsim workload): no CTMDP solve, optionally
// with timeout drops. Arch/ArchJSON follow the SolveRequest rules. A zero
// Horizon inherits the simulator default (2000); WarmUp and Seed pass
// through as given — 0 is a meaningful value for both (no warm-up window,
// seed zero), so the engine never rewrites them.
type SimulateRequest struct {
	Arch     string          `json:"arch,omitempty"`
	ArchJSON json.RawMessage `json:"archJSON,omitempty"`
	Budget   int             `json:"budget"`
	// Policy is the sizing baseline: "constant" (default), "proportional",
	// or "sized" — the last runs the full methodology under Method first
	// and simulates its chosen allocation.
	Policy string `json:"policy,omitempty"`
	// Method selects the solver backend for the "sized" policy ("exact" |
	// "analytic" | "hybrid"; empty = exact). It is validated on every
	// request — an unknown method fails uniformly (HTTP 400 / CLI exit 2)
	// regardless of the policy — but only "sized" consumes it.
	Method  string  `json:"method,omitempty"`
	Horizon float64 `json:"horizon,omitempty"`
	WarmUp  float64 `json:"warmUp,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// Timeout is the drop threshold: 0 disables, negative derives the
	// mean-residence threshold from a calibration run (policy.TimeoutThreshold).
	Timeout float64 `json:"timeout,omitempty"`
}

// ProcLoss is one processor's loss accounting in a SimulateResult.
type ProcLoss struct {
	Proc      string `json:"proc"`
	Generated int64  `json:"generated"`
	Delivered int64  `json:"delivered"`
	Lost      int64  `json:"lost"`
	Timeout   int64  `json:"timeout"`
}

// SimulateResult is the typed outcome of one simulator run.
type SimulateResult struct {
	Arch   string `json:"arch"`
	Policy string `json:"policy"`
	Budget int    `json:"budget"`
	// DerivedTimeout is the calibrated threshold when the request asked for
	// derivation (Timeout < 0); otherwise the request's own value.
	DerivedTimeout float64    `json:"derivedTimeout,omitempty"`
	Generated      int64      `json:"generated"`
	Delivered      int64      `json:"delivered"`
	Lost           int64      `json:"lost"`
	LossFraction   float64    `json:"lossFraction"`
	TimeoutDrops   int64      `json:"timeoutDrops"`
	PerProc        []ProcLoss `json:"perProc"`
}

// Simulate runs one standalone simulation. The context is checked between
// the calibration and measurement runs (each individual run is a
// short-horizon event loop and runs to completion).
func (e *Engine) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResult, error) {
	e.requests.Add(1)
	rctx, end, err := e.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer end()

	a, err := resolveArch(req.Arch, req.ArchJSON)
	if err != nil {
		return nil, err
	}
	if err := validMethod(req.Method); err != nil {
		return nil, err
	}
	if req.Budget <= 0 {
		return nil, invalidf("budget %d must be positive", req.Budget)
	}

	var alloc arch.Allocation
	var polName string
	switch req.Policy {
	case "", "constant", "proportional":
		a.InsertBridgeBuffers()
		var sizer policy.Sizer = policy.Uniform{}
		if req.Policy == "proportional" {
			sizer = policy.Proportional{}
		}
		if alloc, err = sizer.Allocate(a, req.Budget); err != nil {
			return nil, err
		}
		polName = sizer.Name()
	case "sized":
		// Full methodology under the requested backend; the simulation then
		// measures its chosen allocation on the buffered clone it sized.
		res, err := e.runSolver(rctx, core.Config{
			Arch:    a,
			Budget:  req.Budget,
			Method:  req.Method,
			Workers: e.requestWorkers(0),
		})
		if err != nil {
			return nil, err
		}
		a, alloc = res.Arch, res.Best.Alloc
		polName = "sized/" + solver.Canonical(req.Method)
	default:
		return nil, invalidf("unknown sizing policy %q (constant | proportional | sized)", req.Policy)
	}
	e.simRuns.Add(1)

	horizon, warmUp, seed := req.Horizon, req.WarmUp, req.Seed
	if horizon == 0 {
		horizon = 2000
	}

	thr := req.Timeout
	if thr < 0 {
		calib, err := sim.New(sim.Config{Arch: a, Alloc: alloc, Horizon: horizon, WarmUp: warmUp, Seed: seed})
		if err != nil {
			return nil, err
		}
		cr, err := calib.Run()
		if err != nil {
			return nil, err
		}
		if thr, err = policy.TimeoutThreshold(cr); err != nil {
			return nil, err
		}
	}
	if err := rctx.Err(); err != nil {
		return nil, err
	}

	s, err := sim.New(sim.Config{
		Arch: a, Alloc: alloc, Horizon: horizon, WarmUp: warmUp, Seed: seed, Timeout: thr,
	})
	if err != nil {
		return nil, err
	}
	r, err := s.Run()
	if err != nil {
		return nil, err
	}

	out := &SimulateResult{
		Arch:           a.Name,
		Policy:         polName,
		Budget:         req.Budget,
		DerivedTimeout: thr,
		Generated:      r.TotalGenerated(),
		Delivered:      r.TotalDelivered(),
		Lost:           r.TotalLost(),
		LossFraction:   r.LossFraction(),
	}
	for _, v := range r.LostTimeout {
		out.TimeoutDrops += v
	}
	for _, p := range report.SortedKeys(r.Generated) {
		out.PerProc = append(out.PerProc, ProcLoss{
			Proc:      p,
			Generated: r.Generated[p],
			Delivered: r.Delivered[p],
			Lost:      r.Lost[p],
			Timeout:   r.LostTimeout[p],
		})
	}
	return out, nil
}
