package engine

import (
	"bytes"
	"context"
	"encoding/json"

	"socbuf/internal/placement"
	"socbuf/internal/solvecache"
	"socbuf/internal/solver"
)

// PlacementRequest asks for one buffer-placement run: which bridges get
// decoupling buffers (and of which catalogue type), which are bypassed, and
// the sizing outcome of the winning placements. Architecture selection
// follows the SolveRequest rules (Scenario | Arch | ArchJSON, with non-zero
// request fields overriding a scenario's own values). The JSON shape is the
// /v1/placement request body.
type PlacementRequest struct {
	Scenario string          `json:"scenario,omitempty"`
	Arch     string          `json:"arch,omitempty"`
	ArchJSON json.RawMessage `json:"archJSON,omitempty"`

	Budget     int     `json:"budget,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Seeds      []int64 `json:"seeds,omitempty"`
	Horizon    float64 `json:"horizon,omitempty"`
	WarmUp     float64 `json:"warmUp,omitempty"`
	// Method selects the refinement backend for the frontier survivors
	// ("exact" | "analytic" | "hybrid"; empty inherits the scenario's own
	// method, or the exact default). "analytic" stops at the screening
	// evaluations.
	Method string `json:"method,omitempty"`
	// Types is the insertion catalogue (empty = placement.DefaultCatalogue).
	// The CLI's -buffer-types flag parses into this field.
	Types []placement.BufferType `json:"types,omitempty"`
	// CostBudget caps the summed insertion cost (0 = unbounded).
	CostBudget float64 `json:"costBudget,omitempty"`
	// LatencyWeight trades screened latency against screened loss in the DP
	// objective (0 = the 0.1 default).
	LatencyWeight float64 `json:"latencyWeight,omitempty"`
	// RefineTop bounds how many screened survivors the refinement backend
	// re-evaluates (0 = the default 3).
	RefineTop int  `json:"refineTop,omitempty"`
	Workers   int  `json:"workers,omitempty"`
	UseCache  bool `json:"useCache,omitempty"`

	// OnEval, when non-nil, streams every per-placement solver evaluation as
	// it completes (completion order, from worker goroutines — must be safe
	// for concurrent use). A placement served from the cache performed no
	// evaluations, so OnEval never fires on a cache hit. Not part of the wire
	// shape.
	OnEval func(placement.Point) `json:"-"`
}

// Fingerprint is the placement request's normalised content fingerprint (see
// SolveRequest.Fingerprint): default preset made explicit, worker bound
// dropped, streaming hook excluded by construction. It is a request-level
// routing key, distinct from the cache-tier placementKey (which fingerprints
// the fully normalised placement.Config).
func (r PlacementRequest) Fingerprint() string {
	k := r
	if k.Scenario == "" && len(k.ArchJSON) == 0 && k.Arch == "" {
		k.Arch = "netproc"
	}
	k.Workers = 0
	return hashRequest("placement", k, &r)
}

// placementConfig normalises the request into a placement.Config, reusing
// the SolveRequest scenario-override semantics for every shared knob, then
// applying the placement defaults so equivalent requests (explicit default
// vs. zero value) normalise to one fingerprint.
func (r PlacementRequest) placementConfig() (placement.Config, solveMeta, error) {
	sr := SolveRequest{
		Scenario: r.Scenario, Arch: r.Arch, ArchJSON: r.ArchJSON,
		Budget: r.Budget, Iterations: r.Iterations, Seeds: r.Seeds,
		Horizon: r.Horizon, WarmUp: r.WarmUp, Method: r.Method,
		Workers: r.Workers,
	}
	cfg, meta, err := sr.coreConfig()
	if err != nil {
		return placement.Config{}, meta, err
	}
	if err := validMethod(cfg.Method); err != nil {
		return placement.Config{}, meta, err
	}
	if cfg.Budget <= 0 {
		return placement.Config{}, meta, invalidf("budget %d must be positive", cfg.Budget)
	}
	if len(r.Types) > 0 {
		if err := placement.ValidateCatalogue(r.Types); err != nil {
			return placement.Config{}, meta, invalidf("%v", err)
		}
	}
	pc := placement.Config{
		Arch:          cfg.Arch,
		Types:         r.Types,
		Budget:        cfg.Budget,
		CostBudget:    r.CostBudget,
		LatencyWeight: r.LatencyWeight,
		Method:        solver.Canonical(cfg.Method),
		RefineTop:     r.RefineTop,
		Iterations:    cfg.Iterations,
		Seeds:         cfg.Seeds,
		Horizon:       cfg.Horizon,
		WarmUp:        cfg.WarmUp,
		Workers:       cfg.Workers,
	}
	return pc.WithDefaults(), meta, nil
}

// placementKey fingerprints a normalised placement config: the original
// architecture's canonical JSON plus every identity knob, under the
// placement backend tag (DESIGN.md §7 extends the §4 contract).
func placementKey(pc placement.Config) (solvecache.Key, error) {
	var buf bytes.Buffer
	if err := pc.Arch.WriteJSON(&buf); err != nil {
		return solvecache.Key{}, err
	}
	meta := solvecache.PlacementMeta{
		Budget:        pc.Budget,
		CostBudget:    pc.CostBudget,
		LatencyWeight: pc.LatencyWeight,
		Method:        pc.Method,
		RefineTop:     pc.RefineTop,
		Iterations:    pc.Iterations,
		Seeds:         pc.Seeds,
		Horizon:       pc.Horizon,
		WarmUp:        pc.WarmUp,
	}
	for _, t := range pc.Types {
		meta.TypeNames = append(meta.TypeNames, t.Name)
		meta.TypeCosts = append(meta.TypeCosts, t.Cost)
		meta.TypeDelays = append(meta.TypeDelays, t.Delay)
	}
	return solvecache.PlacementFingerprint(buf.Bytes(), meta), nil
}

// PlacementResult is the typed outcome of one placement run (the
// /v1/placement response body): the scenario identity it ran under, the
// normalised catalogue and knobs, and the embedded placement.Result
// (frontier, chosen placement, DP counters).
type PlacementResult struct {
	Scenario string `json:"scenario,omitempty"`
	Topology string `json:"topology,omitempty"`
	Traffic  string `json:"traffic,omitempty"`
	Budget   int    `json:"budget"`
	// Types is the catalogue the run actually used (the default one when the
	// request left it empty).
	Types         []placement.BufferType `json:"types"`
	CostBudget    float64                `json:"costBudget,omitempty"`
	LatencyWeight float64                `json:"latencyWeight"`
	// Cached marks results served verbatim from the engine cache's placement
	// tier — no solver evaluations ran (and none were streamed).
	Cached bool `json:"cached,omitempty"`
	placement.Result
}

// Placement runs one buffer-placement request: enumerate, prune and screen
// placements with the DP, evaluate the frontier analytically, refine the
// best survivors with the request's backend. With UseCache the whole typed
// result is cached under its placement fingerprint — a repeat request is a
// lookup, not a re-run (placement runs are minutes-scale on big topologies;
// the inner per-placement solver runs additionally share the engine cache's
// sizing tiers).
func (e *Engine) Placement(ctx context.Context, req PlacementRequest) (*PlacementResult, error) {
	e.requests.Add(1)
	rctx, end, err := e.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer end()

	pc, meta, err := req.placementConfig()
	if err != nil {
		return nil, err
	}
	pc.Workers = e.requestWorkers(pc.Workers)
	pc.OnEval = req.OnEval
	pc.RunObserver = e.sweepObserver()

	var key solvecache.Key
	var cache *solvecache.Cache
	if req.UseCache {
		cache = e.Cache()
		pc.Cache = cache
		if key, err = placementKey(pc); err != nil {
			return nil, err
		}
		if b, ok := cache.LookupPlacement(key); ok {
			out := &PlacementResult{}
			if err := json.Unmarshal(b, out); err == nil {
				out.Cached = true
				return out, nil
			}
			// An undecodable payload (never expected: we wrote it) falls
			// through to a fresh run that overwrites it.
		}
	}

	e.placeRuns.Add(1)
	res, err := placement.Place(rctx, pc)
	if err != nil {
		return nil, err
	}
	out := &PlacementResult{
		Scenario:      meta.scenario,
		Topology:      meta.topology,
		Traffic:       meta.traffic,
		Budget:        pc.Budget,
		Types:         pc.Types,
		CostBudget:    pc.CostBudget,
		LatencyWeight: pc.LatencyWeight,
		Result:        *res,
	}
	if cache != nil {
		if b, err := json.Marshal(out); err == nil {
			cache.PutPlacement(key, b)
		}
	}
	return out, nil
}
