package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/experiments"
	"socbuf/internal/scenario"
	"socbuf/internal/solvecache"
)

// fast keeps the real-methodology engine tests cheap enough for -race CI.
const (
	fastIters   = 1
	fastHorizon = 400
	fastWarmUp  = 50
)

var fastSeeds = []int64{1}

// TestEngineSolveMatchesDirectPath is the refactor's parity gate: for every
// preset scenario in the registry, the engine path must reproduce the
// pre-refactor direct path (scenario.CoreConfig → core.Run) exactly — the
// acceptance bar is 1e-8, equality is stronger.
func TestEngineSolveMatchesDirectPath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := New(Config{})
	defer e.Close()
	for _, name := range scenario.Names() {
		t.Run(name, func(t *testing.T) {
			sc, _ := scenario.Get(name)
			cfg, err := sc.CoreConfig()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Iterations = fastIters
			cfg.Seeds = fastSeeds
			cfg.Horizon = fastHorizon
			cfg.WarmUp = fastWarmUp
			direct, err := core.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			got, err := e.Solve(context.Background(), SolveRequest{
				Scenario:   name,
				Iterations: fastIters,
				Seeds:      fastSeeds,
				Horizon:    fastHorizon,
				WarmUp:     fastWarmUp,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got.UniformLoss != direct.BaselineLoss || got.SizedLoss != direct.Best.SimLoss {
				t.Fatalf("losses diverge: engine (%d, %d) vs direct (%d, %d)",
					got.UniformLoss, got.SizedLoss, direct.BaselineLoss, direct.Best.SimLoss)
			}
			if got.Improvement != direct.Improvement() {
				t.Fatalf("improvement diverges: %v vs %v", got.Improvement, direct.Improvement())
			}
			if got.BestIteration != direct.Best.Index || got.CapBinding != direct.Best.CapBinding {
				t.Fatalf("best-iteration metadata diverges: %+v", got)
			}
			if got.Subsystems != len(direct.Subsystems) || got.Scenario != name {
				t.Fatalf("shape metadata diverges: %+v", got)
			}
			for _, row := range got.Alloc {
				if row.Sized != direct.Best.Alloc[row.Buffer] || row.Uniform != direct.BaselineAlloc[row.Buffer] {
					t.Fatalf("allocation row diverges: %+v", row)
				}
			}
			if len(got.Alloc) != len(direct.Best.Alloc) {
				t.Fatalf("allocation rows = %d, want %d", len(got.Alloc), len(direct.Best.Alloc))
			}
		})
	}
}

// TestEngineBudgetSweepMatchesDirectPath pins the sweep path to the direct
// experiments call, including the cached/planned variant.
func TestEngineBudgetSweepMatchesDirectPath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := experiments.Options{Iterations: fastIters, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp, Workers: 2}
	budgets := []int{24, 30}
	direct, err := experiments.BudgetSweep(arch.TwoBusAMBA, budgets, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, useCache := range []bool{false, true} {
		e := New(Config{})
		got, err := e.BudgetSweep(context.Background(), BudgetSweepRequest{
			Arch: "twobus", Budgets: budgets,
			Iterations: fastIters, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp,
			Workers: 2, UseCache: useCache,
		})
		if err != nil {
			t.Fatalf("useCache=%v: %v", useCache, err)
		}
		if got.ArchName == "" || !reflect.DeepEqual(got.Sweep.Budgets, direct.Budgets) {
			t.Fatalf("useCache=%v: sweep shape diverges: %+v", useCache, got.Sweep)
		}
		if (got.Plan != nil) != useCache {
			t.Fatalf("useCache=%v: plan presence = %v", useCache, got.Plan != nil)
		}
		for _, b := range budgets {
			if got.Sweep.Pre[b] != direct.Pre[b] {
				t.Fatalf("useCache=%v: budget %d uniform loss %d, want %d", useCache, b, got.Sweep.Pre[b], direct.Pre[b])
			}
			// Cached solves may move sized losses at roundoff level (the
			// documented solvecache contract); the uncached path must match
			// exactly.
			if !useCache && got.Sweep.Post[b] != direct.Post[b] {
				t.Fatalf("budget %d sized loss %d, want %d", b, got.Sweep.Post[b], direct.Post[b])
			}
		}
		e.Close()
	}
}

// TestEngineScenarioSweepMatchesDirectPath pins the scenario-sweep path —
// including the override plumbing — to the direct experiments call.
func TestEngineScenarioSweepMatchesDirectPath(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	names := []string{"twobus", "chain6"}
	scs, err := scenario.Resolve(names)
	if err != nil {
		t.Fatal(err)
	}
	opt := experiments.Options{Workers: 2}
	for i := range scs {
		scs[i].Budget = 48
		scs[i].Iterations = 2
		scs[i].Seeds = []int64{1}
		scs[i].Horizon = 600
	}
	direct, err := experiments.ScenarioSweep(scs, opt)
	if err != nil {
		t.Fatal(err)
	}

	e := New(Config{})
	defer e.Close()
	got, err := e.ScenarioSweep(context.Background(), ScenarioSweepRequest{
		Scenarios: names, Budget: 48, Iterations: 2, Seeds: []int64{1}, Horizon: 600, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sweep.Points, direct.Points) {
		t.Fatalf("scenario sweep diverges:\nengine: %+v\ndirect: %+v", got.Sweep.Points, direct.Points)
	}
}

// TestEngineCoalescing is the deterministic coalescing gate: N concurrent
// identical solve requests share exactly one underlying methodology run.
// The leader is held at the test hook until every follower has attached, so
// the overlap is guaranteed, not probabilistic.
func TestEngineCoalescing(t *testing.T) {
	const followers = 7
	e := New(Config{})
	defer e.Close()
	release := make(chan struct{})
	e.testHookLeaderSolve = func() { <-release }

	req := SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp}
	type outcome struct {
		res *SolveResult
		err error
	}
	results := make(chan outcome, followers+1)
	run := func() {
		res, err := e.Solve(context.Background(), req)
		results <- outcome{res, err}
	}
	go run() // leader

	// Wait for the leader's flight to register, then attach the followers.
	waitFor(t, "flight registered", func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return len(e.flights) == 1
	})
	for i := 0; i < followers; i++ {
		go run()
	}
	waitFor(t, "followers coalesced", func() bool {
		return e.Stats().Coalesced == followers
	})
	close(release)

	var first *SolveResult
	for i := 0; i < followers+1; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		if first == nil {
			first = out.res
		} else if out.res != first {
			t.Fatalf("coalesced request got a different result instance: %p vs %p", out.res, first)
		}
	}
	s := e.Stats()
	if s.SolveRuns != 1 {
		t.Fatalf("solve runs = %d, want exactly 1", s.SolveRuns)
	}
	if s.Requests != followers+1 || s.Coalesced != followers {
		t.Fatalf("stats = %+v, want %d requests / %d coalesced", s, followers+1, followers)
	}
	// The flight is gone: a later identical request runs fresh.
	if _, err := e.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if s = e.Stats(); s.SolveRuns != 2 {
		t.Fatalf("post-flight request did not run fresh: %+v", s)
	}
}

// TestEngineFollowerCancellation: a coalesced follower whose context dies
// stops waiting without disturbing the leader.
func TestEngineFollowerCancellation(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	release := make(chan struct{})
	e.testHookLeaderSolve = func() { <-release }

	req := SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp}
	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), req)
		leaderDone <- err
	}()
	waitFor(t, "flight registered", func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return len(e.flights) == 1
	})

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctx, req)
		followerDone <- err
	}()
	waitFor(t, "follower coalesced", func() bool { return e.Stats().Coalesced == 1 })
	cancel()
	if err := <-followerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower returned %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader disturbed by follower cancellation: %v", err)
	}
}

// TestEngineLeaderCancelDoesNotKillFollowers: the creator of a flight
// cancelling its own context must not fail the coalesced peers — the flight
// runs to completion for the remaining waiter.
func TestEngineLeaderCancelDoesNotKillFollowers(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	release := make(chan struct{})
	e.testHookLeaderSolve = func() { <-release }

	req := SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp}
	creatorCtx, creatorCancel := context.WithCancel(context.Background())
	creatorDone := make(chan error, 1)
	go func() {
		_, err := e.Solve(creatorCtx, req)
		creatorDone <- err
	}()
	waitFor(t, "flight registered", func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return len(e.flights) == 1
	})

	followerDone := make(chan error, 1)
	var followerRes *SolveResult
	go func() {
		res, err := e.Solve(context.Background(), req)
		followerRes = res
		followerDone <- err
	}()
	waitFor(t, "follower coalesced", func() bool { return e.Stats().Coalesced == 1 })

	creatorCancel()
	if err := <-creatorDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled creator returned %v, want context.Canceled", err)
	}
	close(release)
	if err := <-followerDone; err != nil {
		t.Fatalf("follower failed after creator cancel: %v", err)
	}
	if followerRes == nil || followerRes.UniformLoss <= 0 {
		t.Fatalf("follower result out of shape: %+v", followerRes)
	}
	if s := e.Stats(); s.SolveRuns != 1 {
		t.Fatalf("solve runs = %d, want 1", s.SolveRuns)
	}
}

// TestEngineAllWaitersGoneCancelsFlight: when every waiter abandons a
// flight, the underlying run is cancelled rather than left computing a
// result nobody wants.
func TestEngineAllWaitersGoneCancelsFlight(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	entered := make(chan struct{})
	gate := make(chan struct{})
	e.testHookLeaderSolve = func() { close(entered); <-gate }

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctx, SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp})
		done <- err
	}()
	<-entered
	cancel()
	// The solve is still held at the gate, so the sole waiter leaves first —
	// its departure must cancel the flight context before the solve starts.
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter returned %v", err)
	}
	close(gate)
	// The flight unwinds (cancelled or completed) and deregisters either way.
	waitFor(t, "flight deregistered", func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return len(e.flights) == 0
	})
	// The engine stays fully usable (hook reset: it was one-shot).
	e.testHookLeaderSolve = nil
	if _, err := e.Solve(context.Background(), SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineCoalescingKeyNormalised: requests that differ only in spellings
// of the same identity (implicit vs explicit default preset, worker bound)
// share one flight.
func TestEngineCoalescingKeyNormalised(t *testing.T) {
	base := SolveRequest{Budget: 160, Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp}
	explicit := base
	explicit.Arch = "netproc"
	explicit.Workers = 4
	if base.key() != explicit.key() {
		t.Fatal("implicit-netproc + worker-bound spelling produced a different coalescing key")
	}
	other := base
	other.Budget = 320
	if base.key() == other.key() {
		t.Fatal("different budgets coalesced")
	}
	scen := SolveRequest{Scenario: "twobus"}
	if scen.key() == base.key() {
		t.Fatal("scenario and preset requests coalesced")
	}
}

// TestEngineSimulatePassesZeroKnobsThrough: WarmUp 0 and Seed 0 are
// meaningful simulator inputs and must not be rewritten to defaults (the
// pre-refactor socsim honoured -warmup 0).
func TestEngineSimulatePassesZeroKnobsThrough(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	noWarm, err := e.Simulate(context.Background(), SimulateRequest{Arch: "twobus", Budget: 24, Horizon: 600, WarmUp: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := e.Simulate(context.Background(), SimulateRequest{Arch: "twobus", Budget: 24, Horizon: 600, WarmUp: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The warm-up window discards early events; rewriting 0 → 100 would make
	// these identical.
	if noWarm.Generated == warmed.Generated {
		t.Fatalf("warm-up 0 produced the same totals as warm-up 100 (%d): zero was rewritten", noWarm.Generated)
	}
	if _, err := e.Simulate(context.Background(), SimulateRequest{Arch: "twobus", Budget: 24, Horizon: 600, Seed: 0}); err != nil {
		t.Fatalf("seed 0 rejected: %v", err)
	}
}

// TestEngineJoinAfterLastWaiterLeft: a flight whose last waiter already
// left (context cancelled, deregistration pending) must not capture a new
// live request — the newcomer starts a fresh flight and gets a real result,
// not the dying flight's spurious cancellation.
func TestEngineJoinAfterLastWaiterLeft(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	gate := make(chan struct{})
	firstFlight := true
	var hookMu sync.Mutex
	e.testHookLeaderSolve = func() {
		hookMu.Lock()
		wasFirst := firstFlight
		firstFlight = false
		hookMu.Unlock()
		if wasFirst {
			<-gate // hold the first flight open past its waiter's departure
		}
	}

	req := SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp}
	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := e.Solve(ctx, req)
		abandoned <- err
	}()
	waitFor(t, "first flight registered", func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		return len(e.flights) == 1
	})
	cancel()
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter returned %v", err)
	}

	// The first flight is now waiter-less and cancelled but still registered
	// (held at the gate). A fresh identical request must not inherit it.
	res, err := e.Solve(context.Background(), req)
	close(gate)
	if err != nil {
		t.Fatalf("request joined a dying flight: %v", err)
	}
	if res == nil || res.UniformLoss <= 0 {
		t.Fatalf("result out of shape: %+v", res)
	}
}

// TestEngineCacheRotation: an engine-owned cache past its entry bound is
// swapped for a fresh one between requests, bounding a long-lived server's
// memory; results stay correct across the rotation.
func TestEngineCacheRotation(t *testing.T) {
	e := New(Config{MaxCacheEntries: 1})
	defer e.Close()
	req := SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp, UseCache: true}
	before := e.Cache()
	first, err := e.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	after := e.Cache()
	if before == after {
		s := before.Stats()
		t.Fatalf("cache not rotated past the bound (entries %d + %d joint)", s.Entries, s.JointEntries)
	}
	// The rotated engine still answers, identically.
	second, err := e.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.SizedLoss != second.SizedLoss || first.UniformLoss != second.UniformLoss {
		t.Fatalf("results diverged across rotation: %+v vs %+v", first, second)
	}

	// An adopted cache is never rotated, whatever the bound.
	adopted := solvecache.New()
	e2 := New(Config{Cache: adopted, MaxCacheEntries: 1})
	defer e2.Close()
	if _, err := e2.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if e2.Cache() != adopted {
		t.Fatal("adopted cache was rotated")
	}
}

// TestEngineBusyFlightReclassifiesFollowers: coalesced followers of a
// flight that was rejected at admission count as Busy, not Coalesced — an
// overloaded server's stats must report the true rejection rate.
func TestEngineBusyFlightReclassifiesFollowers(t *testing.T) {
	e := New(Config{MaxInFlight: 1})
	defer e.Close()
	release := make(chan struct{})
	first := true
	var hookMu sync.Mutex
	e.testHookLeaderSolve = func() {
		hookMu.Lock()
		wasFirst := first
		first = false
		hookMu.Unlock()
		if wasFirst {
			<-release
		}
	}
	// Occupy the only slot.
	occupied := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp})
		occupied <- err
	}()
	waitFor(t, "slot taken", func() bool { return e.Stats().InFlight == 1 })

	// Three identical requests under a different key: whatever mix of
	// flight-leading and coalescing they land in, all are rejected and all
	// must end up in Busy with Coalesced back at zero.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Solve(context.Background(), SolveRequest{Scenario: "figure1", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp})
			if !errors.Is(err, ErrBusy) {
				t.Errorf("over-limit request returned %v, want ErrBusy", err)
			}
		}()
	}
	wg.Wait()
	if s := e.Stats(); s.Busy != 3 || s.Coalesced != 0 {
		t.Fatalf("stats = %+v, want 3 busy / 0 coalesced", s)
	}
	close(release)
	if err := <-occupied; err != nil {
		t.Fatal(err)
	}
}

// TestEngineWorkerClamp: a per-request worker bound can lower but never
// exceed the operator's parallelism bound.
func TestEngineWorkerClamp(t *testing.T) {
	e := New(Config{Workers: 2})
	if got := e.requestWorkers(10000); got != 2 {
		t.Fatalf("clamp: %d, want 2", got)
	}
	if got := e.requestWorkers(1); got != 1 {
		t.Fatalf("lowering below the bound: %d, want 1", got)
	}
	if got := e.requestWorkers(0); got != 2 {
		t.Fatalf("default: %d, want 2", got)
	}
	e2 := New(Config{})
	if got := e2.requestWorkers(1 << 20); got > 1024 {
		t.Fatalf("unbounded engine accepted %d workers", got)
	}
}

// TestEngineStatsCountContract: Requests counts received requests; the
// *Runs counters count only validated executions.
func TestEngineStatsCountContract(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	ctx := context.Background()
	e.BudgetSweep(ctx, BudgetSweepRequest{Arch: "twobus"})                      // empty budgets: invalid
	e.ScenarioSweep(ctx, ScenarioSweepRequest{Scenarios: []string{"no-such"}})  // invalid
	e.Simulate(ctx, SimulateRequest{Arch: "twobus", Budget: 24, Policy: "bad"}) // invalid
	e.Solve(ctx, SolveRequest{Scenario: "no-such"})                             // invalid
	if s := e.Stats(); s.Requests != 4 || s.SweepRuns != 0 || s.SimRuns != 0 || s.SolveRuns != 0 {
		t.Fatalf("invalid requests leaked into run counters: %+v", s)
	}
}

// TestEngineMaxInFlight: requests beyond the bound fail fast with ErrBusy
// and are counted; a freed slot admits again.
func TestEngineMaxInFlight(t *testing.T) {
	e := New(Config{MaxInFlight: 1})
	defer e.Close()
	release := make(chan struct{})
	e.testHookLeaderSolve = func() { <-release }

	done := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), SolveRequest{Scenario: "twobus", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp})
		done <- err
	}()
	waitFor(t, "slot taken", func() bool { return e.Stats().InFlight == 1 })

	// A different request (different key — no coalescing) must be rejected.
	_, err := e.Solve(context.Background(), SolveRequest{Scenario: "figure1", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("over-limit request returned %v, want ErrBusy", err)
	}
	if s := e.Stats(); s.Busy != 1 {
		t.Fatalf("busy counter = %d, want 1", s.Busy)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Slot released: admission works again.
	if _, err := e.Solve(context.Background(), SolveRequest{Scenario: "figure1", Iterations: 1, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp}); err != nil {
		t.Fatalf("request after slot release failed: %v", err)
	}
}

// TestEngineShutdownCancelsInFlightSweep is the drain contract: Shutdown
// cancels an in-flight sweep (which returns promptly with the context error
// recorded per point) and blocks until the request has fully unwound — no
// goroutine leaks under -race.
func TestEngineShutdownCancelsInFlightSweep(t *testing.T) {
	e := New(Config{})
	// A long sweep: many points, serial workers, so shutdown strikes
	// mid-flight.
	budgets := make([]int, 50)
	for i := range budgets {
		budgets[i] = 24 + i
	}
	type outcome struct {
		res *BudgetSweepResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.BudgetSweep(context.Background(), BudgetSweepRequest{
			Arch: "twobus", Budgets: budgets,
			Iterations: fastIters, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp,
			Workers: 1,
		})
		done <- outcome{res, err}
	}()
	waitFor(t, "sweep in flight", func() bool { return e.Stats().InFlight == 1 })

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := e.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	out := <-done
	if out.err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v, want context.Canceled in the chain", out.err)
	}
	if out.res != nil && len(out.res.Sweep.Budgets)+len(out.res.Sweep.Failed) != len(budgets) {
		t.Fatalf("cancelled sweep lost points: %d + %d != %d",
			len(out.res.Sweep.Budgets), len(out.res.Sweep.Failed), len(budgets))
	}
	if s := e.Stats(); s.InFlight != 0 {
		t.Fatalf("in-flight after shutdown = %d", s.InFlight)
	}
	// Post-shutdown requests are rejected.
	if _, err := e.Solve(context.Background(), SolveRequest{Scenario: "twobus"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown solve returned %v, want ErrClosed", err)
	}
	if _, err := e.Simulate(context.Background(), SimulateRequest{Arch: "twobus", Budget: 24}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown simulate returned %v, want ErrClosed", err)
	}
}

// TestEngineSimulateMatchesDirect pins the simulator path against a direct
// sim run (the socsim refactor's parity check).
func TestEngineSimulateMatchesDirect(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	got, err := e.Simulate(context.Background(), SimulateRequest{
		Arch: "twobus", Budget: 24, Horizon: 600, WarmUp: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != "constant" || got.Arch == "" {
		t.Fatalf("metadata: %+v", got)
	}
	if got.Generated <= 0 || got.Delivered <= 0 || got.Generated < got.Delivered {
		t.Fatalf("totals out of shape: %+v", got)
	}
	var perProcGen int64
	for _, p := range got.PerProc {
		perProcGen += p.Generated
	}
	if perProcGen != got.Generated {
		t.Fatalf("per-proc rows don't sum to the total: %d vs %d", perProcGen, got.Generated)
	}
	// Determinism: the same request reproduces bit-identical totals.
	again, err := e.Simulate(context.Background(), SimulateRequest{
		Arch: "twobus", Budget: 24, Horizon: 600, WarmUp: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("simulate not deterministic:\n%+v\n%+v", got, again)
	}
}

// TestEngineRequestValidation covers the request-normalisation error paths.
func TestEngineRequestValidation(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	ctx := context.Background()
	cases := []SolveRequest{
		{Scenario: "no-such-scenario"},
		{Arch: "no-such-preset", Budget: 24},
		{Scenario: "twobus", Arch: "twobus"},
		{Arch: "twobus"}, // missing budget
		{ArchJSON: []byte(`{"not":"an arch"`)},
	}
	for i, req := range cases {
		if _, err := e.Solve(ctx, req); err == nil {
			t.Fatalf("case %d accepted: %+v", i, req)
		}
	}
	if _, err := e.Simulate(ctx, SimulateRequest{Arch: "twobus", Budget: 24, Policy: "no-such-policy"}); err == nil {
		t.Fatal("bad sizing policy accepted")
	}
	if _, err := e.BudgetSweep(ctx, BudgetSweepRequest{Arch: "twobus"}); err == nil {
		t.Fatal("empty budget list accepted")
	}
	if _, err := e.ScenarioSweep(ctx, ScenarioSweepRequest{Scenarios: []string{"no-such"}}); err == nil {
		t.Fatal("unknown scenario list accepted")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineMixedMethodSweep: per-point method overrides thread end to end —
// the rows carry each point's backend, the per-backend counters split the
// points, and an unknown method anywhere in the request is an invalid
// request (the CLIs' exit-2 / HTTP-400 class), before any point runs.
func TestEngineMixedMethodSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := New(Config{})
	defer e.Close()
	got, err := e.BudgetSweep(context.Background(), BudgetSweepRequest{
		Arch: "twobus", Budgets: []int{24, 30, 36},
		Iterations: fastIters, Seeds: fastSeeds, Horizon: fastHorizon, WarmUp: fastWarmUp,
		Method: "analytic", Methods: []string{"", "", "exact"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := got.Sweep.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	wantMethods := []string{"analytic", "analytic", ""} // exact reports empty
	for i, row := range rows {
		if row.Method != wantMethods[i] {
			t.Fatalf("row %d method %q, want %q", i, row.Method, wantMethods[i])
		}
		if row.Error != "" || row.UniformLoss <= 0 {
			t.Fatalf("row %d out of shape: %+v", i, row)
		}
	}
	st := e.Stats()
	if st.Backends["analytic"].Solves != 2 || st.Backends["exact"].Solves != 1 {
		t.Fatalf("per-backend solve split wrong: %+v", st.Backends)
	}

	// Unknown method in either field fails validation up front.
	for _, req := range []BudgetSweepRequest{
		{Arch: "twobus", Budgets: []int{24}, Method: "bogus"},
		{Arch: "twobus", Budgets: []int{24}, Methods: []string{"bogus"}},
		{Arch: "twobus", Budgets: []int{24, 30}, Methods: []string{"exact"}}, // misaligned
	} {
		if _, err := e.BudgetSweep(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
			t.Fatalf("request %+v: error %v, want ErrInvalidRequest", req, err)
		}
	}
}

// TestEngineScenarioMethodOverride: the request-level method override
// reaches every scenario of a sweep, and scenario solves report their
// backend in the solve result.
func TestEngineScenarioMethodOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := New(Config{})
	defer e.Close()
	res, err := e.ScenarioSweep(context.Background(), ScenarioSweepRequest{
		Scenarios: []string{"twobus", "figure1"}, Budget: 48,
		Iterations: fastIters, Seeds: fastSeeds, Horizon: fastHorizon,
		Method: "analytic",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Sweep.Points))
	}
	for _, p := range res.Sweep.Points {
		if p.Method != "analytic" {
			t.Fatalf("point %s method %q, want analytic", p.Name, p.Method)
		}
	}
	solve, err := e.Solve(context.Background(), SolveRequest{
		Scenario: "twobus", Iterations: fastIters, Seeds: fastSeeds,
		Horizon: fastHorizon, WarmUp: fastWarmUp, Method: "hybrid",
	})
	if err != nil {
		t.Fatal(err)
	}
	if solve.Method != "hybrid" {
		t.Fatalf("solve method %q, want hybrid", solve.Method)
	}
	if _, err := e.Solve(context.Background(), SolveRequest{Scenario: "twobus", Method: "nope"}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("unknown solve method: %v, want ErrInvalidRequest", err)
	}
	if _, err := e.Simulate(context.Background(), SimulateRequest{Arch: "twobus", Budget: 24, Method: "nope"}); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("unknown simulate method: %v, want ErrInvalidRequest", err)
	}
}
