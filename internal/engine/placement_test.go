package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"socbuf/internal/placement"
	"socbuf/internal/solver"
)

// quickPlacement is a sub-second placement request on the two-bus AMBA
// scenario (one bridge, four options) shared by the engine tests.
func quickPlacement() PlacementRequest {
	return PlacementRequest{
		Scenario:   "twobus",
		Method:     solver.MethodAnalytic,
		Iterations: 1,
		Seeds:      []int64{1},
		Horizon:    400,
		WarmUp:     50,
	}
}

func TestEnginePlacement(t *testing.T) {
	eng := New(Config{})
	defer eng.Close()
	res, err := eng.Placement(context.Background(), quickPlacement())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "twobus" || res.Topology == "" {
		t.Errorf("scenario meta missing: %+v", res)
	}
	if res.Method != solver.MethodAnalytic {
		t.Errorf("method %q", res.Method)
	}
	if res.Candidates != 1 || len(res.Frontier) == 0 {
		t.Errorf("candidates %d, frontier %d", res.Candidates, len(res.Frontier))
	}
	if len(res.Types) != len(placement.DefaultCatalogue()) {
		t.Errorf("empty request catalogue not normalised to the default: %+v", res.Types)
	}
	if res.Cached {
		t.Error("fresh run marked cached")
	}
	s := eng.Stats()
	if s.PlacementRuns != 1 || s.Requests != 1 {
		t.Errorf("stats %+v, want 1 placement run / 1 request", s)
	}
	if s.Backends[solver.MethodAnalytic].Solves == 0 {
		t.Errorf("no analytic backend runs attributed: %+v", s.Backends)
	}
}

// TestEnginePlacementCacheRoundTrip: with UseCache a repeat request is a
// placement-tier lookup — no new run, no evaluation streaming, identical
// payload with the cached flag set.
func TestEnginePlacementCacheRoundTrip(t *testing.T) {
	eng := New(Config{})
	defer eng.Close()
	req := quickPlacement()
	req.UseCache = true
	first, err := eng.Placement(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	evals := 0
	req.OnEval = func(placement.Point) { evals++ }
	second, err := eng.Placement(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second run not served from the placement tier")
	}
	if evals != 0 {
		t.Errorf("cached hit streamed %d evaluations, want 0", evals)
	}
	second.Cached = false
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached result differs:\n%+v\nvs\n%+v", first, second)
	}
	s := eng.Stats()
	if s.PlacementRuns != 1 {
		t.Errorf("placement runs %d, want 1 (second request was a hit)", s.PlacementRuns)
	}
	if s.Cache.PlacementHits != 1 || s.Cache.PlacementEntries != 1 {
		t.Errorf("cache stats %+v, want 1 placement hit / 1 entry", s.Cache)
	}

	// A changed identity knob misses and runs fresh.
	req.OnEval = nil
	req.RefineTop = 5
	third, err := eng.Placement(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("different refineTop served from the cache")
	}
}

func TestEnginePlacementValidation(t *testing.T) {
	eng := New(Config{})
	defer eng.Close()
	cases := []struct {
		name string
		req  PlacementRequest
	}{
		{"unknown scenario", PlacementRequest{Scenario: "no-such"}},
		{"missing budget", PlacementRequest{Arch: "twobus"}},
		{"bad method", PlacementRequest{Scenario: "twobus", Method: "bogus"}},
		{"scenario+arch", PlacementRequest{Scenario: "twobus", Arch: "twobus"}},
		{"bad catalogue", PlacementRequest{Scenario: "twobus", Types: []placement.BufferType{{Name: "", Cost: 1}}}},
	}
	for _, c := range cases {
		if _, err := eng.Placement(context.Background(), c.req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: error %v, want ErrInvalidRequest", c.name, err)
		}
	}
}

// TestEnginePlacementScenarioOverride: non-zero request fields override the
// scenario's own values, and the override is part of the cache identity.
func TestEnginePlacementScenarioOverride(t *testing.T) {
	eng := New(Config{})
	defer eng.Close()
	req := quickPlacement()
	req.Budget = 36
	res, err := eng.Placement(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != 36 {
		t.Errorf("budget %d, want the 36 override", res.Budget)
	}
}

// TestEnginePlacementMatchesDirectPath: the engine adds admission, caching
// and stats around placement.Place but must not change its answer.
func TestEnginePlacementMatchesDirectPath(t *testing.T) {
	eng := New(Config{Workers: 2})
	defer eng.Close()
	engineRes, err := eng.Placement(context.Background(), quickPlacement())
	if err != nil {
		t.Fatal(err)
	}

	sr := SolveRequest{Scenario: "twobus"}
	cfg, _, err := sr.coreConfig()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := placement.Place(context.Background(), placement.Config{
		Arch:       cfg.Arch,
		Budget:     cfg.Budget,
		Method:     solver.MethodAnalytic,
		Iterations: 1,
		Seeds:      []int64{1},
		Horizon:    400,
		WarmUp:     50,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(engineRes.Result, *direct) {
		t.Errorf("engine path diverges from direct placement.Place:\n%+v\nvs\n%+v", engineRes.Result, *direct)
	}
}
