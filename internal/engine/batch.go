package engine

import (
	"context"
	"encoding/hex"
	"sync"
	"time"

	"socbuf/internal/core"
	"socbuf/internal/parallel"
	"socbuf/internal/solver"
)

// batcher implements Config.BatchWindow: cross-request micro-batching of
// analytic methodology runs. Concurrent analytic solves are collected for up
// to one window (a full batch dispatches early), grouped by their analytic
// content fingerprint (solver.AnalyticContentKey), and dispatched through one
// bounded fan-out. Groups run in parallel; within a group the solves chain
// serially, so on a cache-enabled engine every solve after the group's first
// answers its sizing from the analytic cache tier — the amortisation the
// batching buys. Correctness is untouched: every request still executes its
// own solver.Run under its own context, so batched results are bit-identical
// to unbatched ones and one cancelled caller never fails its batch peers.
type batcher struct {
	e      *Engine
	window time.Duration
	max    int

	mu      sync.Mutex
	pending []*batchItem
}

// batchItem is one collected analytic solve. done is closed exactly once,
// after res/err are set.
type batchItem struct {
	ctx   context.Context
	cfg   core.Config
	group string
	done  chan struct{}
	res   *core.Result
	err   error
}

func newBatcher(e *Engine, window time.Duration, max int) *batcher {
	if max <= 0 {
		max = 16
	}
	return &batcher{e: e, window: window, max: max}
}

// eligible reports whether a normalised config takes the batch path: exactly
// the analytic backend (exact and hybrid runs have LP-dominated cost profiles
// the window would only delay; robust fans its own screens internally).
func (b *batcher) eligible(cfg core.Config) bool {
	return b != nil && solver.Canonical(cfg.Method) == solver.MethodAnalytic
}

// run enqueues one analytic solve and waits for its batch to answer it. The
// first arrival of an empty queue arms the window timer; a full queue
// dispatches immediately.
func (b *batcher) run(ctx context.Context, cfg core.Config) (*core.Result, error) {
	group := ""
	if k, ok := solver.AnalyticContentKey(cfg); ok {
		group = hex.EncodeToString(k[:])
	}
	it := &batchItem{ctx: ctx, cfg: cfg, group: group, done: make(chan struct{})}

	b.mu.Lock()
	b.pending = append(b.pending, it)
	if len(b.pending) >= b.max {
		batch := b.pending
		b.pending = nil
		b.mu.Unlock()
		go b.dispatch(batch)
	} else {
		if len(b.pending) == 1 {
			time.AfterFunc(b.window, b.flush)
		}
		b.mu.Unlock()
	}

	<-it.done
	return it.res, it.err
}

// flush dispatches whatever the window collected. A timer firing after a
// full-batch dispatch finds the queue empty and is a no-op; a timer that
// outlives its own batch and fires into the next one merely shortens that
// batch's wait — the window is a maximum, so early dispatch is always sound.
func (b *batcher) flush() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) > 0 {
		b.dispatch(batch)
	}
}

// dispatch groups one batch by content fingerprint and fans the groups out
// through one pool bounded by the engine's worker limit, chaining each
// group's solves serially in arrival order.
func (b *batcher) dispatch(batch []*batchItem) {
	var order []string
	groups := map[string][]*batchItem{}
	for _, it := range batch {
		if _, seen := groups[it.group]; !seen {
			order = append(order, it.group)
		}
		groups[it.group] = append(groups[it.group], it)
	}
	// Errors are delivered per item; the fan-out itself cannot fail.
	_ = parallel.ForEach(len(order), b.e.requestWorkers(0), func(gi int) error {
		for _, it := range groups[order[gi]] {
			b.e.batched.Add(1)
			it.res, it.err = b.e.runSolver(it.ctx, it.cfg)
			close(it.done)
		}
		return nil
	})
}
