package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/experiments"
	"socbuf/internal/report"
	"socbuf/internal/scenario"
	"socbuf/internal/solvecache"
	"socbuf/internal/solver"
)

// Solve runs one methodology request. Concurrent identical requests (equal
// fingerprints) coalesce: one underlying run executes on its own goroutine
// and every caller shares its result — so a thundering herd of equal
// queries costs one solve. A caller whose own ctx is cancelled stops
// waiting and returns ctx.Err(); the shared flight keeps running for the
// remaining waiters and is cancelled only when the last of them leaves (or
// the engine shuts down).
func (e *Engine) Solve(ctx context.Context, req SolveRequest) (*SolveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.requests.Add(1)
	key := req.key()
	e.mu.Lock()
	f, ok := e.flights[key]
	joined := ok && f.join()
	if joined {
		e.coalesced.Add(1)
	} else {
		// No flight, or one whose last waiter already left (join refused):
		// start fresh, replacing any dying registration under the key.
		f = newFlight()
		e.flights[key] = f
		go e.runFlight(key, f, req)
	}
	e.mu.Unlock()

	select {
	case <-f.done:
		// A flight that died at admission served nobody: reclassify its
		// followers from Coalesced to Busy so /v1/stats reports the true
		// rejection rate during overload.
		if joined && (errors.Is(f.err, ErrBusy) || errors.Is(f.err, ErrClosed)) {
			e.coalesced.Add(-1)
			e.busy.Add(1)
		}
		return f.res, f.err
	case <-ctx.Done():
		f.leave()
		return nil, ctx.Err()
	}
}

// runFlight executes one coalesced solve under the flight's own context
// (cancelled when every waiter has left; begin additionally merges in the
// engine lifetime) and publishes the outcome exactly once. Publication and
// deregistration happen in a deferred block that also recovers a panicking
// solve, so the key can never be left pointing at a flight that will not
// complete. The flight is deregistered before publication, so a request
// arriving after completion starts a fresh run — coalescing merges
// concurrent requests only; persistent memoisation is the solve cache's
// job.
func (e *Engine) runFlight(key string, f *flight, req SolveRequest) {
	var res *SolveResult
	var err error
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("engine: solve panicked: %v", p)
		}
		f.cancel() // release the flight context's resources
		e.mu.Lock()
		// Guarded: a dying flight may already have been replaced under this
		// key by a fresh one — never deregister a flight we don't own.
		if e.flights[key] == f {
			delete(e.flights, key)
		}
		e.mu.Unlock()
		f.res, f.err = res, err
		close(f.done)
	}()
	rctx, end, berr := e.begin(f.ctx)
	if berr != nil {
		err = berr
		return
	}
	defer end()
	if e.testHookLeaderSolve != nil {
		e.testHookLeaderSolve()
	}
	res, err = e.solve(rctx, req)
}

// solve is the uncoalesced methodology run.
func (e *Engine) solve(ctx context.Context, req SolveRequest) (*SolveResult, error) {
	cfg, meta, err := req.coreConfig()
	if err != nil {
		return nil, err
	}
	if err := validMethod(cfg.Method); err != nil {
		return nil, err
	}
	if cfg.Budget <= 0 {
		return nil, invalidf("budget %d must be positive", cfg.Budget)
	}
	if req.UseCache {
		cfg.Cache = e.Cache()
	}
	cfg.Workers = e.requestWorkers(cfg.Workers)
	e.solveRuns.Add(1)
	var res *core.Result
	if e.batch.eligible(cfg) {
		res, err = e.batch.run(ctx, cfg)
	} else {
		res, err = e.runSolver(ctx, cfg)
	}
	if err != nil {
		return nil, err
	}
	return newSolveResult(meta, solver.Canonical(cfg.Method), res), nil
}

// validMethod resolves a backend name, tagging failures as invalid
// requests so every layer reports them uniformly (CLI exit 2, HTTP 400).
func validMethod(name string) error {
	if _, err := solver.Resolve(name); err != nil {
		return invalidf("%v", err)
	}
	return nil
}

// cacheHitCount folds a cache snapshot's hit counters (all tiers) for the
// per-backend delta attribution.
func cacheHitCount(s solvecache.Stats) int64 {
	return s.Hits + s.WarmStarts + s.JointHits + s.AnalyticHits + s.RobustHits
}

// runSolver executes one methodology run through the backend registry,
// recording per-backend counters: one solve, its wall time, and — when the
// run shares the engine cache — the cache-hit delta it observed.
func (e *Engine) runSolver(ctx context.Context, cfg core.Config) (*core.Result, error) {
	method := solver.Canonical(cfg.Method)
	var before int64
	if cfg.Cache != nil {
		before = cacheHitCount(cfg.Cache.Stats())
	}
	start := time.Now()
	res, err := solver.Run(ctx, cfg)
	wall := time.Since(start)
	var hits int64
	if cfg.Cache != nil {
		hits = cacheHitCount(cfg.Cache.Stats()) - before
	}
	e.recordBackend(method, 1, wall, hits)
	return res, err
}

// newSolveResult shapes a methodology outcome for clients.
func newSolveResult(meta solveMeta, method string, res *core.Result) *SolveResult {
	out := &SolveResult{
		Arch:             res.Arch.Name,
		Scenario:         meta.scenario,
		Topology:         meta.topology,
		Traffic:          meta.traffic,
		Method:           method,
		Budget:           res.BaselineAlloc.Total(),
		Iterations:       len(res.Iterations),
		Subsystems:       len(res.Subsystems),
		UniformLoss:      res.BaselineLoss,
		SizedLoss:        res.Best.SimLoss,
		Improvement:      res.Improvement(),
		BestIteration:    res.Best.Index,
		CapBinding:       res.Best.CapBinding,
		RandomisedStates: res.Best.RandomisedStates,
		Robust:           res.Robust,
	}
	for _, id := range report.SortedKeys(res.Best.Alloc) {
		out.Alloc = append(out.Alloc, AllocRow{
			Buffer:  id,
			Uniform: res.BaselineAlloc[id],
			Sized:   res.Best.Alloc[id],
		})
	}
	return out
}

// BudgetSweep fans the methodology across the request's budgets. With
// UseCache it plans and prewarms first (one cold solve per structural
// class) and hands the plan back alongside the sweep. Partial failures
// follow the experiments contract: the result carries every successful
// point, the error joins the per-point failures.
func (e *Engine) BudgetSweep(ctx context.Context, req BudgetSweepRequest) (*BudgetSweepResult, error) {
	e.requests.Add(1)
	rctx, end, err := e.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer end()

	if len(req.Budgets) == 0 {
		return nil, invalidf("empty budget list")
	}
	if err := validMethod(req.Method); err != nil {
		return nil, err
	}
	if len(req.Methods) != 0 && len(req.Methods) != len(req.Budgets) {
		return nil, invalidf("%d per-point methods for %d budgets", len(req.Methods), len(req.Budgets))
	}
	for _, m := range req.Methods {
		if m == "" {
			continue // inherits the default method
		}
		if err := validMethod(m); err != nil {
			return nil, err
		}
	}
	a, err := resolveArch(req.Arch, req.ArchJSON)
	if err != nil {
		return nil, err
	}
	e.sweepRuns.Add(1)
	opt := experiments.Options{
		Iterations:   req.Iterations,
		Seeds:        req.Seeds,
		Horizon:      req.Horizon,
		WarmUp:       req.WarmUp,
		Workers:      e.requestWorkers(req.Workers),
		OnBudgetRow:  req.OnRow,
		Method:       req.Method,
		PointMethods: req.Methods,
		Uncertainty:  req.Uncertainty,
		Observer:     e.sweepObserver(),
	}
	if req.UseCache {
		opt.Cache = e.Cache()
	}
	// Fresh clone per point, per the BudgetSweep contract.
	res, plan, err := experiments.SweepWithPlanCtx(rctx, nil, func() *arch.Architecture { return a.Clone() }, req.Budgets, opt)
	if res == nil {
		return nil, err
	}
	return &BudgetSweepResult{ArchName: a.Name, Sweep: res, Plan: plan}, err
}

// sweepObserver records each sweep point's solve under its backend. Cache
// hits are not attributed per point (points share the cache concurrently);
// they remain visible in the request-level cache counters.
func (e *Engine) sweepObserver() func(method string, wall time.Duration) {
	return func(method string, wall time.Duration) {
		e.recordBackend(method, 1, wall, 0)
	}
}

// ScenarioSweep fans the methodology over the requested registry scenarios,
// applying the override semantics the experiments CLI used to hand-wire:
// explicit overrides beat both Quick and the scenarios' own values.
func (e *Engine) ScenarioSweep(ctx context.Context, req ScenarioSweepRequest) (*ScenarioSweepResult, error) {
	e.requests.Add(1)
	rctx, end, err := e.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer end()

	if err := validMethod(req.Method); err != nil {
		return nil, err
	}
	scs, err := scenario.Resolve(req.Scenarios)
	if err != nil {
		return nil, invalidf("%v", err)
	}
	e.sweepRuns.Add(1)
	opt := experiments.Options{
		Workers:       e.requestWorkers(req.Workers),
		OnScenarioRow: req.OnRow,
		Uncertainty:   req.Uncertainty,
		Observer:      e.sweepObserver(),
	}
	if req.UseCache {
		opt.Cache = e.Cache()
	}
	if req.Quick {
		opt.Iterations, opt.Seeds, opt.Horizon = 3, []int64{1, 2}, 1200
	}
	for i := range scs {
		if req.Budget > 0 {
			scs[i].Budget = req.Budget
		}
		if req.Method != "" {
			scs[i].Method = req.Method
		}
		if req.Iterations > 0 {
			scs[i].Iterations = req.Iterations
		}
		if req.Horizon > 0 {
			scs[i].Horizon = req.Horizon
		}
		if len(req.Seeds) > 0 {
			scs[i].Seeds = req.Seeds
		}
		if req.Quick {
			// Zero the scenario's own knobs so opt's quick settings apply,
			// except where an explicit override already won.
			if req.Iterations == 0 {
				scs[i].Iterations = 0
			}
			if len(req.Seeds) == 0 {
				scs[i].Seeds = nil
			}
			if req.Horizon == 0 {
				scs[i].Horizon = 0
			}
		}
	}
	res, err := experiments.ScenarioSweepCtx(rctx, scs, opt)
	if res == nil {
		return nil, err
	}
	return &ScenarioSweepResult{Sweep: res}, err
}

// requestWorkers resolves a per-request worker bound against the engine
// default, clamped so one admitted request can never exceed the operator's
// parallelism bound (the engine default when set, GOMAXPROCS otherwise) —
// a client asking for 10000 workers gets the server's bound, not a fork
// bomb. Requests may go below the bound (e.g. 1 = serial).
func (e *Engine) requestWorkers(n int) int {
	limit := e.workers
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if n <= 0 || n > limit {
		return limit
	}
	return n
}

// WriteScenarioList renders the scenario registry — re-exported so clients
// need no direct experiments dependency.
func WriteScenarioList(w io.Writer) error {
	return experiments.WriteScenarioList(w)
}

// WriteCacheStats renders the engine-owned cache's counters in the shared
// report format (the body of the CLIs' -cache-stats flag).
func (e *Engine) WriteCacheStats(w io.Writer) error {
	return experiments.WriteCacheStats(w, e.Cache().Stats())
}
