package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/experiments"
	"socbuf/internal/scenario"
	"socbuf/internal/uncertain"
)

// SolveRequest asks for one methodology run — the paper's pure function from
// (architecture, traffic, budget) to a sizing policy. Exactly one of
// Scenario, Arch or ArchJSON selects the architecture:
//
//   - Scenario names a registry scenario; its topology, traffic model and
//     solver knobs apply, and any non-zero request field overrides the
//     scenario's own value (the CLI's explicit-flags-win semantics);
//   - Arch names a preset ("figure1" | "twobus" | "netproc"; empty defaults
//     to "netproc"); Budget is then required;
//   - ArchJSON carries an inline architecture in the arch.ReadJSON format.
//
// The JSON shape of this struct is the /v1/solve request body.
type SolveRequest struct {
	Scenario string          `json:"scenario,omitempty"`
	Arch     string          `json:"arch,omitempty"`
	ArchJSON json.RawMessage `json:"archJSON,omitempty"`

	Budget     int     `json:"budget,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Seeds      []int64 `json:"seeds,omitempty"`
	Horizon    float64 `json:"horizon,omitempty"`
	WarmUp     float64 `json:"warmUp,omitempty"`
	// Method selects the solver backend ("exact" | "analytic" | "hybrid" |
	// "robust"; empty inherits the scenario's own method, or the exact
	// default). Unknown names fail request validation (HTTP 400 / CLI exit
	// 2) with the uniform message listing the valid methods.
	Method string `json:"method,omitempty"`
	// Uncertainty attaches a traffic-uncertainty spec for the robust
	// backend (nil inherits the scenario's spec, or that backend's
	// defaults). It is part of the coalescing identity.
	Uncertainty *uncertain.Spec `json:"uncertainty,omitempty"`
	// Refine enables the post-LP stationary refinement
	// (core.Config.RefineStationary).
	Refine bool `json:"refine,omitempty"`
	// Workers bounds this request's worker pool (0 inherits the engine
	// default). Results are identical for every worker count.
	Workers int `json:"workers,omitempty"`
	// UseCache routes every solve through the engine's shared cache.
	UseCache bool `json:"useCache,omitempty"`
}

// key is the coalescing fingerprint: a content-addressed hash of the
// request's canonical JSON serialisation (struct field order is fixed, so
// the encoding is deterministic). Two requests with equal keys ask for the
// same mathematical problem under the same options and may share one
// underlying run — the request-level analogue of the solvecache fingerprint
// contract (DESIGN.md §4), with the finer-grained sub-model dedup still
// happening inside solvecache for cache-enabled requests.
//
// Two identities are normalised before hashing: the default preset name is
// made explicit (an empty arch selection IS "netproc", so {"budget":160}
// and {"arch":"netproc","budget":160} coalesce), and the worker bound is
// dropped (results are identical for every worker count by the repo-wide
// contract, so requests differing only there may share a run). Everything
// else — including UseCache, which can move results at roundoff level — is
// identity.
func (r SolveRequest) key() string {
	k := r
	if k.Scenario == "" && len(k.ArchJSON) == 0 && k.Arch == "" {
		k.Arch = "netproc"
	}
	k.Workers = 0
	return hashRequest("solve", k, &r)
}

// Fingerprint is the request's normalised content fingerprint — the same
// identity Solve coalesces on, exported so a routing layer can shard by it:
// sending equal-fingerprint requests to one backend is exactly what lets
// coalescing and cache locality survive scale-out (DESIGN.md §10). The four
// request types fingerprint in disjoint domains (a solve and a placement of
// the same architecture never collide).
func (r SolveRequest) Fingerprint() string { return r.key() }

// Fingerprint is the sweep request's normalised content fingerprint (see
// SolveRequest.Fingerprint): default preset made explicit, worker bound
// dropped, streaming hook excluded by construction.
func (r BudgetSweepRequest) Fingerprint() string {
	k := r
	if len(k.ArchJSON) == 0 && k.Arch == "" {
		k.Arch = "netproc"
	}
	k.Workers = 0
	return hashRequest("sweep-budget", k, &r)
}

// Fingerprint is the scenario sweep's normalised content fingerprint (see
// SolveRequest.Fingerprint).
func (r ScenarioSweepRequest) Fingerprint() string {
	k := r
	k.Workers = 0
	return hashRequest("sweep-scenario", k, &r)
}

// hashRequest renders one normalised request as a domain-tagged
// content-addressed hex key. The canonical JSON serialisation is
// deterministic (struct field order is fixed); the tag keeps the four
// request types' fingerprint spaces disjoint.
func hashRequest(tag string, normalised any, orig any) string {
	b, err := json.Marshal(normalised)
	if err != nil {
		// Unreachable: the structs contain only marshalable fields. Fall
		// back to a never-coalescing sentinel rather than panicking.
		return fmt.Sprintf("unkeyed:%p", orig)
	}
	sum := sha256.Sum256(append([]byte(tag+":"), b...))
	return hex.EncodeToString(sum[:])
}

// solveMeta carries the scenario identity a solve ran under, for the result.
type solveMeta struct {
	scenario, topology, traffic string
}

// invalidf builds an ErrInvalidRequest-tagged error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("engine: %w: %s", ErrInvalidRequest, fmt.Sprintf(format, args...))
}

// coreConfig normalises the request into a methodology configuration,
// applying the scenario-override semantics.
func (r SolveRequest) coreConfig() (core.Config, solveMeta, error) {
	var meta solveMeta
	if r.Scenario != "" {
		if r.Arch != "" || len(r.ArchJSON) > 0 {
			return core.Config{}, meta, invalidf("scenario %q cannot be combined with arch/archJSON", r.Scenario)
		}
		sc, ok := scenario.Get(r.Scenario)
		if !ok {
			return core.Config{}, meta, invalidf("unknown scenario %q (have %v)", r.Scenario, scenario.Names())
		}
		cfg, err := sc.CoreConfig()
		if err != nil {
			return core.Config{}, meta, err
		}
		meta = solveMeta{scenario: sc.Name, topology: sc.Topology.String(), traffic: sc.Traffic.String()}
		// Non-zero request fields override the scenario's own values.
		if r.Budget > 0 {
			cfg.Budget = r.Budget
		}
		if r.Iterations > 0 {
			cfg.Iterations = r.Iterations
		}
		if len(r.Seeds) > 0 {
			cfg.Seeds = r.Seeds
		}
		if r.Horizon > 0 {
			cfg.Horizon = r.Horizon
		}
		if r.WarmUp > 0 {
			cfg.WarmUp = r.WarmUp
		}
		if r.Method != "" {
			cfg.Method = r.Method
		}
		if r.Uncertainty != nil {
			cfg.Uncertainty = r.Uncertainty
		}
		cfg.RefineStationary = r.Refine
		cfg.Workers = r.Workers
		return cfg, meta, nil
	}

	a, err := resolveArch(r.Arch, r.ArchJSON)
	if err != nil {
		return core.Config{}, meta, err
	}
	return core.Config{
		Arch:             a,
		Budget:           r.Budget,
		Iterations:       r.Iterations,
		Seeds:            r.Seeds,
		Horizon:          r.Horizon,
		WarmUp:           r.WarmUp,
		Method:           r.Method,
		Uncertainty:      r.Uncertainty,
		RefineStationary: r.Refine,
		Workers:          r.Workers,
	}, meta, nil
}

// resolveArch builds the requested architecture: an inline JSON definition,
// or a preset by name (empty = the network processor, the CLI default).
func resolveArch(name string, raw json.RawMessage) (*arch.Architecture, error) {
	if len(raw) > 0 {
		if name != "" {
			return nil, invalidf("arch %q and archJSON are mutually exclusive", name)
		}
		a, err := arch.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			return nil, invalidf("archJSON: %v", err)
		}
		return a, nil
	}
	switch name {
	case "", "netproc":
		return arch.NetworkProcessor(), nil
	case "figure1":
		return arch.Figure1(), nil
	case "twobus":
		return arch.TwoBusAMBA(), nil
	default:
		return nil, invalidf("unknown architecture %q (presets: figure1, twobus, netproc)", name)
	}
}

// AllocRow is one buffer's uniform-vs-sized allocation in a SolveResult.
type AllocRow struct {
	Buffer  string `json:"buffer"`
	Uniform int    `json:"uniform"`
	Sized   int    `json:"sized"`
}

// SolveResult is the typed outcome of one methodology run — everything the
// socbuf CLI prints, in machine-readable form (the /v1/solve response body).
// Results published by the engine are immutable: coalesced requests share
// one instance.
type SolveResult struct {
	Arch     string `json:"arch"`
	Scenario string `json:"scenario,omitempty"`
	Topology string `json:"topology,omitempty"`
	Traffic  string `json:"traffic,omitempty"`
	// Method is the solver backend that produced this result (canonical
	// name; "exact" for the default path).
	Method string `json:"method"`
	Budget int    `json:"budget"`
	// Iterations is the number of methodology iterations that ran.
	Iterations int `json:"iterations"`
	// Subsystems counts the linear subsystems after buffer insertion.
	Subsystems int `json:"subsystems"`
	// UniformLoss and SizedLoss are the total simulated losses before/after
	// CTMDP sizing; Improvement is 1 − sized/uniform.
	UniformLoss int64   `json:"uniformLoss"`
	SizedLoss   int64   `json:"sizedLoss"`
	Improvement float64 `json:"improvement"`
	// BestIteration is the index of the winning iteration.
	BestIteration    int  `json:"bestIteration"`
	CapBinding       bool `json:"capBinding"`
	RandomisedStates int  `json:"randomisedStates"`
	// Alloc pairs every buffer's uniform and sized capacity, sorted by
	// buffer ID.
	Alloc []AllocRow `json:"alloc"`
	// Robust carries the chance-constraint report of a robust-backend run
	// (empirical yield, Wilson bound, budget used). Nil for other backends.
	Robust *uncertain.Report `json:"robust,omitempty"`
}

// BudgetSweepRequest fans the methodology across budgets on one architecture
// (engine analogue of `socbuf -sweep` / `experiments -sweep`). Arch/ArchJSON
// follow the SolveRequest rules. The JSON shape is the /v1/sweep/budget
// request body.
type BudgetSweepRequest struct {
	Arch     string          `json:"arch,omitempty"`
	ArchJSON json.RawMessage `json:"archJSON,omitempty"`
	Budgets  []int           `json:"budgets"`

	Iterations int     `json:"iterations,omitempty"`
	Seeds      []int64 `json:"seeds,omitempty"`
	Horizon    float64 `json:"horizon,omitempty"`
	WarmUp     float64 `json:"warmUp,omitempty"`
	// Method is the default solver backend for every point; Methods
	// optionally overrides it point by point, aligned index-for-index with
	// Budgets (empty entries inherit Method). A sweep can thus screen most
	// points analytically and refine only the Pareto knee exactly.
	Method  string   `json:"method,omitempty"`
	Methods []string `json:"methods,omitempty"`
	// Uncertainty applies one traffic-uncertainty spec to every point that
	// runs the robust backend.
	Uncertainty *uncertain.Spec `json:"uncertainty,omitempty"`
	Workers     int             `json:"workers,omitempty"`
	// UseCache shares the engine cache across all points and plans/prewarms
	// the sweep first (experiments.CachedBudgetSweep).
	UseCache bool `json:"useCache,omitempty"`

	// OnRow, when non-nil, receives each point's row as it completes —
	// completion order, from worker goroutines (the callback must be safe
	// for concurrent use). socbufd streams NDJSON through it. Not part of
	// the wire shape.
	OnRow func(experiments.BudgetRow) `json:"-"`
}

// BudgetSweepResult pairs the sweep outcome with the plan that prewarmed it
// (nil when the request did not use the cache).
type BudgetSweepResult struct {
	ArchName string
	Sweep    *experiments.BudgetSweepResult
	Plan     *experiments.SweepPlan
}

// ScenarioSweepRequest fans the methodology over registry scenarios (engine
// analogue of `experiments scenario-sweep`). Empty Scenarios means the whole
// registry. Non-zero override fields replace every scenario's own value;
// Quick additionally trims iterations/seeds/horizon to the smoke settings
// for scenarios without explicit overrides. The JSON shape is the
// /v1/sweep/scenario request body.
type ScenarioSweepRequest struct {
	Scenarios []string `json:"scenarios,omitempty"`

	Budget     int     `json:"budget,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Seeds      []int64 `json:"seeds,omitempty"`
	Horizon    float64 `json:"horizon,omitempty"`
	// Method overrides every scenario's solver backend (empty keeps each
	// scenario's own method, or the exact default).
	Method string `json:"method,omitempty"`
	// Uncertainty overrides every scenario's traffic-uncertainty spec
	// (nil keeps each scenario's own, or the robust defaults).
	Uncertainty *uncertain.Spec `json:"uncertainty,omitempty"`
	Quick       bool            `json:"quick,omitempty"`
	Workers     int             `json:"workers,omitempty"`
	UseCache    bool            `json:"useCache,omitempty"`

	// OnRow streams per-scenario rows as they complete; see
	// BudgetSweepRequest.OnRow for the contract. Not part of the wire shape.
	OnRow func(experiments.ScenarioRow) `json:"-"`
}

// ScenarioSweepResult wraps the sweep outcome.
type ScenarioSweepResult struct {
	Sweep *experiments.ScenarioSweepResult
}
