// Package engine is the unified solve service behind every entry point of
// the repository: one long-lived Engine owns the shared solve cache
// (internal/solvecache), the worker-pool bound, request coalescing and
// cancellation, and answers typed requests — single methodology solves,
// budget sweeps, scenario sweeps, and plain simulator runs. The CLIs
// (cmd/socbuf, cmd/experiments, cmd/socsim) and the HTTP service
// (cmd/socbufd) are thin clients; the engine is the only place that composes
// scenario → architecture → solve → report.
//
// Request lifecycle (DESIGN.md §5 records the full contract):
//
//  1. admission — a closed engine rejects with ErrClosed; when
//     Config.MaxInFlight is set and that many requests are already
//     executing, admission fails fast with ErrBusy (callers translate to
//     backpressure, e.g. HTTP 503);
//  2. coalescing (Solve only) — concurrent identical requests, keyed by a
//     content-addressed fingerprint of the normalised request, share one
//     underlying methodology run: the first arrival registers a flight that
//     executes on its own goroutine, later arrivals join it, and all receive
//     the same *SolveResult (immutable once published — treat as read-only).
//     Waiters are refcounted: the run is cancelled only when the last one
//     leaves, so one disconnecting client never fails its coalesced peers;
//  3. execution — the request runs under a context derived from BOTH the
//     caller's context and the engine's lifetime, so either a client
//     disconnect or Shutdown cancels it; cancellation threads down through
//     experiments → core → internal/parallel, which never abandons
//     goroutines;
//  4. completion — results come back typed (SolveResult, BudgetSweepResult,
//     …) with machine-readable JSON shapes, and sweep requests can stream
//     per-point rows as they complete via their OnRow hooks.
//
// Determinism: the engine adds no scheduling of its own — it delegates to
// the same experiments/core code paths the CLIs called before it existed, so
// engine-path results are identical to the direct-path results for every
// worker count (TestEngineSolveMatchesDirectPath pins this).
package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"socbuf/internal/solvecache"
)

// ErrBusy is returned when Config.MaxInFlight requests are already executing
// and a new one arrives. The request was not started; retrying later is
// safe.
var ErrBusy = errors.New("engine: too many in-flight requests")

// ErrClosed is returned by requests that arrive at (or are coalesced into)
// an engine that has been shut down.
var ErrClosed = errors.New("engine: shut down")

// ErrInvalidRequest tags request-normalisation failures (unknown scenario or
// preset, conflicting fields, missing budget…), so service layers can
// distinguish caller mistakes (HTTP 400) from solver failures (HTTP 500).
// Match with errors.Is.
var ErrInvalidRequest = errors.New("invalid request")

// Config parameterises a new Engine. The zero value is usable: fresh cache,
// GOMAXPROCS workers, no in-flight bound.
type Config struct {
	// Workers is the default worker-pool bound for requests that do not set
	// their own (0 = GOMAXPROCS, 1 = serial). Per-request Workers fields
	// override it.
	Workers int
	// MaxInFlight bounds concurrently executing requests; 0 means unbounded.
	// Requests beyond the bound fail fast with ErrBusy rather than queueing
	// — the service layer turns that into backpressure. Coalesced followers
	// do not consume slots (they wait on the leader's flight).
	MaxInFlight int
	// Cache, when non-nil, is adopted instead of a fresh solve cache. All
	// requests with UseCache set share the engine's cache fleet-wide. An
	// adopted cache is never rotated (the caller owns its lifetime).
	Cache *solvecache.Cache
	// MaxCacheEntries bounds an engine-owned cache in a long-lived process:
	// when the stored solution count exceeds it, the cache is swapped for a
	// fresh one after the current request ends (solvecache itself is
	// unbounded by design — fine for one sweep, not for a server fed
	// client-chosen inline architectures forever). Rotation is safe: cached
	// payloads are pure functions of their fingerprints, so dropping them
	// costs warm starts, never correctness. 0 means unbounded; ignored for
	// adopted caches.
	MaxCacheEntries int
	// RemoteCache, when non-nil, attaches a shared remote store behind the
	// engine cache's exact/analytic/robust/placement tiers (DESIGN.md §10):
	// local misses consult it, fresh payloads are written behind it. The
	// attachment survives cache rotation. The engine does not own the store's
	// lifetime (callers close a RemoteStore themselves).
	RemoteCache solvecache.Store
	// BatchWindow enables cross-request micro-batching of analytic solves
	// (0 = disabled): an analytic methodology run waits up to this long for
	// concurrent analytic requests to arrive, then the collected batch is
	// grouped by analytic content fingerprint and dispatched through one
	// fan-out — same-content solves chain serially so all but the first are
	// answered from the analytic cache tier. Batched results are
	// bit-identical to unbatched ones (every request still executes its own
	// methodology run); the window only trades a bounded latency floor for
	// amortised setup and cache traffic under concurrency.
	BatchWindow time.Duration
	// BatchMax bounds one batch (default 16 when BatchWindow is set): a full
	// batch dispatches immediately without waiting out the window.
	BatchMax int
}

// Engine is the long-lived solve service. Create with New; an Engine must
// not be copied. All methods are safe for concurrent use.
type Engine struct {
	cache      *solvecache.Cache // guarded by mu (rotation swaps it)
	ownsCache  bool
	cacheLimit int
	remote     solvecache.Store // re-attached to every rotated cache
	workers    int
	sem        chan struct{} // nil = unbounded
	batch      *batcher      // nil = analytic micro-batching disabled

	baseCtx context.Context // cancelled on Shutdown; every request derives from it
	cancel  context.CancelFunc

	mu      sync.Mutex
	closed  bool
	wg      sync.WaitGroup     // in-flight requests
	flights map[string]*flight // coalescing table, keyed by request fingerprint

	requests   atomic.Int64
	coalesced  atomic.Int64
	batched    atomic.Int64
	rotCounter atomic.Int64 // amortises the cache-rotation size scan
	solveRuns  atomic.Int64
	sweepRuns  atomic.Int64
	simRuns    atomic.Int64
	placeRuns  atomic.Int64
	busy       atomic.Int64
	inFlight   atomic.Int64

	// backends accumulates per-solver-backend counters (guarded by bmu):
	// methodology runs executed, total wall time, and cache-hit deltas.
	bmu      sync.Mutex
	backends map[string]*backendAcc

	// testHookLeaderSolve, when non-nil, runs in the flight leader after the
	// flight is registered and before the underlying solve starts. Tests use
	// it to hold a flight open deterministically while followers attach.
	testHookLeaderSolve func()
}

// flight is one in-progress coalesced solve. done is closed exactly once,
// after res/err are set; both are immutable afterwards. The flight runs on
// its own goroutine under its own context, with the waiters refcounted: it
// is cancelled only when every interested request has gone away (or the
// engine shuts down), so one disconnecting client never fails its coalesced
// peers.
type flight struct {
	done chan struct{}
	res  *SolveResult
	err  error

	mu      sync.Mutex
	waiters int
	ctx     context.Context
	cancel  context.CancelFunc
}

// newFlight builds a flight with its creator already registered as a waiter.
func newFlight() *flight {
	ctx, cancel := context.WithCancel(context.Background())
	return &flight{done: make(chan struct{}), waiters: 1, ctx: ctx, cancel: cancel}
}

// join registers one more waiter. It refuses (returns false) when the last
// waiter already left — the flight's context is cancelled and it is about
// to publish a spurious cancellation, so a live request must start a fresh
// flight instead of inheriting the dying one.
func (f *flight) join() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.waiters == 0 {
		return false
	}
	f.waiters++
	return true
}

// leave unregisters a waiter that stopped waiting. When the last waiter
// leaves before completion, the flight's context is cancelled — the solve
// stops doing work nobody wants.
func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	if f.waiters == 0 {
		f.cancel()
	}
	f.mu.Unlock()
}

// New builds an Engine from cfg.
func New(cfg Config) *Engine {
	cache, owns := cfg.Cache, false
	if cache == nil {
		cache, owns = solvecache.New(), true
	}
	if cfg.RemoteCache != nil {
		cache.SetRemote(cfg.RemoteCache)
	}
	var sem chan struct{}
	if cfg.MaxInFlight > 0 {
		sem = make(chan struct{}, cfg.MaxInFlight)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cache:      cache,
		ownsCache:  owns,
		cacheLimit: cfg.MaxCacheEntries,
		remote:     cfg.RemoteCache,
		workers:    cfg.Workers,
		sem:        sem,
		baseCtx:    ctx,
		cancel:     cancel,
		flights:    map[string]*flight{},
		backends:   map[string]*backendAcc{},
	}
	if cfg.BatchWindow > 0 {
		e.batch = newBatcher(e, cfg.BatchWindow, cfg.BatchMax)
	}
	return e
}

// backendAcc accumulates one backend's counters.
type backendAcc struct {
	solves    int64
	wall      time.Duration
	cacheHits int64
}

// recordBackend folds one observation into a backend's counters. Solve
// counts and wall times come from the per-run observer (sweeps report one
// observation per point); cache-hit deltas are measured per request and
// attributed to the request's backend — under concurrent cache-sharing
// requests the attribution between backends is approximate (the totals
// remain exact), which is the documented trade for keeping the solve hot
// path free of per-hit instrumentation.
func (e *Engine) recordBackend(method string, solves int64, wall time.Duration, cacheHits int64) {
	e.bmu.Lock()
	acc := e.backends[method]
	if acc == nil {
		acc = &backendAcc{}
		e.backends[method] = acc
	}
	acc.solves += solves
	acc.wall += wall
	acc.cacheHits += cacheHits
	e.bmu.Unlock()
}

// BackendStats is one solver backend's counter snapshot, served by
// /v1/stats under the backend's method name.
type BackendStats struct {
	// Solves counts methodology runs executed with this backend — sweep
	// points individually, failed runs included (they consumed the time).
	Solves int64 `json:"solves"`
	// CacheHits is the solve-cache hits (exact, warm-start, joint and
	// analytic tiers summed) observed during this backend's requests.
	CacheHits int64 `json:"cacheHits"`
	// MeanWallMS is the mean wall time per run, in milliseconds.
	MeanWallMS float64 `json:"meanWallMs"`
}

// Cache exposes the engine's current solve cache (for stats reporting;
// callers must not mutate it structurally). A bounded engine-owned cache
// may be rotated between requests, so hold the returned pointer only
// briefly.
func (e *Engine) Cache() *solvecache.Cache {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache
}

// maybeRotateCache swaps a full engine-owned cache for a fresh one (see
// Config.MaxCacheEntries). Requests already holding the old cache finish on
// it; the swap is invisible to correctness because cached payloads are pure
// functions of their keys.
//
// Counting stored solutions is an O(cache-size) scan under the cache lock
// (Stats deduplicates promoted keys), so the check is amortised: it runs
// once every limit/8 request completions rather than on every one, making
// the bound approximate — the cache can overshoot by the entries of a few
// hundred requests before the next check trips — in exchange for keeping
// the request hot path O(1).
func (e *Engine) maybeRotateCache() {
	if !e.ownsCache || e.cacheLimit <= 0 {
		return
	}
	every := int64(e.cacheLimit/8) + 1
	if e.rotCounter.Add(1)%every != 0 {
		return
	}
	c := e.Cache()
	s := c.Stats()
	if s.Entries+s.JointEntries+s.AnalyticEntries <= e.cacheLimit {
		return
	}
	fresh := solvecache.New()
	fresh.SetRemote(e.remote) // rotation must not silently drop the shared tier
	e.mu.Lock()
	if e.cache == c {
		e.cache = fresh
	}
	e.mu.Unlock()
}

// Stats is a point-in-time snapshot of the engine counters plus the owned
// cache's counters. The JSON shape is served verbatim by socbufd /v1/stats.
type Stats struct {
	// Requests counts every API request received, coalesced followers
	// included — even ones later rejected by admission (Busy tracks those)
	// or failed by validation.
	Requests int64 `json:"requests"`
	// Coalesced counts solve requests served by another request's flight
	// instead of their own methodology run.
	Coalesced int64 `json:"coalesced"`
	// SolveRuns / SweepRuns / SimRuns count underlying executions — a
	// request that failed validation or admission never counts here. A
	// coalesced burst of N identical solves is N requests, N−1 coalesced,
	// and exactly 1 solve run.
	SolveRuns int64 `json:"solveRuns"`
	SweepRuns int64 `json:"sweepRuns"`
	SimRuns   int64 `json:"simRuns"`
	// PlacementRuns counts placement executions — a placement request served
	// from the cache's placement tier never counts here.
	PlacementRuns int64 `json:"placementRuns"`
	// Batched counts solve runs dispatched through the analytic micro-batch
	// path (Config.BatchWindow); zero when batching is disabled.
	Batched int64 `json:"batched,omitempty"`
	// Busy counts requests rejected by the in-flight bound.
	Busy int64 `json:"busyRejections"`
	// InFlight is the number of currently executing requests.
	InFlight int64 `json:"inFlight"`
	// Cache is the owned solve cache's counter snapshot.
	Cache solvecache.Stats `json:"cache"`
	// CacheRates are the cache's per-tier hit rates derived from those
	// counters (solvecache.Stats.Rates); only tiers that saw traffic appear.
	CacheRates map[string]float64 `json:"cacheRates,omitempty"`
	// Backends breaks the methodology runs down by solver backend
	// ("exact" | "analytic" | "hybrid"); only backends that have executed
	// appear.
	Backends map[string]BackendStats `json:"backends,omitempty"`
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.bmu.Lock()
	backends := make(map[string]BackendStats, len(e.backends))
	for m, acc := range e.backends {
		bs := BackendStats{Solves: acc.solves, CacheHits: acc.cacheHits}
		if acc.solves > 0 {
			bs.MeanWallMS = float64(acc.wall) / float64(time.Millisecond) / float64(acc.solves)
		}
		backends[m] = bs
	}
	e.bmu.Unlock()
	if len(backends) == 0 {
		backends = nil
	}
	cs := e.Cache().Stats()
	return Stats{
		Requests:      e.requests.Load(),
		Coalesced:     e.coalesced.Load(),
		SolveRuns:     e.solveRuns.Load(),
		SweepRuns:     e.sweepRuns.Load(),
		SimRuns:       e.simRuns.Load(),
		PlacementRuns: e.placeRuns.Load(),
		Batched:       e.batched.Load(),
		Busy:          e.busy.Load(),
		InFlight:      e.inFlight.Load(),
		Cache:         cs,
		CacheRates:    cs.Rates(),
		Backends:      backends,
	}
}

// begin admits one request: closed check, in-flight slot, and a request
// context derived from both the caller's ctx and the engine lifetime. The
// returned end func releases everything and must be called exactly once
// (it is idempotent).
func (e *Engine) begin(ctx context.Context) (context.Context, func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if e.sem != nil {
		select {
		case e.sem <- struct{}{}:
		default:
			e.mu.Unlock()
			e.busy.Add(1)
			return nil, nil, ErrBusy
		}
	}
	// wg.Add under the same lock as the closed check, so Shutdown's Wait
	// cannot slip between admission and registration.
	e.wg.Add(1)
	e.mu.Unlock()

	e.inFlight.Add(1)
	rctx, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(e.baseCtx, cancel) // shutdown cancels the request
	var once sync.Once
	end := func() {
		once.Do(func() {
			stop()
			cancel()
			if e.sem != nil {
				<-e.sem
			}
			e.inFlight.Add(-1)
			e.maybeRotateCache()
			e.wg.Done()
		})
	}
	return rctx, end, nil
}

// Shutdown gracefully stops the engine: new requests are rejected with
// ErrClosed, every in-flight request's context is cancelled (cancellation
// threads down to the sweep workers, which finish their current point and
// exit), and Shutdown blocks until all requests have returned or ctx
// expires. Idempotent.
func (e *Engine) Shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		e.cancel()
	}
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Shutdown with no deadline.
func (e *Engine) Close() error { return e.Shutdown(context.Background()) }
