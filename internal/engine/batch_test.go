package engine

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"socbuf/internal/solvecache"
)

// analyticReq builds one cheap analytic solve; seed varies the simulation
// identity so concurrent requests don't coalesce while sharing one analytic
// sizing fingerprint.
func analyticReq(seed int64) SolveRequest {
	return SolveRequest{
		Arch: "twobus", Budget: 24, Method: "analytic",
		Iterations: fastIters, Seeds: []int64{seed},
		Horizon: fastHorizon, WarmUp: fastWarmUp, UseCache: true,
	}
}

// TestBatchedAnalyticBitIdentical is the tentpole's batching gate: the same
// concurrent analytic workload through a batching engine and a plain one
// yields identical results, and the batch path actually ran.
func TestBatchedAnalyticBitIdentical(t *testing.T) {
	const n = 6
	run := func(e *Engine) []*SolveResult {
		t.Helper()
		defer e.Close()
		out := make([]*SolveResult, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := e.Solve(context.Background(), analyticReq(int64(i+1)))
				if err != nil {
					t.Errorf("solve %d: %v", i, err)
					return
				}
				out[i] = res
			}(i)
		}
		wg.Wait()
		return out
	}

	plain := run(New(Config{}))
	batching := New(Config{BatchWindow: 50 * time.Millisecond, BatchMax: n})
	batched := run(batching)
	if t.Failed() {
		t.FailNow()
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i], batched[i]) {
			t.Errorf("request %d: batched result differs from unbatched:\nplain   %+v\nbatched %+v", i, plain[i], batched[i])
		}
	}
	s := batching.Stats()
	if s.Batched != n {
		t.Errorf("Batched = %d, want %d", s.Batched, n)
	}
	// The six requests share one analytic content fingerprint, so the group
	// chained serially: one sizing computed, five answered from the analytic
	// tier — deterministically, not by scheduling luck.
	if s.Cache.AnalyticMisses != 1 || s.Cache.AnalyticHits != n-1 {
		t.Errorf("analytic tier: hits=%d misses=%d, want %d/1", s.Cache.AnalyticHits, s.Cache.AnalyticMisses, n-1)
	}
}

// TestBatchFullDispatchesEarly pins the BatchMax fast path: a full batch
// answers well before the window expires.
func TestBatchFullDispatchesEarly(t *testing.T) {
	e := New(Config{BatchWindow: time.Hour, BatchMax: 2})
	defer e.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Solve(context.Background(), analyticReq(int64(i+1)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	if wall := time.Since(start); wall > time.Minute {
		t.Fatalf("full batch waited out the window: %v", wall)
	}
}

// TestBatchWindowSingleRequest pins that a lone analytic request is answered
// after one window, not stalled waiting for peers.
func TestBatchWindowSingleRequest(t *testing.T) {
	e := New(Config{BatchWindow: 20 * time.Millisecond, BatchMax: 16})
	defer e.Close()
	if _, err := e.Solve(context.Background(), analyticReq(1)); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Batched != 1 {
		t.Fatalf("Batched = %d, want 1", s.Batched)
	}
}

// TestNonAnalyticSkipsBatch pins eligibility: exact solves never pay the
// batching window.
func TestNonAnalyticSkipsBatch(t *testing.T) {
	e := New(Config{BatchWindow: time.Hour, BatchMax: 16})
	defer e.Close()
	done := make(chan error, 1)
	go func() {
		_, err := e.Solve(context.Background(), SolveRequest{
			Scenario: "twobus", Iterations: fastIters, Seeds: fastSeeds,
			Horizon: fastHorizon, WarmUp: fastWarmUp,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("exact solve stuck behind the batching window")
	}
	if s := e.Stats(); s.Batched != 0 {
		t.Fatalf("Batched = %d, want 0", s.Batched)
	}
}

// TestEngineRemoteCacheSharing pins the Config.RemoteCache wiring: two
// engines sharing one store answer the second engine's solve from the
// first's payloads, identically.
func TestEngineRemoteCacheSharing(t *testing.T) {
	shared := solvecache.NewMemStore()
	a := New(Config{RemoteCache: shared})
	defer a.Close()
	b := New(Config{RemoteCache: shared})
	defer b.Close()

	req := SolveRequest{Scenario: "twobus", Iterations: fastIters, Seeds: fastSeeds,
		Horizon: fastHorizon, WarmUp: fastWarmUp, UseCache: true}
	want, err := a.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Len() == 0 {
		t.Fatal("first engine's solves did not populate the shared store")
	}
	got, err := b.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("remote-fed result differs:\nwant %+v\ngot  %+v", want, got)
	}
	s := b.Stats()
	if s.Cache.RemoteHits == 0 {
		t.Errorf("second engine must adopt remote payloads: %+v", s.Cache)
	}
	if s.Cache.Misses != 0 {
		t.Errorf("second engine re-solved %d sub-models a peer had already solved", s.Cache.Misses)
	}
	if r := s.CacheRates["remote"]; r <= 0 {
		t.Errorf("remote rate %g must be positive; rates %v", r, s.CacheRates)
	}
}

// TestRotationKeepsRemote pins that cache rotation re-attaches the shared
// store rather than silently dropping the tier.
func TestRotationKeepsRemote(t *testing.T) {
	shared := solvecache.NewMemStore()
	e := New(Config{RemoteCache: shared, MaxCacheEntries: 1})
	defer e.Close()
	req := SolveRequest{Scenario: "twobus", Iterations: fastIters, Seeds: fastSeeds,
		Horizon: fastHorizon, WarmUp: fastWarmUp, UseCache: true}
	before := e.Cache()
	for i := 0; i < 4; i++ {
		if _, err := e.Solve(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		if e.Cache() != before {
			break
		}
	}
	if e.Cache() == before {
		t.Fatal("cache never rotated under MaxCacheEntries=1")
	}
	if e.Cache().Remote() != solvecache.Store(shared) {
		t.Fatal("rotated cache lost the remote store")
	}
}

// TestRequestFingerprints pins the exported routing fingerprints: stable
// under normalisation, distinct across content and across request types.
func TestRequestFingerprints(t *testing.T) {
	s1 := SolveRequest{Budget: 160}
	s2 := SolveRequest{Arch: "netproc", Budget: 160, Workers: 8}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("default-preset and worker normalisation must coalesce solve fingerprints")
	}
	if s1.Fingerprint() == (SolveRequest{Budget: 161}).Fingerprint() {
		t.Error("different budgets must fingerprint differently")
	}
	if s1.Fingerprint() != s1.key() {
		t.Error("Fingerprint must be the coalescing key")
	}

	b1 := BudgetSweepRequest{Budgets: []int{10, 20}}
	b2 := BudgetSweepRequest{Arch: "netproc", Budgets: []int{10, 20}, Workers: 3}
	if b1.Fingerprint() != b2.Fingerprint() {
		t.Error("budget sweep normalisation failed")
	}
	c1 := ScenarioSweepRequest{Scenarios: []string{"twobus"}}
	c2 := ScenarioSweepRequest{Scenarios: []string{"twobus"}, Workers: 2}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Error("scenario sweep normalisation failed")
	}
	p1 := PlacementRequest{Budget: 160}
	p2 := PlacementRequest{Arch: "netproc", Budget: 160, Workers: 5}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("placement normalisation failed")
	}

	// Domain separation: four types, same-ish content, four fingerprints.
	fps := map[string]bool{
		s1.Fingerprint(): true, b1.Fingerprint(): true,
		c1.Fingerprint(): true, p1.Fingerprint(): true,
	}
	if len(fps) != 4 {
		t.Errorf("request types must fingerprint in disjoint domains: %v", fps)
	}
}
