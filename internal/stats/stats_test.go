package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarise(t *testing.T) {
	s, err := Summarise([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.CI95() <= 0 {
		t.Fatal("zero CI for non-degenerate sample")
	}
}

func TestSummariseEmpty(t *testing.T) {
	if _, err := Summarise(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestSummariseSingle(t *testing.T) {
	s, err := Summarise([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("single-sample dispersion: %+v", s)
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Fatalf("median = %v, %v", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("even median = %v, %v", m, err)
	}
	if _, err := Median(nil); err == nil {
		t.Fatal("empty median accepted")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 {
		t.Fatal("Median sorted the caller's slice")
	}
}

func TestSumInt64Maps(t *testing.T) {
	got := SumInt64Maps(map[string]int64{"a": 1, "b": 2}, map[string]int64{"a": 3})
	if got["a"] != 4 || got["b"] != 2 {
		t.Fatalf("sum = %v", got)
	}
}

func TestRelChange(t *testing.T) {
	if RelChange(10, 8) != -0.2 {
		t.Fatal("rel change wrong")
	}
	if RelChange(0, 0) != 0 {
		t.Fatal("0/0 should be 0")
	}
	if !math.IsInf(RelChange(0, 5), 1) {
		t.Fatal("x/0 should be +Inf")
	}
}

// Property: Min ≤ Mean ≤ Max and Median within [Min, Max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw [9]float64) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = math.Tanh(v) * 100 // bounded
		}
		s, err := Summarise(xs)
		if err != nil {
			return false
		}
		m, err := Median(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && m >= s.Min-1e-9 && m <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
