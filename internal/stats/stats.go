// Package stats provides the small statistics toolkit the experiment
// harness uses: summaries with confidence intervals and loss aggregation
// across seeds.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
}

// Summarise computes a Summary. It errors on empty input.
func Summarise(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s, nil
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// Median returns the sample median (average of middle pair for even n).
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: empty sample")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2], nil
	}
	return (c[n/2-1] + c[n/2]) / 2, nil
}

// SumInt64Maps adds per-key counts across maps (per-processor losses across
// seeds).
func SumInt64Maps(maps ...map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for _, m := range maps {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// RelChange returns (b−a)/a; +Inf for a == 0, b > 0; 0 for both zero.
func RelChange(a, b float64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (b - a) / a
}
