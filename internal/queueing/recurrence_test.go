package queueing

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// oracleTolerance returns the reference value and comparison tolerance for
// a blocking check at (λ, μ, K). In the well-conditioned regime the MM1K
// closed form is the 1e-12 oracle. Two regimes fall back to the same
// closed form evaluated in 200-bit big.Float arithmetic: a ring around
// ρ = 1, where the float64 form loses digits (1 − ρ^{K+1} cancels to
// ~(K+1)|ρ−1|, so its error is ~ulp(1)/|ρ−1| — already 1e-10 at
// |ρ−1| = 1e-6), and deep saturation with large K, where ρ^{K+1} overflows
// float64 outright (the fuzzer found ρ ≈ 202, K = 133 driving the float64
// oracle to 0 while the recurrence correctly sits near 1 − 1/ρ). big.Float
// exponents don't overflow at any reachable (ρ, K), which keeps the
// comparison honest at 1e-12 through both regimes.
func oracleTolerance(lambda, mu float64, k int) (want, tol float64) {
	rho := lambda / mu
	if math.Abs(rho-1) < 1e-4 || float64(k+1)*math.Log(rho) > 700 {
		return bigBlocking(lambda, mu, k), 1e-12
	}
	q := MM1K{Lambda: lambda, Mu: mu, K: k}
	return q.Blocking(), 1e-12
}

// bigBlocking evaluates ρ^K(1−ρ)/(1−ρ^{K+1}) in 200-bit precision, with
// the ρ = 1 removable singularity filled by its limit 1/(K+1).
func bigBlocking(lambda, mu float64, k int) float64 {
	const prec = 200
	rho := new(big.Float).SetPrec(prec).Quo(
		new(big.Float).SetPrec(prec).SetFloat64(lambda),
		new(big.Float).SetPrec(prec).SetFloat64(mu))
	one := new(big.Float).SetPrec(prec).SetInt64(1)
	if rho.Cmp(one) == 0 {
		return 1 / float64(k+1)
	}
	pk := new(big.Float).SetPrec(prec).SetInt64(1)
	for i := 0; i < k; i++ {
		pk.Mul(pk, rho)
	}
	num := new(big.Float).SetPrec(prec).Sub(one, rho)
	num.Mul(num, pk)
	pk.Mul(pk, rho)
	den := new(big.Float).SetPrec(prec).Sub(one, pk)
	num.Quo(num, den)
	f, _ := num.Float64()
	return f
}

// TestBlockingRecurrenceAgrees pins the recurrence against the closed-form
// oracle to 1e-12 over a randomized (λ, μ, K) grid spanning light load to
// deep saturation, plus a deterministic sweep through the ρ = 1 singular
// point the closed form special-cases.
func TestBlockingRecurrenceAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	check := func(lambda, mu float64, k int) {
		t.Helper()
		got := BlockingRecurrence(lambda, mu, k)
		want, tol := oracleTolerance(lambda, mu, k)
		if math.Abs(got-want) > tol {
			t.Fatalf("λ=%v μ=%v K=%d: recurrence %v vs oracle %v (diff %g > %g)",
				lambda, mu, k, got, want, got-want, tol)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		lambda, mu := grid(rng)
		check(lambda, mu, 1+rng.Intn(64))
	}
	// The singular point and its numerical neighbourhood, every K.
	for k := 1; k <= 64; k++ {
		for _, eps := range []float64{0, 1e-13, -1e-13, 1e-12, -1e-12, 1e-9, -1e-9, 1e-6, -1e-6} {
			mu := 1.7
			check((1+eps)*mu, mu, k)
		}
	}
}

// TestBlockingStepAdvances pins the O(1) incremental step the greedy loops
// use: starting from B(1) and stepping K−1 times must land exactly on the
// recurrence's B(K) — they share every intermediate rounding.
func TestBlockingStepAdvances(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 500; trial++ {
		lambda, mu := grid(rng)
		rho := lambda / mu
		b := BlockingRecurrence(lambda, mu, 1)
		for k := 2; k <= 40; k++ {
			b = BlockingStep(rho, b)
			if want := BlockingRecurrence(lambda, mu, k); b != want {
				t.Fatalf("λ=%v μ=%v K=%d: stepped %v != recurrence %v", lambda, mu, k, b, want)
			}
		}
	}
}

// TestMeanQueueSumAgrees pins the summation mean against the
// distribution-walking oracle, with the same ρ = 1 ring treatment (the
// oracle's norm cancels there; the reference becomes the uniform mean K/2).
func TestMeanQueueSumAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	check := func(lambda, mu float64, k int) {
		t.Helper()
		got := MeanQueueSum(lambda, mu, k)
		rho := lambda / mu
		var want, tol float64
		if math.Abs(rho-1) < 1e-7 {
			// Slope of E[N] in ρ at the uniform point is O(K²).
			want, tol = float64(k)/2, float64(k*k)*math.Abs(rho-1)+1e-9
		} else {
			q := MM1K{Lambda: lambda, Mu: mu, K: k}
			want, tol = q.MeanQueue(), 1e-9*float64(k)
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("λ=%v μ=%v K=%d: sum mean %v vs oracle %v (diff %g > %g)",
				lambda, mu, k, got, want, got-want, tol)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		lambda, mu := grid(rng)
		check(lambda, mu, 1+rng.Intn(64))
	}
	for k := 1; k <= 64; k++ {
		for _, eps := range []float64{0, 1e-13, -1e-12, 1e-9, -1e-6} {
			check((1+eps)*2.3, 2.3, k)
		}
	}
	// Deep saturation: the 1/ρ branch must not overflow even at huge K.
	if got := MeanQueueSum(2000, 1, 500); math.IsNaN(got) || got < 499 || got > 500 {
		t.Fatalf("saturated mean %v, want ≈ K", got)
	}
}

// TestBlockingZeroAlloc is the AllocsPerRun gate on the incremental
// blocking kernel: the recurrence and the step must never touch the heap —
// they run inside every screen's table build and every greedy's gain
// update (the robust backend calls them millions of times per solve).
func TestBlockingZeroAlloc(t *testing.T) {
	var sink float64
	if allocs := testing.AllocsPerRun(100, func() {
		sink += BlockingRecurrence(3.2, 4.1, 24)
		sink += BlockingStep(0.78, sink)
		sink += MeanQueueSum(3.2, 4.1, 24)
	}); allocs != 0 {
		t.Fatalf("blocking kernels allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// FuzzBlockingRecurrence cross-checks the incremental kernel against the
// queueing.MM1K closed form over fuzzer-chosen (λ, μ, K), ρ near 1
// included — the oracle agreement the tentpole's acceptance pins at 1e-12
// (make fuzz-smoke runs this target for 10s on every push).
func FuzzBlockingRecurrence(f *testing.F) {
	f.Add(1.0, 2.0, 4)
	f.Add(5.0, 1.0, 12)
	f.Add(1.0, 1.0, 7)        // ρ = 1 exactly
	f.Add(1.0+1e-13, 1.0, 40) // inside the closed form's guard window
	f.Add(1.0-1e-9, 1.0, 64)  // inside the ill-conditioned ring
	f.Add(0.001, 1000.0, 1)   // vanishing load
	f.Add(19.9, 1.0, 32)      // deep saturation
	f.Fuzz(func(t *testing.T, lambda, mu float64, k int) {
		if !(lambda > 0) || !(mu > 0) || math.IsInf(lambda, 0) || math.IsInf(mu, 0) {
			t.Skip()
		}
		if k < 1 || k > 512 {
			t.Skip()
		}
		rho := lambda / mu
		if rho > 1e6 || rho < 1e-6 {
			// Beyond any load the sizing stack can construct (factors are
			// clamped to [0.05, 20]); the closed form itself under/overflows.
			t.Skip()
		}
		got := BlockingRecurrence(lambda, mu, k)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Fatalf("λ=%v μ=%v K=%d: recurrence %v outside [0,1]", lambda, mu, k, got)
		}
		want, tol := oracleTolerance(lambda, mu, k)
		if math.Abs(got-want) > tol {
			t.Fatalf("λ=%v μ=%v K=%d: recurrence %v vs oracle %v (diff %g > %g)",
				lambda, mu, k, got, want, got-want, tol)
		}
	})
}
