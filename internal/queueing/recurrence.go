package queueing

// Allocation-free M/M/1/K kernels. The closed forms in mm1k.go build the
// whole stationary distribution on every call — fine for an oracle, fatal
// for the analytic screen, whose inner loops evaluate blocking millions of
// times per robust solve. The recurrences here compute the same quantities
// with a handful of multiply-adds, no heap traffic and no math.Pow, and the
// MM1K methods remain their correctness oracle (TestBlockingRecurrenceAgrees
// and FuzzBlockingRecurrence pin 1e-12 agreement across the parameter grid,
// ρ = 1 included).

// BlockingRecurrence returns the M/M/1/K blocking probability P(N = K) via
// the incremental recurrence
//
//	B(0) = 1,  B(k) = ρ·B(k−1) / (1 + ρ·B(k−1))
//
// which is algebraically identical to the closed form
// ρ^K(1−ρ)/(1−ρ^{K+1}) but needs no powers and no special case at the
// ρ = 1 singular point: at ρ exactly 1 the iteration yields 1/(K+1) — the
// uniform-distribution value MM1K.Blocking special-cases — and it stays
// numerically smooth through the |ρ−1| < 1e-12 window where the closed
// form's numerator and denominator both vanish. k < 1 returns 1 (a queue
// with no room loses every arrival), matching the NewMM1K(λ, μ, 0) failure
// convention the solver's blocking helper maps to 1.
func BlockingRecurrence(lambda, mu float64, k int) float64 {
	if k < 1 {
		return 1
	}
	rho := lambda / mu
	b := 1.0
	for i := 0; i < k; i++ {
		rb := rho * b
		b = rb / (1 + rb)
	}
	return b
}

// BlockingStep advances a blocking value one capacity unit:
// given B(k) it returns B(k+1). It is the O(1) kernel incremental greedy
// loops keep per buffer — the whole gain update after spending one unit is
// one call, instead of re-deriving two geometric sums.
func BlockingStep(rho, b float64) float64 {
	rb := rho * b
	return rb / (1 + rb)
}

// MeanQueueSum returns E[N] for an M/M/1/K queue by direct summation of the
// (unnormalised) geometric stationary weights — zero allocations, no
// math.Pow. For ρ > 1 the sum runs in powers of 1/ρ (counting empty slots
// from the full end), so no term can overflow regardless of K. At ρ = 1
// both branches continuously yield K/2, the uniform-distribution mean the
// closed form special-cases.
func MeanQueueSum(lambda, mu float64, k int) float64 {
	rho := lambda / mu
	if rho <= 1 {
		p, s0, s1 := 1.0, 0.0, 0.0
		for i := 0; i <= k; i++ {
			s0 += p
			s1 += float64(i) * p
			p *= rho
		}
		return s1 / s0
	}
	// π_i ∝ ρ^i = ρ^K·q^{K−i} with q = 1/ρ < 1:
	// E[N] = K − (Σ_j j·q^j) / (Σ_j q^j), j = K − i.
	q := 1 / rho
	p, s0, s1 := 1.0, 0.0, 0.0
	for j := 0; j <= k; j++ {
		s0 += p
		s1 += float64(j) * p
		p *= q
	}
	return float64(k) - s1/s0
}
