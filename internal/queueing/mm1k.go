// Package queueing provides closed-form results for the finite Markovian
// queues that appear throughout the buffer-sizing pipeline: M/M/1/K queues
// (one processor buffer drained by a bus) and the Erlang-B loss system.
//
// The formulas serve as oracles: the discrete-event simulator and the CTMC
// solvers must reproduce them, and tests in those packages do exactly that.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// MM1K describes an M/M/1/K queue: Poisson arrivals at rate Lambda,
// exponential service at rate Mu, and room for K customers in total
// (including the one in service). Arrivals that find K customers are lost.
type MM1K struct {
	Lambda float64 // arrival rate (>0)
	Mu     float64 // service rate (>0)
	K      int     // capacity including in-service (>=1)
}

// NewMM1K validates the parameters.
func NewMM1K(lambda, mu float64, k int) (*MM1K, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("queueing: invalid lambda %v", lambda)
	}
	if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return nil, fmt.Errorf("queueing: invalid mu %v", mu)
	}
	if k < 1 {
		return nil, fmt.Errorf("queueing: capacity %d < 1", k)
	}
	return &MM1K{Lambda: lambda, Mu: mu, K: k}, nil
}

// Rho returns the offered load λ/μ.
func (q *MM1K) Rho() float64 { return q.Lambda / q.Mu }

// Distribution returns the stationary distribution π_0..π_K of the number in
// system.
func (q *MM1K) Distribution() []float64 {
	rho := q.Rho()
	pi := make([]float64, q.K+1)
	if math.Abs(rho-1) < 1e-12 {
		// Uniform when ρ = 1.
		for i := range pi {
			pi[i] = 1 / float64(q.K+1)
		}
		return pi
	}
	norm := (1 - math.Pow(rho, float64(q.K+1))) / (1 - rho)
	p := 1.0
	for i := 0; i <= q.K; i++ {
		pi[i] = p / norm
		p *= rho
	}
	return pi
}

// Blocking returns the probability an arrival is lost, P(N = K) (PASTA).
func (q *MM1K) Blocking() float64 {
	pi := q.Distribution()
	return pi[q.K]
}

// LossRate returns the rate of lost arrivals, λ·P(block).
func (q *MM1K) LossRate() float64 { return q.Lambda * q.Blocking() }

// Throughput returns the rate of completed services, λ·(1 − P(block)).
func (q *MM1K) Throughput() float64 { return q.Lambda * (1 - q.Blocking()) }

// MeanQueue returns E[N], the mean number in system.
func (q *MM1K) MeanQueue() float64 {
	pi := q.Distribution()
	var m float64
	for i, p := range pi {
		m += float64(i) * p
	}
	return m
}

// MeanResidence returns the mean time an *accepted* customer spends in the
// system, by Little's law: E[N] / throughput. The paper's timeout policy uses
// this value as its drop threshold ("the average time spent by a request in a
// buffer").
func (q *MM1K) MeanResidence() (float64, error) {
	th := q.Throughput()
	if th <= 0 {
		return 0, errors.New("queueing: zero throughput, residence undefined")
	}
	return q.MeanQueue() / th, nil
}

// ErlangB returns the Erlang-B blocking probability for offered load a
// (erlangs) and c servers, computed with the numerically stable recurrence
// B(0)=1, B(k) = a·B(k−1) / (k + a·B(k−1)).
func ErlangB(a float64, c int) (float64, error) {
	if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0, fmt.Errorf("queueing: invalid offered load %v", a)
	}
	if c < 0 {
		return 0, fmt.Errorf("queueing: negative server count %d", c)
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b, nil
}

// RequiredCapacity returns the smallest K such that the M/M/1/K blocking
// probability is at most target. It is the analytic cousin of the
// occupancy-quantile translation used by the CTMDP sizing (DESIGN.md §5) and
// is used in tests as a sanity bound. maxK caps the search.
func RequiredCapacity(lambda, mu, target float64, maxK int) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("queueing: target blocking %v outside (0,1)", target)
	}
	for k := 1; k <= maxK; k++ {
		q, err := NewMM1K(lambda, mu, k)
		if err != nil {
			return 0, err
		}
		if q.Blocking() <= target {
			return k, nil
		}
	}
	return 0, fmt.Errorf("queueing: no capacity ≤ %d reaches blocking %v (rho=%v)", maxK, target, lambda/mu)
}
