package queueing

// Property tests over a randomized parameter grid. The pointwise oracle
// tests in mm1k_test.go pin known values; these pin the *shape* of the
// blocking surface that the sizing backends lean on:
//
//   - B(K) is non-increasing in K — the marginal-allocation greedy's gains
//     w·λ·(B(K) − B(K+1)) are only non-negative because of this;
//   - B is non-decreasing in ρ at fixed K — the robust backend's hedge
//     (upsized buffers survive rate upturns) is only sound because of this.
//
// The grid is seeded, so a failure reproduces exactly.

import (
	"math"
	"math/rand"
	"testing"
)

// grid draws a randomized (λ, μ) pair spanning light load to deep
// saturation: ρ ∈ (0.05, 5), rates within a few decades of 1.
func grid(rng *rand.Rand) (lambda, mu float64) {
	mu = math.Exp(rng.Float64()*4 - 2) // μ ∈ [e^-2, e^2]
	rho := 0.05 + rng.Float64()*4.95   // ρ ∈ [0.05, 5)
	return rho * mu, mu
}

// TestBlockingMonotoneInCapacity checks B(K+1) ≤ B(K) across the grid:
// adding a slot never makes a queue lose more.
func TestBlockingMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		lambda, mu := grid(rng)
		prev := math.Inf(1)
		for k := 1; k <= 40; k++ {
			q, err := NewMM1K(lambda, mu, k)
			if err != nil {
				t.Fatal(err)
			}
			b := q.Blocking()
			if b < 0 || b > 1 {
				t.Fatalf("λ=%v μ=%v K=%d: blocking %v outside [0,1]", lambda, mu, k, b)
			}
			if b > prev+1e-12 {
				t.Fatalf("λ=%v μ=%v: B(%d)=%v > B(%d)=%v — blocking rose with capacity",
					lambda, mu, k, b, k-1, prev)
			}
			prev = b
		}
	}
}

// TestBlockingMonotoneInLoad checks that at fixed K, blocking never falls
// as the offered load ρ rises.
func TestBlockingMonotoneInLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		mu := math.Exp(rng.Float64()*4 - 2)
		k := 1 + rng.Intn(30)
		prev := -1.0
		for step := 0; step < 50; step++ {
			rho := 0.05 + float64(step)*0.1 // ρ from 0.05 to 4.95
			q, err := NewMM1K(rho*mu, mu, k)
			if err != nil {
				t.Fatal(err)
			}
			b := q.Blocking()
			if b < prev-1e-12 {
				t.Fatalf("μ=%v K=%d: blocking fell from %v to %v as ρ rose to %v",
					mu, k, prev, b, rho)
			}
			prev = b
		}
	}
}

// TestStabilityAtUnitLoad pins the ρ → 1 behaviour of every closed-form
// summary the sizing backends consume: Distribution() guards the singular
// point with an |ρ−1| < 1e-12 uniform fallback, so Blocking(), LossRate()
// and MeanQueue() must all return the uniform-distribution values there —
// finite, in range, and exactly the 1/(K+1)-weighted sums — over a
// randomized (λ, μ, K) grid of in-window jitters. The incremental
// recurrence kernels must land on the same values without any guard: the
// recurrence is continuous through the singular point by construction.
func TestStabilityAtUnitLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		mu := math.Exp(rng.Float64()*4 - 2)
		k := 1 + rng.Intn(60)
		// Jitter inside the guard window: |ρ−1| < 1e-12.
		rho := 1 + (rng.Float64()*2-1)*0.99e-12
		lambda := rho * mu
		q, err := NewMM1K(lambda, mu, k)
		if err != nil {
			t.Fatal(err)
		}
		uniform := 1 / float64(k+1)
		if b := q.Blocking(); math.Abs(b-uniform) > 1e-15 {
			t.Fatalf("μ=%v K=%d ρ=%v: Blocking %v, want uniform %v", mu, k, rho, b, uniform)
		}
		if lr := q.LossRate(); math.Abs(lr-lambda*uniform) > 1e-12*lambda {
			t.Fatalf("μ=%v K=%d ρ=%v: LossRate %v, want %v", mu, k, rho, lr, lambda*uniform)
		}
		mq := q.MeanQueue()
		if math.IsNaN(mq) || math.Abs(mq-float64(k)/2) > 1e-9*float64(k) {
			t.Fatalf("μ=%v K=%d ρ=%v: MeanQueue %v, want K/2 = %v", mu, k, rho, mq, float64(k)/2)
		}
		// The recurrence kernels inherit the same behaviour with no special
		// case: continuity bounds the in-window drift by ~slope × 1e-12.
		if b := BlockingRecurrence(lambda, mu, k); math.Abs(b-uniform) > 1e-12 {
			t.Fatalf("μ=%v K=%d ρ=%v: BlockingRecurrence %v, want uniform %v", mu, k, rho, b, uniform)
		}
		if mq := MeanQueueSum(lambda, mu, k); math.Abs(mq-float64(k)/2) > 1e-9*float64(k*k) {
			t.Fatalf("μ=%v K=%d ρ=%v: MeanQueueSum %v, want K/2", mu, k, rho, mq)
		}
	}
}

// TestLossRateMarginalNonNegative checks the quantity the greedy actually
// ranks: λ·(B(K) − B(K+1)) ≥ 0 everywhere on the grid, and strictly
// positive wherever blocking is still material — a zero marginal with
// blocking left would stall the budget spend.
func TestLossRateMarginalNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		lambda, mu := grid(rng)
		k := 1 + rng.Intn(20)
		qk, err := NewMM1K(lambda, mu, k)
		if err != nil {
			t.Fatal(err)
		}
		qk1, err := NewMM1K(lambda, mu, k+1)
		if err != nil {
			t.Fatal(err)
		}
		marginal := lambda * (qk.Blocking() - qk1.Blocking())
		if marginal < 0 {
			t.Fatalf("λ=%v μ=%v K=%d: negative marginal %v", lambda, mu, k, marginal)
		}
		if qk.Blocking() > 1e-6 && marginal <= 0 {
			t.Fatalf("λ=%v μ=%v K=%d: blocking %v but zero marginal — greedy would stall",
				lambda, mu, k, qk.Blocking())
		}
	}
}
