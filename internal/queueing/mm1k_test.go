package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socbuf/internal/markov"
)

func TestNewMM1KValidation(t *testing.T) {
	cases := []struct {
		lambda, mu float64
		k          int
	}{
		{0, 1, 1}, {-1, 1, 1}, {1, 0, 1}, {1, -2, 1}, {1, 1, 0},
		{math.NaN(), 1, 1}, {1, math.Inf(1), 1},
	}
	for _, c := range cases {
		if _, err := NewMM1K(c.lambda, c.mu, c.k); err == nil {
			t.Fatalf("accepted invalid (%v,%v,%d)", c.lambda, c.mu, c.k)
		}
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	q, err := NewMM1K(2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pi := q.Distribution()
	var sum float64
	for _, p := range pi {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestRhoOneUniform(t *testing.T) {
	q, err := NewMM1K(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pi := q.Distribution()
	for i, p := range pi {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("pi[%d] = %v, want 0.25", i, p)
		}
	}
	if math.Abs(q.Blocking()-0.25) > 1e-12 {
		t.Fatalf("blocking = %v", q.Blocking())
	}
}

func TestKnownBlocking(t *testing.T) {
	// M/M/1/1 is Erlang-B with 1 server: B = a/(1+a).
	q, err := NewMM1K(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Blocking()-0.5) > 1e-12 {
		t.Fatalf("blocking = %v, want 0.5", q.Blocking())
	}
	eb, err := ErlangB(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eb-q.Blocking()) > 1e-12 {
		t.Fatalf("ErlangB = %v vs MM11 %v", eb, q.Blocking())
	}
}

func TestLossThroughputConservation(t *testing.T) {
	q, err := NewMM1K(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.LossRate()+q.Throughput()-q.Lambda) > 1e-12 {
		t.Fatal("loss + throughput != lambda")
	}
}

func TestMeanResidence(t *testing.T) {
	q, err := NewMM1K(1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	w, err := q.MeanResidence()
	if err != nil {
		t.Fatal(err)
	}
	// Near-M/M/1 at rho=0.5: W = 1/(mu-lambda) = 1; K=10 truncation shifts it
	// only slightly.
	if w < 0.8 || w > 1.05 {
		t.Fatalf("W = %v, want ≈ 1", w)
	}
}

func TestErlangBValidation(t *testing.T) {
	if _, err := ErlangB(-1, 2); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := ErlangB(1, -1); err == nil {
		t.Fatal("negative servers accepted")
	}
	b, err := ErlangB(5, 0)
	if err != nil || b != 1 {
		t.Fatalf("B(a,0) = %v, %v; want 1, nil", b, err)
	}
}

func TestErlangBMonotoneInServers(t *testing.T) {
	prev := 1.0
	for c := 1; c <= 10; c++ {
		b, err := ErlangB(3, c)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Fatalf("ErlangB not decreasing at c=%d: %v >= %v", c, b, prev)
		}
		prev = b
	}
}

func TestRequiredCapacity(t *testing.T) {
	k, err := RequiredCapacity(1, 2, 0.01, 100)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewMM1K(1, 2, k)
	if q.Blocking() > 0.01 {
		t.Fatalf("capacity %d still blocks at %v", k, q.Blocking())
	}
	if k > 1 {
		qSmaller, _ := NewMM1K(1, 2, k-1)
		if qSmaller.Blocking() <= 0.01 {
			t.Fatalf("capacity %d not minimal", k)
		}
	}
}

func TestRequiredCapacityErrors(t *testing.T) {
	if _, err := RequiredCapacity(1, 2, 0, 10); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := RequiredCapacity(1, 2, 1, 10); err == nil {
		t.Fatal("target 1 accepted")
	}
	// Overloaded queue can't reach 1e-9 blocking with tiny capacity.
	if _, err := RequiredCapacity(10, 1, 1e-9, 3); err == nil {
		t.Fatal("impossible target accepted")
	}
}

// Property: the closed form matches the CTMC stationary distribution of the
// equivalent birth-death generator.
func TestMM1KMatchesCTMCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := 0.2 + rng.Float64()*4
		mu := 0.2 + rng.Float64()*4
		k := 1 + rng.Intn(10)
		q, err := NewMM1K(lambda, mu, k)
		if err != nil {
			return false
		}
		birth := make([]float64, k)
		death := make([]float64, k)
		for i := range birth {
			birth[i], death[i] = lambda, mu
		}
		bd, err := markov.NewBirthDeath(birth, death)
		if err != nil {
			return false
		}
		ctmc, err := bd.Stationary()
		if err != nil {
			return false
		}
		closed := q.Distribution()
		for i := range closed {
			if math.Abs(closed[i]-ctmc[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: blocking decreases with capacity and increases with load.
func TestBlockingMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := 0.2 + rng.Float64()*3
		mu := 0.2 + rng.Float64()*3
		k := 1 + rng.Intn(8)
		q1, err := NewMM1K(lambda, mu, k)
		if err != nil {
			return false
		}
		q2, err := NewMM1K(lambda, mu, k+1)
		if err != nil {
			return false
		}
		if q2.Blocking() > q1.Blocking()+1e-12 {
			return false
		}
		q3, err := NewMM1K(lambda*1.5, mu, k)
		if err != nil {
			return false
		}
		return q3.Blocking() >= q1.Blocking()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
