package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"socbuf/internal/scenario"
)

// quickOpt keeps scenario-sweep unit tests fast.
var quickOpt = Options{Iterations: 2, Seeds: []int64{1}, Horizon: 600, WarmUp: 50, Workers: 2}

func TestScenarioSweepTwoPoints(t *testing.T) {
	scs, err := scenario.Resolve([]string{"twobus", "chain6"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ScenarioSweep(scs, quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2 (failed: %v)", len(res.Points), res.Failed)
	}
	for i, p := range res.Points {
		if p.Name != scs[i].Name {
			t.Fatalf("point %d is %q, want %q (input order must be preserved)", i, p.Name, scs[i].Name)
		}
		if p.Buses == 0 || p.Buffers == 0 || p.Budget == 0 {
			t.Fatalf("point %q incomplete: %+v", p.Name, p)
		}
		if p.Pre < 0 || p.Post < 0 || p.LossFrac < 0 || p.LossFrac > 1 {
			t.Fatalf("point %q out of range: %+v", p.Name, p)
		}
		if p.Latency < 0 {
			t.Fatalf("point %q negative latency: %v", p.Name, p.Latency)
		}
	}

	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	tbl := sb.String()
	for _, want := range []string{"SCENARIO", "twobus", "chain6", "improvement", "latency"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestScenarioSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	scs, err := scenario.Resolve([]string{"twobus", "star6"})
	if err != nil {
		t.Fatal(err)
	}
	serial := quickOpt
	serial.Workers = 1
	r1, err := ScenarioSweep(scs, serial)
	if err != nil {
		t.Fatal(err)
	}
	wide := quickOpt
	wide.Workers = 8
	r2, err := ScenarioSweep(scs, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("worker count changed the sweep:\n  serial: %+v\n  wide:   %+v", r1, r2)
	}
}

func TestScenarioSweepBurstyDiffersFromPoisson(t *testing.T) {
	// Same generated architecture, same seeds: only the traffic model
	// differs, so the measured losses must differ while each run stays
	// seed-deterministic.
	scs, err := scenario.Resolve([]string{"chain6", "chain6-bursty"})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ScenarioSweep(scs, quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ScenarioSweep(scs, quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("scenario sweep not deterministic across identical runs")
	}
	poisson, bursty := r1.Points[0], r1.Points[1]
	if poisson.Arch != bursty.Arch {
		t.Fatalf("chain6 and chain6-bursty build different architectures: %q vs %q",
			poisson.Arch, bursty.Arch)
	}
	if poisson.Pre == bursty.Pre && poisson.Post == bursty.Post {
		t.Fatalf("OnOff traffic produced identical losses to Poisson (pre=%d post=%d) — sources not wired",
			poisson.Pre, bursty.Pre)
	}
}

func TestScenarioSweepCollectsPerPointFailures(t *testing.T) {
	good, _ := scenario.Get("twobus")
	bad := good
	bad.Name = "bad-budget"
	bad.Budget = 2 // below one unit per buffer: core.Run fails
	res, err := ScenarioSweep([]scenario.Scenario{bad, good}, quickOpt)
	if err == nil {
		t.Fatal("expected a joined error")
	}
	if len(res.Points) != 1 || res.Points[0].Name != "twobus" {
		t.Fatalf("good point lost: %+v", res.Points)
	}
	if len(res.Failed) != 1 || res.Failed[0].Name != "bad-budget" {
		t.Fatalf("failure not collected: %+v", res.Failed)
	}
	if !errors.Is(err, res.Failed[0].Err) && !strings.Contains(err.Error(), "bad-budget") {
		t.Fatalf("joined error does not name the failing scenario: %v", err)
	}
}

func TestParseNames(t *testing.T) {
	if got := ParseNames(" a, b ,,c "); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("ParseNames = %v", got)
	}
	if got := ParseNames(" , "); got != nil {
		t.Fatalf("ParseNames of blanks = %v, want nil", got)
	}
}
