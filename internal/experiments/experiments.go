// Package experiments regenerates every table and figure of the paper's
// evaluation (§3) plus the §2 solvability demonstration, on the synthetic
// network-processor testbed (DESIGN.md §2 records the substitution). Both
// cmd/experiments and the repository-level benchmarks drive this package, so
// the printed rows and the benchmarked work are the same code.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/ctmdp"
	"socbuf/internal/graph"
	"socbuf/internal/nonlinear"
	"socbuf/internal/parallel"
	"socbuf/internal/policy"
	"socbuf/internal/sim"
	"socbuf/internal/solvecache"
	"socbuf/internal/solver"
	"socbuf/internal/uncertain"
)

// Options tunes experiment cost. Zero values pick the defaults used by the
// published EXPERIMENTS.md numbers.
type Options struct {
	Iterations int     // methodology iterations (default 10, the paper's count)
	Seeds      []int64 // evaluation seeds (default 1..5)
	Horizon    float64 // sim horizon (default 2000)
	WarmUp     float64 // sim warm-up (default 100)
	// Workers bounds the goroutines each experiment fans its points
	// (budgets, seeds) across. 0 means GOMAXPROCS; 1 forces serial runs.
	// Results are identical for every worker count — the sweep runner
	// aggregates in point order.
	Workers int
	// Cache, when non-nil, is shared by every methodology run the experiment
	// fans out, deduplicating identical per-bus sub-model solves fleet-wide
	// (see internal/solvecache). Use PlanBudgetSweep/Prewarm to pre-populate
	// it, and Cache.Stats for the hit/miss/warm-start counters.
	Cache *solvecache.Cache
	// Delta enables the cache's delta re-solve tier for capped joint
	// programs (solvecache.Cache.EnableDelta): budget points chain their
	// capped solves point-to-point through retained simplex tableaus. With
	// concurrent workers the chained answers may vary at roundoff level with
	// schedule (see EnableDelta), which is why this is opt-in rather than
	// part of the default cached path; results agree with the warm-start-only
	// path to 1e-8 (gated by TestDeltaSweepMatchesWarmOnly). Ignored without
	// a cache.
	Delta bool
	// OnBudgetRow, when non-nil, is invoked from a worker goroutine as each
	// budget-sweep point completes — in completion order, not input order, so
	// the callback must be safe for concurrent use. The final
	// BudgetSweepResult is unaffected (aggregation still walks input order);
	// the hook exists so long sweeps can stream per-point rows as they land
	// (socbufd's NDJSON endpoints are the consumer).
	OnBudgetRow func(BudgetRow)
	// OnScenarioRow is OnBudgetRow for scenario sweeps.
	OnScenarioRow func(ScenarioRow)
	// Method selects the solver backend every methodology run uses ("exact"
	// | "analytic" | "hybrid"; empty = exact — see internal/solver). Budget
	// sweeps can override it per point with PointMethods; scenarios' own
	// Method fields win over this default.
	Method string
	// PointMethods optionally overrides Method per budget-sweep point,
	// aligned index-for-index with the budgets slice (empty entries inherit
	// Method). Length must be zero or the number of budgets. This is the
	// device that lets one sweep screen most points analytically and refine
	// only the Pareto knee exactly.
	PointMethods []string
	// Uncertainty is the traffic-uncertainty spec handed to every
	// methodology run (the robust backend consumes it; others carry it
	// untouched). A scenario's own Uncertainty field wins over this
	// default, mirroring Method.
	Uncertainty *uncertain.Spec
	// Observer, when non-nil, is invoked after every methodology run a
	// sweep executes, with the resolved backend name and the run's wall
	// time (failed runs included — they consumed the time). Called from
	// worker goroutines; must be safe for concurrent use. internal/engine
	// hangs its per-backend stats counters off this hook.
	Observer func(method string, wall time.Duration)
}

// runMethod executes one methodology run through the solver registry,
// timing it for opt.Observer — the single funnel every sweep point and
// figure/table regeneration goes through.
func runMethod(ctx context.Context, cfg core.Config, opt Options) (*core.Result, error) {
	start := time.Now()
	res, err := solver.Run(ctx, cfg)
	if opt.Observer != nil {
		opt.Observer(solver.Canonical(cfg.Method), time.Since(start))
	}
	return res, err
}

// validatePointMethods checks the PointMethods alignment contract.
func (o Options) validatePointMethods(points int) error {
	if len(o.PointMethods) != 0 && len(o.PointMethods) != points {
		return fmt.Errorf("experiments: %d per-point methods for %d budgets", len(o.PointMethods), points)
	}
	return nil
}

// pointMethod resolves point i's backend name.
func (o Options) pointMethod(i int) string {
	if i < len(o.PointMethods) && o.PointMethods[i] != "" {
		return o.PointMethods[i]
	}
	return o.Method
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3, 4, 5}
	}
	if o.Horizon == 0 {
		o.Horizon = 2000
	}
	if o.WarmUp == 0 {
		o.WarmUp = 100
	}
	return o
}

// Figure3Result holds the three per-processor loss series of Figure 3.
type Figure3Result struct {
	Procs []string // p1..p17 in numeric order
	// Pre is the loss under constant (uniform) sizing — the first bar.
	Pre map[string]int64
	// Post is the loss after CTMDP sizing — the second bar.
	Post map[string]int64
	// Timeout is the loss under the timeout policy — the third bar.
	Timeout map[string]int64
	// Totals.
	PreTotal, PostTotal, TimeoutTotal int64
	// TimeoutThreshold is the derived mean-residence threshold.
	TimeoutThreshold float64
	// Worsened lists processors whose loss increased after sizing (the
	// paper: "they increase slightly for some processors").
	Worsened []string
}

// Figure3 regenerates the paper's Figure 3 at the given budget (the paper
// uses the scarce-budget regime; 160 matches Table 1's first column).
func Figure3(budget int, opt Options) (*Figure3Result, error) {
	opt = opt.withDefaults()
	a := arch.NetworkProcessor()

	res, err := runMethod(context.Background(), core.Config{
		Arch:       a,
		Budget:     budget,
		Iterations: opt.Iterations,
		Seeds:      opt.Seeds,
		Horizon:    opt.Horizon,
		WarmUp:     opt.WarmUp,
		Workers:    opt.Workers,
		Cache:      opt.Cache,
		Method:     opt.Method,
	}, opt)
	if err != nil {
		return nil, err
	}

	// Timeout policy: uniform allocation; threshold = average residence
	// time measured on a calibration run of the same system.
	buffered := res.Arch
	calib, err := sim.New(sim.Config{
		Arch: buffered, Alloc: res.BaselineAlloc,
		Horizon: opt.Horizon, WarmUp: opt.WarmUp, Seed: opt.Seeds[0],
	})
	if err != nil {
		return nil, err
	}
	calibRes, err := calib.Run()
	if err != nil {
		return nil, err
	}
	threshold, err := policy.TimeoutThreshold(calibRes)
	if err != nil {
		return nil, err
	}
	// The per-seed timeout evaluations are independent sweep points; fan
	// them out and merge in seed order.
	perSeed, err := parallel.Map(len(opt.Seeds), opt.Workers, func(i int) (*sim.Results, error) {
		s, err := sim.New(sim.Config{
			Arch: buffered, Alloc: res.BaselineAlloc,
			Horizon: opt.Horizon, WarmUp: opt.WarmUp, Seed: opt.Seeds[i],
			Timeout: threshold,
		})
		if err != nil {
			return nil, err
		}
		return s.Run()
	})
	if err != nil {
		return nil, err
	}
	timeout := map[string]int64{}
	var timeoutTotal int64
	for _, r := range perSeed {
		for p, v := range r.Lost {
			timeout[p] += v
		}
		timeoutTotal += r.TotalLost()
	}

	out := &Figure3Result{
		Pre:              res.BaselineLossByProc,
		Post:             res.Best.LossByProc,
		Timeout:          timeout,
		PreTotal:         res.BaselineLoss,
		PostTotal:        res.Best.SimLoss,
		TimeoutTotal:     timeoutTotal,
		TimeoutThreshold: threshold,
	}
	for _, p := range a.Processors {
		out.Procs = append(out.Procs, p.ID)
	}
	sort.Slice(out.Procs, func(i, j int) bool {
		return procNum(out.Procs[i]) < procNum(out.Procs[j])
	})
	for _, p := range out.Procs {
		if out.Post[p] > out.Pre[p] {
			out.Worsened = append(out.Worsened, p)
		}
	}
	return out, nil
}

func procNum(id string) int {
	var n int
	fmt.Sscanf(id, "p%d", &n)
	return n
}

// Table1Result holds the budget sweep of Table 1.
type Table1Result struct {
	Budgets []int
	Procs   []string
	// Pre[budget][proc] and Post[budget][proc] are the loss counts before
	// and after sizing.
	Pre  map[int]map[string]int64
	Post map[int]map[string]int64
	// Totals per budget.
	PreTotal  map[int]int64
	PostTotal map[int]int64
}

// Table1 regenerates the paper's Table 1: loss at selected processors under
// varying total buffer size. The paper tracks processors 1, 4, 15, 16.
func Table1(budgets []int, procs []string, opt Options) (*Table1Result, error) {
	opt = opt.withDefaults()
	if len(budgets) == 0 {
		budgets = []int{160, 320, 640}
	}
	if len(procs) == 0 {
		procs = []string{"p1", "p4", "p15", "p16"}
	}
	out := &Table1Result{
		Budgets:   budgets,
		Procs:     procs,
		Pre:       map[int]map[string]int64{},
		Post:      map[int]map[string]int64{},
		PreTotal:  map[int]int64{},
		PostTotal: map[int]int64{},
	}
	// Budgets are independent sweep points: fan them across the worker pool
	// and aggregate in budget order. Any point's failure is reported with
	// its budget; the whole table fails, matching the serial behaviour.
	// Each point runs its seeds serially (Workers: 1) — the outer fan-out
	// already saturates the pool, and nesting would multiply concurrency to
	// Workers² goroutines.
	points, err := parallel.Map(len(budgets), opt.Workers, func(i int) (*core.Result, error) {
		res, err := runMethod(context.Background(), core.Config{
			Arch:       arch.NetworkProcessor(),
			Budget:     budgets[i],
			Iterations: opt.Iterations,
			Seeds:      opt.Seeds,
			Horizon:    opt.Horizon,
			WarmUp:     opt.WarmUp,
			Workers:    1,
			Cache:      opt.Cache,
			Method:     opt.Method,
		}, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: budget %d: %w", budgets[i], err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range points {
		b := budgets[i]
		out.Pre[b] = res.BaselineLossByProc
		out.Post[b] = res.Best.LossByProc
		out.PreTotal[b] = res.BaselineLoss
		out.PostTotal[b] = res.Best.SimLoss
	}
	return out, nil
}

// SplitDemoResult holds the §2 solvability demonstration on Figure 1.
type SplitDemoResult struct {
	// KKTValid reports whether Newton on the coupled quadratic system's KKT
	// conditions produced a valid solution (the paper: it does not).
	KKTValid  bool
	KKTReason string
	// CoupledUnknowns is the size of the quadratic system.
	CoupledUnknowns int
	// SplitSubsystems counts the linear subsystems after buffer insertion
	// (the paper's Figure 2 shows 4).
	SplitSubsystems int
	// SplitLossRate is the joint-LP optimum of the split system.
	SplitLossRate float64
	// SplitIters counts simplex pivots — a single finite LP solve, versus
	// the nonlinear iteration that failed.
	SplitIters int
}

// SplitDemo reproduces §2 on the Figure 1 architecture: the coupled
// quadratic system defeats a Newton/KKT solver, while after buffer insertion
// the split system solves as one linear program.
func SplitDemo() (*SplitDemoResult, error) {
	a := arch.Figure1()
	groups, err := graph.CoupledGroups(a)
	if err != nil {
		return nil, err
	}
	if len(groups) != 1 {
		return nil, fmt.Errorf("experiments: expected 1 coupled group, got %d", len(groups))
	}
	cs, err := nonlinear.FromArchitecture(a, groups[0].Buses, 2)
	if err != nil {
		return nil, err
	}
	kkt, err := cs.KKTNewton(nonlinear.NewtonOptions{MaxIters: 150})
	if err != nil {
		return nil, err
	}

	out := &SplitDemoResult{
		KKTValid:        kkt.Valid,
		KKTReason:       kkt.Diag.Reason,
		CoupledUnknowns: cs.NumUnknowns(),
	}

	// Buffer insertion and split.
	b := arch.Figure1()
	b.InsertBridgeBuffers()
	subs, err := graph.Split(b)
	if err != nil {
		return nil, err
	}
	out.SplitSubsystems = len(subs)

	alloc, err := arch.UniformAllocation(b, 40)
	if err != nil {
		return nil, err
	}
	models, err := core.BuildSubsystemModels(b, alloc, core.Config{Arch: b, Budget: 40})
	if err != nil {
		return nil, err
	}
	sol, err := ctmdp.SolveJoint(models, ctmdp.JointConfig{})
	if err != nil {
		return nil, err
	}
	out.SplitLossRate = sol.TotalLossRate
	out.SplitIters = sol.Iters
	return out, nil
}

// HeadlineResult carries the §3 summary ratios.
type HeadlineResult struct {
	// CTMDPOverConstant = post/pre total loss (paper: ≈ 0.8, a 20% drop).
	CTMDPOverConstant float64
	// CTMDPOverTimeout = post/timeout total loss (paper: ≈ 0.5).
	CTMDPOverTimeout float64
	Fig3             *Figure3Result
}

// Headline computes the paper's two headline ratios at the scarce budget.
func Headline(budget int, opt Options) (*HeadlineResult, error) {
	fig, err := Figure3(budget, opt)
	if err != nil {
		return nil, err
	}
	out := &HeadlineResult{Fig3: fig}
	if fig.PreTotal > 0 {
		out.CTMDPOverConstant = float64(fig.PostTotal) / float64(fig.PreTotal)
	}
	if fig.TimeoutTotal > 0 {
		out.CTMDPOverTimeout = float64(fig.PostTotal) / float64(fig.TimeoutTotal)
	}
	return out, nil
}
