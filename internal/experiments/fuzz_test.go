package experiments

import (
	"strings"
	"testing"
)

// FuzzParseMethods checks the per-point method-list parser's invariants on
// arbitrary input: never panics, nil exactly for blank input, one segment
// per comma otherwise, every segment trimmed, and parsing idempotent —
// re-joining the output and parsing again reproduces it.
func FuzzParseMethods(f *testing.F) {
	f.Add("")
	f.Add("analytic,analytic,exact")
	f.Add("analytic,,hybrid")
	f.Add("robust")
	f.Add(" exact ,\trobust\n")
	f.Add(",,,")
	f.Add("a,b,c,d,e,f,g,h")
	f.Fuzz(func(t *testing.T, s string) {
		got := ParseMethods(s)
		if strings.TrimSpace(s) == "" {
			if got != nil {
				t.Fatalf("blank input %q parsed to %v, want nil", s, got)
			}
			return
		}
		if want := strings.Count(s, ",") + 1; len(got) != want {
			t.Fatalf("%q: %d segments, want %d", s, len(got), want)
		}
		for i, m := range got {
			if m != strings.TrimSpace(m) {
				t.Fatalf("%q: segment %d %q not trimmed", s, i, m)
			}
			if strings.ContainsRune(m, ',') {
				t.Fatalf("%q: segment %d %q contains a separator", s, i, m)
			}
		}
		again := ParseMethods(strings.Join(got, ","))
		if len(again) != len(got) {
			// A fully-blank list (",," → ["","",""]) re-parses to nil; that
			// asymmetry is the documented blank-input rule, not a bug.
			if strings.TrimSpace(strings.Join(got, ",")) == "" {
				return
			}
			t.Fatalf("%q: not idempotent: %v vs %v", s, got, again)
		}
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("%q: not idempotent at %d: %q vs %q", s, i, got[i], again[i])
			}
		}
	})
}
