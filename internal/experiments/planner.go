package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/ctmdp"
	"socbuf/internal/parallel"
	"socbuf/internal/report"
	"socbuf/internal/solvecache"
	"socbuf/internal/solver"
)

// SweepPlan is the up-front fingerprint analysis of a budget sweep: every
// point's initial sub-models are fingerprinted before any point runs, so the
// sweep knows how much solve work is genuinely unique. Budget points share
// their entire boundary-lambda trajectory (capacities never enter the
// cap-free programs), so the structural count is the real number of cold
// solves the fleet's first wave needs.
type SweepPlan struct {
	// Budgets lists the planned points (invalid points are dropped here and
	// left to the sweep itself to report).
	Budgets []int
	// Skipped pairs each unplannable budget with its error.
	Skipped []BudgetError
	// Models is the total sub-model count across all points.
	Models int
	// UniqueExact counts distinct full fingerprints (capacities included).
	UniqueExact int
	// UniqueStructural counts distinct structural fingerprints — the number
	// of cold solves needed to warm-start every point's first iteration.
	UniqueStructural int
	// DeltaFamilies counts distinct capped-program structural families
	// (JointStructuralFingerprint) across the points' initial models — the
	// number of retained-tableau constructions the sweep's first wave needs
	// when the delta tier is enabled. Budget points share their boundary
	// trajectory, so this is typically 1: every point's capped solves chain
	// through the same resolver.
	DeltaFamilies int

	// representatives holds one model per structural class, in first-seen
	// order, for Prewarm.
	representatives []*ctmdp.Model
}

// PlanBudgetSweep fingerprints every point of a budget sweep up front:
// each budget's buffered architecture, uniform allocation and initial
// boundary sub-models, keyed exactly as the sweep's own solves will be.
// newArch follows the BudgetSweep contract (nil = the network processor).
func PlanBudgetSweep(newArch func() *arch.Architecture, budgets []int, opt Options) (*SweepPlan, error) {
	if len(budgets) == 0 {
		return nil, errors.New("experiments: empty budget sweep plan")
	}
	if newArch == nil {
		newArch = arch.NetworkProcessor
	}
	opts := solvecache.SolveOptions{} // BudgetSweep solves with default options
	plan := &SweepPlan{}
	exact := map[solvecache.Key]bool{}
	structural := map[solvecache.Key]bool{}
	families := map[solvecache.Key]bool{}
	for _, b := range budgets {
		models, err := initialModels(newArch(), b)
		if err != nil {
			plan.Skipped = append(plan.Skipped, BudgetError{Budget: b, Err: err})
			continue
		}
		plan.Budgets = append(plan.Budgets, b)
		plan.Models += len(models)
		families[solvecache.JointStructuralFingerprint(models, opts)] = true
		for _, m := range models {
			exact[solvecache.Fingerprint(m, opts)] = true
			sk := solvecache.StructuralFingerprint(m, opts)
			if !structural[sk] {
				structural[sk] = true
				plan.representatives = append(plan.representatives, m)
			}
		}
	}
	plan.UniqueExact = len(exact)
	plan.UniqueStructural = len(structural)
	plan.DeltaFamilies = len(families)
	if len(plan.Budgets) == 0 {
		return plan, fmt.Errorf("experiments: no plannable budgets: %w", plan.Skipped[0].Err)
	}
	return plan, nil
}

// initialModels rebuilds the sub-models a sweep point starts from: buffered
// clone, uniform allocation, loss-free boundary — the same construction
// core.Run performs before its first solve.
func initialModels(a *arch.Architecture, budget int) ([]*ctmdp.Model, error) {
	buffered := a.Clone()
	buffered.InsertBridgeBuffers()
	if err := buffered.Validate(); err != nil {
		return nil, err
	}
	alloc, err := arch.UniformAllocation(buffered, budget)
	if err != nil {
		return nil, err
	}
	return core.BuildSubsystemModels(buffered, alloc, core.Config{Arch: buffered, Budget: budget})
}

// Prewarm cold-solves one representative per structural class into the
// cache, fanning the solves across the worker pool. After Prewarm, every
// point's first-iteration solves are warm starts at worst; the shared
// boundary trajectory then keeps later iterations deduplicated as the first
// worker to reach each new lambda vector populates it for the fleet.
func (p *SweepPlan) Prewarm(c *solvecache.Cache, workers int) error {
	return p.PrewarmCtx(context.Background(), c, workers)
}

// PrewarmCtx is Prewarm with cooperative cancellation of the solve fan-out.
func (p *SweepPlan) PrewarmCtx(ctx context.Context, c *solvecache.Cache, workers int) error {
	if c == nil {
		return errors.New("experiments: prewarm needs a cache")
	}
	return parallel.ForEachCtx(ctx, len(p.representatives), workers, func(i int) error {
		_, err := c.SolveJoint([]*ctmdp.Model{p.representatives[i]}, ctmdp.JointConfig{})
		return err
	})
}

// WriteSummary renders the plan in the shared report format.
func (p *SweepPlan) WriteSummary(w io.Writer) error {
	headers := []string{"POINTS", "sub-models", "unique", "structural", "delta families"}
	rows := [][]string{{
		fmt.Sprint(len(p.Budgets)),
		fmt.Sprint(p.Models),
		fmt.Sprint(p.UniqueExact),
		fmt.Sprint(p.UniqueStructural),
		fmt.Sprint(p.DeltaFamilies),
	}}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	for _, s := range p.Skipped {
		if _, err := fmt.Fprintf(w, "  SKIPPED budget %d: %v\n", s.Budget, s.Err); err != nil {
			return err
		}
	}
	return nil
}

// CachedBudgetSweep is the planned, cache-shared variant of BudgetSweep:
// fingerprint all points, prewarm one solve per structural class, then run
// the sweep with every point sharing opt.Cache (created when nil). The
// result, plan and cache stats come back together for reporting.
func CachedBudgetSweep(newArch func() *arch.Architecture, budgets []int, opt Options) (*BudgetSweepResult, *SweepPlan, error) {
	return CachedBudgetSweepCtx(context.Background(), newArch, budgets, opt)
}

// usesExactTier reports whether any sweep point runs an exact-family
// backend (exact or hybrid — both solve CTMDP sub-models the plan's
// prewarmed entries can serve). An all-analytic sweep has nothing to
// prewarm: the analytic tier caches whole-architecture sizings, not
// sub-model solves.
func usesExactTier(opt Options, points int) bool {
	for i := 0; i < points; i++ {
		if solver.Canonical(opt.pointMethod(i)) != solver.MethodAnalytic {
			return true
		}
	}
	return false
}

// CachedBudgetSweepCtx is CachedBudgetSweep with cooperative cancellation
// threaded through planning, prewarming and the sweep itself. Sweeps whose
// every point runs the analytic backend skip the (exact-tier) planning and
// prewarm entirely and return a nil plan — the shared cache still serves
// their analytic tier.
func CachedBudgetSweepCtx(ctx context.Context, newArch func() *arch.Architecture, budgets []int, opt Options) (*BudgetSweepResult, *SweepPlan, error) {
	if opt.Cache == nil {
		opt.Cache = solvecache.New()
	}
	if opt.Delta {
		opt.Cache.EnableDelta()
	}
	if !usesExactTier(opt, len(budgets)) {
		res, err := BudgetSweepCtx(ctx, newArch, budgets, opt)
		return res, nil, err
	}
	plan, err := PlanBudgetSweep(newArch, budgets, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := plan.PrewarmCtx(ctx, opt.Cache, opt.Workers); err != nil {
		return nil, plan, err
	}
	res, err := BudgetSweepCtx(ctx, newArch, budgets, opt)
	return res, plan, err
}

// SweepWithPlan is the dispatch both CLIs share: with opt.Cache set it
// plans, prewarms and runs the cache-shared sweep, writing the plan summary
// to w first; otherwise it runs the plain BudgetSweep. A nil w suppresses
// the summary.
func SweepWithPlan(w io.Writer, newArch func() *arch.Architecture, budgets []int, opt Options) (*BudgetSweepResult, error) {
	res, _, err := SweepWithPlanCtx(context.Background(), w, newArch, budgets, opt)
	return res, err
}

// SweepWithPlanCtx is SweepWithPlan with cooperative cancellation; it also
// hands the plan back (nil without a cache) so service callers can report it
// without re-planning.
func SweepWithPlanCtx(ctx context.Context, w io.Writer, newArch func() *arch.Architecture, budgets []int, opt Options) (*BudgetSweepResult, *SweepPlan, error) {
	if opt.Cache == nil {
		res, err := BudgetSweepCtx(ctx, newArch, budgets, opt)
		return res, nil, err
	}
	res, plan, err := CachedBudgetSweepCtx(ctx, newArch, budgets, opt)
	if plan != nil && w != nil {
		if _, werr := fmt.Fprintln(w, "sweep plan:"); werr != nil {
			return res, plan, werr
		}
		if werr := plan.WriteSummary(w); werr != nil {
			return res, plan, werr
		}
		if _, werr := fmt.Fprintln(w); werr != nil {
			return res, plan, werr
		}
	}
	return res, plan, err
}

// WriteCacheStats renders a cache-counter snapshot in the shared report
// format (the body of both CLIs' -cache-stats flag): the raw counters, then
// the derived per-tier hit rates (solvecache.Stats.Rates). Tiers appear only
// once touched, keeping exact-only invocations' output compact.
func WriteCacheStats(w io.Writer, s solvecache.Stats) error {
	headers := []string{"HITS", "warm starts", "misses", "joint hits", "joint misses", "entries"}
	rows := [][]string{{
		fmt.Sprint(s.Hits),
		fmt.Sprint(s.WarmStarts),
		fmt.Sprint(s.Misses),
		fmt.Sprint(s.JointHits),
		fmt.Sprint(s.JointMisses),
		fmt.Sprint(s.Entries + s.JointEntries + s.AnalyticEntries + s.RobustEntries + s.PlacementEntries),
	}}
	if s.AnalyticHits+s.AnalyticMisses > 0 {
		headers = append(headers, "analytic hits", "analytic misses")
		rows[0] = append(rows[0], fmt.Sprint(s.AnalyticHits), fmt.Sprint(s.AnalyticMisses))
	}
	if s.RobustHits+s.RobustMisses > 0 {
		headers = append(headers, "robust hits", "robust misses")
		rows[0] = append(rows[0], fmt.Sprint(s.RobustHits), fmt.Sprint(s.RobustMisses))
	}
	if s.PlacementHits+s.PlacementMisses > 0 {
		headers = append(headers, "placement hits", "placement misses")
		rows[0] = append(rows[0], fmt.Sprint(s.PlacementHits), fmt.Sprint(s.PlacementMisses))
	}
	if s.DeltaResolves+s.DeltaFallbacks+int64(s.DeltaEntries) > 0 {
		headers = append(headers, "delta resolves", "delta fallbacks")
		rows[0] = append(rows[0], fmt.Sprint(s.DeltaResolves), fmt.Sprint(s.DeltaFallbacks))
	}
	if s.RemoteHits+s.RemoteMisses > 0 {
		headers = append(headers, "remote hits", "remote misses")
		rows[0] = append(rows[0], fmt.Sprint(s.RemoteHits), fmt.Sprint(s.RemoteMisses))
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	rates := s.Rates()
	if len(rates) == 0 {
		return nil
	}
	// Fixed tier order (the Rates doc's order), filtered to traffic seen.
	var rh, rr []string
	for _, tier := range []string{"exact", "structural", "joint", "joint-delta", "analytic", "robust", "placement", "remote"} {
		if v, ok := rates[tier]; ok {
			rh = append(rh, tier)
			rr = append(rr, fmt.Sprintf("%.1f%%", 100*v))
		}
	}
	if _, err := fmt.Fprintln(w, "\nhit rates:"); err != nil {
		return err
	}
	return report.Table(w, rh, [][]string{rr})
}
