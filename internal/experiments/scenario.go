package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"socbuf/internal/core"
	"socbuf/internal/parallel"
	"socbuf/internal/report"
	"socbuf/internal/scenario"
	"socbuf/internal/sim"
	"socbuf/internal/uncertain"
)

// ScenarioPoint is one scenario's outcome row. The JSON tags are the
// machine-readable contract shared by WriteJSON, the CLIs' -json flag and
// the socbufd scenario-sweep stream.
type ScenarioPoint struct {
	Name    string `json:"name"`
	Arch    string `json:"arch"` // architecture name
	Buses   int    `json:"buses"`
	Buffers int    `json:"buffers"` // buffer count after insertion (what Budget divides over)
	Traffic string `json:"traffic"`
	Budget  int    `json:"budget"`
	// Method is the solver backend the point ran with (empty = exact, so
	// pre-backend consumers' JSON is unchanged).
	Method string `json:"method,omitempty"`
	// Pre and Post are total simulated losses before/after CTMDP sizing,
	// summed over the evaluation seeds.
	Pre  int64 `json:"uniformLoss"`
	Post int64 `json:"sizedLoss"`
	// Improvement is 1 − post/pre (0 when pre is 0).
	Improvement float64 `json:"improvement"`
	// LossFrac and Latency come from a probe simulation of the best
	// allocation on the first seed: the fraction of generated packets lost,
	// and the Little's-law mean packet sojourn (Σ mean buffer occupancy /
	// delivery throughput).
	LossFrac float64 `json:"lossFrac"`
	Latency  float64 `json:"latency"`
	// Robust carries a robust-backend point's chance-constraint report
	// (empirical yield, Wilson bound, budget used); omitted otherwise.
	Robust *uncertain.Report `json:"robust,omitempty"`
}

// ScenarioRow is one scenario point in machine-readable form — a
// ScenarioPoint plus the error string of a failed point (zero-valued
// losses). It is the unit of both ScenarioSweepResult.WriteJSON and the
// socbufd NDJSON stream.
type ScenarioRow struct {
	ScenarioPoint
	Error string `json:"error,omitempty"`
}

// ScenarioError records one failed sweep point.
type ScenarioError struct {
	Name string
	Err  error
}

// ScenarioSweepResult holds a parallel sweep over scenarios. Points appear
// in input order; the aggregation is byte-identical for any worker count.
type ScenarioSweepResult struct {
	Points []ScenarioPoint
	Failed []ScenarioError
}

// Err joins the per-scenario failures (nil when every point succeeded).
func (r *ScenarioSweepResult) Err() error {
	errs := make([]error, len(r.Failed))
	for i, f := range r.Failed {
		errs[i] = fmt.Errorf("scenario %s: %w", f.Name, f.Err)
	}
	return errors.Join(errs...)
}

// WriteTable renders the sweep — one row per successful scenario, one
// trailing line per failure — in the shared report format. A method column
// appears only when some point ran a non-exact backend.
func (r *ScenarioSweepResult) WriteTable(w io.Writer) error {
	withMethod, withYield := false, false
	for _, p := range r.Points {
		if p.Method != "" {
			withMethod = true
		}
		if p.Robust != nil {
			withYield = true
		}
	}
	headers := []string{"SCENARIO", "arch", "buses", "buffers", "traffic", "budget",
		"uniform loss", "sized loss", "improvement", "loss frac", "latency"}
	if withMethod {
		headers = append(headers, "method")
	}
	if withYield {
		headers = append(headers, "yield", "yield low", "met")
	}
	var rows [][]string
	for _, p := range r.Points {
		row := []string{
			p.Name, p.Arch, fmt.Sprint(p.Buses), fmt.Sprint(p.Buffers), p.Traffic,
			fmt.Sprint(p.Budget), fmt.Sprint(p.Pre), fmt.Sprint(p.Post),
			fmt.Sprintf("%.1f%%", p.Improvement*100),
			fmt.Sprintf("%.4f", p.LossFrac),
			fmt.Sprintf("%.3f", p.Latency),
		}
		if withMethod {
			m := p.Method
			if m == "" {
				m = "exact"
			}
			row = append(row, m)
		}
		if withYield {
			row = append(row, yieldCells(p.Robust)...)
		}
		rows = append(rows, row)
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	for _, f := range r.Failed {
		if _, err := fmt.Fprintf(w, "  FAILED scenario %s: %v\n", f.Name, f.Err); err != nil {
			return err
		}
	}
	return nil
}

// Rows flattens the sweep into machine-readable rows: successful points in
// input order, then failed points in input order.
func (r *ScenarioSweepResult) Rows() []ScenarioRow {
	rows := make([]ScenarioRow, 0, len(r.Points)+len(r.Failed))
	for _, p := range r.Points {
		rows = append(rows, ScenarioRow{ScenarioPoint: p})
	}
	for _, f := range r.Failed {
		rows = append(rows, ScenarioRow{ScenarioPoint: ScenarioPoint{Name: f.Name}, Error: f.Err.Error()})
	}
	return rows
}

// WriteJSON renders the sweep as one indented JSON document
// ({"points": [ScenarioRow...]}) — the machine-readable sibling of
// WriteTable.
func (r *ScenarioSweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Points []ScenarioRow `json:"points"`
	}{r.Rows()})
}

// WriteScenarioList renders the scenario registry as a table — the shared
// body of both CLIs' -list-scenarios flag.
func WriteScenarioList(w io.Writer) error {
	headers := []string{"NAME", "topology", "traffic", "budget", "description"}
	var rows [][]string
	for _, s := range scenario.All() {
		rows = append(rows, []string{
			s.Name, s.Topology.String(), s.Traffic.String(), fmt.Sprint(s.Budget), s.Description,
		})
	}
	return report.Table(w, headers, rows)
}

// ParseSeeds parses a comma-separated seed list like "1,2,3", ignoring
// empty segments. The scenario CLIs share this parser.
func ParseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad seed %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no seeds in %q", s)
	}
	return out, nil
}

// ParseNames splits a comma-separated scenario-name list, ignoring empty
// segments; an empty list means "the whole registry" to ScenarioSweep's
// callers.
func ParseNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ScenarioSweep runs the full methodology on every scenario, fanning the
// points across opt.Workers goroutines. A scenario's own solver knobs win;
// its zero fields inherit opt (so -quick trims every scenario uniformly).
// Failed scenarios are collected per point rather than aborting the sweep;
// the returned error is r.Err().
func ScenarioSweep(scs []scenario.Scenario, opt Options) (*ScenarioSweepResult, error) {
	return ScenarioSweepCtx(context.Background(), scs, opt)
}

// ScenarioSweepCtx is ScenarioSweep with cooperative cancellation, threaded
// into both the point fan-out and each scenario's methodology run (see
// BudgetSweepCtx for the cancellation semantics).
func ScenarioSweepCtx(ctx context.Context, scs []scenario.Scenario, opt Options) (*ScenarioSweepResult, error) {
	opt = opt.withDefaults()
	if len(scs) == 0 {
		return nil, errors.New("experiments: empty scenario sweep")
	}
	points, err := parallel.MapCtx(ctx, len(scs), opt.Workers, func(i int) (ScenarioPoint, error) {
		p, err := runScenario(ctx, scs[i], opt)
		if opt.OnScenarioRow != nil {
			row := ScenarioRow{ScenarioPoint: p}
			if err != nil {
				row = ScenarioRow{ScenarioPoint: ScenarioPoint{Name: scs[i].Name}, Error: err.Error()}
			}
			opt.OnScenarioRow(row)
		}
		return p, err
	})

	out := &ScenarioSweepResult{}
	failedAt := map[int]error{}
	for _, pe := range parallel.Points(err) {
		failedAt[pe.Index] = pe.Err
	}
	for i, p := range points {
		if fe, ok := failedAt[i]; ok {
			out.Failed = append(out.Failed, ScenarioError{Name: scs[i].Name, Err: fe})
			continue
		}
		out.Points = append(out.Points, p)
	}
	return out, out.Err()
}

// runScenario executes one point: methodology run plus a probe simulation of
// the winning allocation for the loss-fraction and latency estimates.
// Points run their seeds serially (Workers: 1) — the outer fan-out already
// saturates the pool.
func runScenario(ctx context.Context, sc scenario.Scenario, opt Options) (ScenarioPoint, error) {
	cfg, err := sc.CoreConfig()
	if err != nil {
		return ScenarioPoint{}, err
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = opt.Iterations
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = opt.Seeds
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = opt.Horizon
	}
	if cfg.WarmUp == 0 {
		cfg.WarmUp = opt.WarmUp
	}
	if cfg.Method == "" {
		cfg.Method = opt.Method
	}
	if cfg.Uncertainty == nil {
		cfg.Uncertainty = opt.Uncertainty
	}
	cfg.Workers = 1
	cfg.Cache = opt.Cache

	res, err := runMethod(ctx, cfg, opt)
	if err != nil {
		return ScenarioPoint{}, err
	}

	// The probe measures the same system the sized-loss column did: the best
	// allocation under its own CTMDP arbitration and the scenario's traffic.
	// Analytic sizings carry no CTMDP solution — their probe keeps the
	// longest-queue default, matching how their sized loss was evaluated.
	probeCfg := sim.Config{
		Arch:    res.Arch,
		Alloc:   res.Best.Alloc,
		Horizon: cfg.Horizon,
		WarmUp:  cfg.WarmUp,
		Seed:    cfg.Seeds[0],
	}
	if !cfg.DisableCTMDPArbiter && res.Best.Solution != nil {
		probeCfg.Arbiters, err = core.Arbiters(res.Arch, res.Best.Solution, res.Best.Alloc)
		if err != nil {
			return ScenarioPoint{}, err
		}
	}
	if cfg.Traffic != nil {
		probeCfg.Sources, err = cfg.Traffic(res.Arch)
		if err != nil {
			return ScenarioPoint{}, err
		}
	}
	probe, err := sim.New(probeCfg)
	if err != nil {
		return ScenarioPoint{}, err
	}
	pr, err := probe.Run()
	if err != nil {
		return ScenarioPoint{}, err
	}

	p := ScenarioPoint{
		Name:        sc.Name,
		Arch:        res.Arch.Name,
		Buses:       len(res.Arch.Buses),
		Buffers:     len(res.Arch.BufferIDs()),
		Traffic:     sc.Traffic.String(),
		Budget:      sc.Budget,
		Method:      rowMethod(cfg.Method),
		Pre:         res.BaselineLoss,
		Post:        res.Best.SimLoss,
		Improvement: res.Improvement(),
		LossFrac:    pr.LossFraction(),
		Robust:      res.Robust,
	}
	if window := cfg.Horizon - cfg.WarmUp; window > 0 && pr.TotalDelivered() > 0 {
		// Sum in sorted buffer order: float addition order must not depend on
		// map iteration, or identical sweeps drift in the last ULP.
		var occ float64
		for _, id := range report.SortedKeys(pr.MeanOccupancy) {
			occ += pr.MeanOccupancy[id]
		}
		throughput := float64(pr.TotalDelivered()) / window
		p.Latency = occ / throughput
	}
	return p, nil
}
