package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"socbuf/internal/arch"
	"socbuf/internal/core"
	"socbuf/internal/parallel"
	"socbuf/internal/report"
	"socbuf/internal/uncertain"
)

// BudgetSweepResult holds a parallel budget sweep of the full methodology on
// one architecture. Aggregation is order-stable: every map is keyed by
// budget and filled by walking the points in input order, so the result is
// byte-identical for any worker count.
type BudgetSweepResult struct {
	// Budgets lists the points that succeeded, in input order.
	Budgets []int
	// Pre and Post are total simulated losses before/after CTMDP sizing.
	Pre, Post map[int]int64
	// Improvement is 1 − post/pre per budget (0 when pre is 0).
	Improvement map[int]float64
	// Method records each point's solver backend, keyed by budget; points
	// on the exact default are omitted.
	Method map[int]string
	// Robust records the chance-constraint report of each robust-backend
	// point, keyed by budget; other points are absent. When non-empty the
	// rendered table grows yield columns.
	Robust map[int]*uncertain.Report
	// Failed pairs each failing budget with its error, in input order; the
	// successful points above are still populated.
	Failed []BudgetError
}

// BudgetError records one failed sweep point.
type BudgetError struct {
	Budget int
	Err    error
}

// BudgetRow is one budget point in machine-readable form — the unit of both
// BudgetSweepResult.WriteJSON and the socbufd NDJSON stream (one row per
// line as points complete). A failed point carries its error string and
// zero-valued losses. Method is the solver backend the point ran with
// (omitted for the exact default, keeping pre-backend consumers' JSON
// unchanged).
type BudgetRow struct {
	Budget      int     `json:"budget"`
	Method      string  `json:"method,omitempty"`
	UniformLoss int64   `json:"uniformLoss"`
	SizedLoss   int64   `json:"sizedLoss"`
	Improvement float64 `json:"improvement"`
	// Robust carries a robust-backend point's chance-constraint report
	// (empirical yield, Wilson bound, budget used); omitted otherwise.
	Robust *uncertain.Report `json:"robust,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// Rows flattens the sweep into machine-readable rows: successful points in
// input order, then failed points in input order.
func (r *BudgetSweepResult) Rows() []BudgetRow {
	rows := make([]BudgetRow, 0, len(r.Budgets)+len(r.Failed))
	for _, b := range r.Budgets {
		rows = append(rows, BudgetRow{
			Budget:      b,
			Method:      r.Method[b],
			UniformLoss: r.Pre[b],
			SizedLoss:   r.Post[b],
			Improvement: r.Improvement[b],
			Robust:      r.Robust[b],
		})
	}
	for _, f := range r.Failed {
		rows = append(rows, BudgetRow{Budget: f.Budget, Error: f.Err.Error()})
	}
	return rows
}

// WriteJSON renders the sweep as one indented JSON document
// ({"points": [BudgetRow...]}) — the machine-readable sibling of WriteTable,
// shared verbatim by the CLIs' -json flag and the socbufd summary line.
func (r *BudgetSweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Points []BudgetRow `json:"points"`
	}{r.Rows()})
}

// Err joins the per-point failures (nil when every point succeeded).
func (r *BudgetSweepResult) Err() error {
	errs := make([]error, len(r.Failed))
	for i, f := range r.Failed {
		errs[i] = fmt.Errorf("budget %d: %w", f.Budget, f.Err)
	}
	return errors.Join(errs...)
}

// ParseBudgets parses a comma-separated budget list like "160,320,640",
// ignoring empty segments. Both sweep CLIs share this parser.
func ParseBudgets(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad budget %q: %v", part, err)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no budgets in %q", s)
	}
	return out, nil
}

// ParseMethods parses a comma-separated per-point method list like
// "analytic,analytic,exact". Unlike ParseBudgets, empty segments are kept
// (as "") so a list can override only some points — "analytic,,hybrid"
// leaves the middle point on the sweep's default method. Name validation
// happens at dispatch, where the unknown-method message is uniform.
func ParseMethods(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, len(parts))
	for i, p := range parts {
		out[i] = strings.TrimSpace(p)
	}
	return out
}

// WriteTable renders the sweep — one row per successful budget, one trailing
// line per failed point — in the shared report format. A method column
// appears only when some point ran a non-exact backend.
func (r *BudgetSweepResult) WriteTable(w io.Writer) error {
	headers := []string{"BUDGET", "uniform loss", "sized loss", "improvement"}
	if len(r.Method) > 0 {
		headers = append(headers, "method")
	}
	if len(r.Robust) > 0 {
		headers = append(headers, "yield", "yield low", "met")
	}
	var rows [][]string
	for _, b := range r.Budgets {
		row := []string{
			fmt.Sprint(b),
			fmt.Sprint(r.Pre[b]),
			fmt.Sprint(r.Post[b]),
			fmt.Sprintf("%.1f%%", r.Improvement[b]*100),
		}
		if len(r.Method) > 0 {
			m := r.Method[b]
			if m == "" {
				m = "exact"
			}
			row = append(row, m)
		}
		if len(r.Robust) > 0 {
			row = append(row, yieldCells(r.Robust[b])...)
		}
		rows = append(rows, row)
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	for _, f := range r.Failed {
		if _, err := fmt.Fprintf(w, "  FAILED budget %d: %v\n", f.Budget, f.Err); err != nil {
			return err
		}
	}
	return nil
}

// BudgetSweep runs the size→solve→resimulate methodology at every budget,
// fanning the points across opt.Workers goroutines (GOMAXPROCS by default).
// newArch must return a fresh architecture per call — points must not share
// mutable state. Failed points are collected per budget rather than aborting
// the sweep; the returned error is r.Err().
func BudgetSweep(newArch func() *arch.Architecture, budgets []int, opt Options) (*BudgetSweepResult, error) {
	return BudgetSweepCtx(context.Background(), newArch, budgets, opt)
}

// BudgetSweepCtx is BudgetSweep with cooperative cancellation, threaded into
// both the point fan-out and each point's methodology run. On cancellation,
// points not yet started fail with ctx.Err() (reported like any other point
// failure) and in-flight points return as soon as core.RunCtx notices; the
// partial result is still returned.
func BudgetSweepCtx(ctx context.Context, newArch func() *arch.Architecture, budgets []int, opt Options) (*BudgetSweepResult, error) {
	opt = opt.withDefaults()
	if len(budgets) == 0 {
		return nil, errors.New("experiments: empty budget sweep")
	}
	if err := opt.validatePointMethods(len(budgets)); err != nil {
		return nil, err
	}
	if newArch == nil {
		newArch = arch.NetworkProcessor
	}
	// Points run their seeds serially (Workers: 1): the outer fan-out
	// already saturates the pool, and nesting would multiply concurrency to
	// Workers² goroutines. Every point routes through the solver registry,
	// so a sweep can mix backends point by point (Options.PointMethods).
	points, err := parallel.MapCtx(ctx, len(budgets), opt.Workers, func(i int) (*core.Result, error) {
		res, err := runMethod(ctx, core.Config{
			Arch:        newArch(),
			Budget:      budgets[i],
			Iterations:  opt.Iterations,
			Seeds:       opt.Seeds,
			Horizon:     opt.Horizon,
			WarmUp:      opt.WarmUp,
			Workers:     1,
			Cache:       opt.Cache,
			Method:      opt.pointMethod(i),
			Uncertainty: opt.Uncertainty,
		}, opt)
		if opt.OnBudgetRow != nil {
			opt.OnBudgetRow(budgetRow(budgets[i], rowMethod(opt.pointMethod(i)), res, err))
		}
		return res, err
	})

	out := &BudgetSweepResult{
		Pre:         map[int]int64{},
		Post:        map[int]int64{},
		Improvement: map[int]float64{},
		Method:      map[int]string{},
		Robust:      map[int]*uncertain.Report{},
	}
	// Pull per-point failures out of the joined error by index so partial
	// sweeps stay usable.
	failedAt := map[int]error{}
	for _, pe := range parallel.Points(err) {
		failedAt[pe.Index] = pe.Err
	}
	for i, res := range points {
		b := budgets[i]
		if fe, ok := failedAt[i]; ok {
			out.Failed = append(out.Failed, BudgetError{Budget: b, Err: fe})
			continue
		}
		out.Budgets = append(out.Budgets, b)
		out.Pre[b] = res.BaselineLoss
		out.Post[b] = res.Best.SimLoss
		out.Improvement[b] = res.Improvement()
		if m := rowMethod(opt.pointMethod(i)); m != "" {
			out.Method[b] = m
		}
		if res.Robust != nil {
			out.Robust[b] = res.Robust
		}
	}
	return out, out.Err()
}

// rowMethod is the reporting form of a point's method: the exact default
// stays empty so pre-backend report rows are unchanged.
func rowMethod(m string) string {
	if m == "" || m == "exact" {
		return ""
	}
	return m
}

// budgetRow shapes one completed point (or its failure) for the streaming
// hook.
func budgetRow(budget int, method string, res *core.Result, err error) BudgetRow {
	if err != nil {
		return BudgetRow{Budget: budget, Method: method, Error: err.Error()}
	}
	return BudgetRow{
		Budget:      budget,
		Method:      method,
		UniformLoss: res.BaselineLoss,
		SizedLoss:   res.Best.SimLoss,
		Improvement: res.Improvement(),
		Robust:      res.Robust,
	}
}

// yieldCells renders one point's chance-constraint columns ("-" for points
// that ran a non-robust backend in a mixed sweep).
func yieldCells(rep *uncertain.Report) []string {
	if rep == nil {
		return []string{"-", "-", "-"}
	}
	return []string{
		fmt.Sprintf("%.3f", rep.Yield),
		fmt.Sprintf("%.3f", rep.YieldLow),
		fmt.Sprint(rep.Met),
	}
}
