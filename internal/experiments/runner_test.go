package experiments

import (
	"reflect"
	"testing"

	"socbuf/internal/arch"
)

// sweepFast keeps the real-methodology sweep tests cheap enough for -race CI.
var sweepFast = Options{Iterations: 1, Seeds: []int64{1}, Horizon: 400, WarmUp: 50}

// TestTable1WorkerInvariance is the determinism contract of the sweep
// engine: the full Table 1 pipeline must produce identical results with 1, 4
// and 8 workers.
func TestTable1WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	budgets := []int{120, 160}
	var baseline *Table1Result
	for _, workers := range []int{1, 4, 8} {
		opt := sweepFast
		opt.Workers = workers
		tbl, err := Table1(budgets, nil, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = tbl
			continue
		}
		if !reflect.DeepEqual(baseline, tbl) {
			t.Fatalf("workers=%d diverged from serial run:\nserial: %+v\ngot:    %+v", workers, baseline, tbl)
		}
	}
}

func TestBudgetSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	budgets := []int{120, 160}
	res, err := BudgetSweep(arch.NetworkProcessor, budgets, sweepFast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Budgets, budgets) {
		t.Fatalf("budget order not preserved: %v", res.Budgets)
	}
	for _, b := range budgets {
		if res.Pre[b] <= 0 {
			t.Fatalf("budget %d: no baseline loss measured", b)
		}
		if res.Post[b] < 0 {
			t.Fatalf("budget %d: negative post loss", b)
		}
	}
}

// TestBudgetSweepPerPointErrors checks the engine's failure isolation: an
// invalid budget fails its own point while the valid points complete.
func TestBudgetSweepPerPointErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := BudgetSweep(arch.NetworkProcessor, []int{120, -1, 160}, sweepFast)
	if err == nil {
		t.Fatal("invalid budget did not surface an error")
	}
	if len(res.Failed) != 1 || res.Failed[0].Budget != -1 {
		t.Fatalf("failed points = %+v, want exactly budget -1", res.Failed)
	}
	if !reflect.DeepEqual(res.Budgets, []int{120, 160}) {
		t.Fatalf("valid points lost: %v", res.Budgets)
	}
	if res.Pre[120] <= 0 || res.Pre[160] <= 0 {
		t.Fatalf("valid points not populated: %+v", res.Pre)
	}
}

func TestBudgetSweepEmpty(t *testing.T) {
	if _, err := BudgetSweep(nil, nil, Options{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
