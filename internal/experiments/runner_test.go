package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"socbuf/internal/arch"
)

// sweepFast keeps the real-methodology sweep tests cheap enough for -race CI.
var sweepFast = Options{Iterations: 1, Seeds: []int64{1}, Horizon: 400, WarmUp: 50}

// TestTable1WorkerInvariance is the determinism contract of the sweep
// engine: the full Table 1 pipeline must produce identical results with 1, 4
// and 8 workers.
func TestTable1WorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	budgets := []int{120, 160}
	var baseline *Table1Result
	for _, workers := range []int{1, 4, 8} {
		opt := sweepFast
		opt.Workers = workers
		tbl, err := Table1(budgets, nil, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = tbl
			continue
		}
		if !reflect.DeepEqual(baseline, tbl) {
			t.Fatalf("workers=%d diverged from serial run:\nserial: %+v\ngot:    %+v", workers, baseline, tbl)
		}
	}
}

func TestBudgetSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	budgets := []int{120, 160}
	res, err := BudgetSweep(arch.NetworkProcessor, budgets, sweepFast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Budgets, budgets) {
		t.Fatalf("budget order not preserved: %v", res.Budgets)
	}
	for _, b := range budgets {
		if res.Pre[b] <= 0 {
			t.Fatalf("budget %d: no baseline loss measured", b)
		}
		if res.Post[b] < 0 {
			t.Fatalf("budget %d: negative post loss", b)
		}
	}
}

// TestBudgetSweepPerPointErrors checks the engine's failure isolation: an
// invalid budget fails its own point while the valid points complete.
func TestBudgetSweepPerPointErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := BudgetSweep(arch.NetworkProcessor, []int{120, -1, 160}, sweepFast)
	if err == nil {
		t.Fatal("invalid budget did not surface an error")
	}
	if len(res.Failed) != 1 || res.Failed[0].Budget != -1 {
		t.Fatalf("failed points = %+v, want exactly budget -1", res.Failed)
	}
	if !reflect.DeepEqual(res.Budgets, []int{120, 160}) {
		t.Fatalf("valid points lost: %v", res.Budgets)
	}
	if res.Pre[120] <= 0 || res.Pre[160] <= 0 {
		t.Fatalf("valid points not populated: %+v", res.Pre)
	}
}

func TestBudgetSweepEmpty(t *testing.T) {
	if _, err := BudgetSweep(nil, nil, Options{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

// TestBudgetSweepRowsJSONAndStreaming covers the machine-readable surface:
// Rows/WriteJSON agree with the table-side maps, and the OnBudgetRow hook
// fires once per point (including failed points) with the same numbers the
// final result reports.
func TestBudgetSweepRowsJSONAndStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var (
		mu       sync.Mutex
		streamed []BudgetRow
	)
	opt := sweepFast
	opt.Workers = 2
	opt.OnBudgetRow = func(r BudgetRow) {
		mu.Lock()
		streamed = append(streamed, r)
		mu.Unlock()
	}
	budgets := []int{24, -1, 30}
	res, err := BudgetSweep(arch.TwoBusAMBA, budgets, opt)
	if err == nil {
		t.Fatal("invalid budget did not surface an error")
	}
	rows := res.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Budget == -1 {
			if r.Error == "" {
				t.Fatalf("failed row lost its error: %+v", r)
			}
			continue
		}
		if r.Error != "" || r.UniformLoss != res.Pre[r.Budget] || r.SizedLoss != res.Post[r.Budget] {
			t.Fatalf("row diverges from result maps: %+v", r)
		}
	}

	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Points []BudgetRow `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteJSON output does not round-trip: %v\n%s", err, sb.String())
	}
	if !reflect.DeepEqual(doc.Points, rows) {
		t.Fatalf("JSON document diverges from Rows():\n%+v\n%+v", doc.Points, rows)
	}

	// The stream saw every point exactly once, in some completion order.
	if len(streamed) != 3 {
		t.Fatalf("streamed %d rows, want 3: %+v", len(streamed), streamed)
	}
	byBudget := map[int]BudgetRow{}
	for _, r := range streamed {
		byBudget[r.Budget] = r
	}
	for _, want := range rows {
		if got := byBudget[want.Budget]; got != want {
			t.Fatalf("streamed row for budget %d = %+v, want %+v", want.Budget, got, want)
		}
	}
}

// TestBudgetSweepCtxCancelled: a dead context fails every point with the
// context error and runs no methodology work.
func TestBudgetSweepCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BudgetSweepCtx(ctx, arch.TwoBusAMBA, []int{24, 30}, sweepFast)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v, want context.Canceled", err)
	}
	if len(res.Failed) != 2 || len(res.Budgets) != 0 {
		t.Fatalf("cancelled sweep still produced points: %+v", res)
	}
}
