package experiments

import "testing"

// fast keeps CI-grade experiment runs cheap; EXPERIMENTS.md numbers use the
// defaults.
var fast = Options{Iterations: 3, Seeds: []int64{1, 2}, Horizon: 1200, WarmUp: 100}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fig, err := Figure3(160, fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Procs) != 17 {
		t.Fatalf("procs = %d, want 17", len(fig.Procs))
	}
	if fig.Procs[0] != "p1" || fig.Procs[16] != "p17" {
		t.Fatalf("proc order wrong: %v", fig.Procs)
	}
	// The paper's qualitative claims at the scarce budget:
	// CTMDP sizing beats constant sizing overall…
	if fig.PostTotal >= fig.PreTotal {
		t.Fatalf("post %d !< pre %d", fig.PostTotal, fig.PreTotal)
	}
	// …and beats the timeout policy by a larger margin…
	if fig.PostTotal >= fig.TimeoutTotal {
		t.Fatalf("post %d !< timeout %d", fig.PostTotal, fig.TimeoutTotal)
	}
	if fig.TimeoutTotal <= fig.PreTotal {
		t.Fatalf("timeout policy %d should lose more than plain constant %d (it drops on top of overflow)",
			fig.TimeoutTotal, fig.PreTotal)
	}
	// …while some individual processors get worse.
	if len(fig.Worsened) == 0 {
		t.Fatal("no processor worsened — Figure 3's 'increase slightly for some processors' shape lost")
	}
	if fig.TimeoutThreshold <= 0 {
		t.Fatal("no timeout threshold derived")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Table1([]int{160, 640}, nil, fast)
	if err != nil {
		t.Fatal(err)
	}
	// Loss decreases with budget.
	if tbl.PreTotal[640] >= tbl.PreTotal[160] {
		t.Fatalf("pre loss did not fall with budget: %v", tbl.PreTotal)
	}
	if tbl.PostTotal[640] >= tbl.PostTotal[160] {
		t.Fatalf("post loss did not fall with budget: %v", tbl.PostTotal)
	}
	// At the generous budget the sized system is near lossless for the
	// tracked processors (the paper's zeros).
	for _, p := range tbl.Procs {
		if tbl.Post[640][p] > tbl.Pre[640][p]+5 {
			t.Fatalf("proc %s post-640 %d much worse than pre %d", p, tbl.Post[640][p], tbl.Pre[640][p])
		}
	}
	var post640 int64
	for _, p := range tbl.Procs {
		post640 += tbl.Post[640][p]
	}
	if post640 > 20 {
		t.Fatalf("tracked processors still lose %d at budget 640 post-sizing", post640)
	}
}

func TestSplitDemo(t *testing.T) {
	d, err := SplitDemo()
	if err != nil {
		t.Fatal(err)
	}
	if d.KKTValid {
		t.Fatal("coupled quadratic system unexpectedly solvable — §2 demo broken")
	}
	if d.SplitSubsystems != 4 {
		t.Fatalf("split produced %d subsystems, paper's Figure 2 shows 4", d.SplitSubsystems)
	}
	if d.SplitLossRate < 0 {
		t.Fatalf("negative split loss %v", d.SplitLossRate)
	}
	if d.SplitIters <= 0 {
		t.Fatal("split LP reported zero pivots")
	}
}

func TestHeadlineRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	h, err := Headline(160, fast)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≈0.8 vs constant, ≈0.5 vs timeout. Accept the shape: strictly
	// better than constant, and at most ~0.7 of the timeout policy.
	if h.CTMDPOverConstant >= 1 || h.CTMDPOverConstant <= 0 {
		t.Fatalf("post/pre ratio %v out of shape", h.CTMDPOverConstant)
	}
	if h.CTMDPOverTimeout >= 0.7 {
		t.Fatalf("post/timeout ratio %v — timeout policy should lose ≥ ~2×", h.CTMDPOverTimeout)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Iterations != 10 || len(o.Seeds) != 5 || o.Horizon != 2000 || o.WarmUp != 100 {
		t.Fatalf("defaults = %+v", o)
	}
}
