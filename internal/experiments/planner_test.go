package experiments

import (
	"reflect"
	"strings"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/solvecache"
)

// TestPlanBudgetSweepDedup pins the planner's core observation: across
// budget points only capacities change, so the structural class count equals
// one sweep point's sub-model count while full fingerprints stay distinct
// per budget.
func TestPlanBudgetSweepDedup(t *testing.T) {
	budgets := []int{120, 160, 200}
	plan, err := PlanBudgetSweep(arch.NetworkProcessor, budgets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Budgets, budgets) {
		t.Fatalf("planned budgets %v, want %v", plan.Budgets, budgets)
	}
	perPoint := plan.Models / len(budgets)
	if perPoint == 0 || plan.Models%len(budgets) != 0 {
		t.Fatalf("uneven sub-model count %d over %d points", plan.Models, len(budgets))
	}
	if plan.UniqueStructural != perPoint {
		t.Errorf("structural classes = %d, want one per sub-model per point (%d)",
			plan.UniqueStructural, perPoint)
	}
	if plan.UniqueExact != plan.Models {
		t.Errorf("unique exact = %d, want all %d distinct (capacities differ per budget)",
			plan.UniqueExact, plan.Models)
	}

	var sb strings.Builder
	if err := plan.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "structural") {
		t.Errorf("summary missing structural column:\n%s", sb.String())
	}
}

// TestPlanBudgetSweepSkipsBadPoints: an unplannable budget is recorded, not
// fatal, mirroring the sweep's own per-point failure isolation.
func TestPlanBudgetSweepSkipsBadPoints(t *testing.T) {
	plan, err := PlanBudgetSweep(arch.NetworkProcessor, []int{120, -1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Skipped) != 1 || plan.Skipped[0].Budget != -1 {
		t.Fatalf("skipped = %+v, want exactly budget -1", plan.Skipped)
	}
	if !reflect.DeepEqual(plan.Budgets, []int{120}) {
		t.Fatalf("planned budgets = %v", plan.Budgets)
	}
}

// TestCachedBudgetSweepWorkerInvariance extends the repo's determinism
// contract to the cache-shared sweep: with a prewarmed fleet-wide cache, the
// results must still be identical for any worker count — cached payloads are
// pure functions of their fingerprints, never of worker schedule.
func TestCachedBudgetSweepWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	budgets := []int{120, 160}
	var baseline *BudgetSweepResult
	for _, workers := range []int{1, 4, 8} {
		opt := sweepFast
		opt.Workers = workers
		res, plan, err := CachedBudgetSweep(arch.NetworkProcessor, budgets, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if plan.UniqueStructural == 0 {
			t.Fatalf("workers=%d: empty plan", workers)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(baseline, res) {
			t.Fatalf("workers=%d diverged from serial cached run:\nserial: %+v\ngot:    %+v",
				workers, baseline, res)
		}
	}
}

// TestCachedBudgetSweepReuse: the shared cache must actually dedupe — across
// two budget points the prewarm plus first point leave the second point's
// free solves answered from the cache, and a repeated sweep over the same
// cache is all hits.
func TestCachedBudgetSweepReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := sweepFast
	opt.Cache = solvecache.New()
	budgets := []int{120, 160}
	res, _, err := CachedBudgetSweep(arch.NetworkProcessor, budgets, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := opt.Cache.Stats()
	if s.WarmStarts == 0 {
		t.Errorf("capacity-only budget points produced no warm starts: %+v", s)
	}
	if s.Hits == 0 {
		t.Errorf("shared boundary trajectory produced no exact hits: %+v", s)
	}

	again, err := BudgetSweep(arch.NetworkProcessor, budgets, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Fatal("re-sweeping over a warm cache changed the results")
	}
	s2 := opt.Cache.Stats()
	if s2.Misses != s.Misses {
		t.Errorf("re-sweep performed %d new cold solves", s2.Misses-s.Misses)
	}
	if s2.JointMisses != s.JointMisses {
		t.Errorf("re-sweep performed %d new cold joint solves", s2.JointMisses-s.JointMisses)
	}
}

// TestWriteCacheStatsRates pins the -cache-stats rendering: untouched tiers
// stay out of the table, touched tiers (remote included) appear with their
// counters, and the derived hit-rate table follows.
func TestWriteCacheStatsRates(t *testing.T) {
	var b strings.Builder
	s := solvecache.Stats{
		Hits: 6, WarmStarts: 2, Misses: 2,
		AnalyticHits: 3, AnalyticMisses: 1,
		RemoteHits: 4, RemoteMisses: 4,
		Entries: 2,
	}
	if err := WriteCacheStats(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"remote hits", "remote misses",
		"hit rates:",
		"exact", "structural", "analytic", "remote",
		"60.0%", // exact: 6 / (6+2+2)
		"50.0%", // structural 2/(2+2), remote 4/(4+4)
		"75.0%", // analytic: 3 / (3+1)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, absent := range []string{"robust", "placement", "delta"} {
		if strings.Contains(out, absent) {
			t.Errorf("untouched tier %q leaked into output:\n%s", absent, out)
		}
	}

	// A cold snapshot renders only the counter table — no rates line.
	b.Reset()
	if err := WriteCacheStats(&b, solvecache.Stats{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "hit rates") {
		t.Errorf("cold snapshot grew a rates table:\n%s", b.String())
	}
}
