package placement

import "math"

// compKey is a bitset over bus indices rendered as an immutable string —
// the DP's open-component signature and the closeJ memo key.
type compKey string

func (p *problem) compBytes() int { return (len(p.buses) + 7) / 8 }

func (p *problem) singletonComp(v int) compKey {
	b := make([]byte, p.compBytes())
	b[v/8] |= 1 << (v % 8)
	return compKey(b)
}

func unionComp(a, b compKey) compKey {
	out := []byte(a)
	for i := 0; i < len(out); i++ {
		out[i] |= b[i]
	}
	return compKey(out)
}

func (k compKey) has(v int) bool { return k[v/8]&(1<<(v%8)) != 0 }

// members lists the component's bus indices, ascending.
func (k compKey) members(n int) []int {
	var out []int
	for v := 0; v < n; v++ {
		if k.has(v) {
			out = append(out, v)
		}
	}
	return out
}

// insertTerm is the screened latency price of inserting type t on bridge i:
// LatencyWeight × type delay × crossing rate — by Little's law, the mean
// packet population held in the bridge's forwarding stage.
func (p *problem) insertTerm(i int, t int8) float64 {
	return p.lw * p.types[t].Delay * p.brRate[i]
}

// closeJ prices one closed component: the merged bus (service rate = the
// members' minimum) serves the members' traffic-carrying attachment buffers
// plus the directional buffer of every inserted bridge draining into the
// component, each approximated as an M/M/1/K queue at the provisional
// uniform capacity k0 under the standard two-regime service share. The
// score sums weighted loss rate (λ·B) and LatencyWeight-scaled mean queue
// population (by Little's law, the latency term). Membership alone
// determines the client set — every bridge with exactly one endpoint inside
// is inserted in any placement that closes this component — which is what
// makes the DP objective additive and the memo sound (DESIGN.md §7).
//
// The evaluation is allocation-free on the memo-miss path: clients gather
// into a reusable scratch slice ordered by insertion sort, and each queue's
// loss and mean population are computed inline by the same arithmetic
// queueing.MM1K's Distribution performs (identical expressions in identical
// order), so the memoised prices are bit-for-bit those of the array-built
// stationary distribution.
func (p *problem) closeJ(key compKey) float64 {
	if j, ok := p.fMemo[key]; ok {
		return j
	}
	first := true
	var mu float64
	clients := p.clScratch[:0]
	for m := range p.buses {
		if !key.has(m) {
			continue
		}
		if first || p.muBus[m] < mu {
			mu = p.muBus[m]
			first = false
		}
		clients = append(clients, p.egress[m]...)
	}
	for i := range p.bridges {
		a := key.has(p.busIdx[p.bridges[i].BusA])
		b := key.has(p.busIdx[p.bridges[i].BusB])
		if a == b {
			continue // internal (bypassed) or unrelated bridge
		}
		for _, cl := range p.brInto[i] {
			if key.has(cl.bus) {
				clients = append(clients, cl)
			}
		}
	}
	// Canonical client order keeps the float summation deterministic.
	// Insertion sort: client sets are small and IDs unique, and it spares
	// the sort.Slice closure allocation.
	for x := 1; x < len(clients); x++ {
		cl := clients[x]
		y := x - 1
		for y >= 0 && clients[y].id > cl.id {
			clients[y+1] = clients[y]
			y--
		}
		clients[y+1] = cl
	}
	var load float64
	for _, cl := range clients {
		load += cl.lambda
	}
	var j float64
	for _, cl := range clients {
		// Two-regime share: residual capacity when underloaded, proportional
		// floor when saturated — the same approximation the analytic sizing
		// backend uses (internal/solver).
		residual := mu - (load - cl.lambda)
		prop := mu * cl.lambda / load
		share := residual
		if prop > share {
			share = prop
		}
		j += p.queuePrice(cl.lambda, share)
	}
	p.clScratch = clients[:0]
	if p.fMemo == nil {
		p.fMemo = map[compKey]float64{}
	}
	p.fMemo[key] = j
	return j
}

// queuePrice is λ·B + lw·E[N] for one M/M/1/K client at capacity k0 —
// MM1K's LossRate and MeanQueue evaluated without materialising the
// stationary distribution. The branch structure, expressions and summation
// order mirror queueing.MM1K.Distribution exactly so the price is
// bit-identical to the array-built evaluation.
func (p *problem) queuePrice(lambda, share float64) float64 {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) ||
		share <= 0 || math.IsNaN(share) || math.IsInf(share, 0) || p.k0 < 1 {
		// λ and μ are constructed positive; unreachable in practice.
		return lambda
	}
	rho := lambda / share
	var block, meanQ float64
	if math.Abs(rho-1) < 1e-12 {
		// Uniform when ρ = 1.
		pk := 1 / float64(p.k0+1)
		block = pk
		for i := 0; i <= p.k0; i++ {
			meanQ += float64(i) * pk
		}
	} else {
		norm := (1 - math.Pow(rho, float64(p.k0+1))) / (1 - rho)
		pp := 1.0
		for i := 0; i <= p.k0; i++ {
			pi := pp / norm
			if i == p.k0 {
				block = pi
			}
			meanQ += float64(i) * pi
			pp *= rho
		}
	}
	return lambda*block + p.lw*meanQ
}
