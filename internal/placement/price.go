package placement

import (
	"sort"

	"socbuf/internal/queueing"
)

// compKey is a bitset over bus indices rendered as an immutable string —
// the DP's open-component signature and the closeJ memo key.
type compKey string

func (p *problem) compBytes() int { return (len(p.buses) + 7) / 8 }

func (p *problem) singletonComp(v int) compKey {
	b := make([]byte, p.compBytes())
	b[v/8] |= 1 << (v % 8)
	return compKey(b)
}

func unionComp(a, b compKey) compKey {
	out := []byte(a)
	for i := 0; i < len(out); i++ {
		out[i] |= b[i]
	}
	return compKey(out)
}

func (k compKey) has(v int) bool { return k[v/8]&(1<<(v%8)) != 0 }

// members lists the component's bus indices, ascending.
func (k compKey) members(n int) []int {
	var out []int
	for v := 0; v < n; v++ {
		if k.has(v) {
			out = append(out, v)
		}
	}
	return out
}

// insertTerm is the screened latency price of inserting type t on bridge i:
// LatencyWeight × type delay × crossing rate — by Little's law, the mean
// packet population held in the bridge's forwarding stage.
func (p *problem) insertTerm(i int, t int8) float64 {
	return p.lw * p.types[t].Delay * p.brRate[i]
}

// closeJ prices one closed component: the merged bus (service rate = the
// members' minimum) serves the members' traffic-carrying attachment buffers
// plus the directional buffer of every inserted bridge draining into the
// component, each approximated as an M/M/1/K queue at the provisional
// uniform capacity k0 under the standard two-regime service share. The
// score sums weighted loss rate (λ·B) and LatencyWeight-scaled mean queue
// population (by Little's law, the latency term). Membership alone
// determines the client set — every bridge with exactly one endpoint inside
// is inserted in any placement that closes this component — which is what
// makes the DP objective additive and the memo sound (DESIGN.md §7).
func (p *problem) closeJ(key compKey) float64 {
	if j, ok := p.fMemo[key]; ok {
		return j
	}
	members := key.members(len(p.buses))
	mu := p.muBus[members[0]]
	for _, m := range members[1:] {
		if p.muBus[m] < mu {
			mu = p.muBus[m]
		}
	}
	var clients []client
	for _, m := range members {
		clients = append(clients, p.egress[m]...)
	}
	for i := range p.bridges {
		a := key.has(p.busIdx[p.bridges[i].BusA])
		b := key.has(p.busIdx[p.bridges[i].BusB])
		if a == b {
			continue // internal (bypassed) or unrelated bridge
		}
		for _, cl := range p.brInto[i] {
			if key.has(cl.bus) {
				clients = append(clients, cl)
			}
		}
	}
	// Canonical client order keeps the float summation deterministic.
	sort.Slice(clients, func(x, y int) bool { return clients[x].id < clients[y].id })
	var load float64
	for _, cl := range clients {
		load += cl.lambda
	}
	var j float64
	for _, cl := range clients {
		// Two-regime share: residual capacity when underloaded, proportional
		// floor when saturated — the same approximation the analytic sizing
		// backend uses (internal/solver).
		residual := mu - (load - cl.lambda)
		prop := mu * cl.lambda / load
		share := residual
		if prop > share {
			share = prop
		}
		q, err := queueing.NewMM1K(cl.lambda, share, p.k0)
		if err != nil {
			// λ and μ are constructed positive; unreachable in practice.
			j += cl.lambda
			continue
		}
		j += q.LossRate() + p.lw*q.MeanQueue()
	}
	if p.fMemo == nil {
		p.fMemo = map[compKey]float64{}
	}
	p.fMemo[key] = j
	return j
}
