package placement

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseCatalogue checks the -buffer-types parser on arbitrary input:
// never panics, blank input yields exactly the default catalogue, and any
// accepted catalogue re-renders to flag syntax and parses back identically
// (round-trip through the %v float rendering the flag help documents).
func FuzzParseCatalogue(f *testing.F) {
	f.Add("")
	f.Add("std:2:0.2")
	f.Add("small:1:0.5,std:2:0.2,fast:4:0.05")
	f.Add("a:1:0,b:1e3:2.5")
	f.Add("bad")
	f.Add("name:x:1")
	f.Add("name:1:x")
	f.Add(":1:1")
	f.Add("a:1:1,")
	f.Add("a:-1:NaN")
	f.Fuzz(func(t *testing.T, s string) {
		types, err := ParseCatalogue(s)
		if err != nil {
			return
		}
		if strings.TrimSpace(s) == "" {
			def := DefaultCatalogue()
			if len(types) != len(def) {
				t.Fatalf("blank input gave %d types, want default %d", len(types), len(def))
			}
			for i := range def {
				if types[i] != def[i] {
					t.Fatalf("blank input type %d = %+v, want %+v", i, types[i], def[i])
				}
			}
			return
		}
		if len(types) == 0 {
			t.Fatalf("accepted %q but returned no types", s)
		}
		// Round-trip any accepted catalogue whose names survive the flag
		// syntax (names carrying separators can't re-render unambiguously).
		parts := make([]string, len(types))
		for i, bt := range types {
			if strings.ContainsAny(bt.Name, ",:") || bt.Name != strings.TrimSpace(bt.Name) {
				return
			}
			parts[i] = fmt.Sprintf("%s:%v:%v", bt.Name, bt.Cost, bt.Delay)
		}
		again, err := ParseCatalogue(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("re-rendered %q failed to parse: %v", strings.Join(parts, ","), err)
		}
		if len(again) != len(types) {
			t.Fatalf("round trip changed arity: %d vs %d", len(again), len(types))
		}
		for i := range types {
			same := again[i].Name == types[i].Name &&
				(again[i].Cost == types[i].Cost || (again[i].Cost != again[i].Cost && types[i].Cost != types[i].Cost)) &&
				(again[i].Delay == types[i].Delay || (again[i].Delay != again[i].Delay && types[i].Delay != types[i].Delay))
			if !same {
				t.Fatalf("round trip changed type %d: %+v vs %+v", i, again[i], types[i])
			}
		}
	})
}
