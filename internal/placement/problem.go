package placement

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"socbuf/internal/arch"
)

// problem is the static structure one placement run optimises over: the
// original architecture, a rooted spanning forest of its bus graph (the
// DP's recursion skeleton — one tree per bridge-connected component; buses
// joined only by dual-homed processors share no bridge and therefore no
// placement decision), the cut-edge set (the bridges allowed to contract),
// and the placement-independent traffic rates every screening price reuses.
type problem struct {
	a     *arch.Architecture
	types []BufferType

	lw     float64 // latency weight
	budget int     // capacity budget (feasibility floor)
	k0     int     // provisional per-buffer capacity for screening

	buses  []string // sorted bus IDs
	busIdx map[string]int
	muBus  []float64 // per bus index

	bridges   []arch.Bridge // in Architecture order (construction order)
	bridgeIdx map[string]int

	// Rooted spanning forest (one BFS tree per bridge-connected component,
	// each rooted at the component's smallest bus ID, sorted neighbour
	// order). roots lists the component roots in ascending bus order.
	// parent[b] == -1 for a root; parentBr[b] is the bridge index of the
	// tree edge to the parent. nonTree lists the remaining bridge indices
	// (cycle closers — mesh extras), sorted.
	roots    []int
	parent   []int
	parentBr []int
	children [][]int // sorted child bus indices
	nonTree  []int

	// cut[i] reports whether bridge i is a cut edge of the bus multigraph —
	// the only bridges whose removal disconnects traffic, and therefore the
	// only ones the contract allows to bypass (contracting a cycle edge
	// would alias two buses that other bridges still join).
	cut []bool

	// Traffic, measured once on the fully-buffered original architecture
	// (routes are placement-independent up to hop collapsing; see §7).
	egress    [][]client // per bus index: λ>0 attachment buffers
	brInto    [][]client // per bridge index: λ>0 directional buffers, keyed by destination bus index
	brRate    []float64  // per bridge index: total crossing rate (both directions)
	numAttach int        // total attachment buffers (traffic-free included)

	enumerated int64 // Π per-bridge option counts, saturating

	fMemo map[compKey]float64 // closeJ memo, keyed by component membership

	// clScratch is closeJ's reusable client buffer: the DP is single-
	// threaded, and pricing a component must not allocate per call.
	clScratch []client
}

// client is one screened M/M/1/K queue: a buffer and its offered rate.
type client struct {
	id     string
	bus    int // serving bus index (egress) or destination bus index (bridge)
	lambda float64
}

// newProblem builds the placement problem for a. The architecture must
// validate and have at least one bridge worth deciding is NOT required —
// a bridgeless architecture yields one empty placement.
func newProblem(a *arch.Architecture, cfg Config) (*problem, error) {
	if a == nil {
		return nil, fmt.Errorf("placement: nil architecture")
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("placement: %w", err)
	}
	if err := ValidateCatalogue(cfg.Types); err != nil {
		return nil, err
	}
	p := &problem{
		a:         a,
		types:     cfg.Types,
		lw:        cfg.LatencyWeight,
		budget:    cfg.Budget,
		busIdx:    map[string]int{},
		bridgeIdx: map[string]int{},
	}
	for _, b := range a.Buses {
		p.buses = append(p.buses, b.ID)
	}
	sort.Strings(p.buses)
	p.muBus = make([]float64, len(p.buses))
	for i, id := range p.buses {
		p.busIdx[id] = i
		b, _ := a.BusByID(id)
		p.muBus[i] = b.ServiceRate
	}
	p.bridges = append(p.bridges, a.Bridges...)
	for i, br := range p.bridges {
		p.bridgeIdx[br.ID] = i
	}
	for _, pr := range a.Processors {
		p.numAttach += len(pr.Buses)
	}
	if err := p.buildTree(); err != nil {
		return nil, err
	}
	p.markCutEdges()
	if err := p.measureTraffic(); err != nil {
		return nil, err
	}
	// Provisional screening capacity: the uniform per-buffer share under
	// full insertion. Constant across placements so the DP objective stays
	// additive (DESIGN.md §7).
	full := p.numAttach + 2*len(p.bridges)
	p.k0 = 1
	if full > 0 && p.budget/full > 1 {
		p.k0 = p.budget / full
	}
	p.enumerated = 1
	for i := range p.bridges {
		n := int64(len(p.types))
		if p.cut[i] {
			n++
		}
		if p.enumerated > math.MaxInt64/n {
			p.enumerated = math.MaxInt64
		} else {
			p.enumerated *= n
		}
	}
	return p, nil
}

// buildTree roots one BFS spanning tree per bridge-connected component,
// each at the component's smallest bus ID with sorted neighbour order, so
// the DP's recursion skeleton is deterministic. Architectures whose buses
// connect only through dual-homed processors (the paper's Figure 1) simply
// yield several trees with no cross-tree decisions.
func (p *problem) buildTree() error {
	n := len(p.buses)
	type edge struct{ to, br int }
	adj := make([][]edge, n)
	for i, br := range p.bridges {
		a, okA := p.busIdx[br.BusA]
		b, okB := p.busIdx[br.BusB]
		if !okA || !okB {
			return fmt.Errorf("placement: bridge %q references unknown bus", br.ID)
		}
		adj[a] = append(adj[a], edge{b, i})
		adj[b] = append(adj[b], edge{a, i})
	}
	for i := range adj {
		sort.Slice(adj[i], func(x, y int) bool {
			if p.buses[adj[i][x].to] != p.buses[adj[i][y].to] {
				return p.buses[adj[i][x].to] < p.buses[adj[i][y].to]
			}
			return p.bridges[adj[i][x].br].ID < p.bridges[adj[i][y].br].ID
		})
	}
	p.parent = make([]int, n)
	p.parentBr = make([]int, n)
	p.children = make([][]int, n)
	for i := range p.parent {
		p.parent[i], p.parentBr[i] = -1, -1
	}
	inTree := make([]bool, len(p.bridges))
	visited := make([]bool, n)
	// Buses are sorted, so scanning ascending roots each component at its
	// smallest bus ID.
	for r := 0; r < n; r++ {
		if visited[r] {
			continue
		}
		p.roots = append(p.roots, r)
		visited[r] = true
		queue := []int{r}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range adj[v] {
				if visited[e.to] {
					continue
				}
				visited[e.to] = true
				p.parent[e.to] = v
				p.parentBr[e.to] = e.br
				inTree[e.br] = true
				p.children[v] = append(p.children[v], e.to)
				queue = append(queue, e.to)
			}
		}
	}
	for i := range p.bridges {
		if !inTree[i] {
			p.nonTree = append(p.nonTree, i)
		}
	}
	return nil
}

// markCutEdges runs the standard DFS lowlink bridge-finding on the bus
// multigraph. Parallel bridges between the same bus pair are never cut
// edges, so entry edges are skipped by bridge index, not by vertex.
func (p *problem) markCutEdges() {
	n := len(p.buses)
	type edge struct{ to, br int }
	adj := make([][]edge, n)
	for i, br := range p.bridges {
		a, b := p.busIdx[br.BusA], p.busIdx[br.BusB]
		adj[a] = append(adj[a], edge{b, i})
		adj[b] = append(adj[b], edge{a, i})
	}
	p.cut = make([]bool, len(p.bridges))
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var dfs func(v, viaBr int)
	dfs = func(v, viaBr int) {
		disc[v], low[v] = timer, timer
		timer++
		for _, e := range adj[v] {
			if e.br == viaBr {
				continue
			}
			if disc[e.to] == -1 {
				dfs(e.to, e.br)
				if low[e.to] < low[v] {
					low[v] = low[e.to]
				}
				if low[e.to] > disc[v] {
					p.cut[e.br] = true
				}
			} else if disc[e.to] < low[v] {
				low[v] = disc[e.to]
			}
		}
	}
	for v := range disc {
		if disc[v] == -1 {
			dfs(v, -1)
		}
	}
}

// measureTraffic records the placement-independent rates: each attachment
// buffer's offered rate and each bridge's directional crossing rates, taken
// from the fully-buffered original architecture's raw (no-loss) route walk.
func (p *problem) measureTraffic() error {
	buffered := p.a.Clone()
	buffered.InsertBridgeBuffers()
	rates, err := buffered.BufferArrivalRates()
	if err != nil {
		return err
	}
	p.egress = make([][]client, len(p.buses))
	for _, pr := range p.a.Processors {
		for _, bus := range pr.Buses {
			id := arch.AttachmentBufferID(pr.ID, bus)
			if lam := rates[id]; lam > 0 {
				bi := p.busIdx[bus]
				p.egress[bi] = append(p.egress[bi], client{id: id, bus: bi, lambda: lam})
			}
		}
	}
	for i := range p.egress {
		sort.Slice(p.egress[i], func(x, y int) bool { return p.egress[i][x].id < p.egress[i][y].id })
	}
	p.brInto = make([][]client, len(p.bridges))
	p.brRate = make([]float64, len(p.bridges))
	for i, br := range p.bridges {
		for _, dir := range [2][2]string{{br.BusA, br.BusB}, {br.BusB, br.BusA}} {
			from, to := dir[0], dir[1]
			id := arch.BridgeBufferID(br.ID, from)
			lam := rates[id]
			p.brRate[i] += lam
			if lam > 0 {
				p.brInto[i] = append(p.brInto[i], client{id: id, bus: p.busIdx[to], lambda: lam})
			}
		}
	}
	return nil
}

// Option encoding in decision vectors: one int8 per bridge index.
const (
	optUndecided int8 = -2 // DP-internal: bridge not yet reached
	optBypass    int8 = -1 // contract the bridge (cut edges only)
	// 0..len(types)-1 insert that catalogue type.
)

// buffersOf returns the contracted architecture's buffer count for a
// complete decision vector: every attachment buffer plus two per inserted
// bridge.
func (p *problem) buffersOf(dec []int8) int {
	inserted := 0
	for _, d := range dec {
		if d >= 0 {
			inserted++
		}
	}
	return p.numAttach + 2*inserted
}

// costOf sums the inserted types' costs.
func (p *problem) costOf(dec []int8) float64 {
	var cost float64
	for _, d := range dec {
		if d >= 0 {
			cost += p.types[d].Cost
		}
	}
	return cost
}

// apply builds the contracted architecture for a complete decision vector:
// bypassed bridges merge their endpoints into one bus (ID = smallest
// member, rate = minimum member rate — the un-decoupled arbiter serialises
// everything, so the slowest member bounds the merged domain), inserted
// bridges survive with endpoints remapped. The result is a valid
// architecture the whole sizing stack evaluates unchanged.
func (p *problem) apply(dec []int8) (*arch.Architecture, error) {
	n := len(p.buses)
	uf := make([]int, n)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for i, d := range dec {
		if d == optBypass {
			a := find(p.busIdx[p.bridges[i].BusA])
			b := find(p.busIdx[p.bridges[i].BusB])
			if a != b {
				// Union toward the smaller bus index so the representative
				// is the lexicographically smallest member.
				if b < a {
					a, b = b, a
				}
				uf[b] = a
			}
		}
	}
	rate := make([]float64, n)
	copy(rate, p.muBus)
	for i := 0; i < n; i++ {
		r := find(i)
		if p.muBus[i] < rate[r] {
			rate[r] = p.muBus[i]
		}
	}
	out := &arch.Architecture{Name: p.a.Name + "+" + p.signature(dec)}
	for i := 0; i < n; i++ {
		if find(i) == i {
			out.Buses = append(out.Buses, arch.Bus{ID: p.buses[i], ServiceRate: rate[i]})
		}
	}
	rep := func(bus string) string { return p.buses[find(p.busIdx[bus])] }
	for _, pr := range p.a.Processors {
		np := arch.Processor{ID: pr.ID}
		seen := map[string]bool{}
		for _, bus := range pr.Buses {
			r := rep(bus)
			if !seen[r] {
				seen[r] = true
				np.Buses = append(np.Buses, r)
			}
		}
		out.Processors = append(out.Processors, np)
	}
	for i, br := range p.bridges {
		if dec[i] == optBypass {
			continue
		}
		a, b := rep(br.BusA), rep(br.BusB)
		if a == b {
			return nil, fmt.Errorf("placement: bridge %q became a self-loop under %s", br.ID, p.signature(dec))
		}
		out.Bridges = append(out.Bridges, arch.Bridge{ID: br.ID, BusA: a, BusB: b})
	}
	out.Flows = append(out.Flows, p.a.Flows...)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("placement: contracted architecture invalid: %w", err)
	}
	return out, nil
}

// signature renders a decision vector compactly and deterministically
// ("br01-02=std,br03-04=~"; "~" marks bypass), in bridge-ID order. It names
// contracted architectures, so it is part of every downstream cache key.
func (p *problem) signature(dec []int8) string {
	idx := make([]int, len(p.bridges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return p.bridges[idx[x]].ID < p.bridges[idx[y]].ID })
	var sb strings.Builder
	for k, i := range idx {
		if k > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.bridges[i].ID)
		sb.WriteByte('=')
		if dec[i] == optBypass {
			sb.WriteByte('~')
		} else {
			sb.WriteString(p.types[dec[i]].Name)
		}
	}
	return sb.String()
}
