package placement

import (
	"context"
	"fmt"
	"sort"
	"time"

	"socbuf/internal/core"
	"socbuf/internal/parallel"
	"socbuf/internal/solver"
)

// Place runs one full placement: DP over the spanning tree, cost-budget
// filtering, an analytic-backend screening evaluation of every frontier
// survivor on its real contracted architecture, and — unless the method is
// "analytic" — a refinement pass that re-evaluates the best-screened
// placements with the requested backend. Results are deterministic for
// every worker count (evaluations fan out but aggregate in frontier order).
func Place(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.WithDefaults()
	if _, err := solver.Resolve(cfg.Method); err != nil {
		return nil, err
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("placement: budget %d must be positive", cfg.Budget)
	}
	p, err := newProblem(cfg.Arch, cfg)
	if err != nil {
		return nil, err
	}

	front, st := p.runDP()
	costFiltered := 0
	if cfg.CostBudget > 0 {
		kept := front[:0]
		for _, s := range front {
			if s.cost <= cfg.CostBudget {
				kept = append(kept, s)
			} else {
				costFiltered++
			}
		}
		front = kept
	}
	if len(front) == 0 {
		return nil, fmt.Errorf(
			"placement: no feasible placement (budget %d, cost budget %g: %d capacity-infeasible, %d over cost budget)",
			cfg.Budget, cfg.CostBudget, st.infeasible, costFiltered)
	}

	// Screening: evaluate every frontier placement with the analytic
	// backend — full sizing on the contracted architecture, simulated with
	// the same seeds the refinement will use, so screen and refined losses
	// are directly comparable.
	pts, err := parallel.MapCtx(ctx, len(front), cfg.Workers, func(i int) (Point, error) {
		loss, imp, err := p.evaluate(ctx, cfg, solver.MethodAnalytic, front[i].dec)
		if err != nil {
			return Point{}, fmt.Errorf("placement %s: %w", p.signature(front[i].dec), err)
		}
		pt := Point{
			Decisions:   p.decisionsOf(front[i].dec),
			Cost:        front[i].cost,
			Buffers:     p.buffersOf(front[i].dec),
			Bypassed:    front[i].bypassed,
			ScreenJ:     front[i].j,
			ScreenLoss:  loss,
			Loss:        loss,
			Improvement: imp,
			Method:      solver.MethodAnalytic,
		}
		if cfg.OnEval != nil {
			cfg.OnEval(pt)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	// Refinement: the RefineTop best-screened placements re-evaluate under
	// the requested backend; "analytic" stops at the screen.
	method := solver.Canonical(cfg.Method)
	if method != solver.MethodAnalytic {
		order := make([]int, len(pts))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(x, y int) bool {
			a, b := pts[order[x]], pts[order[y]]
			switch {
			case a.ScreenLoss != b.ScreenLoss:
				return a.ScreenLoss < b.ScreenLoss
			case a.Cost != b.Cost:
				return a.Cost < b.Cost
			default:
				return decLess(front[order[x]].dec, front[order[y]].dec)
			}
		})
		top := cfg.RefineTop
		if top > len(order) {
			top = len(order)
		}
		refined, err := parallel.MapCtx(ctx, top, cfg.Workers, func(k int) (Point, error) {
			i := order[k]
			loss, imp, err := p.evaluate(ctx, cfg, cfg.Method, front[i].dec)
			if err != nil {
				return Point{}, fmt.Errorf("placement %s: %w", p.signature(front[i].dec), err)
			}
			pt := pts[i]
			pt.Loss, pt.Improvement, pt.Method, pt.Refined = loss, imp, method, true
			if cfg.OnEval != nil {
				cfg.OnEval(pt)
			}
			return pt, nil
		})
		if err != nil {
			return nil, err
		}
		for k, pt := range refined {
			pts[order[k]] = pt
		}
	}

	res := &Result{
		Arch:         cfg.Arch.Name,
		Method:       method,
		Candidates:   len(p.bridges),
		Enumerated:   p.enumerated,
		Partials:     st.partials,
		Pruned:       st.pruned,
		Infeasible:   st.infeasible,
		CostFiltered: costFiltered,
		Frontier:     pts,
	}
	for _, c := range p.cut {
		if c {
			res.Bypassable++
		}
	}
	best := 0
	for i := 1; i < len(pts); i++ {
		a, b := pts[i], pts[best]
		if a.Loss < b.Loss || (a.Loss == b.Loss && a.Cost < b.Cost) {
			best = i
		}
	}
	res.Chosen = pts[best]
	return res, nil
}

// evaluate sizes and simulates one placement's contracted architecture
// through the solver registry, returning the evaluated loss and the sizing
// improvement. Each evaluation runs its seeds serially — the outer fan-out
// already saturates the worker pool.
func (p *problem) evaluate(ctx context.Context, cfg Config, method string, dec []int8) (int64, float64, error) {
	contracted, err := p.apply(dec)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	res, err := solver.Run(ctx, core.Config{
		Arch:       contracted,
		Budget:     cfg.Budget,
		Iterations: cfg.Iterations,
		Seeds:      cfg.Seeds,
		Horizon:    cfg.Horizon,
		WarmUp:     cfg.WarmUp,
		Workers:    1,
		Cache:      cfg.Cache,
		Method:     method,
	})
	if cfg.RunObserver != nil {
		cfg.RunObserver(solver.Canonical(method), time.Since(start))
	}
	if err != nil {
		return 0, 0, err
	}
	return res.Best.SimLoss, res.Improvement(), nil
}
