package placement

import (
	"math"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/scenario"
)

// buildTopology generates one of the registry topology families at a small
// size — the same generator the scenario registry uses, so the gate runs on
// exactly the architectures placements target.
func buildTopology(t *testing.T, kind string, buses int, seed int64) *arch.Architecture {
	t.Helper()
	a, err := scenario.Topology{
		Kind:        kind,
		Buses:       buses,
		FanOut:      2,
		Utilisation: 0.85,
		Skew:        2,
		Seed:        seed,
	}.Build()
	if err != nil {
		t.Fatalf("build %s/%d: %v", kind, buses, err)
	}
	return a
}

func testProblem(t *testing.T, a *arch.Architecture, budget int) *problem {
	t.Helper()
	cfg := Config{Arch: a, Types: DefaultCatalogue(), Budget: budget, LatencyWeight: 0.1}
	p, err := newProblem(a, cfg)
	if err != nil {
		t.Fatalf("newProblem: %v", err)
	}
	return p
}

// sameFrontier asserts the two complete frontiers coincide: same length,
// and pointwise equal (cost, J) within tolerance — the DP accumulates the
// same summands as the brute-force recomputation, in a different order, so
// roundoff-level differences are admissible, exact mismatches are not.
func sameFrontier(t *testing.T, dp, bf []scored) {
	t.Helper()
	if len(dp) != len(bf) {
		t.Fatalf("frontier sizes differ: DP %d, brute force %d", len(dp), len(bf))
	}
	const tol = 1e-9
	for i := range dp {
		if math.Abs(dp[i].cost-bf[i].cost) > tol || math.Abs(dp[i].j-bf[i].j) > tol {
			t.Errorf("frontier[%d]: DP (%.12g, %.12g) vs brute force (%.12g, %.12g)",
				i, dp[i].cost, dp[i].j, bf[i].cost, bf[i].j)
		}
	}
}

// assertPareto asserts no frontier point dominates another (the published
// frontier must be an antichain) and that costs ascend.
func assertPareto(t *testing.T, front []scored) {
	t.Helper()
	for i := range front {
		if i > 0 && front[i].cost <= front[i-1].cost {
			t.Errorf("frontier not cost-ascending at %d: %g after %g", i, front[i].cost, front[i-1].cost)
		}
		for k := range front {
			if i == k {
				continue
			}
			if front[k].cost <= front[i].cost && front[k].j <= front[i].j {
				t.Errorf("frontier[%d] dominated by frontier[%d]", i, k)
			}
		}
	}
}

// TestDPMatchesBruteForce is the exactness gate: on small generated
// topologies of every family (≤12 candidate points), the pruned DP must
// return the same Pareto frontier as exhaustive enumeration.
func TestDPMatchesBruteForce(t *testing.T) {
	cases := []struct {
		kind  string
		buses int
		seed  int64
	}{
		{"chain", 4, 1},
		{"chain", 6, 7},
		{"star", 5, 3},
		{"tree", 7, 5},
		{"mesh", 4, 2},
		{"mesh", 6, 4},
	}
	for _, tc := range cases {
		a := buildTopology(t, tc.kind, tc.buses, tc.seed)
		if len(a.Bridges) > 12 {
			t.Fatalf("%s/%d: %d candidates exceeds the small-tree gate bound", tc.kind, tc.buses, len(a.Bridges))
		}
		// A budget generous enough that every placement is feasible: the
		// gate tests dominance pruning, not the capacity floor.
		p := testProblem(t, a, 1000)
		dp, st := p.runDP()
		bf, priced, _ := p.bruteForce()
		if int64(priced) != p.enumerated {
			t.Errorf("%s/%d: brute force priced %d of %d placements", tc.kind, tc.buses, priced, p.enumerated)
		}
		sameFrontier(t, dp, bf)
		assertPareto(t, dp)
		if st.partials <= st.pruned {
			t.Errorf("%s/%d: %d partials, %d pruned — nothing survived?", tc.kind, tc.buses, st.partials, st.pruned)
		}
	}
}

// TestForestDPMatchesBruteForce: an architecture whose buses connect only
// through a dual-homed processor has a bridge-disconnected bus graph (the
// paper's Figure 1: bus "a" reaches "b" through master p2, not a bridge).
// The DP must build a spanning forest, solve each component and fold the
// component frontiers — and still match exhaustive enumeration.
func TestForestDPMatchesBruteForce(t *testing.T) {
	a := arch.Figure1()
	p := testProblem(t, a, 1000)
	if len(p.roots) < 2 {
		t.Fatalf("figure1 bus graph has %d spanning-forest roots, want ≥2 (bus %q joins via a processor only)",
			len(p.roots), "a")
	}
	dp, _ := p.runDP()
	bf, priced, _ := p.bruteForce()
	if int64(priced) != p.enumerated {
		t.Errorf("brute force priced %d of %d placements", priced, p.enumerated)
	}
	sameFrontier(t, dp, bf)
	assertPareto(t, dp)
}

// twoLegStar builds a hand-made symmetric architecture: two identical leaf
// buses bridged to a hub, with mirrored traffic — every placement has a
// mirror image with identical cost and screened J, forcing exact ties on
// both frontier coordinates.
func twoLegStar() *arch.Architecture {
	return &arch.Architecture{
		Name: "twoleg",
		Buses: []arch.Bus{
			{ID: "hub", ServiceRate: 40},
			{ID: "leafA", ServiceRate: 20},
			{ID: "leafB", ServiceRate: 20},
		},
		Processors: []arch.Processor{
			{ID: "pa", Buses: []string{"leafA"}},
			{ID: "pb", Buses: []string{"leafB"}},
			{ID: "ph", Buses: []string{"hub"}},
		},
		Bridges: []arch.Bridge{
			{ID: "brA", BusA: "hub", BusB: "leafA"},
			{ID: "brB", BusA: "hub", BusB: "leafB"},
		},
		Flows: []arch.Flow{
			{From: "pa", To: "ph", Rate: 8},
			{From: "pb", To: "ph", Rate: 8},
			{From: "ph", To: "pa", Rate: 3},
			{From: "ph", To: "pb", Rate: 3},
		},
	}
}

// TestDominanceTiesBothCoordinates: mirrored placements tie exactly on cost
// and J; the frontier must keep exactly one representative per tied class
// (the lexicographically smallest decision vector) and still match brute
// force.
func TestDominanceTiesBothCoordinates(t *testing.T) {
	p := testProblem(t, twoLegStar(), 1000)
	dp, _ := p.runDP()
	bf, _, _ := p.bruteForce()
	sameFrontier(t, dp, bf)
	assertPareto(t, dp)
	seen := map[[2]float64]bool{}
	for _, s := range dp {
		k := [2]float64{s.cost, s.j}
		if seen[k] {
			t.Errorf("duplicate frontier point (%.12g, %.12g) — tie not collapsed", s.cost, s.j)
		}
		seen[k] = true
	}
	// Mirrored mixed placements (brA=lite,brB=std vs brA=std,brB=lite) tie;
	// the canonical survivor must pick brA's option first in catalogue
	// order, i.e. the lexicographically smallest decision vector.
	for _, s := range dp {
		mirror := make([]int8, len(s.dec))
		mirror[0], mirror[1] = s.dec[1], s.dec[0]
		if decLess(mirror, s.dec) {
			t.Errorf("frontier kept %v over its lexicographically smaller mirror", s.dec)
		}
	}
}

// TestSingleCandidateNode: one bridge means the frontier is just the pruned
// option list — bypass plus the non-dominated catalogue types.
func TestSingleCandidateNode(t *testing.T) {
	a := arch.TwoBusAMBA()
	p := testProblem(t, a, 1000)
	if len(p.bridges) != 1 {
		t.Fatalf("twobus has %d bridges, want 1", len(p.bridges))
	}
	if !p.cut[0] {
		t.Fatalf("the single bridge must be a cut edge")
	}
	dp, _ := p.runDP()
	bf, priced, _ := p.bruteForce()
	if priced != len(DefaultCatalogue())+1 {
		t.Fatalf("priced %d options, want %d", priced, len(DefaultCatalogue())+1)
	}
	sameFrontier(t, dp, bf)
	assertPareto(t, dp)
	// Bypass costs nothing, so it is always the frontier's cheapest point.
	if dp[0].cost != 0 || dp[0].bypassed != 1 {
		t.Fatalf("cheapest frontier point should be the bypass: got cost %g, bypassed %d", dp[0].cost, dp[0].bypassed)
	}
}

// TestBudgetInfeasibleSubtrees: a capacity budget below the full-insertion
// floor must discard insertion-heavy placements — and when only the
// all-bypass placement fits, the frontier is exactly that point. The DP's
// third dominance coordinate is what keeps such placements alive through
// the bottom-up merges (a cheaper-and-better partial with fewer bypasses
// must not evict them).
func TestBudgetInfeasibleSubtrees(t *testing.T) {
	a := buildTopology(t, "chain", 4, 1)
	attach := 0
	for _, pr := range a.Processors {
		attach += len(pr.Buses)
	}
	// Budget = attachment floor: only the all-bypass placement is feasible.
	p := testProblem(t, a, attach)
	dp, st := p.runDP()
	if len(dp) != 1 || dp[0].bypassed != len(a.Bridges) || dp[0].cost != 0 {
		t.Fatalf("tight budget: want the single all-bypass placement, got %+v", dp)
	}
	if st.infeasible == 0 {
		t.Fatalf("tight budget discarded no placements")
	}
	bf, _, bfInfeasible := p.bruteForce()
	sameFrontier(t, dp, bf)
	if bfInfeasible == 0 {
		t.Fatalf("brute force saw no infeasible placements")
	}

	// Room for exactly one inserted bridge: feasible placements bypass at
	// least len(bridges)-1 edges.
	p = testProblem(t, a, attach+2)
	dp, _ = p.runDP()
	bf, _, _ = p.bruteForce()
	sameFrontier(t, dp, bf)
	for _, s := range dp {
		if s.bypassed < len(a.Bridges)-1 {
			t.Errorf("placement with %d bypasses infeasible under budget %d yet on frontier", s.bypassed, attach+2)
		}
	}
}

// TestApplyContraction checks the contraction semantics: merged bus
// identity, minimum-rate aggregation, and validity of every contracted
// architecture on the frontier.
func TestApplyContraction(t *testing.T) {
	a := buildTopology(t, "chain", 4, 1)
	p := testProblem(t, a, 1000)

	// Full bypass: one merged bus named after the smallest member, at the
	// slowest member's rate.
	dec := make([]int8, len(p.bridges))
	for i := range dec {
		dec[i] = optBypass
	}
	merged, err := p.apply(dec)
	if err != nil {
		t.Fatalf("apply full bypass: %v", err)
	}
	if len(merged.Buses) != 1 || len(merged.Bridges) != 0 {
		t.Fatalf("full bypass: got %d buses, %d bridges", len(merged.Buses), len(merged.Bridges))
	}
	if merged.Buses[0].ID != p.buses[0] {
		t.Errorf("merged bus named %q, want smallest member %q", merged.Buses[0].ID, p.buses[0])
	}
	minRate := math.Inf(1)
	for _, b := range a.Buses {
		minRate = math.Min(minRate, b.ServiceRate)
	}
	if merged.Buses[0].ServiceRate != minRate {
		t.Errorf("merged rate %g, want member minimum %g", merged.Buses[0].ServiceRate, minRate)
	}

	// Every frontier placement must contract to a valid architecture.
	front, _ := p.runDP()
	for _, s := range front {
		c, err := p.apply(s.dec)
		if err != nil {
			t.Fatalf("apply %s: %v", p.signature(s.dec), err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("contracted %s invalid: %v", p.signature(s.dec), err)
		}
		if got := len(c.Bridges); got != len(p.bridges)-s.bypassed {
			t.Errorf("%s: %d bridges survive, want %d", p.signature(s.dec), got, len(p.bridges)-s.bypassed)
		}
	}
}

// TestMeshHasNoBypassCandidates: every edge of a grid lies on a cycle, so
// no bridge is a cut edge and contraction is never offered — placement
// degrades to pure type selection, per the §7 contract.
func TestMeshHasNoBypassCandidates(t *testing.T) {
	a := buildTopology(t, "mesh", 9, 2)
	p := testProblem(t, a, 1000)
	for i, c := range p.cut {
		if c {
			t.Errorf("mesh bridge %s marked as cut edge", p.bridges[i].ID)
		}
	}
	front, _ := p.runDP()
	for _, s := range front {
		if s.bypassed != 0 {
			t.Errorf("mesh frontier placement bypasses %d bridges", s.bypassed)
		}
	}
}
