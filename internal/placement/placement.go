// Package placement makes buffer *insertion* a decision variable — the half
// of the paper's title the sizing pipeline alone does not cover. Instead of
// buffering every bridge unconditionally (arch.InsertBridgeBuffers), the
// placer decides, bridge by bridge, whether to insert a decoupling buffer
// pair — and of which type from a cost/delay catalogue — or to leave the
// bridge transparent, merging the two buses it joins into one arbitration
// domain.
//
// The optimiser is the classic Van Ginneken repeater-insertion dynamic
// program transplanted from RC trees to SoC bus topologies: a bottom-up pass
// over a spanning forest of the bus graph carries, per subtree, a Pareto
// frontier of partial placements in (insertion cost, screened loss+latency)
// space, pruning dominated partials at every merge. Each frontier survivor
// is then priced with the analytic (M/M/1/K) solver backend on its real
// contracted architecture, and the best screened placements are refined with
// the exact CTMDP/LP backend through the internal/solver registry — the same
// screen-then-refine shape as the hybrid sizing backend, one level up.
//
// Contraction semantics: a bridge left without buffers does not merely skip
// two buffers — it stops decoupling its two buses. The placer models this by
// contracting the bridge's endpoints into one merged bus whose service rate
// is the minimum of the members' rates (the un-decoupled arbiter serialises
// everything; the slowest member is the bottleneck). Every candidate
// placement therefore evaluates as an ordinary fully-buffered architecture,
// and the whole existing sizing stack (split, CTMDP/LP, analytic, hybrid,
// simulation) applies unchanged. DESIGN.md §7 is the normative contract.
package placement

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"socbuf/internal/arch"
	"socbuf/internal/solvecache"
)

// BufferType is one catalogue entry: an insertable decoupling-buffer design
// point. Cost is in abstract area units (the DP's first frontier
// coordinate); Delay is the per-packet store-and-forward latency a packet
// pays crossing a bridge buffered with this type (it feeds the screened
// latency term, weighted by Config.LatencyWeight).
type BufferType struct {
	Name  string  `json:"name"`
	Cost  float64 `json:"cost"`
	Delay float64 `json:"delay"`
}

// DefaultCatalogue is the three-point cost/speed catalogue used when a
// request does not supply its own — a cheap-but-slow, a balanced and a
// fast-but-expensive design, mirroring the multi-type repeater libraries of
// the Van Ginneken extensions.
func DefaultCatalogue() []BufferType {
	return []BufferType{
		{Name: "lite", Cost: 1, Delay: 0.5},
		{Name: "std", Cost: 2, Delay: 0.2},
		{Name: "fast", Cost: 4, Delay: 0.05},
	}
}

// ParseCatalogue parses the -buffer-types flag syntax:
// "name:cost:delay,name:cost:delay,...". An empty string yields the default
// catalogue.
func ParseCatalogue(s string) ([]BufferType, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultCatalogue(), nil
	}
	var out []BufferType
	for _, item := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("placement: bad buffer type %q (want name:cost:delay)", item)
		}
		cost, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("placement: bad cost in %q: %v", item, err)
		}
		delay, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("placement: bad delay in %q: %v", item, err)
		}
		out = append(out, BufferType{Name: parts[0], Cost: cost, Delay: delay})
	}
	return out, nil
}

// ValidateCatalogue enforces the catalogue contract: non-empty, unique
// names, positive costs, non-negative delays. The reserved empty name means
// "no buffer" in Decision and cannot name a type.
func ValidateCatalogue(types []BufferType) error {
	if len(types) == 0 {
		return fmt.Errorf("placement: empty buffer-type catalogue")
	}
	seen := map[string]bool{}
	for _, t := range types {
		if t.Name == "" {
			return fmt.Errorf("placement: buffer type with empty name (reserved for bypass)")
		}
		if seen[t.Name] {
			return fmt.Errorf("placement: duplicate buffer type %q", t.Name)
		}
		seen[t.Name] = true
		if t.Cost <= 0 {
			return fmt.Errorf("placement: buffer type %q must have positive cost", t.Name)
		}
		if t.Delay < 0 {
			return fmt.Errorf("placement: buffer type %q has negative delay", t.Name)
		}
	}
	return nil
}

// Decision is one bridge's placement outcome. Type names a catalogue entry,
// or is empty for a bypassed (contracted) bridge.
type Decision struct {
	Bridge string `json:"bridge"`
	Type   string `json:"type"`
}

// DecisionString renders a decision vector compactly for tables and logs:
// one bridge=type entry per bridge, "~" marking a bypassed (contracted)
// bridge — e.g. "br00-01=std,br01-02=~".
func DecisionString(decs []Decision) string {
	parts := make([]string, len(decs))
	for i, d := range decs {
		t := d.Type
		if t == "" {
			t = "~"
		}
		parts[i] = d.Bridge + "=" + t
	}
	return strings.Join(parts, ",")
}

// Config drives one placement run. Arch is the original architecture with
// unbuffered bridges; the placer never mutates it.
type Config struct {
	Arch *arch.Architecture
	// Types is the insertion catalogue (nil = DefaultCatalogue).
	Types []BufferType
	// Budget is the total buffer-capacity budget the downstream sizing run
	// spends (core.Config.Budget). It also bounds placement feasibility: a
	// placement needing more buffers than Budget units cannot give every
	// buffer its one-unit floor and is discarded.
	Budget int
	// CostBudget caps the summed insertion cost (0 = unbounded). Applied to
	// the DP frontier before refinement.
	CostBudget float64
	// LatencyWeight trades screened latency against screened loss rate in
	// the DP's second frontier coordinate (default 0.1).
	LatencyWeight float64
	// Method is the refinement backend for the frontier survivors ("exact" |
	// "analytic" | "hybrid"; empty = exact). "analytic" stops after the
	// screening evaluations.
	Method string
	// RefineTop bounds how many screened survivors the refinement backend
	// evaluates (default 3; clamped to the frontier size).
	RefineTop int

	// Evaluation knobs, forwarded to every per-placement solver run
	// (zero values take the core defaults).
	Iterations int
	Seeds      []int64
	Horizon    float64
	WarmUp     float64
	Workers    int
	Cache      *solvecache.Cache

	// OnEval, when non-nil, receives every per-placement solver evaluation
	// as it completes — completion order, possibly from worker goroutines
	// (the callback must be safe for concurrent use). socbufd streams NDJSON
	// through it. The final Result is unaffected (aggregation walks frontier
	// order).
	OnEval func(Point) `json:"-"`
	// RunObserver, when non-nil, is invoked after every solver-backend run
	// the placer executes, with the canonical backend name and wall time —
	// the same contract as experiments.Options.Observer; internal/engine
	// hangs its per-backend stats counters off this hook.
	RunObserver func(method string, wall time.Duration) `json:"-"`
}

// WithDefaults fills the placement-specific defaults (solver knobs keep
// their zero values; core applies its own).
func (c Config) WithDefaults() Config {
	if len(c.Types) == 0 {
		c.Types = DefaultCatalogue()
	}
	if c.LatencyWeight == 0 {
		c.LatencyWeight = 0.1
	}
	if c.RefineTop == 0 {
		c.RefineTop = 3
	}
	return c
}

// Point is one placement on (or refined from) the Pareto frontier.
type Point struct {
	// Decisions covers every bridge, sorted by bridge ID ("" type = bypass).
	Decisions []Decision `json:"decisions"`
	// Cost is the summed insertion cost of the inserted types.
	Cost float64 `json:"cost"`
	// Buffers is the buffer count of the contracted architecture (egress
	// buffers plus two per inserted bridge) — the sizing budget must cover
	// its one-unit floors.
	Buffers int `json:"buffers"`
	// Bypassed counts contracted bridges.
	Bypassed int `json:"bypassed"`
	// ScreenJ is the DP's closed-form quality coordinate: weighted loss rate
	// plus LatencyWeight times the screened latency terms, at the uniform
	// provisional capacity. Comparable only within one run.
	ScreenJ float64 `json:"screenJ"`
	// ScreenLoss is the simulated loss of the analytic-backend evaluation of
	// this placement (screening stage); Loss is the final evaluated loss
	// under Method (equal to ScreenLoss when Method is "analytic" or the
	// point was not refined).
	ScreenLoss int64 `json:"screenLoss"`
	Loss       int64 `json:"loss"`
	// Improvement is 1 − sized/uniform loss for this placement's own
	// architecture (the sizing win, not the placement win).
	Improvement float64 `json:"improvement"`
	// Method is the backend that produced Loss; Refined marks points the
	// refinement stage re-evaluated.
	Method  string `json:"method,omitempty"`
	Refined bool   `json:"refined,omitempty"`
}

// decisionsOf renders a decision vector (per-bridge option indices) as the
// public sorted form. dec is indexed by problem bridge index; bypassOption
// entries map to the empty type name.
func (p *problem) decisionsOf(dec []int8) []Decision {
	out := make([]Decision, len(p.bridges))
	for i, br := range p.bridges {
		d := Decision{Bridge: br.ID}
		if dec[i] >= 0 {
			d.Type = p.types[dec[i]].Name
		}
		out[i] = d
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bridge < out[j].Bridge })
	return out
}

// Result is one placement run's outcome.
type Result struct {
	Arch string `json:"arch"`
	// Method is the canonical refinement backend name.
	Method string `json:"method"`
	// Candidates counts the decision points (bridges); Bypassable of them
	// offer the contraction option (cut edges of the bus graph).
	Candidates int `json:"candidates"`
	Bypassable int `json:"bypassable"`
	// Enumerated is the full placement-space size the DP covered implicitly
	// (product of per-bridge option counts).
	Enumerated int64 `json:"enumerated"`
	// Partials counts partial placements the DP generated; Pruned of them
	// were discarded as dominated. Their difference is the work that
	// survived to later merges — the measure of how much the frontier
	// carries versus brute force's Enumerated.
	Partials int `json:"partials"`
	Pruned   int `json:"pruned"`
	// Infeasible counts complete placements the capacity floor discarded;
	// CostFiltered counts frontier placements dropped by CostBudget.
	Infeasible   int `json:"infeasible"`
	CostFiltered int `json:"costFiltered"`
	// Frontier is the feasible Pareto frontier, cost-ascending, after
	// screening evaluation (and refinement where applied).
	Frontier []Point `json:"frontier"`
	// Chosen is the placement with the lowest final evaluated loss (ties
	// break toward lower cost, then lexicographic decisions).
	Chosen Point `json:"chosen"`
}
