package placement

import "sort"

// partial is one partial placement during the bottom-up DP: the processed
// subtree's decisions, the still-open component containing the subtree
// root, and the accumulated (cost, screened J) of everything already
// closed. bypassed is the third dominance coordinate — partials that
// contracted more bridges need fewer buffers, so a cheaper-and-better but
// less-contracted partial must not evict one that alone can satisfy a tight
// capacity budget (the budget-infeasible-subtree invariant, DESIGN.md §7).
type partial struct {
	comp     compKey
	cost     float64
	j        float64
	bypassed int
	dec      []int8
}

// scored is one complete placement on (or competing for) the frontier.
type scored struct {
	dec      []int8
	cost     float64
	j        float64
	bypassed int
}

// dpStats counts the DP's work for the result's transparency counters.
type dpStats struct {
	partials   int // partials generated across all merges
	pruned     int // of those, discarded as dominated
	infeasible int // complete placements dropped by the capacity floor
}

// decLess orders decision vectors lexicographically — the deterministic
// tie-break whenever two placements tie on every dominance coordinate.
func decLess(a, b []int8) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// mergeDec overlays two disjoint partial decision vectors (each bridge is
// decided by at most one side; the rest are optUndecided).
func mergeDec(a, b []int8) []int8 {
	return mergeDecInto(make([]int8, len(a)), a, b)
}

// mergeDecInto is mergeDec writing into caller-owned storage — the DP's
// merge loops carve candidate vectors out of one arena per batch instead of
// allocating each individually.
func mergeDecInto(out, a, b []int8) []int8 {
	copy(out, a)
	for i, d := range b {
		if d != optUndecided {
			out[i] = d
		}
	}
	return out
}

// prune3 removes dominated partials within each open-component group. A
// partial dominates another with the same component when its cost and J are
// no worse and its bypass count no lower, with at least one coordinate
// strict; exact ties on all three keep the lexicographically smallest
// decision vector. Sorting by (cost asc, j asc, bypassed desc, dec lex)
// places every potential dominator before its victims, so one forward sweep
// suffices.
func (p *problem) prune3(in []partial, st *dpStats) []partial {
	// One sort keyed by (component, cost, j, bypassed desc, dec lex) makes
	// every group contiguous with its potential dominators first, so the
	// dominance sweep compacts survivors in place — no grouping map, no
	// per-group sort.
	sort.Slice(in, func(i, j int) bool {
		switch {
		case in[i].comp != in[j].comp:
			return in[i].comp < in[j].comp
		case in[i].cost != in[j].cost:
			return in[i].cost < in[j].cost
		case in[i].j != in[j].j:
			return in[i].j < in[j].j
		case in[i].bypassed != in[j].bypassed:
			return in[i].bypassed > in[j].bypassed
		default:
			return decLess(in[i].dec, in[j].dec)
		}
	})
	out := in[:0]
	group := 0 // start of the current component's survivors in out
	for i, s := range in {
		if i > 0 && s.comp != in[i-1].comp {
			group = len(out)
		}
		dominated := false
		for _, q := range out[group:] {
			if q.cost <= s.cost && q.j <= s.j && q.bypassed >= s.bypassed {
				dominated = true
				break
			}
		}
		if dominated {
			st.pruned++
		} else {
			out = append(out, s)
		}
	}
	return out
}

// pruneScored removes 3D-dominated complete placements — same relation as
// prune3 (cost ≤, J ≤, bypassed ≥, one strict; exact ties keep the
// lex-smallest decision vector) without the component grouping. It prunes
// the intermediate Minkowski folds, where bypassed must stay a dominance
// coordinate: the capacity floor has not been applied yet, and a
// (cost, J)-dominated point with more bypassed bridges needs fewer buffers,
// so it may be the only point that fits a tight budget.
func pruneScored(in []scored, st *dpStats) []scored {
	sort.Slice(in, func(i, j int) bool {
		switch {
		case in[i].cost != in[j].cost:
			return in[i].cost < in[j].cost
		case in[i].j != in[j].j:
			return in[i].j < in[j].j
		case in[i].bypassed != in[j].bypassed:
			return in[i].bypassed > in[j].bypassed
		default:
			return decLess(in[i].dec, in[j].dec)
		}
	})
	var kept []scored
	for _, s := range in {
		dominated := false
		for _, q := range kept {
			if q.cost <= s.cost && q.j <= s.j && q.bypassed >= s.bypassed {
				dominated = true
				break
			}
		}
		if dominated {
			st.pruned++
		} else {
			kept = append(kept, s)
		}
	}
	return kept
}

// skyline keeps the 2D (cost, J) Pareto frontier of complete placements,
// cost-ascending. Exact (cost, J) ties keep the lexicographically smallest
// decision vector; the rest count as pruned.
func skyline(in []scored, st *dpStats) []scored {
	sort.Slice(in, func(i, j int) bool {
		switch {
		case in[i].cost != in[j].cost:
			return in[i].cost < in[j].cost
		case in[i].j != in[j].j:
			return in[i].j < in[j].j
		default:
			return decLess(in[i].dec, in[j].dec)
		}
	})
	var out []scored
	for _, s := range in {
		if len(out) > 0 && out[len(out)-1].j <= s.j {
			st.pruned++
			continue
		}
		out = append(out, s)
	}
	return out
}

// runDP executes the Van Ginneken-style bottom-up pass and returns the
// feasible complete frontier, cost-ascending.
func (p *problem) runDP() ([]scored, dpStats) {
	var st dpStats
	// Identity for the component fold: nothing decided, nothing spent.
	base := make([]int8, len(p.bridges))
	for i := range base {
		base[i] = optUndecided
	}
	complete := []scored{{dec: base}}
	// Prune between Minkowski folds but never after the last one, so the
	// capacity filter below still sees — and counts — every complete
	// placement the final fold produced.
	totalFolds := len(p.roots) + len(p.nonTree)
	folded := 0
	foldPrune := func(next []scored) []scored {
		st.partials += len(next)
		folded++
		if folded < totalFolds {
			return pruneScored(next, &st)
		}
		return next
	}
	// Solve each spanning-forest tree independently and close its root's
	// open component; fold the per-component frontiers by Minkowski sum
	// (decision vectors are disjoint, and cost, J and bypassed all add).
	for _, root := range p.roots {
		sols := p.solveSubtree(root, &st)
		closed := make([]scored, 0, len(sols))
		for _, s := range sols {
			closed = append(closed, scored{
				dec:      s.dec,
				cost:     s.cost,
				j:        s.j + p.closeJ(s.comp),
				bypassed: s.bypassed,
			})
		}
		n := len(complete) * len(closed)
		next := make([]scored, 0, n)
		arena := make([]int8, 0, n*len(p.bridges))
		for _, a := range complete {
			for _, b := range closed {
				arena = arena[:len(arena)+len(p.bridges)]
				nd := arena[len(arena)-len(p.bridges) : len(arena) : len(arena)]
				next = append(next, scored{
					dec:      mergeDecInto(nd, a.dec, b.dec),
					cost:     a.cost + b.cost,
					j:        a.j + b.j,
					bypassed: a.bypassed + b.bypassed,
				})
			}
		}
		complete = foldPrune(next)
	}
	// Fold the non-tree bridges (cycle closers — always inserted, type
	// still free): each is an independent (cost, delay) mini-frontier,
	// composed by Minkowski sum with pruning after each fold.
	for _, nb := range p.nonTree {
		n := len(complete) * len(p.types)
		next := make([]scored, 0, n)
		arena := make([]int8, 0, n*len(p.bridges))
		for _, s := range complete {
			for t := range p.types {
				arena = arena[:len(arena)+len(p.bridges)]
				nd := arena[len(arena)-len(p.bridges) : len(arena) : len(arena)]
				copy(nd, s.dec)
				nd[nb] = int8(t)
				next = append(next, scored{
					dec:      nd,
					cost:     s.cost + p.types[t].Cost,
					j:        s.j + p.insertTerm(nb, int8(t)),
					bypassed: s.bypassed,
				})
			}
		}
		complete = foldPrune(next)
	}
	// Capacity-floor feasibility: the sizing budget must give every buffer
	// of the contracted architecture its one-unit floor.
	feasible := complete[:0]
	for _, s := range complete {
		if p.numAttach+2*(len(p.bridges)-s.bypassed) <= p.budget {
			feasible = append(feasible, s)
		} else {
			st.infeasible++
		}
	}
	return skyline(feasible, &st), st
}

// solveSubtree returns the pruned partial frontier of bus v's subtree with
// v's component still open. Children merge one at a time in deterministic
// order; each merge decides the connecting tree edge (every catalogue type,
// plus bypass when the edge is a cut edge).
func (p *problem) solveSubtree(v int, st *dpStats) []partial {
	base := make([]int8, len(p.bridges))
	for i := range base {
		base[i] = optUndecided
	}
	sols := []partial{{comp: p.singletonComp(v), dec: base}}
	for _, c := range p.children[v] {
		csols := p.solveSubtree(c, st)
		edge := p.parentBr[c]
		options := len(p.types)
		if p.cut[edge] {
			options++
		}
		n := len(sols) * len(csols) * options
		next := make([]partial, 0, n)
		arena := make([]int8, 0, n*len(p.bridges))
		carve := func() []int8 {
			arena = arena[:len(arena)+len(p.bridges)]
			return arena[len(arena)-len(p.bridges) : len(arena) : len(arena)]
		}
		for _, sv := range sols {
			for _, sc := range csols {
				if p.cut[edge] {
					nd := mergeDecInto(carve(), sv.dec, sc.dec)
					nd[edge] = optBypass
					next = append(next, partial{
						comp:     unionComp(sv.comp, sc.comp),
						cost:     sv.cost + sc.cost,
						j:        sv.j + sc.j,
						bypassed: sv.bypassed + sc.bypassed + 1,
						dec:      nd,
					})
				}
				for t := range p.types {
					nd := mergeDecInto(carve(), sv.dec, sc.dec)
					nd[edge] = int8(t)
					next = append(next, partial{
						comp:     sv.comp,
						cost:     sv.cost + sc.cost + p.types[t].Cost,
						j:        sv.j + sc.j + p.closeJ(sc.comp) + p.insertTerm(edge, int8(t)),
						bypassed: sv.bypassed + sc.bypassed,
						dec:      nd,
					})
				}
			}
		}
		st.partials += len(next)
		sols = p.prune3(next, st)
	}
	return sols
}

// bruteForce enumerates every complete placement (the same option space as
// the DP: every type per bridge, bypass only on cut edges), prices each
// with the identical closed-form objective, applies the same feasibility
// floor, and returns the 2D skyline. It exists as the DP's correctness
// oracle and as the exhaustive screening path of the pricing benchmark.
func (p *problem) bruteForce() (front []scored, priced, infeasible int) {
	dec := make([]int8, len(p.bridges))
	var all []scored
	var recurse func(i int)
	recurse = func(i int) {
		if i == len(p.bridges) {
			priced++
			cd := make([]int8, len(dec))
			copy(cd, dec)
			s := scored{dec: cd, cost: p.costOf(cd), j: p.totalJ(cd)}
			for _, d := range cd {
				if d == optBypass {
					s.bypassed++
				}
			}
			if p.buffersOf(cd) > p.budget {
				infeasible++
				return
			}
			all = append(all, s)
			return
		}
		if p.cut[i] {
			dec[i] = optBypass
			recurse(i + 1)
		}
		for t := range p.types {
			dec[i] = int8(t)
			recurse(i + 1)
		}
	}
	recurse(0)
	var st dpStats
	return skyline(all, &st), priced, infeasible
}

// totalJ prices one complete placement from scratch: union-find the
// bypassed bridges into components, sum closeJ over the components and the
// insertion term over the inserted bridges — the same summands the DP
// accumulates incrementally.
func (p *problem) totalJ(dec []int8) float64 {
	n := len(p.buses)
	uf := make([]int, n)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for i, d := range dec {
		if d == optBypass {
			a, b := find(p.busIdx[p.bridges[i].BusA]), find(p.busIdx[p.bridges[i].BusB])
			if a != b {
				if b < a {
					a, b = b, a
				}
				uf[b] = a
			}
		}
	}
	comps := map[int]compKey{}
	for v := 0; v < n; v++ {
		r := find(v)
		if _, ok := comps[r]; !ok {
			comps[r] = p.singletonComp(v)
		} else {
			comps[r] = unionComp(comps[r], p.singletonComp(v))
		}
	}
	reps := make([]int, 0, len(comps))
	for r := range comps {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	var j float64
	for _, r := range reps {
		j += p.closeJ(comps[r])
	}
	for i, d := range dec {
		if d >= 0 {
			j += p.insertTerm(i, d)
		}
	}
	return j
}
