package placement

import (
	"context"
	"reflect"
	"testing"
	"time"

	"socbuf/internal/scenario"
	"socbuf/internal/solver"
)

// quickCfg are the evaluation knobs every end-to-end placement test uses —
// the scenario-smoke settings, small enough for CI.
func quickCfg(t *testing.T, name string) Config {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	a, err := sc.Build()
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return Config{
		Arch:       a,
		Budget:     sc.Budget,
		Iterations: 2,
		Seeds:      []int64{1},
		Horizon:    400,
		WarmUp:     50,
	}
}

// TestPlaceEndToEnd runs every registered backend over chain6 and checks
// the shape of the result: non-empty frontier, a chosen placement, refined
// evaluations only where the method calls for them.
func TestPlaceEndToEnd(t *testing.T) {
	for _, method := range solver.Methods() {
		cfg := quickCfg(t, "chain6")
		cfg.Method = method
		cfg.RefineTop = 2
		res, err := Place(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(res.Frontier) == 0 {
			t.Fatalf("%s: empty frontier", method)
		}
		if res.Method != method {
			t.Errorf("%s: result method %q", method, res.Method)
		}
		if res.Candidates != 5 || res.Bypassable != 5 {
			t.Errorf("%s: candidates %d bypassable %d, want 5/5 on chain6", method, res.Candidates, res.Bypassable)
		}
		if res.Enumerated != 1024 { // (3 types + bypass)^5
			t.Errorf("%s: enumerated %d, want 1024", method, res.Enumerated)
		}
		if res.Pruned == 0 {
			t.Errorf("%s: DP pruned nothing", method)
		}
		refined := 0
		for _, pt := range res.Frontier {
			if pt.Refined {
				refined++
				if pt.Method != method {
					t.Errorf("%s: refined point carries method %q", method, pt.Method)
				}
			}
			if len(pt.Decisions) != res.Candidates {
				t.Errorf("%s: point with %d decisions", method, len(pt.Decisions))
			}
		}
		if method == solver.MethodAnalytic && refined != 0 {
			t.Errorf("analytic: %d refined points, want 0", refined)
		}
		if method != solver.MethodAnalytic && refined == 0 {
			t.Errorf("%s: no refined points", method)
		}
		for _, pt := range res.Frontier {
			if pt.Loss < res.Chosen.Loss {
				t.Errorf("%s: chosen loss %d beaten by frontier point %d", method, res.Chosen.Loss, pt.Loss)
			}
		}
	}
}

// TestPlaceDeterministicAcrossWorkers: identical results for any worker
// count — the repo-wide contract, extended to placement.
func TestPlaceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		cfg := quickCfg(t, "star6")
		cfg.Method = solver.MethodAnalytic
		cfg.Workers = workers
		res, err := Place(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial, pooled := run(1), run(4)
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("results differ between 1 and 4 workers:\n%+v\nvs\n%+v", serial, pooled)
	}
}

// TestPlaceObserverAndOnEval: the streaming hook sees every evaluation and
// the backend observer attributes every solver run.
func TestPlaceObserverAndOnEval(t *testing.T) {
	cfg := quickCfg(t, "chain6")
	cfg.Method = solver.MethodExact
	cfg.RefineTop = 1
	var evals, runs int
	cfg.OnEval = func(Point) { evals++ }
	cfg.RunObserver = func(method string, wall time.Duration) { runs++ }
	cfg.Workers = 1 // hooks fire from worker goroutines; serialise for counting
	res, err := Place(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Frontier) + 1 // every screen + one refinement
	if evals != want {
		t.Errorf("OnEval fired %d times, want %d", evals, want)
	}
	if runs != want {
		t.Errorf("RunObserver fired %d times, want %d", runs, want)
	}
}

// TestPlaceInvalidInputs: unknown methods and impossible budgets fail with
// useful errors instead of empty results.
func TestPlaceInvalidInputs(t *testing.T) {
	cfg := quickCfg(t, "chain6")
	cfg.Method = "bogus"
	if _, err := Place(context.Background(), cfg); err == nil {
		t.Error("unknown method accepted")
	}
	cfg = quickCfg(t, "chain6")
	cfg.Budget = 1 // below even the all-bypass floor
	if _, err := Place(context.Background(), cfg); err == nil {
		t.Error("impossible budget accepted")
	}
	cfg = quickCfg(t, "chain6")
	cfg.Types = []BufferType{{Name: "", Cost: 1}}
	if _, err := Place(context.Background(), cfg); err == nil {
		t.Error("reserved empty type name accepted")
	}
}

// TestScreeningFasterThanOneExactSolve is the acceptance timing gate: on
// chain6, closed-form pricing of the entire 1024-placement space (≥100
// candidates) must cost less than a single exact CTMDP/LP solve of the
// fully-inserted architecture.
func TestScreeningFasterThanOneExactSolve(t *testing.T) {
	sc, _ := scenario.Get("chain6")
	a, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Arch: a, Types: DefaultCatalogue(), Budget: sc.Budget, LatencyWeight: 0.1}

	start := time.Now()
	p, err := newProblem(a.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, priced, _ := p.bruteForce()
	screenWall := time.Since(start)
	if priced < 100 {
		t.Fatalf("priced %d candidates, want ≥ 100", priced)
	}

	ecfg, err := sc.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	ecfg.Iterations, ecfg.Seeds, ecfg.Workers = 1, []int64{1}, 1
	start = time.Now()
	if _, err := solver.Run(context.Background(), ecfg); err != nil {
		t.Fatal(err)
	}
	exactWall := time.Since(start)

	t.Logf("screened %d placements in %v; one exact solve took %v", priced, screenWall, exactWall)
	if screenWall >= exactWall {
		t.Errorf("screening %d placements (%v) not faster than one exact solve (%v)", priced, screenWall, exactWall)
	}
}

// TestHybridRefinementWithin5PercentOfBruteForce is the acceptance quality
// gate: on
// a small chain, the hybrid-refined placement's exact-evaluated loss must
// come within 5% of the best placement found by exhaustively exact-solving
// the whole placement space.
func TestHybridRefinementWithin5PercentOfBruteForce(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exact enumeration is slow")
	}
	a, err := scenario.Topology{
		Kind: "chain", Buses: 3, FanOut: 2, Utilisation: 0.9, Skew: 2, Seed: 11,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	eval := Config{
		Arch:       a,
		Budget:     30,
		Iterations: 2,
		Seeds:      []int64{1, 2},
		Horizon:    600,
		WarmUp:     50,
	}

	// Exhaustive oracle: exact-evaluate every feasible placement.
	p, err := newProblem(a.Clone(), eval.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	best := int64(-1)
	var walk func(dec []int8, i int)
	walk = func(dec []int8, i int) {
		if i == len(p.bridges) {
			if p.buffersOf(dec) > eval.Budget {
				return
			}
			loss, _, err := p.evaluate(context.Background(), eval, solver.MethodExact, dec)
			if err != nil {
				t.Fatalf("exact %s: %v", p.signature(dec), err)
			}
			if best < 0 || loss < best {
				best = loss
			}
			return
		}
		if p.cut[i] {
			dec[i] = optBypass
			walk(dec, i+1)
		}
		for ty := range p.types {
			dec[i] = int8(ty)
			walk(dec, i+1)
		}
	}
	walk(make([]int8, len(p.bridges)), 0)
	if best < 0 {
		t.Fatal("no feasible placement in the oracle sweep")
	}

	cfg := eval
	cfg.Method = solver.MethodHybrid
	cfg.RefineTop = 3
	res, err := Place(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	limit := float64(best) * 1.05
	if limit < float64(best)+1 {
		limit = float64(best) + 1 // integer losses: always allow one count
	}
	t.Logf("brute-force best exact loss %d, hybrid chose %d (cost %g, %s)",
		best, res.Chosen.Loss, res.Chosen.Cost, res.Chosen.Method)
	if float64(res.Chosen.Loss) > limit {
		t.Errorf("hybrid placement loss %d exceeds 5%% over brute-force best %d", res.Chosen.Loss, best)
	}
}

// BenchmarkPlacementDP measures the pure DP (candidate enumeration, pricing
// and pruning — no solver evaluations) on the chain6 and tree7 registry
// topologies. PERFORMANCE.md tracks this row.
func BenchmarkPlacementDP(b *testing.B) {
	for _, name := range []string{"chain6", "tree7"} {
		sc, _ := scenario.Get(name)
		a, err := sc.Build()
		if err != nil {
			b.Fatal(err)
		}
		cfg := Config{Arch: a, Types: DefaultCatalogue(), Budget: sc.Budget, LatencyWeight: 0.1}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := newProblem(a, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if front, _ := p.runDP(); len(front) == 0 {
					b.Fatal("empty frontier")
				}
			}
		})
	}
}
