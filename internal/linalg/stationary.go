package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iteration did not converge")

// IterOptions tunes the iterative stationary solvers. Zero values pick
// defaults good for the CTMDP pipeline's 1e-8 agreement requirement.
type IterOptions struct {
	// Tol is the convergence tolerance on the balance-equation residual
	// max_j |(πQ)_j| relative to the largest exit rate. Default 1e-12.
	Tol float64
	// MaxIters bounds solver sweeps. Default 20000.
	MaxIters int
	// Init optionally warm-starts the iteration from a prior distribution
	// instead of the uniform one. It must have one entry per state; it is
	// copied and renormalised, so the caller's slice is never written. A
	// wrong-length, non-finite or massless prior silently falls back to the
	// uniform start — a warm start is a hint, never a correctness input. The
	// converged answer satisfies the same residual tolerance either way (the
	// solve-cache's warm/cold gate pins agreement to 1e-8); only the sweep
	// count changes.
	Init []float64
}

// initial returns the starting distribution: the validated, renormalised
// warm-start prior when one is usable, else uniform.
func (o IterOptions) initial(n int) []float64 {
	pi := make([]float64, n)
	if len(o.Init) == n {
		var mass float64
		ok := true
		for _, v := range o.Init {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
			mass += v
		}
		if ok && mass > 0 && !math.IsInf(mass, 0) {
			for i, v := range o.Init {
				pi[i] = v / mass
			}
			return pi
		}
	}
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	return pi
}

func (o IterOptions) withDefaults() IterOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 20000
	}
	return o
}

// StationaryGaussSeidel computes the stationary distribution π of the CTMC
// with generator Q, solving πQ = 0, Σπ = 1 by Gauss–Seidel sweeps on the
// transposed system Qᵀπ = 0. q must be a valid generator in CSR form
// (non-negative off-diagonals, rows summing to zero); the chain must be
// irreducible for the answer to be the unique stationary distribution.
//
// Each sweep updates π_i ← (Σ_{j≠i} q_ji·π_j) / (−q_ii) in place and then
// renormalises. For irreducible generators this is the classical iterative
// stationary method (Stewart, "Introduction to the Numerical Solution of
// Markov Chains") and converges geometrically.
func StationaryGaussSeidel(q *CSR, opts IterOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := q.Rows
	if n == 0 || q.Cols != n {
		return nil, fmt.Errorf("%w: generator %dx%d", ErrShape, q.Rows, q.Cols)
	}
	qt := q.T() // row i of qt holds incoming rates q_ji plus the diagonal q_ii
	diag, err := generatorDiag(qt)
	if err != nil {
		return nil, err
	}

	pi := opts.initial(n)
	res := make([]float64, n)
	scale := rateScale(q)
	for it := 0; it < opts.MaxIters; it++ {
		gsSweep(qt, diag, pi)
		s := Sum(pi)
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("linalg: Gauss–Seidel collapsed (mass %v)", s)
		}
		Scale(1/s, pi)
		if stationaryResidual(q, pi, res) <= opts.Tol*scale {
			return pi, nil
		}
	}
	return nil, ErrNoConvergence
}

// generatorDiag extracts the diagonal of Q from its transpose, rejecting
// states with no exit rate (absorbing states make the stationary distribution
// degenerate and break the division by the diagonal).
func generatorDiag(qt *CSR) ([]float64, error) {
	n := qt.Rows
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		found := false
		for k := qt.RowPtr[i]; k < qt.RowPtr[i+1]; k++ {
			if qt.Col[k] == i {
				diag[i] = qt.Val[k]
				found = true
				break
			}
		}
		if !found || diag[i] >= 0 {
			return nil, fmt.Errorf("linalg: state %d has no exit rate (absorbing or empty row)", i)
		}
	}
	return diag, nil
}

// gsSweep runs one in-place Gauss–Seidel sweep π_i ← (Σ_{j≠i} q_ji·π_j)/(−q_ii)
// over the transposed generator. Shared by the plain Gauss–Seidel solver and
// the aggregation solver's smoothing steps.
func gsSweep(qt *CSR, diag, pi []float64) {
	n := qt.Rows
	for i := 0; i < n; i++ {
		var in float64
		for k := qt.RowPtr[i]; k < qt.RowPtr[i+1]; k++ {
			if j := qt.Col[k]; j != i {
				in += qt.Val[k] * pi[j]
			}
		}
		pi[i] = in / -diag[i]
	}
}

// StationaryPower computes the stationary distribution of the CTMC with
// generator Q by power iteration on the uniformised DTMC P = I + Q/Λ with
// Λ = 1.05·max_i |q_ii|. Slower than Gauss–Seidel per digit of accuracy but
// unconditionally stable; the auto path uses it as the fallback.
func StationaryPower(q *CSR, opts IterOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := q.Rows
	if n == 0 || q.Cols != n {
		return nil, fmt.Errorf("%w: generator %dx%d", ErrShape, q.Rows, q.Cols)
	}
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := -q.At(i, i); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag <= 0 {
		return nil, errors.New("linalg: generator has no transitions")
	}
	rate := 1.05 * maxDiag
	qt := q.T()

	pi := opts.initial(n)
	next := make([]float64, n)
	res := make([]float64, n)
	scale := rateScale(q)
	for it := 0; it < opts.MaxIters; it++ {
		// next = π·P = π + (π·Q)/Λ, computed via the transpose:
		// (π·Q)_j = Σ_i π_i q_ij = Σ over row j of qt.
		for j := 0; j < n; j++ {
			var flow float64
			for k := qt.RowPtr[j]; k < qt.RowPtr[j+1]; k++ {
				flow += qt.Val[k] * pi[qt.Col[k]]
			}
			next[j] = pi[j] + flow/rate
		}
		pi, next = next, pi
		s := Sum(pi)
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("linalg: power iteration collapsed (mass %v)", s)
		}
		Scale(1/s, pi)
		if stationaryResidual(q, pi, res) <= opts.Tol*scale {
			return pi, nil
		}
	}
	return nil, ErrNoConvergence
}

// StationarySparse computes the stationary distribution of the generator,
// trying Gauss–Seidel first and falling back to power iteration when the
// sweep diverges or stalls. This is the entry point the CTMDP layer uses for
// large state spaces.
func StationarySparse(q *CSR, opts IterOptions) ([]float64, error) {
	pi, err := StationaryGaussSeidel(q, opts)
	if err == nil {
		return pi, nil
	}
	if pi2, err2 := StationaryPower(q, opts); err2 == nil {
		return pi2, nil
	}
	return nil, err
}

// stationaryResidual returns max_j |(πQ)_j|, the unbalance of the candidate
// distribution. res is caller-owned scratch of length q.Cols — the check runs
// once per sweep, and allocating it there dominated the solvers' allocation
// profiles.
func stationaryResidual(q *CSR, pi, res []float64) float64 {
	for j := range res {
		res[j] = 0
	}
	for i := 0; i < q.Rows; i++ {
		v := pi[i]
		if v == 0 {
			continue
		}
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			res[q.Col[k]] += v * q.Val[k]
		}
	}
	return NormInf(res)
}

// rateScale returns the largest exit rate of the generator, used to make the
// convergence tolerance relative to the chain's time scale.
func rateScale(q *CSR) float64 {
	var mx float64
	for i := 0; i < q.Rows; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			if q.Col[k] == i {
				if d := -q.Val[k]; d > mx {
					mx = d
				}
			}
		}
	}
	if mx == 0 {
		return 1
	}
	return mx
}
