package linalg

import (
	"fmt"
	"math"
)

// Aggregation solver defaults. The block size was tuned on the reference
// container against policy-induced birth–death-like chains (see
// PERFORMANCE.md "Kernels, measured"): blocks much smaller than 16 push work
// into the coarse solve (O(G³) per cycle), much larger ones slow the
// smoothing's error transfer.
const (
	aggBlockSize    = 32 // states per aggregate (contiguous index blocks)
	aggPreSmooth    = 1  // Gauss–Seidel sweeps before each aggregation step
	aggPostSmooth   = 2  // sweeps after each disaggregation
	aggMinAggregate = 4  // below this many aggregates, plain Gauss–Seidel wins
)

// StationaryAggregation computes the stationary distribution of the CTMC
// generator q by two-level iterative aggregation/disaggregation (the
// Koury–McAllister–Stewart scheme; Stewart, "Introduction to the Numerical
// Solution of Markov Chains", ch. 6). States are grouped into contiguous
// index blocks of aggBlockSize; each cycle (1) pre-smooths the current
// iterate with Gauss–Seidel, (2) forms the G×G aggregated generator
// C_IJ = Σ_{i∈I} (π_i/π_I) Σ_{j∈J} q_ij, (3) solves the small dense
// aggregated chain exactly, (4) disaggregates — rescales each block to the
// aggregate mass, keeping the within-block shape — and (5) post-smooths.
// Smoothing kills the high-frequency (within-block) error while the
// aggregate solve moves probability mass between blocks globally, which is
// exactly what plain Gauss–Seidel is slow at on large state spaces: its
// information travels one state per sweep, so sweep counts grow with n,
// while the aggregation cycle redistributes mass across the whole chain
// every cycle.
//
// The converged answer satisfies the same residual tolerance as the other
// iterative solvers (opts.Tol relative to the largest exit rate), so the
// auto path's 1e-8 agreement gate applies unchanged. Chains too small to
// aggregate delegate to Gauss–Seidel.
func StationaryAggregation(q *CSR, opts IterOptions) ([]float64, error) {
	opts = opts.withDefaults()
	n := q.Rows
	if n == 0 || q.Cols != n {
		return nil, fmt.Errorf("%w: generator %dx%d", ErrShape, q.Rows, q.Cols)
	}
	groups := (n + aggBlockSize - 1) / aggBlockSize
	if groups < aggMinAggregate {
		return StationaryGaussSeidel(q, opts)
	}
	qt := q.T()
	diag, err := generatorDiag(qt)
	if err != nil {
		return nil, err
	}

	pi := opts.initial(n)
	res := make([]float64, n)
	w := make([]float64, n)         // within-block weights π_i/π_I
	mass := make([]float64, groups) // block masses π_I
	coarse := make([]float64, groups*groups)
	z := make([]float64, groups) // aggregated stationary distribution
	lu := make([]float64, groups*groups)
	perm := make([]int, groups)
	back := make([]float64, groups)
	scale := rateScale(q)

	// One outer "iteration" is a full aggregation cycle; the smoothing sweeps
	// inside are charged against the same budget so MaxIters keeps comparable
	// meaning across the iterative solvers.
	cycles := opts.MaxIters/(aggPreSmooth+aggPostSmooth+1) + 1
	for cyc := 0; cyc < cycles; cyc++ {
		for s := 0; s < aggPreSmooth; s++ {
			gsSweep(qt, diag, pi)
		}
		if s := Sum(pi); s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("linalg: aggregation smoothing collapsed (mass %v)", s)
		} else {
			Scale(1/s, pi)
		}

		// Within-block weights. An (almost) empty block gets uniform weights:
		// the aggregate solve may still assign it mass, and the weights decide
		// where that mass lands.
		for g := range mass {
			mass[g] = 0
		}
		for i, v := range pi {
			mass[i/aggBlockSize] += v
		}
		for i := range w {
			g := i / aggBlockSize
			if mass[g] > 1e-300 {
				w[i] = pi[i] / mass[g]
			} else {
				lo := g * aggBlockSize
				hi := min(lo+aggBlockSize, n)
				w[i] = 1 / float64(hi-lo)
			}
		}

		// Aggregated generator: C[I][J] = Σ_{i∈I} w_i Σ_{j∈J} q_ij. Rows of Q
		// sum to zero, so rows of C do too — C is itself a generator.
		for k := range coarse {
			coarse[k] = 0
		}
		for i := 0; i < n; i++ {
			wi := w[i]
			if wi == 0 {
				continue
			}
			gi := i / aggBlockSize
			row := coarse[gi*groups : (gi+1)*groups]
			for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
				row[q.Col[k]/aggBlockSize] += wi * q.Val[k]
			}
		}
		if err := coarseStationary(coarse, groups, z, lu, perm, back); err != nil {
			return nil, err
		}

		// Disaggregate and post-smooth.
		for i := range pi {
			pi[i] = z[i/aggBlockSize] * w[i]
		}
		for s := 0; s < aggPostSmooth; s++ {
			gsSweep(qt, diag, pi)
		}
		s := Sum(pi)
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("linalg: aggregation cycle collapsed (mass %v)", s)
		}
		Scale(1/s, pi)
		if stationaryResidual(q, pi, res) <= opts.Tol*scale {
			return pi, nil
		}
	}
	return nil, ErrNoConvergence
}

// coarseStationary solves the aggregated chain: zC = 0, Σz = 1, via dense LU
// with partial pivoting on A = Cᵀ with the last equation replaced by the
// normalisation. lu (g×g), perm (g) and x (g) are caller-owned scratch; the
// result lands in z.
func coarseStationary(c []float64, g int, z, lu []float64, perm []int, x []float64) error {
	// A = Cᵀ, then row g-1 ← ones, rhs = e_{g-1}.
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			lu[i*g+j] = c[j*g+i]
		}
	}
	for j := 0; j < g; j++ {
		lu[(g-1)*g+j] = 1
	}
	for i := range z {
		z[i] = 0
	}
	z[g-1] = 1
	for i := range perm {
		perm[i] = i
	}
	// In-place LU with partial pivoting, solving as we factor (forward
	// elimination applied to z alongside).
	for col := 0; col < g; col++ {
		p, best := col, math.Abs(lu[perm[col]*g+col])
		for r := col + 1; r < g; r++ {
			if a := math.Abs(lu[perm[r]*g+col]); a > best {
				p, best = r, a
			}
		}
		if best == 0 {
			return fmt.Errorf("linalg: aggregated generator is singular (column %d)", col)
		}
		perm[col], perm[p] = perm[p], perm[col]
		prow := perm[col] * g
		inv := 1 / lu[prow+col]
		for r := col + 1; r < g; r++ {
			rrow := perm[r] * g
			f := lu[rrow+col] * inv
			if f == 0 {
				continue
			}
			for j := col + 1; j < g; j++ {
				lu[rrow+j] -= f * lu[prow+j]
			}
			z[perm[r]] -= f * z[perm[col]]
		}
	}
	// Back substitution x[col] = (b[perm[col]] − Σ_{j>col} U[col][j]·x[j]) /
	// U[col][col], then clamp the roundoff negatives a nearly reducible
	// aggregate can produce and renormalise.
	for col := g - 1; col >= 0; col-- {
		prow := perm[col] * g
		v := z[perm[col]]
		for j := col + 1; j < g; j++ {
			v -= lu[prow+j] * x[j]
		}
		x[col] = v / lu[prow+col]
	}
	var mass float64
	for i := range x {
		if x[i] < 0 {
			x[i] = 0
		}
		mass += x[i]
	}
	if mass <= 0 || math.IsNaN(mass) || math.IsInf(mass, 0) {
		return fmt.Errorf("linalg: aggregated solve produced mass %v", mass)
	}
	copy(z, x)
	Scale(1/mass, z)
	return nil
}
