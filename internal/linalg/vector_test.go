package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("y = %v", y)
	}
}

func TestAXPYPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	AXPY(1, []float64{1}, []float64{1, 2})
}

func TestScaleSumFill(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(2, x)
	if Sum(x) != 12 {
		t.Fatalf("sum = %v", Sum(x))
	}
	Fill(x, 5)
	if x[0] != 5 || x[2] != 5 {
		t.Fatalf("fill failed: %v", x)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 {
		t.Fatalf("norm2 = %v", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Fatalf("norminf = %v", NormInf(x))
	}
	if NormInf(nil) != 0 || Norm2(nil) != 0 {
		t.Fatal("empty vector norms must be 0")
	}
}

func TestCloneVec(t *testing.T) {
	x := []float64{1, 2}
	c := CloneVec(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("CloneVec shares storage")
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= ||a|| ||b||. Inputs are squashed into
// [-1,1] so intermediate products cannot overflow.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		av, bv := make([]float64, 8), make([]float64, 8)
		for i := range av {
			av[i] = math.Tanh(a[i])
			bv[i] = math.Tanh(b[i])
		}
		lhs := math.Abs(Dot(av, bv))
		rhs := Norm2(av) * Norm2(bv)
		return lhs <= rhs*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
