// Package linalg provides the linear-algebra kernel used by the CTMDP
// solver, the Markov-chain stationary solvers and the nonlinear (quadratic)
// coupled-system solver. It has two halves:
//
//   - dense: row-major matrices, LU decomposition with partial pivoting,
//     linear solves, and a handful of vector helpers — the exact path for
//     small systems (policy chains below ctmdp.StationaryOptions'
//     dense threshold);
//   - sparse: CSR matrices (SparseBuilder, CSR) and the iterative
//     stationary solvers of CTMC generators — StationaryGaussSeidel with
//     StationaryPower as the unconditionally stable fallback, combined in
//     StationarySparse, plus the two-level StationaryAggregation solver for
//     large, slowly mixing chains. O(nnz) per sweep, which is what scales:
//     the pipeline's chains have a handful of transitions per state.
//
// The iterative solvers accept a warm-start prior (IterOptions.Init), the
// hook the solve cache uses to seed a re-solve from a neighbouring cached
// solution. A prior is only a hint: the residual tolerance is unchanged, so
// warm and cold answers agree to the pipeline's 1e-8 gate, and unusable
// priors silently fall back to the uniform start.
//
// The package deliberately implements only what the buffer-sizing pipeline
// needs. Everything is float64 and allocation patterns are predictable so
// the CTMDP inner loop can reuse buffers.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorisation or solve meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i,j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MatVec computes y = M·x. len(x) must equal m.Cols.
func (m *Matrix) MatVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: matvec %dx%d by vec %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// Mul computes the product M·B.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%9.4g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// MaxAbs returns the largest absolute entry (∞-norm of the flattened data).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
