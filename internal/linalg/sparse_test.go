package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSparseBuilderRoundTrip(t *testing.T) {
	b := NewSparseBuilder(3, 4)
	b.Add(2, 1, 5)
	b.Add(0, 0, 1)
	b.Add(0, 3, 2)
	b.Add(2, 1, -2) // duplicate: summed
	b.Add(1, 2, 7)
	s := b.Build()
	if s.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4 (duplicates summed)", s.NNZ())
	}
	want := [][]float64{
		{1, 0, 0, 2},
		{0, 0, 7, 0},
		{0, 3, 0, 0},
	}
	for i := range want {
		for j := range want[i] {
			if got := s.At(i, j); got != want[i][j] {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
	// Column indices strictly increasing per row.
	for i := 0; i < s.Rows; i++ {
		for k := s.RowPtr[i] + 1; k < s.RowPtr[i+1]; k++ {
			if s.Col[k] <= s.Col[k-1] {
				t.Fatalf("row %d columns not increasing: %v", i, s.Col[s.RowPtr[i]:s.RowPtr[i+1]])
			}
		}
	}
}

func TestSparseMatVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(13, 9)
	b := NewSparseBuilder(13, 9)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if rng.Float64() < 0.3 {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				b.Add(i, j, v)
			}
		}
	}
	s := b.Build()
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := m.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("matvec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSparseTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewSparseBuilder(6, 8)
	m := NewMatrix(6, 8)
	for i := 0; i < 6; i++ {
		for j := 0; j < 8; j++ {
			if rng.Float64() < 0.4 {
				v := rng.NormFloat64()
				b.Add(i, j, v)
				m.Set(i, j, v)
			}
		}
	}
	st := b.Build().T()
	mt := m.T()
	if st.Rows != 8 || st.Cols != 6 {
		t.Fatalf("transpose shape %dx%d", st.Rows, st.Cols)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 6; j++ {
			if math.Abs(st.At(i, j)-mt.At(i, j)) > 0 {
				t.Fatalf("T At(%d,%d) = %v, want %v", i, j, st.At(i, j), mt.At(i, j))
			}
		}
	}
}

func TestFromDense(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 0, 1e-14)
	s := FromDense(m, 1e-10)
	if s.NNZ() != 1 || s.At(0, 0) != 3 {
		t.Fatalf("FromDense dropped wrong entries: nnz=%d", s.NNZ())
	}
	s = FromDense(m, 0)
	if s.NNZ() != 2 {
		t.Fatalf("FromDense with zero dropTol lost entries: nnz=%d", s.NNZ())
	}
}

// randomGenerator builds an irreducible CTMC generator in both dense and CSR
// form: a ring (guaranteeing irreducibility) plus random extra transitions.
func randomGenerator(n int, extra int, seed int64) (*Matrix, *CSR) {
	rng := rand.New(rand.NewSource(seed))
	dense := NewMatrix(n, n)
	b := NewSparseBuilder(n, n)
	add := func(i, j int, v float64) {
		dense.Add(i, j, v)
		dense.Add(i, i, -v)
		b.Add(i, j, v)
		b.Add(i, i, -v)
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n, 0.5+rng.Float64())
	}
	for e := 0; e < extra; e++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i != j {
			add(i, j, rng.Float64())
		}
	}
	return dense, b.Build()
}

// stationaryDense solves πQ = 0, Σπ = 1 with the dense LU path, mirroring
// markov.Stationary without the import cycle.
func stationaryDense(t *testing.T, q *Matrix) []float64 {
	t.Helper()
	n := q.Rows
	a := q.T()
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	rhs := make([]float64, n)
	rhs[n-1] = 1
	pi, err := Solve(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	return pi
}

func TestStationaryGaussSeidelMatchesDense(t *testing.T) {
	for _, n := range []int{3, 10, 50, 200} {
		dense, csr := randomGenerator(n, 3*n, int64(n))
		want := stationaryDense(t, dense)
		got, err := StationaryGaussSeidel(csr, IterOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: π[%d] = %v, dense %v (Δ=%g)", n, i, got[i], want[i], math.Abs(got[i]-want[i]))
			}
		}
	}
}

func TestStationaryPowerMatchesDense(t *testing.T) {
	dense, csr := randomGenerator(40, 120, 99)
	want := stationaryDense(t, dense)
	got, err := StationaryPower(csr, IterOptions{Tol: 1e-13, MaxIters: 200000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("π[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

func TestStationarySparseBirthDeath(t *testing.T) {
	// M/M/1/K has the known geometric stationary distribution.
	lambda, mu := 2.0, 3.0
	K := 6
	b := NewSparseBuilder(K+1, K+1)
	for k := 0; k <= K; k++ {
		var exit float64
		if k < K {
			b.Add(k, k+1, lambda)
			exit += lambda
		}
		if k > 0 {
			b.Add(k, k-1, mu)
			exit += mu
		}
		b.Add(k, k, -exit)
	}
	pi, err := StationarySparse(b.Build(), IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	norm := (1 - math.Pow(rho, float64(K+1))) / (1 - rho)
	for k := 0; k <= K; k++ {
		want := math.Pow(rho, float64(k)) / norm
		if math.Abs(pi[k]-want) > 1e-10 {
			t.Fatalf("π[%d] = %v, analytic %v", k, pi[k], want)
		}
	}
}

func TestStationaryAbsorbingStateRejected(t *testing.T) {
	b := NewSparseBuilder(2, 2)
	b.Add(0, 1, 1)
	b.Add(0, 0, -1)
	// State 1 absorbing: no exit rate.
	if _, err := StationaryGaussSeidel(b.Build(), IterOptions{}); err == nil {
		t.Fatal("absorbing chain accepted")
	}
}

func TestStationaryNoConvergenceBudget(t *testing.T) {
	_, csr := randomGenerator(50, 100, 1)
	if _, err := StationaryGaussSeidel(csr, IterOptions{Tol: 1e-14, MaxIters: 1}); err == nil {
		t.Fatal("one-sweep budget converged to 1e-14 — residual check broken")
	}
}
