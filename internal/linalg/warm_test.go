package linalg

import (
	"math"
	"testing"
)

// warmChain builds a small irreducible generator (a skewed ring) for the
// warm-start tests.
func warmChain(n int) *CSR {
	b := NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		fwd := 1.0 + float64(i%3)
		back := 0.5
		b.Add(i, (i+1)%n, fwd)
		b.Add(i, (i+n-1)%n, back)
		b.Add(i, i, -(fwd + back))
	}
	return b.Build()
}

// TestStationaryInitAgreement: seeding the iterative solvers with any prior
// — the answer itself, a perturbation, junk that must be rejected — cannot
// change what they converge to, only how fast. Cold and warm answers agree
// to 1e-8.
func TestStationaryInitAgreement(t *testing.T) {
	q := warmChain(64)
	for _, solver := range []struct {
		name string
		f    func(*CSR, IterOptions) ([]float64, error)
	}{
		{"gauss-seidel", StationaryGaussSeidel},
		{"power", StationaryPower},
	} {
		cold, err := solver.f(q, IterOptions{})
		if err != nil {
			t.Fatalf("%s: cold: %v", solver.name, err)
		}
		perturbed := make([]float64, len(cold))
		for i, p := range cold {
			perturbed[i] = p * (1 + 0.01*float64(i%5))
		}
		inits := map[string][]float64{
			"exact":        cold,
			"perturbed":    perturbed,
			"wrong-length": {1},
			"negative":     append([]float64{-1}, cold[1:]...),
			"massless":     make([]float64, len(cold)),
		}
		for name, init := range inits {
			warm, err := solver.f(q, IterOptions{Init: init})
			if err != nil {
				t.Fatalf("%s/%s: warm: %v", solver.name, name, err)
			}
			for i := range cold {
				if d := math.Abs(warm[i] - cold[i]); d > 1e-8 {
					t.Fatalf("%s/%s: warm diverges from cold by %g at %d", solver.name, name, d, i)
				}
			}
		}
	}
}

// TestStationaryInitNotMutated: the caller's prior is copied, never written.
func TestStationaryInitNotMutated(t *testing.T) {
	q := warmChain(16)
	init := make([]float64, 16)
	for i := range init {
		init[i] = float64(i + 1)
	}
	snapshot := append([]float64(nil), init...)
	if _, err := StationaryGaussSeidel(q, IterOptions{Init: init}); err != nil {
		t.Fatal(err)
	}
	for i := range init {
		if init[i] != snapshot[i] {
			t.Fatalf("Init mutated at %d: %v != %v", i, init[i], snapshot[i])
		}
	}
}

// TestStationaryInitConvergesFaster: with a tight iteration budget that the
// uniform start cannot meet, the exact prior still converges — the
// operational payoff of a warm start.
func TestStationaryInitConvergesFaster(t *testing.T) {
	q := warmChain(256)
	cold, err := StationaryGaussSeidel(q, IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	budget := IterOptions{MaxIters: 2}
	if _, err := StationaryGaussSeidel(q, budget); err == nil {
		t.Skip("chain converges from uniform within 2 sweeps; budget too loose to discriminate")
	}
	budget.Init = cold
	if _, err := StationaryGaussSeidel(q, budget); err != nil {
		t.Fatalf("exact prior did not converge within the tight budget: %v", err)
	}
}
