package linalg

import (
	"math"
	"testing"
	"time"
)

func TestStationaryAggregationMatchesDense(t *testing.T) {
	for _, n := range []int{200, 512, 1000} {
		dense, csr := randomGenerator(n, 3*n, int64(n))
		want := stationaryDense(t, dense)
		got, err := StationaryAggregation(csr, IterOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: π[%d] = %v, dense %v (Δ=%g)", n, i, got[i], want[i], math.Abs(got[i]-want[i]))
			}
		}
	}
}

// TestStationaryAggregationSmallDelegates pins the small-chain path: too few
// aggregates to be worth a coarse level, so the answer must be exactly the
// Gauss–Seidel one.
func TestStationaryAggregationSmallDelegates(t *testing.T) {
	_, csr := randomGenerator(40, 120, 7)
	agg, err := StationaryAggregation(csr, IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := StationaryGaussSeidel(csr, IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gs {
		if agg[i] != gs[i] {
			t.Fatalf("π[%d]: aggregation %v, Gauss–Seidel %v — small chains must delegate", i, agg[i], gs[i])
		}
	}
}

func TestStationaryAggregationRejectsAbsorbing(t *testing.T) {
	b := NewSparseBuilder(256, 256)
	for i := 0; i < 255; i++ {
		b.Add(i, i+1, 1)
		b.Add(i, i, -1)
	}
	// State 255 has no exit rate: absorbing.
	if _, err := StationaryAggregation(b.Build(), IterOptions{}); err == nil {
		t.Fatal("absorbing chain accepted")
	}
}

// TestAggregationBeatsDenseLUAt2048 is the acceptance gate of the
// aggregation solver (ISSUE 7): on a ≥2048-state chain it must agree with
// dense LU to 1e-8 and be at least 3× faster. The measured gap on the
// reference container is orders of magnitude (ms vs seconds — see
// PERFORMANCE.md "Kernels, measured"), so the 3× line has enormous headroom
// and the gate only trips on a real regression.
func TestAggregationBeatsDenseLUAt2048(t *testing.T) {
	if testing.Short() {
		t.Skip("dense-LU reference solve takes ~1s")
	}
	const n = 2048
	dense, csr := randomGenerator(n, 3*n, 2048)

	t0 := time.Now()
	want := stationaryDense(t, dense)
	denseDur := time.Since(t0)

	t0 = time.Now()
	got, err := StationaryAggregation(csr, IterOptions{})
	aggDur := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}

	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("π[%d] = %v, dense %v (Δ=%g)", i, got[i], want[i], math.Abs(got[i]-want[i]))
		}
	}
	if aggDur*3 > denseDur {
		t.Fatalf("aggregation %v vs dense LU %v: want ≥3× faster", aggDur, denseDur)
	}
	t.Logf("n=%d: aggregation %v, dense LU %v (%.0f×)", n, aggDur, denseDur, float64(denseDur)/float64(aggDur))
}
