package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved without error")
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("LU of non-square accepted")
	}
}

func TestSolveWrongRHSLen(t *testing.T) {
	f, err := Factor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("rhs length mismatch accepted")
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Fatalf("Det = %v, want -6", f.Det())
	}
	fi, _ := Factor(Identity(5))
	if !almostEq(fi.Det(), 1, 1e-12) {
		t.Fatalf("Det(I) = %v", fi.Det())
	}
}

func TestDetPermutationSign(t *testing.T) {
	// A row swap of the identity has determinant -1.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -1, 1e-12) {
		t.Fatalf("Det(perm) = %v, want -1", f.Det())
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a pivot swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestResidualZeroForExactSolve(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 1}, {1, 2}})
	b := []float64{9, 8}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Residual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-10 {
		t.Fatalf("residual = %v", r)
	}
}

func TestResidualShapeError(t *testing.T) {
	a := Identity(2)
	if _, err := Residual(a, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("bad x length accepted")
	}
	if _, err := Residual(a, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("bad b length accepted")
	}
}

// Property: for random diagonally-dominant systems, Solve produces residual
// ~0 and LU reconstructs the solution of the original system.
func TestSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Add(i, i, rowSum+1) // diagonal dominance => nonsingular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r, err := Residual(a, x, b)
		return err == nil && r < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Det of a random triangular matrix equals the product of its
// diagonal entries.
func TestDetTriangularProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		prod := 1.0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			d := 1 + rng.Float64()*3
			a.Set(i, i, d)
			prod *= d
		}
		f2, err := Factor(a)
		if err != nil {
			return false
		}
		return math.Abs(f2.Det()-prod) < 1e-8*math.Abs(prod)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
