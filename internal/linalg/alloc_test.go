package linalg

import "testing"

// TestMatVecToZeroAlloc pins the CSR mat-vec hot loop at zero allocations
// per call (ISSUE 7's AllocsPerRun gate). A regression here — a hidden
// bounds-check spill, an accidental slice header escape — would silently tax
// every stationary sweep in the pipeline.
func TestMatVecToZeroAlloc(t *testing.T) {
	_, csr := randomGenerator(512, 1536, 3)
	x := make([]float64, 512)
	for i := range x {
		x[i] = 1 / float64(512)
	}
	y := make([]float64, 512)
	if allocs := testing.AllocsPerRun(100, func() {
		csr.MatVecTo(y, x)
	}); allocs != 0 {
		t.Fatalf("MatVecTo allocates %.0f objects per call, want 0", allocs)
	}
}

// TestGaussSeidelSweepZeroAlloc pins the per-sweep cost of the iterative
// stationary solvers: one Gauss–Seidel sweep plus the residual check must
// not allocate (the residual scratch is preallocated per solve, not per
// sweep).
func TestGaussSeidelSweepZeroAlloc(t *testing.T) {
	_, csr := randomGenerator(512, 1536, 4)
	qt := csr.T()
	diag, err := generatorDiag(qt)
	if err != nil {
		t.Fatal(err)
	}
	pi := IterOptions{}.initial(512)
	res := make([]float64, 512)
	if allocs := testing.AllocsPerRun(100, func() {
		gsSweep(qt, diag, pi)
		stationaryResidual(csr, pi, res)
	}); allocs != 0 {
		t.Fatalf("Gauss–Seidel sweep allocates %.0f objects per iteration, want 0", allocs)
	}
}
