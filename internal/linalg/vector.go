package linalg

import "math"

// Dot returns the inner product of a and b. Panics if lengths differ, since
// this is always a programming error in this codebase.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot of unequal-length vectors")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY computes y ← y + alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: axpy of unequal-length vectors")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns max |x_i| (0 for an empty vector).
func NormInf(x []float64) float64 {
	var mx float64
	for _, v := range x {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Sum returns Σ x_i.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}
