package linalg

import (
	"math"
	"strings"
	"testing"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(-1, 2) did not panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("wrong contents: %v", m.Data)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("dims = %dx%d, want 0x0", m.Rows, m.Cols)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I(3)[%d,%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAddRow(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At(0,1) = %v, want 7", m.At(0, 1))
	}
	row := m.Row(0)
	row[0] = 9 // Row is a view; mutation must be visible.
	if m.At(0, 0) != 9 {
		t.Fatal("Row is not a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T contents wrong: %v", tr.Data)
	}
}

func TestMatVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := m.MatVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v, want [3 7]", y)
	}
}

func TestMatVecShapeError(t *testing.T) {
	m := NewMatrix(2, 2)
	if _, err := m.MatVec([]float64{1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 1}, {4, 3}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d,%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	p, err := a.Mul(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if p.Data[i] != a.Data[i] {
			t.Fatalf("A·I != A at flat index %d", i)
		}
	}
}

func TestStringContainsEntries(t *testing.T) {
	m, _ := FromRows([][]float64{{1.5, -2}})
	s := m.String()
	if !strings.Contains(s, "1.5") || !strings.Contains(s, "-2") {
		t.Fatalf("String() = %q lacks entries", s)
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := FromRows([][]float64{{1, -9}, {3, 4}})
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v, want 9", m.MaxAbs())
	}
	if NewMatrix(0, 0).MaxAbs() != 0 {
		t.Fatal("MaxAbs of empty != 0")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
