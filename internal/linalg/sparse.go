package linalg

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row form. Row i's entries live
// in Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]], with column
// indices strictly increasing inside each row.
//
// CSR exists for the large generator matrices of the CTMDP pipeline: a
// subsystem chain with n states has O(n) transitions (a handful per state),
// so the dense n×n representation wastes both memory and matvec time once n
// grows past a few hundred states.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len == Rows+1
	Col        []int // len == NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (s *CSR) NNZ() int { return len(s.Val) }

// At returns element (i,j) by scanning row i. O(row length); intended for
// tests and debugging, not inner loops.
func (s *CSR) At(i, j int) float64 {
	for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
		if s.Col[k] == j {
			return s.Val[k]
		}
	}
	return 0
}

// MatVec computes y = S·x.
func (s *CSR) MatVec(x []float64) ([]float64, error) {
	if len(x) != s.Cols {
		return nil, fmt.Errorf("%w: sparse matvec %dx%d by vec %d", ErrShape, s.Rows, s.Cols, len(x))
	}
	y := make([]float64, s.Rows)
	s.MatVecTo(y, x)
	return y, nil
}

// MatVecTo computes y = S·x into a caller-owned slice (no allocation).
// Lengths must already match.
//
// The inner loop is 4-way unrolled into independent partial sums: the gather
// loads x[Col[k]] dominate, and breaking the serial dependence on one
// accumulator lets the CPU overlap them. Generator rows in this repository
// carry a handful of entries, so the unrolled block plus a short tail covers
// the common case with at most one loop iteration.
func (s *CSR) MatVecTo(y, x []float64) {
	col, val := s.Col, s.Val
	for i := 0; i < s.Rows; i++ {
		k, end := s.RowPtr[i], s.RowPtr[i+1]
		var s0, s1, s2, s3 float64
		for ; k+4 <= end; k += 4 {
			s0 += val[k] * x[col[k]]
			s1 += val[k+1] * x[col[k+1]]
			s2 += val[k+2] * x[col[k+2]]
			s3 += val[k+3] * x[col[k+3]]
		}
		for ; k < end; k++ {
			s0 += val[k] * x[col[k]]
		}
		y[i] = (s0 + s1) + (s2 + s3)
	}
}

// T returns the transpose in CSR form (built in one counting pass plus one
// scatter pass, O(NNZ)).
func (s *CSR) T() *CSR {
	t := &CSR{
		Rows:   s.Cols,
		Cols:   s.Rows,
		RowPtr: make([]int, s.Cols+1),
		Col:    make([]int, s.NNZ()),
		Val:    make([]float64, s.NNZ()),
	}
	for _, j := range s.Col {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < s.Rows; i++ {
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			j := s.Col[k]
			p := next[j]
			t.Col[p] = i
			t.Val[p] = s.Val[k]
			next[j]++
		}
	}
	return t
}

// Dense expands the matrix to dense form.
func (s *CSR) Dense() *Matrix {
	m := NewMatrix(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			m.Add(i, s.Col[k], s.Val[k])
		}
	}
	return m
}

// Density returns NNZ / (Rows·Cols), the stored fraction.
func (s *CSR) Density() float64 {
	if s.Rows == 0 || s.Cols == 0 {
		return 0
	}
	return float64(s.NNZ()) / (float64(s.Rows) * float64(s.Cols))
}

// SparseBuilder accumulates coordinate-form entries and compresses them into
// a CSR matrix. Duplicate (i,j) entries are summed, matching the AddRate
// semantics of generator assembly.
type SparseBuilder struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewSparseBuilder returns an empty builder for an r×c matrix.
func NewSparseBuilder(r, c int) *SparseBuilder {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &SparseBuilder{rows: r, cols: c}
}

// Add accumulates v at (i,j). Zero values are kept until Build, which drops
// entries that cancel to exactly zero only if they were never touched; exact
// structural zeros from cancellation stay stored (harmless for solvers).
func (b *SparseBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("linalg: sparse entry (%d,%d) outside %dx%d", i, j, b.rows, b.cols))
	}
	b.ri = append(b.ri, i)
	b.ci = append(b.ci, j)
	b.v = append(b.v, v)
}

// Build compresses the accumulated entries into CSR form, summing duplicate
// coordinates. The builder can be reused afterwards; further Adds extend the
// same triplet list.
func (b *SparseBuilder) Build() *CSR {
	order := make([]int, len(b.v))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ox, oy := order[x], order[y]
		if b.ri[ox] != b.ri[oy] {
			return b.ri[ox] < b.ri[oy]
		}
		return b.ci[ox] < b.ci[oy]
	})
	out := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	lastRow, lastCol := -1, -1
	for _, o := range order {
		i, j, v := b.ri[o], b.ci[o], b.v[o]
		if i == lastRow && j == lastCol {
			out.Val[len(out.Val)-1] += v
			continue
		}
		out.Col = append(out.Col, j)
		out.Val = append(out.Val, v)
		out.RowPtr[i+1]++
		lastRow, lastCol = i, j
	}
	for i := 0; i < b.rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// FromDense converts a dense matrix to CSR, dropping entries with
// |v| <= dropTol (pass 0 to keep every nonzero exactly).
func FromDense(m *Matrix, dropTol float64) *CSR {
	b := NewSparseBuilder(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if v != 0 && (dropTol <= 0 || v > dropTol || v < -dropTol) {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}
