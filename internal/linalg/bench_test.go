package linalg

import (
	"fmt"
	"testing"
)

// benchGenerator builds the dense and CSR forms of an irreducible generator
// with ~4 transitions per state — the sparsity profile of the CTMDP chains.
func benchGenerator(n int) (*Matrix, *CSR) {
	return randomGenerator(n, 3*n, 1)
}

// BenchmarkStationaryDenseVsSparse compares the dense LU stationary solve
// against the sparse Gauss–Seidel solve across chain sizes: the crossover
// motivates the ctmdp.StationaryOptions threshold defaults.
func BenchmarkStationaryDenseVsSparse(b *testing.B) {
	for _, n := range []int{32, 64, 256, 1024} {
		dense, csr := benchGenerator(n)
		b.Run(fmt.Sprintf("dense-lu/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := dense.T()
				for j := 0; j < n; j++ {
					a.Set(n-1, j, 1)
				}
				rhs := make([]float64, n)
				rhs[n-1] = 1
				if _, err := Solve(a, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse-gs/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := StationaryGaussSeidel(csr, IterOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("amg/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := StationaryAggregation(csr, IterOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The aggregation solver's home turf is beyond the dense threshold; the
	// dense reference is omitted at this size (one LU is ~1s).
	for _, n := range []int{4096} {
		_, csr := benchGenerator(n)
		b.Run(fmt.Sprintf("amg/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := StationaryAggregation(csr, IterOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSparseMatVec(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		dense, csr := benchGenerator(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) + 0.5
		}
		y := make([]float64, n)
		b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dense.MatVec(x); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("csr/n=%d", n), func(b *testing.B) {
			b.ReportMetric(csr.Density(), "density")
			for i := 0; i < b.N; i++ {
				csr.MatVecTo(y, x)
			}
		})
	}
}
