package linalg

import (
	"fmt"
	"math"
)

// LU holds an LU decomposition with partial pivoting: P·A = L·U where L is
// unit lower triangular and U is upper triangular, both stored in lu.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64 // +1 or -1 with row swaps, used by Det
}

// Factor computes the LU decomposition of a square matrix. It returns
// ErrSingular if a pivot is (effectively) zero.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for i := range pivot {
		pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |entry| in column k at/below row k.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				p, best = i, a
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("%w: zero pivot in column %d", ErrSingular, k)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			pivot[k], pivot[p] = pivot[p], pivot[k]
			sign = -sign
		}
		pk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pk
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A·x = b using the factorisation. b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve with rhs len %d, want %d", ErrShape, len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution (L is unit lower).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b directly (factor + solve). A and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Residual returns max_i |A·x − b|_i, a cheap solve-quality check.
func Residual(a *Matrix, x, b []float64) (float64, error) {
	ax, err := a.MatVec(x)
	if err != nil {
		return 0, err
	}
	if len(b) != len(ax) {
		return 0, ErrShape
	}
	var mx float64
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx, nil
}
