package uncertain

import (
	"bytes"
	"testing"
)

// FuzzParseSpec drives the strict spec decoder with arbitrary bytes: it
// must never panic, and any input it accepts must round-trip — encode then
// re-parse to the identical spec (the JSON contract scenario files and
// /v1/solve bodies rely on).
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"rateSigma":0.2,"samples":64,"confidence":0.95,"seed":1}`))
	f.Add([]byte(`{"burstSigma":0.1,"lossTarget":0.5,"targetFactor":2}`))
	f.Add([]byte(`{"samples":-1}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted spec %+v failed to encode: %v", s, err)
		}
		back, err := ParseSpec(buf.Bytes())
		if err != nil {
			t.Fatalf("accepted spec %+v failed to re-parse: %v", s, err)
		}
		if back != s {
			t.Fatalf("round trip changed spec: %+v vs %+v", back, s)
		}
	})
}
