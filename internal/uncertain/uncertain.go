// Package uncertain models traffic-parameter uncertainty for robust buffer
// sizing: the paper sizes against point-estimate Poisson rates, but real SoC
// traffic is never a known λ. A Spec describes how the nominal parameters
// are perturbed — multiplicative lognormal rate factors per flow, plus an
// optional burstiness envelope — and a Sampler draws N such perturbations
// with common random numbers: sample i is a pure function of (seed, i), so
// every candidate sizing is evaluated on identical sample paths and yield
// comparisons between candidates are paired, not confounded by sampling
// noise. The Wilson lower bound guards chance-constraint decisions against
// lucky small-N yield estimates. The robust solver backend
// (internal/solver) consumes all of this; DESIGN.md §9 records the
// contract.
package uncertain

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"socbuf/internal/arch"
)

// Default spec values, shared with the flag help strings.
const (
	DefaultRateSigma    = 0.2
	DefaultSamples      = 64
	DefaultConfidence   = 0.95
	DefaultTargetFactor = 1.5
	DefaultSeed         = 1
)

// Factor clamp: a drawn perturbation factor is clipped to this range so a
// tail draw can never produce a degenerate (near-zero or absurdly
// overloaded) architecture.
const (
	minFactor = 0.05
	maxFactor = 20.0
)

// Spec describes one traffic-uncertainty model. The zero value means "all
// defaults" (WithDefaults fills them); JSON round-trips through
// ParseSpec/WriteJSON with unknown fields rejected. Attach a Spec to any
// scenario or request — it travels core.Config → the robust backend.
type Spec struct {
	// RateSigma is the lognormal σ of each flow's multiplicative rate
	// factor: a sampled flow offers rate λ·exp(σ·Z), Z ~ N(0,1), drawn
	// independently per flow. Default 0.2 (≈ ±20% typical deviation).
	RateSigma float64 `json:"rateSigma,omitempty"`
	// BurstSigma is the lognormal σ of the per-sample burstiness envelope:
	// one factor per sample multiplies every flow's rate, modelling
	// correlated short-term peaks (the analytic screen sizes against the
	// jittered peak-rate envelope — it has no non-Poisson closed form).
	// Default 0 (no burstiness jitter).
	BurstSigma float64 `json:"burstSigma,omitempty"`
	// Samples is the Monte-Carlo sample count N. Default 64.
	Samples int `json:"samples,omitempty"`
	// Confidence is the chance-constraint level: the selected sizing's
	// yield must clear it with the Wilson guard. Default 0.95.
	Confidence float64 `json:"confidence,omitempty"`
	// LossTarget is the per-sample analytic weighted loss-rate bound that
	// defines a "good" sample. 0 derives it from the nominal sizing:
	// target = TargetFactor × (full-budget nominal analytic loss).
	LossTarget float64 `json:"lossTarget,omitempty"`
	// TargetFactor scales the derived LossTarget (ignored when LossTarget
	// is set explicitly). Default 1.5.
	TargetFactor float64 `json:"targetFactor,omitempty"`
	// Seed drives the sampler. Equal seeds reproduce the exact sample set
	// for any worker count. Default 1.
	Seed int64 `json:"seed,omitempty"`
}

// WithDefaults returns a copy with zero fields filled.
func (s Spec) WithDefaults() Spec {
	if s.RateSigma == 0 {
		s.RateSigma = DefaultRateSigma
	}
	if s.Samples == 0 {
		s.Samples = DefaultSamples
	}
	if s.Confidence == 0 {
		s.Confidence = DefaultConfidence
	}
	if s.TargetFactor == 0 {
		s.TargetFactor = DefaultTargetFactor
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	return s
}

// Validate rejects out-of-range parameters. Zero values are legal (they
// select defaults); explicitly negative or impossible ones are not.
func (s Spec) Validate() error {
	if s.RateSigma < 0 || s.RateSigma > 2 {
		return fmt.Errorf("uncertain: rate sigma %v outside [0, 2]", s.RateSigma)
	}
	if s.BurstSigma < 0 || s.BurstSigma > 2 {
		return fmt.Errorf("uncertain: burst sigma %v outside [0, 2]", s.BurstSigma)
	}
	if s.Samples < 0 || s.Samples > 100000 {
		return fmt.Errorf("uncertain: samples %d outside [0, 100000]", s.Samples)
	}
	if s.Confidence < 0 || s.Confidence >= 1 {
		return fmt.Errorf("uncertain: confidence %v outside [0, 1)", s.Confidence)
	}
	if s.LossTarget < 0 {
		return fmt.Errorf("uncertain: negative loss target %v", s.LossTarget)
	}
	if s.TargetFactor < 0 {
		return fmt.Errorf("uncertain: negative target factor %v", s.TargetFactor)
	}
	return nil
}

// ParseSpec decodes and validates one uncertainty spec from strict JSON:
// unknown fields and trailing garbage are rejected, exactly like the
// scenario and request decoders.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("uncertain: decoding spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("uncertain: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// WriteJSON encodes the spec (indented, stable field order).
func (s Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Sample is one drawn perturbation: a multiplicative rate factor per flow
// (in architecture flow order) and the per-sample burstiness envelope.
type Sample struct {
	Rate  []float64
	Burst float64
}

// Sampler draws the spec's N perturbations over a fixed flow count with
// common random numbers: At(i) is a pure function of (spec.Seed, i), so
// two candidate sizings scored against the same sampler see identical
// sample paths regardless of evaluation order or worker count.
type Sampler struct {
	spec  Spec
	flows int
}

// NewSampler builds a sampler for the spec (defaults applied) over the
// given flow count.
func NewSampler(spec Spec, flows int) *Sampler {
	return &Sampler{spec: spec.WithDefaults(), flows: flows}
}

// N returns the sample count.
func (sp *Sampler) N() int { return sp.spec.Samples }

// At returns sample i. Factors are clamped to [0.05, 20] so tail draws
// never degenerate the architecture.
func (sp *Sampler) At(i int) Sample {
	rng := rand.New(rand.NewSource(mix(sp.spec.Seed, int64(i))))
	out := Sample{Rate: make([]float64, sp.flows), Burst: 1}
	for f := range out.Rate {
		out.Rate[f] = clampFactor(math.Exp(sp.spec.RateSigma * rng.NormFloat64()))
	}
	if sp.spec.BurstSigma > 0 {
		out.Burst = clampFactor(math.Exp(sp.spec.BurstSigma * rng.NormFloat64()))
	}
	return out
}

func clampFactor(f float64) float64 {
	return math.Min(maxFactor, math.Max(minFactor, f))
}

// mix derives a well-separated per-sample seed from (seed, i) — a
// splitmix64-style finaliser, so adjacent sample indices land in unrelated
// rand streams.
func mix(seed, i int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Perturb returns a clone of the architecture with every flow's rate
// multiplied by its sample factor (rate factor × burstiness envelope).
// The sample must have been drawn for this architecture's flow count.
func Perturb(a *arch.Architecture, s Sample) (*arch.Architecture, error) {
	if len(s.Rate) != len(a.Flows) {
		return nil, fmt.Errorf("uncertain: sample drawn for %d flows, architecture has %d", len(s.Rate), len(a.Flows))
	}
	out := a.Clone()
	for i := range out.Flows {
		out.Flows[i].Rate *= s.Rate[i] * s.Burst
	}
	return out, nil
}

// Report is the robust backend's chance-constraint outcome, attached to
// core.Result and surfaced through every entry point (CLI JSON, sweep yield
// columns, /v1/solve).
type Report struct {
	// Samples is the Monte-Carlo sample count the decision used.
	Samples int `json:"samples"`
	// Confidence is the requested chance-constraint level.
	Confidence float64 `json:"confidence"`
	// LossTarget is the per-sample loss bound that defined a "good" sample
	// (the explicit spec value, or the derived nominal-loss multiple).
	LossTarget float64 `json:"lossTarget"`
	// Yield is the chosen sizing's empirical yield: the fraction of samples
	// whose analytic loss met LossTarget.
	Yield float64 `json:"yield"`
	// YieldLow is the one-sided Wilson lower bound of Yield — the guarded
	// estimate the chance constraint was checked against.
	YieldLow float64 `json:"yieldLow"`
	// NominalYield is the nominal full-budget sizing's yield over the same
	// samples (common random numbers make this a paired comparison).
	NominalYield float64 `json:"nominalYield"`
	// BudgetUsed is the chosen sizing's total units (≤ the request budget:
	// the selection rule prefers the cheapest sizing that clears the
	// constraint).
	BudgetUsed int `json:"budgetUsed"`
	// Met reports whether any candidate cleared the guarded constraint;
	// false means the chosen sizing is the best-yield fallback.
	Met bool `json:"met"`
	// Candidates is the number of distinct sizings scored.
	Candidates int `json:"candidates"`
}

// WilsonLower returns the lower endpoint of the one-sided Wilson score
// interval for a binomial proportion: with successes k out of n, the
// returned bound w satisfies "true yield ≥ w" at the given one-sided
// confidence (z = Φ⁻¹(confidence)). It is the standard guard against small-N
// luck: k = n at n = 64 bounds the yield near 0.96, not 1.0.
func WilsonLower(successes, n int, confidence float64) float64 {
	if n <= 0 {
		return 0
	}
	if successes < 0 {
		successes = 0
	}
	if successes > n {
		successes = n
	}
	z := NormalQuantile(confidence)
	if z <= 0 {
		return float64(successes) / float64(n)
	}
	p := float64(successes) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	centre := p + z*z/(2*nn)
	margin := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	low := (centre - margin) / denom
	return math.Max(0, math.Min(1, low))
}

// NormalQuantile is the standard normal inverse CDF Φ⁻¹(p), via the
// Acklam rational approximation (relative error below 1.15e-9 — far inside
// anything a 64-sample yield estimate can resolve). p outside (0,1) returns
// ±Inf.
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
