package uncertain

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"socbuf/internal/arch"
)

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.WithDefaults()
	if s.RateSigma != DefaultRateSigma || s.Samples != DefaultSamples ||
		s.Confidence != DefaultConfidence || s.TargetFactor != DefaultTargetFactor || s.Seed != DefaultSeed {
		t.Fatalf("defaults not applied: %+v", s)
	}
	// Explicit values survive.
	s = Spec{RateSigma: 0.4, Samples: 16, Confidence: 0.9, TargetFactor: 2, Seed: 7}.WithDefaults()
	if s.RateSigma != 0.4 || s.Samples != 16 || s.Confidence != 0.9 || s.TargetFactor != 2 || s.Seed != 7 {
		t.Fatalf("explicit values clobbered: %+v", s)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{RateSigma: -0.1},
		{RateSigma: 3},
		{BurstSigma: -1},
		{Samples: -1},
		{Samples: 1 << 20},
		{Confidence: -0.5},
		{Confidence: 1},
		{LossTarget: -1},
		{TargetFactor: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec rejected: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	src := Spec{RateSigma: 0.3, BurstSigma: 0.1, Samples: 32, Confidence: 0.9, LossTarget: 0.25, Seed: 5}
	var buf bytes.Buffer
	if err := src.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back != src {
		t.Fatalf("round trip changed spec: %+v vs %+v", back, src)
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"rateSigma": 0.2, "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"samples": 8} trailing`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := ParseSpec([]byte(`{"confidence": 1.5}`)); err == nil {
		t.Fatal("invalid confidence accepted")
	}
}

// TestSamplerCRN pins the common-random-numbers contract: At(i) is a pure
// function of (seed, i) — independent samplers over the same spec agree
// bit for bit, any access order, and different seeds diverge.
func TestSamplerCRN(t *testing.T) {
	spec := Spec{RateSigma: 0.25, BurstSigma: 0.1, Samples: 16, Seed: 3}
	a, b := NewSampler(spec, 5), NewSampler(spec, 5)
	for _, i := range []int{7, 0, 15, 3, 7} { // out of order, repeated
		sa, sb := a.At(i), b.At(i)
		if sa.Burst != sb.Burst {
			t.Fatalf("sample %d burst differs: %v vs %v", i, sa.Burst, sb.Burst)
		}
		for f := range sa.Rate {
			if sa.Rate[f] != sb.Rate[f] {
				t.Fatalf("sample %d flow %d differs: %v vs %v", i, f, sa.Rate[f], sb.Rate[f])
			}
		}
	}
	spec.Seed = 4
	c := NewSampler(spec, 5)
	if a.At(0).Rate[0] == c.At(0).Rate[0] {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestSamplerFactorsBounded(t *testing.T) {
	sp := NewSampler(Spec{RateSigma: 2, BurstSigma: 2, Samples: 200, Seed: 1}, 4)
	for i := 0; i < sp.N(); i++ {
		s := sp.At(i)
		for f, r := range s.Rate {
			if r < minFactor || r > maxFactor {
				t.Fatalf("sample %d flow %d factor %v outside clamp", i, f, r)
			}
		}
		if s.Burst < minFactor || s.Burst > maxFactor {
			t.Fatalf("sample %d burst %v outside clamp", i, s.Burst)
		}
	}
}

func TestPerturb(t *testing.T) {
	a := arch.TwoBusAMBA()
	sp := NewSampler(Spec{RateSigma: 0.3, Seed: 2}, len(a.Flows))
	s := sp.At(0)
	p, err := Perturb(a, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flows {
		want := a.Flows[i].Rate * s.Rate[i] * s.Burst
		if p.Flows[i].Rate != want {
			t.Fatalf("flow %d: got %v want %v", i, p.Flows[i].Rate, want)
		}
	}
	// The original is untouched (Perturb clones).
	if a.Flows[0].Rate == p.Flows[0].Rate && s.Rate[0] != 1 {
		t.Fatal("perturb mutated the original architecture")
	}
	if _, err := Perturb(a, Sample{Rate: []float64{1}, Burst: 1}); err == nil ||
		!strings.Contains(err.Error(), "flows") {
		t.Fatalf("flow-count mismatch not rejected: %v", err)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.95, 1.6448536269514722},
		{0.975, 1.959963984540054},
		{0.05, -1.6448536269514722},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles not infinite")
	}
}

func TestWilsonLower(t *testing.T) {
	// The guard must sit strictly below the raw proportion for 0 < k ≤ n,
	// and grow toward it with n.
	if w := WilsonLower(64, 64, 0.95); w <= 0.94 || w >= 1 {
		t.Fatalf("wilson(64/64) = %v, want (0.94, 1)", w)
	}
	if w := WilsonLower(63, 64, 0.95); w >= 0.95 {
		t.Fatalf("wilson(63/64) = %v, want below 0.95 — one miss at N=64 must fail a 95%% gate", w)
	}
	small, large := WilsonLower(19, 20, 0.95), WilsonLower(190, 200, 0.95)
	if small >= large {
		t.Fatalf("guard not tightening with N: wilson(19/20)=%v ≥ wilson(190/200)=%v", small, large)
	}
	if w := WilsonLower(0, 50, 0.95); w != 0 {
		t.Fatalf("wilson(0/50) = %v, want 0", w)
	}
	if w := WilsonLower(5, 0, 0.95); w != 0 {
		t.Fatalf("n=0 must yield 0, got %v", w)
	}
}
