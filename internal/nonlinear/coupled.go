// Package nonlinear models the architecture BEFORE buffer insertion: buses
// connected by un-buffered bridges must hold both (or all) buses of a route
// simultaneously to move a packet, so each bus's stationary balance equations
// contain products of its own state probabilities with the other buses'
// availability — the quadratic (and, for two-bridge routes, cubic) terms of
// the paper's §2 that defeated a generic nonlinear solver.
//
// The package builds that coupled system and offers the two generic solvers
// one would naturally reach for — Picard (fixed-point) iteration and damped
// Newton with a numerical Jacobian — together with convergence diagnostics.
// The experiments compare their behaviour against the split-linear method,
// which needs no nonlinear iteration at all.
package nonlinear

import (
	"errors"
	"fmt"

	"socbuf/internal/linalg"
)

// ClientSpec is one traffic queue on a coupled bus.
type ClientSpec struct {
	ID     string
	Lambda float64
	Levels int
	// Gates lists the indices (into CoupledSystem.Buses) of the OTHER buses
	// that must be simultaneously free for this client's packets to move:
	// one entry per un-buffered bridge on the packet's route. Empty for
	// local traffic.
	Gates []int
}

// BusSpec is one bus of the coupled group.
type BusSpec struct {
	ID      string
	Mu      float64
	Clients []ClientSpec
}

// CoupledSystem is the joint stationary-analysis problem of a group of buses
// connected by un-buffered bridges. Arbitration is fixed to longest-queue
// (the paper's coupled system is an analysis problem; the optimisation
// variant is strictly harder).
type CoupledSystem struct {
	Buses []BusSpec

	strides [][]int
	states  []int // per-bus state count
	offset  []int // unknown-vector offset per bus
	total   int
}

// NewCoupledSystem validates and precomputes the state layout.
func NewCoupledSystem(buses []BusSpec) (*CoupledSystem, error) {
	if len(buses) < 2 {
		return nil, errors.New("nonlinear: a coupled system needs at least two buses")
	}
	cs := &CoupledSystem{Buses: buses}
	cs.strides = make([][]int, len(buses))
	cs.states = make([]int, len(buses))
	cs.offset = make([]int, len(buses))
	for m, b := range buses {
		if b.Mu <= 0 {
			return nil, fmt.Errorf("nonlinear: bus %q mu %v must be positive", b.ID, b.Mu)
		}
		if len(b.Clients) == 0 {
			return nil, fmt.Errorf("nonlinear: bus %q has no clients", b.ID)
		}
		cs.strides[m] = make([]int, len(b.Clients))
		n := 1
		for c, cl := range b.Clients {
			if cl.Lambda < 0 {
				return nil, fmt.Errorf("nonlinear: client %q negative lambda", cl.ID)
			}
			if cl.Levels < 1 {
				return nil, fmt.Errorf("nonlinear: client %q levels %d < 1", cl.ID, cl.Levels)
			}
			for _, g := range cl.Gates {
				if g < 0 || g >= len(buses) || g == m {
					return nil, fmt.Errorf("nonlinear: client %q gate %d invalid", cl.ID, g)
				}
			}
			cs.strides[m][c] = n
			n *= cl.Levels + 1
			if n > 20000 {
				return nil, fmt.Errorf("nonlinear: bus %q state space too large", b.ID)
			}
		}
		cs.states[m] = n
		cs.offset[m] = cs.total
		cs.total += n
	}
	return cs, nil
}

// NumUnknowns returns the length of the stacked probability vector.
func (cs *CoupledSystem) NumUnknowns() int { return cs.total }

// level returns client c's level in bus m's state s.
func (cs *CoupledSystem) level(m, s, c int) int {
	return (s / cs.strides[m][c]) % (cs.Buses[m].Clients[c].Levels + 1)
}

// grant returns the longest-queue arbitration choice in bus m state s
// (-1 when all queues are empty).
func (cs *CoupledSystem) grant(m, s int) int {
	best, bestLvl := -1, 0
	for c := range cs.Buses[m].Clients {
		if l := cs.level(m, s, c); l > bestLvl {
			best, bestLvl = c, l
		}
	}
	return best
}

// avail returns the probability bus k is free (all of its queues empty)
// under the stacked vector v.
func (cs *CoupledSystem) avail(v []float64, k int) float64 {
	return v[cs.offset[k]] // state 0 is the all-empty state
}

// InitialGuess returns the uniform stacked distribution.
func (cs *CoupledSystem) InitialGuess() []float64 {
	v := make([]float64, cs.total)
	for m := range cs.Buses {
		for s := 0; s < cs.states[m]; s++ {
			v[cs.offset[m]+s] = 1 / float64(cs.states[m])
		}
	}
	return v
}

// generatorFor builds bus m's CTMC generator with the gate availabilities
// implied by v. Service of a gated client is slowed by the product of the
// gating buses' free probabilities — the nonlinear coupling.
func (cs *CoupledSystem) generatorFor(v []float64, m int) *linalg.Matrix {
	n := cs.states[m]
	q := linalg.NewMatrix(n, n)
	b := cs.Buses[m]
	for s := 0; s < n; s++ {
		// Arrivals.
		for c, cl := range b.Clients {
			if cl.Lambda > 0 && cs.level(m, s, c) < cl.Levels {
				t := s + cs.strides[m][c]
				q.Add(s, t, cl.Lambda)
				q.Add(s, s, -cl.Lambda)
			}
		}
		// Service of the granted client, gated by other buses being free.
		if g := cs.grant(m, s); g >= 0 {
			rate := b.Mu
			for _, gate := range b.Clients[g].Gates {
				rate *= cs.avail(v, gate)
			}
			if rate > 0 {
				t := s - cs.strides[m][g]
				q.Add(s, t, rate)
				q.Add(s, s, -rate)
			}
		}
	}
	return q
}

// Residual evaluates the stacked balance/normalisation residual F(v). For
// each bus: states−1 balance equations (the redundant one is replaced by the
// normalisation Σπ = 1). A root with non-negative entries is a stationary
// point of the coupled system.
func (cs *CoupledSystem) Residual(v []float64) ([]float64, error) {
	if len(v) != cs.total {
		return nil, fmt.Errorf("nonlinear: vector length %d, want %d", len(v), cs.total)
	}
	out := make([]float64, cs.total)
	for m := range cs.Buses {
		q := cs.generatorFor(v, m)
		n := cs.states[m]
		pi := v[cs.offset[m] : cs.offset[m]+n]
		// Balance rows (πQ)_j for j = 0..n-2.
		for j := 0; j < n-1; j++ {
			var bal float64
			for i := 0; i < n; i++ {
				bal += pi[i] * q.At(i, j)
			}
			out[cs.offset[m]+j] = bal
		}
		// Normalisation row.
		var sum float64
		for _, p := range pi {
			sum += p
		}
		out[cs.offset[m]+n-1] = sum - 1
	}
	return out, nil
}

// LossRate returns the total loss rate implied by the stacked vector:
// Σ over buses and clients of λ_c·P(level_c = cap).
func (cs *CoupledSystem) LossRate(v []float64) float64 {
	var loss float64
	for m, b := range cs.Buses {
		for s := 0; s < cs.states[m]; s++ {
			p := v[cs.offset[m]+s]
			if p <= 0 {
				continue
			}
			for c, cl := range b.Clients {
				if cs.level(m, s, c) == cl.Levels {
					loss += p * cl.Lambda
				}
			}
		}
	}
	return loss
}
