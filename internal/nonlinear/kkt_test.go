package nonlinear

import (
	"strings"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/graph"
)

func figure1Coupled(t *testing.T) *CoupledSystem {
	t.Helper()
	a := arch.Figure1()
	groups, err := graph.CoupledGroups(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("coupled groups = %d", len(groups))
	}
	cs, err := FromArchitecture(a, groups[0].Buses, 2)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// The headline reproduction of the paper's §2: Newton on the first-order
// conditions of the quadratic optimisation system fails on the Figure 1
// example — "we were not able to get solutions for them" — at every damping
// level, with a singular KKT matrix.
func TestKKTNewtonFailsOnFigure1(t *testing.T) {
	cs := figure1Coupled(t)
	for _, damping := range []float64{1, 0.5, 0.2} {
		r, err := cs.KKTNewton(NewtonOptions{MaxIters: 150, Damping: damping})
		if err != nil {
			t.Fatal(err)
		}
		if r.Valid {
			t.Fatalf("damping %v: KKT-Newton unexpectedly solved the Figure 1 coupled system; "+
				"the split-linear contribution would be moot (diag %+v)", damping, r.Diag)
		}
	}
}

// Control: the same solver handles a minimal two-bus coupled instance, so the
// Figure 1 failure is about the system, not a broken solver.
func TestKKTNewtonSolvesTrivialInstance(t *testing.T) {
	cs, err := NewCoupledSystem([]BusSpec{
		{ID: "A", Mu: 2, Clients: []ClientSpec{{ID: "a1", Lambda: 3, Levels: 3, Gates: []int{1}}}},
		{ID: "B", Mu: 2, Clients: []ClientSpec{{ID: "b1", Lambda: 3, Levels: 3, Gates: []int{0}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cs.KKTNewton(NewtonOptions{MaxIters: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Valid {
		t.Fatalf("KKT-Newton failed even on the trivial instance: %+v", r.Diag)
	}
	if r.LossRate < 0 || r.LossRate > 6 {
		t.Fatalf("implausible loss rate %v", r.LossRate)
	}
}

func TestKKTDiagnosticsPopulated(t *testing.T) {
	cs := figure1Coupled(t)
	r, err := cs.KKTNewton(NewtonOptions{MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Diag.Reason == "" {
		t.Fatal("no reason recorded")
	}
	if len(r.Diag.History) == 0 {
		t.Fatal("no residual history")
	}
	if !strings.Contains(r.Diag.Reason, "singular") && !strings.Contains(r.Diag.Reason, "diverged") &&
		!strings.Contains(r.Diag.Reason, "limit") && !strings.Contains(r.Diag.Reason, "tolerance") {
		t.Fatalf("unexpected reason %q", r.Diag.Reason)
	}
}

func TestKKTLayoutCounts(t *testing.T) {
	cs := figure1Coupled(t)
	vars, rows := cs.kktLayout()
	if len(vars) == 0 || rows == 0 {
		t.Fatal("empty KKT layout")
	}
	total := 0
	for m := range cs.Buses {
		total += cs.states[m]
	}
	if rows != total {
		t.Fatalf("rows = %d, want %d", rows, total)
	}
	// Idle vars exist exactly in the all-empty states.
	idle := 0
	for _, v := range vars {
		if v.action == -1 {
			if v.state != 0 {
				t.Fatalf("idle action outside all-empty state: %+v", v)
			}
			idle++
		}
	}
	if idle != len(cs.Buses) {
		t.Fatalf("idle vars = %d, want one per bus", idle)
	}
}
