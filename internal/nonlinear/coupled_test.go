package nonlinear

import (
	"math"
	"testing"

	"socbuf/internal/arch"
	"socbuf/internal/graph"
	"socbuf/internal/linalg"
	"socbuf/internal/queueing"
)

func twoBusSystem(t *testing.T, lambda1, lambda2, mu float64, levels int) *CoupledSystem {
	t.Helper()
	cs, err := NewCoupledSystem([]BusSpec{
		{ID: "A", Mu: mu, Clients: []ClientSpec{
			{ID: "a1", Lambda: lambda1, Levels: levels, Gates: []int{1}},
		}},
		{ID: "B", Mu: mu, Clients: []ClientSpec{
			{ID: "b1", Lambda: lambda2, Levels: levels, Gates: []int{0}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestNewCoupledSystemValidation(t *testing.T) {
	ok := ClientSpec{ID: "c", Lambda: 1, Levels: 1, Gates: []int{1}}
	cases := []struct {
		name  string
		buses []BusSpec
	}{
		{"one bus", []BusSpec{{ID: "A", Mu: 1, Clients: []ClientSpec{ok}}}},
		{"zero mu", []BusSpec{
			{ID: "A", Mu: 0, Clients: []ClientSpec{ok}},
			{ID: "B", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1}}},
		}},
		{"no clients", []BusSpec{
			{ID: "A", Mu: 1},
			{ID: "B", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1}}},
		}},
		{"negative lambda", []BusSpec{
			{ID: "A", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: -1, Levels: 1}}},
			{ID: "B", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1}}},
		}},
		{"zero levels", []BusSpec{
			{ID: "A", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1}}},
			{ID: "B", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1}}},
		}},
		{"self gate", []BusSpec{
			{ID: "A", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1, Gates: []int{0}}}},
			{ID: "B", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1}}},
		}},
		{"gate out of range", []BusSpec{
			{ID: "A", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1, Gates: []int{7}}}},
			{ID: "B", Mu: 1, Clients: []ClientSpec{{ID: "c", Lambda: 1, Levels: 1}}},
		}},
	}
	for _, c := range cases {
		if _, err := NewCoupledSystem(c.buses); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestResidualVectorLength(t *testing.T) {
	cs := twoBusSystem(t, 1, 1, 2, 2)
	if _, err := cs.Residual(make([]float64, 3)); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}

func TestPicardConvergesLightLoad(t *testing.T) {
	// Lightly loaded coupled pair: Picard should converge comfortably.
	cs := twoBusSystem(t, 0.3, 0.2, 5, 2)
	v, diag, err := cs.Picard(PicardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatalf("Picard failed on light load: %+v", diag)
	}
	res, err := cs.Residual(v)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.NormInf(res) > 1e-8 {
		t.Fatalf("claimed convergence but residual = %v", linalg.NormInf(res))
	}
	// Probabilities are non-negative and each bus sums to 1.
	var sumA float64
	for s := 0; s < cs.states[0]; s++ {
		p := v[cs.offset[0]+s]
		if p < -1e-9 {
			t.Fatalf("negative probability %v", p)
		}
		sumA += p
	}
	if math.Abs(sumA-1) > 1e-8 {
		t.Fatalf("bus A mass %v", sumA)
	}
}

func TestPicardSolutionSanity(t *testing.T) {
	// With gates nearly always open (the other bus mostly idle), each bus is
	// close to an M/M/1/K with a slightly reduced service rate; the loss rate
	// must be within a factor-ish of that analytic anchor.
	cs := twoBusSystem(t, 0.5, 0.01, 4, 3)
	v, diag, err := cs.Picard(PicardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatalf("no convergence: %+v", diag)
	}
	availB := cs.avail(v, 1)
	q, err := queueing.NewMM1K(0.5, 4*availB, 3)
	if err != nil {
		t.Fatal(err)
	}
	loss := cs.LossRate(v)
	anchor := q.LossRate() + 0.01 // bus B's own tiny loss bound
	if loss > anchor*3+1e-6 || loss < 0 {
		t.Fatalf("coupled loss %v vs anchor %v", loss, anchor)
	}
}

func TestNewtonDampedConvergesLightLoad(t *testing.T) {
	cs := twoBusSystem(t, 0.3, 0.2, 5, 2)
	v, diag, err := cs.Newton(NewtonOptions{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatalf("damped Newton failed on light load: %+v", diag)
	}
	res, _ := cs.Residual(v)
	if linalg.NormInf(res) > 1e-8 {
		t.Fatalf("residual %v", linalg.NormInf(res))
	}
}

func TestCoupledHeavyLoadDegenerates(t *testing.T) {
	// Heavily loaded symmetric coupling: the un-buffered bridges strangle
	// each other (each bus is almost never free, so cross transfers almost
	// never move) and the analysis converges to a near-total-loss solution.
	// This is §4's point that buffered bridges are what make efficient
	// bus-to-bus communication possible.
	cs := twoBusSystem(t, 6, 6, 2, 3)
	v, diag, err := cs.Picard(PicardOptions{MaxIters: 300, Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatalf("damped Picard should converge: %+v", diag)
	}
	loss := cs.LossRate(v)
	if loss < 0.8*12 {
		t.Fatalf("expected near-total loss (offered 12), got %v", loss)
	}
}

func TestDiagnosticsHistoryRecorded(t *testing.T) {
	cs := twoBusSystem(t, 1, 1, 3, 2)
	_, diag, err := cs.Picard(PicardOptions{MaxIters: 10, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.History) != diag.Iterations {
		t.Fatalf("history length %d vs iterations %d", len(diag.History), diag.Iterations)
	}
	if diag.Reason == "" {
		t.Fatal("empty reason")
	}
}

func TestFromArchitectureFigure1(t *testing.T) {
	a := arch.Figure1()
	groups, err := graph.CoupledGroups(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("groups = %d", len(groups))
	}
	cs, err := FromArchitecture(a, groups[0].Buses, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Buses) != 3 {
		t.Fatalf("coupled buses = %d, want 3 (b,f,g)", len(cs.Buses))
	}
	// p2→p5 crosses two bridges: its client must have two gates; that term
	// is the paper's "an equation may have more than one quadratic term".
	foundTwoGate := false
	for _, b := range cs.Buses {
		for _, c := range b.Clients {
			if len(c.Gates) == 2 {
				foundTwoGate = true
			}
		}
	}
	if !foundTwoGate {
		t.Fatal("no two-gate client found in Figure 1 coupled system")
	}
	// The system solves under damping (analysis variant) — diagnostics only.
	_, diag, err := cs.Picard(PicardOptions{MaxIters: 300, Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if diag.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestFromArchitectureErrors(t *testing.T) {
	a := arch.Figure1()
	if _, err := FromArchitecture(a, []string{"b", "f", "g"}, 0); err == nil {
		t.Fatal("levels 0 accepted")
	}
	if _, err := FromArchitecture(a, []string{"nope"}, 2); err == nil {
		t.Fatal("unknown bus accepted")
	}
	// A group that cuts a route in half must be rejected: {b,f} without g
	// splits p2→p5.
	if _, err := FromArchitecture(a, []string{"b", "f"}, 2); err == nil {
		t.Fatal("partially-crossing flow accepted")
	}
}

func TestInertBusClient(t *testing.T) {
	// A group bus sourcing no traffic gets an inert client.
	a := &arch.Architecture{
		Name: "relay",
		Buses: []arch.Bus{
			{ID: "s", ServiceRate: 2},
			{ID: "r", ServiceRate: 2},
		},
		Processors: []arch.Processor{
			{ID: "src", Buses: []string{"s"}},
			{ID: "dst", Buses: []string{"r"}},
		},
		Bridges: []arch.Bridge{{ID: "br", BusA: "s", BusB: "r"}},
		Flows:   []arch.Flow{{From: "src", To: "dst", Rate: 0.5}},
	}
	cs, err := FromArchitecture(a, []string{"s", "r"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Bus r sources nothing → inert client.
	for _, b := range cs.Buses {
		if b.ID == "r" {
			if len(b.Clients) != 1 || b.Clients[0].Lambda != 0 {
				t.Fatalf("relay bus clients = %+v", b.Clients)
			}
		}
	}
	_, diag, err := cs.Picard(PicardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Converged {
		t.Fatalf("relay system should converge: %+v", diag)
	}
}
