package nonlinear

import (
	"fmt"
	"sort"

	"socbuf/internal/arch"
)

// FromArchitecture builds the coupled quadratic system of one group of buses
// connected by un-buffered bridges (as reported by graph.CoupledGroups).
// levels caps each client queue. Every flow must either avoid the group
// entirely or run entirely inside it; partially-crossing flows are a
// modelling error for the un-buffered analysis.
//
// A flow whose route visits buses m1→m2→…→mk inside the group becomes one
// client on m1 (the source egress buffer) whose service is gated by the
// availability of m2…mk: an un-buffered transfer holds every bus on the path
// simultaneously.
func FromArchitecture(a *arch.Architecture, groupBuses []string, levels int) (*CoupledSystem, error) {
	if levels < 1 {
		return nil, fmt.Errorf("nonlinear: levels %d < 1", levels)
	}
	inGroup := map[string]bool{}
	for _, b := range groupBuses {
		inGroup[b] = true
	}
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}

	busIdx := map[string]int{}
	ordered := append([]string(nil), groupBuses...)
	sort.Strings(ordered)
	specs := make([]BusSpec, len(ordered))
	for i, id := range ordered {
		bus, ok := a.BusByID(id)
		if !ok {
			return nil, fmt.Errorf("nonlinear: unknown bus %q", id)
		}
		specs[i] = BusSpec{ID: id, Mu: bus.ServiceRate}
		busIdx[id] = i
	}

	for _, r := range routes {
		inside := 0
		for _, h := range r.Hops {
			if inGroup[h.Bus] {
				inside++
			}
		}
		if inside == 0 {
			continue
		}
		if inside != len(r.Hops) {
			return nil, fmt.Errorf("nonlinear: flow %s→%s partially crosses the coupled group", r.Flow.From, r.Flow.To)
		}
		first := r.Hops[0]
		m := busIdx[first.Bus]
		var gates []int
		for _, h := range r.Hops[1:] {
			gates = append(gates, busIdx[h.Bus])
		}
		specs[m].Clients = append(specs[m].Clients, ClientSpec{
			ID:     fmt.Sprintf("%s(%s→%s)", first.Buffer, r.Flow.From, r.Flow.To),
			Lambda: r.Flow.Rate,
			Levels: levels,
			Gates:  gates,
		})
	}
	for i := range specs {
		sort.Slice(specs[i].Clients, func(x, y int) bool {
			return specs[i].Clients[x].ID < specs[i].Clients[y].ID
		})
		if len(specs[i].Clients) == 0 {
			// A bus in the group with no sourced traffic still gates others;
			// give it an inert client so the state space is well-formed.
			specs[i].Clients = []ClientSpec{{ID: specs[i].ID + "(inert)", Lambda: 0, Levels: 1}}
		}
	}
	return NewCoupledSystem(specs)
}
