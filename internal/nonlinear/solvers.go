package nonlinear

import (
	"fmt"
	"math"

	"socbuf/internal/linalg"
	"socbuf/internal/markov"
)

// Diagnostics records how a solve went. Failure to converge is DATA here,
// not an error: the paper's point is precisely that generic solvers struggle
// on the coupled system, so callers inspect Converged and History.
type Diagnostics struct {
	Converged  bool
	Iterations int
	Residual   float64   // final ∞-norm of the residual
	History    []float64 // residual after every iteration
	Reason     string    // human-readable outcome
}

// PicardOptions tunes the fixed-point solver.
type PicardOptions struct {
	MaxIters int     // default 200
	Tol      float64 // default 1e-9
	Damping  float64 // new = damping·new + (1−damping)·old; default 1 (undamped)
}

// Picard runs fixed-point iteration: freeze every bus's gate availabilities,
// solve each bus as a linear CTMC, update availabilities, repeat. This is
// the "natural" decoupling a practitioner tries first; on loaded systems the
// undamped variant oscillates.
func (cs *CoupledSystem) Picard(opt PicardOptions) ([]float64, *Diagnostics, error) {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 200
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if opt.Damping <= 0 || opt.Damping > 1 {
		opt.Damping = 1
	}
	v := cs.InitialGuess()
	diag := &Diagnostics{}
	for it := 0; it < opt.MaxIters; it++ {
		next := make([]float64, cs.total)
		for m := range cs.Buses {
			gen := &markov.Generator{Q: cs.generatorFor(v, m)}
			pi, err := gen.Stationary()
			if err != nil {
				diag.Reason = fmt.Sprintf("bus %s stationary solve failed at iteration %d: %v", cs.Buses[m].ID, it, err)
				diag.Iterations = it
				return v, diag, nil
			}
			copy(next[cs.offset[m]:cs.offset[m]+cs.states[m]], pi)
		}
		for i := range v {
			v[i] = opt.Damping*next[i] + (1-opt.Damping)*v[i]
		}
		res, err := cs.Residual(v)
		if err != nil {
			return nil, nil, err
		}
		r := linalg.NormInf(res)
		diag.History = append(diag.History, r)
		diag.Iterations = it + 1
		diag.Residual = r
		if r < opt.Tol {
			diag.Converged = true
			diag.Reason = "residual below tolerance"
			return v, diag, nil
		}
	}
	diag.Reason = "iteration limit reached"
	return v, diag, nil
}

// NewtonOptions tunes the Newton solver.
type NewtonOptions struct {
	MaxIters int     // default 100
	Tol      float64 // default 1e-10
	Damping  float64 // step size in (0,1]; default 1 (full, undamped steps)
	FDStep   float64 // finite-difference step; default 1e-7
}

// Newton runs (optionally damped) Newton iteration on the stacked residual
// with a forward-difference Jacobian. Undamped Newton from the uniform guess
// diverges or hits singular Jacobians on loaded coupled systems — the
// reproduction of the paper's "we were not able to get solutions".
func (cs *CoupledSystem) Newton(opt NewtonOptions) ([]float64, *Diagnostics, error) {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 100
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.Damping <= 0 || opt.Damping > 1 {
		opt.Damping = 1
	}
	if opt.FDStep <= 0 {
		opt.FDStep = 1e-7
	}
	v := cs.InitialGuess()
	diag := &Diagnostics{}
	n := cs.total
	for it := 0; it < opt.MaxIters; it++ {
		f, err := cs.Residual(v)
		if err != nil {
			return nil, nil, err
		}
		r := linalg.NormInf(f)
		diag.History = append(diag.History, r)
		diag.Iterations = it
		diag.Residual = r
		if r < opt.Tol {
			diag.Converged = true
			diag.Reason = "residual below tolerance"
			return v, diag, nil
		}
		if math.IsNaN(r) || math.IsInf(r, 0) || r > 1e12 {
			diag.Reason = fmt.Sprintf("diverged at iteration %d (residual %v)", it, r)
			return v, diag, nil
		}
		// Forward-difference Jacobian.
		jac := linalg.NewMatrix(n, n)
		for j := 0; j < n; j++ {
			old := v[j]
			v[j] = old + opt.FDStep
			fj, err := cs.Residual(v)
			v[j] = old
			if err != nil {
				return nil, nil, err
			}
			for i := 0; i < n; i++ {
				jac.Set(i, j, (fj[i]-f[i])/opt.FDStep)
			}
		}
		neg := make([]float64, n)
		for i := range f {
			neg[i] = -f[i]
		}
		step, err := linalg.Solve(jac, neg)
		if err != nil {
			diag.Reason = fmt.Sprintf("singular Jacobian at iteration %d", it)
			return v, diag, nil
		}
		for i := range v {
			v[i] += opt.Damping * step[i]
		}
	}
	diag.Reason = "iteration limit reached"
	return v, diag, nil
}
