package nonlinear

import (
	"math"

	"socbuf/internal/linalg"
)

// The optimisation variant of the coupled system: choose the arbitration
// freely (occupation-measure variables x_m(s,a) per bus) to minimise the
// loss rate, subject to balance equations whose service terms are gated by
// the OTHER buses' idle probability — itself a linear functional of that
// bus's x. The constraints are therefore bilinear in x: this is the paper's
// §2 system, a nonconvex quadratically-constrained program that a generic
// root-finder cannot reliably solve.
//
// KKTNewton applies the naive attack — Newton's method on the first-order
// KKT conditions, ignoring the x ≥ 0 inequalities (what happens when the
// system of "equality constraints and cost function with quadratic terms" is
// handed to an fsolve-style solver). The Diagnostics report what actually
// goes wrong: singular KKT matrices, divergence, or convergence to points
// with negative "probabilities" that are not valid solutions.

// kktVar is one occupation variable of the optimisation variant.
type kktVar struct {
	bus    int
	state  int
	action int // client index, -1 = idle (only in the all-empty state)
}

// KKTResult reports the outcome of KKTNewton.
type KKTResult struct {
	Diag *Diagnostics
	// X is the final occupation iterate (per kkt variable, internal order).
	X []float64
	// MinX is the most negative occupation value at the final iterate; a
	// valid solution needs MinX ≥ −tol.
	MinX float64
	// Valid reports Converged && MinX ≥ −1e-6: the solver found an actual
	// solution of the constrained system, not just a KKT stationary point.
	Valid bool
	// LossRate is the objective at the final iterate (meaningful only when
	// Valid).
	LossRate float64
}

// kktLayout enumerates variables and equality rows of the optimisation
// variant.
func (cs *CoupledSystem) kktLayout() (vars []kktVar, rows int) {
	for m := range cs.Buses {
		for s := 0; s < cs.states[m]; s++ {
			nonEmpty := false
			for c := range cs.Buses[m].Clients {
				if cs.level(m, s, c) > 0 {
					nonEmpty = true
					vars = append(vars, kktVar{bus: m, state: s, action: c})
				}
			}
			if !nonEmpty {
				vars = append(vars, kktVar{bus: m, state: s, action: -1})
			}
		}
		// Per bus: (states − 1) balance rows + 1 normalisation row.
		rows += cs.states[m]
	}
	return vars, rows
}

// idleMass returns Σ_a x(bus, all-empty state, a) — bus's availability as a
// linear functional of x — plus the gradient indices contributing to it.
func idleIndices(vars []kktVar, bus int) []int {
	var idx []int
	for i, v := range vars {
		if v.bus == bus && v.state == 0 {
			idx = append(idx, i)
		}
	}
	return idx
}

// kktConstraints evaluates the equality constraints g(x) (balance with
// bilinear gating + normalisation) and, via fn, scatters the partial
// derivatives ∂g_r/∂x_i. fn may be nil when only values are needed.
func (cs *CoupledSystem) kktConstraints(vars []kktVar, x []float64, fn func(row, col int, d float64)) []float64 {
	// Row layout: per bus, states-1 balance rows then 1 normalisation row.
	rowBase := make([]int, len(cs.Buses))
	base := 0
	for m := range cs.Buses {
		rowBase[m] = base
		base += cs.states[m]
	}
	g := make([]float64, base)

	avail := make([]float64, len(cs.Buses))
	availIdx := make([][]int, len(cs.Buses))
	for m := range cs.Buses {
		availIdx[m] = idleIndices(vars, m)
		for _, i := range availIdx[m] {
			avail[m] += x[i]
		}
	}

	scatterBalance := func(m, j, col int, d float64) {
		if j < cs.states[m]-1 { // last balance row dropped (redundant)
			row := rowBase[m] + j
			g[row] += d * x[col]
			if fn != nil {
				fn(row, col, d)
			}
		}
	}

	for i, v := range vars {
		m := v.bus
		b := cs.Buses[m]
		// Arrivals out of (s) into (s + e_c).
		for c, cl := range b.Clients {
			if cl.Lambda > 0 && cs.level(m, v.state, c) < cl.Levels {
				t := v.state + cs.strides[m][c]
				scatterBalance(m, t, i, cl.Lambda)
				scatterBalance(m, v.state, i, -cl.Lambda)
			}
		}
		// Gated service when this var's action serves a client.
		if v.action >= 0 {
			gateProd := 1.0
			gates := b.Clients[v.action].Gates
			for _, gb := range gates {
				gateProd *= avail[gb]
			}
			rate := b.Mu * gateProd
			t := v.state - cs.strides[m][v.action]
			scatterBalance(m, t, i, rate)
			scatterBalance(m, v.state, i, -rate)
			// Bilinear part: derivative w.r.t. the gate masses.
			if fn != nil {
				for _, gb := range gates {
					rest := b.Mu
					for _, other := range gates {
						if other != gb {
							rest *= avail[other]
						}
					}
					for _, gi := range availIdx[gb] {
						if tr := rowBase[m] + t; t < cs.states[m]-1 {
							fn(tr, gi, rest*x[i])
						}
						if sr := rowBase[m] + v.state; v.state < cs.states[m]-1 {
							fn(sr, gi, -rest*x[i])
						}
					}
				}
			}
		}
	}
	// Normalisation rows.
	for m := range cs.Buses {
		row := rowBase[m] + cs.states[m] - 1
		var sum float64
		for i, v := range vars {
			if v.bus == m {
				sum += x[i]
				if fn != nil {
					fn(row, i, 1)
				}
			}
		}
		g[row] = sum - 1
	}
	return g
}

// kktCost returns the linear loss objective coefficients per variable.
func (cs *CoupledSystem) kktCost(vars []kktVar) []float64 {
	c := make([]float64, len(vars))
	for i, v := range vars {
		b := cs.Buses[v.bus]
		for cl, spec := range b.Clients {
			if cs.level(v.bus, v.state, cl) == spec.Levels {
				c[i] += spec.Lambda
			}
		}
	}
	return c
}

// KKTNewton runs Newton's method on the KKT conditions of the optimisation
// variant. opt.Damping scales the Newton step; opt.MaxIters and opt.Tol as in
// NewtonOptions. The x ≥ 0 constraints are deliberately not enforced — that
// is the point of the demonstration.
func (cs *CoupledSystem) KKTNewton(opt NewtonOptions) (*KKTResult, error) {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 80
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-9
	}
	if opt.Damping <= 0 || opt.Damping > 1 {
		opt.Damping = 1
	}
	vars, ng := cs.kktLayout()
	nx := len(vars)
	n := nx + ng
	cost := cs.kktCost(vars)

	// Start from the uniform measure and zero multipliers.
	z := make([]float64, n)
	perBusVars := make([]int, len(cs.Buses))
	for _, v := range vars {
		perBusVars[v.bus]++
	}
	for i, v := range vars {
		z[i] = 1 / float64(perBusVars[v.bus])
	}

	res := &KKTResult{Diag: &Diagnostics{}}
	evalF := func(z []float64) ([]float64, *linalg.Matrix) {
		x := z[:nx]
		nu := z[nx:]
		jg := linalg.NewMatrix(ng, nx)
		g := cs.kktConstraints(vars, x, func(row, col int, d float64) { jg.Add(row, col, d) })
		f := make([]float64, n)
		// Stationarity: c + J_gᵀ ν = 0 (approximating the bilinear terms'
		// second-order cross effects via the numeric outer Jacobian below).
		for i := 0; i < nx; i++ {
			f[i] = cost[i]
			for r := 0; r < ng; r++ {
				f[i] += jg.At(r, i) * nu[r]
			}
		}
		copy(f[nx:], g)
		return f, jg
	}

	fdStep := opt.FDStep
	if fdStep <= 0 {
		fdStep = 1e-6
	}
	for it := 0; it < opt.MaxIters; it++ {
		f, _ := evalF(z)
		r := linalg.NormInf(f)
		res.Diag.History = append(res.Diag.History, r)
		res.Diag.Iterations = it
		res.Diag.Residual = r
		if r < opt.Tol {
			res.Diag.Converged = true
			res.Diag.Reason = "KKT residual below tolerance"
			break
		}
		if math.IsNaN(r) || math.IsInf(r, 0) || r > 1e10 {
			res.Diag.Reason = "diverged"
			break
		}
		// Numeric Jacobian of the full KKT map.
		jac := linalg.NewMatrix(n, n)
		for j := 0; j < n; j++ {
			old := z[j]
			z[j] = old + fdStep
			fj, _ := evalF(z)
			z[j] = old
			for i := 0; i < n; i++ {
				jac.Set(i, j, (fj[i]-f[i])/fdStep)
			}
		}
		neg := make([]float64, n)
		for i := range f {
			neg[i] = -f[i]
		}
		step, err := linalg.Solve(jac, neg)
		if err != nil {
			res.Diag.Reason = "singular KKT matrix"
			break
		}
		for i := range z {
			z[i] += opt.Damping * step[i]
		}
	}
	if res.Diag.Reason == "" {
		res.Diag.Reason = "iteration limit reached"
	}

	res.X = append([]float64(nil), z[:nx]...)
	res.MinX = math.Inf(1)
	for _, xi := range res.X {
		if xi < res.MinX {
			res.MinX = xi
		}
	}
	res.Valid = res.Diag.Converged && res.MinX >= -1e-6
	if res.Valid {
		for i, xi := range res.X {
			res.LossRate += cost[i] * xi
		}
	}
	return res, nil
}
