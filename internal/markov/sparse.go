package markov

import (
	"fmt"

	"socbuf/internal/linalg"
)

// SparseThreshold is the state count at which StationaryAuto switches from
// the dense LU solve to the sparse iterative solver. Below it the O(n³)
// factorisation is cheap and exact; above it the generator's O(n) transitions
// per state make CSR + Gauss–Seidel both smaller and faster.
const SparseThreshold = 256

// AggregationThreshold is the state count at which StationaryAuto moves from
// plain Gauss–Seidel to the aggregation/disaggregation solver. Gauss–Seidel's
// information travels one state per sweep, so on slowly mixing chains of this
// size it can exhaust its sweep budget without converging; the aggregation
// solver redistributes mass globally every cycle (see
// linalg.StationaryAggregation and ctmdp.DefaultAggregationThreshold).
const AggregationThreshold = 512

// CSR converts the generator to compressed sparse row form (diagonal
// included).
func (g *Generator) CSR() *linalg.CSR {
	n := g.N()
	b := linalg.NewSparseBuilder(n, n)
	for i := 0; i < n; i++ {
		row := g.Q.Row(i)
		for j, v := range row {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

// StationaryIterative computes the stationary distribution with the sparse
// Gauss–Seidel solver (power-iteration fallback), validating the result the
// same way Stationary does. tol ≤ 0 picks the solver default.
func (g *Generator) StationaryIterative(tol float64) ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	pi, err := linalg.StationarySparse(g.CSR(), linalg.IterOptions{Tol: tol})
	if err != nil {
		return nil, fmt.Errorf("markov: sparse stationary solve: %w", err)
	}
	return checkDistribution(pi)
}

// StationaryAuto computes the stationary distribution: dense LU below
// SparseThreshold states, sparse Gauss–Seidel up to AggregationThreshold, and
// the aggregation/disaggregation solver beyond. All paths agree to well below
// 1e-8 on irreducible chains.
func (g *Generator) StationaryAuto() ([]float64, error) {
	switch {
	case g.N() < SparseThreshold:
		return g.Stationary()
	case g.N() < AggregationThreshold:
		return g.StationaryIterative(0)
	default:
		return g.StationaryAggregation(0)
	}
}

// StationaryAggregation computes the stationary distribution with the
// two-level aggregation/disaggregation solver, falling back to the
// Gauss–Seidel/power chain if the aggregation cycle fails, and validating the
// result the same way Stationary does. tol ≤ 0 picks the solver default.
func (g *Generator) StationaryAggregation(tol float64) ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	csr := g.CSR()
	pi, err := linalg.StationaryAggregation(csr, linalg.IterOptions{Tol: tol})
	if err != nil {
		pi, err = linalg.StationarySparse(csr, linalg.IterOptions{Tol: tol})
	}
	if err != nil {
		return nil, fmt.Errorf("markov: aggregation stationary solve: %w", err)
	}
	return checkDistribution(pi)
}

// checkDistribution enforces the non-negativity and unit-mass invariants on a
// candidate stationary vector, clamping roundoff-level negatives.
func checkDistribution(pi []float64) ([]float64, error) {
	var sum float64
	for i, v := range pi {
		if v < -1e-8 {
			return nil, fmt.Errorf("markov: stationary solution has negative mass %v at state %d (reducible chain?)", v, i)
		}
		if v < 0 {
			pi[i] = 0
			v = 0
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("markov: stationary mass %v", sum)
	}
	linalg.Scale(1/sum, pi)
	return pi, nil
}
