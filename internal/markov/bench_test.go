package markov

import (
	"math/rand"
	"testing"
)

func benchChain(b *testing.B, n int) *Generator {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := NewGenerator(n)
	for i := 0; i < n; i++ {
		if err := g.SetRate(i, (i+1)%n, 0.5+rng.Float64()); err != nil {
			b.Fatal(err)
		}
		j := rng.Intn(n)
		if j != i {
			if err := g.AddRate(i, j, rng.Float64()); err != nil {
				b.Fatal(err)
			}
		}
	}
	return g
}

func BenchmarkStationaryDirect64(b *testing.B) {
	g := benchChain(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Stationary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStationaryDirect256(b *testing.B) {
	g := benchChain(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Stationary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStationaryPower64(b *testing.B) {
	g := benchChain(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.StationaryPower(1_000_000, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBirthDeathClosedForm(b *testing.B) {
	birth := make([]float64, 100)
	death := make([]float64, 100)
	for i := range birth {
		birth[i], death[i] = 1.5, 2.0
	}
	bd, err := NewBirthDeath(birth, death)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bd.Stationary(); err != nil {
			b.Fatal(err)
		}
	}
}
