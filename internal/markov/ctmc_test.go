package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoState(t *testing.T, a, b float64) *Generator {
	t.Helper()
	g := NewGenerator(2)
	if err := g.SetRate(0, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRate(1, 0, b); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTwoStateStationary(t *testing.T) {
	// 0 -a-> 1, 1 -b-> 0 has π = (b, a)/(a+b).
	g := twoState(t, 2, 3)
	pi, err := g.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.6) > 1e-10 || math.Abs(pi[1]-0.4) > 1e-10 {
		t.Fatalf("pi = %v, want [0.6 0.4]", pi)
	}
}

func TestSetRateMaintainsDiagonal(t *testing.T) {
	g := NewGenerator(3)
	if err := g.SetRate(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRate(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if g.Rate(0, 0) != -8 {
		t.Fatalf("diag = %v, want -8", g.Rate(0, 0))
	}
	// Overwrite should adjust, not accumulate.
	if err := g.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if g.Rate(0, 0) != -4 {
		t.Fatalf("diag after overwrite = %v, want -4", g.Rate(0, 0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRate(t *testing.T) {
	g := NewGenerator(2)
	if err := g.AddRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRate(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if g.Rate(0, 1) != 3 || g.Rate(0, 0) != -3 {
		t.Fatalf("rates = %v / %v", g.Rate(0, 1), g.Rate(0, 0))
	}
}

func TestRateErrors(t *testing.T) {
	g := NewGenerator(2)
	if err := g.SetRate(0, 0, 1); err == nil {
		t.Fatal("diagonal SetRate accepted")
	}
	if err := g.SetRate(0, 1, -1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := g.AddRate(1, 1, 1); err == nil {
		t.Fatal("diagonal AddRate accepted")
	}
	if err := g.AddRate(0, 1, -2); err == nil {
		t.Fatal("negative AddRate accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := NewGenerator(2)
	if err := g.SetRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g.Q.Set(0, 0, 5) // corrupt the diagonal directly
	if err := g.Validate(); err == nil {
		t.Fatal("corrupted generator validated")
	}
	g2 := NewGenerator(2)
	g2.Q.Set(0, 1, -1)
	g2.Q.Set(0, 0, 1)
	if err := g2.Validate(); err == nil {
		t.Fatal("negative off-diagonal validated")
	}
}

func TestStationaryEmptyChain(t *testing.T) {
	g := NewGenerator(0)
	if _, err := g.Stationary(); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestStationaryReducibleChainFails(t *testing.T) {
	// Two absorbing states: no unique stationary distribution.
	g := NewGenerator(2) // all-zero generator: both states absorbing
	if _, err := g.Stationary(); err == nil {
		t.Fatal("reducible chain returned a stationary distribution")
	}
}

func TestUniformise(t *testing.T) {
	g := twoState(t, 2, 3)
	p, lam, err := g.Uniformise(0)
	if err != nil {
		t.Fatal(err)
	}
	if lam < 3 {
		t.Fatalf("lambda = %v, want >= 3", lam)
	}
	// Rows of P must be probability vectors.
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 2; j++ {
			v := p.At(i, j)
			if v < -1e-12 {
				t.Fatalf("P[%d,%d] = %v < 0", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestUniformiseRateTooSmall(t *testing.T) {
	g := twoState(t, 5, 1)
	if _, _, err := g.Uniformise(2); err == nil {
		t.Fatal("rate below max exit rate accepted")
	}
}

func TestStationaryPowerMatchesDirect(t *testing.T) {
	g := twoState(t, 2, 3)
	direct, err := g.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	power, err := g.StationaryPower(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-power[i]) > 1e-8 {
			t.Fatalf("direct %v vs power %v", direct, power)
		}
	}
}

func TestStationaryPowerNoConvergence(t *testing.T) {
	g := twoState(t, 2, 3)
	if _, err := g.StationaryPower(1, 0); err == nil {
		t.Fatal("expected non-convergence with 1 iteration and zero tolerance")
	}
}

// Property: for random irreducible chains, the stationary distribution sums
// to 1, is non-negative, and satisfies the balance equations πQ ≈ 0.
func TestStationaryBalanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := NewGenerator(n)
		// Ring structure guarantees irreducibility; extra random edges.
		for i := 0; i < n; i++ {
			if err := g.SetRate(i, (i+1)%n, 0.1+rng.Float64()*5); err != nil {
				return false
			}
		}
		for e := 0; e < n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				if err := g.AddRate(i, j, rng.Float64()*3); err != nil {
					return false
				}
			}
		}
		pi, err := g.Stationary()
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range pi {
			if v < -1e-10 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-8 {
			return false
		}
		// Balance: (πQ)_j ≈ 0 for all j.
		for j := 0; j < n; j++ {
			var bal float64
			for i := 0; i < n; i++ {
				bal += pi[i] * g.Q.At(i, j)
			}
			if math.Abs(bal) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: power iteration and direct solve agree on random irreducible
// chains.
func TestPowerVsDirectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		g := NewGenerator(n)
		for i := 0; i < n; i++ {
			if err := g.SetRate(i, (i+1)%n, 0.5+rng.Float64()*2); err != nil {
				return false
			}
			j := rng.Intn(n)
			if j != i {
				if err := g.AddRate(i, j, rng.Float64()); err != nil {
					return false
				}
			}
		}
		d, err := g.Stationary()
		if err != nil {
			return false
		}
		p, err := g.StationaryPower(200000, 1e-13)
		if err != nil {
			return false
		}
		for i := range d {
			if math.Abs(d[i]-p[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
