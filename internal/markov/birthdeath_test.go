package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBirthDeathValidation(t *testing.T) {
	if _, err := NewBirthDeath([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewBirthDeath([]float64{-1}, []float64{1}); err == nil {
		t.Fatal("negative birth accepted")
	}
	if _, err := NewBirthDeath([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero death accepted")
	}
}

func TestBirthDeathTwoState(t *testing.T) {
	bd, err := NewBirthDeath([]float64{2}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := bd.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.6) > 1e-12 || math.Abs(pi[1]-0.4) > 1e-12 {
		t.Fatalf("pi = %v", pi)
	}
}

func TestBirthDeathMM1KShape(t *testing.T) {
	// Constant λ, μ gives the classic geometric M/M/1/K distribution.
	lambda, mu, k := 1.0, 2.0, 4
	birth := make([]float64, k)
	death := make([]float64, k)
	for i := range birth {
		birth[i], death[i] = lambda, mu
	}
	bd, err := NewBirthDeath(birth, death)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := bd.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	norm := (1 - math.Pow(rho, float64(k+1))) / (1 - rho)
	for i := 0; i <= k; i++ {
		want := math.Pow(rho, float64(i)) / norm
		if math.Abs(pi[i]-want) > 1e-12 {
			t.Fatalf("pi[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

// Property: product form matches the generic CTMC stationary solve.
func TestBirthDeathMatchesGeneratorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		birth := make([]float64, n)
		death := make([]float64, n)
		for i := range birth {
			birth[i] = 0.1 + rng.Float64()*4
			death[i] = 0.1 + rng.Float64()*4
		}
		bd, err := NewBirthDeath(birth, death)
		if err != nil {
			return false
		}
		prod, err := bd.Stationary()
		if err != nil {
			return false
		}
		gen, err := bd.Generator().Stationary()
		if err != nil {
			return false
		}
		for i := range prod {
			if math.Abs(prod[i]-gen[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
