// Package markov implements continuous-time Markov chain (CTMC) fundamentals:
// generator matrices, stationary distributions, uniformisation, and
// birth-death shortcuts.
//
// The buffer-sizing pipeline uses this package in two ways: to validate the
// discrete-event simulator against analytic M/M/1/K results, and to compute
// stationary occupancy distributions of bus subsystems under a *fixed* policy
// (the CTMDP solver in internal/ctmdp optimises over policies; once a policy
// is fixed the subsystem is a plain CTMC handled here).
package markov

import (
	"errors"
	"fmt"
	"math"

	"socbuf/internal/linalg"
)

// ErrNotGenerator is returned when a matrix fails generator validation.
var ErrNotGenerator = errors.New("markov: not a valid generator matrix")

// ErrNoConvergence is returned when an iterative method exceeds its budget.
var ErrNoConvergence = errors.New("markov: iteration did not converge")

// Generator is the infinitesimal generator (rate matrix) Q of a CTMC:
// off-diagonal entries are transition rates, each diagonal entry is the
// negated sum of its row's off-diagonals.
type Generator struct {
	Q *linalg.Matrix
}

// NewGenerator returns an n-state generator with all rates zero.
func NewGenerator(n int) *Generator {
	return &Generator{Q: linalg.NewMatrix(n, n)}
}

// N returns the number of states.
func (g *Generator) N() int { return g.Q.Rows }

// SetRate sets the transition rate from state i to state j (i != j) and
// maintains the diagonal invariant.
func (g *Generator) SetRate(i, j int, rate float64) error {
	if i == j {
		return fmt.Errorf("markov: SetRate on diagonal (%d,%d)", i, j)
	}
	if rate < 0 {
		return fmt.Errorf("markov: negative rate %v for (%d,%d)", rate, i, j)
	}
	old := g.Q.At(i, j)
	g.Q.Set(i, j, rate)
	g.Q.Add(i, i, old-rate)
	return nil
}

// AddRate adds to the transition rate from i to j (i != j), maintaining the
// diagonal invariant.
func (g *Generator) AddRate(i, j int, rate float64) error {
	if i == j {
		return fmt.Errorf("markov: AddRate on diagonal (%d,%d)", i, j)
	}
	if rate < 0 {
		return fmt.Errorf("markov: negative rate %v for (%d,%d)", rate, i, j)
	}
	g.Q.Add(i, j, rate)
	g.Q.Add(i, i, -rate)
	return nil
}

// Rate returns the transition rate from i to j.
func (g *Generator) Rate(i, j int) float64 { return g.Q.At(i, j) }

// Validate checks the generator invariants: non-negative off-diagonals and
// rows summing to zero (within tolerance).
func (g *Generator) Validate() error {
	n := g.N()
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := g.Q.At(i, j)
			if i != j && v < 0 {
				return fmt.Errorf("%w: negative off-diagonal Q[%d,%d]=%v", ErrNotGenerator, i, j, v)
			}
			sum += v
		}
		if math.Abs(sum) > 1e-8*(1+math.Abs(g.Q.At(i, i))) {
			return fmt.Errorf("%w: row %d sums to %v", ErrNotGenerator, i, sum)
		}
	}
	return nil
}

// Stationary computes the stationary distribution π with πQ = 0, Σπ = 1 by a
// direct linear solve. It requires the chain to have a unique stationary
// distribution (single recurrent class); otherwise the solve fails or the
// result contains negative entries, both reported as errors.
func (g *Generator) Stationary() ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n == 0 {
		return nil, errors.New("markov: empty chain")
	}
	// Solve Qᵀπ = 0 with the last equation replaced by Σπ = 1.
	a := g.Q.T()
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: stationary solve: %w", err)
	}
	var sum float64
	for i, v := range pi {
		if v < -1e-8 {
			return nil, fmt.Errorf("markov: stationary solution has negative mass %v at state %d (reducible chain?)", v, i)
		}
		if v < 0 {
			pi[i] = 0
			v = 0
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("markov: stationary mass %v != 1", sum)
	}
	linalg.Scale(1/sum, pi)
	return pi, nil
}

// Uniformise returns the uniformised DTMC transition matrix
// P = I + Q/Λ with Λ = rate (must satisfy Λ ≥ max_i |q_ii|; pass 0 to let the
// function pick 1.05·max|q_ii|). The returned rate is the Λ used.
func (g *Generator) Uniformise(rate float64) (*linalg.Matrix, float64, error) {
	n := g.N()
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := -g.Q.At(i, i); d > maxDiag {
			maxDiag = d
		}
	}
	if rate == 0 {
		rate = 1.05*maxDiag + 1e-12
	}
	if rate < maxDiag {
		return nil, 0, fmt.Errorf("markov: uniformisation rate %v < max exit rate %v", rate, maxDiag)
	}
	p := linalg.Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.Add(i, j, g.Q.At(i, j)/rate)
		}
	}
	return p, rate, nil
}

// StationaryPower computes the stationary distribution by power iteration on
// the uniformised chain. Slower but allocation-light; used as a
// cross-validation of Stationary and for very large sparse-ish chains.
func (g *Generator) StationaryPower(maxIters int, tol float64) ([]float64, error) {
	p, _, err := g.Uniformise(0)
	if err != nil {
		return nil, err
	}
	n := g.N()
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for it := 0; it < maxIters; it++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			v := pi[i]
			if v == 0 {
				continue
			}
			row := p.Row(i)
			for j, pij := range row {
				next[j] += v * pij
			}
		}
		var diff float64
		for j := range next {
			if d := math.Abs(next[j] - pi[j]); d > diff {
				diff = d
			}
		}
		pi, next = next, pi
		if diff < tol {
			// Normalise against drift.
			s := linalg.Sum(pi)
			if s <= 0 {
				return nil, fmt.Errorf("markov: power iteration collapsed (sum=%v)", s)
			}
			linalg.Scale(1/s, pi)
			return pi, nil
		}
	}
	return nil, ErrNoConvergence
}
