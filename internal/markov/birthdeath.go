package markov

import (
	"errors"
	"fmt"
)

// BirthDeath describes a finite birth-death CTMC on states 0..N where Birth[k]
// is the rate k→k+1 (len N) and Death[k] is the rate k+1→k (len N).
// Finite buffers in front of a bus are exactly such chains when the arrival
// and service processes are Markovian, which is why this shortcut exists:
// the stationary distribution has the closed product form
//
//	π_k ∝ Π_{j<k} Birth[j]/Death[j].
type BirthDeath struct {
	Birth []float64 // Birth[k]: rate from state k to k+1
	Death []float64 // Death[k]: rate from state k+1 to k
}

// NewBirthDeath validates and wraps the rate slices.
func NewBirthDeath(birth, death []float64) (*BirthDeath, error) {
	if len(birth) != len(death) {
		return nil, fmt.Errorf("markov: birth/death length mismatch %d vs %d", len(birth), len(death))
	}
	for k, b := range birth {
		if b < 0 {
			return nil, fmt.Errorf("markov: negative birth rate %v at %d", b, k)
		}
	}
	for k, d := range death {
		if d <= 0 {
			return nil, fmt.Errorf("markov: non-positive death rate %v at %d", d, k)
		}
	}
	return &BirthDeath{Birth: birth, Death: death}, nil
}

// N returns the top state index (states run 0..N).
func (bd *BirthDeath) N() int { return len(bd.Birth) }

// Stationary returns the product-form stationary distribution over 0..N.
func (bd *BirthDeath) Stationary() ([]float64, error) {
	n := bd.N()
	pi := make([]float64, n+1)
	pi[0] = 1
	var sum float64 = 1
	coef := 1.0
	for k := 0; k < n; k++ {
		coef *= bd.Birth[k] / bd.Death[k]
		pi[k+1] = coef
		sum += coef
	}
	if sum <= 0 {
		return nil, errors.New("markov: degenerate birth-death chain")
	}
	for k := range pi {
		pi[k] /= sum
	}
	return pi, nil
}

// Generator expands the birth-death chain to a full generator matrix, mainly
// for cross-validation against the generic solvers.
func (bd *BirthDeath) Generator() *Generator {
	n := bd.N()
	g := NewGenerator(n + 1)
	for k := 0; k < n; k++ {
		// Rates validated at construction; ignore impossible errors.
		_ = g.SetRate(k, k+1, bd.Birth[k])
		_ = g.SetRate(k+1, k, bd.Death[k])
	}
	return g
}
