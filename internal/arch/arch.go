// Package arch models the communication sub-system of a System-on-Chip the
// way the paper does: processors attached to shared buses, buses connected by
// bridges, and finite buffers at every point where data can wait.
//
// Two kinds of buffers exist:
//
//   - an egress buffer per processor–bus attachment ("processor bus pair" in
//     the paper's wording), where a processor's outgoing requests wait for the
//     bus arbiter's grant, and
//   - two directional bridge buffers per bridge, inserted by the paper's
//     methodology so that the two buses a bridge connects interact only
//     through the buffer (this is what turns the quadratic coupled system
//     into independent linear subsystems).
//
// Capacities are *not* part of the Architecture: they are the decision
// variable of the sizing problem and live in an Allocation. The Architecture
// describes topology and traffic only.
package arch

import (
	"errors"
	"fmt"
	"sort"
)

// ErrInvalid is wrapped by all validation failures.
var ErrInvalid = errors.New("arch: invalid architecture")

// Bus is a shared interconnect with a single transfer engine: it moves one
// request at a time at exponential rate ServiceRate.
type Bus struct {
	ID          string
	ServiceRate float64 // μ, transfers per unit time (>0)
}

// Processor is a traffic endpoint. A processor may attach to several buses
// (dual-homed masters exist in AMBA-style designs and in the paper's Figure
// 1); each attachment has its own egress buffer.
type Processor struct {
	ID    string
	Buses []string // attached buses, at least one
}

// Bridge connects exactly two buses. Buffered reports whether the
// methodology has inserted the pair of directional buffers; an un-buffered
// bridge couples the two arbiters (the quadratic case of §2 of the paper).
type Bridge struct {
	ID       string
	BusA     string
	BusB     string
	Buffered bool
}

// Flow is one Poisson traffic stream between two processors.
type Flow struct {
	From string  // source processor
	To   string  // destination processor
	Rate float64 // packets per unit time (>0)
}

// Architecture is the full communication sub-system description.
type Architecture struct {
	Name       string
	Buses      []Bus
	Processors []Processor
	Bridges    []Bridge
	Flows      []Flow
}

// AttachmentBufferID names the egress buffer of processor proc on bus bus.
func AttachmentBufferID(proc, bus string) string { return proc + "@" + bus }

// BridgeBufferID names the directional buffer of bridge br carrying traffic
// from bus `from` toward the other side.
func BridgeBufferID(br, from string) string { return br + ":" + from + ">" }

// BusByID returns the bus with the given ID.
func (a *Architecture) BusByID(id string) (*Bus, bool) {
	for i := range a.Buses {
		if a.Buses[i].ID == id {
			return &a.Buses[i], true
		}
	}
	return nil, false
}

// ProcessorByID returns the processor with the given ID.
func (a *Architecture) ProcessorByID(id string) (*Processor, bool) {
	for i := range a.Processors {
		if a.Processors[i].ID == id {
			return &a.Processors[i], true
		}
	}
	return nil, false
}

// BridgeByID returns the bridge with the given ID.
func (a *Architecture) BridgeByID(id string) (*Bridge, bool) {
	for i := range a.Bridges {
		if a.Bridges[i].ID == id {
			return &a.Bridges[i], true
		}
	}
	return nil, false
}

// Clone deep-copies the architecture, so mutations of the copy (notably
// InsertBridgeBuffers) leave the original untouched.
func (a *Architecture) Clone() *Architecture {
	out := &Architecture{Name: a.Name}
	out.Buses = append([]Bus(nil), a.Buses...)
	out.Bridges = append([]Bridge(nil), a.Bridges...)
	out.Flows = append([]Flow(nil), a.Flows...)
	for _, p := range a.Processors {
		out.Processors = append(out.Processors, Processor{
			ID:    p.ID,
			Buses: append([]string(nil), p.Buses...),
		})
	}
	return out
}

// InsertBridgeBuffers marks every bridge as buffered. This is the paper's
// "buffer insertion for bridges": after it, Split (internal/graph) decomposes
// the architecture into one linear subsystem per bus.
func (a *Architecture) InsertBridgeBuffers() {
	for i := range a.Bridges {
		a.Bridges[i].Buffered = true
	}
}

// Validate checks referential integrity, positivity of rates, and structural
// sanity (no self-bridges, no duplicate IDs, flows between existing
// processors, every flow routable).
func (a *Architecture) Validate() error {
	if len(a.Buses) == 0 {
		return fmt.Errorf("%w: no buses", ErrInvalid)
	}
	busSeen := map[string]bool{}
	for _, b := range a.Buses {
		if b.ID == "" {
			return fmt.Errorf("%w: bus with empty ID", ErrInvalid)
		}
		if busSeen[b.ID] {
			return fmt.Errorf("%w: duplicate bus %q", ErrInvalid, b.ID)
		}
		busSeen[b.ID] = true
		if b.ServiceRate <= 0 {
			return fmt.Errorf("%w: bus %q service rate %v", ErrInvalid, b.ID, b.ServiceRate)
		}
	}
	procSeen := map[string]bool{}
	for _, p := range a.Processors {
		if p.ID == "" {
			return fmt.Errorf("%w: processor with empty ID", ErrInvalid)
		}
		if procSeen[p.ID] {
			return fmt.Errorf("%w: duplicate processor %q", ErrInvalid, p.ID)
		}
		procSeen[p.ID] = true
		if len(p.Buses) == 0 {
			return fmt.Errorf("%w: processor %q attached to no bus", ErrInvalid, p.ID)
		}
		att := map[string]bool{}
		for _, b := range p.Buses {
			if !busSeen[b] {
				return fmt.Errorf("%w: processor %q attached to unknown bus %q", ErrInvalid, p.ID, b)
			}
			if att[b] {
				return fmt.Errorf("%w: processor %q attached to bus %q twice", ErrInvalid, p.ID, b)
			}
			att[b] = true
		}
	}
	brSeen := map[string]bool{}
	for _, br := range a.Bridges {
		if br.ID == "" {
			return fmt.Errorf("%w: bridge with empty ID", ErrInvalid)
		}
		if brSeen[br.ID] {
			return fmt.Errorf("%w: duplicate bridge %q", ErrInvalid, br.ID)
		}
		brSeen[br.ID] = true
		if !busSeen[br.BusA] || !busSeen[br.BusB] {
			return fmt.Errorf("%w: bridge %q references unknown bus (%q,%q)", ErrInvalid, br.ID, br.BusA, br.BusB)
		}
		if br.BusA == br.BusB {
			return fmt.Errorf("%w: bridge %q is a self-loop on %q", ErrInvalid, br.ID, br.BusA)
		}
	}
	for i, f := range a.Flows {
		if !procSeen[f.From] || !procSeen[f.To] {
			return fmt.Errorf("%w: flow %d references unknown processor (%q→%q)", ErrInvalid, i, f.From, f.To)
		}
		if f.From == f.To {
			return fmt.Errorf("%w: flow %d is a self-loop on %q", ErrInvalid, i, f.From)
		}
		if f.Rate <= 0 {
			return fmt.Errorf("%w: flow %d (%q→%q) rate %v", ErrInvalid, i, f.From, f.To, f.Rate)
		}
	}
	if _, err := a.Routes(); err != nil {
		return err
	}
	return nil
}

// BufferIDs returns the sorted IDs of every buffer in the architecture:
// all processor-attachment egress buffers plus, for buffered bridges, both
// directional bridge buffers.
func (a *Architecture) BufferIDs() []string {
	var ids []string
	for _, p := range a.Processors {
		for _, b := range p.Buses {
			ids = append(ids, AttachmentBufferID(p.ID, b))
		}
	}
	for _, br := range a.Bridges {
		if br.Buffered {
			ids = append(ids, BridgeBufferID(br.ID, br.BusA), BridgeBufferID(br.ID, br.BusB))
		}
	}
	sort.Strings(ids)
	return ids
}

// TotalOfferedLoad returns Σ flow rates, the aggregate packet injection rate.
func (a *Architecture) TotalOfferedLoad() float64 {
	var s float64
	for _, f := range a.Flows {
		s += f.Rate
	}
	return s
}

// OfferedLoadByProcessor returns each processor's total generated rate.
func (a *Architecture) OfferedLoadByProcessor() map[string]float64 {
	out := make(map[string]float64, len(a.Processors))
	for _, p := range a.Processors {
		out[p.ID] = 0
	}
	for _, f := range a.Flows {
		out[f.From] += f.Rate
	}
	return out
}
