package arch

import (
	"math"
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, a := range []*Architecture{Figure1(), TwoBusAMBA(), NetworkProcessor()} {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
}

func TestFigure1Shape(t *testing.T) {
	a := Figure1()
	if len(a.Buses) != 4 || len(a.Processors) != 5 || len(a.Bridges) != 2 {
		t.Fatalf("figure1 shape: %d buses, %d procs, %d bridges",
			len(a.Buses), len(a.Processors), len(a.Bridges))
	}
	// Bus a must connect only to processors: no bridge touches it.
	for _, br := range a.Bridges {
		if br.BusA == "a" || br.BusB == "a" {
			t.Fatalf("bridge %s touches bus a", br.ID)
		}
	}
	// Bridges start un-buffered (the paper's pre-insertion state).
	for _, br := range a.Bridges {
		if br.Buffered {
			t.Fatalf("bridge %s starts buffered", br.ID)
		}
	}
}

func TestNetworkProcessorShape(t *testing.T) {
	a := NetworkProcessor()
	if len(a.Processors) != 17 {
		t.Fatalf("netproc has %d processors, want 17", len(a.Processors))
	}
	loads := a.OfferedLoadByProcessor()
	if loads["p16"] <= loads["p4"] || loads["p4"] <= loads["p1"] {
		t.Fatalf("load skew broken: p16=%v p4=%v p1=%v", loads["p16"], loads["p4"], loads["p1"])
	}
	if loads["p1"] > 1 {
		t.Fatalf("p1 should be cold, has %v", loads["p1"])
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func(mut func(*Architecture)) *Architecture {
		a := TwoBusAMBA()
		mut(a)
		return a
	}
	cases := []struct {
		name string
		a    *Architecture
	}{
		{"no buses", &Architecture{}},
		{"dup bus", mk(func(a *Architecture) { a.Buses = append(a.Buses, Bus{ID: "ahb1", ServiceRate: 1}) })},
		{"empty bus id", mk(func(a *Architecture) { a.Buses[0].ID = ""; a.Processors = nil; a.Flows = nil; a.Bridges = nil })},
		{"zero rate", mk(func(a *Architecture) { a.Buses[0].ServiceRate = 0 })},
		{"dup proc", mk(func(a *Architecture) {
			a.Processors = append(a.Processors, Processor{ID: "cpu", Buses: []string{"ahb1"}})
		})},
		{"empty proc id", mk(func(a *Architecture) { a.Processors[0].ID = "" })},
		{"proc no bus", mk(func(a *Architecture) { a.Processors[0].Buses = nil })},
		{"proc unknown bus", mk(func(a *Architecture) { a.Processors[0].Buses = []string{"nope"} })},
		{"proc dup attach", mk(func(a *Architecture) { a.Processors[0].Buses = []string{"ahb1", "ahb1"} })},
		{"dup bridge", mk(func(a *Architecture) { a.Bridges = append(a.Bridges, Bridge{ID: "br", BusA: "ahb1", BusB: "ahb2"}) })},
		{"empty bridge id", mk(func(a *Architecture) { a.Bridges[0].ID = "" })},
		{"bridge unknown bus", mk(func(a *Architecture) { a.Bridges[0].BusB = "nope" })},
		{"self bridge", mk(func(a *Architecture) { a.Bridges[0].BusB = "ahb1" })},
		{"flow unknown proc", mk(func(a *Architecture) { a.Flows[0].From = "nope" })},
		{"flow self loop", mk(func(a *Architecture) { a.Flows[0].To = a.Flows[0].From })},
		{"flow zero rate", mk(func(a *Architecture) { a.Flows[0].Rate = 0 })},
		{"unroutable flow", mk(func(a *Architecture) { a.Bridges = nil })},
	}
	for _, c := range cases {
		if err := c.a.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestLookups(t *testing.T) {
	a := TwoBusAMBA()
	if _, ok := a.BusByID("ahb1"); !ok {
		t.Fatal("BusByID miss")
	}
	if _, ok := a.BusByID("zzz"); ok {
		t.Fatal("BusByID false hit")
	}
	if _, ok := a.ProcessorByID("cpu"); !ok {
		t.Fatal("ProcessorByID miss")
	}
	if _, ok := a.ProcessorByID("zzz"); ok {
		t.Fatal("ProcessorByID false hit")
	}
	if _, ok := a.BridgeByID("br"); !ok {
		t.Fatal("BridgeByID miss")
	}
	if _, ok := a.BridgeByID("zzz"); ok {
		t.Fatal("BridgeByID false hit")
	}
}

func TestInsertBridgeBuffers(t *testing.T) {
	a := Figure1()
	a.InsertBridgeBuffers()
	for _, br := range a.Bridges {
		if !br.Buffered {
			t.Fatalf("bridge %s not buffered after insertion", br.ID)
		}
	}
}

func TestBufferIDs(t *testing.T) {
	a := TwoBusAMBA()
	ids := a.BufferIDs()
	// 4 single-homed processors, bridge not yet buffered.
	if len(ids) != 4 {
		t.Fatalf("BufferIDs = %v, want 4 attachment buffers", ids)
	}
	a.InsertBridgeBuffers()
	ids = a.BufferIDs()
	if len(ids) != 6 {
		t.Fatalf("BufferIDs after insertion = %v, want 6", ids)
	}
	found := map[string]bool{}
	for _, id := range ids {
		found[id] = true
	}
	for _, want := range []string{"cpu@ahb1", "br:ahb1>", "br:ahb2>"} {
		if !found[want] {
			t.Fatalf("missing buffer %q in %v", want, ids)
		}
	}
	// Sorted?
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("BufferIDs not sorted: %v", ids)
		}
	}
}

func TestOfferedLoads(t *testing.T) {
	a := TwoBusAMBA()
	total := a.TotalOfferedLoad()
	if total != 1.2+0.8+1.0+0.5+0.6 {
		t.Fatalf("total load = %v", total)
	}
	per := a.OfferedLoadByProcessor()
	if math.Abs(per["cpu"]-(1.2+0.6)) > 1e-12 {
		t.Fatalf("cpu load = %v", per["cpu"])
	}
	if per["mac"] != 0.5 {
		t.Fatalf("mac load = %v", per["mac"])
	}
}

func TestBufferIDHelpers(t *testing.T) {
	if AttachmentBufferID("p1", "a") != "p1@a" {
		t.Fatal("AttachmentBufferID format changed")
	}
	if !strings.HasPrefix(BridgeBufferID("br1", "b"), "br1:") {
		t.Fatal("BridgeBufferID format changed")
	}
	if BridgeBufferID("br1", "b") == BridgeBufferID("br1", "f") {
		t.Fatal("bridge buffer directions must differ")
	}
}
