package arch

import "fmt"

// Figure1 reconstructs the sample architecture of the paper's Figure 1.
// The published figure is low resolution; DESIGN.md §2 records the
// reconstruction choices. The properties the paper's text relies on hold:
//
//   - bus "a" is connected only to processors (never to another bus),
//   - buses "b", "f" and "g" talk to each other through bridges,
//   - the bridges carry four directional buffers (b1–b4 in the paper:
//     here br1:b>, br1:f>, br2:f>, br2:g>),
//   - communication between processors 2, 3 and 5 crosses bridges,
//   - splitting at the (buffered) bridges yields four linear subsystems,
//     one per bus.
//
// Bridges start un-buffered: callers see the quadratic coupled system until
// they run InsertBridgeBuffers (exactly the paper's §2 storyline).
func Figure1() *Architecture {
	return &Architecture{
		Name: "figure1",
		Buses: []Bus{
			{ID: "a", ServiceRate: 4},
			{ID: "b", ServiceRate: 6},
			{ID: "f", ServiceRate: 6},
			{ID: "g", ServiceRate: 5},
		},
		Processors: []Processor{
			{ID: "p1", Buses: []string{"a"}},
			{ID: "p2", Buses: []string{"a", "b"}}, // dual-homed master
			{ID: "p3", Buses: []string{"b"}},
			{ID: "p4", Buses: []string{"f"}},
			{ID: "p5", Buses: []string{"g"}},
		},
		Bridges: []Bridge{
			{ID: "br1", BusA: "b", BusB: "f"},
			{ID: "br2", BusA: "f", BusB: "g"},
		},
		Flows: []Flow{
			{From: "p1", To: "p2", Rate: 1.0}, // local on bus a
			{From: "p2", To: "p5", Rate: 1.2}, // b → f → g
			{From: "p3", To: "p4", Rate: 1.5}, // b → f
			{From: "p5", To: "p3", Rate: 0.9}, // g → f → b
			{From: "p4", To: "p5", Rate: 0.8}, // f → g
		},
	}
}

// TwoBusAMBA is a minimal AMBA-style two-bus system used by fast integration
// tests and the quickstart example: two AHB segments joined by one bridge.
func TwoBusAMBA() *Architecture {
	return &Architecture{
		Name: "twobus-amba",
		Buses: []Bus{
			{ID: "ahb1", ServiceRate: 5},
			{ID: "ahb2", ServiceRate: 5},
		},
		Processors: []Processor{
			{ID: "cpu", Buses: []string{"ahb1"}},
			{ID: "dma", Buses: []string{"ahb1"}},
			{ID: "dsp", Buses: []string{"ahb2"}},
			{ID: "mac", Buses: []string{"ahb2"}},
		},
		Bridges: []Bridge{
			{ID: "br", BusA: "ahb1", BusB: "ahb2"},
		},
		Flows: []Flow{
			{From: "cpu", To: "dsp", Rate: 1.2},
			{From: "dma", To: "mac", Rate: 0.8},
			{From: "dsp", To: "cpu", Rate: 1.0},
			{From: "mac", To: "dma", Rate: 0.5},
			{From: "cpu", To: "dma", Rate: 0.6},
		},
	}
}

// NetworkProcessor builds the synthetic network-processor test architecture
// used by the paper's experiments (§3). The paper does not publish its
// netlist, only that it has ~17 processors whose loss profile is strongly
// skewed (processor 16 improves drastically under resizing, processor 1
// slightly worsens; processors 1, 4, 15, 16 are the Table 1 rows). This
// substitute is a four-stage packet pipeline — ingress, classification,
// processing, egress — with deliberately skewed flow rates: p16 and p15 are
// hot, p1 is cold. DESIGN.md §2 records the substitution rationale.
//
// Processor numbering follows the paper's figure (p1..p17).
func NetworkProcessor() *Architecture {
	a := &Architecture{
		Name: "netproc",
		// Service rates put every bus at utilisation ≈ 0.83–0.88 under the
		// flow matrix below (bridge-relayed traffic counts twice or thrice):
		// losses then come from finite buffers, not raw overload, so they
		// can fall to zero once the budget is generous (Table 1, 640 units).
		Buses: []Bus{
			{ID: "ingress", ServiceRate: 15},
			{ID: "classify", ServiceRate: 24},
			{ID: "process", ServiceRate: 25},
			{ID: "egress", ServiceRate: 17},
		},
		Bridges: []Bridge{
			{ID: "brIC", BusA: "ingress", BusB: "classify"},
			{ID: "brCP", BusA: "classify", BusB: "process"},
			{ID: "brPE", BusA: "process", BusB: "egress"},
		},
	}
	place := []struct {
		bus   string
		procs []int
	}{
		{"ingress", []int{1, 2, 3, 4, 5}},
		{"classify", []int{6, 7, 8, 9, 10}},
		{"process", []int{11, 12, 13, 14}},
		{"egress", []int{15, 16, 17}},
	}
	for _, pl := range place {
		for _, n := range pl.procs {
			a.Processors = append(a.Processors, Processor{
				ID:    fmt.Sprintf("p%d", n),
				Buses: []string{pl.bus},
			})
		}
	}
	flow := func(from, to int, rate float64) {
		a.Flows = append(a.Flows, Flow{
			From: fmt.Sprintf("p%d", from),
			To:   fmt.Sprintf("p%d", to),
			Rate: rate,
		})
	}
	// Pipeline stage 1 → 2 (ingress → classify). p1 is the cold processor.
	flow(1, 6, 0.3)
	flow(2, 7, 1.1)
	flow(3, 8, 1.7)
	flow(4, 9, 2.6) // p4 hot (Table 1 row)
	flow(5, 10, 1.3)
	// Stage 2 → 3.
	flow(6, 11, 0.9)
	flow(7, 12, 1.5)
	flow(8, 13, 1.1)
	flow(9, 14, 1.9)
	flow(10, 11, 0.7)
	// Stage 3 → 4.
	flow(11, 15, 1.2)
	flow(12, 16, 1.8)
	flow(13, 17, 0.9)
	flow(14, 16, 1.5)
	// Egress feedback / control traffic. p15 and p16 are hot (Table 1 rows)
	// and push the egress bus to utilisation ≈ 0.95, so uniform sizing keeps
	// losing packets even at generous budgets (the Table 1 pre-640 column).
	flow(15, 1, 0.7)
	flow(15, 11, 2.2) // p15 total 2.9
	flow(16, 5, 4.2)
	flow(16, 8, 2.2) // p16 total 6.4 — hottest
	flow(17, 2, 0.8)
	// Long cross-pipeline flows.
	flow(1, 15, 0.2) // p1 total 0.5 — coldest
	flow(4, 16, 0.7) // p4 total 3.3
	flow(2, 13, 0.4)
	return a
}
