package arch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestUniformAllocation(t *testing.T) {
	a := TwoBusAMBA()
	a.InsertBridgeBuffers() // 6 buffers
	al, err := UniformAllocation(a, 60)
	if err != nil {
		t.Fatal(err)
	}
	if al.Total() != 60 {
		t.Fatalf("total = %d, want 60", al.Total())
	}
	for id, c := range al {
		if c != 10 {
			t.Fatalf("buffer %s got %d, want 10", id, c)
		}
	}
	if err := al.Validate(a, 60); err != nil {
		t.Fatal(err)
	}
}

func TestUniformAllocationRemainder(t *testing.T) {
	a := TwoBusAMBA()
	a.InsertBridgeBuffers()
	al, err := UniformAllocation(a, 61)
	if err != nil {
		t.Fatal(err)
	}
	if al.Total() != 61 {
		t.Fatalf("total = %d, want 61", al.Total())
	}
}

func TestUniformAllocationTooSmall(t *testing.T) {
	a := TwoBusAMBA()
	a.InsertBridgeBuffers()
	if _, err := UniformAllocation(a, 5); err == nil {
		t.Fatal("budget below buffer count accepted")
	}
}

func TestProportionalAllocation(t *testing.T) {
	a := TwoBusAMBA()
	a.InsertBridgeBuffers()
	al, err := ProportionalAllocation(a, 60)
	if err != nil {
		t.Fatal(err)
	}
	if al.Total() != 60 {
		t.Fatalf("total = %d, want 60", al.Total())
	}
	if err := al.Validate(a, 60); err != nil {
		t.Fatal(err)
	}
	// cpu@ahb1 carries 1.8 of 4.1+2×... ; it must get strictly more than
	// mac@ahb2 which carries 0.5.
	if al["cpu@ahb1"] <= al["mac@ahb2"] {
		t.Fatalf("proportional not skewed: cpu=%d mac=%d", al["cpu@ahb1"], al["mac@ahb2"])
	}
}

func TestAllocationValidate(t *testing.T) {
	a := TwoBusAMBA()
	a.InsertBridgeBuffers()
	al, err := UniformAllocation(a, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Validate(a, 59); err == nil {
		t.Fatal("over-budget allocation validated")
	}
	bad := al.Clone()
	delete(bad, "cpu@ahb1")
	if err := bad.Validate(a, 60); err == nil {
		t.Fatal("missing buffer validated")
	}
	bad2 := al.Clone()
	delete(bad2, "cpu@ahb1")
	bad2["nonexistent"] = 10
	if err := bad2.Validate(a, 60); err == nil {
		t.Fatal("wrong buffer set validated")
	}
	bad3 := al.Clone()
	bad3["cpu@ahb1"] = 0
	if err := bad3.Validate(a, 60); err == nil {
		t.Fatal("zero capacity validated")
	}
}

func TestAllocationCloneIndependent(t *testing.T) {
	al := Allocation{"x": 1}
	c := al.Clone()
	c["x"] = 5
	if al["x"] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAllocationString(t *testing.T) {
	al := Allocation{"b": 2, "a": 1}
	s := al.String()
	if !strings.HasPrefix(s, "a=1") {
		t.Fatalf("String not sorted: %q", s)
	}
}

// Property: both allocators exhaust the budget exactly, give every buffer at
// least one unit, and are deterministic.
func TestAllocatorsExhaustBudgetProperty(t *testing.T) {
	arch := NetworkProcessor()
	arch.InsertBridgeBuffers()
	n := len(arch.BufferIDs())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := n + rng.Intn(1000)
		u1, err := UniformAllocation(arch, budget)
		if err != nil {
			return false
		}
		p1, err := ProportionalAllocation(arch, budget)
		if err != nil {
			return false
		}
		if u1.Total() != budget || p1.Total() != budget {
			return false
		}
		for _, al := range []Allocation{u1, p1} {
			for _, c := range al {
				if c < 1 {
					return false
				}
			}
		}
		u2, err := UniformAllocation(arch, budget)
		if err != nil {
			return false
		}
		p2, err := ProportionalAllocation(arch, budget)
		if err != nil {
			return false
		}
		for k, v := range u1 {
			if u2[k] != v {
				return false
			}
		}
		for k, v := range p1 {
			if p2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
