package arch

import (
	"math"
	"testing"
)

func TestRoutesLocalFlow(t *testing.T) {
	a := Figure1()
	routes, err := a.Routes()
	if err != nil {
		t.Fatal(err)
	}
	// p1 → p2 stays on bus a: one hop, delivered directly.
	var r *Route
	for i := range routes {
		if routes[i].Flow.From == "p1" && routes[i].Flow.To == "p2" {
			r = &routes[i]
		}
	}
	if r == nil {
		t.Fatal("p1→p2 route missing")
	}
	if len(r.Hops) != 1 {
		t.Fatalf("p1→p2 hops = %v, want 1 hop", r.Hops)
	}
	h := r.Hops[0]
	if h.Bus != "a" || h.Buffer != "p1@a" || h.NextBuffer != "" {
		t.Fatalf("p1→p2 hop = %+v", h)
	}
}

func TestRoutesCrossBridge(t *testing.T) {
	a := Figure1()
	routes, err := a.Routes()
	if err != nil {
		t.Fatal(err)
	}
	var r *Route
	for i := range routes {
		if routes[i].Flow.From == "p2" && routes[i].Flow.To == "p5" {
			r = &routes[i]
		}
	}
	if r == nil {
		t.Fatal("p2→p5 route missing")
	}
	// p2 must start on bus b (bus a has no path to g), cross br1 then br2.
	if len(r.Hops) != 3 {
		t.Fatalf("p2→p5 hops = %+v, want 3", r.Hops)
	}
	if r.Hops[0].Buffer != "p2@b" || r.Hops[0].Bus != "b" {
		t.Fatalf("hop0 = %+v", r.Hops[0])
	}
	if r.Hops[0].NextBuffer != BridgeBufferID("br1", "b") {
		t.Fatalf("hop0 next = %q", r.Hops[0].NextBuffer)
	}
	if r.Hops[1].Bus != "f" || r.Hops[1].Buffer != BridgeBufferID("br1", "b") {
		t.Fatalf("hop1 = %+v", r.Hops[1])
	}
	if r.Hops[2].Bus != "g" || r.Hops[2].NextBuffer != "" {
		t.Fatalf("hop2 = %+v", r.Hops[2])
	}
}

func TestRoutesDeterministic(t *testing.T) {
	a := NetworkProcessor()
	r1, err := a.Routes()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Routes()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("route count differs between calls")
	}
	for i := range r1 {
		if len(r1[i].Hops) != len(r2[i].Hops) {
			t.Fatalf("route %d hop count differs", i)
		}
		for h := range r1[i].Hops {
			if r1[i].Hops[h] != r2[i].Hops[h] {
				t.Fatalf("route %d hop %d differs: %+v vs %+v", i, h, r1[i].Hops[h], r2[i].Hops[h])
			}
		}
	}
}

func TestBusClients(t *testing.T) {
	a := Figure1()
	clients, err := a.BusClients()
	if err != nil {
		t.Fatal(err)
	}
	// Bus f serves the two bridge buffers draining onto it plus p4's egress.
	fClients := clients["f"]
	want := map[string]bool{
		BridgeBufferID("br1", "b"): true, // b→f traffic waits here for f
		BridgeBufferID("br2", "g"): true, // g→f traffic
		"p4@f":                     true,
	}
	if len(fClients) != len(want) {
		t.Fatalf("bus f clients = %v", fClients)
	}
	for _, c := range fClients {
		if !want[c] {
			t.Fatalf("unexpected client %q on bus f (clients %v)", c, fClients)
		}
	}
	// Bus a serves only p1@a (p2's a-attachment carries no traffic: the only
	// flow from p2 leaves via bus b).
	if len(clients["a"]) != 1 || clients["a"][0] != "p1@a" {
		t.Fatalf("bus a clients = %v", clients["a"])
	}
}

func TestBufferArrivalRates(t *testing.T) {
	a := Figure1()
	rates, err := a.BufferArrivalRates()
	if err != nil {
		t.Fatal(err)
	}
	// br2:f> carries p2→p5 (1.2) and p4→p5 (0.8).
	if got := rates[BridgeBufferID("br2", "f")]; math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("br2:f> rate = %v, want 2.0", got)
	}
	// p3@b carries only p3→p4 (1.5).
	if got := rates["p3@b"]; math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("p3@b rate = %v, want 1.5", got)
	}
	// p2@a carries nothing.
	if got := rates["p2@a"]; got != 0 {
		t.Fatalf("p2@a rate = %v, want 0", got)
	}
}

func TestRoutesUnroutable(t *testing.T) {
	a := Figure1()
	a.Bridges = nil // p2→p5 now impossible
	if _, err := a.Routes(); err == nil {
		t.Fatal("unroutable flow accepted")
	}
}

func TestRoutesPreferShortestPath(t *testing.T) {
	// Diamond: two routes from x to y; BFS must pick the 2-bus path.
	a := &Architecture{
		Name: "diamond",
		Buses: []Bus{
			{ID: "w", ServiceRate: 1}, {ID: "x", ServiceRate: 1},
			{ID: "y", ServiceRate: 1}, {ID: "z", ServiceRate: 1},
		},
		Processors: []Processor{
			{ID: "src", Buses: []string{"w"}},
			{ID: "dst", Buses: []string{"y"}},
		},
		Bridges: []Bridge{
			{ID: "wx", BusA: "w", BusB: "x"},
			{ID: "xy", BusA: "x", BusB: "y"},
			{ID: "wz", BusA: "w", BusB: "z"},
			{ID: "zy", BusA: "z", BusB: "y"},
			{ID: "wy", BusA: "w", BusB: "y"}, // direct shortcut
		},
		Flows: []Flow{{From: "src", To: "dst", Rate: 1}},
	}
	routes, err := a.Routes()
	if err != nil {
		t.Fatal(err)
	}
	if len(routes[0].Hops) != 2 {
		t.Fatalf("diamond route hops = %+v, want the 2-hop shortcut", routes[0].Hops)
	}
}
