package arch

import (
	"fmt"
	"sort"
)

// Hop is one leg of a packet's journey: the packet waits in Buffer until the
// arbiter of Bus grants it, then occupies Bus for one exponential service.
type Hop struct {
	Buffer string // buffer the packet waits in before this leg
	Bus    string // bus that carries this leg
	// NextBuffer is where the packet lands after this leg: a bridge buffer
	// ID, or "" when this leg delivers to the destination processor.
	NextBuffer string
}

// Route is the fixed path of one flow: source egress buffer, zero or more
// bridge buffers, destination.
type Route struct {
	Flow Flow
	Hops []Hop
}

// Routes computes the route of every flow. Routing is shortest-path over the
// bus graph (edges = bridges, regardless of Buffered state — buffering
// changes the analysis, not the path), with the source processor free to use
// whichever of its attachments gives the shortest path to whichever of the
// destination's attachment buses. Ties break toward lexicographically
// smaller bus IDs so routing is deterministic.
func (a *Architecture) Routes() ([]Route, error) {
	adj := a.busAdjacency()
	routes := make([]Route, 0, len(a.Flows))
	for i, f := range a.Flows {
		src, ok := a.ProcessorByID(f.From)
		if !ok {
			return nil, fmt.Errorf("%w: flow %d: unknown source %q", ErrInvalid, i, f.From)
		}
		dst, ok := a.ProcessorByID(f.To)
		if !ok {
			return nil, fmt.Errorf("%w: flow %d: unknown destination %q", ErrInvalid, i, f.To)
		}
		best, err := a.bestBusPath(adj, src, dst)
		if err != nil {
			return nil, fmt.Errorf("%w: flow %d (%q→%q): %v", ErrInvalid, i, f.From, f.To, err)
		}
		hops := make([]Hop, 0, len(best.buses))
		buffer := AttachmentBufferID(f.From, best.buses[0])
		for h := 0; h < len(best.buses); h++ {
			next := ""
			if h < len(best.buses)-1 {
				next = BridgeBufferID(best.bridges[h], best.buses[h])
			}
			hops = append(hops, Hop{Buffer: buffer, Bus: best.buses[h], NextBuffer: next})
			buffer = next
		}
		routes = append(routes, Route{Flow: f, Hops: hops})
	}
	return routes, nil
}

type busEdge struct {
	to     string
	bridge string
}

func (a *Architecture) busAdjacency() map[string][]busEdge {
	adj := make(map[string][]busEdge, len(a.Buses))
	for _, b := range a.Buses {
		adj[b.ID] = nil
	}
	for _, br := range a.Bridges {
		adj[br.BusA] = append(adj[br.BusA], busEdge{to: br.BusB, bridge: br.ID})
		adj[br.BusB] = append(adj[br.BusB], busEdge{to: br.BusA, bridge: br.ID})
	}
	// Deterministic neighbour order.
	for k := range adj {
		es := adj[k]
		sort.Slice(es, func(i, j int) bool {
			if es[i].to != es[j].to {
				return es[i].to < es[j].to
			}
			return es[i].bridge < es[j].bridge
		})
	}
	return adj
}

type busPath struct {
	buses   []string // buses traversed, in order
	bridges []string // bridges crossed; len = len(buses)-1
}

// bestBusPath finds the shortest bridge path from any of src's buses to any
// of dst's buses via BFS.
func (a *Architecture) bestBusPath(adj map[string][]busEdge, src, dst *Processor) (*busPath, error) {
	dstBuses := map[string]bool{}
	for _, b := range dst.Buses {
		dstBuses[b] = true
	}
	// Deterministic start order.
	starts := append([]string(nil), src.Buses...)
	sort.Strings(starts)

	var best *busPath
	for _, start := range starts {
		type node struct {
			bus  string
			path busPath
		}
		visited := map[string]bool{start: true}
		queue := []node{{bus: start, path: busPath{buses: []string{start}}}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if dstBuses[cur.bus] {
				if best == nil || len(cur.path.buses) < len(best.buses) {
					p := cur.path
					best = &p
				}
				break // BFS: first hit from this start is its shortest
			}
			for _, e := range adj[cur.bus] {
				if visited[e.to] {
					continue
				}
				visited[e.to] = true
				np := busPath{
					buses:   append(append([]string(nil), cur.path.buses...), e.to),
					bridges: append(append([]string(nil), cur.path.bridges...), e.bridge),
				}
				queue = append(queue, node{bus: e.to, path: np})
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no bus path from %q to %q", src.ID, dst.ID)
	}
	return best, nil
}

// BusClients returns, for every bus, the sorted buffer IDs the bus arbiter
// serves: egress buffers of attached processors that actually carry traffic
// on that bus, and bridge buffers that drain onto the bus. This is the
// client set of the per-bus CTMDP.
func (a *Architecture) BusClients() (map[string][]string, error) {
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}
	set := make(map[string]map[string]bool, len(a.Buses))
	for _, b := range a.Buses {
		set[b.ID] = map[string]bool{}
	}
	for _, r := range routes {
		for _, h := range r.Hops {
			set[h.Bus][h.Buffer] = true
		}
	}
	out := make(map[string][]string, len(set))
	for bus, m := range set {
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		out[bus] = ids
	}
	return out, nil
}

// BufferArrivalRates returns the total offered rate into every buffer,
// assuming no upstream loss (the "raw" rates used to seed the boundary
// fixed-point iteration and the proportional sizing baseline).
func (a *Architecture) BufferArrivalRates() (map[string]float64, error) {
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}
	rates := map[string]float64{}
	for _, id := range a.BufferIDs() {
		rates[id] = 0
	}
	for _, r := range routes {
		for _, h := range r.Hops {
			// A buffer on an unbuffered bridge is not in BufferIDs; count it
			// anyway so callers can detect the inconsistency, except "".
			rates[h.Buffer] += r.Flow.Rate
		}
	}
	return rates, nil
}
