package arch

import (
	"fmt"
	"sort"
)

// Hop is one leg of a packet's journey: the packet waits in Buffer until the
// arbiter of Bus grants it, then occupies Bus for one exponential service.
type Hop struct {
	Buffer string // buffer the packet waits in before this leg
	Bus    string // bus that carries this leg
	// NextBuffer is where the packet lands after this leg: a bridge buffer
	// ID, or "" when this leg delivers to the destination processor.
	NextBuffer string
}

// Route is the fixed path of one flow: source egress buffer, zero or more
// bridge buffers, destination.
type Route struct {
	Flow Flow
	Hops []Hop
}

// Routes computes the route of every flow. Routing is shortest-path over the
// bus graph (edges = bridges, regardless of Buffered state — buffering
// changes the analysis, not the path), with the source processor free to use
// whichever of its attachments gives the shortest path to whichever of the
// destination's attachment buses. Ties break toward lexicographically
// smaller bus IDs so routing is deterministic.
func (a *Architecture) Routes() ([]Route, error) {
	g := a.busGraph()
	routes := make([]Route, 0, len(a.Flows))
	for i, f := range a.Flows {
		src, ok := a.ProcessorByID(f.From)
		if !ok {
			return nil, fmt.Errorf("%w: flow %d: unknown source %q", ErrInvalid, i, f.From)
		}
		dst, ok := a.ProcessorByID(f.To)
		if !ok {
			return nil, fmt.Errorf("%w: flow %d: unknown destination %q", ErrInvalid, i, f.To)
		}
		best, err := g.bestBusPath(src, dst)
		if err != nil {
			return nil, fmt.Errorf("%w: flow %d (%q→%q): %v", ErrInvalid, i, f.From, f.To, err)
		}
		hops := make([]Hop, 0, len(best.buses))
		buffer := AttachmentBufferID(f.From, best.buses[0])
		for h := 0; h < len(best.buses); h++ {
			next := ""
			if h < len(best.buses)-1 {
				next = BridgeBufferID(best.bridges[h], best.buses[h])
			}
			hops = append(hops, Hop{Buffer: buffer, Bus: best.buses[h], NextBuffer: next})
			buffer = next
		}
		routes = append(routes, Route{Flow: f, Hops: hops})
	}
	return routes, nil
}

type busEdge struct {
	to     int32  // neighbour bus index
	bridge string // bridge crossed
}

// busGraph is the index-addressed bus topology Routes searches: bus IDs
// resolved to dense indices, adjacency in deterministic (ID, bridge) order,
// and reusable BFS scratch (stamped visited marks and parent pointers) so a
// whole Routes pass allocates per flow only the route it returns.
type busGraph struct {
	ids []string
	idx map[string]int

	adj [][]busEdge

	// BFS scratch, reused across searches. seen and dstSeen use stamps
	// instead of clears: a slot holds the property in the current search iff
	// its entry equals the current stamp.
	stamp        int32
	seen         []int32 // visited mark, stamped per start
	dstSeen      []int32 // destination mark, stamped per flow
	parent       []int32 // discovering bus index, -1 for the start
	parentBridge []string
	queue        []int32
}

func (a *Architecture) busGraph() *busGraph {
	n := len(a.Buses)
	g := &busGraph{
		ids:          make([]string, 0, n),
		idx:          make(map[string]int, n),
		adj:          make([][]busEdge, n),
		seen:         make([]int32, n),
		dstSeen:      make([]int32, n),
		parent:       make([]int32, n),
		parentBridge: make([]string, n),
		queue:        make([]int32, 0, n),
	}
	for _, b := range a.Buses {
		g.ids = append(g.ids, b.ID)
	}
	sort.Strings(g.ids)
	for i, id := range g.ids {
		g.idx[id] = i
	}
	for _, br := range a.Bridges {
		ai, bi := g.idx[br.BusA], g.idx[br.BusB]
		g.adj[ai] = append(g.adj[ai], busEdge{to: int32(bi), bridge: br.ID})
		g.adj[bi] = append(g.adj[bi], busEdge{to: int32(ai), bridge: br.ID})
	}
	// Deterministic neighbour order: by neighbour ID, then bridge ID.
	for _, es := range g.adj {
		sort.Slice(es, func(i, j int) bool {
			if es[i].to != es[j].to {
				return g.ids[es[i].to] < g.ids[es[j].to]
			}
			return es[i].bridge < es[j].bridge
		})
	}
	return g
}

type busPath struct {
	buses   []string // buses traversed, in order
	bridges []string // bridges crossed; len = len(buses)-1
}

// bestBusPath finds the shortest bridge path from any of src's buses to any
// of dst's buses via BFS with parent pointers (paths materialise once, for
// the winning terminal only — never per frontier node).
func (g *busGraph) bestBusPath(src, dst *Processor) (*busPath, error) {
	g.stamp++
	dstStamp := g.stamp
	for _, b := range dst.Buses {
		g.dstSeen[g.idx[b]] = dstStamp
	}
	// Deterministic start order.
	starts := append([]string(nil), src.Buses...)
	sort.Strings(starts)

	var best *busPath
	bestLen := -1
	for _, start := range starts {
		g.stamp++
		stamp := g.stamp
		si := int32(g.idx[start])
		g.seen[si] = stamp
		g.parent[si] = -1
		g.queue = append(g.queue[:0], si)
		found := int32(-1)
		if g.dstSeen[si] == dstStamp {
			found = si
		}
		for qi := 0; found < 0 && qi < len(g.queue); qi++ {
			cur := g.queue[qi]
			for _, e := range g.adj[cur] {
				if g.seen[e.to] == stamp {
					continue
				}
				g.seen[e.to] = stamp
				g.parent[e.to] = cur
				g.parentBridge[e.to] = e.bridge
				g.queue = append(g.queue, e.to)
				if g.dstSeen[e.to] == dstStamp {
					found = e.to
					break // BFS: first hit from this start is its shortest
				}
			}
		}
		if found < 0 {
			continue
		}
		depth := 1
		for v := found; g.parent[v] >= 0; v = g.parent[v] {
			depth++
		}
		if best != nil && depth >= bestLen {
			continue
		}
		p := &busPath{buses: make([]string, depth), bridges: make([]string, depth-1)}
		for v, h := found, depth-1; ; v, h = g.parent[v], h-1 {
			p.buses[h] = g.ids[v]
			if g.parent[v] < 0 {
				break
			}
			p.bridges[h-1] = g.parentBridge[v]
		}
		best, bestLen = p, depth
	}
	if best == nil {
		return nil, fmt.Errorf("no bus path from %q to %q", src.ID, dst.ID)
	}
	return best, nil
}

// BusClients returns, for every bus, the sorted buffer IDs the bus arbiter
// serves: egress buffers of attached processors that actually carry traffic
// on that bus, and bridge buffers that drain onto the bus. This is the
// client set of the per-bus CTMDP.
func (a *Architecture) BusClients() (map[string][]string, error) {
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}
	set := make(map[string]map[string]bool, len(a.Buses))
	for _, b := range a.Buses {
		set[b.ID] = map[string]bool{}
	}
	for _, r := range routes {
		for _, h := range r.Hops {
			set[h.Bus][h.Buffer] = true
		}
	}
	out := make(map[string][]string, len(set))
	for bus, m := range set {
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		out[bus] = ids
	}
	return out, nil
}

// BufferArrivalRates returns the total offered rate into every buffer,
// assuming no upstream loss (the "raw" rates used to seed the boundary
// fixed-point iteration and the proportional sizing baseline).
func (a *Architecture) BufferArrivalRates() (map[string]float64, error) {
	routes, err := a.Routes()
	if err != nil {
		return nil, err
	}
	rates := map[string]float64{}
	for _, id := range a.BufferIDs() {
		rates[id] = 0
	}
	for _, r := range routes {
		for _, h := range r.Hops {
			// A buffer on an unbuffered bridge is not in BufferIDs; count it
			// anyway so callers can detect the inconsistency, except "".
			rates[h.Buffer] += r.Flow.Rate
		}
	}
	return rates, nil
}
