package arch

import (
	"fmt"
	"sort"
	"strings"
)

// Allocation assigns a capacity (in buffer units; one unit holds one packet)
// to every buffer of an architecture. It is the decision variable of the
// sizing problem.
type Allocation map[string]int

// Total returns the number of units allocated.
func (al Allocation) Total() int {
	var t int
	for _, v := range al {
		t += v
	}
	return t
}

// Clone returns a deep copy.
func (al Allocation) Clone() Allocation {
	out := make(Allocation, len(al))
	for k, v := range al {
		out[k] = v
	}
	return out
}

// Validate checks that the allocation covers exactly the architecture's
// buffers, every capacity is at least 1 (a zero-capacity buffer would lose
// all traffic by construction and is always a configuration error in this
// methodology), and the total does not exceed budget (budget 0 disables the
// check).
func (al Allocation) Validate(a *Architecture, budget int) error {
	want := a.BufferIDs()
	if len(al) != len(want) {
		return fmt.Errorf("arch: allocation covers %d buffers, architecture has %d", len(al), len(want))
	}
	for _, id := range want {
		c, ok := al[id]
		if !ok {
			return fmt.Errorf("arch: allocation missing buffer %q", id)
		}
		if c < 1 {
			return fmt.Errorf("arch: buffer %q allocated %d units (minimum 1)", id, c)
		}
	}
	if budget > 0 && al.Total() > budget {
		return fmt.Errorf("arch: allocation total %d exceeds budget %d", al.Total(), budget)
	}
	return nil
}

// String renders the allocation sorted by buffer ID.
func (al Allocation) String() string {
	ids := make([]string, 0, len(al))
	for id := range al {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sb strings.Builder
	for i, id := range ids {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%d", id, al[id])
	}
	return sb.String()
}

// UniformAllocation splits budget equally over all buffers (the paper's
// "constant buffer sizing policy", the pre-sizing baseline). Every buffer
// gets at least one unit; the remainder after equal division goes one unit
// at a time to buffers in sorted-ID order, so the result is deterministic and
// exhausts the budget when budget >= #buffers.
func UniformAllocation(a *Architecture, budget int) (Allocation, error) {
	ids := a.BufferIDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: no buffers to allocate", ErrInvalid)
	}
	if budget < len(ids) {
		return nil, fmt.Errorf("arch: budget %d below one unit per buffer (%d buffers)", budget, len(ids))
	}
	base := budget / len(ids)
	rem := budget % len(ids)
	al := make(Allocation, len(ids))
	for i, id := range ids {
		c := base
		if i < rem {
			c++
		}
		al[id] = c
	}
	return al, nil
}

// ProportionalAllocation splits budget in proportion to each buffer's offered
// traffic rate ("simple division of the space depending on traffic ratios",
// which the paper compares against). Every buffer keeps a floor of one unit.
func ProportionalAllocation(a *Architecture, budget int) (Allocation, error) {
	ids := a.BufferIDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: no buffers to allocate", ErrInvalid)
	}
	if budget < len(ids) {
		return nil, fmt.Errorf("arch: budget %d below one unit per buffer (%d buffers)", budget, len(ids))
	}
	rates, err := a.BufferArrivalRates()
	if err != nil {
		return nil, err
	}
	var total float64
	for _, id := range ids {
		total += rates[id]
	}
	al := make(Allocation, len(ids))
	remaining := budget - len(ids) // after the 1-unit floors
	if total <= 0 {
		return UniformAllocation(a, budget)
	}
	// Largest-remainder apportionment of the non-floor units.
	type share struct {
		id   string
		frac float64
	}
	shares := make([]share, 0, len(ids))
	used := 0
	for _, id := range ids {
		exact := float64(remaining) * rates[id] / total
		whole := int(exact)
		al[id] = 1 + whole
		used += whole
		shares = append(shares, share{id: id, frac: exact - float64(whole)})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].frac != shares[j].frac {
			return shares[i].frac > shares[j].frac
		}
		return shares[i].id < shares[j].id
	})
	for i := 0; i < remaining-used; i++ {
		al[shares[i%len(shares)].id]++
	}
	return al, nil
}
