package arch

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON codec lets the CLIs consume user-defined architectures instead of
// only the built-in presets. The wire format mirrors the in-memory structs:
//
//	{
//	  "name": "mychip",
//	  "buses":      [{"id": "ahb1", "serviceRate": 5}, ...],
//	  "processors": [{"id": "cpu", "buses": ["ahb1"]}, ...],
//	  "bridges":    [{"id": "br", "busA": "ahb1", "busB": "ahb2"}, ...],
//	  "flows":      [{"from": "cpu", "to": "dsp", "rate": 1.2}, ...]
//	}

type jsonArch struct {
	Name       string          `json:"name"`
	Buses      []jsonBus       `json:"buses"`
	Processors []jsonProcessor `json:"processors"`
	Bridges    []jsonBridge    `json:"bridges"`
	Flows      []jsonFlow      `json:"flows"`
}

type jsonBus struct {
	ID          string  `json:"id"`
	ServiceRate float64 `json:"serviceRate"`
}

type jsonProcessor struct {
	ID    string   `json:"id"`
	Buses []string `json:"buses"`
}

type jsonBridge struct {
	ID       string `json:"id"`
	BusA     string `json:"busA"`
	BusB     string `json:"busB"`
	Buffered bool   `json:"buffered,omitempty"`
}

type jsonFlow struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Rate float64 `json:"rate"`
}

// ReadJSON decodes and validates an architecture.
func ReadJSON(r io.Reader) (*Architecture, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var ja jsonArch
	if err := dec.Decode(&ja); err != nil {
		return nil, fmt.Errorf("arch: decoding JSON: %w", err)
	}
	a := &Architecture{Name: ja.Name}
	for _, b := range ja.Buses {
		a.Buses = append(a.Buses, Bus{ID: b.ID, ServiceRate: b.ServiceRate})
	}
	for _, p := range ja.Processors {
		a.Processors = append(a.Processors, Processor{ID: p.ID, Buses: p.Buses})
	}
	for _, br := range ja.Bridges {
		a.Bridges = append(a.Bridges, Bridge{ID: br.ID, BusA: br.BusA, BusB: br.BusB, Buffered: br.Buffered})
	}
	for _, f := range ja.Flows {
		a.Flows = append(a.Flows, Flow{From: f.From, To: f.To, Rate: f.Rate})
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// WriteJSON encodes the architecture (indented, stable field order).
func (a *Architecture) WriteJSON(w io.Writer) error {
	ja := jsonArch{Name: a.Name}
	for _, b := range a.Buses {
		ja.Buses = append(ja.Buses, jsonBus{ID: b.ID, ServiceRate: b.ServiceRate})
	}
	for _, p := range a.Processors {
		ja.Processors = append(ja.Processors, jsonProcessor{ID: p.ID, Buses: p.Buses})
	}
	for _, br := range a.Bridges {
		ja.Bridges = append(ja.Bridges, jsonBridge{ID: br.ID, BusA: br.BusA, BusB: br.BusB, Buffered: br.Buffered})
	}
	for _, f := range a.Flows {
		ja.Flows = append(ja.Flows, jsonFlow{From: f.From, To: f.To, Rate: f.Rate})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ja)
}
