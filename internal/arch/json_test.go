package arch

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, src := range []*Architecture{Figure1(), TwoBusAMBA(), NetworkProcessor()} {
		var buf bytes.Buffer
		if err := src.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		if back.Name != src.Name || len(back.Buses) != len(src.Buses) ||
			len(back.Processors) != len(src.Processors) ||
			len(back.Bridges) != len(src.Bridges) || len(back.Flows) != len(src.Flows) {
			t.Fatalf("%s: round trip changed shape", src.Name)
		}
		for i := range src.Flows {
			if back.Flows[i] != src.Flows[i] {
				t.Fatalf("%s: flow %d changed: %+v vs %+v", src.Name, i, back.Flows[i], src.Flows[i])
			}
		}
		for i := range src.Bridges {
			if back.Bridges[i] != src.Bridges[i] {
				t.Fatalf("%s: bridge %d changed", src.Name, i)
			}
		}
	}
}

func TestJSONBufferedFlagSurvives(t *testing.T) {
	src := Figure1()
	src.InsertBridgeBuffers()
	var buf bytes.Buffer
	if err := src.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range back.Bridges {
		if !br.Buffered {
			t.Fatalf("bridge %s lost its buffered flag", br.ID)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{not json",
		"unknown field": `{"name":"x","nonsense":1}`,
		"fails validation": `{"name":"x","buses":[{"id":"b","serviceRate":0}],
			"processors":[],"bridges":[],"flows":[]}`,
		"unroutable": `{"name":"x",
			"buses":[{"id":"b1","serviceRate":1},{"id":"b2","serviceRate":1}],
			"processors":[{"id":"p","buses":["b1"]},{"id":"q","buses":["b2"]}],
			"bridges":[],
			"flows":[{"from":"p","to":"q","rate":1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadJSONMinimalValid(t *testing.T) {
	in := `{"name":"mini",
		"buses":[{"id":"b","serviceRate":2}],
		"processors":[{"id":"p","buses":["b"]},{"id":"q","buses":["b"]}],
		"flows":[{"from":"p","to":"q","rate":0.5}]}`
	a, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "mini" || len(a.Buses) != 1 {
		t.Fatalf("decoded %+v", a)
	}
}
