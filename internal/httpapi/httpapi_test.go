package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"socbuf/internal/engine"
	"socbuf/internal/experiments"
	"socbuf/internal/placement"
)

// fastSolveBody is a sub-second twobus methodology request shared by the
// endpoint tests.
const fastSolveBody = `{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`

func startServer(t *testing.T, cfg engine.Config, defaultCache bool) (*engine.Engine, *httptest.Server) {
	t.Helper()
	eng := engine.New(cfg)
	ts := httptest.NewServer(NewServer(eng, defaultCache).Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return eng, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEndpoint(t *testing.T) {
	_, ts := startServer(t, engine.Config{}, false)
	resp := postJSON(t, ts.URL+"/v1/solve", fastSolveBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var res engine.SolveResult
	decodeBody(t, resp, &res)
	if res.Scenario != "twobus" || res.Iterations != 1 || res.Subsystems == 0 {
		t.Fatalf("result shape: %+v", res)
	}
	if res.UniformLoss <= 0 || len(res.Alloc) == 0 {
		t.Fatalf("result empty: %+v", res)
	}
	var total int
	for _, a := range res.Alloc {
		total += a.Sized
	}
	if total != res.Budget {
		t.Fatalf("sized allocation sums to %d, want budget %d", total, res.Budget)
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	_, ts := startServer(t, engine.Config{}, false)
	cases := []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"scenario":"no-such"}`, http.StatusBadRequest},
		{`{"arch":"twobus"}`, http.StatusBadRequest},               // missing budget
		{`{"scenario":"twobus","bogus":1}`, http.StatusBadRequest}, // unknown field
		{fastSolveBody + `{"again":true}`, http.StatusBadRequest},  // trailing data
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/solve", c.body)
		var e map[string]string
		decodeBody(t, resp, &e)
		if resp.StatusCode != c.want || e["error"] == "" {
			t.Fatalf("body %q: status %d (error %q), want %d with an error message", c.body, resp.StatusCode, e["error"], c.want)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := startServer(t, engine.Config{}, true)
	postJSON(t, ts.URL+"/v1/solve", fastSolveBody).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st engine.Stats
	decodeBody(t, resp, &st)
	if st.Requests < 1 || st.SolveRuns < 1 {
		t.Fatalf("stats did not count the solve: %+v", st)
	}
	// defaultCache=true: the solve went through the cache.
	if st.Cache.Misses == 0 {
		t.Fatalf("cache untouched despite default-cache: %+v", st.Cache)
	}
}

// TestStatsPerBackendCounters: /v1/stats breaks methodology runs down per
// solver backend — solves, cache hits and mean wall time — keyed by the
// canonical method name. One exact (default) solve, one analytic solve and
// an analytic re-solve through the default cache must show up under their
// backends, with the analytic tier's cache hit attributed to the analytic
// backend.
func TestStatsPerBackendCounters(t *testing.T) {
	_, ts := startServer(t, engine.Config{}, true)
	postJSON(t, ts.URL+"/v1/solve", fastSolveBody).Body.Close()
	analyticBody := `{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50,"method":"analytic"}`
	postJSON(t, ts.URL+"/v1/solve", analyticBody).Body.Close()
	// Identical analytic request again: no coalescing window (the first is
	// long gone), so it re-runs and hits the analytic cache tier.
	postJSON(t, ts.URL+"/v1/solve", analyticBody).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st engine.Stats
	decodeBody(t, resp, &st)
	ex, ok := st.Backends["exact"]
	if !ok || ex.Solves != 1 {
		t.Fatalf("exact backend counters missing or wrong: %+v", st.Backends)
	}
	an, ok := st.Backends["analytic"]
	if !ok || an.Solves != 2 {
		t.Fatalf("analytic backend counters missing or wrong: %+v", st.Backends)
	}
	if an.CacheHits == 0 || st.Cache.AnalyticHits == 0 {
		t.Fatalf("analytic re-solve did not hit the analytic cache tier: backends=%+v cache=%+v",
			st.Backends, st.Cache)
	}
	if ex.MeanWallMS <= 0 {
		t.Fatalf("exact mean wall time not recorded: %+v", ex)
	}
	if _, ok := st.Backends["hybrid"]; ok {
		t.Fatalf("hybrid backend counted without running: %+v", st.Backends)
	}
}

// TestSolveMethodRoundTrip: the request's method reaches the backend and is
// echoed in the result; unknown methods are 400s carrying the repo-wide
// uniform message.
func TestSolveMethodRoundTrip(t *testing.T) {
	_, ts := startServer(t, engine.Config{}, false)
	resp := postJSON(t, ts.URL+"/v1/solve",
		`{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50,"method":"analytic"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res engine.SolveResult
	decodeBody(t, resp, &res)
	if res.Method != "analytic" {
		t.Fatalf("result method %q, want analytic", res.Method)
	}

	resp = postJSON(t, ts.URL+"/v1/solve", `{"scenario":"twobus","method":"bogus"}`)
	var e map[string]string
	decodeBody(t, resp, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown method: status %d, want 400", resp.StatusCode)
	}
	want := `unknown method "bogus" (valid methods: analytic | exact | hybrid | robust)`
	if !strings.Contains(e["error"], want) {
		t.Fatalf("error %q does not carry the uniform message %q", e["error"], want)
	}
}

// ndjsonLines splits a streaming response into its decoded lines.
func ndjsonLines(t *testing.T, resp *http.Response) []map[string]json.RawMessage {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	var out []map[string]json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBudgetSweepEndpointStreamsNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, ts := startServer(t, engine.Config{}, false)
	resp := postJSON(t, ts.URL+"/v1/sweep/budget",
		`{"arch":"twobus","budgets":[24,30],"iterations":1,"seeds":[1],"horizon":400,"warmUp":50,"useCache":true}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := ndjsonLines(t, resp)
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 2 points + 1 summary: %v", len(lines), lines)
	}
	seen := map[int]bool{}
	for _, l := range lines[:2] {
		var row experiments.BudgetRow
		if err := json.Unmarshal(l["point"], &row); err != nil {
			t.Fatalf("point line: %v", err)
		}
		if row.Error != "" || row.UniformLoss <= 0 {
			t.Fatalf("point row out of shape: %+v", row)
		}
		seen[row.Budget] = true
	}
	if !seen[24] || !seen[30] {
		t.Fatalf("streamed budgets %v, want 24 and 30", seen)
	}
	var sum budgetSummary
	if err := json.Unmarshal(lines[2]["summary"], &sum); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if sum.Arch == "" || len(sum.Points) != 2 || sum.Error != "" {
		t.Fatalf("summary out of shape: %+v", sum)
	}
	if sum.Plan == nil || sum.Plan.UniqueStructural == 0 {
		t.Fatalf("cached sweep lost its plan: %+v", sum.Plan)
	}
}

func TestBudgetSweepEndpointBadRequest(t *testing.T) {
	_, ts := startServer(t, engine.Config{}, false)
	resp := postJSON(t, ts.URL+"/v1/sweep/budget", `{"arch":"twobus"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty budgets: status %d, want 400", resp.StatusCode)
	}
}

func TestScenarioSweepEndpointStreamsNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, ts := startServer(t, engine.Config{}, false)
	resp := postJSON(t, ts.URL+"/v1/sweep/scenario",
		`{"scenarios":["twobus"],"budget":48,"iterations":1,"seeds":[1],"horizon":400}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := ndjsonLines(t, resp)
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 1 point + 1 summary: %v", len(lines), lines)
	}
	var row experiments.ScenarioRow
	if err := json.Unmarshal(lines[0]["point"], &row); err != nil {
		t.Fatal(err)
	}
	if row.Name != "twobus" || row.Budget != 48 || row.Error != "" {
		t.Fatalf("point row out of shape: %+v", row)
	}
	var sum scenarioSummary
	if err := json.Unmarshal(lines[1]["summary"], &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Points) != 1 || sum.Error != "" {
		t.Fatalf("summary out of shape: %+v", sum)
	}
}

// TestPlacementEndpointStreamsNDJSON: /v1/placement streams one eval line
// per solver evaluation and closes with the typed summary; a repeat request
// under the default cache streams only a cached summary.
func TestPlacementEndpointStreamsNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, ts := startServer(t, engine.Config{}, true)
	body := `{"scenario":"twobus","method":"analytic","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`
	resp := postJSON(t, ts.URL+"/v1/placement", body)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	lines := ndjsonLines(t, resp)
	if len(lines) < 2 {
		t.Fatalf("lines = %d, want at least 1 eval + 1 summary: %v", len(lines), lines)
	}
	for _, l := range lines[:len(lines)-1] {
		var pt placement.Point
		if err := json.Unmarshal(l["eval"], &pt); err != nil {
			t.Fatalf("eval line: %v", err)
		}
		if len(pt.Decisions) == 0 {
			t.Fatalf("eval without decisions: %+v", pt)
		}
	}
	var sum engine.PlacementResult
	if err := json.Unmarshal(lines[len(lines)-1]["summary"], &sum); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if sum.Scenario != "twobus" || len(sum.Frontier) == 0 || sum.Cached {
		t.Fatalf("summary out of shape: %+v", sum)
	}
	if len(lines)-1 != len(sum.Frontier) {
		t.Fatalf("streamed %d evals for a %d-point frontier", len(lines)-1, len(sum.Frontier))
	}

	// Same request again: served from the placement tier, no eval lines.
	resp = postJSON(t, ts.URL+"/v1/placement", body)
	lines = ndjsonLines(t, resp)
	if len(lines) != 1 {
		t.Fatalf("cached hit streamed %d lines, want summary only", len(lines))
	}
	var cached engine.PlacementResult
	if err := json.Unmarshal(lines[0]["summary"], &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatalf("repeat request not served from the cache: %+v", cached)
	}
}

func TestPlacementEndpointBadRequest(t *testing.T) {
	_, ts := startServer(t, engine.Config{}, false)
	for _, body := range []string{
		`{"scenario":"no-such"}`,
		`{"arch":"twobus"}`, // missing budget
		`{"scenario":"twobus","method":"bogus"}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/placement", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestSolveCoalescingHTTP is the service-level coalescing gate: concurrent
// identical /v1/solve requests are served by exactly one underlying solve.
// The leader's run takes seconds while follower dispatch is in-process
// microseconds, so the followers reliably land inside the leader's flight;
// the deterministic (hook-gated) variant lives in internal/engine.
func TestSolveCoalescingHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const followers = 7
	eng, ts := startServer(t, engine.Config{}, false)
	// netproc at iterations 1 runs for seconds — a wide coalescing window.
	body := `{"scenario":"netproc","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`

	type outcome struct {
		status int
		res    engine.SolveResult
	}
	results := make(chan outcome, followers+1)
	run := func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			results <- outcome{}
			return
		}
		var res engine.SolveResult
		json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		results <- outcome{resp.StatusCode, res}
	}
	go run() // leader
	waitFor(t, "leader in flight", func() bool { return eng.Stats().InFlight == 1 })
	for i := 0; i < followers; i++ {
		go run()
	}

	var first *engine.SolveResult
	for i := 0; i < followers+1; i++ {
		out := <-results
		if out.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, out.status)
		}
		if first == nil {
			first = &out.res
		} else if out.res.SizedLoss != first.SizedLoss || out.res.UniformLoss != first.UniformLoss {
			t.Fatalf("coalesced responses diverge: %+v vs %+v", out.res, first)
		}
	}
	if s := eng.Stats(); s.SolveRuns != 1 || s.Coalesced != followers {
		t.Fatalf("stats = %+v, want exactly 1 solve run and %d coalesced", s, followers)
	}
}

// TestServerShutdownCancelsInFlightSweep is the drain gate, run under -race
// in CI: engine shutdown cancels an in-flight streaming sweep, the HTTP
// response completes, and no goroutines are leaked.
func TestServerShutdownCancelsInFlightSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := runtime.NumGoroutine()
	eng := engine.New(engine.Config{})
	ts := httptest.NewServer(NewServer(eng, false).Handler())

	budgets := make([]string, 50)
	for i := range budgets {
		budgets[i] = fmt.Sprint(24 + i)
	}
	body := `{"arch":"twobus","budgets":[` + strings.Join(budgets, ",") +
		`],"iterations":1,"seeds":[1],"horizon":400,"warmUp":50,"workers":1}`
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep/budget", "application/json", strings.NewReader(body))
		if err != nil {
			done <- err
			return
		}
		// Drain the stream to its end: the server must terminate it.
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- err
	}()
	waitFor(t, "sweep in flight", func() bool { return eng.Stats().InFlight == 1 })

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Shutdown(sctx); err != nil {
		t.Fatalf("engine shutdown did not drain: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("client stream ended badly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep response did not complete after shutdown")
	}

	// The drained engine rejects new work with backpressure while the
	// listener is still up.
	resp := postJSON(t, ts.URL+"/v1/solve", fastSolveBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d, want 503", resp.StatusCode)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	// Everything the request spawned must unwind.
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
}

// TestDrainedSolveReturns503: a solve cancelled mid-flight by engine
// shutdown is backpressure (503 + Retry-After), not a 500 — draining is
// retryable against the next instance.
func TestDrainedSolveReturns503(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng, ts := startServer(t, engine.Config{}, false)
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
			strings.NewReader(`{"scenario":"netproc","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`))
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- resp
	}()
	waitFor(t, "solve in flight", func() bool { return eng.Stats().InFlight == 1 })

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	resp := <-done
	if resp == nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained solve: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drained solve: 503 without Retry-After")
	}
}

// TestBusyBackpressure: with max-inflight 1, a second concurrent request
// gets 503 + Retry-After while the first is running.
func TestBusyBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng, ts := startServer(t, engine.Config{MaxInFlight: 1}, false)
	occupant := make(chan struct{})
	go func() {
		defer close(occupant)
		postJSON(t, ts.URL+"/v1/solve", `{"scenario":"netproc","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`).Body.Close()
	}()
	waitFor(t, "occupant in flight", func() bool { return eng.Stats().InFlight == 1 })

	resp := postJSON(t, ts.URL+"/v1/solve", fastSolveBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	<-occupant
	if s := eng.Stats(); s.Busy != 1 {
		t.Fatalf("busy counter = %d, want 1", s.Busy)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHealthAndReadiness pins the fleet-signal endpoints: liveness always
// answers while the process serves, readiness flips with SetReady — the
// drain path marks a backend unready before its listener stops.
func TestHealthAndReadiness(t *testing.T) {
	eng := engine.New(engine.Config{})
	srv := NewServer(eng, false)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})

	get := func(path string) (int, map[string]string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	if code, m := get("/v1/healthz"); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, m)
	}
	if code, m := get("/v1/readyz"); code != http.StatusOK || m["status"] != "ready" {
		t.Fatalf("readyz: %d %v", code, m)
	}

	srv.SetReady(false)
	if code, m := get("/v1/readyz"); code != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("draining readyz: %d %v", code, m)
	}
	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz without Retry-After")
	}
	// Liveness is unaffected by draining; solve admission is the engine's
	// business, not readiness's.
	if code, _ := get("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz during drain: %d", code)
	}

	srv.SetReady(true)
	if code, _ := get("/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after re-ready: %d", code)
	}
}
