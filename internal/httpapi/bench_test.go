package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"socbuf/internal/engine"
)

// BenchmarkServerSolveThroughput measures end-to-end /v1/solve requests/sec
// on a warm cache at 1, 8 and 32 concurrent clients — the coalesced/cached
// steady state a long-running socbufd serves (PERFORMANCE.md records the
// numbers). The cache is primed before timing, so the benchmark isolates
// service-path cost (HTTP + coalescing + cache rebinding) from cold solve
// cost; identical concurrent requests additionally coalesce, which is
// exactly the production shape for a hot query.
func BenchmarkServerSolveThroughput(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("c%d", clients), func(b *testing.B) {
			benchServerSolve(b, clients)
		})
	}
	// Cold reference: cache off and every request unique (distinct seed), so
	// neither coalescing nor the cache can help — the per-request cost a
	// cold engine pays, for the coalesced-vs-cold comparison in
	// PERFORMANCE.md.
	b.Run("c1-cold", func(b *testing.B) {
		eng := engine.New(engine.Config{})
		ts := httptest.NewServer(NewServer(eng, false).Handler())
		defer func() {
			ts.Close()
			eng.Close()
		}()
		do := func(i int) {
			body := fmt.Sprintf(`{"scenario":"twobus","iterations":1,"seeds":[%d],"horizon":400,"warmUp":50}`, i+1)
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			defer resp.Body.Close()
			var res engine.SolveResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d, decode %v", resp.StatusCode, err)
			}
			if res.UniformLoss <= 0 {
				b.Fatalf("result out of shape: %+v", res)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do(i)
		}
	})
}

func benchServerSolve(b *testing.B, clients int) {
	eng := engine.New(engine.Config{})
	ts := httptest.NewServer(NewServer(eng, true).Handler())
	defer func() {
		ts.Close()
		eng.Close()
	}()
	const body = `{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`

	do := func() engine.SolveResult {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			b.Error(err)
			return engine.SolveResult{}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Errorf("status %d", resp.StatusCode)
			return engine.SolveResult{}
		}
		var res engine.SolveResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			b.Error(err)
		}
		return res
	}
	// Prime the cache (and assert the result's shape, per the PERFORMANCE.md
	// convention: a broken pipeline must not post a fast number).
	warm := do()
	if warm.UniformLoss <= 0 || len(warm.Alloc) == 0 {
		b.Fatalf("warm-up result out of shape: %+v", warm)
	}

	b.ResetTimer()
	work := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				do()
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	b.StopTimer()

	s := eng.Stats()
	b.ReportMetric(float64(s.Coalesced), "coalesced")
	b.ReportMetric(float64(s.SolveRuns), "solve-runs")
}
