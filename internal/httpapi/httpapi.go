// Package httpapi is socbufd's HTTP face, factored out of the binary so the
// router (cmd/socbufrouter) and the fleet tests can host real backends
// in-process. It adapts the engine's typed API to HTTP: the handlers only
// decode requests, map errors to status codes, and stream rows — all solve
// composition lives in internal/engine.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"socbuf/internal/engine"
	"socbuf/internal/experiments"
	"socbuf/internal/placement"
)

// Server adapts one engine to the socbufd HTTP API. Create with NewServer.
type Server struct {
	eng *engine.Engine
	// defaultCache routes every request through the engine's shared solve
	// cache unless the client opted in itself — the service's steady-state
	// configuration (cache-backed concurrency).
	defaultCache bool
	// ready is the drain-aware readiness bit behind GET /v1/readyz: true from
	// construction until SetReady(false), which the shutdown path flips
	// BEFORE stopping admission so ring health checks route around a
	// draining backend ahead of its first 503.
	ready atomic.Bool
}

// NewServer wraps eng. defaultCache routes every request through the shared
// solve cache unless the client opted in itself.
func NewServer(eng *engine.Engine, defaultCache bool) *Server {
	s := &Server{eng: eng, defaultCache: defaultCache}
	s.ready.Store(true)
	return s
}

// SetReady flips the readiness bit served by GET /v1/readyz. Liveness
// (/v1/healthz) is unaffected — a draining process is alive but unready.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// Handler builds the socbufd route table:
//
//	POST /v1/solve          one methodology run (coalesced)    → JSON SolveResult
//	POST /v1/sweep/budget   budget sweep                       → NDJSON rows + summary
//	POST /v1/sweep/scenario scenario sweep                     → NDJSON rows + summary
//	POST /v1/placement      buffer-placement run               → NDJSON evals + summary
//	GET  /v1/stats          engine + cache counters            → JSON engine.Stats
//	GET  /v1/healthz        liveness (always 200 while serving)
//	GET  /v1/readyz         drain-aware readiness (503 once draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.solve)
	mux.HandleFunc("POST /v1/sweep/budget", s.budgetSweep)
	mux.HandleFunc("POST /v1/sweep/scenario", s.scenarioSweep)
	mux.HandleFunc("POST /v1/placement", s.placement)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /v1/healthz", s.healthz)
	mux.HandleFunc("GET /v1/readyz", s.readyz)
	return mux
}

// healthz is liveness: the process is up and serving HTTP.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// readyz is drain-aware readiness: 200 while the backend accepts work, 503 +
// Retry-After once SetReady(false) marked it draining. The router's ring
// health checks poll this.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

func (s *Server) solve(w http.ResponseWriter, r *http.Request) {
	var req engine.SolveRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.UseCache = req.UseCache || s.defaultCache
	res, err := s.eng.Solve(r.Context(), req)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	writeJSON(w, res)
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.eng.Stats())
}

// planJSON is the wire shape of a sweep plan summary (SweepPlan itself holds
// error values and unexported state, so it is mapped, not marshalled).
type planJSON struct {
	Points           int `json:"points"`
	Models           int `json:"models"`
	UniqueExact      int `json:"uniqueExact"`
	UniqueStructural int `json:"uniqueStructural"`
}

// budgetSummary is the trailing NDJSON line of /v1/sweep/budget.
type budgetSummary struct {
	Arch   string                  `json:"arch"`
	Points []experiments.BudgetRow `json:"points"`
	Plan   *planJSON               `json:"plan,omitempty"`
	Error  string                  `json:"error,omitempty"`
}

func (s *Server) budgetSweep(w http.ResponseWriter, r *http.Request) {
	var req engine.BudgetSweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.UseCache = req.UseCache || s.defaultCache

	st := newStream(w)
	req.OnRow = func(row experiments.BudgetRow) {
		st.send(struct {
			Point experiments.BudgetRow `json:"point"`
		}{row})
	}
	res, err := s.eng.BudgetSweep(r.Context(), req)
	if res == nil {
		st.fail(s, w, r, err)
		return
	}
	sum := budgetSummary{Arch: res.ArchName, Points: res.Sweep.Rows()}
	if res.Plan != nil {
		sum.Plan = &planJSON{
			Points:           len(res.Plan.Budgets),
			Models:           res.Plan.Models,
			UniqueExact:      res.Plan.UniqueExact,
			UniqueStructural: res.Plan.UniqueStructural,
		}
	}
	if err != nil {
		sum.Error = err.Error()
	}
	st.send(struct {
		Summary budgetSummary `json:"summary"`
	}{sum})
}

// scenarioSummary is the trailing NDJSON line of /v1/sweep/scenario.
type scenarioSummary struct {
	Points []experiments.ScenarioRow `json:"points"`
	Error  string                    `json:"error,omitempty"`
}

func (s *Server) scenarioSweep(w http.ResponseWriter, r *http.Request) {
	var req engine.ScenarioSweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.UseCache = req.UseCache || s.defaultCache

	st := newStream(w)
	req.OnRow = func(row experiments.ScenarioRow) {
		st.send(struct {
			Point experiments.ScenarioRow `json:"point"`
		}{row})
	}
	res, err := s.eng.ScenarioSweep(r.Context(), req)
	if res == nil {
		st.fail(s, w, r, err)
		return
	}
	sum := scenarioSummary{Points: res.Sweep.Rows()}
	if err != nil {
		sum.Error = err.Error()
	}
	st.send(struct {
		Summary scenarioSummary `json:"summary"`
	}{sum})
}

// placement runs one buffer-placement request, streaming every per-placement
// solver evaluation as it completes (the same NDJSON machinery as the
// sweeps) and closing with the full typed result. A request served from the
// cache's placement tier streams no eval lines — only the summary, with its
// cached flag set.
func (s *Server) placement(w http.ResponseWriter, r *http.Request) {
	var req engine.PlacementRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req.UseCache = req.UseCache || s.defaultCache

	st := newStream(w)
	req.OnEval = func(p placement.Point) {
		st.send(struct {
			Eval placement.Point `json:"eval"`
		}{p})
	}
	res, err := s.eng.Placement(r.Context(), req)
	if res == nil {
		st.fail(s, w, r, err)
		return
	}
	st.send(struct {
		Summary *engine.PlacementResult `json:"summary"`
	}{res})
}

// stream serialises NDJSON lines from concurrent sweep workers and flushes
// each row so clients see points as they complete. The Content-Type header
// is set lazily on the first line, which keeps the error path free to send a
// plain status code when the sweep dies before producing anything.
type stream struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	enc     *json.Encoder
	started bool
}

func newStream(w http.ResponseWriter) *stream {
	f, _ := w.(http.Flusher)
	return &stream{w: w, flusher: f, enc: json.NewEncoder(w)}
}

func (st *stream) send(v any) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.started {
		st.w.Header().Set("Content-Type", "application/x-ndjson")
		st.started = true
	}
	// A client that disconnected mid-sweep makes Encode fail; the request
	// context is already cancelled, so just stop emitting.
	if err := st.enc.Encode(v); err != nil {
		return
	}
	if st.flusher != nil {
		st.flusher.Flush()
	}
}

// fail reports a sweep that produced no result: as a plain HTTP error when
// nothing has been streamed yet, as a final error line otherwise (the status
// code is gone once rows went out).
func (st *stream) fail(s *Server, w http.ResponseWriter, r *http.Request, err error) {
	st.mu.Lock()
	started := st.started
	st.mu.Unlock()
	if !started {
		s.writeEngineError(w, r, err)
		return
	}
	st.send(map[string]string{"error": err.Error()})
}

// writeEngineError maps engine errors onto status codes: invalid requests
// are the client's fault (400); an over-capacity or shutting-down engine is
// backpressure (503 + Retry-After) — including a request cancelled
// mid-flight by the drain, whose error is a wrapped context.Canceled rather
// than ErrClosed; a request whose own context died means the client is gone
// (no response will be read); anything else is a server-side solve failure
// (500).
func (s *Server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, engine.ErrInvalidRequest):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, engine.ErrBusy), errors.Is(err, engine.ErrClosed),
		errors.Is(err, context.Canceled), r.Context().Err() != nil:
		// Backpressure (busy, closed, drain-cancelled) — retryable — or a
		// disconnected client that will never read the response.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

// maxRequestBody bounds request bodies (8 MiB — far above any realistic
// inline architecture) so an oversized POST cannot balloon server memory
// before validation ever runs.
const maxRequestBody = 8 << 20

// decodeJSON strictly decodes one size-capped JSON document (unknown fields
// and trailing garbage rejected).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data")
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a failed write means the client is gone
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
