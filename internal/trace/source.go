// Package trace generates the stochastic traffic that drives the simulator:
// Poisson streams (the paper's model), ON/OFF bursty sources (a 2-state
// Markov-modulated Poisson process used in robustness ablations) and
// deterministic replay for tests.
//
// A Source produces successive inter-arrival times. Sources may carry
// internal state between Next calls — OnOff tracks its modulating chain's
// phase, Replay its position — so a Source instance must drive exactly one
// simulation at a time and must not be shared across concurrent runs (the
// methodology's core.SourceFactory builds fresh instances per seed for
// this reason). Determinism still holds: a fresh Source and a *rand.Rand
// with a fixed seed reproduce the same gap sequence on every run.
package trace

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrExhausted is returned by replay sources that run out of samples.
var ErrExhausted = errors.New("trace: replay source exhausted")

// Source emits successive inter-arrival times (strictly positive).
//
// Implementations may be stateful (see the package comment): callers that
// run simulations concurrently must give each run its own instance.
type Source interface {
	// Next returns the time until the next arrival. All randomness must come
	// from rng so equal seeds reproduce equal gap sequences.
	Next(rng *rand.Rand) (float64, error)
	// Rate returns the long-run average arrival rate.
	Rate() float64
}

// Poisson is a homogeneous Poisson process: exponential inter-arrivals.
type Poisson struct {
	Lambda float64
}

// NewPoisson validates the rate.
func NewPoisson(lambda float64) (*Poisson, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("trace: poisson rate %v must be positive", lambda)
	}
	return &Poisson{Lambda: lambda}, nil
}

// Next draws Exp(λ).
func (p *Poisson) Next(rng *rand.Rand) (float64, error) {
	return rng.ExpFloat64() / p.Lambda, nil
}

// Rate returns λ.
func (p *Poisson) Rate() float64 { return p.Lambda }

// OnOff is a 2-state Markov-modulated Poisson process: while ON it emits at
// rate LambdaOn; while OFF it emits nothing. Sojourn times in each state are
// exponential. Burstiness grows as the ON rate concentrates the same average
// load into shorter windows.
//
// OnOff is stateful: the modulating chain's phase (on, residual) persists
// between Next calls. One instance drives one simulation; concurrent runs
// need fresh instances.
type OnOff struct {
	LambdaOn float64 // emission rate while ON
	OnRate   float64 // OFF→ON transition rate
	OffRate  float64 // ON→OFF transition rate

	on        bool
	residual  float64 // time left in the current state
	initState bool
}

// NewOnOff validates parameters.
func NewOnOff(lambdaOn, onRate, offRate float64) (*OnOff, error) {
	if lambdaOn <= 0 || onRate <= 0 || offRate <= 0 {
		return nil, fmt.Errorf("trace: on/off parameters must be positive (λon=%v on=%v off=%v)",
			lambdaOn, onRate, offRate)
	}
	return &OnOff{LambdaOn: lambdaOn, OnRate: onRate, OffRate: offRate}, nil
}

// Rate returns the long-run average rate λon·π(ON).
func (s *OnOff) Rate() float64 {
	pOn := s.OnRate / (s.OnRate + s.OffRate)
	return s.LambdaOn * pOn
}

// Next simulates the modulating chain until the next emission.
func (s *OnOff) Next(rng *rand.Rand) (float64, error) {
	if !s.initState {
		// Start in the stationary state distribution.
		s.on = rng.Float64() < s.OnRate/(s.OnRate+s.OffRate)
		if s.on {
			s.residual = rng.ExpFloat64() / s.OffRate
		} else {
			s.residual = rng.ExpFloat64() / s.OnRate
		}
		s.initState = true
	}
	var elapsed float64
	for {
		if s.on {
			gap := rng.ExpFloat64() / s.LambdaOn
			if gap < s.residual {
				s.residual -= gap
				return elapsed + gap, nil
			}
			elapsed += s.residual
			s.on = false
			s.residual = rng.ExpFloat64() / s.OnRate
		} else {
			elapsed += s.residual
			s.on = true
			s.residual = rng.ExpFloat64() / s.OffRate
		}
	}
}

// Replay replays a fixed list of inter-arrival times; tests use it to script
// exact scenarios.
type Replay struct {
	Gaps []float64
	pos  int
	rate float64
}

// NewReplay validates that all gaps are positive and precomputes the rate.
func NewReplay(gaps []float64) (*Replay, error) {
	if len(gaps) == 0 {
		return nil, errors.New("trace: empty replay")
	}
	var total float64
	for i, g := range gaps {
		if g <= 0 {
			return nil, fmt.Errorf("trace: replay gap %d = %v must be positive", i, g)
		}
		total += g
	}
	return &Replay{Gaps: gaps, rate: float64(len(gaps)) / total}, nil
}

// Next returns the next scripted gap.
func (r *Replay) Next(*rand.Rand) (float64, error) {
	if r.pos >= len(r.Gaps) {
		return 0, ErrExhausted
	}
	g := r.Gaps[r.pos]
	r.pos++
	return g, nil
}

// Rate returns the empirical rate of the scripted gaps.
func (r *Replay) Rate() float64 { return r.rate }
