package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewPoisson(-1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestPoissonEmpiricalRate(t *testing.T) {
	p, err := NewPoisson(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var total float64
	n := 200000
	for i := 0; i < n; i++ {
		g, err := p.Next(rng)
		if err != nil {
			t.Fatal(err)
		}
		if g <= 0 {
			t.Fatal("non-positive gap")
		}
		total += g
	}
	emp := float64(n) / total
	if math.Abs(emp-4) > 0.05 {
		t.Fatalf("empirical rate = %v, want ≈ 4", emp)
	}
	if p.Rate() != 4 {
		t.Fatalf("Rate() = %v", p.Rate())
	}
}

func TestOnOffValidation(t *testing.T) {
	bad := [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}}
	for _, b := range bad {
		if _, err := NewOnOff(b[0], b[1], b[2]); err == nil {
			t.Fatalf("accepted %v", b)
		}
	}
}

func TestOnOffEmpiricalRate(t *testing.T) {
	// λon=6, π(ON)=onRate/(onRate+offRate)=2/(2+4)=1/3 ⇒ rate 2.
	s, err := NewOnOff(6, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-2) > 1e-12 {
		t.Fatalf("Rate() = %v, want 2", s.Rate())
	}
	rng := rand.New(rand.NewSource(7))
	var total float64
	n := 100000
	for i := 0; i < n; i++ {
		g, err := s.Next(rng)
		if err != nil {
			t.Fatal(err)
		}
		total += g
	}
	emp := float64(n) / total
	if math.Abs(emp-2) > 0.1 {
		t.Fatalf("empirical rate = %v, want ≈ 2", emp)
	}
}

func TestOnOffIsBurstierThanPoisson(t *testing.T) {
	// Squared coefficient of variation of inter-arrival times: Poisson has
	// ~1, a strongly modulated ON/OFF source must exceed it.
	rng := rand.New(rand.NewSource(11))
	s, err := NewOnOff(20, 0.5, 9.5) // rate 1, very bursty
	if err != nil {
		t.Fatal(err)
	}
	n := 60000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		g, err := s.Next(rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += g
		sumsq += g * g
	}
	mean := sum / float64(n)
	varr := sumsq/float64(n) - mean*mean
	scv := varr / (mean * mean)
	if scv < 1.5 {
		t.Fatalf("ON/OFF SCV = %v, expected clearly > 1 (bursty)", scv)
	}
}

func TestReplay(t *testing.T) {
	r, err := NewReplay([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Rate()-0.5) > 1e-12 {
		t.Fatalf("Rate = %v, want 0.5", r.Rate())
	}
	for i, want := range []float64{1, 2, 3} {
		g, err := r.Next(nil)
		if err != nil {
			t.Fatalf("gap %d: %v", i, err)
		}
		if g != want {
			t.Fatalf("gap %d = %v, want %v", i, g, want)
		}
	}
	if _, err := r.Next(nil); err != ErrExhausted {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty replay accepted")
	}
	if _, err := NewReplay([]float64{1, 0}); err == nil {
		t.Fatal("zero gap accepted")
	}
}

// Property: Poisson gaps are always positive and the running mean converges
// near 1/λ for random λ.
func TestPoissonMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := 0.5 + rng.Float64()*8
		p, err := NewPoisson(lambda)
		if err != nil {
			return false
		}
		var total float64
		n := 20000
		for i := 0; i < n; i++ {
			g, err := p.Next(rng)
			if err != nil || g <= 0 {
				return false
			}
			total += g
		}
		mean := total / float64(n)
		return math.Abs(mean-1/lambda) < 0.1/lambda
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Two identically-seeded OnOff runs must produce identical gap sequences:
// the source's internal chain state is itself a deterministic function of
// the rng draws, so determinism survives the statefulness.
func TestOnOffDeterministicGapSequence(t *testing.T) {
	gaps := func(seed int64) []float64 {
		s, err := NewOnOff(5, 0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		out := make([]float64, 0, 5000)
		for i := 0; i < 5000; i++ {
			g, err := s.Next(rng)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, g)
		}
		return out
	}
	a, b := gaps(42), gaps(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must give a different sequence (sanity that the test
	// would catch a source ignoring its rng).
	c := gaps(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical gap sequences")
	}
}

// A shared OnOff instance diverges from two fresh ones: the second user
// inherits the first's chain phase. This pins down why SourceFactory must
// build per-run instances.
func TestOnOffStatePersistsAcrossRuns(t *testing.T) {
	fresh := func() []float64 {
		s, err := NewOnOff(5, 0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		out := make([]float64, 0, 100)
		for i := 0; i < 100; i++ {
			g, err := s.Next(rng)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, g)
		}
		return out
	}
	first := fresh()

	shared, err := NewOnOff(5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	warm := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		if _, err := shared.Next(warm); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	diverged := false
	for i := 0; i < 100; i++ {
		g, err := shared.Next(rng)
		if err != nil {
			t.Fatal(err)
		}
		if g != first[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("a warmed-up shared source replayed the fresh sequence — statefulness contract changed?")
	}
}
