package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"socbuf/internal/engine"
	"socbuf/internal/httpapi"
	"socbuf/internal/solvecache"
)

// fastSolveBody mirrors the httpapi tests' sub-second twobus request.
const fastSolveBody = `{"scenario":"twobus","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`

// seededBody varies only the simulation seed: distinct request fingerprints
// (so the ring may spread them) over identical sub-model content (so the
// shared remote tier can answer across shards).
func seededBody(seed int) string {
	return fmt.Sprintf(`{"scenario":"twobus","iterations":1,"seeds":[%d],"horizon":400,"warmUp":50}`, seed)
}

// fleet is one in-process fleet: n httpapi-hosted engines behind a Router,
// with the background health loop disabled — tests drive RefreshHealth
// deterministically.
type fleet struct {
	rt       *Router
	front    *httptest.Server
	engines  []*engine.Engine
	apis     []*httpapi.Server
	backends []*httptest.Server
}

func startFleet(t *testing.T, n int, cfg engine.Config, opts Options) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		eng := engine.New(cfg)
		api := httpapi.NewServer(eng, true)
		ts := httptest.NewServer(api.Handler())
		f.engines = append(f.engines, eng)
		f.apis = append(f.apis, api)
		f.backends = append(f.backends, ts)
		opts.Backends = append(opts.Backends, ts.URL)
	}
	opts.HealthInterval = -1
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		f.front.Close()
		rt.Close()
		for i := range f.backends {
			f.backends[i].Close()
			f.engines[i].Close()
		}
	})
	return f
}

// shardFor computes which backend index the router's ring assigns to body —
// the white-box view the affinity tests assert against.
func (f *fleet) shardFor(body string) int {
	key := fingerprintAs[engine.SolveRequest]([]byte(body))
	return f.rt.ring.pick(key, func(int) bool { return true })
}

func (f *fleet) postSolve(t *testing.T, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(f.front.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRingDeterministicBalancedStable pins the three ring properties the
// fleet depends on: every router instance computes the same assignment, keys
// spread across all members, and removing one member moves only its own keys.
func TestRingDeterministicBalancedStable(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r1 := newRing(addrs, 64)
	r2 := newRing(addrs, 64)
	all := func(int) bool { return true }
	counts := make([]int, len(addrs))
	picks := make([]int, 1000)
	for i := range picks {
		key := fmt.Sprintf("key-%d", i)
		picks[i] = r1.pick(key, all)
		if got := r2.pick(key, all); got != picks[i] {
			t.Fatalf("key %d: rings disagree (%d vs %d)", i, picks[i], got)
		}
		counts[picks[i]]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Errorf("backend %d owns no keys: %v", b, counts)
		}
	}
	// Dropping backend 2 must not move any key owned by the survivors.
	without2 := func(i int) bool { return i != 2 }
	for i := range picks {
		got := r1.pick(fmt.Sprintf("key-%d", i), without2)
		if picks[i] != 2 && got != picks[i] {
			t.Fatalf("key %d moved from %d to %d when backend 2 left", i, picks[i], got)
		}
		if picks[i] == 2 && got == 2 {
			t.Fatalf("key %d still routed to the removed backend", i)
		}
	}
	if r1.pick("anything", func(int) bool { return false }) != -1 {
		t.Error("pick with no healthy backends must return -1")
	}
}

// TestRouterAffinity pins fingerprint routing: repeats of one request land on
// one shard, and normalisation-equal bodies share that shard.
func TestRouterAffinity(t *testing.T) {
	f := startFleet(t, 3, engine.Config{}, Options{})
	for i := 0; i < 3; i++ {
		resp := f.postSolve(t, fastSolveBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, resp.StatusCode)
		}
	}
	var used []int
	for i, b := range f.rt.backends {
		if n := b.routed.Load(); n > 0 {
			used = append(used, i)
			if n != 3 {
				t.Errorf("backend %d routed %d, want 3", i, n)
			}
		}
	}
	if len(used) != 1 {
		t.Fatalf("identical requests spread over shards %v, want exactly one", used)
	}

	// The default preset and the worker bound normalise away, so these route
	// together — the whole point of fingerprint (not byte) affinity.
	a := fingerprintAs[engine.SolveRequest]([]byte(`{"budget":160}`))
	b := fingerprintAs[engine.SolveRequest]([]byte(`{"arch":"netproc","budget":160,"workers":7}`))
	if a != b {
		t.Error("normalisation-equal bodies must share a fingerprint")
	}
	// An undecodable body still routes deterministically (content hash).
	g1 := fingerprintAs[engine.SolveRequest]([]byte(`{not json`))
	g2 := fingerprintAs[engine.SolveRequest]([]byte(`{not json`))
	if g1 != g2 {
		t.Error("garbage bodies must route deterministically")
	}
}

// TestRouterCoalescingGate is the ISSUE's scale-out acceptance gate: N
// concurrent identical requests through the router produce exactly one
// backend solve run — sharding by the coalescing fingerprint keeps the
// engine-level singleflight intact across a fleet.
func TestRouterCoalescingGate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const followers = 5
	f := startFleet(t, 2, engine.Config{}, Options{})
	// netproc at iterations 1 runs for seconds — a wide coalescing window.
	body := `{"scenario":"netproc","iterations":1,"seeds":[1],"horizon":400,"warmUp":50}`

	statuses := make(chan int, followers+1)
	run := func() {
		resp, err := http.Post(f.front.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			statuses <- 0
			return
		}
		resp.Body.Close()
		statuses <- resp.StatusCode
	}
	go run() // leader
	waitFor(t, "leader in flight", func() bool {
		for _, e := range f.engines {
			if e.Stats().InFlight == 1 {
				return true
			}
		}
		return false
	})
	for i := 0; i < followers; i++ {
		go run()
	}
	for i := 0; i < followers+1; i++ {
		if got := <-statuses; got != http.StatusOK {
			t.Fatalf("request %d: status %d", i, got)
		}
	}
	var runs, coalesced int64
	for _, e := range f.engines {
		s := e.Stats()
		runs += s.SolveRuns
		coalesced += s.Coalesced
	}
	if runs != 1 || coalesced != followers {
		t.Fatalf("fleet ran %d solves (%d coalesced), want exactly 1 run and %d coalesced", runs, coalesced, followers)
	}
}

// TestRouterFailover pins the retry path: a request whose home shard is dead
// is replayed on the next ring member, transparently to the client.
func TestRouterFailover(t *testing.T) {
	f := startFleet(t, 2, engine.Config{}, Options{})
	// Find a body homed on the shard we are about to kill.
	const dead = 0
	seed := -1
	for s := 1; s <= 64; s++ {
		if f.shardFor(seededBody(s)) == dead {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed in 1..64 homes on shard 0 — ring badly unbalanced")
	}
	f.backends[dead].Close()

	resp := f.postSolve(t, seededBody(seed))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover solve: status %d", resp.StatusCode)
	}
	if f.rt.backends[dead].healthy.Load() {
		t.Error("dead shard still marked healthy after a failed proxy")
	}
	if got := f.rt.failovers.Load(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	if got := f.engines[1-dead].Stats().SolveRuns; got != 1 {
		t.Errorf("surviving shard ran %d solves, want 1", got)
	}
	// The fleet is still ready on one shard.
	r2, err := http.Get(f.front.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("readyz with one live shard: status %d", r2.StatusCode)
	}
}

// TestRouterDrainAwareHealth pins the readiness plumbing end to end: a
// draining backend (SetReady(false), listener still up) leaves the ring on
// the next poll, and a fleet with no ready shards answers 503 + Retry-After.
func TestRouterDrainAwareHealth(t *testing.T) {
	f := startFleet(t, 2, engine.Config{}, Options{})
	ctx := context.Background()

	f.apis[0].SetReady(false)
	f.rt.RefreshHealth(ctx)
	if f.rt.backends[0].healthy.Load() {
		t.Fatal("draining backend still in the ring after a health pass")
	}
	if !f.rt.backends[1].healthy.Load() {
		t.Fatal("healthy backend dropped from the ring")
	}
	// Requests homed on the draining shard reroute.
	resp := f.postSolve(t, fastSolveBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve during drain: status %d", resp.StatusCode)
	}
	if got := f.engines[1].Stats().SolveRuns; got != 1 {
		t.Errorf("ready shard ran %d solves, want 1", got)
	}

	f.apis[1].SetReady(false)
	f.rt.RefreshHealth(ctx)
	resp = f.postSolve(t, fastSolveBody)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("solve with no ready shards: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}
	r2, err := http.Get(f.front.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("fleet readyz: status %d, want 503", r2.StatusCode)
	}

	// Un-drain restores the ring.
	f.apis[0].SetReady(true)
	f.apis[1].SetReady(true)
	f.rt.RefreshHealth(ctx)
	resp = f.postSolve(t, fastSolveBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after un-drain: status %d", resp.StatusCode)
	}
}

// TestRouterErrorPassthrough pins that shard-owned answers relay verbatim: a
// 400 for a bad body, a 503 + Retry-After for engine backpressure.
func TestRouterErrorPassthrough(t *testing.T) {
	f := startFleet(t, 2, engine.Config{}, Options{})
	resp := f.postSolve(t, `{"scenario":"no-such"}`)
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || e["error"] == "" {
		t.Fatalf("bad body: status %d error %q, want 400 with message", resp.StatusCode, e["error"])
	}
	// Both shards healthy: the bad request must not have tripped failover.
	if got := f.rt.failovers.Load(); got != 0 {
		t.Errorf("failovers = %d after a 400, want 0", got)
	}
}

// TestFleetStats pins the aggregation endpoint: per-shard snapshots plus
// fleet sums recomputed from them.
func TestFleetStats(t *testing.T) {
	f := startFleet(t, 2, engine.Config{}, Options{})
	const n = 3
	for s := 1; s <= n; s++ {
		resp := f.postSolve(t, seededBody(s))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve seed %d: status %d", s, resp.StatusCode)
		}
	}
	resp, err := http.Get(f.front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var fs FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fs.Backends != 2 || fs.Ready != 2 {
		t.Fatalf("fleet shape: %d backends, %d ready", fs.Backends, fs.Ready)
	}
	var requests, routed int64
	for _, ss := range fs.Shards {
		if ss.Stats == nil {
			t.Fatalf("shard %s: no stats (%s)", ss.Backend, ss.Error)
		}
		requests += ss.Stats.Requests
		routed += ss.Routed
	}
	if requests != n || fs.Fleet.Requests != n || routed != n {
		t.Fatalf("request accounting: shards %d, fleet %d, routed %d, want %d each", requests, fs.Fleet.Requests, routed, n)
	}
	if fs.Fleet.Cache.Entries == 0 {
		t.Error("fleet cache entry sum must reflect the solves")
	}
	if fs.Fleet.CacheRates == nil {
		t.Error("fleet stats must recompute cache rates from the summed counters")
	}
}

// TestCrossShardRemoteCacheHit is the shared-tier gate: two requests with
// distinct fingerprints homed on distinct shards still share sub-model
// solutions through the fleet's remote store — the second shard's solve is
// all remote adoptions, zero cold misses.
func TestCrossShardRemoteCacheHit(t *testing.T) {
	shared := solvecache.NewMemStore()
	f := startFleet(t, 2, engine.Config{RemoteCache: shared}, Options{Store: shared})

	first := f.shardFor(seededBody(1))
	other := -1
	for s := 2; s <= 64; s++ {
		if f.shardFor(seededBody(s)) != first {
			other = s
			break
		}
	}
	if other < 0 {
		t.Fatal("seeds 2..64 all home on one shard — ring badly unbalanced")
	}

	resp := f.postSolve(t, seededBody(1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first solve: status %d", resp.StatusCode)
	}
	if shared.Len() == 0 {
		t.Fatal("first shard's solve did not populate the shared store")
	}
	resp = f.postSolve(t, seededBody(other))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second solve: status %d", resp.StatusCode)
	}

	second := f.shardFor(seededBody(other))
	s := f.engines[second].Stats()
	if s.Cache.RemoteHits == 0 {
		t.Errorf("second shard adopted no remote payloads: %+v", s.Cache)
	}
	if s.Cache.Misses != 0 {
		t.Errorf("second shard re-solved %d sub-models its peer had published", s.Cache.Misses)
	}
}

// TestRouterServesSharedCacheTier pins that the router's /v1/cache endpoint
// speaks the StoreHandler protocol a RemoteStore-attached shard consumes.
func TestRouterServesSharedCacheTier(t *testing.T) {
	f := startFleet(t, 1, engine.Config{}, Options{})
	remote := solvecache.NewRemoteStore(f.front.URL+"/v1/cache", solvecache.RemoteOptions{})
	defer remote.Close()

	key := solvecache.Key{1, 2, 3}
	if _, ok := remote.Get(context.Background(), key); ok {
		t.Fatal("empty store must miss")
	}
	remote.Put(context.Background(), key, []byte(`{"tier":"probe","data":"42"}`))
	waitFor(t, "write-behind put", func() bool {
		_, ok := remote.Get(context.Background(), key)
		return ok
	})
	got, ok := remote.Get(context.Background(), key)
	if !ok || string(got) != `{"tier":"probe","data":"42"}` {
		t.Fatalf("round-trip through the router cache tier: %q (ok %v)", got, ok)
	}
}

// TestRouterOptionValidation pins constructor errors.
func TestRouterOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no backends must fail")
	}
	if _, err := New(Options{Backends: []string{"not-a-url"}}); err == nil {
		t.Error("relative backend URL must fail")
	}
	if _, err := New(Options{Backends: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Error("duplicate backends must fail")
	}
	if _, err := New(Options{Backends: []string{"http://a:1"}, Replicas: -3}); err == nil {
		t.Error("negative replicas must fail")
	}
}
