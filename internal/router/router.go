package router

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"socbuf/internal/engine"
	"socbuf/internal/solvecache"
)

// maxRequestBody mirrors httpapi's bound: the router buffers each solve body
// (it must, to fingerprint it and to retry on a dead shard), so it enforces
// the same cap the backends do rather than a larger one.
const maxRequestBody = 8 << 20

// Options configures a Router. Zero values get the documented defaults.
type Options struct {
	// Backends are the socbufd base URLs ("http://host:port") forming the
	// ring. At least one is required.
	Backends []string
	// Replicas is the number of virtual nodes per backend (default 64 —
	// enough that a 2–8 shard fleet's key shares stay within a few percent
	// of even).
	Replicas int
	// HealthInterval is the period of the background /v1/readyz poll
	// (default 2s; negative disables the loop — proxy errors still mark
	// backends unhealthy, but nothing restores them, so only tests that
	// drive RefreshHealth themselves should disable it).
	HealthInterval time.Duration
	// Client issues the proxied and health-check requests (default: a
	// client with no overall timeout — sweeps stream for minutes — relying
	// on the inbound request's context for cancellation).
	Client *http.Client
	// Store is the shared solve-cache tier served under /v1/cache/ (nil =
	// a fresh in-memory store). Backends attach to it with -remote-cache
	// pointing at the router.
	Store solvecache.Store
}

// backend is one ring member: its base URL, the health bit the ring walk
// consults, and the requests routed to it.
type backend struct {
	base    string
	healthy atomic.Bool
	routed  atomic.Int64
}

// Router shards the socbufd solve endpoints across a fleet by normalised
// request fingerprint (DESIGN.md §10). Identical-fingerprint requests land on
// one shard, so the engine-level coalescing and cache locality that make the
// single-process service fast survive scale-out; the shared store under
// /v1/cache/ then lets distinct shards adopt each other's sub-model solutions
// for the overlap that fingerprint affinity cannot capture.
type Router struct {
	backends  []*backend
	ring      *ring
	client    *http.Client
	store     solvecache.Store
	interval  time.Duration
	failovers atomic.Int64
	stop      chan struct{}
	stopOnce  sync.Once
}

// New builds a Router over opts.Backends and starts its health loop.
// Backends start healthy (the fleet usually comes up router-first); the first
// poll or the first failed proxy corrects any that are not.
func New(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	replicas := opts.Replicas
	if replicas == 0 {
		replicas = 64
	}
	if replicas < 1 {
		return nil, fmt.Errorf("router: replicas %d must be positive", opts.Replicas)
	}
	interval := opts.HealthInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	rt := &Router{
		client:   opts.Client,
		store:    opts.Store,
		interval: interval,
		stop:     make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.store == nil {
		rt.store = solvecache.NewMemStore()
	}
	addrs := make([]string, len(opts.Backends))
	seen := map[string]bool{}
	for i, raw := range opts.Backends {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: backend %q is not an absolute URL", raw)
		}
		base := strings.TrimRight(raw, "/")
		if seen[base] {
			return nil, fmt.Errorf("router: duplicate backend %q", base)
		}
		seen[base] = true
		addrs[i] = base
		b := &backend{base: base}
		b.healthy.Store(true)
		rt.backends = append(rt.backends, b)
	}
	rt.ring = newRing(addrs, replicas)
	if interval > 0 {
		go rt.healthLoop()
	}
	return rt, nil
}

// Store exposes the shared cache tier (the same store Handler serves under
// /v1/cache/), so in-process fleets can attach engines to it directly.
func (rt *Router) Store() solvecache.Store { return rt.store }

// Close stops the health loop. It does not touch the backends.
func (rt *Router) Close() { rt.stopOnce.Do(func() { close(rt.stop) }) }

func (rt *Router) healthLoop() {
	t := time.NewTicker(rt.interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), rt.interval)
			rt.RefreshHealth(ctx)
			cancel()
		}
	}
}

// RefreshHealth polls every backend's /v1/readyz once, concurrently, and
// updates the ring's health bits: 200 is ready, anything else — a draining
// 503, a refused connection — takes the backend out of rotation until a later
// poll restores it. The background loop calls this on its interval; tests and
// operators (via a router restart) can force it.
func (rt *Router) RefreshHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/readyz", nil)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			b.healthy.Store(resp.StatusCode == http.StatusOK)
		}(b)
	}
	wg.Wait()
}

// Handler builds the router's route table — the same solve surface as a
// single socbufd, plus the fleet endpoints:
//
//	POST /v1/solve           sharded by SolveRequest fingerprint
//	POST /v1/sweep/budget    sharded by BudgetSweepRequest fingerprint
//	POST /v1/sweep/scenario  sharded by ScenarioSweepRequest fingerprint
//	POST /v1/placement       sharded by PlacementRequest fingerprint
//	GET  /v1/stats           per-shard stats + fleet-wide sums
//	GET  /v1/healthz         router liveness + ring membership
//	GET  /v1/readyz          200 while ≥1 backend is ready
//	*    /v1/cache/{key}     the shared solve-cache tier (StoreHandler)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", rt.proxy(fingerprintAs[engine.SolveRequest]))
	mux.HandleFunc("POST /v1/sweep/budget", rt.proxy(fingerprintAs[engine.BudgetSweepRequest]))
	mux.HandleFunc("POST /v1/sweep/scenario", rt.proxy(fingerprintAs[engine.ScenarioSweepRequest]))
	mux.HandleFunc("POST /v1/placement", rt.proxy(fingerprintAs[engine.PlacementRequest]))
	mux.HandleFunc("GET /v1/stats", rt.stats)
	mux.HandleFunc("GET /v1/healthz", rt.healthz)
	mux.HandleFunc("GET /v1/readyz", rt.readyz)
	mux.Handle("/v1/cache/", http.StripPrefix("/v1/cache", solvecache.StoreHandler(rt.store)))
	return mux
}

// fingerprinter maps a raw request body to its routing key.
type fingerprinter func(body []byte) string

// fingerprintAs decodes body as R and returns its normalised fingerprint —
// the same identity the backend coalesces and caches on, which is the whole
// point of routing by it. The decode here is deliberately lenient (the
// backend owns strict validation): a body the backend would reject still
// routes deterministically, by content hash, and collects its 400 from the
// shard.
func fingerprintAs[R interface{ Fingerprint() string }](body []byte) string {
	var req R
	if err := json.Unmarshal(body, &req); err == nil {
		return req.Fingerprint()
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// proxy buffers the request body, fingerprints it, and forwards it to the
// ring's backend for that key, streaming the response back flush-by-flush
// (the sweeps are NDJSON; rows must reach the client as points complete). A
// backend that cannot be reached is marked unhealthy and the request retries
// on the next ring walk — safe because nothing was forwarded — while an HTTP
// error from a reachable backend (including 503 backpressure with its
// Retry-After) passes through untouched: the shard owns that answer.
func (rt *Router) proxy(fp fingerprinter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
			return
		}
		key := fp(body)
		tried := map[int]bool{}
		for {
			idx := rt.ring.pick(key, func(i int) bool {
				return !tried[i] && rt.backends[i].healthy.Load()
			})
			if idx < 0 {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, errors.New("no ready backends"))
				return
			}
			b := rt.backends[idx]
			if rt.forward(w, r, b, body) {
				return
			}
			// Transport failure before any response byte: the shard is gone.
			// Take it out of rotation and walk on; the health loop restores
			// it when /v1/readyz answers again.
			b.healthy.Store(false)
			tried[idx] = true
			rt.failovers.Add(1)
		}
	}
}

// forward sends body to b and relays the response. It reports false only when
// the backend could not be reached at all (retryable); once any response
// arrives it is relayed verbatim and forward reports true.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, b *backend, body []byte) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.base+r.URL.Path, strings.NewReader(string(body)))
	if err != nil {
		return false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		// A cancelled inbound request also lands here; answering 503 to a
		// client that is gone is harmless, so no special case.
		return r.Context().Err() != nil
	}
	defer resp.Body.Close()
	b.routed.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true // client gone; stop relaying
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return true
		}
	}
}

// ShardStats is one backend's slice of the fleet stats response.
type ShardStats struct {
	Backend string `json:"backend"`
	Healthy bool   `json:"healthy"`
	// Routed counts requests this router relayed to the backend (solves and
	// sweeps; stats fan-outs excluded).
	Routed int64 `json:"routed"`
	// Stats is the backend's own /v1/stats snapshot; nil when the backend
	// could not be reached (Error then says why).
	Stats *engine.Stats `json:"stats,omitempty"`
	Error string        `json:"error,omitempty"`
}

// FleetStats is the router's GET /v1/stats response: the per-shard snapshots
// and their counter sums. Fleet.CacheRates is recomputed from the summed
// cache counters, so it is the fleet-wide rate, not an average of rates.
type FleetStats struct {
	Backends  int          `json:"backends"`
	Ready     int          `json:"ready"`
	Failovers int64        `json:"failovers"`
	Fleet     engine.Stats `json:"fleet"`
	Shards    []ShardStats `json:"shards"`
}

// stats fans GET /v1/stats out to every backend concurrently and aggregates.
// Unreachable backends appear with an error instead of failing the fleet
// response — stats must work mid-incident.
func (rt *Router) stats(w http.ResponseWriter, r *http.Request) {
	out := FleetStats{Backends: len(rt.backends), Failovers: rt.failovers.Load()}
	out.Shards = make([]ShardStats, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ss := ShardStats{Backend: b.base, Healthy: b.healthy.Load(), Routed: b.routed.Load()}
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.base+"/v1/stats", nil)
			if err == nil {
				var resp *http.Response
				if resp, err = rt.client.Do(req); err == nil {
					var es engine.Stats
					if err = json.NewDecoder(resp.Body).Decode(&es); err == nil {
						ss.Stats = &es
					}
					resp.Body.Close()
				}
			}
			if err != nil {
				ss.Error = err.Error()
			}
			out.Shards[i] = ss
		}(i, b)
	}
	wg.Wait()
	for _, ss := range out.Shards {
		if ss.Healthy {
			out.Ready++
		}
		if ss.Stats != nil {
			addStats(&out.Fleet, *ss.Stats)
		}
	}
	out.Fleet.CacheRates = out.Fleet.Cache.Rates()
	writeJSON(w, out)
}

// addStats accumulates one shard's counters into the fleet totals.
// Per-backend MeanWallMS is recombined solve-weighted so the fleet mean is
// the mean over all solves, not an average of shard means.
func addStats(dst *engine.Stats, s engine.Stats) {
	dst.Requests += s.Requests
	dst.Coalesced += s.Coalesced
	dst.SolveRuns += s.SolveRuns
	dst.SweepRuns += s.SweepRuns
	dst.SimRuns += s.SimRuns
	dst.PlacementRuns += s.PlacementRuns
	dst.Batched += s.Batched
	dst.Busy += s.Busy
	dst.InFlight += s.InFlight
	addCacheStats(&dst.Cache, s.Cache)
	for name, bs := range s.Backends {
		if dst.Backends == nil {
			dst.Backends = map[string]engine.BackendStats{}
		}
		acc := dst.Backends[name]
		total := acc.Solves + bs.Solves
		if total > 0 {
			acc.MeanWallMS = (acc.MeanWallMS*float64(acc.Solves) + bs.MeanWallMS*float64(bs.Solves)) / float64(total)
		}
		acc.Solves = total
		acc.CacheHits += bs.CacheHits
		dst.Backends[name] = acc
	}
}

func addCacheStats(dst *solvecache.Stats, s solvecache.Stats) {
	dst.Hits += s.Hits
	dst.WarmStarts += s.WarmStarts
	dst.Misses += s.Misses
	dst.JointHits += s.JointHits
	dst.JointMisses += s.JointMisses
	dst.AnalyticHits += s.AnalyticHits
	dst.AnalyticMisses += s.AnalyticMisses
	dst.RobustHits += s.RobustHits
	dst.RobustMisses += s.RobustMisses
	dst.PlacementHits += s.PlacementHits
	dst.PlacementMisses += s.PlacementMisses
	dst.DeltaResolves += s.DeltaResolves
	dst.DeltaFallbacks += s.DeltaFallbacks
	dst.RemoteHits += s.RemoteHits
	dst.RemoteMisses += s.RemoteMisses
	dst.Entries += s.Entries
	dst.JointEntries += s.JointEntries
	dst.AnalyticEntries += s.AnalyticEntries
	dst.RobustEntries += s.RobustEntries
	dst.PlacementEntries += s.PlacementEntries
	dst.DeltaEntries += s.DeltaEntries
}

// memberJSON is one ring member in the healthz response.
type memberJSON struct {
	Backend string `json:"backend"`
	Healthy bool   `json:"healthy"`
	Routed  int64  `json:"routed"`
}

// healthz is router liveness plus ring membership — the operator's one-stop
// view of which shards the ring currently routes to.
func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	members := make([]memberJSON, len(rt.backends))
	for i, b := range rt.backends {
		members[i] = memberJSON{Backend: b.base, Healthy: b.healthy.Load(), Routed: b.routed.Load()}
	}
	writeJSON(w, struct {
		Status  string       `json:"status"`
		Members []memberJSON `json:"members"`
	}{"ok", members})
}

// readyz reports whether the fleet can serve: 200 while at least one backend
// is in rotation, 503 + Retry-After otherwise.
func (rt *Router) readyz(w http.ResponseWriter, r *http.Request) {
	for _, b := range rt.backends {
		if b.healthy.Load() {
			writeJSON(w, map[string]string{"status": "ready"})
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, errors.New("no ready backends"))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
