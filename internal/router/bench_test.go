package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"socbuf/internal/engine"
	"socbuf/internal/httpapi"
	"socbuf/internal/solvecache"
)

// BenchmarkFleetThroughput measures end-to-end routed /v1/solve requests/sec
// against in-process fleets of 1 and 2 shards, 16 concurrent clients, on a
// warm cache — the steady state a scaled-out socbufd serves. The workload
// cycles over 8 distinct fingerprints so the ring actually spreads it;
// PERFORMANCE.md records the numbers (on a single-core host the 2-shard
// figure measures routing overhead, not parallel speedup — see the caveat
// there). The nightly benchdiff gate watches this benchmark.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, shards := range []int{1, 2} {
		// key=value, not shards-N: benchdiff strips a trailing -N as the
		// GOMAXPROCS suffix, which would collapse the two variants into one
		// trajectory key.
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchFleet(b, shards)
		})
	}
}

func benchFleet(b *testing.B, shards int) {
	shared := solvecache.NewMemStore()
	var (
		engines []*engine.Engine
		servers []*httptest.Server
		addrs   []string
	)
	for i := 0; i < shards; i++ {
		eng := engine.New(engine.Config{RemoteCache: shared})
		ts := httptest.NewServer(httpapi.NewServer(eng, true).Handler())
		engines = append(engines, eng)
		servers = append(servers, ts)
		addrs = append(addrs, ts.URL)
	}
	rt, err := New(Options{Backends: addrs, Store: shared, HealthInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer func() {
		front.Close()
		rt.Close()
		for i := range servers {
			servers[i].Close()
			engines[i].Close()
		}
	}()

	const distinct = 8
	bodies := make([]string, distinct)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"scenario":"twobus","iterations":1,"seeds":[%d],"horizon":400,"warmUp":50}`, i+1)
	}
	do := func(i int) {
		resp, err := http.Post(front.URL+"/v1/solve", "application/json", strings.NewReader(bodies[i%distinct]))
		if err != nil {
			b.Error(err)
			return
		}
		defer resp.Body.Close()
		var res engine.SolveResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil || resp.StatusCode != http.StatusOK {
			b.Errorf("status %d, decode %v", resp.StatusCode, err)
		}
	}
	// Prime every fingerprint so the timed loop measures the warm fleet.
	for i := 0; i < distinct; i++ {
		do(i)
	}

	const clients = 16
	b.ResetTimer()
	var wg sync.WaitGroup
	next := make(chan int)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				do(i)
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
