// Package router is the fleet front of DESIGN.md §10: a consistent-hash
// router that shards socbufd's solve endpoints across N backends by
// normalised request fingerprint, so request coalescing and cache locality —
// both keyed on exactly that fingerprint — survive scale-out. It also hosts
// the fleet's shared solve-cache sidecar (the solvecache.StoreHandler
// protocol under /v1/cache/), aggregates per-shard stats, and health-checks
// ring membership against the backends' drain-aware /v1/readyz.
package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over backend indices: each backend owns
// replicas virtual nodes placed by hashing "addr#i", and a key is served by
// the first virtual node clockwise from the key's own hash. Placement
// depends only on the member addresses, so every router instance fronting
// the same fleet computes the same assignment, and a membership change moves
// only the keys adjacent to the changed backend's virtual nodes — the
// property that keeps cache locality through rolling restarts.
type ring struct {
	vnodes []vnode // sorted by hash
}

type vnode struct {
	hash    uint64
	backend int
}

// newRing places replicas virtual nodes per backend address.
func newRing(addrs []string, replicas int) *ring {
	r := &ring{vnodes: make([]vnode, 0, len(addrs)*replicas)}
	for b, addr := range addrs {
		for i := 0; i < replicas; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", addr, i)), backend: b})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r
}

// hash64 is the ring's placement hash: the first 8 bytes of sha256, matching
// the fingerprints' own hash family so key distribution inherits its
// uniformity.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// pick walks clockwise from key's hash and returns the first backend that
// healthy reports true, or -1 when none does. Skipping unhealthy backends in
// the walk — rather than rebuilding the ring — keeps every healthy backend's
// keys exactly where they were, so a flapping shard disturbs only its own
// share of the key space.
func (r *ring) pick(key string, healthy func(int) bool) int {
	if len(r.vnodes) == 0 {
		return -1
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	seen := map[int]bool{}
	for i := 0; i < len(r.vnodes); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[v.backend] {
			continue
		}
		if healthy(v.backend) {
			return v.backend
		}
		seen[v.backend] = true
	}
	return -1
}
