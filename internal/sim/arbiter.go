package sim

import (
	"math/rand"
)

// ClientView is what an arbiter sees about one client buffer at decision
// time.
type ClientView struct {
	BufferID string
	Len      int     // current queue length
	Cap      int     // allocated capacity
	HeadWait float64 // how long the head packet has waited in this buffer
}

// Arbiter decides which client a bus serves next. Pick receives the views of
// ALL clients (some may be empty) and must return the index of a client with
// Len > 0, or -1 to idle. Returning an invalid index is a programming error
// the simulator reports as such.
type Arbiter interface {
	Pick(clients []ClientView, rng *rand.Rand) int
}

// LongestQueue grants the client with the most queued packets (ties to the
// lowest index, i.e. lexicographically smallest buffer ID). This is the
// simulator's default arbitration and the paper's pre-sizing behaviour.
type LongestQueue struct{}

// Pick implements Arbiter.
func (LongestQueue) Pick(clients []ClientView, _ *rand.Rand) int {
	best, bestLen := -1, 0
	for i, c := range clients {
		if c.Len > bestLen {
			best, bestLen = i, c.Len
		}
	}
	return best
}

// RoundRobin cycles through clients, skipping empty ones.
type RoundRobin struct {
	next int
}

// Pick implements Arbiter.
func (r *RoundRobin) Pick(clients []ClientView, _ *rand.Rand) int {
	n := len(clients)
	for k := 0; k < n; k++ {
		i := (r.next + k) % n
		if clients[i].Len > 0 {
			r.next = i + 1
			return i
		}
	}
	return -1
}

// OldestHead grants the client whose head packet has waited longest
// (global-FCFS approximation).
type OldestHead struct{}

// Pick implements Arbiter.
func (OldestHead) Pick(clients []ClientView, _ *rand.Rand) int {
	best := -1
	bestWait := -1.0
	for i, c := range clients {
		if c.Len > 0 && c.HeadWait > bestWait {
			best, bestWait = i, c.HeadWait
		}
	}
	return best
}

// RandomNonEmpty grants a uniformly random non-empty client; a baseline used
// in ablations.
type RandomNonEmpty struct{}

// Pick implements Arbiter.
func (RandomNonEmpty) Pick(clients []ClientView, rng *rand.Rand) int {
	idx := make([]int, 0, len(clients))
	for i, c := range clients {
		if c.Len > 0 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return -1
	}
	return idx[rng.Intn(len(idx))]
}

// PolicyFunc adapts a function to the Arbiter interface. The CTMDP pipeline
// wraps its optimal (possibly randomised) stationary policy this way: the
// function receives the client views and draws the grant from the policy's
// action distribution at the corresponding quantised state.
type PolicyFunc func(clients []ClientView, rng *rand.Rand) int

// Pick implements Arbiter.
func (f PolicyFunc) Pick(clients []ClientView, rng *rand.Rand) int { return f(clients, rng) }
