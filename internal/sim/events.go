package sim

// eventKind discriminates the two event types of the simulator.
type eventKind int

const (
	evArrival   eventKind = iota // a flow generates a new packet
	evDeparture                  // a bus finishes one transfer
)

// event is a scheduled occurrence. seq breaks time ties deterministically so
// that runs with equal seeds are bit-for-bit reproducible.
type event struct {
	at   float64
	seq  uint64
	kind eventKind
	flow int // evArrival: index into routes
	bus  int // evDeparture: index into buses
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// deliberately does not implement container/heap: that interface boxes every
// pushed element into an interface{} (one heap allocation per scheduled
// event, the busiest call site of the whole simulator); monomorphic push/pop
// over []event keep the event loop allocation-free once the backing array
// has grown to the run's high-water mark.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts e, sifting it up to its heap position.
func (h *eventHeap) push(e event) {
	a := append(*h, e)
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
	*h = a
}

// pop removes and returns the minimum element. Callers must check len first.
func (h *eventHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	// Sift the displaced tail element down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && a.less(r, l) {
			child = r
		}
		if !a.less(child, i) {
			break
		}
		a[i], a[child] = a[child], a[i]
		i = child
	}
	*h = a
	return top
}

// schedule pushes an event, assigning the next sequence number.
func (s *Simulator) schedule(e event) {
	e.seq = s.seq
	s.seq++
	s.events.push(e)
}
