package sim

import "container/heap"

// eventKind discriminates the two event types of the simulator.
type eventKind int

const (
	evArrival   eventKind = iota // a flow generates a new packet
	evDeparture                  // a bus finishes one transfer
)

// event is a scheduled occurrence. seq breaks time ties deterministically so
// that runs with equal seeds are bit-for-bit reproducible.
type event struct {
	at   float64
	seq  uint64
	kind eventKind
	flow int // evArrival: index into routes
	bus  int // evDeparture: index into buses
}

// eventHeap is a binary min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// schedule pushes an event, assigning the next sequence number.
func (s *Simulator) schedule(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}
