package sim

// eventKind discriminates the two event types of the simulator.
type eventKind int32

const (
	evArrival   eventKind = iota // a flow generates a new packet
	evDeparture                  // a bus finishes one transfer
)

// event is a scheduled occurrence. seq breaks time ties deterministically so
// that runs with equal seeds are bit-for-bit reproducible. The struct is
// kept to 24 bytes (kind and idx packed into 32 bits each) because heap
// sifts copy whole events — size is memory traffic on the hottest loop.
type event struct {
	at   float64
	seq  uint64
	kind eventKind
	idx  int32 // evArrival: index into routes; evDeparture: index into buses
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). It
// deliberately does not implement container/heap: that interface boxes every
// pushed element into an interface{} (one heap allocation per scheduled
// event, the busiest call site of the whole simulator); monomorphic push/pop
// over []event keep the event loop allocation-free once the backing array
// has grown to the run's high-water mark. Arity 4 halves the tree depth —
// fewer cache lines touched per sift — and cannot change the pop sequence:
// (at, seq) is a total order, so the minimum is structure-independent.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push inserts e, sifting it up to its heap position. The new element is
// held aside while ancestors shift down (hole sift): one write per level
// instead of a swap.
func (h *eventHeap) push(e event) {
	a := append(*h, e)
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		p := a[parent]
		if p.at < e.at || (p.at == e.at && p.seq < e.seq) {
			break
		}
		a[i] = p
		i = parent
	}
	a[i] = e
	*h = a
}

// pop removes and returns the minimum element. Callers must check len first.
func (h *eventHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	e := a[n]
	a = a[:n]
	// Hole sift: the displaced tail element is held aside while the smaller
	// of up to four children moves up, then written once at its final slot.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		ch := a[c:end:end]
		child := c
		ca, cs := ch[0].at, ch[0].seq
		for k := 1; k < len(ch); k++ {
			if ka, ks := ch[k].at, ch[k].seq; ka < ca || (ka == ca && ks < cs) {
				child, ca, cs = c+k, ka, ks
			}
		}
		if e.at < ca || (e.at == ca && e.seq < cs) {
			break
		}
		a[i] = a[child]
		i = child
	}
	if n > 0 {
		a[i] = e
	}
	*h = a
	return top
}

// schedule pushes an event, assigning the next sequence number.
func (s *Simulator) schedule(e event) {
	e.seq = s.seq
	s.seq++
	s.events.push(e)
}
