package sim

import (
	"testing"

	"socbuf/internal/arch"
)

// TestEventHeapZeroAlloc pins the scheduler primitives at zero allocations
// per event (ISSUE 7's AllocsPerRun gate). The hand-rolled heap exists
// precisely because container/heap boxes every element; a regression here
// re-taxes every simulated packet twice (arrival + departure).
func TestEventHeapZeroAlloc(t *testing.T) {
	h := make(eventHeap, 0, 64)
	seq := uint64(0)
	at := 1.0
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			at = at*1.13 + 0.01
			if at > 100 {
				at -= 100
			}
			h.push(event{at: at, seq: seq, kind: evArrival, idx: int32(i)})
			seq++
		}
		for len(h) > 0 {
			h.pop()
		}
	}); allocs != 0 {
		t.Fatalf("event heap push/pop allocates %.0f objects per cycle, want 0", allocs)
	}
}

// TestDispatchZeroAlloc pins the per-event work of the simulator's hot loop:
// once the event heap and every queue have reached their high-water marks, a
// full arrival-dispatch-departure step must not allocate (the arbitration
// views are per-bus scratch, not per-call slices).
func TestDispatchZeroAlloc(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	alloc, err := arch.UniformAllocation(a, 24)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 1e9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the flows and warm every buffer, bus and the heap's backing
	// array by simulating a few thousand events by hand.
	for i := range s.routes {
		gap, err := s.srcs[i].Next(s.rng)
		if err != nil {
			t.Fatal(err)
		}
		s.schedule(event{at: gap, kind: evArrival, idx: int32(i)})
	}
	step := func() {
		e := s.events.pop()
		s.now = e.at
		var err error
		switch e.kind {
		case evArrival:
			err = s.handleArrival(int(e.idx))
		case evDeparture:
			err = s.handleDeparture(int(e.idx))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5000; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(200, func() {
		step()
	}); allocs != 0 {
		t.Fatalf("event step allocates %.0f objects, want 0", allocs)
	}
}
