package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socbuf/internal/arch"
	"socbuf/internal/queueing"
	"socbuf/internal/trace"
)

// singleQueueArch builds one bus with a src→dst flow so that src@bus is an
// M/M/1/K queue with arrival rate lambda and service rate mu.
func singleQueueArch(lambda, mu float64) *arch.Architecture {
	return &arch.Architecture{
		Name:  "single",
		Buses: []arch.Bus{{ID: "x", ServiceRate: mu}},
		Processors: []arch.Processor{
			{ID: "src", Buses: []string{"x"}},
			{ID: "dst", Buses: []string{"x"}},
		},
		Flows: []arch.Flow{{From: "src", To: "dst", Rate: lambda}},
	}
}

func TestSimMatchesMM1KBlocking(t *testing.T) {
	lambda, mu := 2.0, 3.0
	for _, k := range []int{1, 2, 5} {
		a := singleQueueArch(lambda, mu)
		// Capacity k for the loaded buffer. In this model the packet leaves
		// the buffer when service *starts* (the bus holds it), so buffer cap
		// k gives k waiting slots + 1 in service = M/M/1/(k+1).
		alloc := arch.Allocation{"src@x": k, "dst@x": 1}
		s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 60000, WarmUp: 1000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		q, err := queueing.NewMM1K(lambda, mu, k+1)
		if err != nil {
			t.Fatal(err)
		}
		got := res.LossFraction()
		want := q.Blocking()
		if math.Abs(got-want) > 0.012 {
			t.Fatalf("k=%d: sim loss fraction %v vs analytic %v", k, got, want)
		}
	}
}

func TestSimConservation(t *testing.T) {
	a := arch.Figure1()
	a.InsertBridgeBuffers()
	alloc, err := arch.UniformAllocation(a, 40)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGenerated() == 0 {
		t.Fatal("nothing generated")
	}
	sum := res.TotalDelivered() + res.TotalLost() + res.InFlight
	if sum != res.TotalGenerated() {
		t.Fatalf("conservation broken: gen=%d del=%d lost=%d inflight=%d",
			res.TotalGenerated(), res.TotalDelivered(), res.TotalLost(), res.InFlight)
	}
}

func TestSimDeterministicBySeed(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	alloc, err := arch.UniformAllocation(a, 24)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Results {
		s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 2000, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.TotalGenerated() != r2.TotalGenerated() || r1.TotalLost() != r2.TotalLost() ||
		r1.TotalDelivered() != r2.TotalDelivered() {
		t.Fatalf("same seed, different results: %+v vs %+v", r1, r2)
	}
	for k, v := range r1.Lost {
		if r2.Lost[k] != v {
			t.Fatalf("per-processor loss differs at %s", k)
		}
	}
}

func TestSimDifferentSeedsDiffer(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	alloc, _ := arch.UniformAllocation(a, 24)
	totals := map[int64]int64{}
	for _, seed := range []int64{1, 2, 3} {
		s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 2000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		totals[seed] = res.TotalGenerated()
	}
	if totals[1] == totals[2] && totals[2] == totals[3] {
		t.Fatal("three different seeds produced identical generation counts (suspicious)")
	}
}

func TestSimOverflowScripted(t *testing.T) {
	// Bus so slow it never completes a transfer within the horizon: cap-2
	// buffer accepts 2 packets (one of which moves into service, freeing a
	// slot), so of 5 arrivals 3 queue or serve and 2 overflow... precisely:
	// arrival1 → queue → immediately served (leaves buffer);
	// arrivals 2,3 → occupy the 2 slots; arrivals 4,5 → overflow.
	a := singleQueueArch(1, 1e-12)
	alloc := arch.Allocation{"src@x": 2, "dst@x": 1}
	src, err := trace.NewReplay([]float64{1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Arch: a, Alloc: alloc, Horizon: 100, Seed: 5,
		Sources: map[FlowKey]trace.Source{{From: "src", To: "dst"}: src},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated["src"] != 5 {
		t.Fatalf("generated = %d, want 5", res.Generated["src"])
	}
	if res.Lost["src"] != 2 {
		t.Fatalf("lost = %d, want 2", res.Lost["src"])
	}
	if res.Delivered["src"] != 0 {
		t.Fatalf("delivered = %d, want 0", res.Delivered["src"])
	}
	if res.InFlight != 3 {
		t.Fatalf("in flight = %d, want 3", res.InFlight)
	}
	if res.BufferOverflow["src@x"] != 2 {
		t.Fatalf("buffer overflow = %d", res.BufferOverflow["src@x"])
	}
}

func TestSimTimeoutPolicyDrops(t *testing.T) {
	// Heavily loaded queue with a tiny timeout: many drops must be timeouts.
	a := singleQueueArch(5, 2)
	alloc := arch.Allocation{"src@x": 10, "dst@x": 1}
	s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 2000, Seed: 3, Timeout: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LostTimeout["src"] == 0 {
		t.Fatal("no timeout drops under tiny threshold")
	}
	if res.LostTimeout["src"] > res.Lost["src"] {
		t.Fatal("timeout losses exceed total losses")
	}
	// Conservation still holds with timeouts.
	if res.TotalDelivered()+res.TotalLost()+res.InFlight != res.TotalGenerated() {
		t.Fatal("conservation broken under timeout policy")
	}
}

func TestSimTimeoutDisabledByDefault(t *testing.T) {
	a := singleQueueArch(5, 2)
	alloc := arch.Allocation{"src@x": 10, "dst@x": 1}
	s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LostTimeout["src"] != 0 {
		t.Fatal("timeout drops despite disabled policy")
	}
}

func TestSimCrossBridgeDelivery(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	alloc, _ := arch.UniformAllocation(a, 60)
	s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// cpu→dsp crosses the bridge; with generous buffers nearly everything
	// must be delivered.
	if res.Delivered["cpu"] == 0 {
		t.Fatal("no cross-bridge deliveries")
	}
	if res.LossFraction() > 0.05 {
		t.Fatalf("loss fraction %v too high for generous buffers", res.LossFraction())
	}
	// The bridge buffers must have been used.
	if res.MaxOccupancy["br:ahb1>"] == 0 {
		t.Fatal("bridge buffer ahb1> never occupied")
	}
}

func TestSimMeanOccupancyMatchesMM1K(t *testing.T) {
	lambda, mu, k := 2.0, 3.0, 6
	a := singleQueueArch(lambda, mu)
	alloc := arch.Allocation{"src@x": k, "dst@x": 1}
	s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 60000, WarmUp: 1000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Queue occupancy excludes the in-service packet, so compare to
	// E[N] − E[N in service] = E[N] − (1 − π0) for the M/M/1/(k+1) system.
	q, err := queueing.NewMM1K(lambda, mu, k+1)
	if err != nil {
		t.Fatal(err)
	}
	pi := q.Distribution()
	want := q.MeanQueue() - (1 - pi[0])
	got := res.MeanOccupancy["src@x"]
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("mean occupancy %v vs analytic %v", got, want)
	}
}

func TestSimConfigValidation(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	alloc, _ := arch.UniformAllocation(a, 24)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil arch", Config{Alloc: alloc, Horizon: 10}},
		{"zero horizon", Config{Arch: a, Alloc: alloc}},
		{"warmup >= horizon", Config{Arch: a, Alloc: alloc, Horizon: 10, WarmUp: 10}},
		{"negative warmup", Config{Arch: a, Alloc: alloc, Horizon: 10, WarmUp: -1}},
		{"negative timeout", Config{Arch: a, Alloc: alloc, Horizon: 10, Timeout: -1}},
		{"missing alloc", Config{Arch: a, Horizon: 10}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSimRejectsUnbufferedBridges(t *testing.T) {
	a := arch.TwoBusAMBA() // bridge not buffered
	alloc := arch.Allocation{}
	for _, id := range a.BufferIDs() {
		alloc[id] = 5
	}
	if _, err := New(Config{Arch: a, Alloc: alloc, Horizon: 10}); err == nil {
		t.Fatal("unbuffered bridge accepted")
	}
}

func TestSimRunTwiceFails(t *testing.T) {
	a := singleQueueArch(1, 2)
	alloc := arch.Allocation{"src@x": 2, "dst@x": 1}
	s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestSimInvalidArbiterPick(t *testing.T) {
	a := singleQueueArch(2, 2)
	alloc := arch.Allocation{"src@x": 2, "dst@x": 1}
	bad := PolicyFunc(func(clients []ClientView, _ *rand.Rand) int { return 99 })
	s, err := New(Config{
		Arch: a, Alloc: alloc, Horizon: 100, Seed: 1,
		Arbiters: map[string]Arbiter{"x": bad},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("invalid arbiter pick not reported")
	}
}

func TestSimCustomArbiterUsed(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	alloc, _ := arch.UniformAllocation(a, 24)
	calls := 0
	counting := PolicyFunc(func(clients []ClientView, rng *rand.Rand) int {
		calls++
		return LongestQueue{}.Pick(clients, rng)
	})
	s, err := New(Config{
		Arch: a, Alloc: alloc, Horizon: 200, Seed: 1,
		Arbiters: map[string]Arbiter{"ahb1": counting},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("custom arbiter never invoked")
	}
}

// Property: conservation holds for random small architectures, seeds,
// capacities, and timeout settings.
func TestSimConservationProperty(t *testing.T) {
	f := func(seed int64, timeoutOn bool) bool {
		rng := rand.New(rand.NewSource(seed))
		a := arch.TwoBusAMBA()
		a.InsertBridgeBuffers()
		alloc := arch.Allocation{}
		for _, id := range a.BufferIDs() {
			alloc[id] = 1 + rng.Intn(6)
		}
		cfg := Config{Arch: a, Alloc: alloc, Horizon: 300 + rng.Float64()*300, Seed: seed}
		if timeoutOn {
			cfg.Timeout = 0.1 + rng.Float64()
		}
		s, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := s.Run()
		if err != nil {
			return false
		}
		return res.TotalDelivered()+res.TotalLost()+res.InFlight == res.TotalGenerated()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: bigger buffers never lose more packets on identical seeds (holds
// in expectation; use matched seeds and a margin to keep flake out).
func TestSimMoreBufferLessLossProperty(t *testing.T) {
	a := arch.TwoBusAMBA()
	a.InsertBridgeBuffers()
	small := arch.Allocation{}
	big := arch.Allocation{}
	for _, id := range a.BufferIDs() {
		small[id] = 1
		big[id] = 12
	}
	var lostSmall, lostBig int64
	for seed := int64(0); seed < 6; seed++ {
		s1, err := New(Config{Arch: a, Alloc: small, Horizon: 1500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := s1.Run()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := New(Config{Arch: a, Alloc: big, Horizon: 1500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Run()
		if err != nil {
			t.Fatal(err)
		}
		lostSmall += r1.TotalLost()
		lostBig += r2.TotalLost()
	}
	if lostBig >= lostSmall {
		t.Fatalf("bigger buffers lost more: big=%d small=%d", lostBig, lostSmall)
	}
}
