// Package sim is a continuous-time discrete-event simulator of the SoC
// communication sub-system: Poisson (or bursty) packet flows, bus arbiters
// serving one exponential transfer at a time, bridges whose directional
// buffers decouple the buses, finite buffers that lose packets on overflow,
// and the paper's timeout policy that refuses to serve packets older than a
// threshold.
//
// The simulator is the experiment ground truth: the paper's Figure 3 and
// Table 1 compare loss counts measured by resimulating the architecture
// under each sizing policy, and this package produces those counts here.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"socbuf/internal/arch"
	"socbuf/internal/trace"
)

// FlowKey identifies a flow by endpoints (flows are unique per From→To pair
// within one architecture in this codebase).
type FlowKey struct {
	From, To string
}

// Config parameterises one simulation run.
type Config struct {
	Arch  *arch.Architecture
	Alloc arch.Allocation
	// Horizon is the simulated duration. Events past it are not processed.
	Horizon float64
	// WarmUp discards statistics for packets generated before this time.
	WarmUp float64
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Timeout, when positive, enables the paper's timeout policy: a packet
	// whose waiting time in its current buffer exceeds Timeout is dropped at
	// arbitration time instead of being served.
	Timeout float64
	// Arbiters optionally overrides arbitration per bus ID. Buses without an
	// entry use LongestQueue.
	Arbiters map[string]Arbiter
	// Sources optionally overrides the arrival process per flow. Flows
	// without an entry use Poisson(flow.Rate).
	Sources map[FlowKey]trace.Source
}

// Results aggregates one run's statistics. All per-processor maps are keyed
// by processor ID; loss is attributed to the *generating* processor, as in
// the paper's Figure 3.
type Results struct {
	Horizon     float64
	Generated   map[string]int64
	Delivered   map[string]int64
	Lost        map[string]int64 // overflow + timeout, by source processor
	LostTimeout map[string]int64 // timeout component, by source processor
	// BufferOverflow counts overflow losses at the buffer where they
	// happened (includes bridge buffers, which have no source processor of
	// their own).
	BufferOverflow map[string]int64
	// MeanOccupancy is the time-averaged queue length per buffer over the
	// post-warm-up window.
	MeanOccupancy map[string]float64
	// MaxOccupancy is the peak queue length per buffer.
	MaxOccupancy map[string]int
	// InFlight counts counted packets still queued or in service at the end.
	InFlight int64
}

// TotalLost sums losses over processors.
func (r *Results) TotalLost() int64 {
	var t int64
	for _, v := range r.Lost {
		t += v
	}
	return t
}

// TotalGenerated sums generated packets over processors.
func (r *Results) TotalGenerated() int64 {
	var t int64
	for _, v := range r.Generated {
		t += v
	}
	return t
}

// TotalDelivered sums delivered packets over processors.
func (r *Results) TotalDelivered() int64 {
	var t int64
	for _, v := range r.Delivered {
		t += v
	}
	return t
}

// LossFraction is TotalLost / TotalGenerated (0 when nothing was generated).
func (r *Results) LossFraction() float64 {
	g := r.TotalGenerated()
	if g == 0 {
		return 0
	}
	return float64(r.TotalLost()) / float64(g)
}

// packet is one request in flight.
type packet struct {
	flow      int     // index into routes
	hop       int     // current hop index
	genAt     float64 // generation time
	countable bool    // generated after warm-up?
	enqAt     float64 // when it entered its current buffer
}

// queue is one finite FIFO buffer.
type queue struct {
	id    string
	cap   int
	items []packet
	// occupancy integral bookkeeping
	lastT float64
	area  float64
	maxN  int
}

func (q *queue) updateArea(now, warmUp float64) {
	if now > q.lastT {
		from := q.lastT
		if from < warmUp {
			from = warmUp
		}
		if now > from {
			q.area += float64(len(q.items)) * (now - from)
		}
		q.lastT = now
	}
}

// busState is one bus's runtime state.
type busState struct {
	id      string
	rate    float64
	clients []int // queue indices, sorted by buffer ID
	arbiter Arbiter
	busy    bool
	serving packet
	// views is the arbitration scratch passed to the arbiter each dispatch,
	// preallocated to len(clients): dispatch runs once per simulated event
	// and must not allocate (see TestDispatchZeroAlloc).
	views []ClientView
}

// Simulator holds one run's mutable state. Create with New, run with Run.
type Simulator struct {
	cfg    Config
	rng    *rand.Rand
	routes []arch.Route
	srcs   []trace.Source

	queues  []*queue
	qIndex  map[string]int
	buses   []*busState
	bIndex  map[string]int
	events  eventHeap
	seq     uint64
	now     float64
	results *Results
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Arch == nil {
		return nil, errors.New("sim: nil architecture")
	}
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon %v must be positive", cfg.Horizon)
	}
	if cfg.WarmUp < 0 || cfg.WarmUp >= cfg.Horizon {
		return nil, fmt.Errorf("sim: warm-up %v outside [0, horizon)", cfg.WarmUp)
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("sim: negative timeout %v", cfg.Timeout)
	}
	if err := cfg.Alloc.Validate(cfg.Arch, 0); err != nil {
		return nil, err
	}
	for _, br := range cfg.Arch.Bridges {
		if !br.Buffered {
			return nil, fmt.Errorf("sim: bridge %q is un-buffered; the simulator models buffered bridges only (run InsertBridgeBuffers first)", br.ID)
		}
	}
	routes, err := cfg.Arch.Routes()
	if err != nil {
		return nil, err
	}

	s := &Simulator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		routes: routes,
		qIndex: map[string]int{},
		bIndex: map[string]int{},
	}

	// Sources per flow.
	s.srcs = make([]trace.Source, len(routes))
	for i, r := range routes {
		if src, ok := cfg.Sources[FlowKey{From: r.Flow.From, To: r.Flow.To}]; ok && src != nil {
			s.srcs[i] = src
			continue
		}
		p, err := trace.NewPoisson(r.Flow.Rate)
		if err != nil {
			return nil, err
		}
		s.srcs[i] = p
	}

	// Queues, in sorted buffer-ID order.
	for _, id := range cfg.Arch.BufferIDs() {
		s.qIndex[id] = len(s.queues)
		s.queues = append(s.queues, &queue{id: id, cap: cfg.Alloc[id]})
	}

	// Buses with their client lists.
	clients, err := cfg.Arch.BusClients()
	if err != nil {
		return nil, err
	}
	busIDs := make([]string, 0, len(cfg.Arch.Buses))
	for _, b := range cfg.Arch.Buses {
		busIDs = append(busIDs, b.ID)
	}
	sort.Strings(busIDs)
	for _, id := range busIDs {
		bus, _ := cfg.Arch.BusByID(id)
		st := &busState{id: id, rate: bus.ServiceRate}
		for _, c := range clients[id] {
			qi, ok := s.qIndex[c]
			if !ok {
				return nil, fmt.Errorf("sim: bus %q client %q has no buffer (unbuffered bridge?)", id, c)
			}
			st.clients = append(st.clients, qi)
		}
		if a, ok := cfg.Arbiters[id]; ok && a != nil {
			st.arbiter = a
		} else {
			st.arbiter = LongestQueue{}
		}
		st.views = make([]ClientView, len(st.clients))
		s.bIndex[id] = len(s.buses)
		s.buses = append(s.buses, st)
	}

	s.results = &Results{
		Horizon:        cfg.Horizon,
		Generated:      map[string]int64{},
		Delivered:      map[string]int64{},
		Lost:           map[string]int64{},
		LostTimeout:    map[string]int64{},
		BufferOverflow: map[string]int64{},
		MeanOccupancy:  map[string]float64{},
		MaxOccupancy:   map[string]int{},
	}
	for _, p := range cfg.Arch.Processors {
		s.results.Generated[p.ID] = 0
		s.results.Delivered[p.ID] = 0
		s.results.Lost[p.ID] = 0
		s.results.LostTimeout[p.ID] = 0
	}
	return s, nil
}

// Run executes the simulation to the horizon and returns the statistics.
// A simulator is single-use: calling Run twice returns an error.
func (s *Simulator) Run() (*Results, error) {
	if s.now != 0 || s.seq != 0 {
		return nil, errors.New("sim: Run called twice on one Simulator")
	}
	// Prime one arrival per flow.
	for i := range s.routes {
		gap, err := s.srcs[i].Next(s.rng)
		if err != nil {
			return nil, fmt.Errorf("sim: flow %d initial arrival: %w", i, err)
		}
		s.schedule(event{at: gap, kind: evArrival, flow: i})
	}

	for len(s.events) > 0 {
		e := s.events.pop()
		if e.at > s.cfg.Horizon {
			break
		}
		s.now = e.at
		switch e.kind {
		case evArrival:
			if err := s.handleArrival(e.flow); err != nil {
				return nil, err
			}
		case evDeparture:
			if err := s.handleDeparture(e.bus); err != nil {
				return nil, err
			}
		}
	}

	// Close occupancy integrals and gather.
	window := s.cfg.Horizon - s.cfg.WarmUp
	for _, q := range s.queues {
		q.updateArea(s.cfg.Horizon, s.cfg.WarmUp)
		if window > 0 {
			s.results.MeanOccupancy[q.id] = q.area / window
		}
		s.results.MaxOccupancy[q.id] = q.maxN
		for _, p := range q.items {
			if p.countable {
				s.results.InFlight++
			}
		}
	}
	for _, b := range s.buses {
		if b.busy && b.serving.countable {
			s.results.InFlight++
		}
	}
	return s.results, nil
}

func (s *Simulator) handleArrival(flow int) error {
	r := &s.routes[flow]
	// Schedule the next arrival first (exhausted replay sources stop the
	// flow without failing the run).
	gap, err := s.srcs[flow].Next(s.rng)
	switch {
	case err == nil:
		s.schedule(event{at: s.now + gap, kind: evArrival, flow: flow})
	case errors.Is(err, trace.ErrExhausted):
		// no further arrivals for this flow
	default:
		return fmt.Errorf("sim: flow %d arrival: %w", flow, err)
	}

	p := packet{flow: flow, genAt: s.now, countable: s.now >= s.cfg.WarmUp, enqAt: s.now}
	if p.countable {
		s.results.Generated[r.Flow.From]++
	}
	hop := r.Hops[0]
	q := s.queues[s.qIndex[hop.Buffer]]
	if !s.enqueue(q, p) {
		if p.countable {
			s.results.Lost[r.Flow.From]++
			s.results.BufferOverflow[q.id]++
		}
		return nil
	}
	return s.dispatch(s.bIndex[hop.Bus])
}

func (s *Simulator) handleDeparture(busIdx int) error {
	b := s.buses[busIdx]
	if !b.busy {
		return fmt.Errorf("sim: departure on idle bus %q", b.id)
	}
	p := b.serving
	b.busy = false

	r := &s.routes[p.flow]
	hop := r.Hops[p.hop]
	if hop.NextBuffer == "" {
		if p.countable {
			s.results.Delivered[r.Flow.From]++
		}
	} else {
		nq := s.queues[s.qIndex[hop.NextBuffer]]
		p.hop++
		p.enqAt = s.now
		if s.enqueue(nq, p) {
			nextBus := r.Hops[p.hop].Bus
			if err := s.dispatch(s.bIndex[nextBus]); err != nil {
				return err
			}
		} else if p.countable {
			s.results.Lost[r.Flow.From]++
			s.results.BufferOverflow[nq.id]++
		}
	}
	return s.dispatch(busIdx)
}

// enqueue appends p to q unless full, maintaining occupancy accounting.
// Reports whether the packet was accepted.
func (s *Simulator) enqueue(q *queue, p packet) bool {
	if len(q.items) >= q.cap {
		return false
	}
	q.updateArea(s.now, s.cfg.WarmUp)
	q.items = append(q.items, p)
	if len(q.items) > q.maxN {
		q.maxN = len(q.items)
	}
	return true
}

// popHead removes and returns the head of q.
func (s *Simulator) popHead(q *queue) packet {
	q.updateArea(s.now, s.cfg.WarmUp)
	p := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return p
}

// dispatch runs arbitration on a bus if it is idle and work exists.
func (s *Simulator) dispatch(busIdx int) error {
	b := s.buses[busIdx]
	if b.busy {
		return nil
	}
	// Timeout policy: purge heads that have waited longer than the
	// threshold. Behind an expired head, later arrivals may also have
	// expired, so purge repeatedly.
	if s.cfg.Timeout > 0 {
		for _, qi := range b.clients {
			q := s.queues[qi]
			for len(q.items) > 0 && s.now-q.items[0].enqAt > s.cfg.Timeout {
				p := s.popHead(q)
				if p.countable {
					from := s.routes[p.flow].Flow.From
					s.results.Lost[from]++
					s.results.LostTimeout[from]++
				}
			}
		}
	}

	views := b.views
	any := false
	for i, qi := range b.clients {
		q := s.queues[qi]
		v := ClientView{BufferID: q.id, Len: len(q.items), Cap: q.cap}
		if len(q.items) > 0 {
			v.HeadWait = s.now - q.items[0].enqAt
			any = true
		}
		views[i] = v
	}
	if !any {
		return nil
	}
	pick := b.arbiter.Pick(views, s.rng)
	if pick == -1 {
		return nil // arbiter chose to idle
	}
	if pick < 0 || pick >= len(b.clients) || views[pick].Len == 0 {
		return fmt.Errorf("sim: arbiter on bus %q picked invalid client %d", b.id, pick)
	}
	q := s.queues[b.clients[pick]]
	b.serving = s.popHead(q)
	b.busy = true
	svc := s.rng.ExpFloat64() / b.rate
	s.schedule(event{at: s.now + svc, kind: evDeparture, bus: busIdx})
	return nil
}
