// Package sim is a continuous-time discrete-event simulator of the SoC
// communication sub-system: Poisson (or bursty) packet flows, bus arbiters
// serving one exponential transfer at a time, bridges whose directional
// buffers decouple the buses, finite buffers that lose packets on overflow,
// and the paper's timeout policy that refuses to serve packets older than a
// threshold.
//
// The simulator is the experiment ground truth: the paper's Figure 3 and
// Table 1 compare loss counts measured by resimulating the architecture
// under each sizing policy, and this package produces those counts here.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"socbuf/internal/arch"
	"socbuf/internal/trace"
)

// FlowKey identifies a flow by endpoints (flows are unique per From→To pair
// within one architecture in this codebase).
type FlowKey struct {
	From, To string
}

// Config parameterises one simulation run.
type Config struct {
	Arch  *arch.Architecture
	Alloc arch.Allocation
	// Horizon is the simulated duration. Events past it are not processed.
	Horizon float64
	// WarmUp discards statistics for packets generated before this time.
	WarmUp float64
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Timeout, when positive, enables the paper's timeout policy: a packet
	// whose waiting time in its current buffer exceeds Timeout is dropped at
	// arbitration time instead of being served.
	Timeout float64
	// Arbiters optionally overrides arbitration per bus ID. Buses without an
	// entry use LongestQueue.
	Arbiters map[string]Arbiter
	// Sources optionally overrides the arrival process per flow. Flows
	// without an entry use Poisson(flow.Rate).
	Sources map[FlowKey]trace.Source
}

// Results aggregates one run's statistics. All per-processor maps are keyed
// by processor ID; loss is attributed to the *generating* processor, as in
// the paper's Figure 3.
type Results struct {
	Horizon     float64
	Generated   map[string]int64
	Delivered   map[string]int64
	Lost        map[string]int64 // overflow + timeout, by source processor
	LostTimeout map[string]int64 // timeout component, by source processor
	// BufferOverflow counts overflow losses at the buffer where they
	// happened (includes bridge buffers, which have no source processor of
	// their own).
	BufferOverflow map[string]int64
	// MeanOccupancy is the time-averaged queue length per buffer over the
	// post-warm-up window.
	MeanOccupancy map[string]float64
	// MaxOccupancy is the peak queue length per buffer.
	MaxOccupancy map[string]int
	// InFlight counts counted packets still queued or in service at the end.
	InFlight int64
}

// TotalLost sums losses over processors.
func (r *Results) TotalLost() int64 {
	var t int64
	for _, v := range r.Lost {
		t += v
	}
	return t
}

// TotalGenerated sums generated packets over processors.
func (r *Results) TotalGenerated() int64 {
	var t int64
	for _, v := range r.Generated {
		t += v
	}
	return t
}

// TotalDelivered sums delivered packets over processors.
func (r *Results) TotalDelivered() int64 {
	var t int64
	for _, v := range r.Delivered {
		t += v
	}
	return t
}

// LossFraction is TotalLost / TotalGenerated (0 when nothing was generated).
func (r *Results) LossFraction() float64 {
	g := r.TotalGenerated()
	if g == 0 {
		return 0
	}
	return float64(r.TotalLost()) / float64(g)
}

// packet is one request in flight. It is kept to 24 bytes: packets are
// copied on every enqueue, pop and serving assignment, so size is memory
// traffic on the event loop.
type packet struct {
	enqAt     float64 // when it entered its current buffer
	flow      int32   // index into routes
	hop       int32   // current hop index
	countable bool    // generated after warm-up?
}

// queue is one finite FIFO buffer: a ring over items[head:], so popping the
// head is O(1) bookkeeping instead of a memmove of the whole backlog.
type queue struct {
	id    string
	cap   int
	items []packet
	head  int
	// occupancy integral bookkeeping
	lastT float64
	area  float64
	maxN  int
}

// size is the current backlog length.
func (q *queue) size() int { return len(q.items) - q.head }

func (q *queue) updateArea(now, warmUp float64) {
	if now > q.lastT {
		from := q.lastT
		if from < warmUp {
			from = warmUp
		}
		if now > from {
			q.area += float64(q.size()) * (now - from)
		}
		q.lastT = now
	}
}

// busState is one bus's runtime state.
type busState struct {
	id      string
	idx     int32 // own index into Simulator.buses, for departure scheduling
	rate    float64
	clients []int    // queue indices, sorted by buffer ID
	qs      []*queue // the same clients, pointer-resolved for the dispatch loop
	arbiter Arbiter
	// fastLQ marks the default LongestQueue arbiter: its pick (longest
	// backlog, ties to the lowest index, no RNG, no HeadWait) is computed
	// straight off the queue sizes, skipping the view build entirely.
	fastLQ  bool
	busy    bool
	serving packet
	// views is the arbitration scratch passed to the arbiter each dispatch,
	// preallocated to len(clients): dispatch runs once per simulated event
	// and must not allocate (see TestDispatchZeroAlloc).
	views []ClientView
}

// Simulator holds one run's mutable state. Create with New, run with Run.
// The event loop is fully index-addressed: every per-hop queue and bus and
// every per-flow source processor is resolved to a dense index at build
// time, and the per-processor/per-buffer statistics accumulate in flat
// int64 slices — the string-keyed Results maps are materialised once, after
// the last event.
type Simulator struct {
	cfg    Config
	rng    *rand.Rand
	routes []arch.Route
	srcs   []trace.Source
	// srcLam devirtualises pure-Poisson sources (the overwhelming default):
	// a positive entry is the flow's λ, and handleArrival draws the gap
	// inline — the identical rng.ExpFloat64()/λ Poisson.Next performs —
	// instead of paying an interface call per arrival. Zero = call srcs.
	srcLam []float64

	// Per-flow dense routing: rtFrom is the source processor, rtQ/rtBus the
	// queue and bus of each hop (rtQ[f][h] holds hop h's waiting buffer).
	rtFrom []int
	rtQ    [][]int32
	rtBus  [][]int32

	// Dense statistics counters, indexed by processor (procIDs order) and
	// queue; folded into Results after the event loop.
	procIDs []string
	genBy   []int64
	delBy   []int64
	lostBy  []int64
	lostTO  []int64
	ovflBy  []int64

	queues  []*queue
	qIndex  map[string]int
	buses   []*busState
	bIndex  map[string]int
	events  eventHeap
	seq     uint64
	now     float64
	results *Results
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Arch == nil {
		return nil, errors.New("sim: nil architecture")
	}
	if err := cfg.Arch.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon %v must be positive", cfg.Horizon)
	}
	if cfg.WarmUp < 0 || cfg.WarmUp >= cfg.Horizon {
		return nil, fmt.Errorf("sim: warm-up %v outside [0, horizon)", cfg.WarmUp)
	}
	if cfg.Timeout < 0 {
		return nil, fmt.Errorf("sim: negative timeout %v", cfg.Timeout)
	}
	if err := cfg.Alloc.Validate(cfg.Arch, 0); err != nil {
		return nil, err
	}
	for _, br := range cfg.Arch.Bridges {
		if !br.Buffered {
			return nil, fmt.Errorf("sim: bridge %q is un-buffered; the simulator models buffered bridges only (run InsertBridgeBuffers first)", br.ID)
		}
	}
	routes, err := cfg.Arch.Routes()
	if err != nil {
		return nil, err
	}

	s := &Simulator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		routes: routes,
		qIndex: map[string]int{},
		bIndex: map[string]int{},
	}

	// Sources per flow.
	s.srcs = make([]trace.Source, len(routes))
	s.srcLam = make([]float64, len(routes))
	for i, r := range routes {
		if src, ok := cfg.Sources[FlowKey{From: r.Flow.From, To: r.Flow.To}]; ok && src != nil {
			s.srcs[i] = src
		} else {
			p, err := trace.NewPoisson(r.Flow.Rate)
			if err != nil {
				return nil, err
			}
			s.srcs[i] = p
		}
		if p, ok := s.srcs[i].(*trace.Poisson); ok {
			s.srcLam[i] = p.Lambda
		}
	}

	// Queues, in sorted buffer-ID order.
	for _, id := range cfg.Arch.BufferIDs() {
		s.qIndex[id] = len(s.queues)
		s.queues = append(s.queues, &queue{id: id, cap: cfg.Alloc[id]})
	}

	// Buses with their client lists.
	clients, err := cfg.Arch.BusClients()
	if err != nil {
		return nil, err
	}
	busIDs := make([]string, 0, len(cfg.Arch.Buses))
	for _, b := range cfg.Arch.Buses {
		busIDs = append(busIDs, b.ID)
	}
	sort.Strings(busIDs)
	for _, id := range busIDs {
		bus, _ := cfg.Arch.BusByID(id)
		st := &busState{id: id, rate: bus.ServiceRate}
		for _, c := range clients[id] {
			qi, ok := s.qIndex[c]
			if !ok {
				return nil, fmt.Errorf("sim: bus %q client %q has no buffer (unbuffered bridge?)", id, c)
			}
			st.clients = append(st.clients, qi)
		}
		if a, ok := cfg.Arbiters[id]; ok && a != nil {
			st.arbiter = a
		} else {
			st.arbiter = LongestQueue{}
		}
		_, st.fastLQ = st.arbiter.(LongestQueue)
		st.qs = make([]*queue, len(st.clients))
		for i, qi := range st.clients {
			st.qs[i] = s.queues[qi]
		}
		st.views = make([]ClientView, len(st.clients))
		// BufferID and Cap never change after construction; dispatch only
		// refreshes Len and HeadWait.
		for i, qi := range st.clients {
			st.views[i].BufferID = s.queues[qi].id
			st.views[i].Cap = s.queues[qi].cap
		}
		st.idx = int32(len(s.buses))
		s.bIndex[id] = len(s.buses)
		s.buses = append(s.buses, st)
	}

	// Dense routing and counter indices.
	procIndex := make(map[string]int, len(cfg.Arch.Processors))
	s.procIDs = make([]string, len(cfg.Arch.Processors))
	for i, p := range cfg.Arch.Processors {
		procIndex[p.ID] = i
		s.procIDs[i] = p.ID
	}
	s.rtFrom = make([]int, len(routes))
	s.rtQ = make([][]int32, len(routes))
	s.rtBus = make([][]int32, len(routes))
	for f, r := range routes {
		pi, ok := procIndex[r.Flow.From]
		if !ok {
			return nil, fmt.Errorf("sim: flow %d source %q is not a processor", f, r.Flow.From)
		}
		s.rtFrom[f] = pi
		s.rtQ[f] = make([]int32, len(r.Hops))
		s.rtBus[f] = make([]int32, len(r.Hops))
		for h, hop := range r.Hops {
			qi, ok := s.qIndex[hop.Buffer]
			if !ok {
				return nil, fmt.Errorf("sim: flow %d hop %d buffer %q has no queue", f, h, hop.Buffer)
			}
			s.rtQ[f][h] = int32(qi)
			s.rtBus[f][h] = int32(s.bIndex[hop.Bus])
		}
	}
	s.genBy = make([]int64, len(s.procIDs))
	s.delBy = make([]int64, len(s.procIDs))
	s.lostBy = make([]int64, len(s.procIDs))
	s.lostTO = make([]int64, len(s.procIDs))
	s.ovflBy = make([]int64, len(s.queues))

	s.results = &Results{
		Horizon:        cfg.Horizon,
		Generated:      map[string]int64{},
		Delivered:      map[string]int64{},
		Lost:           map[string]int64{},
		LostTimeout:    map[string]int64{},
		BufferOverflow: map[string]int64{},
		MeanOccupancy:  map[string]float64{},
		MaxOccupancy:   map[string]int{},
	}
	return s, nil
}

// Run executes the simulation to the horizon and returns the statistics.
// A simulator is single-use: calling Run twice returns an error.
func (s *Simulator) Run() (*Results, error) {
	if s.now != 0 || s.seq != 0 {
		return nil, errors.New("sim: Run called twice on one Simulator")
	}
	// Prime one arrival per flow.
	for i := range s.routes {
		gap, err := s.srcs[i].Next(s.rng)
		if err != nil {
			return nil, fmt.Errorf("sim: flow %d initial arrival: %w", i, err)
		}
		s.schedule(event{at: gap, kind: evArrival, idx: int32(i)})
	}

	for len(s.events) > 0 {
		e := s.events.pop()
		if e.at > s.cfg.Horizon {
			break
		}
		s.now = e.at
		switch e.kind {
		case evArrival:
			if err := s.handleArrival(int(e.idx)); err != nil {
				return nil, err
			}
		case evDeparture:
			if err := s.handleDeparture(int(e.idx)); err != nil {
				return nil, err
			}
		}
	}

	// Close occupancy integrals and gather; fold the dense counters into
	// the string-keyed result maps (every processor gets an entry, buffers
	// only where an overflow happened — the shapes the map-keyed loop
	// produced).
	window := s.cfg.Horizon - s.cfg.WarmUp
	for qi, q := range s.queues {
		q.updateArea(s.cfg.Horizon, s.cfg.WarmUp)
		if window > 0 {
			s.results.MeanOccupancy[q.id] = q.area / window
		}
		s.results.MaxOccupancy[q.id] = q.maxN
		for _, p := range q.items[q.head:] {
			if p.countable {
				s.results.InFlight++
			}
		}
		if s.ovflBy[qi] > 0 {
			s.results.BufferOverflow[q.id] = s.ovflBy[qi]
		}
	}
	for _, b := range s.buses {
		if b.busy && b.serving.countable {
			s.results.InFlight++
		}
	}
	for i, id := range s.procIDs {
		s.results.Generated[id] = s.genBy[i]
		s.results.Delivered[id] = s.delBy[i]
		s.results.Lost[id] = s.lostBy[i]
		s.results.LostTimeout[id] = s.lostTO[i]
	}
	return s.results, nil
}

func (s *Simulator) handleArrival(flow int) error {
	// Schedule the next arrival first (exhausted replay sources stop the
	// flow without failing the run).
	if lam := s.srcLam[flow]; lam > 0 {
		// Inlined Poisson.Next: same RNG draw, same float expression.
		s.schedule(event{at: s.now + s.rng.ExpFloat64()/lam, kind: evArrival, idx: int32(flow)})
	} else {
		gap, err := s.srcs[flow].Next(s.rng)
		switch {
		case err == nil:
			s.schedule(event{at: s.now + gap, kind: evArrival, idx: int32(flow)})
		case errors.Is(err, trace.ErrExhausted):
			// no further arrivals for this flow
		default:
			return fmt.Errorf("sim: flow %d arrival: %w", flow, err)
		}
	}

	p := packet{flow: int32(flow), countable: s.now >= s.cfg.WarmUp, enqAt: s.now}
	if p.countable {
		s.genBy[s.rtFrom[flow]]++
	}
	qi := s.rtQ[flow][0]
	if !s.enqueue(s.queues[qi], p) {
		if p.countable {
			s.lostBy[s.rtFrom[flow]]++
			s.ovflBy[qi]++
		}
		return nil
	}
	return s.dispatch(s.buses[s.rtBus[flow][0]])
}

func (s *Simulator) handleDeparture(busIdx int) error {
	b := s.buses[busIdx]
	if !b.busy {
		return fmt.Errorf("sim: departure on idle bus %q", b.id)
	}
	p := b.serving
	b.busy = false

	hops := s.rtQ[p.flow]
	if int(p.hop) == len(hops)-1 {
		if p.countable {
			s.delBy[s.rtFrom[p.flow]]++
		}
	} else {
		p.hop++
		p.enqAt = s.now
		nqi := hops[p.hop]
		if s.enqueue(s.queues[nqi], p) {
			if err := s.dispatch(s.buses[s.rtBus[p.flow][p.hop]]); err != nil {
				return err
			}
		} else if p.countable {
			s.lostBy[s.rtFrom[p.flow]]++
			s.ovflBy[nqi]++
		}
	}
	return s.dispatch(b)
}

// enqueue appends p to q unless full, maintaining occupancy accounting.
// Reports whether the packet was accepted.
func (s *Simulator) enqueue(q *queue, p packet) bool {
	if q.size() >= q.cap {
		return false
	}
	q.updateArea(s.now, s.cfg.WarmUp)
	q.items = append(q.items, p)
	if n := q.size(); n > q.maxN {
		q.maxN = n
	}
	return true
}

// popHead removes and returns the head of q, advancing the ring. The
// backing array resets when the queue drains and compacts when the dead
// prefix outweighs the backlog, so it stays within a small multiple of the
// buffer capacity.
func (s *Simulator) popHead(q *queue) packet {
	q.updateArea(s.now, s.cfg.WarmUp)
	p := q.items[q.head]
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head > 32 && q.head > q.size():
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

// dispatch runs arbitration on a bus if it is idle and work exists.
func (s *Simulator) dispatch(b *busState) error {
	if b.busy {
		return nil
	}
	// Timeout policy: purge heads that have waited longer than the
	// threshold. Behind an expired head, later arrivals may also have
	// expired, so purge repeatedly.
	if s.cfg.Timeout > 0 {
		for _, q := range b.qs {
			for q.size() > 0 && s.now-q.items[q.head].enqAt > s.cfg.Timeout {
				p := s.popHead(q)
				if p.countable {
					from := s.rtFrom[p.flow]
					s.lostBy[from]++
					s.lostTO[from]++
				}
			}
		}
	}

	var pick int
	if b.fastLQ {
		// Default arbitration inlined: longest backlog, ties to the lowest
		// index — exactly LongestQueue.Pick over the views, minus the view
		// build (it reads only Len and draws no randomness).
		pick = -1
		bestLen := 0
		for i, q := range b.qs {
			if n := q.size(); n > bestLen {
				pick, bestLen = i, n
			}
		}
		if pick == -1 {
			return nil
		}
	} else {
		views := b.views
		any := false
		for i, q := range b.qs {
			n := q.size()
			views[i].Len = n
			if n > 0 {
				views[i].HeadWait = s.now - q.items[q.head].enqAt
				any = true
			} else {
				views[i].HeadWait = 0
			}
		}
		if !any {
			return nil
		}
		pick = b.arbiter.Pick(views, s.rng)
		if pick == -1 {
			return nil // arbiter chose to idle
		}
		if pick < 0 || pick >= len(b.clients) || views[pick].Len == 0 {
			return fmt.Errorf("sim: arbiter on bus %q picked invalid client %d", b.id, pick)
		}
	}
	q := b.qs[pick]
	b.serving = s.popHead(q)
	b.busy = true
	svc := s.rng.ExpFloat64() / b.rate
	s.schedule(event{at: s.now + svc, kind: evDeparture, idx: b.idx})
	return nil
}
