package sim

import (
	"testing"

	"socbuf/internal/arch"
)

func benchRun(b *testing.B, a *arch.Architecture, budget int, horizon float64) {
	b.Helper()
	a.InsertBridgeBuffers()
	alloc, err := arch.UniformAllocation(a, budget)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{Arch: a, Alloc: alloc, Horizon: horizon, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.TotalGenerated())/horizon, "pkts/t")
	}
}

func BenchmarkSimTwoBus(b *testing.B)  { benchRun(b, arch.TwoBusAMBA(), 24, 2000) }
func BenchmarkSimFigure1(b *testing.B) { benchRun(b, arch.Figure1(), 40, 2000) }
func BenchmarkSimNetproc(b *testing.B) { benchRun(b, arch.NetworkProcessor(), 160, 2000) }

func BenchmarkSimNetprocTimeout(b *testing.B) {
	a := arch.NetworkProcessor()
	a.InsertBridgeBuffers()
	alloc, err := arch.UniformAllocation(a, 160)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{Arch: a, Alloc: alloc, Horizon: 2000, Seed: int64(i), Timeout: 1.1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
