package sim

import (
	"math/rand"
	"testing"
)

func views(lens ...int) []ClientView {
	out := make([]ClientView, len(lens))
	for i, l := range lens {
		out[i] = ClientView{BufferID: string(rune('a' + i)), Len: l, Cap: 10}
	}
	return out
}

func TestLongestQueue(t *testing.T) {
	a := LongestQueue{}
	if got := a.Pick(views(0, 3, 2), nil); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	if got := a.Pick(views(2, 2), nil); got != 0 {
		t.Fatalf("tie pick = %d, want 0 (lowest index)", got)
	}
	if got := a.Pick(views(0, 0), nil); got != -1 {
		t.Fatalf("empty pick = %d, want -1", got)
	}
}

func TestRoundRobin(t *testing.T) {
	a := &RoundRobin{}
	seq := []int{}
	for i := 0; i < 4; i++ {
		seq = append(seq, a.Pick(views(1, 1, 1), nil))
	}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("round robin seq = %v, want %v", seq, want)
		}
	}
	// Skips empties.
	if got := a.Pick(views(0, 1, 0), nil); got != 1 {
		t.Fatalf("skip pick = %d, want 1", got)
	}
	if got := a.Pick(views(0, 0, 0), nil); got != -1 {
		t.Fatalf("all-empty pick = %d", got)
	}
}

func TestOldestHead(t *testing.T) {
	a := OldestHead{}
	vs := views(1, 1, 0)
	vs[0].HeadWait = 0.5
	vs[1].HeadWait = 2.0
	if got := a.Pick(vs, nil); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	if got := a.Pick(views(0, 0), nil); got != -1 {
		t.Fatalf("empty pick = %d", got)
	}
}

func TestRandomNonEmpty(t *testing.T) {
	a := RandomNonEmpty{}
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		got := a.Pick(views(1, 0, 1), rng)
		if got != 0 && got != 2 {
			t.Fatalf("picked empty client %d", got)
		}
		counts[got]++
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Fatalf("random arbiter not random: %v", counts)
	}
	if got := a.Pick(views(0, 0), rng); got != -1 {
		t.Fatalf("all-empty pick = %d", got)
	}
}

func TestPolicyFunc(t *testing.T) {
	var seen []ClientView
	f := PolicyFunc(func(clients []ClientView, _ *rand.Rand) int {
		seen = clients
		return 0
	})
	vs := views(1, 2)
	if got := f.Pick(vs, nil); got != 0 {
		t.Fatalf("pick = %d", got)
	}
	if len(seen) != 2 {
		t.Fatal("policy func did not receive views")
	}
}
